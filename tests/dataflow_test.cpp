// The interprocedural value-flow analysis (analysis/dataflow.hpp): lattice
// mechanics, the constant-producing transfer functions, joins at merge
// points, the bounded abstract stack, syscall clobbers, and the
// callee-summary interprocedural model (write sets, return-value flow,
// recursion and computed-transfer degradation).
#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "apps/minilibc.hpp"
#include "isa/assemble.hpp"
#include "kernel/syscalls.hpp"

namespace lzp {
namespace {

using analysis::ValueSet;
using isa::Gpr;

constexpr std::uint64_t kBase = 0x40'0000;

struct Analyzed {
  isa::Program program;
  analysis::Cfg cfg;
  analysis::DataflowResult df;
};

Analyzed analyze(isa::Assembler& a, isa::Assembler::Label entry,
                 const char* name) {
  Analyzed out;
  out.program = std::move(isa::make_program(name, a, entry)).value();
  out.cfg = analysis::build_cfg(out.program.image, out.program.base,
                                out.program.entry);
  out.df = analysis::analyze_dataflow(out.cfg, out.program.entry);
  return out;
}

// --- lattice -----------------------------------------------------------------

TEST(ValueSetTest, LatticeBasics) {
  ValueSet v;  // ⊥
  EXPECT_TRUE(v.is_bottom());
  EXPECT_TRUE(v.join(ValueSet::constant(3)));
  EXPECT_TRUE(v.is_constant_set());
  EXPECT_FALSE(v.join(ValueSet::constant(3)));  // no change
  EXPECT_TRUE(v.join(ValueSet::constant(4)));
  EXPECT_EQ(v.values().size(), 2u);
  EXPECT_TRUE(v.join(ValueSet::top()));
  EXPECT_TRUE(v.is_top());
  EXPECT_FALSE(v.join(ValueSet::constant(9)));  // ⊤ absorbs

  // ⊥ never changes the other side.
  ValueSet c = ValueSet::constant(1);
  EXPECT_FALSE(c.join(ValueSet::bottom()));
}

TEST(ValueSetTest, WideningAtThreshold) {
  std::set<std::uint64_t> many;
  for (std::uint64_t i = 0; i <= ValueSet::kMaxValues; ++i) many.insert(i);
  EXPECT_TRUE(ValueSet::from_values(many).is_top());
  many.erase(0);
  EXPECT_TRUE(ValueSet::from_values(many).is_constant_set());

  // Cross-product binop widens too: 3 x 3 = 9 sums > kMaxValues when
  // distinct.
  const ValueSet a = ValueSet::from_values({1, 10, 100});
  const ValueSet b = ValueSet::from_values({1000, 10000, 100000});
  const ValueSet sum = ValueSet::binop(
      a, b, [](std::uint64_t x, std::uint64_t y) { return x + y; });
  EXPECT_TRUE(sum.is_top());
  // ⊥ wins over ⊤ (unreachable is stronger information).
  EXPECT_TRUE(ValueSet::binop(ValueSet::bottom(), ValueSet::top(),
                              [](std::uint64_t x, std::uint64_t) { return x; })
                  .is_bottom());
}

// --- straight-line transfer functions ---------------------------------------

TEST(DataflowTest, StraightLineConstants) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, 39);
  a.mov(Gpr::rbx, 7);
  a.mov(Gpr::rdi, Gpr::rbx);       // copy through an unreported register
  a.mov32(Gpr::rsi, 0x8000'0001u); // must zero-extend, not sign-extend
  a.xor_(Gpr::rdx, Gpr::rdx);      // xor-self zeroing idiom
  a.mov(Gpr::r10, 5);
  a.add(Gpr::r10, 3);
  const std::uint64_t site = kBase + a.offset();
  a.syscall_();
  apps::emit_exit(a, 0);
  const Analyzed an = analyze(a, entry, "straight-line");

  const ValueSet rax = an.df.value_at(site, Gpr::rax);
  ASSERT_TRUE(rax.is_constant_set());
  EXPECT_EQ(rax.values(), std::set<std::uint64_t>{39});
  EXPECT_EQ(an.df.value_at(site, Gpr::rdi).values(),
            std::set<std::uint64_t>{7});
  EXPECT_EQ(an.df.value_at(site, Gpr::rsi).values(),
            std::set<std::uint64_t>{0x8000'0001});
  EXPECT_EQ(an.df.value_at(site, Gpr::rdx).values(),
            std::set<std::uint64_t>{0});
  EXPECT_EQ(an.df.value_at(site, Gpr::r10).values(),
            std::set<std::uint64_t>{8});
}

TEST(DataflowTest, MulPreciseDivTop) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, 6);
  a.mov(Gpr::rbx, 7);
  a.mul(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, 10);
  a.div(Gpr::rsi, Gpr::rbx);
  const std::uint64_t site = kBase + a.offset();
  a.syscall_();
  apps::emit_exit(a, 0);
  const Analyzed an = analyze(a, entry, "mul-div");
  EXPECT_EQ(an.df.value_at(site, Gpr::rdi).values(),
            std::set<std::uint64_t>{42});
  EXPECT_TRUE(an.df.value_at(site, Gpr::rsi).is_top());
}

TEST(DataflowTest, LoadsProduceTop) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, 5);
  a.load(Gpr::rdi, Gpr::rsp, 0);
  const std::uint64_t site = kBase + a.offset();
  a.syscall_();
  apps::emit_exit(a, 0);
  const Analyzed an = analyze(a, entry, "loads");
  EXPECT_TRUE(an.df.value_at(site, Gpr::rdi).is_top());
}

// --- joins -------------------------------------------------------------------

TEST(DataflowTest, JoinAtMergePoint) {
  // Two arms assign different constants; the merged site sees both.
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto other = a.new_label();
  const auto merge = a.new_label();
  a.bind(entry);
  a.cmp(Gpr::rbx, 0);
  a.jz(other);
  a.mov(Gpr::rdi, 1);
  a.jmp(merge);
  a.bind(other);
  a.mov(Gpr::rdi, 2);
  a.bind(merge);
  a.mov(Gpr::rax, kern::kSysGetpid);
  const std::uint64_t site = kBase + a.offset();
  a.syscall_();
  apps::emit_exit(a, 0);
  const Analyzed an = analyze(a, entry, "merge");
  const ValueSet rdi = an.df.value_at(site, Gpr::rdi);
  ASSERT_TRUE(rdi.is_constant_set());
  EXPECT_EQ(rdi.values(), (std::set<std::uint64_t>{1, 2}));
  EXPECT_EQ(an.df.value_at(site, Gpr::rax).values(),
            std::set<std::uint64_t>{static_cast<std::uint64_t>(
                kern::kSysGetpid)});
}

// --- abstract stack ----------------------------------------------------------

TEST(DataflowTest, PushPopRoundTripAndStoreInvalidation) {
  {
    isa::Assembler a;
    const auto entry = a.new_label();
    a.bind(entry);
    a.mov(Gpr::rdi, 7);
    a.push(Gpr::rdi);
    a.mov(Gpr::rdi, 9);
    a.pop(Gpr::rdi);  // restores the saved 7
    const std::uint64_t site = kBase + a.offset();
    a.syscall_();
    apps::emit_exit(a, 0);
    const Analyzed an = analyze(a, entry, "push-pop");
    EXPECT_EQ(an.df.value_at(site, Gpr::rdi).values(),
              std::set<std::uint64_t>{7});
  }
  {
    // An intervening store may alias the slot: the pop must go to ⊤.
    isa::Assembler a;
    const auto entry = a.new_label();
    a.bind(entry);
    a.mov(Gpr::rdi, 7);
    a.push(Gpr::rdi);
    a.store(Gpr::rsp, 0, Gpr::rbx);
    a.pop(Gpr::rdi);
    const std::uint64_t site = kBase + a.offset();
    a.syscall_();
    apps::emit_exit(a, 0);
    const Analyzed an = analyze(a, entry, "store-aliases-stack");
    EXPECT_TRUE(an.df.value_at(site, Gpr::rdi).is_top());
  }
}

// --- syscall clobbers --------------------------------------------------------

TEST(DataflowTest, SyscallClobbersRaxPreservesArgs) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, kern::kSysGetpid);
  a.mov(Gpr::rdi, 5);
  a.syscall_();
  const std::uint64_t second = kBase + a.offset();
  a.syscall_();
  apps::emit_exit(a, 0);
  const Analyzed an = analyze(a, entry, "syscall-clobber");
  // rax holds the kernel's return value, not the old number.
  EXPECT_TRUE(an.df.value_at(second, Gpr::rax).is_top());
  // Argument registers are preserved across the syscall.
  EXPECT_EQ(an.df.value_at(second, Gpr::rdi).values(),
            std::set<std::uint64_t>{5});
}

// --- interprocedural ---------------------------------------------------------

TEST(DataflowTest, CalleeSummaryPreservesUntouchedRegisters) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto fn = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, 39);
  a.mov(Gpr::rdi, 5);
  a.call(fn);
  const std::uint64_t site = kBase + a.offset();
  a.syscall_();
  apps::emit_exit(a, 0);
  a.bind(fn);
  a.mov(Gpr::rbx, 1);  // only rbx is written
  a.ret();
  const Analyzed an = analyze(a, entry, "callee-preserves");
  EXPECT_EQ(an.df.value_at(site, Gpr::rax).values(),
            std::set<std::uint64_t>{39});
  EXPECT_EQ(an.df.value_at(site, Gpr::rdi).values(),
            std::set<std::uint64_t>{5});
  EXPECT_GE(an.df.callee_summaries, 1u);
  EXPECT_EQ(an.df.conservative_calls, 0u);
}

TEST(DataflowTest, CalleeReturnValueFlowsToCaller) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto fn = a.new_label();
  a.bind(entry);
  a.call(fn);
  const std::uint64_t site = kBase + a.offset();
  a.syscall_();
  apps::emit_exit(a, 0);
  a.bind(fn);
  a.mov(Gpr::rax, kern::kSysGetpid);
  a.ret();
  const Analyzed an = analyze(a, entry, "callee-returns");
  EXPECT_EQ(an.df.value_at(site, Gpr::rax).values(),
            std::set<std::uint64_t>{static_cast<std::uint64_t>(
                kern::kSysGetpid)});
}

TEST(DataflowTest, CallSiteContextFlowsIntoCallee) {
  // The whole-program fixpoint joins caller state into the callee's entry,
  // so a site INSIDE the callee sees the caller's constants (call-strings of
  // length zero).
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto fn = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, kern::kSysGetpid);
  a.call(fn);
  apps::emit_exit(a, 0);
  a.ret();  // terminate the exit block: otherwise it falls through into fn
            // (the CFG cannot know exit_group never returns) and joins ⊤
  a.bind(fn);
  const std::uint64_t site = kBase + a.offset();
  a.syscall_();
  a.ret();
  const Analyzed an = analyze(a, entry, "context-into-callee");
  EXPECT_EQ(an.df.value_at(site, Gpr::rax).values(),
            std::set<std::uint64_t>{static_cast<std::uint64_t>(
                kern::kSysGetpid)});
}

TEST(DataflowTest, ComputedCallClobbersEverything) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, 5);
  a.mov(Gpr::rax, kBase);
  a.call_rax();
  const std::uint64_t site = kBase + a.offset();
  a.syscall_();
  apps::emit_exit(a, 0);
  const Analyzed an = analyze(a, entry, "computed-call");
  EXPECT_TRUE(an.df.value_at(site, Gpr::rdi).is_top());
  EXPECT_TRUE(an.df.value_at(site, Gpr::rax).is_top());
}

TEST(DataflowTest, RecursionDegradesConservatively) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto fn = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, 5);
  a.call(fn);
  const std::uint64_t site = kBase + a.offset();
  a.syscall_();
  apps::emit_exit(a, 0);
  a.bind(fn);
  a.sub(Gpr::rbx, 1);
  a.cmp(Gpr::rbx, 0);
  a.jnz(fn);  // loop, plus a self-call to force the recursion path
  a.call(fn);
  a.ret();
  const Analyzed an = analyze(a, entry, "recursion");
  // The self-call makes the summary conservative: everything post-call ⊤.
  EXPECT_TRUE(an.df.value_at(site, Gpr::rdi).is_top());
  EXPECT_GE(an.df.conservative_calls, 1u);
}

TEST(DataflowTest, AbsentAddressReportsTop) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  apps::emit_exit(a, 0);
  const Analyzed an = analyze(a, entry, "absent");
  EXPECT_TRUE(an.df.value_at(0xdead'beef, Gpr::rax).is_top());
}

}  // namespace
}  // namespace lzp
