// Property-style suites (parameterized sweeps + randomized invariants):
//   * the decoder is total and never mis-sizes (fuzz over random bytes),
//   * the zpoline sled property holds for EVERY syscall number: call rax
//     with rax = nr lands in the sled and reaches the interposer,
//   * validated BPF programs always terminate within the insn bound,
//   * XState serialization round-trips for arbitrary states,
//   * lazypoline's laziness invariant: syscalls-through-slow-path == number
//     of distinct sites, independent of iteration count.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "bpf/seccomp_filter.hpp"
#include "core/lazypoline.hpp"
#include "isa/decode.hpp"
#include "sim_test_util.hpp"

namespace lzp {
namespace {

// --- decoder totality fuzz -------------------------------------------------

class DecodeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzzTest, DecoderNeverCrashesOrOverruns) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 20000; ++i) {
    std::uint8_t buffer[isa::kMaxInsnLength];
    const std::size_t length = 1 + rng.next_below(isa::kMaxInsnLength);
    for (std::size_t b = 0; b < length; ++b) {
      buffer[b] = static_cast<std::uint8_t>(rng.next());
    }
    auto decoded = isa::decode({buffer, length});
    if (decoded.is_ok()) {
      EXPECT_LE(decoded.value().length, length);
      EXPECT_GE(decoded.value().length, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzzTest,
                         ::testing::Values(1, 2, 3, 17, 99));

// --- nop sled property over syscall numbers -----------------------------------

class SledEntryTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SledEntryTest, CallRaxWithAnySyscallNumberReachesInterposer) {
  const std::uint64_t nr = GetParam();
  // A program whose syscall is pre-rewritten by lazypoline: executing it
  // lands at VA nr, slides through the sled, and reaches the entry.
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rax, nr);
  a.syscall_();
  apps::emit_exit(a, 0);
  auto program = isa::make_program("sled-" + std::to_string(nr), a, entry).value();

  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto handler = std::make_shared<interpose::TracingHandler>();
  auto runtime = core::Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());
  // Pre-rewrite the site so execution takes the pure fast path.
  ASSERT_TRUE(runtime
                  ->rewrite_site_manually(tid,
                                          program.true_syscall_addresses()[0])
                  .is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  ASSERT_FALSE(handler->trace().empty());
  EXPECT_EQ(handler->trace()[0].nr, nr);
}

INSTANTIATE_TEST_SUITE_P(SyscallNumbers, SledEntryTest,
                         ::testing::Values(0, 1, 39, 60, 231, 257, 318, 499,
                                           500, kern::kMaxSyscallNumber));

// --- BPF termination -----------------------------------------------------------

class BpfTerminationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BpfTerminationTest, ValidatedProgramsTerminateWithinBound) {
  Xoshiro256 rng(GetParam());
  int validated = 0;
  for (int attempt = 0; attempt < 3000; ++attempt) {
    const std::size_t length = 1 + rng.next_below(12);
    std::vector<bpf::Insn> program(length);
    for (auto& insn : program) {
      insn.code = static_cast<std::uint16_t>(rng.next_below(0x200));
      insn.jt = static_cast<std::uint8_t>(rng.next_below(4));
      insn.jf = static_cast<std::uint8_t>(rng.next_below(4));
      insn.k = static_cast<std::uint32_t>(rng.next_below(64)) * 4;
    }
    // Force a terminating tail so some programs validate.
    program.back() = bpf::stmt(bpf::BPF_RET | bpf::BPF_K, 0);
    if (!bpf::validate(program, bpf::SeccompData::kSize).is_ok()) continue;
    ++validated;
    bpf::SeccompData data;
    data.nr = static_cast<std::int32_t>(rng.next_below(512));
    auto result = bpf::run(program, data.serialize());
    ASSERT_TRUE(result.is_ok() ||
                result.status().code() != StatusCode::kInternal)
        << "validated program must not run away";
    if (result.is_ok()) {
      EXPECT_LE(result.value().insns_executed, program.size());
    }
  }
  EXPECT_GT(validated, 10) << "fuzz should produce some valid programs";
}

INSTANTIATE_TEST_SUITE_P(Seeds, BpfTerminationTest, ::testing::Values(7, 8, 9));

// --- XState round trip ------------------------------------------------------------

class XstateRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XstateRoundTripTest, SaveLoadIsIdentity) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    cpu::XState state;
    for (auto& lanes : state.xmm) lanes = {rng.next(), rng.next()};
    for (auto& lanes : state.ymm_hi) lanes = {rng.next(), rng.next()};
    const std::uint64_t pushes = rng.next_below(12);
    for (std::uint64_t p = 0; p < pushes; ++p) state.x87_push(rng.next());
    state.mxcsr = static_cast<std::uint32_t>(rng.next());
    state.fcw = static_cast<std::uint16_t>(rng.next());

    std::vector<std::uint8_t> buffer(cpu::XState::kSaveSize);
    state.save_to(buffer);
    cpu::XState restored;
    restored.load_from(buffer);
    ASSERT_EQ(restored, state);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XstateRoundTripTest,
                         ::testing::Values(11, 12, 13));

// --- lazypoline laziness invariant --------------------------------------------------

class LazinessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazinessTest, SlowPathHitsEqualDistinctSitesNotIterations) {
  const std::uint64_t iterations = GetParam();
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);

  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto runtime = core::Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime
                  ->install(machine, tid,
                            std::make_shared<interpose::DummyHandler>())
                  .is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();

  // 2 distinct sites (loop body + exit), regardless of iteration count.
  EXPECT_EQ(runtime->stats().slow_path_hits, 2u);
  EXPECT_EQ(runtime->stats().sites_rewritten, 2u);
  EXPECT_EQ(runtime->stats().entry_invocations, iterations + 1);
}

INSTANTIATE_TEST_SUITE_P(Iterations, LazinessTest,
                         ::testing::Values(1, 2, 10, 100, 1000));

// --- interposition transparency sweep ----------------------------------------------

// Whatever the mechanism, a dummy-interposed run must produce the same
// application-visible results as a native run.
class TransparencyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(TransparencyTest, DummyInterpositionIsInvisible) {
  const auto [nr, iterations] = GetParam();
  auto program = testutil::make_syscall_loop(nr, iterations);

  int native_code = 0;
  {
    kern::Machine machine;
    native_code = testutil::load_and_run(machine, program);
  }
  int interposed_code = 0;
  std::uint64_t interposed_traces = 0;
  {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    auto tid = machine.load(program).value();
    auto handler = std::make_shared<interpose::TracingHandler>();
    auto runtime = core::Lazypoline::create(machine, {});
    ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());
    auto stats = machine.run();
    EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
    interposed_code = machine.find_task(tid)->exit_code;
    interposed_traces = handler->trace().size();
  }
  EXPECT_EQ(native_code, interposed_code);
  EXPECT_EQ(interposed_traces, iterations + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TransparencyTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(kern::kSysGetpid,
                                                        kern::kSysGettid,
                                                        kern::kSysSchedYield,
                                                        kern::kSysNonexistent),
                       ::testing::Values<std::uint64_t>(1, 7, 64)));


// --- randomized transparency fuzz ---------------------------------------------
//
// Generate random-but-well-defined straight-line programs (arithmetic,
// memory traffic in the data region, xstate use, balanced push/pop, and
// sprinkled syscalls), run each natively and under lazypoline with a dummy
// interposer, and require identical observable behaviour: exit code, final
// data-region contents, and one trace entry per executed syscall.
// Registers the syscall ABI leaves undefined after SYSCALL (rcx, r11) are
// excluded from the pool, as reading them is undefined behaviour.
class TransparencyFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

namespace fuzz {

struct Generated {
  isa::Program program;
  std::uint64_t syscalls = 0;
};

Generated make_random_program(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  using isa::Gpr;
  // Well-defined register pool (no rsp, no ABI-clobbered rcx/r11, r9 is the
  // reserved data-region base).
  const Gpr pool[] = {Gpr::rax, Gpr::rbx, Gpr::rdx,  Gpr::rbp,  Gpr::rsi,
                      Gpr::rdi, Gpr::r8,  Gpr::r10,  Gpr::r12,  Gpr::r13,
                      Gpr::r14, Gpr::r15};
  auto reg = [&] { return pool[rng.next_below(std::size(pool))]; };
  auto disp = [&] { return static_cast<std::int32_t>(rng.next_below(64) * 8); };

  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::r9, apps::kDataBase);
  for (Gpr r : pool) a.mov(r, rng.next_below(0xFFFF));

  Generated out;
  const std::uint64_t length = 30 + rng.next_below(50);
  for (std::uint64_t i = 0; i < length; ++i) {
    switch (rng.next_below(12)) {
      case 0: a.mov(reg(), rng.next_below(1 << 20)); break;
      case 1: a.mov(reg(), reg()); break;
      case 2: a.add(reg(), reg()); break;
      case 3: a.sub(reg(), reg()); break;
      case 4: a.mul(reg(), reg()); break;
      case 5: a.add(reg(), static_cast<std::int32_t>(rng.next_below(2000)) - 1000); break;
      case 6: a.store(Gpr::r9, disp(), reg()); break;
      case 7: a.load(reg(), Gpr::r9, disp()); break;
      case 8: {
        const auto xmm = static_cast<std::uint8_t>(rng.next_below(16));
        a.xmov_from_gpr(xmm, reg());
        a.xstore(Gpr::r9, static_cast<std::int32_t>(0x200 + rng.next_below(16) * 16), xmm);
        break;
      }
      case 9: {
        const Gpr r1 = reg();
        const Gpr r2 = reg();
        a.push(r1);
        a.pop(r2);
        break;
      }
      case 10: {
        a.mov(Gpr::rax, rng.next_below(2) == 0
                            ? std::uint64_t{kern::kSysGetpid}
                            : std::uint64_t{kern::kSysSchedYield});
        a.syscall_();
        ++out.syscalls;
        break;
      }
      case 11: {
        a.fld(rng.next());
        a.fstp(reg());
        break;
      }
    }
  }
  a.mov(Gpr::rdi, Gpr::rbx);
  apps::emit_syscall(a, kern::kSysExitGroup);
  ++out.syscalls;
  out.program =
      isa::make_program("fuzz-" + std::to_string(seed), a, entry).value();
  return out;
}

struct Observed {
  int exit_code = 0;
  std::vector<std::uint8_t> data;
  std::uint64_t traced = 0;
};

Observed run_native(const isa::Program& program) {
  kern::Machine machine;
  kern::Tid tid = 0;
  Observed obs;
  obs.exit_code = testutil::load_and_run(machine, program, &tid);
  obs.data.resize(0x300);
  EXPECT_TRUE(machine.find_task(tid)
                  ->mem->read_force(apps::kDataBase, obs.data)
                  .is_ok());
  return obs;
}

Observed run_lazypoline(const isa::Program& program) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  const kern::Tid tid = machine.load(program).value();
  auto handler = std::make_shared<interpose::TracingHandler>();
  auto runtime = core::Lazypoline::create(machine, {});
  EXPECT_TRUE(runtime->install(machine, tid, handler).is_ok());
  const auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  Observed obs;
  obs.exit_code = machine.find_task(tid)->exit_code;
  obs.data.resize(0x300);
  EXPECT_TRUE(machine.find_task(tid)
                  ->mem->read_force(apps::kDataBase, obs.data)
                  .is_ok());
  obs.traced = handler->trace().size();
  return obs;
}

}  // namespace fuzz

TEST_P(TransparencyFuzzTest, RandomProgramsBehaveIdentically) {
  Xoshiro256 seeder(GetParam());
  for (int round = 0; round < 25; ++round) {
    const std::uint64_t seed = seeder.next();
    const fuzz::Generated generated = fuzz::make_random_program(seed);
    const fuzz::Observed native = fuzz::run_native(generated.program);
    const fuzz::Observed interposed = fuzz::run_lazypoline(generated.program);
    ASSERT_EQ(native.exit_code, interposed.exit_code) << "seed " << seed;
    ASSERT_EQ(native.data, interposed.data) << "seed " << seed;
    ASSERT_EQ(interposed.traced, generated.syscalls) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransparencyFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace lzp
