// Shared helpers for the test suites: canned programs and run utilities.
#pragma once

#include <gtest/gtest.h>

#include "apps/minilibc.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::testutil {

// A program that performs `iterations` syscalls of number `nr` in a loop,
// then exits cleanly. The workhorse of the microbenchmark-shaped tests.
inline isa::Program make_syscall_loop(std::uint64_t nr, std::uint64_t iterations,
                                      std::string name = "syscall-loop") {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, iterations);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, nr);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  auto program = isa::make_program(std::move(name), a, entry);
  EXPECT_TRUE(program.is_ok())
      << (program.is_ok() ? "" : program.status().to_string());
  return std::move(program).value();
}

// A one-shot program: getpid once, exit with its result's low byte.
inline isa::Program make_getpid_once() {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.mov(isa::Gpr::rdi, isa::Gpr::rax);
  a.mov(isa::Gpr::rax, kern::kSysExitGroup);
  a.syscall_();
  auto program = isa::make_program("getpid-once", a, entry);
  EXPECT_TRUE(program.is_ok());
  return std::move(program).value();
}

// Loads `program`, runs to completion, returns the task's exit code.
// Fails the test if the machine does not quiesce.
inline int load_and_run(kern::Machine& machine, const isa::Program& program,
                        kern::Tid* tid_out = nullptr) {
  auto tid = machine.load(program);
  EXPECT_TRUE(tid.is_ok()) << (tid.is_ok() ? "" : tid.status().to_string());
  if (!tid.is_ok()) return -1;
  if (tid_out != nullptr) *tid_out = tid.value();
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << "machine did not quiesce; fatal: "
                                << machine.last_fatal();
  kern::Task* task = machine.find_task(tid.value());
  EXPECT_NE(task, nullptr);
  return task == nullptr ? -1 : task->exit_code;
}

// Cycles charged to a task across a full run of `program` on a fresh
// machine configured by `setup` (may be null).
inline std::uint64_t measure_cycles(
    const isa::Program& program,
    const std::function<void(kern::Machine&, kern::Tid)>& setup = nullptr,
    kern::CostModel costs = {}) {
  kern::Machine machine(costs);
  machine.mmap_min_addr = 0;
  auto tid = machine.load(program);
  EXPECT_TRUE(tid.is_ok());
  if (setup) setup(machine, tid.value());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  return machine.find_task(tid.value())->cycles;
}

}  // namespace lzp::testutil
