#include <gtest/gtest.h>

#include "apps/minicc.hpp"
#include "sim_test_util.hpp"

namespace lzp::apps::minicc {
namespace {

// Compiles `source` and runs its main() on a fresh machine, returning main's
// return value (via the exit code of a thin launcher).
int compile_and_run(const std::string& source) {
  auto compiled = compile(source);
  EXPECT_TRUE(compiled.is_ok())
      << (compiled.is_ok() ? "" : compiled.status().to_string());
  if (!compiled.is_ok()) return -999;

  // Launcher: call the compiled code mapped at a fixed address, then exit
  // with its return value.
  const std::uint64_t code_base = 0x50'0000;
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rax, code_base + compiled.value().entry_offset);
  a.call_rax();
  a.mov(isa::Gpr::rdi, isa::Gpr::rax);
  emit_syscall(a, kern::kSysExitGroup);
  auto launcher = isa::make_program("launcher", a, entry).value();

  kern::Machine machine;
  auto tid = machine.load(launcher).value();
  kern::Task* task = machine.find_task(tid);
  EXPECT_TRUE(task->mem
                  ->map(code_base, compiled.value().code.size(),
                        mem::kProtRead | mem::kProtExec, true)
                  .is_ok());
  EXPECT_TRUE(task->mem->write_force(code_base, compiled.value().code).is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  return task->exit_code;
}

TEST(MiniccTest, ReturnsConstant) {
  EXPECT_EQ(compile_and_run("int main() { return 42; }"), 42);
}

TEST(MiniccTest, ImplicitReturnZero) {
  EXPECT_EQ(compile_and_run("int main() { int x = 5; }"), 0);
}

TEST(MiniccTest, Arithmetic) {
  EXPECT_EQ(compile_and_run("int main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(compile_and_run("int main() { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(compile_and_run("int main() { return 10 - 3 - 2; }"), 5);
  EXPECT_EQ(compile_and_run("int main() { return -7 + 10; }"), 3);
}

TEST(MiniccTest, VariablesAndAssignment) {
  EXPECT_EQ(compile_and_run(R"(
    int main() {
      int a = 6;
      int b = 7;
      int c = a * b;
      c = c + 1;
      return c;
    })"),
            43);
}

TEST(MiniccTest, Comparisons) {
  EXPECT_EQ(compile_and_run("int main() { return 3 < 4; }"), 1);
  EXPECT_EQ(compile_and_run("int main() { return 4 < 3; }"), 0);
  EXPECT_EQ(compile_and_run("int main() { return 5 == 5; }"), 1);
  EXPECT_EQ(compile_and_run("int main() { return 5 != 5; }"), 0);
  EXPECT_EQ(compile_and_run("int main() { return 9 > 2; }"), 1);
}

TEST(MiniccTest, IfElse) {
  EXPECT_EQ(compile_and_run(R"(
    int main() {
      int x = 10;
      if (x > 5) { return 1; } else { return 2; }
    })"),
            1);
  EXPECT_EQ(compile_and_run(R"(
    int main() {
      int x = 3;
      if (x > 5) { return 1; } else { return 2; }
    })"),
            2);
  EXPECT_EQ(compile_and_run(R"(
    int main() {
      int r = 0;
      if (1) { r = 7; }
      return r;
    })"),
            7);
}

TEST(MiniccTest, WhileLoop) {
  EXPECT_EQ(compile_and_run(R"(
    int main() {
      int sum = 0;
      int i = 1;
      while (i < 11) {
        sum = sum + i;
        i = i + 1;
      }
      return sum;
    })"),
            55);
}

TEST(MiniccTest, NestedControlFlow) {
  EXPECT_EQ(compile_and_run(R"(
    int main() {
      int count = 0;
      int i = 0;
      while (i < 10) {
        if (i * 2 > 8) {
          count = count + 1;
        }
        i = i + 1;
      }
      return count;
    })"),
            5);  // i in {5..9}
}

TEST(MiniccTest, UserFunctionCalls) {
  EXPECT_EQ(compile_and_run(R"(
    int five() { return 5; }
    int six() { return five() + 1; }
    int main() { return five() * six(); }
  )"),
            30);
}

TEST(MiniccTest, ForwardFunctionReference) {
  EXPECT_EQ(compile_and_run(R"(
    int main() { return later(); }
    int later() { return 99; }
  )"),
            99);
}

TEST(MiniccTest, SyscallBuiltinEmitsRealSyscall) {
  auto compiled = compile("int main() { return syscall1(39, 0); }");
  ASSERT_TRUE(compiled.is_ok());
  EXPECT_EQ(compiled.value().syscall_site_count(), 1u);
  // Running it returns the pid.
  EXPECT_EQ(compile_and_run("int main() { return syscall1(39, 0); }"), 100);
}

TEST(MiniccTest, SyscallWithThreeArgs) {
  // write(1, <unmapped>, 0) returns 0 (zero-length write short-circuits the
  // buffer read).
  EXPECT_EQ(compile_and_run("int main() { return syscall3(1, 1, 0, 0); }"), 0);
}

TEST(MiniccTest, Comments) {
  EXPECT_EQ(compile_and_run(R"(
    // leading comment
    int main() {
      // inner comment
      return 8; // trailing
    })"),
            8);
}


TEST(MiniccTest, DivisionAndModulo) {
  EXPECT_EQ(compile_and_run("int main() { return 17 / 5; }"), 3);
  EXPECT_EQ(compile_and_run("int main() { return 17 % 5; }"), 2);
  EXPECT_EQ(compile_and_run("int main() { return 100 / 5 / 2; }"), 10);
  EXPECT_EQ(compile_and_run("int main() { return 2 + 9 % 4; }"), 3);
  EXPECT_EQ(compile_and_run("int main() { return -9 / 2; }"), -4);
}

TEST(MiniccTest, DivisionByZeroRaisesSigfpe) {
  // #DE -> SIGFPE -> default disposition kills the process.
  EXPECT_EQ(compile_and_run("int main() { int z = 0; return 5 / z; }"),
            128 + kern::kSigfpe);
}

TEST(MiniccTest, LessEqualGreaterEqual) {
  EXPECT_EQ(compile_and_run("int main() { return 3 <= 3; }"), 1);
  EXPECT_EQ(compile_and_run("int main() { return 4 <= 3; }"), 0);
  EXPECT_EQ(compile_and_run("int main() { return 3 >= 3; }"), 1);
  EXPECT_EQ(compile_and_run("int main() { return 2 >= 3; }"), 0);
  EXPECT_EQ(compile_and_run(R"(
    int main() {
      int count = 0;
      int i = 1;
      while (i <= 10) {
        count = count + i;
        i = i + 1;
      }
      return count;
    })"),
            55);
}


TEST(MiniccTest, FunctionParameters) {
  EXPECT_EQ(compile_and_run(R"(
    int add(int a, int b) { return a + b; }
    int main() { return add(40, 2); }
  )"),
            42);
  EXPECT_EQ(compile_and_run(R"(
    int weigh(int a, int b, int c) { return a * 100 + b * 10 + c; }
    int main() { return weigh(1, 2, 3); }
  )"),
            123);
  // Arguments are full expressions, including nested calls.
  EXPECT_EQ(compile_and_run(R"(
    int dbl(int x) { return x * 2; }
    int main() { return dbl(dbl(5) + 1); }
  )"),
            22);
}

TEST(MiniccTest, RecursionWorksThroughTheStack) {
  EXPECT_EQ(compile_and_run(R"(
    int fib(int n) {
      if (n <= 1) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(10); }
  )"),
            55);
  EXPECT_EQ(compile_and_run(R"(
    int fact(int n) {
      if (n <= 1) { return 1; }
      return n * fact(n - 1);
    }
    int main() { return fact(6); }
  )"),
            720);
}

TEST(MiniccTest, ParametersShadowableByLocals) {
  EXPECT_EQ(compile_and_run(R"(
    int f(int a) {
      int b = a + 1;
      a = a * 10;
      return a + b;
    }
    int main() { return f(3); }
  )"),
            34);
}

TEST(MiniccTest, ArityMismatchIsDiagnosed) {
  EXPECT_FALSE(compile(R"(
    int add(int a, int b) { return a + b; }
    int main() { return add(1); }
  )").is_ok());
  EXPECT_FALSE(compile(R"(
    int zero() { return 0; }
    int main() { return zero(7); }
  )").is_ok());
  EXPECT_FALSE(compile(R"(
    int f(int a, int a) { return a; }
    int main() { return f(1, 2); }
  )").is_ok());
}


TEST(MiniccTest, LogicalOperatorsShortCircuit) {
  EXPECT_EQ(compile_and_run("int main() { return 1 && 1; }"), 1);
  EXPECT_EQ(compile_and_run("int main() { return 1 && 0; }"), 0);
  EXPECT_EQ(compile_and_run("int main() { return 0 || 3; }"), 1);
  EXPECT_EQ(compile_and_run("int main() { return 0 || 0; }"), 0);
  EXPECT_EQ(compile_and_run("int main() { return 1 && 2 && 3; }"), 1);
  EXPECT_EQ(compile_and_run("int main() { return 0 || 0 || 5; }"), 1);
  // Precedence: && binds tighter than ||.
  EXPECT_EQ(compile_and_run("int main() { return 1 || 0 && 0; }"), 1);
  // Short-circuit: the divide-by-zero on the right is never evaluated.
  EXPECT_EQ(compile_and_run(R"(
    int boom() { int z = 0; return 1 / z; }
    int main() {
      if (0 && boom()) { return 1; }
      if (1 || boom()) { return 2; }
      return 3;
    })"),
            2);
}

TEST(MiniccTest, ElseIfChains) {
  const char* source = R"(
    int grade(int score) {
      if (score >= 90) { return 4; }
      else if (score >= 80) { return 3; }
      else if (score >= 70) { return 2; }
      else { return 1; }
    }
    int main() {
      return grade(95) * 1000 + grade(85) * 100 + grade(75) * 10 + grade(10);
    })";
  EXPECT_EQ(compile_and_run(source), 4321);
}

TEST(MiniccTest, ErrorsAreDiagnosed) {
  EXPECT_FALSE(compile("").is_ok());                       // no main
  EXPECT_FALSE(compile("int main() { return x; }").is_ok());  // unknown var
  EXPECT_FALSE(compile("int main() { return 1 }").is_ok());   // missing ';'
  EXPECT_FALSE(compile("int main() { @ }").is_ok());          // stray char
  EXPECT_FALSE(compile("int f() {} int f() {}").is_ok());     // redefinition
  EXPECT_FALSE(compile("int main() { return nosuch(); }").is_ok());
  EXPECT_FALSE(compile("int main() { int a = 1; int a = 2; }").is_ok());
  EXPECT_FALSE(compile("int main() { return syscall1(39); }").is_ok());
}

TEST(MiniccTest, GroundTruthSitesAreAccurate) {
  auto compiled = compile(R"(
    int main() {
      int a = syscall0(39);
      int b = syscall0(186);
      return a + b;
    })");
  ASSERT_TRUE(compiled.is_ok());
  EXPECT_EQ(compiled.value().syscall_site_count(), 2u);
}

}  // namespace
}  // namespace lzp::apps::minicc
