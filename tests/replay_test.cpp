// Tests for the record/replay subsystem (src/replay): trace format round
// trips, the record→replay round-trip property under all four interposition
// mechanisms, exact-boundary signal replay, multi-task schedule replay,
// divergence detection, and the record-mode nondeterminism audit.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "sim_test_util.hpp"
#include "zpoline/zpoline.hpp"

namespace {
using namespace lzp;
using kern::Machine;
using kern::Task;
using kern::Tid;

enum class Mech { kPtrace, kSud, kZpoline, kLazypoline };

const char* mech_name(Mech mech) {
  switch (mech) {
    case Mech::kPtrace: return "ptrace";
    case Mech::kSud: return "sud";
    case Mech::kZpoline: return "zpoline";
    case Mech::kLazypoline: return "lazypoline";
  }
  return "?";
}

void install_mechanism(Machine& machine, Tid tid,
                       std::shared_ptr<interpose::SyscallHandler> handler,
                       Mech mech) {
  switch (mech) {
    case Mech::kPtrace: {
      mechanisms::PtraceMechanism mechanism;
      ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
      break;
    }
    case Mech::kSud: {
      mechanisms::SudMechanism mechanism;
      ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
      break;
    }
    case Mech::kZpoline: {
      zpoline::ZpolineMechanism mechanism;
      ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
      break;
    }
    case Mech::kLazypoline: {
      core::LazypolineConfig config;
      auto runtime = core::Lazypoline::create(machine, config);
      ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());
      break;
    }
  }
}

// --- trace format ----------------------------------------------------------

replay::Trace make_sample_trace() {
  replay::Trace trace;
  trace.header.rng_seed = 0xDEADBEEF;
  trace.header.mechanism = "sud";
  trace.header.workload = "sample";

  replay::SyscallEvent syscall;
  syscall.tid = 4;
  syscall.nr = kern::kSysRead;
  syscall.args = {3, 0x601000, 128, 0, 0, 0};
  syscall.result = 17;
  syscall.insns_retired = 1234;
  syscall.reg_hash = 0xABCDEF;
  syscall.patches.push_back(replay::MemPatch{0x601000, {1, 2, 3, 4, 5}});
  trace.events.emplace_back(syscall);

  trace.events.emplace_back(replay::ScheduleEvent{4, 64});

  replay::SignalEvent signal;
  signal.tid = 4;
  signal.signo = kern::kSigusr1;
  signal.external = true;
  signal.insns_retired = 2000;
  signal.machine_insns = 2345;
  trace.events.emplace_back(signal);

  trace.events.emplace_back(replay::NondetEvent{4, kern::kSysGetrandom, 0});
  return trace;
}

TEST(TraceFormat, BinaryRoundTrip) {
  const replay::Trace trace = make_sample_trace();
  const auto bytes = trace.serialize();
  auto restored = replay::Trace::deserialize(bytes);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), trace);
}

TEST(TraceFormat, FileRoundTrip) {
  const replay::Trace trace = make_sample_trace();
  const std::string path = ::testing::TempDir() + "/replay_test.trace";
  ASSERT_TRUE(trace.save(path).is_ok());
  auto restored = replay::Trace::load(path);
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value(), trace);
  std::remove(path.c_str());
}

TEST(TraceFormat, RejectsGarbage) {
  std::vector<std::uint8_t> garbage = {0x00, 0x01, 0x02, 0x03};
  EXPECT_FALSE(replay::Trace::deserialize(garbage).is_ok());
  EXPECT_FALSE(replay::Trace::load("/nonexistent/trace").is_ok());
}

TEST(TraceFormat, EventToStringIsHumanReadable) {
  const replay::Trace trace = make_sample_trace();
  const std::string line = replay::event_to_string(trace.events[0]);
  EXPECT_NE(line.find("read"), std::string::npos);
  EXPECT_NE(line.find("= 17"), std::string::npos);
}

// --- round-trip property ---------------------------------------------------

struct RunOutcome {
  kern::RunStats stats;
  std::vector<int> exit_codes;
  std::vector<std::uint64_t> insns_retired;
};

RunOutcome collect(Machine& machine, const std::vector<Tid>& tids,
                   kern::RunStats stats) {
  RunOutcome outcome;
  outcome.stats = stats;
  for (Tid tid : tids) {
    Task* task = machine.find_task(tid);
    EXPECT_NE(task, nullptr);
    if (task != nullptr) {
      outcome.exit_codes.push_back(task->exit_code);
      outcome.insns_retired.push_back(task->insns_retired);
    }
  }
  return outcome;
}

// Records a syscall-loop run under `mech`, replays the trace on a fresh
// machine, and checks the round-trip property.
void round_trip_loop(Mech mech) {
  SCOPED_TRACE(mech_name(mech));
  const auto program = testutil::make_syscall_loop(kern::kSysGetpid, 40);

  auto recorder = std::make_shared<replay::Recorder>();
  RunOutcome recorded;
  {
    Machine machine;
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    recorder->attach(machine, /*rng_seed=*/42, mech_name(mech), "loop");
    const Tid tid = machine.load(program).value();
    install_mechanism(machine, tid, recorder, mech);
    const auto stats = machine.run();
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    recorded = collect(machine, {tid}, stats);
    EXPECT_FALSE(recorder->uncaptured_nondeterminism());
  }
  ASSERT_GT(recorder->trace().syscall_count(), 0u);
  ASSERT_GT(recorder->trace().count(replay::EventKind::kSchedule), 0u);

  auto replayer = std::make_shared<replay::Replayer>(recorder->take_trace());
  {
    Machine machine;
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    replayer->attach(machine);
    const Tid tid = machine.load(program).value();
    install_mechanism(machine, tid, replayer, mech);
    const auto stats = machine.run();
    EXPECT_TRUE(replayer->status().is_ok()) << replayer->status().to_string();
    EXPECT_TRUE(replayer->finished());
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    const RunOutcome replayed = collect(machine, {tid}, stats);
    EXPECT_EQ(replayed.exit_codes, recorded.exit_codes);
    EXPECT_EQ(replayed.insns_retired, recorded.insns_retired);
    EXPECT_EQ(replayed.stats.insns, recorded.stats.insns);
  }
  EXPECT_GT(replayer->stats().syscalls_injected, 0u);
}

TEST(ReplayRoundTrip, SyscallLoopPtrace) { round_trip_loop(Mech::kPtrace); }
TEST(ReplayRoundTrip, SyscallLoopSud) { round_trip_loop(Mech::kSud); }
TEST(ReplayRoundTrip, SyscallLoopZpoline) { round_trip_loop(Mech::kZpoline); }
TEST(ReplayRoundTrip, SyscallLoopLazypoline) {
  round_trip_loop(Mech::kLazypoline);
}

// The acceptance-criteria workload: a multi-task webserver run, recorded and
// replayed under every mechanism. Replay runs with NO live network client:
// all net/vfs payloads come from the trace.
void round_trip_webserver(Mech mech) {
  SCOPED_TRACE(mech_name(mech));
  constexpr std::uint64_t kRequests = 40;
  constexpr std::uint64_t kFileSize = 512;
  constexpr int kWorkers = 2;
  const apps::ServerProfile profile = apps::nginx_profile();

  auto build = [&](Machine& machine, bool live_client,
                   std::vector<Tid>* tids,
                   std::shared_ptr<interpose::SyscallHandler> handler,
                   int* listener_out) {
    machine.mmap_min_addr = 0;
    ASSERT_TRUE(machine.vfs().put_file_of_size("index.html", kFileSize).is_ok());
    kern::ClientWorkload workload;
    workload.connections = 4;
    workload.total_requests = live_client ? kRequests : 0;
    workload.response_bytes = profile.header_bytes + kFileSize;
    const int listener = machine.net().create_listener(workload);
    *listener_out = listener;

    auto program = apps::make_webserver(machine, profile, "index.html");
    ASSERT_TRUE(program.is_ok()) << program.status().to_string();
    machine.register_program(program.value());
    for (int w = 0; w < kWorkers; ++w) {
      const Tid tid = machine.load(program.value()).value();
      kern::FdEntry entry;
      entry.kind = kern::FdEntry::Kind::kListener;
      entry.net_id = listener;
      machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
      tids->push_back(tid);
      install_mechanism(machine, tid, handler, mech);
    }
  };

  auto recorder = std::make_shared<replay::Recorder>();
  RunOutcome recorded;
  {
    Machine machine;
    recorder->attach(machine, /*rng_seed=*/7, mech_name(mech), "webserver");
    std::vector<Tid> tids;
    int listener = -1;
    build(machine, /*live_client=*/true, &tids, recorder, &listener);
    const auto stats = machine.run(400'000'000ULL);
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    ASSERT_EQ(machine.net().completed_requests(listener), kRequests);
    recorded = collect(machine, tids, stats);
    EXPECT_FALSE(recorder->uncaptured_nondeterminism());
  }
  const std::size_t recorded_syscalls = recorder->trace().syscall_count();
  ASSERT_GT(recorded_syscalls, 0u);

  auto replayer = std::make_shared<replay::Replayer>(recorder->take_trace());
  {
    Machine machine;
    replayer->attach(machine);
    std::vector<Tid> tids;
    int listener = -1;
    // No live client: the replayed workers are fed entirely from the trace.
    build(machine, /*live_client=*/false, &tids, replayer, &listener);
    const auto stats = machine.run(400'000'000ULL);
    EXPECT_TRUE(replayer->status().is_ok()) << replayer->status().to_string();
    EXPECT_TRUE(replayer->finished());
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    // Kernel-side network execution really was suppressed.
    EXPECT_EQ(machine.net().completed_requests(listener), 0u);

    const RunOutcome replayed = collect(machine, tids, stats);
    EXPECT_EQ(replayed.exit_codes, recorded.exit_codes);
    EXPECT_EQ(replayed.insns_retired, recorded.insns_retired);
    EXPECT_EQ(replayed.stats.insns, recorded.stats.insns);
  }
  EXPECT_GT(replayer->stats().syscalls_injected, 0u);
  if (mech == Mech::kSud || mech == Mech::kLazypoline) {
    // SUD-based interception delivers SIGSYS per intercepted syscall; replay
    // re-verifies every delivery at its recorded instruction boundary.
    EXPECT_GT(replayer->stats().signals_verified, 0u);
  }
}

TEST(ReplayRoundTrip, WebserverPtrace) { round_trip_webserver(Mech::kPtrace); }
TEST(ReplayRoundTrip, WebserverSud) { round_trip_webserver(Mech::kSud); }
TEST(ReplayRoundTrip, WebserverZpoline) { round_trip_webserver(Mech::kZpoline); }
TEST(ReplayRoundTrip, WebserverLazypoline) {
  round_trip_webserver(Mech::kLazypoline);
}

// --- signal replay ---------------------------------------------------------

std::uint64_t bind_sigusr1_counter(Machine& machine, Tid tid, int* counter) {
  const std::uint64_t addr =
      machine.bind_host("replay_test.sigusr1", [counter](kern::HostFrame& frame) {
        ++*counter;
        (void)frame.syscall(kern::kSysRtSigreturn);
      });
  machine.find_task(tid)->process->sigactions[kern::kSigusr1] =
      kern::SigAction{addr, 0, 0};
  return addr;
}

// An async SIGUSR1 posted from outside the simulation mid-run must be
// re-delivered by the replayer at the exact recorded instruction boundary.
TEST(ReplaySignals, ExternalSignalAtExactBoundary) {
  const auto program =
      testutil::make_syscall_loop(kern::kSysGetpid, 200, "sigloop");

  auto recorder = std::make_shared<replay::Recorder>();
  RunOutcome recorded;
  int recorded_runs = 0;
  {
    Machine machine;
    recorder->attach(machine, /*rng_seed=*/3, "ptrace", "sigloop");
    const Tid tid = machine.load(program).value();
    bind_sigusr1_counter(machine, tid, &recorded_runs);
    install_mechanism(machine, tid, recorder, Mech::kPtrace);
    (void)machine.run(600);  // partial run, then the async signal arrives
    kern::SigInfo info;
    info.signo = kern::kSigusr1;
    ASSERT_TRUE(machine.post_signal(tid, info).is_ok());
    const auto stats = machine.run();
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    recorded = collect(machine, {tid}, stats);
  }
  ASSERT_EQ(recorded_runs, 1);

  // The trace pinned the delivery to an exact per-task instruction count.
  std::uint64_t recorded_boundary = 0;
  for (const auto& event : recorder->trace().events) {
    if (const auto* sig = std::get_if<replay::SignalEvent>(&event)) {
      if (sig->external) {
        EXPECT_EQ(sig->signo, kern::kSigusr1);
        recorded_boundary = sig->insns_retired;
      }
    }
  }
  ASSERT_GT(recorded_boundary, 0u);

  auto replayer = std::make_shared<replay::Replayer>(recorder->take_trace());
  int replayed_runs = 0;
  {
    Machine machine;
    replayer->attach(machine);
    const Tid tid = machine.load(program).value();
    bind_sigusr1_counter(machine, tid, &replayed_runs);
    install_mechanism(machine, tid, replayer, Mech::kPtrace);
    // One continuous run: the replayer re-posts the signal by itself.
    const auto stats = machine.run();
    EXPECT_TRUE(replayer->status().is_ok()) << replayer->status().to_string();
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    const RunOutcome replayed = collect(machine, {tid}, stats);
    EXPECT_EQ(replayed.exit_codes, recorded.exit_codes);
    EXPECT_EQ(replayed.insns_retired, recorded.insns_retired);
    EXPECT_EQ(replayed.stats.insns, recorded.stats.insns);
  }
  EXPECT_EQ(replayed_runs, 1);
  EXPECT_EQ(replayer->stats().signals_posted, 1u);
  // The delivery-boundary check in Replayer::on_signal passed (no
  // divergence), so the replayed delivery hit `recorded_boundary` exactly.
  EXPECT_GE(replayer->stats().signals_verified, 1u);
}

// --- multi-task schedule replay --------------------------------------------

TEST(ReplaySchedule, MultiTaskScheduleIsReplayed) {
  const auto program_a =
      testutil::make_syscall_loop(kern::kSysGetpid, 30, "loop-a");
  const auto program_b =
      testutil::make_syscall_loop(kern::kSysGettid, 50, "loop-b");

  auto recorder = std::make_shared<replay::Recorder>();
  RunOutcome recorded;
  {
    Machine machine;
    recorder->attach(machine, /*rng_seed=*/11, "sud", "two-loops");
    const Tid tid_a = machine.load(program_a).value();
    const Tid tid_b = machine.load(program_b).value();
    install_mechanism(machine, tid_a, recorder, Mech::kSud);
    install_mechanism(machine, tid_b, recorder, Mech::kSud);
    const auto stats = machine.run();
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    recorded = collect(machine, {tid_a, tid_b}, stats);
  }
  const std::size_t recorded_slices =
      recorder->trace().count(replay::EventKind::kSchedule);
  ASSERT_GT(recorded_slices, 2u);  // interleaved execution, not one slice each

  auto replayer = std::make_shared<replay::Replayer>(recorder->take_trace());
  {
    Machine machine;
    replayer->attach(machine);
    const Tid tid_a = machine.load(program_a).value();
    const Tid tid_b = machine.load(program_b).value();
    install_mechanism(machine, tid_a, replayer, Mech::kSud);
    install_mechanism(machine, tid_b, replayer, Mech::kSud);
    const auto stats = machine.run();
    EXPECT_TRUE(replayer->status().is_ok()) << replayer->status().to_string();
    EXPECT_TRUE(replayer->finished());
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    const RunOutcome replayed = collect(machine, {tid_a, tid_b}, stats);
    EXPECT_EQ(replayed.exit_codes, recorded.exit_codes);
    EXPECT_EQ(replayed.insns_retired, recorded.insns_retired);
    EXPECT_EQ(replayed.stats.insns, recorded.stats.insns);
  }
  EXPECT_EQ(replayer->stats().slices_replayed, recorded_slices);
}

// --- divergence detection (negative test) ----------------------------------

TEST(ReplayDivergence, TamperedTraceIsDetected) {
  const auto program = testutil::make_syscall_loop(kern::kSysGetpid, 20);

  auto recorder = std::make_shared<replay::Recorder>();
  {
    Machine machine;
    recorder->attach(machine, /*rng_seed=*/5, "sud", "loop");
    const Tid tid = machine.load(program).value();
    install_mechanism(machine, tid, recorder, Mech::kSud);
    ASSERT_TRUE(machine.run().all_exited);
  }

  replay::Trace trace = recorder->take_trace();
  // Corrupt the recorded instruction count of the third syscall event: the
  // replayed execution will reach that syscall at a different boundary.
  std::size_t seen = 0;
  for (auto& event : trace.events) {
    if (auto* syscall = std::get_if<replay::SyscallEvent>(&event)) {
      if (++seen == 3) {
        syscall->insns_retired += 1;
        break;
      }
    }
  }
  ASSERT_EQ(seen, 3u);

  auto replayer = std::make_shared<replay::Replayer>(std::move(trace));
  {
    Machine machine;
    replayer->attach(machine);
    const Tid tid = machine.load(program).value();
    install_mechanism(machine, tid, replayer, Mech::kSud);
    (void)machine.run();
  }
  EXPECT_TRUE(replayer->diverged());
  EXPECT_NE(replayer->status().to_string().find("instruction-count mismatch"),
            std::string::npos)
      << replayer->status().to_string();
}

TEST(ReplayDivergence, WrongWorkloadDivergesInsteadOfCrashing) {
  const auto recorded_program =
      testutil::make_syscall_loop(kern::kSysGetpid, 20, "recorded");
  const auto other_program =
      testutil::make_syscall_loop(kern::kSysGettid, 20, "other");

  auto recorder = std::make_shared<replay::Recorder>();
  {
    Machine machine;
    recorder->attach(machine, /*rng_seed=*/5, "sud", "loop");
    const Tid tid = machine.load(recorded_program).value();
    install_mechanism(machine, tid, recorder, Mech::kSud);
    ASSERT_TRUE(machine.run().all_exited);
  }

  auto replayer = std::make_shared<replay::Replayer>(recorder->take_trace());
  {
    Machine machine;
    replayer->attach(machine);
    const Tid tid = machine.load(other_program).value();
    install_mechanism(machine, tid, replayer, Mech::kSud);
    (void)machine.run();
  }
  EXPECT_TRUE(replayer->diverged());
}

// --- nondeterminism audit ---------------------------------------------------

TEST(ReplayAudit, UncapturedNondeterminismIsFlagged) {
  // getrandom consumed with NO interposition mechanism installed: the
  // recorder's machine-level audit hook must notice that entropy bypassed
  // its capture window.
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rdi, apps::kScratchBuf);
  a.mov(isa::Gpr::rsi, 16);
  apps::emit_syscall(a, kern::kSysGetrandom);
  apps::emit_exit(a, 0);
  const auto program = isa::make_program("entropy", a, entry).value();

  auto recorder = std::make_shared<replay::Recorder>();
  Machine machine;
  recorder->attach(machine, /*rng_seed=*/9, "none", "entropy");
  const Tid tid = machine.load(program).value();
  ASSERT_TRUE(machine.run().all_exited);
  (void)tid;

  EXPECT_TRUE(recorder->uncaptured_nondeterminism());
  const auto report = recorder->audit_report();
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report[0].find("getrandom"), std::string::npos);
}

TEST(ReplayAudit, InterposedNondeterminismIsClaimed) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rdi, apps::kScratchBuf);
  a.mov(isa::Gpr::rsi, 16);
  apps::emit_syscall(a, kern::kSysGetrandom);
  apps::emit_exit(a, 0);
  const auto program = isa::make_program("entropy", a, entry).value();

  auto recorder = std::make_shared<replay::Recorder>();
  Machine machine;
  recorder->attach(machine, /*rng_seed=*/9, "sud", "entropy");
  const Tid tid = machine.load(program).value();
  install_mechanism(machine, tid, recorder, Mech::kSud);
  ASSERT_TRUE(machine.run().all_exited);

  EXPECT_FALSE(recorder->uncaptured_nondeterminism());
  EXPECT_GT(recorder->trace().count(replay::EventKind::kNondet), 0u);
}

TEST(ReplayAudit, GetrandomDrawsFromSeededMachineRng) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rdi, apps::kScratchBuf);
  a.mov(isa::Gpr::rsi, 16);
  apps::emit_syscall(a, kern::kSysGetrandom);
  apps::emit_exit(a, 0);
  const auto program = isa::make_program("entropy", a, entry).value();

  auto draw = [&](std::uint64_t seed) {
    Machine machine;
    machine.reseed_rng(seed);
    const Tid tid = machine.load(program).value();
    EXPECT_TRUE(machine.run().all_exited);
    std::vector<std::uint8_t> bytes(16);
    EXPECT_FALSE(
        machine.find_task(tid)->mem->read(apps::kScratchBuf, bytes).has_value());
    return bytes;
  };

  EXPECT_EQ(draw(123), draw(123));  // same seed, same entropy stream
  EXPECT_NE(draw(123), draw(456));  // reseeding changes the stream
}

}  // namespace
