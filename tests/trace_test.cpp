// Tests for the always-on interposition tracing subsystem (src/trace) and
// the kernel probe/observer plumbing it rides on.
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <memory>
#include <string>

#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "replay/recorder.hpp"
#include "trace/export.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/metrics_registry.hpp"
#include "trace/tracer.hpp"
#include "zpoline/zpoline.hpp"

namespace lzp::trace {
namespace {

// --- flight recorder ---------------------------------------------------------

Event make_event(std::uint64_t seq) {
  Event event;
  event.type = EventType::kSyscallExit;
  event.a = seq;
  event.cycles = seq * 10;
  return event;
}

TEST(FlightRecorderTest, OverflowDropsOldestAndCounts) {
  FlightRecorder ring(8);
  for (std::uint64_t seq = 0; seq < 20; ++seq) ring.push(make_event(seq));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);
  // Survivors are the newest 8, oldest-first, uncorrupted.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).a, 12 + i);
    EXPECT_EQ(ring.at(i).cycles, (12 + i) * 10);
  }
}

TEST(FlightRecorderTest, NoDropBelowCapacity) {
  FlightRecorder ring(8);
  for (std::uint64_t seq = 0; seq < 5; ++seq) ring.push(make_event(seq));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.at(0).a, 0u);
  EXPECT_EQ(ring.at(4).a, 4u);
}

TEST(LatencyHistogramTest, Log2Buckets) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1023), 9u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~0ULL), 63u);
  LatencyHistogram hist;
  hist.add(900);
  hist.add(950);
  hist.add(3000);
  EXPECT_EQ(hist.buckets[9], 2u);
  EXPECT_EQ(hist.buckets[11], 1u);
  EXPECT_EQ(hist.total(), 3u);
}

// --- minimal JSON parser for exporter round-trips ---------------------------

// Enough JSON to validate the exporter's output structurally: objects,
// arrays, strings with escapes, numbers, true/false/null. Returns false on
// the first syntax error.
class MiniJsonParser {
 public:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string_view sv(word);
    if (text_.compare(pos_, sv.size(), sv) != 0) return false;
    pos_ += sv.size();
    return true;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& text, const std::string& sub) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(sub); pos != std::string::npos;
       pos = text.find(sub, pos + sub.size())) {
    ++count;
  }
  return count;
}

// --- workloads ---------------------------------------------------------------

isa::Program make_getpid_loop(std::uint64_t iterations) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, iterations);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  return std::move(isa::make_program("getpid-loop", a, entry)).value();
}

// Counts every handler invocation — the independent ground truth the
// registry's per-mechanism totals are checked against.
class CountingHandler final : public interpose::SyscallHandler {
 public:
  std::uint64_t handle(interpose::InterposeContext& ctx) override {
    ++count_;
    return ctx.pass_through();
  }
  [[nodiscard]] std::string name() const override { return "counting"; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t count_ = 0;
};

void install_mechanism(kern::Machine& machine, kern::Tid tid,
                       const std::shared_ptr<interpose::SyscallHandler>& handler,
                       const std::string& mechanism) {
  if (mechanism == "ptrace") {
    ASSERT_TRUE(
        mechanisms::PtraceMechanism().install(machine, tid, handler).is_ok());
  } else if (mechanism == "sud") {
    ASSERT_TRUE(
        mechanisms::SudMechanism().install(machine, tid, handler).is_ok());
  } else if (mechanism == "zpoline") {
    ASSERT_TRUE(
        zpoline::ZpolineMechanism().install(machine, tid, handler).is_ok());
  } else {
    ASSERT_EQ(mechanism, "lazypoline");
    auto runtime = core::Lazypoline::create(machine, {});
    ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());
  }
}

std::uint64_t mechanism_total_for(const MetricsRegistry& metrics,
                                  const std::string& mechanism) {
  using kern::InterposeMechanism;
  if (mechanism == "ptrace") {
    return metrics.mechanism_total(InterposeMechanism::kPtrace);
  }
  if (mechanism == "sud") {
    return metrics.mechanism_total(InterposeMechanism::kSud);
  }
  if (mechanism == "zpoline") {
    return metrics.mechanism_total(InterposeMechanism::kZpoline);
  }
  return metrics.mechanism_total(InterposeMechanism::kLazypolineFast) +
         metrics.mechanism_total(InterposeMechanism::kLazypolineSlow);
}

std::uint64_t counter_total_for(const MetricsRegistry& metrics,
                                const std::string& mechanism) {
  if (mechanism == "lazypoline") {
    return metrics.counter("syscalls.lazypoline-fast") +
           metrics.counter("syscalls.lazypoline-slow");
  }
  return metrics.counter("syscalls." + mechanism);
}

// Runs the two-worker webserver under `mechanism` with a Tracer attached.
void run_traced_webserver(const std::string& mechanism, Tracer& tracer,
                          std::uint64_t* handled) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  tracer.attach(machine);
  auto handler = std::make_shared<CountingHandler>();

  const apps::ServerProfile profile = apps::nginx_profile();
  constexpr std::uint64_t kFileSize = 1024;
  ASSERT_TRUE(machine.vfs().put_file_of_size("index.html", kFileSize).is_ok());
  kern::ClientWorkload client;
  client.connections = 4;
  client.total_requests = 60;
  client.response_bytes = profile.header_bytes + kFileSize;
  const int listener = machine.net().create_listener(client);

  auto program = apps::make_webserver(machine, profile, "index.html");
  ASSERT_TRUE(program.is_ok());
  machine.register_program(program.value());
  for (int worker = 0; worker < 2; ++worker) {
    auto tid = machine.load(program.value());
    ASSERT_TRUE(tid.is_ok());
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid.value())->process->install_fd_at(apps::kListenerFd,
                                                           entry);
    install_mechanism(machine, tid.value(), handler, mechanism);
  }

  const auto stats = machine.run(400'000'000ULL);
  ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
  ASSERT_EQ(machine.net().completed_requests(listener), 60u);
  *handled = handler->count();
}

// The acceptance criterion: for each mechanism, the registry's histogram
// totals, the "syscalls.<mech>" counters, and the exporter's per-track "X"
// span count all equal the number of handler invocations the workload
// actually made.
class PerMechanismCounts : public ::testing::TestWithParam<const char*> {};

TEST_P(PerMechanismCounts, WebserverHistogramsMatchHandlerCount) {
  const std::string mechanism = GetParam();
  Tracer tracer;
  std::uint64_t handled = 0;
  run_traced_webserver(mechanism, tracer, &handled);
  ASSERT_GT(handled, 0u);

  EXPECT_EQ(mechanism_total_for(tracer.metrics(), mechanism), handled);
  EXPECT_EQ(counter_total_for(tracer.metrics(), mechanism), handled);
  EXPECT_EQ(tracer.metrics().counter("trace.unmatched_exit"), 0u);
  EXPECT_EQ(tracer.ring().dropped(), 0u);

  const std::string json = export_chrome_json(tracer);
  MiniJsonParser parser(json);
  EXPECT_TRUE(parser.parse()) << "exporter emitted unparseable JSON";
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), handled);

  // The human summary mentions the mechanism and the headline counters.
  const std::string summary = render_summary(tracer);
  EXPECT_NE(summary.find("ring.events"), std::string::npos);
  if (mechanism != "lazypoline") {
    EXPECT_NE(summary.find(mechanism), std::string::npos);
  } else {
    EXPECT_NE(summary.find("lazypoline-fast"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, PerMechanismCounts,
                         ::testing::Values("ptrace", "sud", "zpoline",
                                           "lazypoline"));

TEST(TracerTest, ExportSurvivesRingOverflow) {
  // A tiny ring under the sud tool (2 events per syscall + selector flips)
  // must overflow; the export still parses and reports the drops.
  Tracer tracer(16);
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  tracer.attach(machine);
  auto handler = std::make_shared<CountingHandler>();
  const auto program = make_getpid_loop(50);
  machine.register_program(program);
  auto tid = machine.load(program);
  ASSERT_TRUE(tid.is_ok());
  install_mechanism(machine, tid.value(), handler, "sud");
  ASSERT_TRUE(machine.run().all_exited);

  EXPECT_GT(tracer.ring().dropped(), 0u);
  EXPECT_EQ(tracer.ring().size(), 16u);
  // Counters are exact even though the ring wrapped.
  EXPECT_EQ(tracer.metrics().counter("syscalls.sud"), handler->count());

  const std::string json = export_chrome_json(tracer);
  MiniJsonParser parser(json);
  EXPECT_TRUE(parser.parse());
  EXPECT_NE(json.find("\"droppedEvents\": " +
                      std::to_string(tracer.ring().dropped())),
            std::string::npos);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  tracer.attach(machine);
  auto handler = std::make_shared<CountingHandler>();
  const auto program = make_getpid_loop(10);
  machine.register_program(program);
  auto tid = machine.load(program);
  ASSERT_TRUE(tid.is_ok());
  install_mechanism(machine, tid.value(), handler, "sud");
  ASSERT_TRUE(machine.run().all_exited);

  EXPECT_GT(handler->count(), 0u);
  EXPECT_EQ(tracer.ring().size(), 0u);
  EXPECT_EQ(tracer.ring().dropped(), 0u);
  EXPECT_TRUE(tracer.metrics().counters().empty());
}

TEST(TracerTest, TracingChargesNoSimulatedCycles) {
  auto run_once = [](bool traced) {
    Tracer tracer;
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    if (traced) tracer.attach(machine);
    auto handler = std::make_shared<CountingHandler>();
    const auto program = make_getpid_loop(25);
    machine.register_program(program);
    auto tid = machine.load(program).value();
    mechanisms::SudMechanism mechanism;
    EXPECT_TRUE(mechanism.install(machine, tid, handler).is_ok());
    EXPECT_TRUE(machine.run().all_exited);
    return machine.find_task(tid)->cycles;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// --- multicast observers (satellite: observer setters -> add_*/remove_*) ----

TEST(MulticastObserverTest, TwoSyscallObserversBothFire) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  const auto id1 = machine.add_syscall_observer(
      [&](const kern::Task&, std::uint64_t, const std::array<std::uint64_t, 6>&,
          kern::Machine::SyscallOrigin) { ++first; });
  machine.add_syscall_observer(
      [&](const kern::Task&, std::uint64_t, const std::array<std::uint64_t, 6>&,
          kern::Machine::SyscallOrigin) { ++second; });

  const auto program = make_getpid_loop(5);
  machine.register_program(program);
  ASSERT_TRUE(machine.load(program).is_ok());
  ASSERT_TRUE(machine.run().all_exited);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, second);

  // Removing one must not disturb the other.
  machine.remove_syscall_observer(id1);
  const std::uint64_t first_before = first;
  const auto program2 = make_getpid_loop(5);
  machine.register_program(program2);
  ASSERT_TRUE(machine.load(program2).is_ok());
  ASSERT_TRUE(machine.run().all_exited);
  EXPECT_EQ(first, first_before);
  EXPECT_GT(second, first_before);
}

TEST(MulticastObserverTest, RecorderComposesWithUserObserver) {
  // The replay Recorder (slice + signal + nondet observers) and a user slice
  // observer registered on the same machine must both see every slice.
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  auto recorder = std::make_shared<replay::Recorder>();
  recorder->attach(machine, /*rng_seed=*/1234, "sud", "getpid-loop");
  std::uint64_t user_slices = 0;
  machine.add_slice_observer(
      [&](const kern::Task&, std::uint64_t) { ++user_slices; });

  const auto program = make_getpid_loop(10);
  machine.register_program(program);
  auto tid = machine.load(program);
  ASSERT_TRUE(tid.is_ok());
  mechanisms::SudMechanism mechanism;
  auto handler = std::static_pointer_cast<interpose::SyscallHandler>(recorder);
  ASSERT_TRUE(mechanism.install(machine, tid.value(), handler).is_ok());
  ASSERT_TRUE(machine.run().all_exited);

  EXPECT_GT(user_slices, 0u);
  EXPECT_EQ(recorder->trace().count(replay::EventKind::kSchedule), user_slices);
  EXPECT_GT(recorder->trace().syscall_count(), 0u);
}

TEST(MulticastObserverTest, TracerComposesWithRecorder) {
  // Probe layer and observer layer are independent: a Tracer (trace sink) and
  // a Recorder (observers + handler) on the same run both get full streams.
  Tracer tracer;
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  tracer.attach(machine);
  auto recorder = std::make_shared<replay::Recorder>();
  recorder->attach(machine, /*rng_seed=*/1234, "sud", "getpid-loop");

  const auto program = make_getpid_loop(10);
  machine.register_program(program);
  auto tid = machine.load(program);
  ASSERT_TRUE(tid.is_ok());
  mechanisms::SudMechanism mechanism;
  auto handler = std::static_pointer_cast<interpose::SyscallHandler>(recorder);
  ASSERT_TRUE(mechanism.install(machine, tid.value(), handler).is_ok());
  ASSERT_TRUE(machine.run().all_exited);

  EXPECT_EQ(tracer.metrics().counter("syscalls.sud"),
            recorder->trace().syscall_count());
  EXPECT_GT(tracer.ring().size(), 0u);
}

}  // namespace
}  // namespace lzp::trace
