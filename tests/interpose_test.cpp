#include <gtest/gtest.h>

#include "interpose/handler.hpp"
#include "interpose/mechanism.hpp"
#include "sim_test_util.hpp"

namespace lzp::interpose {
namespace {

// Builds an InterposeContext over a real task with a scripted raw_syscall.
struct ContextFixture {
  kern::Machine machine;
  kern::Tid tid;
  std::vector<std::pair<std::uint64_t, std::array<std::uint64_t, 6>>> executed;

  ContextFixture() {
    auto program = testutil::make_getpid_once();
    tid = machine.load(program).value();
  }

  InterposeContext make(std::uint64_t nr, std::array<std::uint64_t, 6> args,
                        std::uint64_t forced_result = 1000) {
    SyscallRequest req;
    req.nr = nr;
    req.args = args;
    return InterposeContext(
        machine, *machine.find_task(tid), req,
        [this, forced_result](std::uint64_t n,
                              const std::array<std::uint64_t, 6>& a) {
          executed.emplace_back(n, a);
          return forced_result;
        });
  }

  kern::Task& task() { return *machine.find_task(tid); }
};

TEST(HandlerTest, DummyPassesThrough) {
  ContextFixture f;
  DummyHandler handler;
  auto ctx = f.make(kern::kSysGetpid, {});
  EXPECT_EQ(handler.handle(ctx), 1000u);
  ASSERT_EQ(f.executed.size(), 1u);
  EXPECT_EQ(f.executed[0].first, kern::kSysGetpid);
}

TEST(HandlerTest, TracingRecordsEverything) {
  ContextFixture f;
  TracingHandler handler;
  auto ctx1 = f.make(kern::kSysWrite, {1, 0x5000, 10});
  handler.handle(ctx1);
  auto ctx2 = f.make(kern::kSysGetpid, {});
  handler.handle(ctx2);

  ASSERT_EQ(handler.trace().size(), 2u);
  EXPECT_EQ(handler.trace()[0].nr, kern::kSysWrite);
  EXPECT_EQ(handler.trace()[0].args[1], 0x5000u);
  EXPECT_EQ(handler.trace()[0].result, 1000u);
  EXPECT_EQ(handler.traced_numbers(),
            (std::vector<std::uint64_t>{kern::kSysWrite, kern::kSysGetpid}));

  const std::string line = handler.trace()[0].to_string();
  EXPECT_NE(line.find("write"), std::string::npos);
  EXPECT_NE(line.find("0x5000"), std::string::npos);

  handler.clear();
  EXPECT_TRUE(handler.trace().empty());
}

TEST(HandlerTest, PathPolicyDeniesByDeepInspection) {
  ContextFixture f;
  // Plant a path string in the task's data region.
  const std::uint64_t path_addr = kern::Machine::kDataRegionBase + 64;
  const char* secret = "/etc/shadow";
  ASSERT_TRUE(f.task()
                  .mem
                  ->write_force(path_addr,
                                {reinterpret_cast<const std::uint8_t*>(secret),
                                 strlen(secret) + 1})
                  .is_ok());

  PathPolicyHandler handler({"/etc"});
  auto denied = f.make(kern::kSysOpen, {path_addr, 0});
  EXPECT_EQ(handler.handle(denied), kern::errno_result(kern::kEACCES));
  EXPECT_TRUE(f.executed.empty());  // never reached the kernel
  EXPECT_EQ(handler.denials(), 1u);

  // A benign path passes through.
  const std::uint64_t ok_addr = kern::Machine::kDataRegionBase + 128;
  const char* benign = "/tmp/file";
  ASSERT_TRUE(f.task()
                  .mem
                  ->write_force(ok_addr,
                                {reinterpret_cast<const std::uint8_t*>(benign),
                                 strlen(benign) + 1})
                  .is_ok());
  auto allowed = f.make(kern::kSysOpen, {ok_addr, 0});
  EXPECT_EQ(handler.handle(allowed), 1000u);
  EXPECT_EQ(f.executed.size(), 1u);

  // openat checks args[1] instead of args[0].
  auto denied_at = f.make(kern::kSysOpenat, {0, path_addr, 0});
  EXPECT_EQ(handler.handle(denied_at), kern::errno_result(kern::kEACCES));
  EXPECT_EQ(handler.denials(), 2u);
}

TEST(HandlerTest, XstateClobberingWrecksExtendedState) {
  ContextFixture f;
  f.task().ctx.xstate.xmm[0] = {0x1234, 0x5678};
  XstateClobberingHandler handler(std::make_shared<DummyHandler>());
  auto ctx = f.make(kern::kSysGetpid, {});
  EXPECT_EQ(handler.handle(ctx), 1000u);
  EXPECT_EQ(f.task().ctx.xstate.xmm[0][0], 0xDEADBEEFDEADBEEFULL);
  EXPECT_EQ(f.task().ctx.xstate.ymm_hi[5][1], 0xCAFEBABECAFEBABEULL);
  EXPECT_GT(f.task().ctx.xstate.x87_depth, 0);
}

TEST(HandlerTest, PidCachingAvoidsKernel) {
  ContextFixture f;
  PidCachingHandler handler;
  auto first = f.make(kern::kSysGetpid, {});
  EXPECT_EQ(handler.handle(first), 1000u);
  EXPECT_EQ(f.executed.size(), 1u);
  auto second = f.make(kern::kSysGetpid, {});
  EXPECT_EQ(handler.handle(second), 1000u);
  EXPECT_EQ(f.executed.size(), 1u);  // served from cache
  EXPECT_EQ(handler.cache_hits(), 1u);
  auto other = f.make(kern::kSysWrite, {1, 2, 3});
  handler.handle(other);
  EXPECT_EQ(f.executed.size(), 2u);
}

TEST(HandlerTest, ContextMemoryHelpers) {
  ContextFixture f;
  auto ctx = f.make(kern::kSysGetpid, {});
  const std::uint8_t payload[] = {1, 2, 3, 4};
  ASSERT_TRUE(ctx.write_bytes(kern::Machine::kDataRegionBase, payload).is_ok());
  auto readback = ctx.read_bytes(kern::Machine::kDataRegionBase, 4);
  ASSERT_TRUE(readback.is_ok());
  EXPECT_EQ(readback.value()[2], 3);
  EXPECT_FALSE(ctx.read_bytes(0xBAD0'0000, 4).is_ok());
  EXPECT_FALSE(ctx.read_cstring(0xBAD0'0000).is_ok());
}

TEST(HandlerTest, MutableRequestRewritesArguments) {
  ContextFixture f;
  auto ctx = f.make(kern::kSysWrite, {1, 2, 3});
  ctx.mutable_request().args[0] = 99;
  ctx.pass_through();
  ASSERT_EQ(f.executed.size(), 1u);
  EXPECT_EQ(f.executed[0].second[0], 99u);
}



TEST(HandlerTest, FaultInjectionFailsEveryNth) {
  ContextFixture f;
  FaultInjectionHandler handler(
      {kern::kSysRead, /*every_nth=*/3, kern::kEINTR});
  for (int i = 1; i <= 9; ++i) {
    auto ctx = f.make(kern::kSysRead, {3, 0, 0});
    const std::uint64_t result = handler.handle(ctx);
    if (i % 3 == 0) {
      EXPECT_EQ(result, kern::errno_result(kern::kEINTR)) << "call " << i;
    } else {
      EXPECT_EQ(result, 1000u) << "call " << i;
    }
  }
  EXPECT_EQ(handler.observed(), 9u);
  EXPECT_EQ(handler.injected(), 3u);
  // Non-target syscalls are untouched.
  auto other = f.make(kern::kSysWrite, {1, 2, 3});
  EXPECT_EQ(handler.handle(other), 1000u);
  EXPECT_EQ(handler.observed(), 9u);
}

TEST(HandlerTest, TracingDecodesPathArguments) {
  ContextFixture f;
  const std::uint64_t path_addr = kern::Machine::kDataRegionBase + 256;
  const char* path = "/var/log/app.log";
  ASSERT_TRUE(f.task()
                  .mem
                  ->write_force(path_addr,
                                {reinterpret_cast<const std::uint8_t*>(path),
                                 strlen(path) + 1})
                  .is_ok());
  TracingHandler handler;
  auto open_ctx = f.make(kern::kSysOpen, {path_addr, 0});
  handler.handle(open_ctx);
  auto openat_ctx = f.make(kern::kSysOpenat, {0, path_addr, 0});
  handler.handle(openat_ctx);

  ASSERT_EQ(handler.trace().size(), 2u);
  EXPECT_EQ(handler.trace()[0].detail, "path=\"/var/log/app.log\"");
  EXPECT_EQ(handler.trace()[1].detail, "path=\"/var/log/app.log\"");
  EXPECT_NE(handler.trace()[0].to_string().find("/var/log/app.log"),
            std::string::npos);
}

TEST(MechanismTest, CharacteristicLevelsRender) {
  EXPECT_EQ(to_string(Level::kFull), "Full");
  EXPECT_EQ(to_string(Level::kLimited), "Limited");
  EXPECT_EQ(to_string(Level::kModerate), "Moderate");
}

}  // namespace
}  // namespace lzp::interpose
