// Transparency across realistic workloads: every coreutil, on both libc
// profiles, must produce byte-identical observable behaviour (exit code,
// console output, VFS effects) when run under lazypoline with a dummy
// interposer — including the ones whose startup code keeps xstate live
// across syscalls (the Table-III programs lazypoline's ABI compliance is
// *for*).
#include <gtest/gtest.h>

#include "apps/coreutils.hpp"
#include "core/lazypoline.hpp"
#include "sim_test_util.hpp"

namespace lzp::apps {
namespace {

struct Observation {
  int exit_code = 0;
  std::string console;
  std::vector<std::string> data_listing;
  std::uint64_t stack_user_prev = 0;  // the Listing-1 write target
};

Observation run_native(const std::string& name, LibcProfile profile) {
  kern::Machine machine;
  populate_coreutil_fixtures(machine.vfs());
  auto program = make_coreutil(name, profile).value();
  kern::Tid tid = 0;
  Observation obs;
  obs.exit_code = testutil::load_and_run(machine, program, &tid);
  obs.console = machine.find_task(tid)->process->console;
  obs.data_listing = machine.vfs().list("data");
  obs.stack_user_prev =
      machine.find_task(tid)->mem->read_u64(kStackUserAddr).value_or(0);
  return obs;
}

Observation run_interposed(const std::string& name, LibcProfile profile,
                           core::XstateMode xstate) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  populate_coreutil_fixtures(machine.vfs());
  auto program = make_coreutil(name, profile).value();
  machine.register_program(program);
  const kern::Tid tid = machine.load(program).value();
  core::LazypolineConfig config;
  config.xstate = xstate;
  auto runtime = core::Lazypoline::create(machine, config);
  // The clobbering wrapper models an interposer whose native code freely
  // uses vector registers — the §IV-B compatibility threat.
  auto handler = std::make_shared<interpose::XstateClobberingHandler>(
      std::make_shared<interpose::DummyHandler>());
  EXPECT_TRUE(runtime->install(machine, tid, handler).is_ok());
  const auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  Observation obs;
  obs.exit_code = machine.find_task(tid)->exit_code;
  obs.console = machine.find_task(tid)->process->console;
  obs.data_listing = machine.vfs().list("data");
  obs.stack_user_prev =
      machine.find_task(tid)->mem->read_u64(kStackUserAddr).value_or(0);
  return obs;
}

struct Case {
  const char* name;
  LibcProfile profile;
};

class CoreutilTransparencyTest : public ::testing::TestWithParam<Case> {};

TEST_P(CoreutilTransparencyTest, FullXstateModeIsInvisible) {
  const Case param = GetParam();
  const Observation native = run_native(param.name, param.profile);
  const Observation interposed =
      run_interposed(param.name, param.profile, core::XstateMode::kFull);
  EXPECT_EQ(native.exit_code, interposed.exit_code);
  EXPECT_EQ(native.console, interposed.console);
  EXPECT_EQ(native.data_listing, interposed.data_listing);
  EXPECT_EQ(native.stack_user_prev, interposed.stack_user_prev);
}

INSTANTIATE_TEST_SUITE_P(
    AllUtilitiesBothProfiles, CoreutilTransparencyTest,
    ::testing::Values(
        Case{"ls", LibcProfile::kUbuntu2004}, Case{"ls", LibcProfile::kClearLinux},
        Case{"pwd", LibcProfile::kUbuntu2004}, Case{"pwd", LibcProfile::kClearLinux},
        Case{"chmod", LibcProfile::kUbuntu2004}, Case{"chmod", LibcProfile::kClearLinux},
        Case{"mkdir", LibcProfile::kUbuntu2004}, Case{"mkdir", LibcProfile::kClearLinux},
        Case{"mv", LibcProfile::kUbuntu2004}, Case{"mv", LibcProfile::kClearLinux},
        Case{"cp", LibcProfile::kUbuntu2004}, Case{"cp", LibcProfile::kClearLinux},
        Case{"rm", LibcProfile::kUbuntu2004}, Case{"rm", LibcProfile::kClearLinux},
        Case{"touch", LibcProfile::kUbuntu2004}, Case{"touch", LibcProfile::kClearLinux},
        Case{"cat", LibcProfile::kUbuntu2004}, Case{"cat", LibcProfile::kClearLinux},
        Case{"clear", LibcProfile::kUbuntu2004}, Case{"clear", LibcProfile::kClearLinux}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.name) + "_" +
             (info.param.profile == LibcProfile::kUbuntu2004 ? "ubuntu"
                                                             : "clearlinux");
    });

TEST(CoreutilCorruptionTest, NoXstateModeCorruptsAffectedPrograms) {
  // The counterpoint: with preservation off and a clobbering interposer,
  // the Listing-1 program writes garbage through xmm0 — the pthread
  // __stack_user list no longer points to itself.
  const Observation native = run_native("ls", LibcProfile::kUbuntu2004);
  const Observation corrupted =
      run_interposed("ls", LibcProfile::kUbuntu2004, core::XstateMode::kNone);
  EXPECT_EQ(native.stack_user_prev, kStackUserAddr);
  EXPECT_NE(corrupted.stack_user_prev, kStackUserAddr)
      << "without xstate preservation, the clobber must corrupt the list "
         "head (this is exactly the bug class the paper's Pin study found)";
}

TEST(CoreutilCorruptionTest, UnaffectedProgramsSurviveNoXstateMode) {
  // pwd (Ubuntu) has no cross-syscall xstate liveness: even the clobbering
  // interposer without preservation is invisible — the "large potential for
  // users to avoid needlessly suffering the xstate preservation cost".
  const Observation native = run_native("pwd", LibcProfile::kUbuntu2004);
  const Observation interposed =
      run_interposed("pwd", LibcProfile::kUbuntu2004, core::XstateMode::kNone);
  EXPECT_EQ(native.exit_code, interposed.exit_code);
  EXPECT_EQ(native.console, interposed.console);
}

}  // namespace
}  // namespace lzp::apps
