#include <gtest/gtest.h>

#include "apps/jitcc.hpp"
#include "core/lazypoline.hpp"
#include "mechanisms/sud_tool.hpp"
#include "sim_test_util.hpp"

namespace lzp::core {
namespace {

using interpose::TracingHandler;
using kern::Machine;
using kern::Tid;

struct LazyFixture {
  Machine machine;
  Tid tid = 0;
  std::shared_ptr<TracingHandler> handler = std::make_shared<TracingHandler>();
  std::shared_ptr<Lazypoline> runtime;

  explicit LazyFixture(const isa::Program& program, LazypolineConfig config = {}) {
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    tid = machine.load(program).value();
    runtime = Lazypoline::create(machine, config);
    auto status = runtime->install(machine, tid, handler);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  }

  kern::Task* task() { return machine.find_task(tid); }
};

TEST(LazypolineTest, InterposesEverythingWithCorrectResults) {
  auto program = testutil::make_getpid_once();
  LazyFixture f(program);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();

  EXPECT_EQ(f.handler->traced_numbers(),
            (std::vector<std::uint64_t>{kern::kSysGetpid, kern::kSysExitGroup}));
  EXPECT_EQ(f.handler->trace()[0].result, f.task()->process->pid);
  EXPECT_EQ(f.task()->exit_code, static_cast<int>(f.task()->process->pid));
}

TEST(LazypolineTest, FirstUseSlowPathThenFastPath) {
  const std::uint64_t iterations = 40;
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);
  LazyFixture f(program);
  f.machine.run();

  const LazypolineStats& stats = f.runtime->stats();
  // One loop site + one exit site discovered via SIGSYS...
  EXPECT_EQ(stats.slow_path_hits, 2u);
  EXPECT_EQ(stats.sites_rewritten, 2u);
  // ...and every invocation (including the first, after redirection) went
  // through the shared entry.
  EXPECT_EQ(stats.entry_invocations, iterations + 1);
  EXPECT_EQ(stats.fast_path_hits(), iterations + 1 - 2);
  EXPECT_EQ(f.handler->trace().size(), iterations + 1);
  // The kernel delivered exactly 2 SIGSYS signals.
  EXPECT_EQ(f.task()->sud_sigsys_count, 2u);
}

TEST(LazypolineTest, RewrittenSiteBytesAreCallRax) {
  auto program = testutil::make_getpid_once();
  LazyFixture f(program);
  f.machine.run();
  for (std::uint64_t site : program.true_syscall_addresses()) {
    std::uint8_t bytes[2];
    ASSERT_TRUE(f.task()->mem->read_force(site, bytes).is_ok());
    EXPECT_EQ(bytes[0], isa::kByteFF);
    EXPECT_EQ(bytes[1], isa::kByteCallRax2);
  }
  // Page permissions were restored to R|X after each rewrite.
  EXPECT_EQ(f.task()->mem->prot_at(program.base).value(),
            mem::kProtRead | mem::kProtExec);
}

TEST(LazypolineTest, SelectorOnlySudNoAllowlistedRange) {
  auto program = testutil::make_getpid_once();
  LazyFixture f(program);
  EXPECT_TRUE(f.task()->sud.enabled);
  EXPECT_EQ(f.task()->sud.allow_len, 0u)
      << "selector-only SUD: no code range is exempt (paper IV-A)";
  f.machine.run();
  EXPECT_EQ(f.task()->sud.allow_len, 0u);
}

TEST(LazypolineTest, SelectorIsBlockWhileAppCodeRuns) {
  // The application itself reads its %gs-relative selector byte right after
  // an interposed syscall returns: the entry must have flipped it back to
  // BLOCK before handing control back (otherwise later syscalls escape).
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.load_gs8(isa::Gpr::rdi, Lazypoline::kGsSelector);  // selector byte
  apps::emit_syscall(a, kern::kSysExitGroup);
  auto program = isa::make_program("selector-probe", a, entry).value();

  LazyFixture f(program);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.task()->exit_code, kern::kSudBlock);
}

TEST(LazypolineTest, PreservesXstateAgainstClobberingInterposer) {
  // Listing-1 pattern + clobbering handler: lazypoline (full xstate mode)
  // must hide the interposer's xmm/x87 usage from the application.
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::r12, 0x1234);
  a.xmov_from_gpr(0, isa::Gpr::r12);
  a.fld(0x4000000000000000ULL);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.xmov_to_gpr(isa::Gpr::rbx, 0);
  a.fstp(isa::Gpr::r14);  // x87 value checked host-side after exit
  a.cmp(isa::Gpr::rbx, 0x1234);
  auto ok = a.new_label();
  a.jz(ok);
  apps::emit_exit(a, 1);
  a.bind(ok);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("xstate-dep", a, entry).value();

  Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto runtime = Lazypoline::create(machine, {});
  auto clobbering = std::make_shared<interpose::XstateClobberingHandler>(
      std::make_shared<interpose::DummyHandler>());
  ASSERT_TRUE(runtime->install(machine, tid, clobbering).is_ok());
  machine.run();
  kern::Task* task = machine.find_task(tid);
  EXPECT_EQ(task->exit_code, 0) << "xstate must be preserved in full mode";
  // And the x87 value survived too.
  EXPECT_EQ(task->ctx.reg(isa::Gpr::r14), 0x4000000000000000ULL);
}

TEST(LazypolineTest, XstateModeNoneLeaksClobber) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::r12, 0x1234);
  a.xmov_from_gpr(0, isa::Gpr::r12);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.xmov_to_gpr(isa::Gpr::rbx, 0);
  a.cmp(isa::Gpr::rbx, 0x1234);
  auto ok = a.new_label();
  a.jz(ok);
  apps::emit_exit(a, 1);
  a.bind(ok);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("xstate-dep2", a, entry).value();

  LazypolineConfig config;
  config.xstate = XstateMode::kNone;
  Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto runtime = Lazypoline::create(machine, config);
  auto clobbering = std::make_shared<interpose::XstateClobberingHandler>(
      std::make_shared<interpose::DummyHandler>());
  ASSERT_TRUE(runtime->install(machine, tid, clobbering).is_ok());
  machine.run();
  EXPECT_EQ(machine.find_task(tid)->exit_code, 1)
      << "without xstate preservation the clobber reaches the app";
}

TEST(LazypolineTest, SseModePreservesXmmButNotX87) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::r12, 0x77);
  a.xmov_from_gpr(2, isa::Gpr::r12);
  a.fld(0x4000000000000000ULL);  // x87 value, NOT covered by kSse mode
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.xmov_to_gpr(isa::Gpr::rdi, 2);  // exit code = xmm2 low lane
  a.fstp(isa::Gpr::r14);            // checked host-side
  apps::emit_syscall(a, kern::kSysExitGroup);
  auto program = isa::make_program("sse-dep", a, entry).value();

  LazypolineConfig config;
  config.xstate = XstateMode::kSse;
  Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto runtime = Lazypoline::create(machine, config);
  auto clobbering = std::make_shared<interpose::XstateClobberingHandler>(
      std::make_shared<interpose::DummyHandler>());
  ASSERT_TRUE(runtime->install(machine, tid, clobbering).is_ok());
  machine.run();
  kern::Task* task = machine.find_task(tid);
  // XMM was preserved by kSse mode...
  EXPECT_EQ(task->exit_code, 0x77);
  // ...but the x87 stack was not: the clobberer's push leaked through, so
  // the app's fstp pops the wrong value.
  EXPECT_NE(task->ctx.reg(isa::Gpr::r14), 0x4000000000000000ULL);
}

TEST(LazypolineTest, MatchesSudTraceExactly) {
  // The exhaustiveness bar: lazypoline must see the same syscalls, in the
  // same order, as a pure-SUD deployment (paper §V-A).
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, 10);

  std::vector<std::uint64_t> sud_trace;
  {
    Machine machine;
    auto tid = machine.load(program).value();
    auto handler = std::make_shared<TracingHandler>();
    mechanisms::SudMechanism mechanism;
    ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
    machine.run();
    sud_trace = handler->traced_numbers();
  }
  std::vector<std::uint64_t> lazy_trace;
  {
    LazyFixture f(program);
    f.machine.run();
    lazy_trace = f.handler->traced_numbers();
  }
  EXPECT_EQ(sud_trace, lazy_trace);
}

TEST(LazypolineTest, InterposesJitGeneratedSyscalls) {
  Machine machine;
  machine.mmap_min_addr = 0;
  const std::string src = apps::exhaustiveness_test_source();
  (void)machine.vfs().put_file(
      "prog.c", std::vector<std::uint8_t>(src.begin(), src.end()));
  auto runner = apps::make_jit_runner(machine, "prog.c").value();
  machine.register_program(runner.program);
  auto tid = machine.load(runner.program).value();

  auto handler = std::make_shared<TracingHandler>();
  auto runtime = Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();

  const auto numbers = handler->traced_numbers();
  // The JIT-generated getpid IS in the trace (unlike zpoline).
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGetpid}) != numbers.end());
  EXPECT_EQ(machine.find_task(tid)->exit_code, 21);
}

TEST(LazypolineTest, ForkChildIsReinterposed) {
  isa::Assembler a;
  auto entry = a.new_label();
  auto child_path = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rax, kern::kSysFork);
  a.syscall_();
  a.cmp(isa::Gpr::rax, 0);
  a.jz(child_path);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);  // parent: getpid then exit 3
  a.syscall_();
  apps::emit_exit(a, 3);
  a.bind(child_path);
  a.mov(isa::Gpr::rax, kern::kSysGettid);  // child: gettid then exit 4
  a.syscall_();
  apps::emit_exit(a, 4);
  auto program = isa::make_program("forker", a, entry).value();

  LazyFixture f(program);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();

  EXPECT_EQ(f.runtime->stats().children_initialized, 1u);
  // Child task: SUD re-enabled with its own selector.
  kern::Task* child = nullptr;
  for (Tid other : f.machine.task_ids()) {
    if (other != f.tid) child = f.machine.find_task(other);
  }
  ASSERT_NE(child, nullptr);
  EXPECT_TRUE(child->sud.enabled);
  EXPECT_NE(child->sud.selector_addr, f.task()->sud.selector_addr);
  EXPECT_EQ(child->exit_code, 4);
  EXPECT_EQ(f.task()->exit_code, 3);

  // The child's gettid was interposed.
  const auto numbers = f.handler->traced_numbers();
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGettid}) != numbers.end());
}

TEST(LazypolineTest, CloneThreadGetsOwnSelector) {
  isa::Assembler a;
  auto entry = a.new_label();
  auto child_path = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rdi, kern::kCloneVm | kern::kCloneThread);
  a.mov(isa::Gpr::rsi, apps::kDataBase + 0x8000);
  a.mov(isa::Gpr::rax, kern::kSysClone);
  a.syscall_();
  a.cmp(isa::Gpr::rax, 0);
  a.jz(child_path);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  apps::emit_exit(a, 0);
  a.bind(child_path);
  a.mov(isa::Gpr::rax, kern::kSysGettid);
  a.syscall_();
  a.mov(isa::Gpr::rdi, 0);
  a.mov(isa::Gpr::rax, kern::kSysExit);
  a.syscall_();
  auto program = isa::make_program("threads", a, entry).value();

  LazyFixture f(program);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.runtime->stats().children_initialized, 1u);

  kern::Task* child = nullptr;
  for (Tid other : f.machine.task_ids()) {
    if (other != f.tid) child = f.machine.find_task(other);
  }
  ASSERT_NE(child, nullptr);
  EXPECT_TRUE(child->sud.enabled);
  // Threads share memory but must have distinct selectors (paper §IV-B).
  EXPECT_EQ(child->mem.get(), f.task()->mem.get());
  EXPECT_NE(child->sud.selector_addr, f.task()->sud.selector_addr);
}

TEST(LazypolineTest, ExecveReinitializesViaPreload) {
  Machine machine;
  machine.mmap_min_addr = 0;

  // Target image: getpid (must be interposed post-execve) then exit 9.
  isa::Assembler t;
  auto t_entry = t.new_label();
  t.bind(t_entry);
  t.mov(isa::Gpr::rax, kern::kSysGetpid);
  t.syscall_();
  apps::emit_exit(t, 9);
  auto target = isa::make_program("exec-target", t, t_entry).value();
  machine.register_program(target);

  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t name = apps::embed_string(a, "exec-target");
  a.mov(isa::Gpr::rdi, name);
  apps::emit_syscall(a, kern::kSysExecve);
  apps::emit_exit(a, 1);  // unreachable
  auto program = isa::make_program("execer", a, entry).value();
  machine.register_program(program);

  auto tid = machine.load(program).value();
  auto handler = std::make_shared<TracingHandler>();
  auto runtime = Lazypoline::create(machine, {});
  runtime->attach_as_preload();
  ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();

  EXPECT_EQ(machine.find_task(tid)->exit_code, 9);
  EXPECT_GE(runtime->stats().execves_reinitialized, 1u);
  // The post-execve getpid was interposed.
  const auto numbers = handler->traced_numbers();
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGetpid}) != numbers.end());
}

// --- application signal handling (Figure 3) ----------------------------------

TEST(LazypolineTest, VirtualizedSignalHandlerRunsAndSyscallsAreInterposed) {
  // Program: registers a sim-code SIGUSR1 handler that performs getpid and
  // increments a counter, then loops on nanosleep until the counter is set,
  // then exits 0.
  isa::Assembler a;
  auto entry = a.new_label();
  auto handler_code = a.new_label();
  auto wait_loop = a.new_label();
  auto done = a.new_label();

  a.bind(entry);
  // sigaction(SIGUSR1, {handler=handler_code, flags=0, mask=0}, NULL)
  a.mov(isa::Gpr::rbx, apps::kDataBase);
  // We need the absolute address of handler_code: the program is loaded at
  // a fixed base, and the label offset is patched at link time via a mov
  // trick: lea-like sequence using a call-free idiom is unavailable, so we
  // assemble the handler first at a known offset instead.
  a.jmp(wait_loop);  // placeholder flow; real registration below

  a.bind(handler_code);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  // The completion flag must live in MEMORY: sigreturn restores every
  // register, so a register write inside a handler is invisible outside.
  a.mov(isa::Gpr::rcx, 1);
  a.store(isa::Gpr::rbx, 0x300, isa::Gpr::rcx);
  a.ret();

  a.bind(wait_loop);
  // Register the handler now that its offset is fixed: we cheat slightly by
  // having the harness patch the address into data memory (see below); the
  // program reads it from a fixed slot.
  a.load(isa::Gpr::rcx, isa::Gpr::rbx, 0x200);  // handler address slot
  a.store(isa::Gpr::rbx, 0, isa::Gpr::rcx);
  a.mov(isa::Gpr::rcx, 0);
  a.store(isa::Gpr::rbx, 8, isa::Gpr::rcx);
  a.store(isa::Gpr::rbx, 16, isa::Gpr::rcx);
  a.mov(isa::Gpr::rdi, kern::kSigusr1);
  a.mov(isa::Gpr::rsi, apps::kDataBase);
  a.mov(isa::Gpr::rdx, 0);
  apps::emit_syscall(a, kern::kSysRtSigaction);
  a.bind(done);
  a.mov(isa::Gpr::rax, kern::kSysSchedYield);
  a.syscall_();
  a.load(isa::Gpr::rcx, isa::Gpr::rbx, 0x300);  // flag set by the handler
  a.cmp(isa::Gpr::rcx, 1);
  auto exit_ok = a.new_label();
  a.jz(exit_ok);
  a.jmp(done);
  a.bind(exit_ok);
  apps::emit_exit(a, 0);

  const std::uint64_t handler_offset = a.label_offset(handler_code).value();
  auto program = isa::make_program("sighandler", a, entry).value();

  LazyFixture f(program);
  // Plant the handler's absolute address for the program to read.
  ASSERT_TRUE(f.task()
                  ->mem
                  ->write_u64(apps::kDataBase + 0x200,
                              program.base + handler_offset)
                  .is_ok());
  // Let it register the handler and start looping, then signal it.
  f.machine.run(3000);
  ASSERT_TRUE(f.task()->runnable()) << f.machine.last_fatal();
  kern::SigInfo info;
  info.signo = kern::kSigusr1;
  f.task()->pending_signals.push_back(info);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();

  EXPECT_EQ(f.task()->exit_code, 0);
  EXPECT_GE(f.runtime->stats().signals_wrapped, 1u);
  EXPECT_GE(f.runtime->stats().sigreturns_trampolined, 1u);
  // The handler's getpid was interposed (selector was BLOCK inside it).
  const auto numbers = f.handler->traced_numbers();
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGetpid}) != numbers.end());
  // Signal frames fully unwound.
  EXPECT_TRUE(f.task()->signal_frames.empty());
}

TEST(LazypolineTest, SigactionOldactReportsAppHandlerNotWrapper) {
  // The application registers 0x1234 as its SIGUSR1 handler, then queries
  // it back via oldact. Lazypoline installs its own wrapper kernel-side,
  // but the app must see only its own handler value (Figure 3 fidelity).
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, apps::kDataBase);
  a.mov(isa::Gpr::rcx, 0x1234);
  a.store(isa::Gpr::rbx, 0, isa::Gpr::rcx);
  a.mov(isa::Gpr::rcx, 0);
  a.store(isa::Gpr::rbx, 8, isa::Gpr::rcx);
  a.store(isa::Gpr::rbx, 16, isa::Gpr::rcx);
  a.mov(isa::Gpr::rdi, kern::kSigusr1);
  a.mov(isa::Gpr::rsi, apps::kDataBase);
  a.mov(isa::Gpr::rdx, 0);
  apps::emit_syscall(a, kern::kSysRtSigaction);
  // Query: rt_sigaction(SIGUSR1, NULL, dataBase+64)
  a.mov(isa::Gpr::rdi, kern::kSigusr1);
  a.mov(isa::Gpr::rsi, 0);
  a.mov(isa::Gpr::rdx, apps::kDataBase + 64);
  apps::emit_syscall(a, kern::kSysRtSigaction);
  a.mov(isa::Gpr::r9, apps::kDataBase);
  a.load(isa::Gpr::rdi, isa::Gpr::r9, 64);
  apps::emit_syscall(a, kern::kSysExitGroup);
  auto program = isa::make_program("sigact-query", a, entry).value();

  LazyFixture f(program);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.task()->exit_code, 0x1234);
  // Kernel-side, the registered handler is lazypoline's wrapper — a host
  // address, not the app's 0x1234.
  const kern::SigAction kernel_side =
      f.task()->process->sigactions[kern::kSigusr1];
  EXPECT_NE(kernel_side.handler, 0x1234u);
  EXPECT_TRUE(f.machine.is_host_addr(kernel_side.handler));
}

TEST(LazypolineTest, ManualRewritePlusDisabledSudIsPureFastPath) {
  const std::uint64_t iterations = 60;
  auto program = testutil::make_syscall_loop(kern::kSysNonexistent, iterations);
  LazyFixture f(program);
  // Rewrite both sites up front (paper §V-B microbenchmark methodology),
  // then disarm SUD entirely: no slow path, no SUD entry cost.
  for (std::uint64_t site : program.true_syscall_addresses()) {
    ASSERT_TRUE(f.runtime->rewrite_site_manually(f.tid, site).is_ok());
  }
  ASSERT_TRUE(f.runtime->disable_sud(f.tid).is_ok());
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.runtime->stats().slow_path_hits, 0u);
  EXPECT_EQ(f.runtime->stats().entry_invocations, iterations + 1);
  EXPECT_EQ(f.task()->sud_sigsys_count, 0u);
}

TEST(LazypolineTest, PureSudModeNeverRewrites) {
  LazypolineConfig config;
  config.rewrite_to_fast_path = false;
  const std::uint64_t iterations = 15;
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);
  LazyFixture f(program, config);
  f.machine.run();
  EXPECT_EQ(f.runtime->stats().sites_rewritten, 0u);
  EXPECT_EQ(f.runtime->stats().slow_path_hits, iterations + 1);
  EXPECT_EQ(f.handler->trace().size(), iterations + 1);
}

TEST(LazypolineTest, RewriteLockStatsCount) {
  auto program = testutil::make_getpid_once();
  LazyFixture f(program);
  f.machine.run();
  EXPECT_EQ(f.runtime->stats().rewrite_lock_acquisitions,
            f.runtime->stats().sites_rewritten);
}


TEST(LazypolineSecurityTest, ProtectedSelectorSurvivesNormalOperation) {
  LazypolineConfig config;
  config.protect_selector = true;
  const std::uint64_t iterations = 20;
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);
  LazyFixture f(program, config);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.task()->exit_code, 0);
  EXPECT_EQ(f.handler->trace().size(), iterations + 1);
  // The gs region really is read-only to guest code.
  EXPECT_EQ(f.task()->mem->prot_at(f.task()->sud.selector_addr).value(),
            mem::kProtRead);
}

TEST(LazypolineSecurityTest, AttackerSelectorOverwriteIsFatal) {
  // The paper's SS VI threat: an attacker flips the selector to ALLOW so
  // later syscalls bypass interposition. With protect_selector, the store
  // faults and the process dies instead.
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rcx, kern::kSudAllow);
  a.store_gs8(Lazypoline::kGsSelector, isa::Gpr::rcx);  // the attack
  a.mov(isa::Gpr::rax, kern::kSysGetpid);               // would be unmonitored
  a.syscall_();
  apps::emit_exit(a, 0);
  auto program = isa::make_program("selector-attack", a, entry).value();

  LazypolineConfig config;
  config.protect_selector = true;
  LazyFixture f(program, config);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited);
  EXPECT_EQ(f.task()->exit_code, 128 + kern::kSigsegv);
  // Nothing after the attack executed: no getpid in the trace.
  const auto numbers = f.handler->traced_numbers();
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGetpid}) == numbers.end());
}

TEST(LazypolineSecurityTest, UnprotectedSelectorCanBeDisarmed) {
  // Without the extension the same attack silently succeeds: the following
  // getpid escapes interposition entirely (the motivation for SS VI).
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rcx, kern::kSudAllow);
  a.store_gs8(Lazypoline::kGsSelector, isa::Gpr::rcx);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  apps::emit_exit(a, 0);
  auto program = isa::make_program("selector-attack2", a, entry).value();

  LazyFixture f(program);  // default: unprotected
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.task()->exit_code, 0);
  const auto numbers = f.handler->traced_numbers();
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGetpid}) == numbers.end())
      << "the disarmed getpid must have bypassed interposition";
}

}  // namespace
}  // namespace lzp::core
