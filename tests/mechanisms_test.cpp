#include <gtest/gtest.h>

#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/seccomp_bpf_tool.hpp"
#include "mechanisms/seccomp_user_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "sim_test_util.hpp"

namespace lzp::mechanisms {
namespace {

using interpose::TracingHandler;
using kern::Machine;
using kern::Tid;

// Expected application syscall sequence of make_getpid_once.
const std::vector<std::uint64_t> kGetpidExitTrace = {kern::kSysGetpid,
                                                     kern::kSysExitGroup};

TEST(PtraceTest, TracesAllSyscallsWithResults) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  auto handler = std::make_shared<TracingHandler>();
  PtraceMechanism mechanism;
  ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
  machine.run();

  EXPECT_EQ(handler->traced_numbers(), kGetpidExitTrace);
  // ptrace observes the real result at the exit stop.
  EXPECT_EQ(handler->trace()[0].result,
            machine.find_task(tid)->process->pid);
}

TEST(PtraceTest, CostsDominateViaContextSwitches) {
  const std::uint64_t iterations = 100;
  auto program = testutil::make_syscall_loop(kern::kSysNonexistent, iterations);
  const std::uint64_t baseline = testutil::measure_cycles(program);
  const std::uint64_t traced = testutil::measure_cycles(
      program, [](Machine& machine, Tid tid) {
        PtraceMechanism mechanism;
        ASSERT_TRUE(mechanism
                        .install(machine, tid,
                                 std::make_shared<interpose::DummyHandler>())
                        .is_ok());
      });
  // Two stops per syscall, two context switches each: >> 10x slowdown.
  EXPECT_GT(traced, 10 * baseline);
}

TEST(PtraceTest, TracerCanRewriteResult) {
  Machine machine;
  auto program = testutil::make_getpid_once();  // exits with getpid result
  auto tid = machine.load(program).value();

  class Spoofer final : public interpose::SyscallHandler {
   public:
    std::uint64_t handle(interpose::InterposeContext& ctx) override {
      const std::uint64_t real = ctx.pass_through();
      return ctx.request().nr == kern::kSysGetpid ? 77 : real;
    }
    std::string name() const override { return "spoofer"; }
  };
  PtraceMechanism mechanism;
  ASSERT_TRUE(mechanism.install(machine, tid, std::make_shared<Spoofer>()).is_ok());
  machine.run();
  EXPECT_EQ(machine.find_task(tid)->exit_code, 77);
}

TEST(SeccompBpfTest, RefusesArbitraryHandlers) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  SeccompBpfMechanism mechanism;
  auto status = mechanism.install(machine, tid,
                                  std::make_shared<TracingHandler>());
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

TEST(SeccompBpfTest, RuleFilterForcesErrno) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  const SeccompRule rules[] = {
      {static_cast<std::uint32_t>(kern::kSysGetpid),
       bpf::SECCOMP_RET_ERRNO | static_cast<std::uint32_t>(kern::kEACCES)}};
  ASSERT_TRUE(SeccompBpfMechanism::install_filter(machine, tid, rules,
                                                  bpf::SECCOMP_RET_ALLOW)
                  .is_ok());
  machine.run();
  // getpid returned -EACCES; the program exits with that (truncated) value.
  EXPECT_EQ(machine.find_task(tid)->exit_code,
            static_cast<int>(kern::errno_result(kern::kEACCES)));
}

TEST(SeccompBpfTest, MonitoringFilterAllowsNormalOperation) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  ASSERT_TRUE(SeccompBpfMechanism::install_monitoring_filter(machine, tid).is_ok());
  machine.run();
  EXPECT_EQ(machine.find_task(tid)->exit_code,
            static_cast<int>(machine.find_task(tid)->process->pid) & 0xFF);
}

TEST(SeccompBpfTest, FilterCostIsSmall) {
  const std::uint64_t iterations = 100;
  auto program = testutil::make_syscall_loop(kern::kSysNonexistent, iterations);
  const std::uint64_t baseline = testutil::measure_cycles(program);
  const std::uint64_t filtered = testutil::measure_cycles(
      program, [](Machine& machine, Tid tid) {
        ASSERT_TRUE(
            SeccompBpfMechanism::install_monitoring_filter(machine, tid).is_ok());
      });
  EXPECT_GT(filtered, baseline);
  EXPECT_LT(filtered, baseline * 15 / 10);  // well under 1.5x
}

TEST(SeccompUserTest, HandlerRunsInSupervisorAndSuppliesResult) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  auto handler = std::make_shared<TracingHandler>();
  SeccompUserMechanism mechanism;
  ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
  machine.run();
  EXPECT_EQ(handler->traced_numbers(), kGetpidExitTrace);
  EXPECT_EQ(handler->trace()[0].result, machine.find_task(tid)->process->pid);
  EXPECT_EQ(machine.find_task(tid)->exit_code,
            static_cast<int>(machine.find_task(tid)->process->pid) & 0xFF);
}

TEST(SeccompUserTest, ModerateOverhead) {
  const std::uint64_t iterations = 100;
  auto program = testutil::make_syscall_loop(kern::kSysNonexistent, iterations);
  const std::uint64_t baseline = testutil::measure_cycles(program);
  const std::uint64_t deferred = testutil::measure_cycles(
      program, [](Machine& machine, Tid tid) {
        SeccompUserMechanism mechanism;
        ASSERT_TRUE(mechanism
                        .install(machine, tid,
                                 std::make_shared<interpose::DummyHandler>())
                        .is_ok());
      });
  EXPECT_GT(deferred, 5 * baseline);    // supervisor round trips are costly
  EXPECT_LT(deferred, 40 * baseline);   // but cheaper than ptrace
}

TEST(SudTest, InterposesAllSyscallsWithCorrectResults) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  auto handler = std::make_shared<TracingHandler>();
  SudMechanism mechanism;
  ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();

  EXPECT_EQ(handler->traced_numbers(), kGetpidExitTrace);
  EXPECT_EQ(handler->trace()[0].result, machine.find_task(tid)->process->pid);
  EXPECT_EQ(machine.find_task(tid)->exit_code,
            static_cast<int>(machine.find_task(tid)->process->pid) & 0xFF);
  EXPECT_EQ(machine.find_task(tid)->sud_sigsys_count, 2u);
}

TEST(SudTest, LoopIsFullyInterposed) {
  Machine machine;
  const std::uint64_t iterations = 25;
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);
  auto tid = machine.load(program).value();
  auto handler = std::make_shared<TracingHandler>();
  SudMechanism mechanism;
  ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  // iterations getpids + 1 exit_group, every one via SIGSYS.
  EXPECT_EQ(handler->trace().size(), iterations + 1);
  EXPECT_EQ(machine.find_task(tid)->sud_sigsys_count, iterations + 1);
}

TEST(SudTest, OverheadIsRoughly20x) {
  const std::uint64_t iterations = 200;
  auto program = testutil::make_syscall_loop(kern::kSysNonexistent, iterations);
  const std::uint64_t baseline = testutil::measure_cycles(program);
  const std::uint64_t interposed = testutil::measure_cycles(
      program, [](Machine& machine, Tid tid) {
        SudMechanism mechanism;
        ASSERT_TRUE(mechanism
                        .install(machine, tid,
                                 std::make_shared<interpose::DummyHandler>())
                        .is_ok());
      });
  const double ratio = static_cast<double>(interposed) /
                       static_cast<double>(baseline);
  EXPECT_GT(ratio, 12.0);
  EXPECT_LT(ratio, 30.0);
}

TEST(SudTest, AlwaysAllowConfigurationNeverIntercepts) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  ASSERT_TRUE(SudMechanism::install_always_allow(machine, tid).is_ok());
  machine.run();
  EXPECT_EQ(machine.find_task(tid)->sud_sigsys_count, 0u);
  EXPECT_EQ(machine.find_task(tid)->exit_code,
            static_cast<int>(machine.find_task(tid)->process->pid) & 0xFF);
}

TEST(TableOneTest, CharacteristicsMatchThePaper) {
  PtraceMechanism ptrace_tool;
  EXPECT_EQ(ptrace_tool.characteristics().expressiveness,
            interpose::Level::kFull);
  EXPECT_TRUE(ptrace_tool.characteristics().exhaustive);
  EXPECT_EQ(ptrace_tool.characteristics().efficiency, interpose::Level::kLow);

  SeccompBpfMechanism bpf_tool;
  EXPECT_EQ(bpf_tool.characteristics().expressiveness,
            interpose::Level::kLimited);
  EXPECT_EQ(bpf_tool.characteristics().efficiency, interpose::Level::kHigh);

  SudMechanism sud_tool;
  EXPECT_EQ(sud_tool.characteristics().efficiency, interpose::Level::kModerate);
  SeccompUserMechanism user_tool;
  EXPECT_EQ(user_tool.characteristics().efficiency,
            interpose::Level::kModerate);
}

}  // namespace
}  // namespace lzp::mechanisms
