#include <gtest/gtest.h>

#include "bpf/seccomp_filter.hpp"
#include "sim_test_util.hpp"

namespace lzp::kern {
namespace {

using isa::Assembler;
using isa::Gpr;
using testutil::load_and_run;

TEST(MachineTest, RunsTrivialProgramToExit) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, 7);
  a.mov(Gpr::rax, kSysExitGroup);
  a.syscall_();
  auto program = isa::make_program("trivial", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 7);
}

TEST(MachineTest, HltExitsCleanly) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.hlt();
  auto program = isa::make_program("hlt", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 0);
}

TEST(MachineTest, GetpidGettidReturnIds) {
  Machine machine;
  Tid tid = 0;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, kSysGetpid);
  a.syscall_();
  a.mov(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rax, kSysGettid);
  a.syscall_();
  a.sub(Gpr::rax, Gpr::rbx);  // tid - pid
  a.mov(Gpr::rdi, Gpr::rax);
  a.mov(Gpr::rax, kSysExitGroup);
  a.syscall_();
  auto program = isa::make_program("ids", a, entry).value();
  const int code = load_and_run(machine, program, &tid);
  const Task* task = machine.find_task(tid);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(code, static_cast<int>(task->tid - task->process->pid));
}

TEST(MachineTest, SyscallClobbersRcxR11OnlyPlusRax) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rbx, 0x1111);
  a.mov(Gpr::rcx, 0x2222);
  a.mov(Gpr::r11, 0x3333);
  a.mov(Gpr::r12, 0x4444);
  a.mov(Gpr::rax, kSysGetpid);
  a.syscall_();
  a.hlt();
  auto program = isa::make_program("clobber", a, entry).value();
  Tid tid = 0;
  load_and_run(machine, program, &tid);
  const Task* task = machine.find_task(tid);
  EXPECT_EQ(task->ctx.reg(Gpr::rbx), 0x1111u);   // preserved
  EXPECT_EQ(task->ctx.reg(Gpr::r12), 0x4444u);   // preserved
  EXPECT_NE(task->ctx.reg(Gpr::rcx), 0x2222u);   // clobbered
  EXPECT_NE(task->ctx.reg(Gpr::r11), 0x3333u);   // clobbered
}

TEST(MachineTest, NonexistentSyscallReturnsEnosys) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, kSysNonexistent);
  a.syscall_();
  // exit code = -rax (ENOSYS = 38)
  a.mov(Gpr::rbx, 0);
  a.sub(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rax, kSysExitGroup);
  a.syscall_();
  auto program = isa::make_program("nosys", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), kENOSYS);
}

TEST(MachineTest, WriteToStdoutLandsInConsole) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  apps::emit_print(a, "hello sim\n");
  apps::emit_exit(a, 0);
  auto program = isa::make_program("hello", a, entry).value();
  Tid tid = 0;
  EXPECT_EQ(load_and_run(machine, program, &tid), 0);
  EXPECT_EQ(machine.find_task(tid)->process->console, "hello sim\n");
}

TEST(MachineTest, FileReadWriteThroughVfs) {
  Machine machine;
  (void)machine.vfs().put_file("input.txt", {'a', 'b', 'c'});
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t path = apps::embed_string(a, "input.txt");
  a.mov(Gpr::rdi, path);
  a.mov(Gpr::rsi, 0);
  apps::emit_syscall(a, kSysOpen);
  a.mov(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, apps::kScratchBuf);
  a.mov(Gpr::rdx, 100);
  apps::emit_syscall(a, kSysRead);
  a.mov(Gpr::rdi, Gpr::rax);  // exit code = bytes read
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("reader", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 3);
}

TEST(MachineTest, MmapRespectsMinAddr) {
  Machine machine;  // default mmap_min_addr = 0x10000
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  // mmap(0, 4096, RW, MAP_FIXED) must fail with EPERM
  a.mov(Gpr::rdi, 0);
  a.mov(Gpr::rsi, 4096);
  a.mov(Gpr::rdx, 3);
  a.mov(Gpr::r10, 0x10);  // MAP_FIXED
  apps::emit_syscall(a, kSysMmap);
  a.mov(Gpr::rbx, 0);
  a.sub(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("lowmap", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), kEPERM);
}

TEST(MachineTest, MmapAtZeroAllowedWhenMinAddrZero) {
  Machine machine;
  machine.mmap_min_addr = 0;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, 0);
  a.mov(Gpr::rsi, 4096);
  a.mov(Gpr::rdx, 3);
  a.mov(Gpr::r10, 0x10);
  apps::emit_syscall(a, kSysMmap);
  a.mov(Gpr::rdi, Gpr::rax);  // 0 on success
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("zeromap", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 0);
}

TEST(MachineTest, SegfaultOnUnmappedAccessKillsProcess) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rbx, 0xDEAD'0000);
  a.load(Gpr::rax, Gpr::rbx, 0);
  a.hlt();
  auto program = isa::make_program("segv", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 128 + kSigsegv);
}

TEST(MachineTest, SigillOnGarbageBytes) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.db({0xEE});
  auto program = isa::make_program("ill", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 128 + kSigill);
}

// --- signals -------------------------------------------------------------------

// Registers a host signal handler for `sig` via direct process-table access.
std::uint64_t bind_handler(Machine& machine, Tid tid, int sig, HostFn fn) {
  const std::uint64_t addr = machine.bind_host("test.handler", std::move(fn));
  machine.find_task(tid)->process->sigactions[sig] = SigAction{addr, 0, 0};
  return addr;
}

TEST(MachineTest, SignalDeliveryAndSigreturn) {
  Machine machine;
  auto program = testutil::make_syscall_loop(kSysGetpid, 50, "sigloop");
  auto tid = machine.load(program).value();

  int handler_runs = 0;
  bind_handler(machine, tid, kSigusr1, [&](HostFrame& frame) {
    ++handler_runs;
    EXPECT_FALSE(frame.task.signal_frames.empty());
    // Resume the interrupted context.
    (void)frame.syscall(kSysRtSigreturn);
  });

  Task* task = machine.find_task(tid);
  SigInfo info;
  info.signo = kSigusr1;
  task->pending_signals.push_back(info);
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_EQ(handler_runs, 1);
  EXPECT_EQ(task->exit_code, 0);
  EXPECT_TRUE(task->signal_frames.empty());
}

TEST(MachineTest, SignalHandlerSeesAndMutatesSavedContext) {
  Machine machine;
  auto program = testutil::make_syscall_loop(kSysGetpid, 1000, "mutloop");
  auto tid = machine.load(program).value();

  bind_handler(machine, tid, kSigusr2, [&](HostFrame& frame) {
    // Force the loop to finish by zeroing its counter (rbx).
    frame.task.signal_frames.back().saved_context.set_reg(Gpr::rbx, 1);
    (void)frame.syscall(kSysRtSigreturn);
  });

  // Let the loop make some progress first, then interrupt it.
  machine.run(64);
  Task* task = machine.find_task(tid);
  ASSERT_TRUE(task->runnable());
  SigInfo info;
  info.signo = kSigusr2;
  task->pending_signals.push_back(info);
  machine.run();
  // Far fewer than 1000 getpids happened.
  EXPECT_LT(task->syscalls_dispatched, 100u);
  EXPECT_EQ(task->state, TaskState::kExited);
}

TEST(MachineTest, UnhandledFatalSignalKills) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  Task* task = machine.find_task(tid);
  SigInfo info;
  info.signo = kSigterm;
  task->pending_signals.push_back(info);
  machine.run();
  EXPECT_EQ(task->exit_code, 128 + kSigterm);
}

TEST(MachineTest, SigreturnWithoutFrameKills) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, kSysRtSigreturn);
  a.syscall_();
  a.hlt();
  auto program = isa::make_program("badsigret", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 139);
}

TEST(MachineTest, RtSigactionSyscallRegistersHandler) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  // Write a fake sigaction {handler=0x1234, flags=0, mask=0} into data
  // memory, register it for SIGUSR1, read it back via oldact.
  a.mov(Gpr::rbx, apps::kDataBase);
  a.mov(Gpr::rcx, 0x1234);
  a.store(Gpr::rbx, 0, Gpr::rcx);
  a.mov(Gpr::rcx, 0);
  a.store(Gpr::rbx, 8, Gpr::rcx);
  a.store(Gpr::rbx, 16, Gpr::rcx);
  a.mov(Gpr::rdi, kSigusr1);
  a.mov(Gpr::rsi, apps::kDataBase);
  a.mov(Gpr::rdx, 0);
  apps::emit_syscall(a, kSysRtSigaction);
  // oldact probe:
  a.mov(Gpr::rdi, kSigusr1);
  a.mov(Gpr::rsi, 0);
  a.mov(Gpr::rdx, apps::kDataBase + 64);
  apps::emit_syscall(a, kSysRtSigaction);
  a.mov(Gpr::r9, apps::kDataBase);
  a.load(Gpr::rdi, Gpr::r9, 64);  // old handler
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("sigact", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 0x1234);
}

TEST(MachineTest, SigprocmaskBlocksDelivery) {
  Machine machine;
  auto program = testutil::make_syscall_loop(kSysGetpid, 30, "masked");
  auto tid = machine.load(program).value();
  Task* task = machine.find_task(tid);
  int runs = 0;
  bind_handler(machine, tid, kSigusr1, [&](HostFrame& frame) {
    ++runs;
    (void)frame.syscall(kSysRtSigreturn);
  });
  task->sigmask = 1ULL << kSigusr1;
  SigInfo info;
  info.signo = kSigusr1;
  task->pending_signals.push_back(info);
  machine.run();
  EXPECT_EQ(runs, 0);  // stayed pending, never delivered
  EXPECT_EQ(task->exit_code, 0);
}

// --- SUD semantics ---------------------------------------------------------------

struct SudFixture {
  Machine machine;
  Tid tid = 0;
  std::uint64_t selector_addr = 0;
  std::vector<std::uint64_t> intercepted;

  explicit SudFixture(isa::Program program, std::uint8_t initial_selector) {
    tid = machine.load(program).value();
    Task* task = machine.find_task(tid);
    selector_addr = task->mem->map(0, 4096, mem::kProtRead | mem::kProtWrite,
                                   false)
                        .value();
    (void)task->mem->write_u8(selector_addr, initial_selector);

    const std::uint64_t handler = machine.bind_host(
        "test.sigsys", [this](HostFrame& frame) {
          const SigInfo info = frame.task.signal_frames.back().info;
          EXPECT_EQ(info.code, kSigsysUserDispatch);
          intercepted.push_back(info.syscall_nr);
          // Emulate the syscall as skipped: set result, allow, sigreturn.
          frame.task.signal_frames.back().saved_context.set_reg(Gpr::rax, 0);
          (void)frame.task.mem->write_u8(selector_addr, kSudAllow);
          (void)frame.syscall(kSysRtSigreturn);
          (void)frame.task.mem->write_u8(selector_addr, kSudBlock);
        });
    task->process->sigactions[kSigsys] = SigAction{handler, kSaSiginfo, 0};
    task->sud.enabled = true;
    task->sud.selector_addr = selector_addr;
  }
};

TEST(SudTest, SelectorAllowPassesThrough) {
  SudFixture f(testutil::make_syscall_loop(kSysGetpid, 5, "sud-allow"),
               kSudAllow);
  f.machine.run();
  EXPECT_TRUE(f.intercepted.empty());
  EXPECT_EQ(f.machine.find_task(f.tid)->exit_code, 0);
}

TEST(SudTest, SelectorBlockRaisesSigsys) {
  SudFixture f(testutil::make_getpid_once(), kSudBlock);
  f.machine.run();
  // getpid intercepted; exit_group then intercepted too (selector reset to
  // BLOCK after the first sigreturn) — the handler emulates both as no-ops,
  // so the program "exits" only when the emulated exit_group result lets it
  // fall through to hlt... exit_group emulated as skipped means the program
  // runs past its end. To keep this test focused, just verify getpid was
  // intercepted first.
  ASSERT_FALSE(f.intercepted.empty());
  EXPECT_EQ(f.intercepted[0], kSysGetpid);
  EXPECT_EQ(f.machine.find_task(f.tid)->sud_sigsys_count,
            f.intercepted.size());
}

TEST(SudTest, AllowlistedRangeBypassesSelector) {
  // Program with one syscall; allowlist the whole text so nothing traps.
  auto program = testutil::make_getpid_once();
  SudFixture f(program, kSudBlock);
  Task* task = f.machine.find_task(f.tid);
  task->sud.allow_start = program.base;
  task->sud.allow_len = program.image.size() + 16;
  f.machine.run();
  EXPECT_TRUE(f.intercepted.empty());
  EXPECT_EQ(task->state, TaskState::kExited);
}

TEST(SudTest, InvalidSelectorValueKills) {
  SudFixture f(testutil::make_getpid_once(), 0x7F);
  f.machine.run();
  EXPECT_EQ(f.machine.find_task(f.tid)->exit_code, 128 + kSigsys);
}

TEST(SudTest, SigsysDefaultDispositionKills) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  Task* task = machine.find_task(tid);
  auto page = task->mem->map(0, 4096, mem::kProtRead | mem::kProtWrite, false)
                  .value();
  (void)task->mem->write_u8(page, kSudBlock);
  task->sud.enabled = true;
  task->sud.selector_addr = page;
  machine.run();
  EXPECT_EQ(task->exit_code, 128 + kSigsys);
}

TEST(SudTest, HostSyscallWithBlockedSelectorIsFatalRecursion) {
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  Task* task = machine.find_task(tid);
  auto page = task->mem->map(0, 4096, mem::kProtRead | mem::kProtWrite, false)
                  .value();
  (void)task->mem->write_u8(page, kSudBlock);
  const std::uint64_t handler = machine.bind_host(
      "bad.sigsys", [](HostFrame& frame) {
        // BUG under test: performing a syscall without flipping the selector.
        (void)frame.syscall(kSysGetpid);
      });
  task->process->sigactions[kSigsys] = SigAction{handler, kSaSiginfo, 0};
  task->sud.enabled = true;
  task->sud.selector_addr = page;
  machine.run();
  EXPECT_EQ(task->exit_code, 128 + kSigsys);
  EXPECT_NE(machine.last_fatal().find("recursive"), std::string::npos);
}

// --- process management -----------------------------------------------------------

TEST(ProcessTest, ForkReturnsZeroInChildAndTidInParent) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  auto child_path = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, kSysFork);
  a.syscall_();
  a.cmp(Gpr::rax, 0);
  a.jz(child_path);
  apps::emit_exit(a, 1);  // parent
  a.bind(child_path);
  apps::emit_exit(a, 2);  // child
  auto program = isa::make_program("forker", a, entry).value();

  Tid tid = 0;
  EXPECT_EQ(load_and_run(machine, program, &tid), 1);
  // Find the child: any other task.
  int child_codes = 0;
  for (Tid other : machine.task_ids()) {
    if (other == tid) continue;
    child_codes = machine.find_task(other)->exit_code;
  }
  EXPECT_EQ(child_codes, 2);
}

TEST(ProcessTest, ForkCopiesMemory) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  auto child_path = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rbx, apps::kDataBase);
  a.mov(Gpr::rcx, 10);
  a.store(Gpr::rbx, 0, Gpr::rcx);
  a.mov(Gpr::rax, kSysFork);
  a.syscall_();
  a.cmp(Gpr::rax, 0);
  a.jz(child_path);
  // Parent: overwrite, then exit with the (unchanged-by-child) value.
  a.mov(Gpr::rcx, 20);
  a.store(Gpr::rbx, 0, Gpr::rcx);
  a.load(Gpr::rdi, Gpr::rbx, 0);
  apps::emit_syscall(a, kSysExitGroup);
  a.bind(child_path);
  // Child: spins briefly, then exits with its own copy's value.
  a.load(Gpr::rdi, Gpr::rbx, 0);
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("forkmem", a, entry).value();
  Tid tid = 0;
  EXPECT_EQ(load_and_run(machine, program, &tid), 20);
  for (Tid other : machine.task_ids()) {
    if (other != tid) {
      EXPECT_EQ(machine.find_task(other)->exit_code, 10);
    }
  }
}

TEST(ProcessTest, CloneVmSharesMemory) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  auto child_path = a.new_label();
  auto wait_loop = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rbx, apps::kDataBase);
  a.mov(Gpr::rcx, 0);
  a.store(Gpr::rbx, 0, Gpr::rcx);
  a.mov(Gpr::rdi, kCloneVm | kCloneThread);
  a.mov(Gpr::rsi, apps::kDataBase + 0x8000);  // child stack
  a.mov(Gpr::rax, kSysClone);
  a.syscall_();
  a.cmp(Gpr::rax, 0);
  a.jz(child_path);
  // Parent waits for the child's store to become visible.
  a.bind(wait_loop);
  a.load(Gpr::rcx, Gpr::rbx, 0);
  a.cmp(Gpr::rcx, 42);
  a.jnz(wait_loop);
  apps::emit_exit(a, 0);
  a.bind(child_path);
  a.mov(Gpr::rcx, 42);
  a.store(Gpr::rbx, 0, Gpr::rcx);
  a.mov(Gpr::rdi, 0);
  a.mov(Gpr::rax, kSysExit);
  a.syscall_();
  auto program = isa::make_program("threads", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 0);
}

TEST(ProcessTest, SudResetOnForkAndClone) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  auto child_path = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, kSysFork);
  a.syscall_();
  a.cmp(Gpr::rax, 0);
  a.jz(child_path);
  apps::emit_exit(a, 0);
  a.bind(child_path);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("sudfork", a, entry).value();
  auto tid = machine.load(program).value();
  Task* parent = machine.find_task(tid);
  auto page =
      parent->mem->map(0, 4096, mem::kProtRead | mem::kProtWrite, false).value();
  (void)parent->mem->write_u8(page, kSudAllow);
  parent->sud.enabled = true;
  parent->sud.selector_addr = page;
  machine.run();
  for (Tid other : machine.task_ids()) {
    if (other == tid) continue;
    EXPECT_FALSE(machine.find_task(other)->sud.enabled)
        << "SUD must be deactivated in clone/fork children";
  }
  EXPECT_TRUE(parent->sud.enabled);
}

TEST(ProcessTest, ExecveReplacesImageAndClearsSud) {
  Machine machine;
  // Target program: exits 55.
  Assembler target;
  auto target_entry = target.new_label();
  target.bind(target_entry);
  apps::emit_exit(target, 55);
  auto target_program =
      isa::make_program("target-image", target, target_entry).value();
  machine.register_program(target_program);

  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t name = apps::embed_string(a, "target-image");
  a.mov(Gpr::rdi, name);
  apps::emit_syscall(a, kSysExecve);
  apps::emit_exit(a, 99);  // unreachable on success
  auto program = isa::make_program("execer", a, entry).value();

  auto tid = machine.load(program).value();
  Task* task = machine.find_task(tid);
  auto page =
      task->mem->map(0, 4096, mem::kProtRead | mem::kProtWrite, false).value();
  (void)task->mem->write_u8(page, kSudAllow);
  task->sud.enabled = true;
  task->sud.selector_addr = page;

  machine.run();
  EXPECT_EQ(task->exit_code, 55);
  EXPECT_FALSE(task->sud.enabled);
  EXPECT_EQ(task->process->program_name, "target-image");
}

TEST(ProcessTest, ExecveMissingProgramFails) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t name = apps::embed_string(a, "no-such-image");
  a.mov(Gpr::rdi, name);
  apps::emit_syscall(a, kSysExecve);
  a.mov(Gpr::rbx, 0);
  a.sub(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("execfail", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), kENOENT);
}

// --- seccomp via the syscall interface ----------------------------------------------

TEST(SeccompSyscallTest, AttachedFilterForcesErrno) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  // Build in data memory: filter = [ld nr; jeq 39,0,1; ret ERRNO|7; ret ALLOW]
  // Each insn packs as u64: code | jt<<16 | jf<<24 | k<<32.
  auto pack = [](std::uint16_t code, std::uint8_t jt, std::uint8_t jf,
                 std::uint32_t k) {
    return static_cast<std::uint64_t>(code) |
           (static_cast<std::uint64_t>(jt) << 16) |
           (static_cast<std::uint64_t>(jf) << 24) |
           (static_cast<std::uint64_t>(k) << 32);
  };
  const std::uint64_t insns = apps::kDataBase + 64;
  a.mov(Gpr::rbx, insns);
  a.mov(Gpr::rcx, pack(bpf::BPF_LD | bpf::BPF_W | bpf::BPF_ABS, 0, 0, 0));
  a.store(Gpr::rbx, 0, Gpr::rcx);
  a.mov(Gpr::rcx, pack(bpf::BPF_JMP | bpf::BPF_JEQ | bpf::BPF_K, 0, 1, 39));
  a.store(Gpr::rbx, 8, Gpr::rcx);
  a.mov(Gpr::rcx, pack(bpf::BPF_RET | bpf::BPF_K, 0, 0,
                        bpf::SECCOMP_RET_ERRNO | 7));
  a.store(Gpr::rbx, 16, Gpr::rcx);
  a.mov(Gpr::rcx, pack(bpf::BPF_RET | bpf::BPF_K, 0, 0,
                        bpf::SECCOMP_RET_ALLOW));
  a.store(Gpr::rbx, 24, Gpr::rcx);
  // fprog = {len=4, ptr=insns}
  a.mov(Gpr::r9, apps::kDataBase);
  a.mov(Gpr::rcx, 4);
  a.store(Gpr::r9, 0, Gpr::rcx);
  a.store(Gpr::r9, 8, Gpr::rbx);
  a.mov(Gpr::rdi, kSeccompSetModeFilter);
  a.mov(Gpr::rsi, 0);
  a.mov(Gpr::rdx, apps::kDataBase);
  apps::emit_syscall(a, kSysSeccomp);
  // getpid should now fail with -7.
  a.mov(Gpr::rax, kSysGetpid);
  a.syscall_();
  a.mov(Gpr::rbx, 0);
  a.sub(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("seccomped", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 7);
}

// --- cost accounting ---------------------------------------------------------------

TEST(CostTest, SudEnabledAddsEntryOverhead) {
  const std::uint64_t iterations = 200;
  auto program = testutil::make_syscall_loop(kSysNonexistent, iterations);

  const std::uint64_t baseline = testutil::measure_cycles(program);
  const std::uint64_t with_sud = testutil::measure_cycles(
      program, [](Machine& machine, Tid tid) {
        Task* task = machine.find_task(tid);
        auto page = task->mem->map(0, 4096,
                                   mem::kProtRead | mem::kProtWrite, false)
                        .value();
        (void)task->mem->write_u8(page, kSudAllow);
        task->sud.enabled = true;
        task->sud.selector_addr = page;
      });
  EXPECT_GT(with_sud, baseline);
  const double ratio = static_cast<double>(with_sud - baseline) /
                       static_cast<double>(iterations);
  CostModel costs;
  EXPECT_NEAR(ratio,
              static_cast<double>(costs.intercept_check + costs.sud_range_check +
                                  costs.sud_selector_read),
              3.0);
}

TEST(CostTest, ClockGettimeReflectsCycles) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, 0);
  a.mov(Gpr::rsi, apps::kDataBase);
  apps::emit_syscall(a, kSysClockGettime);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("clock", a, entry).value();
  Tid tid = 0;
  load_and_run(machine, program, &tid);
  auto nsec = machine.find_task(tid)->mem->read_u64(apps::kDataBase + 8);
  ASSERT_TRUE(nsec.is_ok());
  EXPECT_GT(nsec.value(), 0u);
}

}  // namespace
}  // namespace lzp::kern
