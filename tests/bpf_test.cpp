#include <gtest/gtest.h>

#include "bpf/bpf.hpp"
#include "bpf/seccomp_filter.hpp"

namespace lzp::bpf {
namespace {

std::uint32_t run_on(const std::vector<Insn>& program, const SeccompData& data) {
  const auto bytes = data.serialize();
  EXPECT_TRUE(validate(program, bytes.size()).is_ok());
  auto result = run(program, bytes);
  EXPECT_TRUE(result.is_ok()) << (result.is_ok() ? "" : result.status().to_string());
  return result.is_ok() ? result.value().value : 0xFFFFFFFF;
}

TEST(BpfValidateTest, EmptyProgramRejected) {
  EXPECT_FALSE(validate({}, SeccompData::kSize).is_ok());
}

TEST(BpfValidateTest, MustEndInRet) {
  std::vector<Insn> program{stmt(BPF_LD | BPF_W | BPF_ABS, 0)};
  EXPECT_FALSE(validate(program, SeccompData::kSize).is_ok());
  program.push_back(stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW));
  EXPECT_TRUE(validate(program, SeccompData::kSize).is_ok());
}

TEST(BpfValidateTest, RejectsOutOfBoundsLoad) {
  std::vector<Insn> program{
      stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kSize),  // one past the end
      stmt(BPF_RET | BPF_K, 0)};
  EXPECT_FALSE(validate(program, SeccompData::kSize).is_ok());
}

TEST(BpfValidateTest, RejectsUnalignedLoad) {
  std::vector<Insn> program{stmt(BPF_LD | BPF_W | BPF_ABS, 2),
                            stmt(BPF_RET | BPF_K, 0)};
  EXPECT_FALSE(validate(program, SeccompData::kSize).is_ok());
}

TEST(BpfValidateTest, RejectsJumpPastEnd) {
  std::vector<Insn> program{
      stmt(BPF_LD | BPF_W | BPF_ABS, 0),
      jump(BPF_JMP | BPF_JEQ | BPF_K, 1, 5, 0),  // jt lands past the end
      stmt(BPF_RET | BPF_K, 0)};
  EXPECT_FALSE(validate(program, SeccompData::kSize).is_ok());
}

TEST(BpfValidateTest, RejectsDivByConstantZero) {
  std::vector<Insn> program{stmt(BPF_ALU | BPF_DIV | BPF_K, 0),
                            stmt(BPF_RET | BPF_K, 0)};
  EXPECT_FALSE(validate(program, SeccompData::kSize).is_ok());
}

TEST(BpfValidateTest, RejectsBadScratchSlot) {
  std::vector<Insn> program{stmt(BPF_ST, kScratchSlots),
                            stmt(BPF_RET | BPF_K, 0)};
  EXPECT_FALSE(validate(program, SeccompData::kSize).is_ok());
}

TEST(BpfValidateTest, RejectsOverlongProgram) {
  std::vector<Insn> program(kMaxProgramLength + 1, stmt(BPF_RET | BPF_K, 0));
  EXPECT_FALSE(validate(program, SeccompData::kSize).is_ok());
}

TEST(BpfRunTest, RetConstant) {
  std::vector<Insn> program{stmt(BPF_RET | BPF_K, 0x1234)};
  SeccompData data;
  EXPECT_EQ(run_on(program, data), 0x1234u);
}

TEST(BpfRunTest, LoadsSyscallNumber) {
  std::vector<Insn> program{
      stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffNr),
      jump(BPF_JMP | BPF_JEQ | BPF_K, 39, 0, 1),
      stmt(BPF_RET | BPF_K, 1),
      stmt(BPF_RET | BPF_K, 2)};
  SeccompData data;
  data.nr = 39;
  EXPECT_EQ(run_on(program, data), 1u);
  data.nr = 40;
  EXPECT_EQ(run_on(program, data), 2u);
}

TEST(BpfRunTest, AluOperations) {
  // A = ((nr + 3) * 2 - 4) ^ 1, via X and scratch memory.
  std::vector<Insn> program{
      stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffNr),
      stmt(BPF_ALU | BPF_ADD | BPF_K, 3),
      stmt(BPF_ALU | BPF_MUL | BPF_K, 2),
      stmt(BPF_ALU | BPF_SUB | BPF_K, 4),
      stmt(BPF_ALU | BPF_XOR | BPF_K, 1),
      stmt(BPF_ST, 0),                      // scratch[0] = A
      stmt(BPF_LD | BPF_IMM, 0),
      stmt(BPF_LD | BPF_MEM, 0),            // A = scratch[0]
      stmt(BPF_RET | BPF_A, 0)};
  SeccompData data;
  data.nr = 10;
  EXPECT_EQ(run_on(program, data), ((10u + 3) * 2 - 4) ^ 1);
}

TEST(BpfRunTest, ShiftsAndDivision) {
  std::vector<Insn> program{
      stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffNr),
      stmt(BPF_ALU | BPF_LSH | BPF_K, 4),
      stmt(BPF_ALU | BPF_RSH | BPF_K, 2),
      stmt(BPF_ALU | BPF_DIV | BPF_K, 3),
      stmt(BPF_RET | BPF_A, 0)};
  SeccompData data;
  data.nr = 9;
  EXPECT_EQ(run_on(program, data), (9u << 4 >> 2) / 3);
}

TEST(BpfRunTest, TaxTxa) {
  std::vector<Insn> program{
      stmt(BPF_LD | BPF_IMM, 7),
      stmt(BPF_MISC | BPF_TAX, 0),
      stmt(BPF_LD | BPF_IMM, 0),
      stmt(BPF_MISC | BPF_TXA, 0),
      stmt(BPF_RET | BPF_A, 0)};
  EXPECT_EQ(run_on(program, SeccompData{}), 7u);
}

TEST(BpfRunTest, JumpAlways) {
  std::vector<Insn> program{
      jump(BPF_JMP | BPF_JA, 1, 0, 0),
      stmt(BPF_RET | BPF_K, 111),  // skipped
      stmt(BPF_RET | BPF_K, 222)};
  EXPECT_EQ(run_on(program, SeccompData{}), 222u);
}

TEST(BpfRunTest, JsetAndJge) {
  std::vector<Insn> program{
      stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffNr),
      jump(BPF_JMP | BPF_JSET | BPF_K, 0x8, 0, 1),
      stmt(BPF_RET | BPF_K, 1),
      jump(BPF_JMP | BPF_JGE | BPF_K, 100, 0, 1),
      stmt(BPF_RET | BPF_K, 2),
      stmt(BPF_RET | BPF_K, 3)};
  SeccompData data;
  data.nr = 9;  // bit 3 set
  EXPECT_EQ(run_on(program, data), 1u);
  data.nr = 208;  // bit 3 clear, >= 100
  EXPECT_EQ(run_on(program, data), 2u);
  data.nr = 2;
  EXPECT_EQ(run_on(program, data), 3u);
}

TEST(BpfRunTest, InsnCountIsReported) {
  std::vector<Insn> program{
      stmt(BPF_LD | BPF_IMM, 1),
      stmt(BPF_ALU | BPF_ADD | BPF_K, 1),
      stmt(BPF_RET | BPF_A, 0)};
  SeccompData data;
  auto bytes = data.serialize();
  auto result = run(program, bytes);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().insns_executed, 3u);
}

// --- seccomp filter builders --------------------------------------------------

TEST(SeccompFilterTest, SerializeLayout) {
  SeccompData data;
  data.nr = 0x11223344;
  data.arch = kAuditArchX86_64;
  data.instruction_pointer = 0xAABBCCDDEEFF0011ULL;
  data.args[5] = 42;
  const auto bytes = data.serialize();
  ASSERT_EQ(bytes.size(), SeccompData::kSize);
  EXPECT_EQ(bytes[0], 0x44);
  EXPECT_EQ(bytes[SeccompData::kOffIpLow], 0x11);
  EXPECT_EQ(bytes[SeccompData::off_arg_low(5)], 42);
}

TEST(SeccompFilterTest, TrapSyscallsFilter) {
  const std::uint32_t trapped[] = {39, 57};
  auto program =
      SeccompFilterBuilder::trap_syscalls(trapped, SECCOMP_RET_TRAP).value();
  SeccompData data;
  data.nr = 39;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_TRAP);
  data.nr = 57;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_TRAP);
  data.nr = 1;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_ALLOW);
}

TEST(SeccompFilterTest, AllowlistFilter) {
  const std::uint32_t allowed[] = {0, 1, 60};
  auto program =
      SeccompFilterBuilder::allowlist(allowed, SECCOMP_RET_ERRNO | 1).value();
  SeccompData data;
  data.nr = 1;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_ALLOW);
  data.nr = 2;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_ERRNO | 1);
}

// trap_syscalls keeps the single-chain encoding, so a set needing a jump
// offset > 255 must still be rejected with a clear Status. (The old builder
// silently truncated the offset through a uint8_t cast, producing a filter
// that still *validated* — all jumps in bounds — but matched the wrong
// instruction.)
TEST(SeccompFilterTest, TrapSyscallsRejectsSetsBeyondJumpOffsetLimit) {
  std::vector<std::uint32_t> nrs(SeccompFilterBuilder::kMaxSetMembers + 1);
  for (std::size_t i = 0; i < nrs.size(); ++i) {
    nrs[i] = static_cast<std::uint32_t>(i);
  }
  const auto too_big_trap =
      SeccompFilterBuilder::trap_syscalls(nrs, SECCOMP_RET_TRAP);
  ASSERT_FALSE(too_big_trap.is_ok());
  EXPECT_EQ(too_big_trap.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(too_big_trap.status().message().find("255"), std::string::npos);

  // Exactly at the limit still encodes, validates, and decides correctly at
  // both ends of the chain (the first compare carries the largest offset).
  nrs.pop_back();
  ASSERT_EQ(nrs.size(), SeccompFilterBuilder::kMaxSetMembers);
  auto program =
      SeccompFilterBuilder::allowlist(nrs, SECCOMP_RET_ERRNO | 1).value();
  ASSERT_TRUE(validate(program, SeccompData::kSize).is_ok());
  SeccompData data;
  data.nr = 0;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_ALLOW);
  data.nr = static_cast<std::int32_t>(nrs.size() - 1);
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_ALLOW);
  data.nr = static_cast<std::int32_t>(nrs.size());
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_ERRNO | 1);
}

// The allowlist builder segments larger sets: short JEQ hits inside each
// chunk, 32-bit BPF_JA hops between chunks. Probe exactly at the first
// unencodable-single-chain size (256) and past it (300), covering both
// chunk boundaries and the default action.
TEST(SeccompFilterTest, AllowlistSegmentsSetsBeyondJumpOffsetLimit) {
  for (const std::size_t n : {std::size_t{256}, std::size_t{300}}) {
    std::vector<std::uint32_t> nrs(n);
    for (std::size_t i = 0; i < n; ++i) {
      nrs[i] = static_cast<std::uint32_t>(2 * i);  // gaps to probe misses
    }
    auto result = SeccompFilterBuilder::allowlist(nrs, SECCOMP_RET_ERRNO | 1);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    const auto& program = result.value();
    ASSERT_TRUE(validate(program, SeccompData::kSize).is_ok());
    SeccompData data;
    // Every member must hit, in every chunk.
    for (const std::uint32_t nr : nrs) {
      data.nr = static_cast<std::int32_t>(nr);
      ASSERT_EQ(run_on(program, data), SECCOMP_RET_ALLOW)
          << "n=" << n << " nr=" << nr;
    }
    // Gap values and values past the end must take the default action.
    for (const std::uint32_t nr :
         {1u, 255u, 509u, static_cast<std::uint32_t>(2 * n), 100'000u}) {
      data.nr = static_cast<std::int32_t>(nr);
      ASSERT_EQ(run_on(program, data), SECCOMP_RET_ERRNO | 1)
          << "n=" << n << " nr=" << nr;
    }
  }
}

TEST(SeccompFilterTest, IpRangeFilter) {
  const std::uint64_t start = 0x7000'1000;
  auto program = SeccompFilterBuilder::trap_unless_ip_in_range(
      start, 16, SECCOMP_RET_TRAP);
  SeccompData data;
  data.instruction_pointer = start;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_ALLOW);
  data.instruction_pointer = start + 15;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_ALLOW);
  data.instruction_pointer = start + 16;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_TRAP);
  data.instruction_pointer = start - 1;
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_TRAP);
  data.instruction_pointer = 0xFFFF'0000'7000'1000ULL;  // high word differs
  EXPECT_EQ(run_on(program, data), SECCOMP_RET_TRAP);
}

TEST(SeccompFilterTest, ReturnConstant) {
  auto program = SeccompFilterBuilder::return_constant(SECCOMP_RET_USER_NOTIF);
  EXPECT_EQ(run_on(program, SeccompData{}), SECCOMP_RET_USER_NOTIF);
}

TEST(BpfDisassembleTest, ProducesOneLinePerInsn) {
  auto program = SeccompFilterBuilder::return_constant(SECCOMP_RET_ALLOW);
  const std::string text = disassemble(program);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

}  // namespace
}  // namespace lzp::bpf
