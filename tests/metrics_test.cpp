#include <gtest/gtest.h>

#include <limits>

#include "metrics/json.hpp"
#include "metrics/report.hpp"

namespace lzp::metrics {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table table({"Mechanism", "Overhead"});
  table.add_row({"zpoline", "1.2x"});
  table.add_row({"lazypoline", "2.38x"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| Mechanism "), std::string::npos);
  EXPECT_NE(out.find("| lazypoline | 2.38x"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
  // All lines equally wide.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t line_width = end - start;
    if (width == 0) width = line_width;
    EXPECT_EQ(line_width, width);
    start = end + 1;
  }
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only-one"});
  const std::string out = table.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(SeriesTest, RendersXThenSeries) {
  Series series("size", {"baseline", "sud"});
  series.add_point("1K", {100.0, 48.25}, 2);
  series.add_point("64K", {50.0, 47.0}, 2);
  const std::string out = series.render();
  EXPECT_NE(out.find("size"), std::string::npos);
  EXPECT_NE(out.find("48.25"), std::string::npos);
  EXPECT_NE(out.find("64K"), std::string::npos);
}

TEST(FormattersTest, RatioAndPercent) {
  EXPECT_EQ(ratio(2.375), "2.38x");
  EXPECT_EQ(ratio(20.8, 1), "20.8x");
  EXPECT_EQ(percent(94.716), "94.72%");
}

TEST(FormattersTest, RatioRejectsDegenerateValues) {
  // A ratio against a zero/failed baseline is meaningless, not "infx".
  EXPECT_EQ(ratio(0.0), "n/a");
  EXPECT_EQ(ratio(-1.5), "n/a");
  EXPECT_EQ(ratio(std::numeric_limits<double>::infinity()), "n/a");
  EXPECT_EQ(ratio(std::numeric_limits<double>::quiet_NaN()), "n/a");
}

TEST(JsonTest, EscapesAndRenders) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  JsonObject obj;
  obj.add("name", "web\"server");
  obj.add("count", std::uint64_t{42});
  obj.add("delta", std::int64_t{-7});
  obj.add("ratio", 2.5);
  obj.add("ok", true);
  obj.add("bad", std::numeric_limits<double>::quiet_NaN());
  const std::string out = obj.render();
  EXPECT_EQ(out,
            "{\"name\": \"web\\\"server\", \"count\": 42, \"delta\": -7, "
            "\"ratio\": 2.5, \"ok\": true, \"bad\": null}");
}

TEST(JsonTest, ArrayAndRaw) {
  JsonObject inner;
  inner.add("x", std::uint64_t{1});
  JsonObject root;
  root.add_raw("items", json_array({inner.render(), inner.render()}));
  EXPECT_EQ(root.render(), "{\"items\": [{\"x\": 1}, {\"x\": 1}]}");
  EXPECT_EQ(json_array({}), "[]");
}

}  // namespace
}  // namespace lzp::metrics
