#include <gtest/gtest.h>

#include <cstring>

#include "memory/address_space.hpp"

namespace lzp::mem {
namespace {

TEST(AddressSpaceTest, FixedMapAndRoundTrip) {
  AddressSpace as;
  auto base = as.map(0x40'0000, 100, kProtRead | kProtWrite, /*fixed=*/true);
  ASSERT_TRUE(base.is_ok());
  EXPECT_EQ(base.value(), 0x40'0000u);
  EXPECT_TRUE(as.is_mapped(0x40'0000));
  EXPECT_TRUE(as.is_mapped(0x40'0000 + 4095));  // length page-rounded
  EXPECT_FALSE(as.is_mapped(0x40'1000));

  ASSERT_TRUE(as.write_u64(0x40'0010, 0xABCDEF).is_ok());
  auto value = as.read_u64(0x40'0010);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), 0xABCDEFu);
}

TEST(AddressSpaceTest, FixedMapRejectsOverlap) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x1000, 4096, kProtRead, true).is_ok());
  auto overlap = as.map(0x1000, 8, kProtRead, true);
  EXPECT_FALSE(overlap.is_ok());
  EXPECT_EQ(overlap.status().code(), StatusCode::kAlreadyExists);
}

TEST(AddressSpaceTest, HintSearchSkipsOccupied) {
  AddressSpace as;
  ASSERT_TRUE(as.map(AddressSpace::kDefaultMapBase, 4096, kProtRead, true).is_ok());
  auto second = as.map(AddressSpace::kDefaultMapBase, 4096, kProtRead, false);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value(), AddressSpace::kDefaultMapBase + kPageSize);
}

TEST(AddressSpaceTest, ZeroHintUsesDefaultBase) {
  AddressSpace as;
  auto base = as.map(0, 4096, kProtRead, false);
  ASSERT_TRUE(base.is_ok());
  EXPECT_EQ(base.value(), AddressSpace::kDefaultMapBase);
}

TEST(AddressSpaceTest, MapAtZeroFixedWorks) {
  // The zpoline trampoline page: only the kernel-policy layer forbids it,
  // the address space itself must support VA 0.
  AddressSpace as;
  auto base = as.map(0, 600, kProtRead | kProtWrite, true);
  ASSERT_TRUE(base.is_ok());
  EXPECT_EQ(base.value(), 0u);
  EXPECT_TRUE(as.write_u8(0, 0x90).is_ok());
}

TEST(AddressSpaceTest, ZeroLengthMapFails) {
  AddressSpace as;
  EXPECT_FALSE(as.map(0x1000, 0, kProtRead, true).is_ok());
}

TEST(AddressSpaceTest, UnmapRemovesPages) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x2000, 2 * kPageSize, kProtRead, true).is_ok());
  ASSERT_TRUE(as.unmap(0x2000, kPageSize).is_ok());
  EXPECT_FALSE(as.is_mapped(0x2000));
  EXPECT_TRUE(as.is_mapped(0x3000));
  EXPECT_FALSE(as.unmap(0x2001, 10).is_ok());  // unaligned
}

TEST(AddressSpaceTest, ProtectChangesPermissions) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x4000, kPageSize, kProtRead | kProtWrite, true).is_ok());
  ASSERT_TRUE(as.protect(0x4000, kPageSize, kProtRead).is_ok());
  EXPECT_EQ(as.prot_at(0x4000).value(), kProtRead);
  std::uint8_t byte = 1;
  EXPECT_TRUE(as.write(0x4000, {&byte, 1}).has_value());  // now read-only
}

TEST(AddressSpaceTest, ProtectFailsOnUnmappedRange) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x4000, kPageSize, kProtRead, true).is_ok());
  EXPECT_FALSE(as.protect(0x4000, 2 * kPageSize, kProtRead).is_ok());
  // And it must not have partially applied.
  EXPECT_EQ(as.prot_at(0x4000).value(), kProtRead);
}

TEST(AddressSpaceTest, PermissionFaults) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x5000, kPageSize, kProtRead, true).is_ok());
  std::uint8_t buffer[4] = {};

  EXPECT_FALSE(as.read(0x5000, buffer).has_value());

  auto write_fault = as.write(0x5000, buffer);
  ASSERT_TRUE(write_fault.has_value());
  EXPECT_FALSE(write_fault->unmapped);
  EXPECT_EQ(write_fault->kind, AccessKind::kWrite);
  EXPECT_EQ(write_fault->address, 0x5000u);

  auto fetch_fault = as.fetch(0x5000, buffer);
  ASSERT_TRUE(fetch_fault.has_value());
  EXPECT_EQ(fetch_fault->kind, AccessKind::kFetch);

  auto unmapped = as.read(0x9999'0000, buffer);
  ASSERT_TRUE(unmapped.has_value());
  EXPECT_TRUE(unmapped->unmapped);
}

TEST(AddressSpaceTest, ExecOnlyFetch) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x6000, kPageSize, kProtExec, true).is_ok());
  std::uint8_t buffer[1] = {};
  EXPECT_FALSE(as.fetch(0x6000, buffer).has_value());
  EXPECT_TRUE(as.read(0x6000, buffer).has_value());
}

TEST(AddressSpaceTest, CrossPageAccess) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x7000, 2 * kPageSize, kProtRead | kProtWrite, true).is_ok());
  const std::uint64_t boundary = 0x7000 + kPageSize - 4;
  ASSERT_TRUE(as.write_u64(boundary, 0x1122334455667788ULL).is_ok());
  auto value = as.read_u64(boundary);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), 0x1122334455667788ULL);
}

TEST(AddressSpaceTest, CrossPageFaultsAtFirstBadPage) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x7000, kPageSize, kProtRead | kProtWrite, true).is_ok());
  std::uint8_t buffer[8] = {};
  auto fault = as.read(0x7000 + kPageSize - 4, buffer);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->address, 0x7000 + kPageSize);
  EXPECT_TRUE(fault->unmapped);
}

TEST(AddressSpaceTest, ForceAccessIgnoresProtections) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x8000, kPageSize, kProtNone, true).is_ok());
  const std::uint8_t data[2] = {0x0F, 0x05};
  ASSERT_TRUE(as.write_force(0x8000, data).is_ok());
  std::uint8_t readback[2] = {};
  ASSERT_TRUE(as.read_force(0x8000, readback).is_ok());
  EXPECT_EQ(readback[0], 0x0F);
  EXPECT_EQ(readback[1], 0x05);
  EXPECT_FALSE(as.write_force(0xBAD0'0000, data).is_ok());
}

TEST(AddressSpaceTest, CloneIsDeepCopy) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x9000, kPageSize, kProtRead | kProtWrite, true).is_ok());
  ASSERT_TRUE(as.write_u64(0x9000, 111).is_ok());
  auto copy = as.clone();
  ASSERT_TRUE(copy->write_u64(0x9000, 222).is_ok());
  EXPECT_EQ(as.read_u64(0x9000).value(), 111u);
  EXPECT_EQ(copy->read_u64(0x9000).value(), 222u);
}

TEST(AddressSpaceTest, StatsAreCounted) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0xA000, kPageSize, kProtRead, true).is_ok());
  ASSERT_TRUE(as.protect(0xA000, kPageSize, kProtRead | kProtWrite).is_ok());
  ASSERT_TRUE(as.unmap(0xA000, kPageSize).is_ok());
  EXPECT_EQ(as.stats().mmap_calls, 1u);
  EXPECT_EQ(as.stats().mprotect_calls, 1u);
  EXPECT_EQ(as.stats().munmap_calls, 1u);
}

TEST(AddressSpaceTest, FaultToStringMentionsKindAndAddress) {
  MemFault fault{0x1234, AccessKind::kWrite, false};
  const std::string text = fault.to_string();
  EXPECT_NE(text.find("write"), std::string::npos);
  EXPECT_NE(text.find("0x1234"), std::string::npos);
  EXPECT_NE(text.find("permission"), std::string::npos);
}

TEST(AddressSpaceTest, ProtToString) {
  EXPECT_EQ(prot_to_string(kProtRead | kProtExec), "r-x");
  EXPECT_EQ(prot_to_string(kProtNone), "---");
  EXPECT_EQ(prot_to_string(kProtRead | kProtWrite | kProtExec), "rwx");
}

TEST(AddressSpaceTest, MultiByteFaultMidSpanCountsExactlyOnce) {
  // An 8-byte read whose tail page is unmapped: one architectural fault,
  // one stats_.faults increment — not one per attempted page.
  AddressSpace as;
  ASSERT_TRUE(as.map(0xB000, kPageSize, kProtRead, true).is_ok());
  std::uint8_t buffer[8] = {};
  auto fault = as.read(0xB000 + kPageSize - 4, buffer);
  ASSERT_TRUE(fault.has_value());
  EXPECT_TRUE(fault->unmapped);
  EXPECT_EQ(fault->address, 0xB000 + kPageSize);
  EXPECT_EQ(as.stats().faults, 1u);
}

TEST(AddressSpaceTest, FetchWindowSpansPages) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0xC000, 2 * kPageSize, kProtRead | kProtExec, true).is_ok());
  std::uint8_t expected[10];
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    expected[i] = static_cast<std::uint8_t>(i + 1);
  }
  const std::uint64_t addr = 0xC000 + kPageSize - 4;
  ASSERT_TRUE(as.write_force(addr, expected).is_ok());

  std::uint8_t window[10] = {};
  EXPECT_EQ(as.fetch_window(addr, window), 10u);
  EXPECT_EQ(std::memcmp(window, expected, sizeof(expected)), 0);
  EXPECT_EQ(as.stats().faults, 0u);
  EXPECT_GE(as.stats().fetches, 1u);
}

TEST(AddressSpaceTest, FetchWindowShortAtExecBoundaryIsNotAFault) {
  // A window that runs off the end of the executable region returns the
  // bytes that exist; the speculative shortfall is not an architectural
  // fault and must not pollute the fault counter.
  AddressSpace as;
  ASSERT_TRUE(as.map(0xD000, kPageSize, kProtRead | kProtExec, true).is_ok());
  std::uint8_t window[10] = {};
  EXPECT_EQ(as.fetch_window(0xD000 + kPageSize - 3, window), 3u);
  EXPECT_EQ(as.stats().faults, 0u);
}

TEST(AddressSpaceTest, FetchWindowZeroBytesIsAFault) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0xE000, kPageSize, kProtRead, true).is_ok());  // no exec
  std::uint8_t window[10] = {};
  MemFault fault;
  EXPECT_EQ(as.fetch_window(0xE000, window, &fault), 0u);
  EXPECT_EQ(fault.kind, AccessKind::kFetch);
  EXPECT_FALSE(fault.unmapped);
  EXPECT_EQ(as.stats().faults, 1u);

  EXPECT_EQ(as.fetch_window(0x9999'0000, window, &fault), 0u);
  EXPECT_TRUE(fault.unmapped);
  EXPECT_EQ(as.stats().faults, 2u);
}

TEST(AddressSpaceTest, CodeGenerationsTrackExecMutations) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0xF000, kPageSize, kProtRead | kProtExec, true).is_ok());
  const Page* page = as.page_at(0xF000);
  ASSERT_NE(page, nullptr);
  const std::uint64_t gen0 = page->gen;

  // Writing an executable page bumps its generation and the global counter.
  std::uint8_t byte = 0x90;
  ASSERT_TRUE(as.write_force(0xF000, {&byte, 1}).is_ok());
  EXPECT_GT(page->gen, gen0);
  EXPECT_EQ(as.stats().exec_invalidations, 1u);

  // Writing a non-exec page does not.
  ASSERT_TRUE(as.map(0x1'0000, kPageSize, kProtRead | kProtWrite, true).is_ok());
  const std::uint64_t code_gen = as.code_gen();
  ASSERT_TRUE(as.write_u8(0x1'0000, 7).is_ok());
  EXPECT_EQ(as.code_gen(), code_gen);
  EXPECT_EQ(as.stats().exec_invalidations, 1u);
}

TEST(AddressSpaceTest, RewriteIdiomBumpsGenerationAcrossProtectFlips) {
  // The lazypoline/zpoline rewrite: RX -> RW, patch, RW -> RX. The patching
  // write lands on a momentarily non-executable page, so the protect calls
  // themselves must retire the generation.
  AddressSpace as;
  ASSERT_TRUE(as.map(0x2'0000, kPageSize, kProtRead | kProtExec, true).is_ok());
  const std::uint64_t gen0 = as.page_at(0x2'0000)->gen;

  ASSERT_TRUE(as.protect(0x2'0000, kPageSize, kProtRead | kProtWrite).is_ok());
  std::uint8_t patch[2] = {0xFF, 0xD0};
  ASSERT_TRUE(as.write_force(0x2'0000, patch).is_ok());
  ASSERT_TRUE(as.protect(0x2'0000, kPageSize, kProtRead | kProtExec).is_ok());
  EXPECT_GT(as.page_at(0x2'0000)->gen, gen0);
}

TEST(AddressSpaceTest, UnmapRetiresExecGenerationGlobally) {
  // Unmap + remap at the same address must not produce a page whose gen
  // equals one a cache could have recorded before the unmap.
  AddressSpace as;
  ASSERT_TRUE(as.map(0x3'0000, kPageSize, kProtRead | kProtExec, true).is_ok());
  const std::uint64_t old_gen = as.page_at(0x3'0000)->gen;
  ASSERT_TRUE(as.unmap(0x3'0000, kPageSize).is_ok());
  ASSERT_TRUE(as.map(0x3'0000, kPageSize, kProtRead | kProtExec, true).is_ok());
  EXPECT_GT(as.page_at(0x3'0000)->gen, old_gen);
}

TEST(AddressSpaceTest, CloneGetsFreshAsidAndKeepsGenerations) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x4'0000, kPageSize, kProtRead | kProtExec, true).is_ok());
  std::uint8_t byte = 0x90;
  ASSERT_TRUE(as.write_force(0x4'0000, {&byte, 1}).is_ok());

  auto copy = as.clone();
  EXPECT_NE(copy->asid(), as.asid());
  EXPECT_EQ(copy->page_at(0x4'0000)->gen, as.page_at(0x4'0000)->gen);
  EXPECT_EQ(copy->code_gen(), as.code_gen());

  // Diverging after the fork: the copy's writes do not touch the parent.
  ASSERT_TRUE(copy->write_force(0x4'0000, {&byte, 1}).is_ok());
  EXPECT_GT(copy->page_at(0x4'0000)->gen, as.page_at(0x4'0000)->gen);
}

}  // namespace
}  // namespace lzp::mem
