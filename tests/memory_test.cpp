#include <gtest/gtest.h>

#include "memory/address_space.hpp"

namespace lzp::mem {
namespace {

TEST(AddressSpaceTest, FixedMapAndRoundTrip) {
  AddressSpace as;
  auto base = as.map(0x40'0000, 100, kProtRead | kProtWrite, /*fixed=*/true);
  ASSERT_TRUE(base.is_ok());
  EXPECT_EQ(base.value(), 0x40'0000u);
  EXPECT_TRUE(as.is_mapped(0x40'0000));
  EXPECT_TRUE(as.is_mapped(0x40'0000 + 4095));  // length page-rounded
  EXPECT_FALSE(as.is_mapped(0x40'1000));

  ASSERT_TRUE(as.write_u64(0x40'0010, 0xABCDEF).is_ok());
  auto value = as.read_u64(0x40'0010);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), 0xABCDEFu);
}

TEST(AddressSpaceTest, FixedMapRejectsOverlap) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x1000, 4096, kProtRead, true).is_ok());
  auto overlap = as.map(0x1000, 8, kProtRead, true);
  EXPECT_FALSE(overlap.is_ok());
  EXPECT_EQ(overlap.status().code(), StatusCode::kAlreadyExists);
}

TEST(AddressSpaceTest, HintSearchSkipsOccupied) {
  AddressSpace as;
  ASSERT_TRUE(as.map(AddressSpace::kDefaultMapBase, 4096, kProtRead, true).is_ok());
  auto second = as.map(AddressSpace::kDefaultMapBase, 4096, kProtRead, false);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value(), AddressSpace::kDefaultMapBase + kPageSize);
}

TEST(AddressSpaceTest, ZeroHintUsesDefaultBase) {
  AddressSpace as;
  auto base = as.map(0, 4096, kProtRead, false);
  ASSERT_TRUE(base.is_ok());
  EXPECT_EQ(base.value(), AddressSpace::kDefaultMapBase);
}

TEST(AddressSpaceTest, MapAtZeroFixedWorks) {
  // The zpoline trampoline page: only the kernel-policy layer forbids it,
  // the address space itself must support VA 0.
  AddressSpace as;
  auto base = as.map(0, 600, kProtRead | kProtWrite, true);
  ASSERT_TRUE(base.is_ok());
  EXPECT_EQ(base.value(), 0u);
  EXPECT_TRUE(as.write_u8(0, 0x90).is_ok());
}

TEST(AddressSpaceTest, ZeroLengthMapFails) {
  AddressSpace as;
  EXPECT_FALSE(as.map(0x1000, 0, kProtRead, true).is_ok());
}

TEST(AddressSpaceTest, UnmapRemovesPages) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x2000, 2 * kPageSize, kProtRead, true).is_ok());
  ASSERT_TRUE(as.unmap(0x2000, kPageSize).is_ok());
  EXPECT_FALSE(as.is_mapped(0x2000));
  EXPECT_TRUE(as.is_mapped(0x3000));
  EXPECT_FALSE(as.unmap(0x2001, 10).is_ok());  // unaligned
}

TEST(AddressSpaceTest, ProtectChangesPermissions) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x4000, kPageSize, kProtRead | kProtWrite, true).is_ok());
  ASSERT_TRUE(as.protect(0x4000, kPageSize, kProtRead).is_ok());
  EXPECT_EQ(as.prot_at(0x4000).value(), kProtRead);
  std::uint8_t byte = 1;
  EXPECT_TRUE(as.write(0x4000, {&byte, 1}).has_value());  // now read-only
}

TEST(AddressSpaceTest, ProtectFailsOnUnmappedRange) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x4000, kPageSize, kProtRead, true).is_ok());
  EXPECT_FALSE(as.protect(0x4000, 2 * kPageSize, kProtRead).is_ok());
  // And it must not have partially applied.
  EXPECT_EQ(as.prot_at(0x4000).value(), kProtRead);
}

TEST(AddressSpaceTest, PermissionFaults) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x5000, kPageSize, kProtRead, true).is_ok());
  std::uint8_t buffer[4] = {};

  EXPECT_FALSE(as.read(0x5000, buffer).has_value());

  auto write_fault = as.write(0x5000, buffer);
  ASSERT_TRUE(write_fault.has_value());
  EXPECT_FALSE(write_fault->unmapped);
  EXPECT_EQ(write_fault->kind, AccessKind::kWrite);
  EXPECT_EQ(write_fault->address, 0x5000u);

  auto fetch_fault = as.fetch(0x5000, buffer);
  ASSERT_TRUE(fetch_fault.has_value());
  EXPECT_EQ(fetch_fault->kind, AccessKind::kFetch);

  auto unmapped = as.read(0x9999'0000, buffer);
  ASSERT_TRUE(unmapped.has_value());
  EXPECT_TRUE(unmapped->unmapped);
}

TEST(AddressSpaceTest, ExecOnlyFetch) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x6000, kPageSize, kProtExec, true).is_ok());
  std::uint8_t buffer[1] = {};
  EXPECT_FALSE(as.fetch(0x6000, buffer).has_value());
  EXPECT_TRUE(as.read(0x6000, buffer).has_value());
}

TEST(AddressSpaceTest, CrossPageAccess) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x7000, 2 * kPageSize, kProtRead | kProtWrite, true).is_ok());
  const std::uint64_t boundary = 0x7000 + kPageSize - 4;
  ASSERT_TRUE(as.write_u64(boundary, 0x1122334455667788ULL).is_ok());
  auto value = as.read_u64(boundary);
  ASSERT_TRUE(value.is_ok());
  EXPECT_EQ(value.value(), 0x1122334455667788ULL);
}

TEST(AddressSpaceTest, CrossPageFaultsAtFirstBadPage) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x7000, kPageSize, kProtRead | kProtWrite, true).is_ok());
  std::uint8_t buffer[8] = {};
  auto fault = as.read(0x7000 + kPageSize - 4, buffer);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->address, 0x7000 + kPageSize);
  EXPECT_TRUE(fault->unmapped);
}

TEST(AddressSpaceTest, ForceAccessIgnoresProtections) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x8000, kPageSize, kProtNone, true).is_ok());
  const std::uint8_t data[2] = {0x0F, 0x05};
  ASSERT_TRUE(as.write_force(0x8000, data).is_ok());
  std::uint8_t readback[2] = {};
  ASSERT_TRUE(as.read_force(0x8000, readback).is_ok());
  EXPECT_EQ(readback[0], 0x0F);
  EXPECT_EQ(readback[1], 0x05);
  EXPECT_FALSE(as.write_force(0xBAD0'0000, data).is_ok());
}

TEST(AddressSpaceTest, CloneIsDeepCopy) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0x9000, kPageSize, kProtRead | kProtWrite, true).is_ok());
  ASSERT_TRUE(as.write_u64(0x9000, 111).is_ok());
  auto copy = as.clone();
  ASSERT_TRUE(copy->write_u64(0x9000, 222).is_ok());
  EXPECT_EQ(as.read_u64(0x9000).value(), 111u);
  EXPECT_EQ(copy->read_u64(0x9000).value(), 222u);
}

TEST(AddressSpaceTest, StatsAreCounted) {
  AddressSpace as;
  ASSERT_TRUE(as.map(0xA000, kPageSize, kProtRead, true).is_ok());
  ASSERT_TRUE(as.protect(0xA000, kPageSize, kProtRead | kProtWrite).is_ok());
  ASSERT_TRUE(as.unmap(0xA000, kPageSize).is_ok());
  EXPECT_EQ(as.stats().mmap_calls, 1u);
  EXPECT_EQ(as.stats().mprotect_calls, 1u);
  EXPECT_EQ(as.stats().munmap_calls, 1u);
}

TEST(AddressSpaceTest, FaultToStringMentionsKindAndAddress) {
  MemFault fault{0x1234, AccessKind::kWrite, false};
  const std::string text = fault.to_string();
  EXPECT_NE(text.find("write"), std::string::npos);
  EXPECT_NE(text.find("0x1234"), std::string::npos);
  EXPECT_NE(text.find("permission"), std::string::npos);
}

TEST(AddressSpaceTest, ProtToString) {
  EXPECT_EQ(prot_to_string(kProtRead | kProtExec), "r-x");
  EXPECT_EQ(prot_to_string(kProtNone), "---");
  EXPECT_EQ(prot_to_string(kProtRead | kProtWrite | kProtExec), "rwx");
}

}  // namespace
}  // namespace lzp::mem
