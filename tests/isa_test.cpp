#include <gtest/gtest.h>

#include "isa/assemble.hpp"
#include "isa/decode.hpp"

namespace lzp::isa {
namespace {

Instruction decode_at(const std::vector<std::uint8_t>& code, std::size_t offset) {
  auto result = decode(std::span<const std::uint8_t>(code).subspan(offset));
  EXPECT_TRUE(result.is_ok())
      << (result.is_ok() ? "" : result.status().to_string());
  return result.value_or(Instruction{});
}

TEST(IsaTest, SyscallIsTwoBytes) {
  Assembler a;
  a.syscall_();
  auto code = a.finish().value();
  ASSERT_EQ(code.size(), 2u);
  EXPECT_EQ(code[0], kByte0F);
  EXPECT_EQ(code[1], kByteSyscall2);
  const Instruction insn = decode_at(code, 0);
  EXPECT_EQ(insn.op, Op::kSyscall);
  EXPECT_EQ(insn.length, 2);
}

TEST(IsaTest, CallRaxIsTwoBytes) {
  // The property that makes in-place rewriting possible at all.
  Assembler a;
  a.call_rax();
  auto code = a.finish().value();
  ASSERT_EQ(code.size(), 2u);
  const Instruction insn = decode_at(code, 0);
  EXPECT_EQ(insn.op, Op::kCallRax);
}

TEST(IsaTest, NopIsOneByte) {
  Assembler a;
  a.nops(3);
  auto code = a.finish().value();
  EXPECT_EQ(code.size(), 3u);
  EXPECT_EQ(code[0], kByteNop);
}

// Round-trip every emitter through the decoder.
TEST(IsaTest, EncodeDecodeRoundTrip) {
  Assembler a;
  auto label = a.new_label();
  a.bind(label);
  a.nop();
  a.syscall_();
  a.sysenter_();
  a.call_rax();
  a.call(label);
  a.jmp(label);
  a.jmp_reg(Gpr::rbx);
  a.jz(label);
  a.jnz(label);
  a.jlt(label);
  a.jgt(label);
  a.ret();
  a.hlt();
  a.trap();
  a.mov(Gpr::r9, 0x1122334455667788ULL);
  a.mov(Gpr::rdx, Gpr::rsi);
  a.load(Gpr::rax, Gpr::rbx, -16);
  a.store(Gpr::rbx, 32, Gpr::rcx);
  a.load8(Gpr::rdi, Gpr::rbp, 1);
  a.store8(Gpr::rbp, 2, Gpr::r15);
  a.load_gs(Gpr::r8, 8);
  a.store_gs(16, Gpr::r9);
  a.load_gs8(Gpr::r10, 0);
  a.store_gs8(1, Gpr::r11);
  a.push(Gpr::r12);
  a.pop(Gpr::r13);
  a.add(Gpr::rax, Gpr::rbx);
  a.sub(Gpr::rcx, Gpr::rdx);
  a.mul(Gpr::rsi, Gpr::rdi);
  a.div(Gpr::rsi, Gpr::rdi);
  a.mod(Gpr::rsi, Gpr::rdi);
  a.add(Gpr::rax, 100);
  a.sub(Gpr::rbx, -5);
  a.cmp(Gpr::rax, 7);
  a.cmp(Gpr::rax, Gpr::rbx);
  a.xmov(3, 0xCAFE);
  a.xmov_from_gpr(4, Gpr::rax);
  a.xmov_to_gpr(Gpr::rbx, 5);
  a.xstore(Gpr::r12, 8, 0);
  a.xload(1, Gpr::r13, -8);
  a.xzero(15);
  a.ymov_hi(2, Gpr::rcx);
  a.ymov_rd_hi(Gpr::rdx, 2);
  a.fld(0x4000000000000000ULL);
  a.fstp(Gpr::r14);
  a.faddp();
  a.rdgs(Gpr::rax);
  a.wrgs(Gpr::rbx);
  a.hostcall(42);

  const auto sites = a.sites();
  auto code = a.finish().value();

  for (const AssembledSite& site : sites) {
    if (site.is_data) continue;
    const Instruction insn = decode_at(code, site.offset);
    EXPECT_EQ(insn.op, site.op) << "at offset " << site.offset;
    EXPECT_EQ(insn.length, site.length) << "at offset " << site.offset;
  }
  // Instructions must tile the blob exactly.
  std::uint64_t end = 0;
  for (const AssembledSite& site : sites) {
    EXPECT_EQ(site.offset, end);
    end += site.length;
  }
  EXPECT_EQ(end, code.size());
}

TEST(IsaTest, DecodedOperandsMatch) {
  Assembler a;
  a.mov(Gpr::r9, 0xDEAD);
  a.load(Gpr::rax, Gpr::rbx, -16);
  a.store(Gpr::rcx, 24, Gpr::rdx);
  a.xload(7, Gpr::r8, 40);
  auto code = a.finish().value();

  Instruction mov = decode_at(code, 0);
  EXPECT_EQ(mov.r1, Gpr::r9);
  EXPECT_EQ(mov.imm, 0xDEAD);

  Instruction load = decode_at(code, 10);
  EXPECT_EQ(load.r1, Gpr::rax);
  EXPECT_EQ(load.r2, Gpr::rbx);
  EXPECT_EQ(load.imm, -16);

  Instruction store = decode_at(code, 17);
  EXPECT_EQ(store.op, Op::kStore);
  EXPECT_EQ(store.r2, Gpr::rcx);  // base
  EXPECT_EQ(store.r1, Gpr::rdx);  // source
  EXPECT_EQ(store.imm, 24);

  Instruction xload = decode_at(code, 24);
  EXPECT_EQ(xload.op, Op::kXload);
  EXPECT_EQ(xload.xr1, 7);
  EXPECT_EQ(xload.r1, Gpr::r8);
  EXPECT_EQ(xload.imm, 40);
}

TEST(IsaTest, LabelFixupsResolve) {
  Assembler a;
  auto entry = a.new_label();
  auto target = a.new_label();
  a.bind(entry);
  a.jmp(target);    // forward
  a.nops(10);
  a.bind(target);
  a.jz(entry);      // backward
  auto code = a.finish().value();

  const Instruction jmp = decode_at(code, 0);
  EXPECT_EQ(jmp.imm, 10);  // skips the nops
  const Instruction jz = decode_at(code, 15);
  EXPECT_EQ(jz.imm, -20);  // back to offset 0 from offset 20
}

TEST(IsaTest, UnboundLabelFails) {
  Assembler a;
  auto label = a.new_label();
  a.jmp(label);
  auto result = a.finish();
  EXPECT_FALSE(result.is_ok());
}

TEST(IsaTest, FinishTwiceFails) {
  Assembler a;
  a.nop();
  EXPECT_TRUE(a.finish().is_ok());
  EXPECT_FALSE(a.finish().is_ok());
}

TEST(IsaTest, DecodeRejectsGarbage) {
  const std::uint8_t bad_opcode[] = {0xEE};
  EXPECT_FALSE(decode(bad_opcode).is_ok());
  const std::uint8_t bad_reg[] = {0x50, 0x20};  // push r32? no such register
  EXPECT_FALSE(decode(bad_reg).is_ok());
  const std::uint8_t truncated[] = {0xB8, 0x00, 0x01};  // mov cut short
  EXPECT_FALSE(decode(truncated).is_ok());
  EXPECT_FALSE(decode({}).is_ok());
}

TEST(IsaTest, SyscallBytesInsideImmediate) {
  // mov rax, 0x...0F05... embeds the SYSCALL byte pattern in an immediate:
  // a raw byte scanner must see it, the decoder must not.
  Assembler a;
  a.mov(Gpr::rax, 0x0000'0000'0000'050FULL);  // bytes 0F 05 little-endian
  auto code = a.finish().value();
  ASSERT_EQ(code.size(), 10u);
  EXPECT_TRUE(is_syscall_bytes(std::span<const std::uint8_t>(code).subspan(2)));
  const Instruction insn = decode_at(code, 0);
  EXPECT_EQ(insn.op, Op::kMovRI);
}

TEST(IsaTest, ProgramGroundTruthListsSyscalls) {
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.nop();
  a.syscall_();
  a.mov(Gpr::rax, 0x050F);  // fake pattern in an immediate: not a site
  a.sysenter_();
  a.hlt();
  auto program = make_program("p", a, entry, 0x1000).value();
  const auto sites = program.true_syscall_addresses();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], 0x1000 + 1u);
  EXPECT_EQ(sites[1], 0x1000 + 1 + 2 + 10u);
  EXPECT_EQ(program.entry, 0x1000u);
  EXPECT_EQ(program.image.size(), 1 + 2 + 10 + 2 + 1u);
}

TEST(IsaTest, RegEffectsForXstateInstructions) {
  Assembler a;
  a.xmov_from_gpr(0, Gpr::r12);
  auto code = a.finish().value();
  const Instruction insn = decode_at(code, 0);
  const RegEffects fx = reg_effects(insn);
  ASSERT_EQ(fx.num_writes, 1);
  EXPECT_EQ(fx.writes[0].cls, RegClass::kXmm);
  EXPECT_EQ(fx.writes[0].index, 0);
  ASSERT_EQ(fx.num_reads, 1);
  EXPECT_EQ(fx.reads[0].cls, RegClass::kGpr);
}

TEST(IsaTest, OpNamesAreDistinctForCoreOps) {
  EXPECT_EQ(op_name(Op::kSyscall), "syscall");
  EXPECT_EQ(op_name(Op::kCallRax), "call rax");
  EXPECT_EQ(op_name(Op::kHostCall), "hostcall");
}

TEST(IsaTest, InstructionToStringIsInformative) {
  Assembler a;
  a.mov(Gpr::rbx, 0x10);
  auto code = a.finish().value();
  const Instruction insn = decode_at(code, 0);
  const std::string text = insn.to_string();
  EXPECT_NE(text.find("rbx"), std::string::npos);
  EXPECT_NE(text.find("0x10"), std::string::npos);
}

}  // namespace
}  // namespace lzp::isa
