#include <gtest/gtest.h>

#include "apps/coreutils.hpp"
#include "apps/jitcc.hpp"
#include "apps/webserver.hpp"
#include "sim_test_util.hpp"

namespace lzp::apps {
namespace {

using kern::Machine;
using kern::Tid;

int run_coreutil(Machine& machine, const std::string& name, LibcProfile profile,
                 Tid* tid_out = nullptr) {
  populate_coreutil_fixtures(machine.vfs());
  auto program = make_coreutil(name, profile).value();
  return testutil::load_and_run(machine, program, tid_out);
}

TEST(CoreutilsTest, AllTenBuildAndRunCleanOnBothProfiles) {
  for (const std::string& name : coreutil_names()) {
    for (LibcProfile profile :
         {LibcProfile::kUbuntu2004, LibcProfile::kClearLinux}) {
      Machine machine;
      EXPECT_EQ(run_coreutil(machine, name, profile), 0)
          << name << " on " << to_string(profile);
    }
  }
}

TEST(CoreutilsTest, LsListsDirectoryToStdout) {
  Machine machine;
  Tid tid = 0;
  ASSERT_EQ(run_coreutil(machine, "ls", LibcProfile::kUbuntu2004, &tid), 0);
  const std::string& console = machine.find_task(tid)->process->console;
  EXPECT_NE(console.find("a.txt"), std::string::npos);
  EXPECT_NE(console.find("b.txt"), std::string::npos);
}

TEST(CoreutilsTest, CatPrintsFileContents) {
  Machine machine;
  Tid tid = 0;
  ASSERT_EQ(run_coreutil(machine, "cat", LibcProfile::kClearLinux, &tid), 0);
  EXPECT_EQ(machine.find_task(tid)->process->console, "hello\n");
}

TEST(CoreutilsTest, MkdirCreatesDirectory) {
  Machine machine;
  ASSERT_EQ(run_coreutil(machine, "mkdir", LibcProfile::kUbuntu2004), 0);
  auto meta = machine.vfs().stat("newdir");
  ASSERT_TRUE(meta.is_ok());
  EXPECT_TRUE(meta.value().is_dir);
}

TEST(CoreutilsTest, MvRenamesFile) {
  Machine machine;
  ASSERT_EQ(run_coreutil(machine, "mv", LibcProfile::kUbuntu2004), 0);
  EXPECT_FALSE(machine.vfs().exists("data/a.txt"));
  EXPECT_TRUE(machine.vfs().exists("data/moved.txt"));
}

TEST(CoreutilsTest, CpCopiesContents) {
  Machine machine;
  ASSERT_EQ(run_coreutil(machine, "cp", LibcProfile::kClearLinux), 0);
  std::vector<std::uint8_t> contents;
  auto n = machine.vfs().read("data/copy.txt", 0, 100, &contents);
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(std::string(contents.begin(), contents.end()), "hello\n");
}

TEST(CoreutilsTest, RmUnlinks) {
  Machine machine;
  ASSERT_EQ(run_coreutil(machine, "rm", LibcProfile::kUbuntu2004), 0);
  EXPECT_FALSE(machine.vfs().exists("data/b.txt"));
}

TEST(CoreutilsTest, TouchCreates) {
  Machine machine;
  ASSERT_EQ(run_coreutil(machine, "touch", LibcProfile::kUbuntu2004), 0);
  EXPECT_TRUE(machine.vfs().exists("newfile"));
}

TEST(CoreutilsTest, ChmodChangesMode) {
  Machine machine;
  ASSERT_EQ(run_coreutil(machine, "chmod", LibcProfile::kUbuntu2004), 0);
  EXPECT_EQ(machine.vfs().stat("data/a.txt").value().mode, 0644u);
}

TEST(CoreutilsTest, UnknownUtilityFails) {
  EXPECT_FALSE(make_coreutil("frobnicate", LibcProfile::kUbuntu2004).is_ok());
}

// --- web server -------------------------------------------------------------

struct WebFixture {
  Machine machine;
  int listener_id = 0;
  std::vector<Tid> workers;

  WebFixture(const ServerProfile& profile, std::uint64_t file_size,
             std::uint64_t total_requests, int num_workers) {
    (void)machine.vfs().put_file_of_size("index.html", file_size);
    kern::ClientWorkload workload;
    workload.connections = 36;
    workload.total_requests = total_requests;
    workload.response_bytes = profile.header_bytes + file_size;
    listener_id = machine.net().create_listener(workload);

    auto program = make_webserver(machine, profile, "index.html").value();
    for (int i = 0; i < num_workers; ++i) {
      const Tid tid = machine.load(program).value();
      kern::FdEntry entry;
      entry.kind = kern::FdEntry::Kind::kListener;
      entry.net_id = listener_id;
      // The listener is installed as fd 3 by convention.
      machine.find_task(tid)->process->install_fd_at(kListenerFd, entry);
      workers.push_back(tid);
    }
  }
};

TEST(WebServerTest, ServesAllRequestsSingleWorker) {
  WebFixture f(nginx_profile(), 1024, 200, 1);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.machine.net().completed_requests(f.listener_id), 200u);
  EXPECT_EQ(f.machine.find_task(f.workers[0])->exit_code, 0);
}

TEST(WebServerTest, MultiWorkerSharesTheLoad) {
  WebFixture f(nginx_profile(), 1024, 600, 4);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.machine.net().completed_requests(f.listener_id), 600u);
  // Every worker did a nontrivial share.
  for (Tid tid : f.workers) {
    EXPECT_GT(f.machine.find_task(tid)->syscalls_dispatched, 50u);
  }
}

TEST(WebServerTest, LighttpdProfileDoesMoreSyscallsPerRequest) {
  const std::uint64_t requests = 100;
  WebFixture nginx(nginx_profile(), 4096, requests, 1);
  nginx.machine.run();
  WebFixture lighttpd(lighttpd_profile(), 4096, requests, 1);
  lighttpd.machine.run();
  EXPECT_GT(
      lighttpd.machine.find_task(lighttpd.workers[0])->syscalls_dispatched,
      nginx.machine.find_task(nginx.workers[0])->syscalls_dispatched);
}

TEST(WebServerTest, LargerFilesCostMoreCyclesPerRequest) {
  const std::uint64_t requests = 50;
  WebFixture small(nginx_profile(), 1024, requests, 1);
  small.machine.run();
  WebFixture large(nginx_profile(), 256 * 1024, requests, 1);
  large.machine.run();
  EXPECT_GT(large.machine.find_task(large.workers[0])->cycles,
            2 * small.machine.find_task(small.workers[0])->cycles);
}

// --- JIT runner ---------------------------------------------------------------

TEST(JitRunnerTest, CompilesAndRunsAtRuntime) {
  Machine machine;
  const std::string src = exhaustiveness_test_source();
  (void)machine.vfs().put_file(
      "prog.c", std::vector<std::uint8_t>(src.begin(), src.end()));
  auto runner = make_jit_runner(machine, "prog.c").value();
  EXPECT_GT(runner.static_syscall_sites, 0u);
  auto tid = machine.load(runner.program).value();
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_EQ(machine.find_task(tid)->exit_code, 21);
}

TEST(JitRunnerTest, JitSyscallIsNotAStaticSite) {
  Machine machine;
  const std::string src = "int main() { return syscall1(39, 0); }";
  (void)machine.vfs().put_file(
      "p.c", std::vector<std::uint8_t>(src.begin(), src.end()));
  auto runner = make_jit_runner(machine, "p.c").value();
  // The runner's static image has open/read/close/mmap/mprotect/exit
  // syscalls, but the getpid only exists in JIT-ed code.
  for (std::uint64_t site : runner.program.true_syscall_addresses()) {
    (void)site;  // static sites exist
  }
  auto tid = machine.load(runner.program).value();
  machine.run();
  EXPECT_EQ(machine.find_task(tid)->exit_code, 100);  // first pid
}

TEST(JitRunnerTest, CompileErrorKillsWithDiagnostic) {
  Machine machine;
  const std::string src = "int main() { return syntax error!!! }";
  (void)machine.vfs().put_file(
      "bad.c", std::vector<std::uint8_t>(src.begin(), src.end()));
  auto runner = make_jit_runner(machine, "bad.c").value();
  (void)machine.load(runner.program).value();
  machine.run();
  EXPECT_NE(machine.last_fatal().find("compile error"), std::string::npos);
}

// --- libc emitters --------------------------------------------------------------

TEST(MinilibcTest, PthreadInitWritesStackUserList) {
  Machine machine;
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  emit_pthread_init_glibc231(a);
  emit_exit(a, 0);
  auto program = isa::make_program("pthread-init", a, entry).value();
  Tid tid = 0;
  ASSERT_EQ(testutil::load_and_run(machine, program, &tid), 0);
  kern::Task* task = machine.find_task(tid);
  // movups [r12], xmm0 wrote &__stack_user to both 'prev' and 'next'.
  EXPECT_EQ(task->mem->read_u64(kStackUserAddr).value(), kStackUserAddr);
  EXPECT_EQ(task->mem->read_u64(kStackUserAddr + 8).value(), kStackUserAddr);
  // And set_tid_address took effect.
  EXPECT_EQ(task->clear_child_tid, kDataBase + 0x20);
}

TEST(MinilibcTest, EmbeddedStringIsNulTerminated) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t addr = embed_string(a, "xyz");
  emit_exit(a, 0);
  auto program = isa::make_program("strtest", a, entry).value();
  const std::uint64_t offset = addr - program.base;
  ASSERT_LT(offset + 3, program.image.size());
  EXPECT_EQ(program.image[offset], 'x');
  EXPECT_EQ(program.image[offset + 3], 0);
}

}  // namespace
}  // namespace lzp::apps
