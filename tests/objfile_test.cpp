#include <gtest/gtest.h>

#include "apps/minilibc.hpp"
#include "isa/objfile.hpp"
#include "sim_test_util.hpp"

namespace lzp::isa {
namespace {

Program sample_program() {
  Assembler a;
  auto entry = a.new_label();
  a.nops(3);
  a.bind(entry);
  a.mov(Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  apps::emit_exit(a, 0);
  return make_program("sample", a, entry).value();
}

TEST(ObjFileTest, SerializeParseRoundTrip) {
  const Program original = sample_program();
  const auto bytes = serialize_program(original);
  auto parsed = parse_program(bytes);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const Program& restored = parsed.value();
  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.base, original.base);
  EXPECT_EQ(restored.entry, original.entry);
  EXPECT_EQ(restored.stack_size, original.stack_size);
  EXPECT_EQ(restored.image, original.image);
  ASSERT_EQ(restored.ground_truth.size(), original.ground_truth.size());
  for (std::size_t i = 0; i < restored.ground_truth.size(); ++i) {
    EXPECT_EQ(restored.ground_truth[i].offset, original.ground_truth[i].offset);
    EXPECT_EQ(restored.ground_truth[i].op, original.ground_truth[i].op);
    EXPECT_EQ(restored.ground_truth[i].length, original.ground_truth[i].length);
    EXPECT_EQ(restored.ground_truth[i].is_data, original.ground_truth[i].is_data);
  }
  EXPECT_EQ(restored.true_syscall_addresses(),
            original.true_syscall_addresses());
}

TEST(ObjFileTest, RejectsCorruptInputs) {
  const auto bytes = serialize_program(sample_program());

  EXPECT_FALSE(parse_program({}).is_ok());
  const std::uint8_t junk[] = {'E', 'L', 'F', 0};
  EXPECT_FALSE(parse_program(junk).is_ok());

  // Truncations at every boundary.
  for (std::size_t cut : {std::size_t{3}, std::size_t{7}, std::size_t{40},
                          bytes.size() - 1}) {
    EXPECT_FALSE(
        parse_program(std::span<const std::uint8_t>(bytes).first(cut)).is_ok())
        << "cut at " << cut;
  }

  // Corrupt version.
  auto bad_version = bytes;
  bad_version[4] = 0x7F;
  EXPECT_FALSE(parse_program(bad_version).is_ok());

  // Entry outside the image.
  auto bad_entry = bytes;
  bad_entry[0x10] = 0x00;  // entry low byte -> before base
  bad_entry[0x11] = 0x00;
  bad_entry[0x12] = 0x00;
  EXPECT_FALSE(parse_program(bad_entry).is_ok());
}

TEST(ObjFileTest, ProgramPathConvention) {
  EXPECT_EQ(program_path("nginx-worker"), "bin/nginx-worker");
}

TEST(ObjFileTest, RegisterProgramInstallsVfsImage) {
  kern::Machine machine;
  const Program program = sample_program();
  machine.register_program(program);
  ASSERT_TRUE(machine.vfs().exists("bin/sample"));

  std::vector<std::uint8_t> bytes;
  auto meta = machine.vfs().stat("bin/sample");
  ASSERT_TRUE(meta.is_ok());
  ASSERT_TRUE(
      machine.vfs().read("bin/sample", 0, meta.value().size, &bytes).is_ok());
  auto parsed = parse_program(bytes);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().image, program.image);
}

TEST(ObjFileTest, ExecveLoadsFromVfsWithoutRegistryEntry) {
  kern::Machine machine;

  // Target installed ONLY as an on-disk LZPF image.
  Assembler t;
  auto t_entry = t.new_label();
  t.bind(t_entry);
  apps::emit_exit(t, 33);
  const Program target = make_program("disk-only", t, t_entry).value();
  ASSERT_TRUE(machine.vfs()
                  .put_file(program_path("disk-only"),
                            serialize_program(target))
                  .is_ok());

  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t name = apps::embed_string(a, "disk-only");
  a.mov(Gpr::rdi, name);
  apps::emit_syscall(a, kern::kSysExecve);
  apps::emit_exit(a, 1);
  const Program execer = make_program("execer", a, entry).value();
  EXPECT_EQ(testutil::load_and_run(machine, execer), 33);
}

TEST(ObjFileTest, CorruptVfsImageFailsExecve) {
  kern::Machine machine;
  ASSERT_TRUE(machine.vfs()
                  .put_file(program_path("broken"), {1, 2, 3, 4})
                  .is_ok());
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t name = apps::embed_string(a, "broken");
  a.mov(Gpr::rdi, name);
  apps::emit_syscall(a, kern::kSysExecve);
  a.mov(Gpr::rbx, 0);
  a.sub(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  apps::emit_syscall(a, kern::kSysExitGroup);
  const Program execer = make_program("execer2", a, entry).value();
  EXPECT_EQ(testutil::load_and_run(machine, execer), kern::kENOENT);
}

}  // namespace
}  // namespace lzp::isa
