// Decode cache correctness: hits on repeated execution, and — the part the
// paper's mechanism depends on — invalidation when executing code is
// rewritten at runtime (syscall -> call rax), including the
// protect-RW/patch/protect-RX idiom, CLONE_VM sibling writes, fork
// independence, and execve-style address-space swaps.
#include <gtest/gtest.h>

#include <tuple>

#include "core/lazypoline.hpp"
#include "cpu/decode_cache.hpp"
#include "cpu/execute.hpp"
#include "isa/assemble.hpp"
#include "sim_test_util.hpp"

namespace lzp::cpu {
namespace {

using isa::Assembler;
using isa::Gpr;

constexpr std::uint64_t kCodeBase = 0x40'0000;
constexpr std::uint64_t kStackBase = 0x80'0000;

const std::uint8_t kCallRaxBytes[2] = {isa::kByteFF, isa::kByteCallRax2};

struct Fixture {
  mem::AddressSpace as;
  CpuContext ctx;
  DecodeCache cache;

  explicit Fixture(Assembler& assembler) {
    auto code = assembler.finish().value();
    EXPECT_TRUE(as.map(kCodeBase, mem::page_ceil(code.size()),
                       mem::kProtRead | mem::kProtExec, true)
                    .is_ok());
    EXPECT_TRUE(as.write_force(kCodeBase, code).is_ok());
    EXPECT_TRUE(
        as.map(kStackBase, 4096, mem::kProtRead | mem::kProtWrite, true).is_ok());
    ctx.rip = kCodeBase;
    ctx.set_rsp(kStackBase + 4096 - 64);
  }
};

// A single syscall instruction at kCodeBase: the canonical rewrite target.
Fixture make_syscall_site() {
  Assembler a;
  a.syscall_();
  a.nop();
  a.nop();
  return Fixture(a);
}

TEST(DecodeCacheTest, HitsOnRepeatedExecution) {
  Assembler a;
  a.add(Gpr::rax, 1);
  Fixture f(a);

  for (int i = 0; i < 10; ++i) {
    f.ctx.rip = kCodeBase;
    EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kContinue);
  }
  EXPECT_EQ(f.cache.stats().hits, 9u);
  EXPECT_EQ(f.cache.stats().misses, 1u);
  EXPECT_EQ(f.cache.stats().invalidations, 0u);
}

TEST(DecodeCacheTest, SelfModifyingWriteInvalidatesWarmEntry) {
  Fixture f = make_syscall_site();

  // Warm the cache: the site decodes as SYSCALL, twice (second is a hit).
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kSyscall);
  f.ctx.rip = kCodeBase;
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kSyscall);
  EXPECT_EQ(f.cache.stats().hits, 1u);

  // Rewrite the executing instruction (runtime-style privileged write).
  ASSERT_TRUE(f.as.write_force(kCodeBase, kCallRaxBytes).is_ok());

  // The very next step at that rip must execute the rewritten CALL RAX.
  f.ctx.set_reg(Gpr::rax, 0x1234'5678);
  f.ctx.rip = kCodeBase;
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kContinue);
  EXPECT_EQ(f.ctx.rip, 0x1234'5678u);
  EXPECT_EQ(f.cache.stats().invalidations, 1u);
}

TEST(DecodeCacheTest, ProtectFlipRewriteInvalidatesWarmEntry) {
  // The zpoline/lazypoline idiom: the patching write happens while the page
  // is momentarily non-executable, so invalidation must come from the
  // mprotect calls, not the write.
  Fixture f = make_syscall_site();
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kSyscall);

  ASSERT_TRUE(
      f.as.protect(kCodeBase, mem::kPageSize, mem::kProtRead | mem::kProtWrite)
          .is_ok());
  ASSERT_TRUE(f.as.write_force(kCodeBase, kCallRaxBytes).is_ok());
  ASSERT_TRUE(
      f.as.protect(kCodeBase, mem::kPageSize, mem::kProtRead | mem::kProtExec)
          .is_ok());

  f.ctx.set_reg(Gpr::rax, 0xBEEF'0000);
  f.ctx.rip = kCodeBase;
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kContinue);
  EXPECT_EQ(f.ctx.rip, 0xBEEF'0000u);
}

TEST(DecodeCacheTest, CloneVmSiblingWriteInvalidates) {
  // Two tasks sharing one address space (CLONE_VM), each with its own
  // decode cache. A rewrite performed "by the sibling" must be observed by
  // the other task's very next step through the shared page generations.
  Fixture f = make_syscall_site();
  DecodeCache sibling_cache;
  CpuContext sibling_ctx;
  sibling_ctx.rip = kCodeBase;
  sibling_ctx.set_rsp(kStackBase + 4096 - 128);

  // Both caches warm at the same rip.
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kSyscall);
  EXPECT_EQ(step(sibling_ctx, f.as, &sibling_cache).kind, ExecKind::kSyscall);

  // The sibling rewrites the site.
  ASSERT_TRUE(f.as.write_force(kCodeBase, kCallRaxBytes).is_ok());

  // Both tasks see CALL RAX immediately, despite their warm caches.
  for (auto* pair : {&f.ctx, &sibling_ctx}) {
    pair->set_reg(Gpr::rax, 0xAA55'0000);
    pair->rip = kCodeBase;
  }
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kContinue);
  EXPECT_EQ(f.ctx.rip, 0xAA55'0000u);
  EXPECT_EQ(step(sibling_ctx, f.as, &sibling_cache).kind, ExecKind::kContinue);
  EXPECT_EQ(sibling_ctx.rip, 0xAA55'0000u);
  EXPECT_EQ(f.cache.stats().invalidations, 1u);
  EXPECT_EQ(sibling_cache.stats().invalidations, 1u);
}

TEST(DecodeCacheTest, ForkChildStateIsIndependent) {
  Fixture f = make_syscall_site();
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kSyscall);

  // Fork: deep-copied address space, fresh cache (as Task construction
  // gives a child).
  auto child_as = f.as.clone();
  DecodeCache child_cache;
  CpuContext child_ctx;
  child_ctx.rip = kCodeBase;
  child_ctx.set_rsp(kStackBase + 4096 - 64);

  // The child rewrites its copy; the parent's code and generations are
  // untouched.
  ASSERT_TRUE(child_as->write_force(kCodeBase, kCallRaxBytes).is_ok());
  child_ctx.set_reg(Gpr::rax, 0xC0DE'0000);
  EXPECT_EQ(step(child_ctx, *child_as, &child_cache).kind, ExecKind::kContinue);
  EXPECT_EQ(child_ctx.rip, 0xC0DE'0000u);

  // Parent still executes the original SYSCALL, served from its warm cache.
  f.ctx.rip = kCodeBase;
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kSyscall);
  EXPECT_EQ(f.cache.stats().hits, 1u);
  EXPECT_EQ(f.cache.stats().invalidations, 0u);
}

TEST(DecodeCacheTest, AddressSpaceSwapFlushes) {
  // execve semantics: the same cache stepped against a different address
  // space must flush rather than serve entries from the old one.
  Fixture f = make_syscall_site();
  EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kSyscall);

  mem::AddressSpace fresh;
  ASSERT_TRUE(fresh.map(kCodeBase, mem::kPageSize,
                        mem::kProtRead | mem::kProtExec, true)
                  .is_ok());
  ASSERT_TRUE(fresh.write_force(kCodeBase, kCallRaxBytes).is_ok());
  ASSERT_TRUE(
      fresh.map(kStackBase, 4096, mem::kProtRead | mem::kProtWrite, true)
          .is_ok());

  f.ctx.set_reg(Gpr::rax, 0xFEED'0000);
  f.ctx.rip = kCodeBase;
  EXPECT_EQ(step(f.ctx, fresh, &f.cache).kind, ExecKind::kContinue);
  EXPECT_EQ(f.ctx.rip, 0xFEED'0000u);
  EXPECT_EQ(f.cache.stats().flushes, 1u);
}

TEST(DecodeCacheTest, PageCrossingInstructionValidatesTailPage) {
  // A 10-byte MOV r, imm64 straddling a page boundary: a write that only
  // touches the tail page must still invalidate the cached decode.
  mem::AddressSpace as;
  ASSERT_TRUE(as.map(kCodeBase, 2 * mem::kPageSize,
                     mem::kProtRead | mem::kProtExec, true)
                  .is_ok());
  Assembler a;
  a.mov(Gpr::rbx, 0x1111'2222'3333'4444ULL);
  auto code = a.finish().value();
  ASSERT_EQ(code.size(), 10u);
  const std::uint64_t rip = kCodeBase + mem::kPageSize - 4;
  ASSERT_TRUE(as.write_force(rip, code).is_ok());

  DecodeCache cache;
  CpuContext ctx;
  ctx.rip = rip;
  EXPECT_EQ(step(ctx, as, &cache).kind, ExecKind::kContinue);
  EXPECT_EQ(ctx.reg(Gpr::rbx), 0x1111'2222'3333'4444ULL);

  // Patch one immediate byte (bits 40-47), entirely within the tail page.
  const std::uint8_t byte = 0x77;
  ASSERT_TRUE(as.write_force(kCodeBase + mem::kPageSize + 3,
                             std::span<const std::uint8_t>(&byte, 1))
                  .is_ok());

  ctx.rip = rip;
  EXPECT_EQ(step(ctx, as, &cache).kind, ExecKind::kContinue);
  EXPECT_EQ(ctx.reg(Gpr::rbx), 0x1111'7722'3333'4444ULL);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(DecodeCacheTest, DisabledCacheMissesSilently) {
  Assembler a;
  a.add(Gpr::rax, 1);
  Fixture f(a);
  f.cache.set_enabled(false);
  for (int i = 0; i < 5; ++i) {
    f.ctx.rip = kCodeBase;
    EXPECT_EQ(step(f.ctx, f.as, &f.cache).kind, ExecKind::kContinue);
  }
  EXPECT_EQ(f.cache.stats().hits, 0u);
  EXPECT_EQ(f.cache.stats().misses, 0u);
}

TEST(DecodeCacheTest, FetchDecodeUsesCache) {
  Assembler a;
  a.add(Gpr::rax, 1);
  Fixture f(a);
  auto first = fetch_decode(f.ctx, f.as, &f.cache);
  ASSERT_TRUE(first.is_ok());
  auto second = fetch_decode(f.ctx, f.as, &f.cache);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().op, first.value().op);
  EXPECT_EQ(f.cache.stats().hits, 1u);
}

}  // namespace
}  // namespace lzp::cpu

// ---------------------------------------------------------------------------
// Machine-level: the cache is live in Machine::step_once, so the lazypoline
// SIGSYS->rewrite->re-execute round trip runs against warm entries.
// ---------------------------------------------------------------------------

namespace lzp::core {
namespace {

TEST(DecodeCacheMachineTest, LazypolineRewriteTakesEffectWithWarmCache) {
  const std::uint64_t iterations = 50;
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);
  kern::Machine machine;
  // This test pins the *per-instruction* decode cache; the superblock engine
  // would satisfy the hot loop from its own block cache instead.
  machine.block_exec_enabled = false;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  const kern::Tid tid = machine.load(program).value();
  auto handler = std::make_shared<interpose::TracingHandler>();
  auto runtime = Lazypoline::create(machine, LazypolineConfig{});
  ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());

  auto stats = machine.run();
  ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
  kern::Task* task = machine.find_task(tid);
  ASSERT_NE(task, nullptr);

  // By the time each site is rewritten it has already been executed (and
  // cached) once — SYSCALL decode from the loop's first iteration. Exactly
  // one SIGSYS per site proves the very next execution of the rewritten
  // bytes took the CALL RAX fast path instead of faulting again.
  EXPECT_EQ(runtime->stats().sites_rewritten, 2u);
  EXPECT_EQ(task->sud_sigsys_count, 2u);
  EXPECT_EQ(runtime->stats().entry_invocations, iterations + 1);
  EXPECT_EQ(handler->trace().size(), iterations + 1);

  // The loop body ran hot through the cache, and the rewrites invalidated
  // warm entries rather than flushing everything.
  const cpu::DecodeCacheStats& dstats = task->dcache.stats();
  EXPECT_GT(dstats.hits, dstats.misses);
  EXPECT_GE(dstats.invalidations, 1u);
  EXPECT_EQ(dstats.flushes, 0u);
}

TEST(DecodeCacheMachineTest, DisabledCacheIsBehaviorIdentical) {
  const std::uint64_t iterations = 25;
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);

  auto run_with = [&](bool enabled) {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    machine.decode_cache_enabled = enabled;
    machine.register_program(program);
    const kern::Tid tid = machine.load(program).value();
    auto handler = std::make_shared<interpose::TracingHandler>();
    auto runtime = Lazypoline::create(machine, LazypolineConfig{});
    EXPECT_TRUE(runtime->install(machine, tid, handler).is_ok());
    auto stats = machine.run();
    EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
    kern::Task* task = machine.find_task(tid);
    return std::tuple{task->insns_retired, task->syscalls_entered,
                      task->cycles, handler->trace().size()};
  };

  EXPECT_EQ(run_with(true), run_with(false));
}

}  // namespace
}  // namespace lzp::core
