// Cross-engine invalidation on a *shared* address space (the CLONE_VM case).
//
// Every task carries its own DecodeCache/BlockCache/DataTlb, but CLONE_VM
// siblings share one mem::AddressSpace. These tests audit the two ways a
// sibling's private caches could go stale behind a mutation performed by the
// other task (or the kernel) through the shared space:
//
//   1. the DataTlb's raw Page pointers across munmap/mprotect/remap — the
//      generation + live-prot scheme must refuse every stale fast path, and
//   2. a superblock executing decoded instructions after a store inside the
//      same block rewrote them (WX self-modifying code): run_block must end
//      the run at the generation bump so the rebuilt block sees fresh bytes,
//      keeping the engine bit-identical to the per-instruction path.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/minilibc.hpp"
#include "cpu/data_tlb.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/signals.hpp"
#include "kernel/syscalls.hpp"
#include "memory/address_space.hpp"
#include "sim_test_util.hpp"

namespace lzp {
namespace {

constexpr std::uint64_t kAddr = 0x7000'0000'0000ULL;

std::shared_ptr<mem::AddressSpace> make_space(std::uint8_t prot) {
  auto as = std::make_shared<mem::AddressSpace>();
  EXPECT_TRUE(as->map(kAddr, mem::kPageSize, prot, /*fixed=*/true).is_ok());
  return as;
}

std::uint8_t tlb_read_u8(cpu::DataTlb& tlb, const mem::AddressSpace& as,
                         std::uint64_t addr, bool* hit) {
  std::uint8_t value = 0;
  *hit = tlb.read(as, addr, &value, 1);
  return value;
}

// Two siblings warm their private TLBs, then one munmaps the shared page:
// the other's cached Page pointer is dead and must not serve reads.
TEST(SharedAddressSpaceTlbTest, SiblingCannotReadThroughStaleTlbAfterMunmap) {
  auto as = make_space(mem::kProtRead | mem::kProtWrite);
  ASSERT_TRUE(as->write_u8(kAddr, 0x42).is_ok());

  cpu::DataTlb sibling_a;
  cpu::DataTlb sibling_b;
  bool hit = false;
  EXPECT_EQ(tlb_read_u8(sibling_a, *as, kAddr, &hit), 0x42);
  // First touch refills, second is the warm fast path.
  EXPECT_EQ(tlb_read_u8(sibling_a, *as, kAddr, &hit), 0x42);
  EXPECT_TRUE(hit);
  EXPECT_EQ(tlb_read_u8(sibling_b, *as, kAddr, &hit), 0x42);
  EXPECT_TRUE(hit);

  // Sibling A unmaps through the shared space.
  ASSERT_TRUE(as->unmap(kAddr, mem::kPageSize).is_ok());

  // Sibling B's warm entry must be refused (layout generation moved), and
  // the slow path must report the architectural fault.
  std::uint8_t out = 0;
  EXPECT_FALSE(sibling_b.read(*as, kAddr, &out, 1));
  auto fault = as->read(kAddr, {&out, 1});
  ASSERT_TRUE(fault.has_value());
  EXPECT_TRUE(fault->unmapped);
}

// munmap + fresh map at the same address: the sibling must observe the new
// page's bytes, never the retired page's.
TEST(SharedAddressSpaceTlbTest, SiblingSeesFreshBytesAfterRemap) {
  auto as = make_space(mem::kProtRead | mem::kProtWrite);
  ASSERT_TRUE(as->write_u8(kAddr, 0x11).is_ok());

  cpu::DataTlb sibling;
  bool hit = false;
  EXPECT_EQ(tlb_read_u8(sibling, *as, kAddr, &hit), 0x11);

  ASSERT_TRUE(as->unmap(kAddr, mem::kPageSize).is_ok());
  ASSERT_TRUE(
      as->map(kAddr, mem::kPageSize, mem::kProtRead | mem::kProtWrite, true)
          .is_ok());
  ASSERT_TRUE(as->write_u8(kAddr, 0x99).is_ok());

  EXPECT_EQ(tlb_read_u8(sibling, *as, kAddr, &hit), 0x99);
  EXPECT_EQ(tlb_read_u8(sibling, *as, kAddr, &hit), 0x99);
}

// mprotect does NOT bump the layout generation (the Page object is stable);
// the TLB's contract is that protection is re-read through the live page on
// every access. A sibling's warm write entry must refuse to write after the
// other task revoked write permission.
TEST(SharedAddressSpaceTlbTest, SiblingCannotWriteAfterMprotectRevokesWrite) {
  auto as = make_space(mem::kProtRead | mem::kProtWrite);
  cpu::DataTlb sibling;
  const std::uint8_t byte = 0x7F;
  EXPECT_TRUE(sibling.write(*as, kAddr, &byte, 1));  // warm the write side

  ASSERT_TRUE(as->protect(kAddr, mem::kPageSize, mem::kProtRead).is_ok());
  EXPECT_FALSE(sibling.write(*as, kAddr, &byte, 1));

  // And back: restoring write re-enables the fast path through the same
  // (still live) page object.
  ASSERT_TRUE(
      as->protect(kAddr, mem::kPageSize, mem::kProtRead | mem::kProtWrite)
          .is_ok());
  EXPECT_TRUE(sibling.write(*as, kAddr, &byte, 1));
}

TEST(SharedAddressSpaceTlbTest, SiblingCannotReadAfterMprotectNone) {
  auto as = make_space(mem::kProtRead | mem::kProtWrite);
  cpu::DataTlb sibling;
  bool hit = false;
  (void)tlb_read_u8(sibling, *as, kAddr, &hit);

  ASSERT_TRUE(as->protect(kAddr, mem::kPageSize, mem::kProtNone).is_ok());
  std::uint8_t out = 0;
  EXPECT_FALSE(sibling.read(*as, kAddr, &out, 1));
}

// A sibling making the shared page executable must also disable the other
// task's *write* fast path: writes to exec pages have to go through
// AddressSpace::write so the code generation bumps (the SMC contract).
TEST(SharedAddressSpaceTlbTest, SiblingWriteRefusesPageMadeExecutable) {
  auto as = make_space(mem::kProtRead | mem::kProtWrite);
  cpu::DataTlb sibling;
  const std::uint8_t byte = 0x90;
  EXPECT_TRUE(sibling.write(*as, kAddr, &byte, 1));

  ASSERT_TRUE(as->protect(kAddr, mem::kPageSize,
                          mem::kProtRead | mem::kProtWrite | mem::kProtExec)
                  .is_ok());
  EXPECT_FALSE(sibling.write(*as, kAddr, &byte, 1));
  const std::uint64_t gen_before = as->code_gen();
  ASSERT_TRUE(as->write_u8(kAddr, byte).is_ok());
  EXPECT_GT(as->code_gen(), gen_before);
}

// --- superblock self-modification within one block ---------------------------
//
// The program makes its own text RWX, then — inside one straight-line
// superblock — stores a TRAP opcode (0xCC) over a nop a few instructions
// ahead. The per-instruction reference path refetches after the store and
// dies of SIGTRAP (exit 128+5). A block engine replaying the stale decode
// would sail through the nop and exit 0. The engine must match the
// reference path exactly.

isa::Program make_self_patching_program(std::uint64_t patch_addr) {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  // mprotect(text_page, 4096, rwx)
  a.mov(isa::Gpr::rdi, 0x400000);
  a.mov(isa::Gpr::rsi, mem::kPageSize);
  a.mov(isa::Gpr::rdx, 0x7);
  a.mov(isa::Gpr::rax, kern::kSysMprotect);
  a.syscall_();  // ends the first block; the next decode starts fresh
  // One superblock: load the patch byte and address, store, then run across
  // the patched site.
  a.mov(isa::Gpr::rbx, patch_addr);
  a.mov(isa::Gpr::rcx, 0xCC);  // TRAP opcode
  a.store8(isa::Gpr::rbx, 0, isa::Gpr::rcx);
  const auto patch = a.new_label();
  a.bind(patch);
  a.nop();  // <- overwritten by the store two instructions earlier
  apps::emit_exit(a, 0);
  (void)patch;
  auto program = isa::make_program("self-patching", a, entry);
  EXPECT_TRUE(program.is_ok());
  return std::move(program).value();
}

// The patch target's offset is layout-stable (mov imm is fixed-length), so
// assemble once with a placeholder to learn it, then for real.
std::uint64_t find_patch_offset() {
  isa::Assembler a;
  a.mov(isa::Gpr::rdi, 0x400000);
  a.mov(isa::Gpr::rsi, mem::kPageSize);
  a.mov(isa::Gpr::rdx, 0x7);
  a.mov(isa::Gpr::rax, kern::kSysMprotect);
  a.syscall_();
  a.mov(isa::Gpr::rbx, 0);
  a.mov(isa::Gpr::rcx, 0xCC);
  a.store8(isa::Gpr::rbx, 0, isa::Gpr::rcx);
  const auto patch = a.new_label();
  a.bind(patch);
  auto offset = a.label_offset(patch);
  EXPECT_TRUE(offset.is_ok());
  return offset.is_ok() ? offset.value() : 0;
}

int run_self_patching(bool engine_on, std::uint64_t* steps,
                      std::uint64_t* insns) {
  const std::uint64_t patch_addr = 0x400000 + find_patch_offset();
  const isa::Program program = make_self_patching_program(patch_addr);
  kern::Machine machine;
  machine.block_exec_enabled = engine_on;
  auto tid = machine.load(program);
  EXPECT_TRUE(tid.is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  *steps = machine.total_steps();
  *insns = machine.total_insns();
  return machine.find_task(tid.value())->exit_code;
}

TEST(SharedAddressSpaceTlbTest, MidBlockSelfPatchMatchesReferencePath) {
  std::uint64_t ref_steps = 0;
  std::uint64_t ref_insns = 0;
  const int ref = run_self_patching(/*engine_on=*/false, &ref_steps, &ref_insns);
  // The reference semantics: the store lands before the nop executes, so the
  // task dies of SIGTRAP.
  EXPECT_EQ(ref, 128 + kern::kSigtrap);

  std::uint64_t blk_steps = 0;
  std::uint64_t blk_insns = 0;
  const int blk = run_self_patching(/*engine_on=*/true, &blk_steps, &blk_insns);
  EXPECT_EQ(blk, ref);
  EXPECT_EQ(blk_steps, ref_steps);
  EXPECT_EQ(blk_insns, ref_insns);
}

}  // namespace
}  // namespace lzp
