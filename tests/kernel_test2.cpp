// Second kernel suite: syscall surface breadth, SYSENTER, vfork, signal
// machinery details, Figure-1 interception ordering, and accounting.
#include <gtest/gtest.h>

#include "bpf/seccomp_filter.hpp"
#include "sim_test_util.hpp"

namespace lzp::kern {
namespace {

using isa::Assembler;
using isa::Gpr;
using testutil::load_and_run;

TEST(Machine2Test, SysenterBehavesLikeSyscall) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, kSysGetpid);
  a.sysenter_();
  a.mov(Gpr::rdi, Gpr::rax);
  a.mov(Gpr::rax, kSysExitGroup);
  a.sysenter_();
  auto program = isa::make_program("sysenter", a, entry).value();
  Tid tid = 0;
  const int code = load_and_run(machine, program, &tid);
  EXPECT_EQ(code, static_cast<int>(machine.find_task(tid)->process->pid));
}

TEST(Machine2Test, VforkCreatesChildLikeFork) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  auto child_path = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, kSysVfork);
  a.syscall_();
  a.cmp(Gpr::rax, 0);
  a.jz(child_path);
  apps::emit_exit(a, 1);
  a.bind(child_path);
  apps::emit_exit(a, 2);
  auto program = isa::make_program("vforker", a, entry).value();
  Tid tid = 0;
  EXPECT_EQ(load_and_run(machine, program, &tid), 1);
  bool found_child = false;
  for (Tid other : machine.task_ids()) {
    if (other == tid) continue;
    found_child = true;
    EXPECT_EQ(machine.find_task(other)->exit_code, 2);
    // vfork child got its own address space copy in our model.
    EXPECT_NE(machine.find_task(other)->mem.get(),
              machine.find_task(tid)->mem.get());
  }
  EXPECT_TRUE(found_child);
}

TEST(Machine2Test, LseekMovesFileOffset) {
  Machine machine;
  (void)machine.vfs().put_file("f", {'a', 'b', 'c', 'd', 'e'});
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t path = apps::embed_string(a, "f");
  a.mov(Gpr::rdi, path);
  a.mov(Gpr::rsi, 0);
  apps::emit_syscall(a, kSysOpen);
  a.mov(Gpr::rbx, Gpr::rax);
  // lseek(fd, -2, SEEK_END) -> offset 3
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, static_cast<std::uint64_t>(-2));
  a.mov(Gpr::rdx, 2);
  apps::emit_syscall(a, kSysLseek);
  // read 10 -> should read 2 bytes ('d','e')
  a.mov(Gpr::rdi, Gpr::rbx);
  a.mov(Gpr::rsi, apps::kScratchBuf);
  a.mov(Gpr::rdx, 10);
  apps::emit_syscall(a, kSysRead);
  a.mov(Gpr::rdi, Gpr::rax);
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("seeker", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 2);
}

TEST(Machine2Test, DupSharesPath) {
  Machine machine;
  (void)machine.vfs().put_file("f", {'x'});
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t path = apps::embed_string(a, "f");
  a.mov(Gpr::rdi, path);
  a.mov(Gpr::rsi, 0);
  apps::emit_syscall(a, kSysOpen);
  a.mov(Gpr::rdi, Gpr::rax);
  apps::emit_syscall(a, kSysDup);
  a.mov(Gpr::rdi, Gpr::rax);
  a.mov(Gpr::rsi, apps::kScratchBuf);
  a.mov(Gpr::rdx, 10);
  apps::emit_syscall(a, kSysRead);  // via the dup'ed fd
  a.mov(Gpr::rdi, Gpr::rax);
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("duper", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 1);
}

TEST(Machine2Test, Pipe2WritesFdPair) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, apps::kDataBase);
  a.mov(Gpr::rsi, 0);
  apps::emit_syscall(a, kSysPipe2);
  a.mov(Gpr::r9, apps::kDataBase);
  a.load(Gpr::rdi, Gpr::r9, 0);  // packed fds
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("piper", a, entry).value();
  Tid tid = 0;
  const int code = load_and_run(machine, program, &tid);
  const int rfd = code & 0xFFFF;  // low half of the packed word (small fds)
  EXPECT_GE(rfd, 3);
  EXPECT_TRUE(machine.find_task(tid)->process->fds.count(rfd));
}

TEST(Machine2Test, SigaltstackRegistersAndDeliversOnIt) {
  Machine machine;
  auto program = testutil::make_syscall_loop(kSysGetpid, 2000, "alt");
  auto tid = machine.load(program).value();
  Task* task = machine.find_task(tid);

  // Register an alternate stack inside the data region.
  task->altstack.base = Machine::kDataRegionBase + 0x10000;
  task->altstack.size = 0x4000;

  std::uint64_t handler_rsp = 0;
  const std::uint64_t addr =
      machine.bind_host("alt.handler", [&](HostFrame& frame) {
        handler_rsp = frame.ctx.rsp();
        frame.task.signal_frames.back().saved_context.set_reg(Gpr::rbx, 1);
        (void)frame.syscall(kSysRtSigreturn);
      });
  task->process->sigactions[kSigusr1] =
      SigAction{addr, kSaSiginfo | kSaOnstack, 0};

  machine.run(64);
  SigInfo info;
  info.signo = kSigusr1;
  task->pending_signals.push_back(info);
  machine.run();
  // Delivered on the alternate stack: rsp inside [base, base+size].
  EXPECT_GE(handler_rsp, task->altstack.base);
  EXPECT_LE(handler_rsp, task->altstack.base + task->altstack.size);
}

TEST(Machine2Test, HandlerMaskBlocksNestedDelivery) {
  Machine machine;
  auto program = testutil::make_syscall_loop(kSysGetpid, 4000, "masknest");
  auto tid = machine.load(program).value();
  Task* task = machine.find_task(tid);

  int usr1_runs = 0;
  int usr2_runs_during_usr1 = 0;
  bool in_usr1 = false;
  const std::uint64_t usr2_addr =
      machine.bind_host("usr2", [&](HostFrame& frame) {
        usr2_runs_during_usr1 += in_usr1 ? 1 : 0;
        (void)frame.syscall(kSysRtSigreturn);
      });
  const std::uint64_t usr1_addr =
      machine.bind_host("usr1", [&](HostFrame& frame) {
        ++usr1_runs;
        in_usr1 = true;
        // Pend SIGUSR2 while it is blocked by our sa_mask: it must not be
        // delivered until we return.
        SigInfo nested;
        nested.signo = kSigusr2;
        frame.task.pending_signals.push_back(nested);
        // Give the scheduler a chance: the signal stays pending because the
        // mask blocks it (delivery happens between steps, not inside host
        // functions, so we verify post-return).
        frame.task.signal_frames.back().saved_context.set_reg(Gpr::rbx, 2);
        in_usr1 = false;
        (void)frame.syscall(kSysRtSigreturn);
      });
  task->process->sigactions[kSigusr1] =
      SigAction{usr1_addr, kSaSiginfo, 1ULL << kSigusr2};
  task->process->sigactions[kSigusr2] = SigAction{usr2_addr, kSaSiginfo, 0};

  machine.run(64);
  SigInfo info;
  info.signo = kSigusr1;
  task->pending_signals.push_back(info);
  machine.run();
  EXPECT_EQ(usr1_runs, 1);
  EXPECT_EQ(usr2_runs_during_usr1, 0);
  EXPECT_EQ(task->exit_code, 0);
}

TEST(Machine2Test, SeccompRunsBeforeSudInEntryPath) {
  // Figure 1 ordering: a seccomp ERRNO verdict short-circuits before SUD
  // would have raised SIGSYS.
  Machine machine;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();
  Task* task = machine.find_task(tid);

  // SUD armed with BLOCK and no handler: if SUD saw the syscall, the
  // process would die (default SIGSYS).
  auto page = task->mem->map(0, 4096, mem::kProtRead | mem::kProtWrite, false)
                  .value();
  (void)task->mem->write_u8(page, kSudBlock);
  task->sud.enabled = true;
  task->sud.selector_addr = page;

  // seccomp: everything -> ERRNO 11.
  auto filter = bpf::SeccompFilterBuilder::return_constant(
      bpf::SECCOMP_RET_ERRNO | 11);
  task->seccomp.push_back(
      std::make_shared<const std::vector<bpf::Insn>>(std::move(filter)));

  machine.run();
  // The program survived to its exit_group (also ERRNO'd, so it falls off
  // the end and faults) — the important part: no SIGSYS kill (128+31).
  EXPECT_NE(task->exit_code, 128 + kSigsys);
}

TEST(Machine2Test, SeccompKillThreadOnlyKillsOneThread) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  auto child_path = a.new_label();
  auto spin = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, kCloneVm | kCloneThread);
  a.mov(Gpr::rsi, apps::kDataBase + 0x8000);
  a.mov(Gpr::rax, kSysClone);
  a.syscall_();
  a.cmp(Gpr::rax, 0);
  a.jz(child_path);
  // Parent waits for the child's flag, then exits 0.
  a.bind(spin);
  a.mov(Gpr::r9, apps::kDataBase);
  a.load(Gpr::rcx, Gpr::r9, 0x40);
  a.cmp(Gpr::rcx, 1);
  a.jnz(spin);
  // Plain exit (not exit_group): exit_group would overwrite the already-dead
  // sibling's exit code when tearing down the whole thread group.
  a.mov(Gpr::rdi, 0);
  a.mov(Gpr::rax, kSysExit);
  a.syscall_();
  a.bind(child_path);
  // Child: set the flag, then perform the killed syscall.
  a.mov(Gpr::r9, apps::kDataBase);
  a.mov(Gpr::rcx, 1);
  a.store(Gpr::r9, 0x40, Gpr::rcx);
  a.mov(Gpr::rax, kSysGetpid);
  a.syscall_();  // seccomp kills this thread
  a.hlt();
  auto program = isa::make_program("threadkill", a, entry).value();
  auto tid = machine.load(program).value();

  // Attach KILL_THREAD-for-getpid to... the child only. The child does not
  // exist yet, so attach to the parent and rely on inheritance; the parent
  // must avoid getpid (it does).
  const std::uint32_t trapped[] = {kSysGetpid};
  auto filter =
      bpf::SeccompFilterBuilder::trap_syscalls(trapped,
                                               bpf::SECCOMP_RET_KILL_THREAD)
          .value();
  machine.find_task(tid)->seccomp.push_back(
      std::make_shared<const std::vector<bpf::Insn>>(std::move(filter)));

  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_EQ(machine.find_task(tid)->exit_code, 0) << "parent unaffected";
  for (Tid other : machine.task_ids()) {
    if (other != tid) {
      EXPECT_EQ(machine.find_task(other)->exit_code, 128 + kSigsys);
    }
  }
}

TEST(Machine2Test, WritevToStdoutGathersIovecs) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  // Build "hi!" from two iovecs in data memory.
  a.mov(Gpr::r9, apps::kDataBase);
  a.mov(Gpr::rcx, 'h' | ('i' << 8));
  a.store(Gpr::r9, 0x100, Gpr::rcx);  // bytes "hi"
  a.mov(Gpr::rcx, '!');
  a.store(Gpr::r9, 0x110, Gpr::rcx);  // byte "!"
  // iov[0] = {base+0x100, 2}; iov[1] = {base+0x110, 1}
  a.mov(Gpr::rcx, apps::kDataBase + 0x100);
  a.store(Gpr::r9, 0, Gpr::rcx);
  a.mov(Gpr::rcx, 2);
  a.store(Gpr::r9, 8, Gpr::rcx);
  a.mov(Gpr::rcx, apps::kDataBase + 0x110);
  a.store(Gpr::r9, 16, Gpr::rcx);
  a.mov(Gpr::rcx, 1);
  a.store(Gpr::r9, 24, Gpr::rcx);
  a.mov(Gpr::rdi, 1);
  a.mov(Gpr::rsi, apps::kDataBase);
  a.mov(Gpr::rdx, 2);
  apps::emit_syscall(a, kSysWritev);
  a.mov(Gpr::rdi, Gpr::rax);  // total bytes
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("writev", a, entry).value();
  Tid tid = 0;
  EXPECT_EQ(load_and_run(machine, program, &tid), 3);
  EXPECT_EQ(machine.find_task(tid)->process->console, "hi!");
}

TEST(Machine2Test, RunBudgetStopsWithoutQuiescing) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  auto spin = a.new_label();
  a.bind(entry);
  a.bind(spin);
  a.jmp(spin);  // infinite loop
  auto program = isa::make_program("spinner", a, entry).value();
  auto tid = machine.load(program).value();
  const auto stats = machine.run(1000);
  EXPECT_FALSE(stats.all_exited);
  EXPECT_TRUE(machine.find_task(tid)->runnable());
  EXPECT_GE(stats.insns, 1000u);
}

TEST(Machine2Test, AccountingCountersAreConsistent) {
  Machine machine;
  auto program = testutil::make_syscall_loop(kSysGetpid, 10, "acct");
  Tid tid = 0;
  load_and_run(machine, program, &tid);
  const Task* task = machine.find_task(tid);
  EXPECT_EQ(task->syscalls_entered, 11u);      // 10 getpid + exit
  EXPECT_EQ(task->syscalls_dispatched, 11u);
  EXPECT_GT(task->insns_retired, 11u);
  EXPECT_GT(task->cycles, 11 * machine.costs().raw_nosys_roundtrip() / 2);
  EXPECT_EQ(machine.total_cycles(), task->cycles);
}

TEST(Machine2Test, GetrandomFillsDeterministicBytes) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, apps::kDataBase);
  a.mov(Gpr::rsi, 16);
  a.mov(Gpr::rdx, 0);
  apps::emit_syscall(a, kSysGetrandom);
  a.mov(Gpr::rdi, Gpr::rax);
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("random", a, entry).value();
  Tid tid = 0;
  EXPECT_EQ(load_and_run(machine, program, &tid), 16);
  // Bytes were actually written (not all zero).
  auto word = machine.find_task(tid)->mem->read_u64(apps::kDataBase);
  EXPECT_NE(word.value(), 0u);
}

TEST(Machine2Test, ArchPrctlSetsAndGetsGsBase) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, kArchSetGs);
  a.mov(Gpr::rsi, 0x1234000);
  apps::emit_syscall(a, kSysArchPrctl);
  a.mov(Gpr::rdi, kArchGetGs);
  a.mov(Gpr::rsi, apps::kDataBase);
  apps::emit_syscall(a, kSysArchPrctl);
  a.mov(Gpr::r9, apps::kDataBase);
  a.load(Gpr::rdi, Gpr::r9, 0);
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("archprctl", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), 0x1234000);
}

TEST(Machine2Test, PrctlSudRoundTripViaSyscalls) {
  // Enable SUD through the real prctl interface with selector=ALLOW, then
  // disable it again: the program must run unhindered both ways.
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::r9, apps::kDataBase);
  a.mov(Gpr::rcx, kSudAllow);
  a.store8(Gpr::r9, 0x50, Gpr::rcx);
  a.mov(Gpr::rdi, kPrSetSyscallUserDispatch);
  a.mov(Gpr::rsi, kPrSysDispatchOn);
  a.mov(Gpr::rdx, 0);
  a.mov(Gpr::r10, 0);
  a.mov(Gpr::r8, apps::kDataBase + 0x50);
  apps::emit_syscall(a, kSysPrctl);
  a.mov(Gpr::rax, kSysGetpid);  // allowed (selector ALLOW)
  a.syscall_();
  a.mov(Gpr::rdi, kPrSetSyscallUserDispatch);
  a.mov(Gpr::rsi, kPrSysDispatchOff);
  apps::emit_syscall(a, kSysPrctl);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("sudprctl", a, entry).value();
  Tid tid = 0;
  EXPECT_EQ(load_and_run(machine, program, &tid), 0);
  EXPECT_FALSE(machine.find_task(tid)->sud.enabled);
}

TEST(Machine2Test, BadPrctlSelectorAddressFails) {
  Machine machine;
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, kPrSetSyscallUserDispatch);
  a.mov(Gpr::rsi, kPrSysDispatchOn);
  a.mov(Gpr::rdx, 0);
  a.mov(Gpr::r10, 0);
  a.mov(Gpr::r8, 0xBAD0'0000);  // unmapped selector
  apps::emit_syscall(a, kSysPrctl);
  a.mov(Gpr::rbx, 0);
  a.sub(Gpr::rbx, Gpr::rax);
  a.mov(Gpr::rdi, Gpr::rbx);
  apps::emit_syscall(a, kSysExitGroup);
  auto program = isa::make_program("badsud", a, entry).value();
  EXPECT_EQ(load_and_run(machine, program), kEFAULT);
}

TEST(Machine2Test, KillDeliversToTargetProcess) {
  Machine machine;
  auto looper = testutil::make_syscall_loop(kSysSchedYield, 100000, "victim");
  auto victim = machine.load(looper).value();

  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rdi, machine.find_task(victim)->process->pid);
  a.mov(Gpr::rsi, kSigterm);
  apps::emit_syscall(a, kSysKill);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("killer", a, entry).value();
  auto killer = machine.load(program).value();

  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited);
  EXPECT_EQ(machine.find_task(killer)->exit_code, 0);
  EXPECT_EQ(machine.find_task(victim)->exit_code, 128 + kSigterm);
}

}  // namespace
}  // namespace lzp::kern
