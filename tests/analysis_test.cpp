// The static rewrite-safety analyzer: CFG construction, the verdict lattice,
// the randomized soundness suite (zero SAFE false positives vs assembler
// ground truth), the verified-eager lazypoline differential, and the runtime
// cross-checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/analyzer.hpp"
#include "analysis/cfg.hpp"
#include "analysis/crosscheck.hpp"
#include "analysis/fuzz_programs.hpp"
#include "analysis/report.hpp"
#include "apps/minilibc.hpp"
#include "core/lazypoline.hpp"
#include "interpose/handler.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "sim_test_util.hpp"
#include "zpoline/zpoline.hpp"

namespace lzp {
namespace {

using isa::Gpr;

// One program exercising all four verdicts (the same traps as the
// examples/analyze adversarial workload):
//   * a reachable, clean syscall                      -> SAFE
//   * 0F 05 inside a reachable mov immediate          -> UNSAFE_OVERLAP
//   * a data island behind jmp with a 0F 05 pair      -> UNKNOWN
//   * a desync header hiding a genuine syscall        -> UNKNOWN (true site)
//   * a window that is also a direct branch target    -> UNSAFE_JUMP_INTO_WINDOW
// Runnable: the gadget arm is descent-reachable but guarded by a never-true
// branch, so execution takes only the clean path and exits 0.
struct FourVerdicts {
  isa::Program program;
  std::uint64_t safe_site = 0;      // the clean getpid syscall
  std::uint64_t overlap_site = 0;   // candidate inside the mov immediate
  std::uint64_t overlap_insn = 0;   // the mov that owns those bytes
  std::uint64_t island_site = 0;    // candidate in the data island
  std::uint64_t hidden_site = 0;    // genuine syscall behind the desync header
  std::uint64_t gadget_site = 0;    // the jump-into-window candidate
};

FourVerdicts make_four_verdicts() {
  FourVerdicts out;
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto gadget = a.new_label();
  const auto mid = a.new_label();
  const auto after = a.new_label();
  const std::uint64_t base = 0x40'0000;
  a.bind(entry);
  a.mov(Gpr::rbx, 1);
  a.cmp(Gpr::rbx, 0x7777);
  a.jz(gadget);
  a.mov(Gpr::rax, kern::kSysGetpid);
  out.safe_site = base + a.offset();
  a.syscall_();
  out.overlap_insn = base + a.offset();
  a.mov(Gpr::rcx, 0x050FULL);
  out.overlap_site = out.overlap_insn + 2;  // imm bytes follow op+reg
  a.jmp(after);
  out.island_site = base + a.offset() + 2;
  a.db({0x68, 0x69, 0x0F, 0x05, 0x0A, 0x00});
  a.db({0xB8});
  a.mov(Gpr::rax, kern::kSysGetpid);
  out.hidden_site = base + a.offset();
  a.syscall_();
  a.bind(after);
  apps::emit_exit(a, 0);
  a.bind(gadget);
  a.jz(mid);
  out.gadget_site = base + a.offset();
  a.db({0x0F});
  a.bind(mid);
  a.db({0x05});
  a.ret();
  out.program = isa::make_program("four-verdicts", a, entry, base).value();
  return out;
}

analysis::Analysis analyze(const isa::Program& program) {
  return analysis::analyze(program.image, program.base, program.entry);
}

// --- CFG construction --------------------------------------------------------

TEST(CfgTest, LoopProgramHasBlocksAndJumpTargets) {
  const auto program = testutil::make_syscall_loop(kern::kSysGetpid, 5);
  const auto cfg = analysis::build_cfg(program.image, program.base,
                                       program.entry);
  EXPECT_TRUE(cfg.is_reachable_insn(program.entry));
  EXPECT_FALSE(cfg.blocks.empty());
  EXPECT_FALSE(cfg.jump_targets.empty());
  // Every ground-truth instruction of this fully-connected program is
  // reachable, at exactly its real boundary.
  for (const auto& site : program.ground_truth) {
    if (site.is_data) continue;
    EXPECT_TRUE(cfg.is_reachable_insn(program.base + site.offset))
        << "offset " << site.offset;
  }
  // Blocks partition the reachable set: every reachable insn is in exactly
  // one block.
  std::size_t in_blocks = 0;
  for (const auto& block : cfg.blocks) in_blocks += block.insns.size();
  EXPECT_EQ(in_blocks, cfg.reachable.size());
}

TEST(CfgTest, DataIslandBehindJmpIsNotReachable) {
  const auto four = make_four_verdicts();
  const auto cfg = analysis::build_cfg(four.program.image, four.program.base,
                                       four.program.entry);
  EXPECT_FALSE(cfg.is_reachable_insn(four.island_site));
  EXPECT_FALSE(cfg.is_reachable_insn(four.hidden_site));
  // The gadget arm IS reachable (via the never-true jz).
  EXPECT_TRUE(cfg.is_reachable_insn(four.gadget_site));
}

TEST(CfgTest, OverlapWindowQueryFindsOwningInstruction) {
  const auto four = make_four_verdicts();
  const auto cfg = analysis::build_cfg(four.program.image, four.program.base,
                                       four.program.entry);
  const auto overlapping =
      cfg.insns_overlapping_window(four.overlap_site, analysis::kRewriteWindow);
  ASSERT_EQ(overlapping.size(), 1u);
  EXPECT_EQ(overlapping[0], four.overlap_insn);
  // A clean site has no overlapping reachable instruction.
  EXPECT_TRUE(cfg.insns_overlapping_window(four.safe_site,
                                           analysis::kRewriteWindow)
                  .empty());
}

// --- verdict lattice ---------------------------------------------------------

TEST(AnalyzerTest, FourVerdictsClassifiedExactly) {
  const auto four = make_four_verdicts();
  const auto result = analyze(four.program);

  const auto* safe = result.find_site(four.safe_site);
  ASSERT_NE(safe, nullptr);
  EXPECT_EQ(safe->verdict, analysis::Verdict::kSafe);

  const auto* overlap = result.find_site(four.overlap_site);
  ASSERT_NE(overlap, nullptr);
  EXPECT_EQ(overlap->verdict, analysis::Verdict::kUnsafeOverlap);
  ASSERT_FALSE(overlap->evidence.empty());
  EXPECT_EQ(overlap->evidence[0], four.overlap_insn);

  const auto* island = result.find_site(four.island_site);
  ASSERT_NE(island, nullptr);
  EXPECT_EQ(island->verdict, analysis::Verdict::kUnknown);

  const auto* hidden = result.find_site(four.hidden_site);
  ASSERT_NE(hidden, nullptr);
  EXPECT_EQ(hidden->verdict, analysis::Verdict::kUnknown);

  const auto* gadget = result.find_site(four.gadget_site);
  ASSERT_NE(gadget, nullptr);
  EXPECT_EQ(gadget->verdict, analysis::Verdict::kUnsafeJumpIntoWindow);
  ASSERT_FALSE(gadget->evidence.empty());
  EXPECT_EQ(gadget->evidence[0], four.gadget_site + 1);
}

TEST(AnalyzerTest, StraightLineSyscallsAreSafe) {
  const auto program = testutil::make_getpid_once();
  const auto result = analyze(program);
  EXPECT_EQ(result.count(analysis::Verdict::kSafe), 2u);
  EXPECT_EQ(result.sites.size(), 2u);
  const auto acc = analysis::evaluate(result, program);
  EXPECT_TRUE(acc.sound());
  EXPECT_EQ(acc.safe_true.size(), 2u);
  EXPECT_TRUE(acc.not_eager.empty());
}

TEST(AnalyzerTest, EvaluateSeparatesDeferredFromLost) {
  const auto four = make_four_verdicts();
  const auto acc = analysis::evaluate(analyze(four.program), four.program);
  EXPECT_TRUE(acc.sound());
  // The hidden (desync-header) syscall is genuine but UNKNOWN: deferred.
  EXPECT_NE(std::find(acc.not_eager.begin(), acc.not_eager.end(),
                      four.hidden_site),
            acc.not_eager.end());
}

TEST(AnalyzerTest, ReportsRenderAllSites) {
  const auto four = make_four_verdicts();
  const auto result = analyze(four.program);
  const std::string json = analysis::json_report(result, "four-verdicts");
  EXPECT_NE(json.find("UNSAFE_OVERLAP"), std::string::npos);
  EXPECT_NE(json.find("UNSAFE_JUMP_INTO_WINDOW"), std::string::npos);
  const std::string listing =
      analysis::annotated_listing(result, four.program.image);
  EXPECT_NE(listing.find("<- SAFE"), std::string::npos);
  EXPECT_NE(listing.find("UNKNOWN"), std::string::npos);
  EXPECT_FALSE(analysis::verdict_summary(result).empty());
}

// --- randomized soundness ----------------------------------------------------

class AnalysisSoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisSoundnessTest, NoSafeFalsePositivesOnAdversarialPrograms) {
  Xoshiro256 seeder(GetParam());
  for (int round = 0; round < 25; ++round) {
    const std::uint64_t seed = seeder.next();
    const isa::Program program = analysis::make_adversarial_program(seed);
    const auto result = analyze(program);
    const auto acc = analysis::evaluate(result, program);
    ASSERT_TRUE(acc.sound())
        << "seed " << seed << ": " << acc.safe_false.size()
        << " SAFE window(s) that are not genuine syscall instructions";
    // Candidates cover every genuine site by construction (raw-scan
    // superset): nothing is lost, only deferred.
    ASSERT_EQ(acc.safe_true.size() + acc.not_eager.size(),
              program.true_syscall_addresses().size())
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisSoundnessTest,
                         ::testing::Values(7, 99, 1234, 0xC0FFEE));

// --- verified-eager lazypoline differential ---------------------------------

struct LazyRun {
  int exit_code = -1;
  std::uint64_t interposed = 0;
  std::uint64_t slow = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t eager_rewritten = 0;
  std::uint64_t safe_disagreements = 0;
};

LazyRun run_lazypoline(const isa::Program& program, bool eager) {
  LazyRun out;
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program);
  EXPECT_TRUE(tid.is_ok());
  if (!tid.is_ok()) return out;

  core::LazypolineConfig config;
  config.eager_verified_rewrite = eager;
  auto runtime = core::Lazypoline::create(machine, config);
  auto checker = std::make_shared<analysis::CrossChecker>();
  checker->add_region(analyze(program));
  runtime->set_cross_checker(checker);
  EXPECT_TRUE(runtime
                  ->install(machine, tid.value(),
                            std::make_shared<interpose::DummyHandler>())
                  .is_ok());
  const auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  const kern::Task* task = machine.find_task(tid.value());
  out.exit_code = task->exit_code;
  out.interposed = runtime->stats().entry_invocations;
  out.slow = runtime->stats().slow_path_hits;
  out.dispatched = task->syscalls_dispatched;
  out.eager_rewritten = runtime->stats().eager_sites_rewritten;
  out.safe_disagreements = checker->safe_disagreements();
  return out;
}

TEST(VerifiedEagerTest, InterposesExactlyWhatLazyModeDoes) {
  Xoshiro256 seeder(0xE5E5);
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t seed = seeder.next();
    const isa::Program program = analysis::make_adversarial_program(seed);
    const LazyRun lazy = run_lazypoline(program, /*eager=*/false);
    const LazyRun eager = run_lazypoline(program, /*eager=*/true);
    ASSERT_EQ(lazy.exit_code, eager.exit_code) << "seed " << seed;
    ASSERT_EQ(lazy.interposed, eager.interposed) << "seed " << seed;
    // Each lazy discovery costs one extra kernel entry (the SUD-blocked
    // attempt); eager mode dispatches only the interposer-performed syscalls.
    ASSERT_EQ(lazy.dispatched, eager.dispatched + lazy.slow) << "seed " << seed;
    // Every *executed* site in these programs is provably SAFE, so eager
    // mode removes the slow path entirely.
    ASSERT_EQ(eager.slow, 0u) << "seed " << seed;
    ASSERT_EQ(eager.safe_disagreements, 0u) << "seed " << seed;
    ASSERT_EQ(lazy.safe_disagreements, 0u) << "seed " << seed;
    if (lazy.interposed > 0) {
      ASSERT_GT(eager.eager_rewritten, 0u) << "seed " << seed;
    }
  }
}

TEST(VerifiedEagerTest, SyscallLoopSavesAllDiscoveries) {
  const auto program = testutil::make_syscall_loop(kern::kSysGetpid, 100);
  const LazyRun lazy = run_lazypoline(program, /*eager=*/false);
  const LazyRun eager = run_lazypoline(program, /*eager=*/true);
  EXPECT_EQ(lazy.interposed, eager.interposed);
  EXPECT_GT(lazy.slow, 0u);
  EXPECT_EQ(eager.slow, 0u);
  EXPECT_EQ(eager.eager_rewritten, 2u);  // loop syscall + exit syscall
}

// --- verified-only zpoline ---------------------------------------------------

TEST(VerifiedZpolineTest, PatchesOnlySafeSitesAndStillRuns) {
  const auto four = make_four_verdicts();
  const auto result = analyze(four.program);
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(four.program);
  auto tid = machine.load(four.program);
  ASSERT_TRUE(tid.is_ok());
  zpoline::ZpolineOptions options;
  options.verified_only = true;
  zpoline::ZpolineMechanism mechanism(options);
  ASSERT_TRUE(mechanism
                  .install(machine, tid.value(),
                           std::make_shared<interpose::DummyHandler>())
                  .is_ok());
  EXPECT_EQ(mechanism.stats().sites_rewritten,
            result.count(analysis::Verdict::kSafe));
  EXPECT_EQ(mechanism.stats().sites_skipped_unknown,
            result.count(analysis::Verdict::kUnknown));
  EXPECT_EQ(mechanism.stats().sites_skipped_unsafe,
            result.count(analysis::Verdict::kUnsafeOverlap) +
                result.count(analysis::Verdict::kUnsafeJumpIntoWindow));
  const auto stats = machine.run();
  ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_EQ(machine.find_task(tid.value())->exit_code, 0);
}

// --- runtime cross-checker ---------------------------------------------------

class CrossCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    four_ = make_four_verdicts();
    machine_.mmap_min_addr = 0;
    machine_.register_program(four_.program);
    auto tid = machine_.load(four_.program);
    ASSERT_TRUE(tid.is_ok());
    task_ = machine_.find_task(tid.value());
    ASSERT_NE(task_, nullptr);
    checker_.add_region(analyze(four_.program));
  }

  FourVerdicts four_;
  kern::Machine machine_;
  kern::Task* task_ = nullptr;
  analysis::CrossChecker checker_;
};

TEST_F(CrossCheckerTest, ClassifiesKernelVerifiedSitesByVerdict) {
  using analysis::CrosscheckOutcome;
  checker_.observe_kernel_verified(machine_, *task_, four_.safe_site);
  checker_.observe_kernel_verified(machine_, *task_, four_.island_site);
  checker_.observe_kernel_verified(machine_, *task_, four_.overlap_site);
  checker_.observe_kernel_verified(machine_, *task_, four_.gadget_site);
  checker_.observe_kernel_verified(machine_, *task_, 0xDEAD'0000ULL);
  EXPECT_EQ(checker_.outcome_count(CrosscheckOutcome::kAgreeSafe), 1u);
  EXPECT_EQ(checker_.outcome_count(CrosscheckOutcome::kConfirmedUnknown), 1u);
  EXPECT_EQ(checker_.outcome_count(CrosscheckOutcome::kOverlapExecuted), 1u);
  EXPECT_EQ(checker_.outcome_count(CrosscheckOutcome::kJumpWindowExecuted), 1u);
  EXPECT_EQ(checker_.outcome_count(CrosscheckOutcome::kUnanalyzedRegion), 1u);
  EXPECT_EQ(checker_.kernel_verified_total(), 5u);
  EXPECT_EQ(checker_.safe_disagreements(), 0u);
}

TEST_F(CrossCheckerTest, FlagsSoundnessViolations) {
  using analysis::CrosscheckOutcome;
  // Kernel-verified execution strictly inside a SAFE window.
  checker_.observe_kernel_verified(machine_, *task_, four_.safe_site + 1);
  EXPECT_EQ(checker_.outcome_count(CrosscheckOutcome::kSafeWindowViolation),
            1u);
  // Fast-path entry from a site that was never verified and is not SAFE.
  checker_.observe_fast_entry(machine_, *task_, four_.island_site);
  EXPECT_EQ(checker_.outcome_count(CrosscheckOutcome::kEagerUnsafeFast), 1u);
  EXPECT_EQ(checker_.safe_disagreements(), 2u);
  EXPECT_NE(checker_.json().find("safe_disagreements"), std::string::npos);
  EXPECT_FALSE(checker_.summary().empty());
}

TEST_F(CrossCheckerTest, SafeFastEntriesAreNotViolations) {
  using analysis::CrosscheckOutcome;
  checker_.observe_fast_entry(machine_, *task_, four_.safe_site);
  EXPECT_EQ(checker_.outcome_count(CrosscheckOutcome::kEagerUnsafeFast), 0u);
  // A lazily-rewritten non-SAFE site (kernel verified first) is fine too.
  checker_.observe_kernel_verified(machine_, *task_, four_.island_site);
  checker_.observe_fast_entry(machine_, *task_, four_.island_site);
  EXPECT_EQ(checker_.outcome_count(CrosscheckOutcome::kEagerUnsafeFast), 0u);
  EXPECT_EQ(checker_.safe_disagreements(), 0u);
}

}  // namespace
}  // namespace lzp
