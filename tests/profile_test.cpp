// Tests for src/profile: cycle-exact attribution, non-perturbation,
// determinism, frame-pointer folding — plus the latency-quantile and
// SMP-telemetry helpers that ride on the same observability surface.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/minilibc.hpp"
#include "core/lazypoline.hpp"
#include "interpose/handler.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/smp.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "profile/profiler.hpp"
#include "trace/metrics_registry.hpp"
#include "zpoline/zpoline.hpp"

namespace lzp {
namespace {

constexpr std::uint64_t kSeed = 0xC0FFEEULL;

enum class Mech { kPtrace, kSud, kZpoline, kLazypoline };
constexpr Mech kAllMechs[] = {Mech::kPtrace, Mech::kSud, Mech::kZpoline,
                              Mech::kLazypoline};

const char* mech_name(Mech mech) {
  switch (mech) {
    case Mech::kPtrace: return "ptrace";
    case Mech::kSud: return "sud";
    case Mech::kZpoline: return "zpoline";
    case Mech::kLazypoline: return "lazypoline";
  }
  return "?";
}

void install(kern::Machine& machine, kern::Tid tid, Mech mech) {
  auto handler = std::make_shared<interpose::DummyHandler>();
  Status status;
  switch (mech) {
    case Mech::kPtrace:
      status = mechanisms::PtraceMechanism().install(machine, tid, handler);
      break;
    case Mech::kSud:
      status = mechanisms::SudMechanism().install(machine, tid, handler);
      break;
    case Mech::kZpoline:
      status = zpoline::ZpolineMechanism().install(machine, tid, handler);
      break;
    case Mech::kLazypoline:
      status = core::Lazypoline::create(machine, {})
                   ->install(machine, tid, handler);
      break;
  }
  ASSERT_TRUE(status.is_ok()) << status.to_string();
}

isa::Program make_getpid_loop(std::uint64_t iterations) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, iterations);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  return std::move(isa::make_program("getpid-loop", a, entry)).value();
}

struct RunOutcome {
  std::uint64_t machine_cycles = 0;
  std::uint64_t machine_insns = 0;
  std::uint64_t profiler_cycles = 0;  // 0 when no profiler attached
  std::string folded;
  std::string hot_sites;
};

// One serial run of the getpid loop under `mech`, optionally profiled.
RunOutcome run_serial(Mech mech, bool profiled, bool block_engine,
                      bool trace_engine = false) {
  profile::Profiler profiler;
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.block_exec_enabled = block_engine;
  machine.trace_exec_enabled = trace_engine;
  machine.reseed_rng(kSeed);
  if (profiled) profiler.attach(machine);

  const isa::Program program = make_getpid_loop(25);
  machine.register_program(program);
  auto tid = machine.load(program);
  EXPECT_TRUE(tid.is_ok());
  install(machine, tid.value(), mech);
  const auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();

  RunOutcome out;
  out.machine_cycles = machine.total_cycles();
  out.machine_insns = machine.total_insns();
  if (profiled) {
    out.profiler_cycles = profiler.total_cycles();
    out.folded = profiler.folded_stacks();
    out.hot_sites = profiler.render_hot_sites(10);
  }
  return out;
}

// One run_smp of several getpid-loop processes, optionally profiled.
RunOutcome run_smp(bool profiled) {
  profile::Profiler profiler;
  profiler.set_concurrent(true);
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.reseed_rng(kSeed);
  if (profiled) profiler.attach(machine);

  const isa::Program program = make_getpid_loop(25);
  machine.register_program(program);
  std::vector<kern::Tid> tids;
  for (int i = 0; i < 6; ++i) {
    auto tid = machine.load(program);
    EXPECT_TRUE(tid.is_ok());
    tids.push_back(tid.value());
  }
  install(machine, tids[0], Mech::kLazypoline);

  kern::SmpConfig config;
  config.cpus = 4;
  config.seed = 7;
  const kern::SmpStats stats = machine.run_smp(config);
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();

  RunOutcome out;
  out.machine_cycles = machine.total_cycles();
  out.machine_insns = machine.total_insns();
  if (profiled) {
    out.profiler_cycles = profiler.total_cycles();
    out.folded = profiler.folded_stacks();
    out.hot_sites = profiler.render_hot_sites(10);
  }
  return out;
}

// The per-class sums equal the machine's retired-cycle counter exactly, for
// every mechanism, under both execution engines.
TEST(ProfilerTest, ClassSumsMatchMachineCyclesExactly) {
  struct Engine {
    bool block;
    bool trace;
    const char* name;
  };
  constexpr Engine kEngines[] = {
      {false, false, " step"}, {true, false, " block"}, {true, true, " trace"}};
  for (const Mech mech : kAllMechs) {
    for (const Engine& engine : kEngines) {
      const RunOutcome run =
          run_serial(mech, /*profiled=*/true, engine.block, engine.trace);
      EXPECT_EQ(run.profiler_cycles, run.machine_cycles)
          << mech_name(mech) << engine.name;
      EXPECT_GT(run.profiler_cycles, 0u);
    }
  }
}

// Attaching a profiler changes nothing the simulation can observe: cycles
// and instructions are bit-identical with profiling on and off.
TEST(ProfilerTest, ProfilingIsCycleInvisible) {
  for (const Mech mech : kAllMechs) {
    for (const bool block_engine : {true, false}) {
      const RunOutcome off = run_serial(mech, /*profiled=*/false, block_engine);
      const RunOutcome on = run_serial(mech, /*profiled=*/true, block_engine);
      EXPECT_EQ(off.machine_cycles, on.machine_cycles) << mech_name(mech);
      EXPECT_EQ(off.machine_insns, on.machine_insns) << mech_name(mech);
    }
  }
}

// Same seed, same everything: folded stacks and the rendered hot-site table
// are byte-identical across runs.
TEST(ProfilerTest, SameSeedProducesIdenticalProfiles) {
  const RunOutcome a = run_serial(Mech::kLazypoline, /*profiled=*/true, true);
  const RunOutcome b = run_serial(Mech::kLazypoline, /*profiled=*/true, true);
  EXPECT_FALSE(a.folded.empty());
  EXPECT_EQ(a.folded, b.folded);
  EXPECT_EQ(a.hot_sites, b.hot_sites);
}

// Under run_smp with 4 CPUs (gang placement, deterministic): profiling stays
// invisible, attribution stays exact, and same-seed profiles are identical.
TEST(ProfilerTest, SmpProfilingInvisibleExactAndDeterministic) {
  const RunOutcome off = run_smp(/*profiled=*/false);
  const RunOutcome on = run_smp(/*profiled=*/true);
  EXPECT_EQ(off.machine_cycles, on.machine_cycles);
  EXPECT_EQ(off.machine_insns, on.machine_insns);
  EXPECT_EQ(on.profiler_cycles, on.machine_cycles);

  const RunOutcome again = run_smp(/*profiled=*/true);
  EXPECT_EQ(on.folded, again.folded);
  EXPECT_EQ(on.hot_sites, again.hot_sites);
}

// Frame-pointer folding: a callee built with the push rbp / mov rbp,rsp
// prologue folds under its caller, and registered symbols name both frames.
TEST(ProfilerTest, FoldsRbpFramedCallUnderCaller) {
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto func = a.new_label();
  a.bind(entry);
  a.push(isa::Gpr::rbp);
  a.mov(isa::Gpr::rbp, isa::Gpr::rsp);
  a.call(func);
  a.pop(isa::Gpr::rbp);
  apps::emit_exit(a, 0);
  a.bind(func);
  a.push(isa::Gpr::rbp);
  a.mov(isa::Gpr::rbp, isa::Gpr::rsp);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.pop(isa::Gpr::rbp);
  a.ret();
  const std::uint64_t func_off = a.label_offset(func).value();
  isa::Program program =
      std::move(isa::make_program("framed", a, entry)).value();

  profile::Profiler profiler;
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  profiler.attach(machine);
  profiler.register_symbol(program.base, func_off, "main");
  profiler.register_symbol(program.base + func_off,
                           program.image.size() - func_off, "func");
  machine.register_program(program);
  auto tid = machine.load(program);
  ASSERT_TRUE(tid.is_ok());
  EXPECT_TRUE(machine.run().all_exited) << machine.last_fatal();

  // Guest cycles spent inside func fold as framed;main;func, and the getpid
  // kernel cost hangs off the same stack with a synthetic kernel leaf.
  const std::string folded = profiler.folded_stacks();
  EXPECT_NE(folded.find("framed;main;func "), std::string::npos) << folded;
  EXPECT_NE(folded.find("framed;main;kernel:getpid "), std::string::npos)
      << folded;
  EXPECT_EQ(profiler.total_cycles(), machine.total_cycles());
}

// Non-guest classes show up split out: kernel syscall cost is attributed to
// CycleClass::kKernel, and the guest class dominates a compute loop.
TEST(ProfilerTest, ClassSplitSeparatesKernelFromGuest) {
  const RunOutcome run = run_serial(Mech::kSud, /*profiled=*/true, true);
  profile::Profiler probe;  // only for the class-name rendering path
  (void)probe;
  EXPECT_NE(run.hot_sites.find("kernel:getpid"), std::string::npos)
      << run.hot_sites;
}

TEST(QuantileTest, InterpolatesWithinLog2Buckets) {
  trace::LatencyHistogram hist;
  EXPECT_EQ(hist.quantile(0.5), 0.0);  // empty

  for (int i = 0; i < 100; ++i) hist.add(10);  // all in bucket [8, 16)
  EXPECT_GE(hist.quantile(0.50), 8.0);
  EXPECT_LE(hist.quantile(0.50), 16.0);
  EXPECT_LE(hist.quantile(0.50), hist.quantile(0.95));
  EXPECT_LE(hist.quantile(0.95), hist.quantile(0.99));

  // A heavy tail pulls p99 into the tail bucket but leaves p50 put.
  for (int i = 0; i < 2; ++i) hist.add(5000);  // bucket [4096, 8192)
  EXPECT_LE(hist.quantile(0.50), 16.0);
  EXPECT_GE(hist.quantile(0.99), 4096.0);

  trace::LatencyHistogram zeros;
  zeros.add(0);
  zeros.add(1);
  EXPECT_GE(zeros.quantile(0.5), 0.0);
  EXPECT_LE(zeros.quantile(0.5), 2.0);
}

TEST(SmpTelemetryTest, RecordSmpStatsExposesCounters) {
  kern::SmpStats stats;
  stats.barriers = 12;
  stats.steals = 3;
  stats.shootdowns = 5;
  stats.mailbox_signals = 7;
  stats.placement = {{1, 0}, {2, 1}};
  stats.cpus.resize(2);
  stats.cpus[0].steps = 100;
  stats.cpus[1].slices = 9;

  trace::MetricsRegistry metrics;
  trace::record_smp_stats(metrics, stats);
  EXPECT_EQ(metrics.counter("smp.barriers"), 12u);
  EXPECT_EQ(metrics.counter("smp.steals"), 3u);
  EXPECT_EQ(metrics.counter("smp.shootdowns"), 5u);
  EXPECT_EQ(metrics.counter("smp.mailbox_signals"), 7u);
  EXPECT_EQ(metrics.counter("smp.placements"), 2u);
  EXPECT_EQ(metrics.counter("smp.cpu0.steps"), 100u);
  EXPECT_EQ(metrics.counter("smp.cpu1.slices"), 9u);
}

// run_smp records a per-barrier-round timeline with cumulative counters that
// never decrease and per-CPU vectors sized to the CPU count.
TEST(SmpTelemetryTest, BarrierTimelineIsMonotonicAndSized) {
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.reseed_rng(kSeed);
  const isa::Program program = make_getpid_loop(25);
  machine.register_program(program);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(machine.load(program).is_ok());
  }
  kern::SmpConfig config;
  config.cpus = 4;
  config.seed = 11;
  const kern::SmpStats stats = machine.run_smp(config);
  ASSERT_TRUE(stats.all_exited);

  ASSERT_FALSE(stats.timeline.empty());
  EXPECT_FALSE(stats.timeline_truncated);
  std::uint64_t prev_cycles = 0;
  std::uint64_t prev_round = 0;
  for (const kern::SmpBarrierSample& sample : stats.timeline) {
    EXPECT_EQ(sample.cpu_steps.size(), 4u);
    EXPECT_EQ(sample.cpu_slices.size(), 4u);
    EXPECT_EQ(sample.run_queue.size(), 4u);
    EXPECT_GE(sample.total_cycles, prev_cycles);
    if (&sample != &stats.timeline.front()) {
      EXPECT_GT(sample.round, prev_round);
    }
    prev_cycles = sample.total_cycles;
    prev_round = sample.round;
  }
  const kern::SmpBarrierSample& last = stats.timeline.back();
  EXPECT_EQ(last.steals, stats.steals);
  EXPECT_EQ(last.shootdowns, stats.shootdowns);
  EXPECT_EQ(last.mailbox_signals, stats.mailbox_signals);
}

}  // namespace
}  // namespace lzp
