#include <gtest/gtest.h>

#include "apps/minilibc.hpp"
#include <algorithm>

#include "disasm/scanner.hpp"
#include "isa/assemble.hpp"

namespace lzp::disasm {
namespace {

using isa::Assembler;
using isa::Gpr;

isa::Program clean_program() {
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, 39);
  a.syscall_();
  a.mov(Gpr::rax, 60);
  a.syscall_();
  a.sysenter_();
  a.hlt();
  return isa::make_program("clean", a, entry).value();
}

TEST(ScannerTest, LinearSweepFindsAllSitesInCleanCode) {
  const isa::Program program = clean_program();
  const ScanResult result = scan(program.image, program.base,
                                 Strategy::kLinearSweep);
  const ScanAccuracy accuracy = evaluate(result, program);
  EXPECT_EQ(accuracy.true_positives.size(), 3u);
  EXPECT_TRUE(accuracy.false_positives.empty());
  EXPECT_TRUE(accuracy.missed.empty());
  EXPECT_EQ(result.decode_errors, 0u);
}

TEST(ScannerTest, RawScanFindsAllSitesInCleanCode) {
  const isa::Program program = clean_program();
  const ScanResult result = scan(program.image, program.base, Strategy::kRawBytes);
  const ScanAccuracy accuracy = evaluate(result, program);
  EXPECT_EQ(accuracy.true_positives.size(), 3u);
  EXPECT_TRUE(accuracy.missed.empty());
}

TEST(ScannerTest, RawScanReportsFalsePositiveInsideImmediate) {
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  // 0F 05 inside the mov immediate — not a real site. Rewriting it would
  // corrupt the constant.
  a.mov(Gpr::rbx, 0x0000'1111'0000'050FULL);
  a.syscall_();
  a.hlt();
  auto program = isa::make_program("fp", a, entry).value();

  const ScanResult raw = scan(program.image, program.base, Strategy::kRawBytes);
  const ScanAccuracy raw_accuracy = evaluate(raw, program);
  EXPECT_EQ(raw_accuracy.false_positives.size(), 1u);
  EXPECT_EQ(raw_accuracy.true_positives.size(), 1u);

  // Linear sweep decodes through the immediate correctly.
  const ScanResult sweep = scan(program.image, program.base,
                                Strategy::kLinearSweep);
  const ScanAccuracy sweep_accuracy = evaluate(sweep, program);
  EXPECT_TRUE(sweep_accuracy.false_positives.empty());
  EXPECT_TRUE(sweep_accuracy.missed.empty());
}

TEST(ScannerTest, LinearSweepDesyncsOnDataInCode) {
  // Two data bytes that decode as the start of a MOV_RI: the phantom MOV
  // swallows the next 8 bytes as its "immediate" — including a real syscall
  // instruction, which the desynced sweep never sees.
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.db({0xB8, 0x00});      // phantom "mov rax, imm64" header
  a.syscall_();            // real site at offset 2, inside the phantom imm
  a.nops(6);
  a.hlt();
  auto program = isa::make_program("desync", a, entry).value();
  ASSERT_EQ(program.true_syscall_addresses().size(), 1u);

  const ScanResult sweep = scan(program.image, program.base,
                                Strategy::kLinearSweep);
  const ScanAccuracy accuracy = evaluate(sweep, program);
  EXPECT_EQ(accuracy.missed.size(), 1u)
      << "the desynced sweep must miss the hidden syscall";

  // The raw byte scan still sees it (no decoding to desync).
  const ScanResult raw = scan(program.image, program.base, Strategy::kRawBytes);
  const ScanAccuracy raw_acc = evaluate(raw, program);
  EXPECT_TRUE(raw_acc.missed.empty());
}

TEST(ScannerTest, EmbeddedStringDataIsHandled) {
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  apps::emit_print(a, "some text with \x0F\x05 bytes inside");
  a.syscall_();
  a.hlt();
  auto program = isa::make_program("strdata", a, entry).value();

  // The raw scan trips over the string contents.
  const ScanResult raw = scan(program.image, program.base, Strategy::kRawBytes);
  const ScanAccuracy raw_acc = evaluate(raw, program);
  EXPECT_FALSE(raw_acc.false_positives.empty());
}

TEST(ScannerTest, EmptyAndTinyInputs) {
  EXPECT_TRUE(scan({}, 0, Strategy::kRawBytes).syscall_sites.empty());
  EXPECT_TRUE(scan({}, 0, Strategy::kLinearSweep).syscall_sites.empty());
  const std::uint8_t one_byte[] = {0x0F};
  EXPECT_TRUE(scan(one_byte, 0, Strategy::kRawBytes).syscall_sites.empty());
}

TEST(ScannerTest, EvaluateClassifiesAgainstGroundTruth) {
  const isa::Program program = clean_program();
  ScanResult fake;
  fake.syscall_sites = {program.base + 10,        // the first real site
                        program.base + 1};        // bogus
  const ScanAccuracy accuracy = evaluate(fake, program);
  EXPECT_EQ(accuracy.true_positives.size(), 1u);
  EXPECT_EQ(accuracy.false_positives.size(), 1u);
  EXPECT_EQ(accuracy.missed.size(), 2u);
}


TEST(ScannerTest, ListingRendersInstructionsAndData) {
  Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, 39);
  a.syscall_();
  a.db({0xEE});  // undecodable
  a.hlt();
  auto program = isa::make_program("listing", a, entry).value();
  const std::string text = listing(program.image, program.base);
  EXPECT_NE(text.find("mov ri rax"), std::string::npos);
  EXPECT_NE(text.find("syscall"), std::string::npos);
  EXPECT_NE(text.find(".byte ee"), std::string::npos);
  EXPECT_NE(text.find("hlt"), std::string::npos);
  EXPECT_NE(text.find("0x400000:"), std::string::npos);
  // One line per decoded item.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

// A program whose raw scan and linear sweep report different (overlapping)
// site sets: a mov immediate containing 0F 05 plus data islands the sweep
// resynchronizes through.
isa::Program disagreeing_program() {
  Assembler a;
  auto entry = a.new_label();
  auto over = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, 39);
  a.syscall_();
  a.mov(Gpr::rcx, 0x050FULL);  // raw-scan-only candidate in the immediate
  a.jmp(over);
  a.db({0xEE, 0x0F, 0x05, 0xEE});  // island candidate, found by both
  a.bind(over);
  a.syscall_();
  a.hlt();
  return isa::make_program("disagreeing", a, entry).value();
}

TEST(ScannerTest, SitesAreSortedAndUniqueForEveryStrategy) {
  const isa::Program program = disagreeing_program();
  for (Strategy strategy :
       {Strategy::kRawBytes, Strategy::kLinearSweep, Strategy::kUnion}) {
    const ScanResult result = scan(program.image, program.base, strategy);
    EXPECT_TRUE(std::is_sorted(result.syscall_sites.begin(),
                               result.syscall_sites.end()))
        << "strategy " << static_cast<int>(strategy);
    EXPECT_EQ(std::adjacent_find(result.syscall_sites.begin(),
                                 result.syscall_sites.end()),
              result.syscall_sites.end())
        << "strategy " << static_cast<int>(strategy);
  }
}

TEST(ScannerTest, UnionIsExactlyTheMergeOfBothStrategies) {
  const isa::Program program = disagreeing_program();
  const ScanResult raw = scan(program.image, program.base, Strategy::kRawBytes);
  const ScanResult sweep =
      scan(program.image, program.base, Strategy::kLinearSweep);
  const ScanResult both = scan(program.image, program.base, Strategy::kUnion);

  std::vector<std::uint64_t> merged = raw.syscall_sites;
  merged.insert(merged.end(), sweep.syscall_sites.begin(),
                sweep.syscall_sites.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  EXPECT_EQ(both.syscall_sites, merged);
  // The two strategies genuinely disagree on this program, so the union is
  // strictly larger than at least one of them.
  EXPECT_GT(both.syscall_sites.size(), sweep.syscall_sites.size());
  // Decode statistics come from the sweep half.
  EXPECT_EQ(both.decode_errors, sweep.decode_errors);
  EXPECT_EQ(both.insns_decoded, sweep.insns_decoded);
}

}  // namespace
}  // namespace lzp::disasm
