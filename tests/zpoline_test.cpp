#include <gtest/gtest.h>

#include "apps/jitcc.hpp"
#include "isa/objfile.hpp"
#include "sim_test_util.hpp"
#include "zpoline/zpoline.hpp"

namespace lzp::zpoline {
namespace {

using interpose::TracingHandler;
using kern::Machine;
using kern::Tid;

TEST(ZpolineTest, RequiresMmapMinAddrZero) {
  Machine machine;  // default min addr is 0x10000
  auto program = testutil::make_getpid_once();
  machine.register_program(program);
  auto tid = machine.load(program).value();
  ZpolineMechanism mechanism;
  auto status = mechanism.install(machine, tid,
                                  std::make_shared<TracingHandler>());
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
}

TEST(ZpolineTest, RequiresRegisteredProgramImage) {
  Machine machine;
  machine.mmap_min_addr = 0;
  auto program = testutil::make_getpid_once();
  auto tid = machine.load(program).value();  // not registered
  ZpolineMechanism mechanism;
  EXPECT_FALSE(
      mechanism.install(machine, tid, std::make_shared<TracingHandler>())
          .is_ok());
}

struct ZpolineFixture {
  Machine machine;
  Tid tid = 0;
  std::shared_ptr<TracingHandler> handler = std::make_shared<TracingHandler>();
  ZpolineMechanism mechanism;

  explicit ZpolineFixture(const isa::Program& program) {
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    tid = machine.load(program).value();
    auto status = mechanism.install(machine, tid, handler);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  }
};

TEST(ZpolineTest, RewritesAllStaticSitesAndInterposesThem) {
  auto program = testutil::make_getpid_once();
  ZpolineFixture f(program);
  EXPECT_EQ(f.mechanism.stats().sites_rewritten, 2u);

  // The rewritten bytes are CALL RAX now.
  kern::Task* task = f.machine.find_task(f.tid);
  for (std::uint64_t site : program.true_syscall_addresses()) {
    std::uint8_t bytes[2];
    ASSERT_TRUE(task->mem->read_force(site, bytes).is_ok());
    EXPECT_EQ(bytes[0], isa::kByteFF);
    EXPECT_EQ(bytes[1], isa::kByteCallRax2);
  }

  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.handler->traced_numbers(),
            (std::vector<std::uint64_t>{kern::kSysGetpid, kern::kSysExitGroup}));
  EXPECT_EQ(f.handler->trace()[0].result, task->process->pid);
  EXPECT_EQ(task->exit_code, static_cast<int>(task->process->pid));
  // Nothing ever entered the kernel from the original syscall sites: the
  // kernel saw only the interposer's pass-through syscalls.
  EXPECT_EQ(task->sud_sigsys_count, 0u);
}

TEST(ZpolineTest, TrampolinePageIsNopSledIntoHostCall) {
  auto program = testutil::make_getpid_once();
  ZpolineFixture f(program);
  kern::Task* task = f.machine.find_task(f.tid);
  ASSERT_TRUE(task->mem->is_mapped(0));
  // Every byte of the sled is the 1-byte NOP.
  for (std::uint64_t addr = 0; addr < ZpolineMechanism::kSledSize; ++addr) {
    EXPECT_EQ(task->mem->read_u8(addr).value(), isa::kByteNop);
  }
  EXPECT_EQ(task->mem->read_u8(ZpolineMechanism::kSledSize).value(),
            isa::kByteHostCall);
  // W^X: the sled is not writable after setup.
  EXPECT_EQ(task->mem->prot_at(0).value(), mem::kProtRead | mem::kProtExec);
}

TEST(ZpolineTest, LoopInterposedEveryIteration) {
  const std::uint64_t iterations = 50;
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);
  ZpolineFixture f(program);
  f.machine.run();
  EXPECT_EQ(f.handler->trace().size(), iterations + 1);
}

TEST(ZpolineTest, OverheadIsLow) {
  const std::uint64_t iterations = 200;
  auto program = testutil::make_syscall_loop(kern::kSysNonexistent, iterations);
  const std::uint64_t baseline = testutil::measure_cycles(program);
  const std::uint64_t interposed = testutil::measure_cycles(
      program, [&program](Machine& machine, Tid tid) {
        machine.register_program(program);
        // The mechanism object may go out of scope after install: the bound
        // entry point owns (shares) the handler, not the mechanism.
        ZpolineMechanism mechanism;
        ASSERT_TRUE(mechanism
                        .install(machine, tid,
                                 std::make_shared<interpose::DummyHandler>())
                        .is_ok());
      });
  const double ratio =
      static_cast<double>(interposed) / static_cast<double>(baseline);
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.6);  // "High" efficiency
}

TEST(ZpolineTest, MissesJitGeneratedSyscalls) {
  Machine machine;
  machine.mmap_min_addr = 0;
  (void)machine.vfs().put_file(
      "prog.c", [] {
        const std::string src = apps::exhaustiveness_test_source();
        return std::vector<std::uint8_t>(src.begin(), src.end());
      }());
  auto runner = apps::make_jit_runner(machine, "prog.c").value();
  machine.register_program(runner.program);
  auto tid = machine.load(runner.program).value();

  auto handler = std::make_shared<TracingHandler>();
  ZpolineMechanism mechanism;
  ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();

  // The statically present syscalls were traced...
  const auto numbers = handler->traced_numbers();
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysMmap}) != numbers.end());
  // ...but the JIT-ed getpid escaped interposition entirely (§V-A).
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGetpid}) == numbers.end());
  // It still executed: the program's exit code embeds pid > 0 evidence
  // (main returns acc+1 only when getpid returned > 0).
  EXPECT_EQ(machine.find_task(tid)->exit_code, 21);  // 0+2+4+6+8 = 20, +1
}

TEST(ZpolineTest, RawScanStrategyCorruptsImmediateFalsePositive) {
  // A program whose mov immediate contains the syscall byte pattern. With
  // the raw-bytes strategy, zpoline rewrites it and corrupts the constant.
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 0x0000'0000'0000'050FULL);
  // Build the expected value without re-embedding the 0F 05 pattern (the
  // raw scanner would find it in the cmp immediate too and "fix" both).
  a.mov(isa::Gpr::rcx, 0x050E);
  a.add(isa::Gpr::rcx, 1);
  a.cmp(isa::Gpr::rbx, isa::Gpr::rcx);
  auto ok = a.new_label();
  a.jz(ok);
  apps::emit_exit(a, 1);  // constant was corrupted
  a.bind(ok);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("fragile", a, entry).value();

  // Linear sweep: correct (no false positives), program exits 0.
  {
    Machine machine;
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    auto tid = machine.load(program).value();
    ZpolineMechanism mechanism({disasm::Strategy::kLinearSweep});
    ASSERT_TRUE(mechanism
                    .install(machine, tid,
                             std::make_shared<interpose::DummyHandler>())
                    .is_ok());
    machine.run();
    EXPECT_EQ(machine.find_task(tid)->exit_code, 0);
  }
  // Raw bytes: rewrites inside the immediate; the constant comparison fails.
  {
    Machine machine;
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    auto tid = machine.load(program).value();
    ZpolineMechanism mechanism({disasm::Strategy::kRawBytes});
    ASSERT_TRUE(mechanism
                    .install(machine, tid,
                             std::make_shared<interpose::DummyHandler>())
                    .is_ok());
    machine.run();
    EXPECT_EQ(machine.find_task(tid)->exit_code, 1);
  }
}

TEST(ZpolineTest, DoesNotPreserveXstate) {
  // An application with a Listing-1-style cross-syscall xmm dependency breaks
  // under zpoline when the interposer clobbers extended state.
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::r12, 0x1234);
  a.xmov_from_gpr(0, isa::Gpr::r12);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.xmov_to_gpr(isa::Gpr::rbx, 0);
  a.cmp(isa::Gpr::rbx, 0x1234);
  auto ok = a.new_label();
  a.jz(ok);
  apps::emit_exit(a, 1);  // xmm0 corrupted across the "syscall"
  a.bind(ok);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("xstate-dep", a, entry).value();

  Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  ZpolineMechanism mechanism;
  auto clobbering = std::make_shared<interpose::XstateClobberingHandler>(
      std::make_shared<interpose::DummyHandler>());
  ASSERT_TRUE(mechanism.install(machine, tid, clobbering).is_ok());
  machine.run();
  EXPECT_EQ(machine.find_task(tid)->exit_code, 1)
      << "zpoline does not preserve xstate; the clobber must leak through";
}


TEST(ZpolineTest, ScansOnDiskImageWhenNotRegistered) {
  // The program is installed only as an LZPF image in the VFS — the registry
  // fallback parses it from "disk", exactly how a real static rewriter reads
  // the binary it is about to patch.
  Machine machine;
  machine.mmap_min_addr = 0;
  auto program = testutil::make_getpid_once();
  ASSERT_TRUE(machine.vfs()
                  .put_file(isa::program_path(program.name),
                            isa::serialize_program(program))
                  .is_ok());
  auto tid = machine.load(program).value();
  auto handler = std::make_shared<TracingHandler>();
  ZpolineMechanism mechanism;
  ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
  machine.run();
  EXPECT_EQ(handler->traced_numbers(),
            (std::vector<std::uint64_t>{kern::kSysGetpid, kern::kSysExitGroup}));
}

}  // namespace
}  // namespace lzp::zpoline
