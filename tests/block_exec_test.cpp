// Superblock execution engine (cpu/block_cache + Machine batch dispatch):
//   * block construction, budget clamping, and SMC invalidation at the cpu
//     layer,
//   * the retired-only total_insns() contract (signal kills and host-fn
//     dispatch advance total_steps() but never total_insns()),
//   * differential properties: engine on vs off must agree bit-for-bit on
//     final architectural state, cycles, retired counts, and step counts —
//     for random programs, interposed loops, and the multi-task webserver,
//   * record/replay neutrality: traces recorded with the engine on and off
//     are identical, and replay round trips survive an external kill.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "base/rng.hpp"
#include "core/lazypoline.hpp"
#include "cpu/block_cache.hpp"
#include "isa/assemble.hpp"
#include "isa/decode.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/sud_tool.hpp"
#include "replay/recorder.hpp"
#include "replay/replayer.hpp"
#include "sim_test_util.hpp"
#ifndef LZP_TRACE_DISABLED
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#endif

namespace lzp {
namespace {

using isa::Assembler;
using isa::Gpr;

// --- cpu-layer unit tests ----------------------------------------------------

constexpr std::uint64_t kCodeBase = 0x40'0000;

struct BlockFixture {
  mem::AddressSpace as;
  cpu::CpuContext ctx;
  cpu::BlockCache cache;

  explicit BlockFixture(Assembler& assembler) {
    auto code = assembler.finish().value();
    EXPECT_TRUE(as.map(kCodeBase, mem::page_ceil(code.size()),
                       mem::kProtRead | mem::kProtExec, true)
                    .is_ok());
    EXPECT_TRUE(as.write_force(kCodeBase, code).is_ok());
    ctx.rip = kCodeBase;
  }
};

TEST(BlockCacheTest, BuildsThroughTerminatorAndHitsOnReuse) {
  Assembler a;
  a.mov(Gpr::rax, 1);
  a.add(Gpr::rax, 2);
  a.nop();
  a.syscall_();
  a.mov(Gpr::rbx, 3);  // next block; must not be included
  BlockFixture f(a);

  const cpu::DecodedBlock* block = f.cache.lookup_or_build(f.as, kCodeBase);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->insns.size(), 4u);  // terminator (SYSCALL) included
  EXPECT_EQ(block->nops, 1u);
  EXPECT_EQ(block->insns.back().op, isa::Op::kSyscall);
  EXPECT_EQ(f.cache.stats().misses, 1u);

  EXPECT_EQ(f.cache.lookup_or_build(f.as, kCodeBase), block);
  EXPECT_EQ(f.cache.stats().hits, 1u);
  EXPECT_EQ(f.cache.stats().blocks_built, 1u);
}

TEST(BlockCacheTest, RunBlockBudgetBoundsExecutedInstructions) {
  Assembler a;
  for (int i = 0; i < 6; ++i) a.add(Gpr::rax, 1);
  a.syscall_();
  BlockFixture f(a);

  const cpu::DecodedBlock* block = f.cache.lookup_or_build(f.as, kCodeBase);
  ASSERT_NE(block, nullptr);
  ASSERT_EQ(block->insns.size(), 7u);

  cpu::BlockRun run = cpu::run_block(f.ctx, f.as, *block, /*budget=*/3);
  EXPECT_EQ(run.executed, 3u);
  EXPECT_EQ(run.retired, 3u);
  EXPECT_EQ(run.kind, cpu::ExecKind::kContinue);
  EXPECT_EQ(f.ctx.reg(Gpr::rax), 3u);

  // Resume mid-block via a fresh lookup at the advanced rip.
  const cpu::DecodedBlock* rest = f.cache.lookup_or_build(f.as, f.ctx.rip);
  ASSERT_NE(rest, nullptr);
  run = cpu::run_block(f.ctx, f.as, *rest, /*budget=*/64);
  EXPECT_EQ(run.kind, cpu::ExecKind::kSyscall);
  EXPECT_EQ(run.executed, 4u);  // 3 adds + the SYSCALL step
  EXPECT_EQ(run.retired, 4u);   // the SYSCALL terminator retires
  EXPECT_EQ(f.ctx.reg(Gpr::rax), 6u);
}

TEST(BlockCacheTest, SelfModifyingWriteInvalidatesWarmBlock) {
  Assembler a;
  a.syscall_();
  a.nop();
  BlockFixture f(a);

  ASSERT_NE(f.cache.lookup_or_build(f.as, kCodeBase), nullptr);
  ASSERT_NE(f.cache.lookup_or_build(f.as, kCodeBase), nullptr);
  EXPECT_EQ(f.cache.stats().hits, 1u);

  std::uint64_t invalidated_rip = 0;
  f.cache.set_invalidation_listener(
      [&invalidated_rip](std::uint64_t rip) { invalidated_rip = rip; });

  // Runtime-style privileged rewrite of the executing bytes (syscall ->
  // call rax): the page generation moves, so the warm block must die.
  const std::uint8_t call_rax[2] = {isa::kByteFF, isa::kByteCallRax2};
  ASSERT_TRUE(f.as.write_force(kCodeBase, call_rax).is_ok());

  const cpu::DecodedBlock* rebuilt = f.cache.lookup_or_build(f.as, kCodeBase);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilt->insns[0].op, isa::Op::kCallRax);
  EXPECT_EQ(f.cache.stats().invalidations, 1u);
  EXPECT_EQ(invalidated_rip, kCodeBase);
}

TEST(BlockCacheTest, PageCrossingHeadFallsBackToNullptr) {
  // An instruction whose encoding straddles a page boundary is left to the
  // per-instruction path: the builder decodes from a span clamped to the
  // page end, so the truncated head fails and no block exists there.
  Assembler a;
  a.mov(Gpr::rax, 0x1122'3344'5566'7788ULL);
  const auto bytes = a.finish().value();
  ASSERT_GT(bytes.size(), 2u);
  ASSERT_FALSE(isa::decode({bytes.data(), 2}).is_ok());

  mem::AddressSpace as;
  ASSERT_TRUE(as.map(kCodeBase, 2 * mem::kPageSize,
                     mem::kProtRead | mem::kProtExec, true)
                  .is_ok());
  const std::uint64_t head = kCodeBase + mem::kPageSize - 2;
  ASSERT_TRUE(as.write_force(head, bytes).is_ok());

  cpu::BlockCache cache;
  EXPECT_EQ(cache.lookup_or_build(as, head), nullptr);
  // Fully on-page placement of the same bytes builds fine.
  ASSERT_TRUE(as.write_force(kCodeBase, bytes).is_ok());
  EXPECT_NE(cache.lookup_or_build(as, kCodeBase), nullptr);
}

// --- the retired-only counter contract (satellite regression) ---------------

TEST(RetiredCounterTest, SignalKillStepDoesNotAdvanceTotalInsns) {
  const auto program = testutil::make_syscall_loop(kern::kSysGetpid, 100000);
  kern::Machine machine;
  const kern::Tid tid = machine.load(program).value();

  (void)machine.run(500);  // partial run; task parked at a slice boundary
  kern::Task* task = machine.find_task(tid);
  ASSERT_NE(task, nullptr);
  ASSERT_TRUE(task->runnable());
  const std::uint64_t retired_before = machine.total_insns();
  const std::uint64_t steps_before = machine.total_steps();
  EXPECT_EQ(retired_before, task->insns_retired);

  kern::SigInfo info;
  info.signo = kern::kSigkill;
  ASSERT_TRUE(machine.post_signal(tid, info).is_ok());
  const auto stats = machine.run();
  ASSERT_TRUE(stats.all_exited) << machine.last_fatal();

  // The kill-delivery slice is one machine step that retires nothing: the
  // scheduling clock moves, the retired counter must not.
  EXPECT_EQ(machine.total_insns(), retired_before);
  EXPECT_EQ(machine.total_insns(), task->insns_retired);
  EXPECT_EQ(machine.total_steps(), steps_before + 1);
}

TEST(RetiredCounterTest, HostDispatchStepsCountAsStepsNotRetirements) {
  const auto program = testutil::make_syscall_loop(kern::kSysGetpid, 50);
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  const kern::Tid tid = machine.load(program).value();
  auto runtime = core::Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime
                  ->install(machine, tid,
                            std::make_shared<interpose::DummyHandler>())
                  .is_ok());
  const auto stats = machine.run();
  ASSERT_TRUE(stats.all_exited) << machine.last_fatal();

  // total_insns() is exactly the sum of per-task retirements; the interposer
  // runtime's host-fn steps appear only in total_steps().
  EXPECT_EQ(machine.total_insns(), machine.find_task(tid)->insns_retired);
  EXPECT_GT(machine.total_steps(), machine.total_insns());
  EXPECT_EQ(stats.insns, machine.total_insns());
}

// --- differential: engine on vs off -----------------------------------------

struct MachineOutcome {
  int exit_code = 0;
  std::uint64_t cycles = 0;
  std::uint64_t insns = 0;
  std::uint64_t steps = 0;
  std::vector<std::uint8_t> data;
};

// Straight-line random programs: arithmetic, data-region traffic, stack
// round trips, and sprinkled syscalls (same register discipline as the
// transparency fuzz in property_test.cpp).
isa::Program make_random_program(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const Gpr pool[] = {Gpr::rax, Gpr::rbx, Gpr::rdx, Gpr::rbp, Gpr::rsi,
                      Gpr::rdi, Gpr::r8,  Gpr::r10, Gpr::r12, Gpr::r13,
                      Gpr::r14, Gpr::r15};
  auto reg = [&] { return pool[rng.next_below(std::size(pool))]; };
  auto disp = [&] { return static_cast<std::int32_t>(rng.next_below(64) * 8); };

  Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(Gpr::r9, apps::kDataBase);
  for (Gpr r : pool) a.mov(r, rng.next_below(0xFFFF));
  const std::uint64_t length = 40 + rng.next_below(60);
  for (std::uint64_t i = 0; i < length; ++i) {
    switch (rng.next_below(8)) {
      case 0: a.mov(reg(), rng.next_below(1 << 20)); break;
      case 1: a.add(reg(), reg()); break;
      case 2: a.sub(reg(), reg()); break;
      case 3: a.mul(reg(), reg()); break;
      case 4: a.store(Gpr::r9, disp(), reg()); break;
      case 5: a.load(reg(), Gpr::r9, disp()); break;
      case 6: {
        const Gpr r1 = reg();
        const Gpr r2 = reg();
        a.push(r1);
        a.pop(r2);
        break;
      }
      case 7:
        a.mov(Gpr::rax, std::uint64_t{kern::kSysGetpid});
        a.syscall_();
        break;
    }
  }
  a.mov(Gpr::rdi, Gpr::rbx);
  apps::emit_syscall(a, kern::kSysExitGroup);
  return isa::make_program("blockfuzz-" + std::to_string(seed), a, entry)
      .value();
}

MachineOutcome run_native(const isa::Program& program, bool block_on,
                          bool trace_on) {
  kern::Machine machine;
  machine.block_exec_enabled = block_on;
  machine.trace_exec_enabled = trace_on;
  kern::Tid tid = 0;
  MachineOutcome out;
  out.exit_code = testutil::load_and_run(machine, program, &tid);
  out.cycles = machine.total_cycles();
  out.insns = machine.total_insns();
  out.steps = machine.total_steps();
  out.data.resize(0x300);
  EXPECT_TRUE(machine.find_task(tid)
                  ->mem->read_force(apps::kDataBase, out.data)
                  .is_ok());
  return out;
}

class BlockExecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockExecFuzzTest, RandomProgramsMatchReferencePathExactly) {
  Xoshiro256 seeder(GetParam());
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t seed = seeder.next();
    const isa::Program program = make_random_program(seed);
    // Three-way: per-instruction reference, superblock engine, and the
    // chained-trace engine on top must agree bit-for-bit.
    const MachineOutcome ref = run_native(program, false, false);
    const MachineOutcome block = run_native(program, true, false);
    const MachineOutcome trace = run_native(program, true, true);
    for (const MachineOutcome* out : {&block, &trace}) {
      ASSERT_EQ(out->exit_code, ref.exit_code) << "seed " << seed;
      ASSERT_EQ(out->cycles, ref.cycles) << "seed " << seed;
      ASSERT_EQ(out->insns, ref.insns) << "seed " << seed;
      ASSERT_EQ(out->steps, ref.steps) << "seed " << seed;
      ASSERT_EQ(out->data, ref.data) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockExecFuzzTest,
                         ::testing::Values(21, 42, 84, 168));

TEST(BlockExecDifferentialTest, LazypolineLoopMatchesReferencePath) {
  const auto program = testutil::make_syscall_loop(kern::kSysGetpid, 200);

  auto run_with = [&](bool engine_on) {
    kern::Machine machine;
    machine.block_exec_enabled = engine_on;
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    const kern::Tid tid = machine.load(program).value();
    auto handler = std::make_shared<interpose::TracingHandler>();
    auto runtime = core::Lazypoline::create(machine, {});
    EXPECT_TRUE(runtime->install(machine, tid, handler).is_ok());
    const auto stats = machine.run();
    EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
    MachineOutcome out;
    out.exit_code = machine.find_task(tid)->exit_code;
    out.cycles = machine.total_cycles();
    out.insns = machine.total_insns();
    out.steps = machine.total_steps();
    out.data.push_back(static_cast<std::uint8_t>(handler->trace().size()));
#ifndef LZP_BLOCK_EXEC_DISABLED
    if (engine_on) {
      // The hot loop really ran through the block cache, and the runtime's
      // site rewrites invalidated warm blocks (SMC contract).
      EXPECT_GT(machine.block_cache_totals().hits, 0u);
      EXPECT_GE(machine.block_cache_totals().invalidations, 1u);
    } else {
      EXPECT_EQ(machine.block_cache_totals().hits +
                    machine.block_cache_totals().misses,
                0u);
    }
#endif
    return out;
  };

  const MachineOutcome on = run_with(true);
  const MachineOutcome off = run_with(false);
  EXPECT_EQ(on.exit_code, off.exit_code);
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.insns, off.insns);
  EXPECT_EQ(on.steps, off.steps);
  EXPECT_EQ(on.data, off.data);
}

TEST(BlockExecDifferentialTest, WebserverMatchesReferencePath) {
  constexpr std::uint64_t kRequests = 30;
  constexpr std::uint64_t kFileSize = 256;
  constexpr int kWorkers = 2;
  const apps::ServerProfile profile = apps::nginx_profile();

  auto run_with = [&](bool block_on, bool trace_on, std::string* metrics_out) {
    kern::Machine machine;
    machine.block_exec_enabled = block_on;
    machine.trace_exec_enabled = trace_on;
    machine.mmap_min_addr = 0;
#ifndef LZP_TRACE_DISABLED
    trace::Tracer tracer;
    tracer.attach(machine);
#endif
    EXPECT_TRUE(machine.vfs().put_file_of_size("index.html", kFileSize).is_ok());
    kern::ClientWorkload workload;
    workload.connections = 4;
    workload.total_requests = kRequests;
    workload.response_bytes = profile.header_bytes + kFileSize;
    const int listener = machine.net().create_listener(workload);

    auto program = apps::make_webserver(machine, profile, "index.html");
    EXPECT_TRUE(program.is_ok()) << program.status().to_string();
    machine.register_program(program.value());
    std::vector<kern::Tid> tids;
    for (int w = 0; w < kWorkers; ++w) {
      const kern::Tid tid = machine.load(program.value()).value();
      kern::FdEntry entry;
      entry.kind = kern::FdEntry::Kind::kListener;
      entry.net_id = listener;
      machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
      tids.push_back(tid);
      mechanisms::SudMechanism mechanism;
      EXPECT_TRUE(mechanism
                      .install(machine, tid,
                               std::make_shared<interpose::DummyHandler>())
                      .is_ok());
    }
    const auto stats = machine.run(400'000'000ULL);
    EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
    EXPECT_EQ(machine.net().completed_requests(listener), kRequests);

    MachineOutcome out;
    out.cycles = machine.total_cycles();
    out.insns = machine.total_insns();
    out.steps = machine.total_steps();
    for (const kern::Tid tid : tids) {
      out.data.push_back(
          static_cast<std::uint8_t>(machine.find_task(tid)->exit_code));
    }
#ifndef LZP_TRACE_DISABLED
    if (metrics_out != nullptr) {
      // Everything in the metrics tables except the execution-cache counters
      // (which exist precisely to differ between the two paths) must match.
      // ring.events aggregates the invalidation events too, so it goes with
      // them.
      std::istringstream in(trace::render_summary(tracer));
      std::string line;
      while (std::getline(in, line)) {
        if (line.find("bcache.") != std::string::npos ||
            line.find("dcache.") != std::string::npos ||
            line.find("tcache.") != std::string::npos ||
            line.find("ring.events") != std::string::npos) {
          continue;
        }
        *metrics_out += line + "\n";
      }
    }
    tracer.detach(machine);
#else
    (void)metrics_out;
#endif
    return out;
  };

  std::string metrics_ref;
  std::string metrics_block;
  std::string metrics_trace;
  const MachineOutcome ref = run_with(false, false, &metrics_ref);
  const MachineOutcome block = run_with(true, false, &metrics_block);
  const MachineOutcome trace = run_with(true, true, &metrics_trace);
  for (const MachineOutcome* out : {&block, &trace}) {
    EXPECT_EQ(out->cycles, ref.cycles);
    EXPECT_EQ(out->insns, ref.insns);
    EXPECT_EQ(out->steps, ref.steps);
    EXPECT_EQ(out->data, ref.data);
  }
  EXPECT_EQ(metrics_block, metrics_ref);
  EXPECT_EQ(metrics_trace, metrics_ref);
}

// --- record/replay neutrality ------------------------------------------------

replay::Trace record_loop(bool block_on, bool trace_on) {
  const auto program = testutil::make_syscall_loop(kern::kSysGetpid, 40);
  auto recorder = std::make_shared<replay::Recorder>();
  kern::Machine machine;
  machine.block_exec_enabled = block_on;
  machine.trace_exec_enabled = trace_on;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  recorder->attach(machine, /*rng_seed=*/42, "sud", "loop");
  const kern::Tid tid = machine.load(program).value();
  mechanisms::SudMechanism mechanism;
  EXPECT_TRUE(mechanism.install(machine, tid, recorder).is_ok());
  const auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  return recorder->take_trace();
}

TEST(BlockExecReplayTest, RecordedTracesAreIdenticalAcrossEngines) {
  const replay::Trace ref = record_loop(false, false);
  const replay::Trace block = record_loop(true, false);
  const replay::Trace trace = record_loop(true, true);
  EXPECT_EQ(block, ref);
  EXPECT_EQ(trace, ref);
}

TEST(BlockExecReplayTest, ExternalKillRoundTripsWithEngineEnabled) {
  const auto program =
      testutil::make_syscall_loop(kern::kSysGetpid, 100000, "killed-loop");

  auto recorder = std::make_shared<replay::Recorder>();
  int recorded_exit = 0;
  std::uint64_t recorded_retired = 0;
  {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    recorder->attach(machine, /*rng_seed=*/9, "sud", "killed-loop");
    const kern::Tid tid = machine.load(program).value();
    mechanisms::SudMechanism mechanism;
    ASSERT_TRUE(mechanism.install(machine, tid, recorder).is_ok());
    (void)machine.run(4000);  // partial run, then the kill arrives
    kern::SigInfo info;
    info.signo = kern::kSigkill;
    ASSERT_TRUE(machine.post_signal(tid, info).is_ok());
    const auto stats = machine.run();
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    recorded_exit = machine.find_task(tid)->exit_code;
    recorded_retired = machine.find_task(tid)->insns_retired;
  }

  auto replayer = std::make_shared<replay::Replayer>(recorder->take_trace());
  {
    kern::Machine machine;
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    replayer->attach(machine);
    const kern::Tid tid = machine.load(program).value();
    mechanisms::SudMechanism mechanism;
    ASSERT_TRUE(mechanism.install(machine, tid, replayer).is_ok());
    const auto stats = machine.run();
    EXPECT_TRUE(replayer->status().is_ok()) << replayer->status().to_string();
    ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
    EXPECT_EQ(machine.find_task(tid)->exit_code, recorded_exit);
    EXPECT_EQ(machine.find_task(tid)->insns_retired, recorded_retired);
  }
  EXPECT_EQ(replayer->stats().signals_posted, 1u);
}

}  // namespace
}  // namespace lzp
