// Cross-module integration tests: the paper's headline claims, asserted
// end-to-end at small scale (the bench/ binaries run the full-size versions).
#include <gtest/gtest.h>

#include "apps/jitcc.hpp"
#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "mechanisms/seccomp_bpf_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "sim_test_util.hpp"
#include "zpoline/zpoline.hpp"

namespace lzp {
namespace {

using interpose::DummyHandler;
using interpose::TracingHandler;
using kern::Machine;
using kern::Tid;

// Cycles per run of a microbench loop under a given setup.
std::uint64_t micro_cycles(
    const isa::Program& program,
    const std::function<void(Machine&, Tid)>& setup) {
  return testutil::measure_cycles(program, setup);
}

// Table II ordering: baseline < baseline+SUD < zpoline+eps < lazypoline-no-x
// < lazypoline < SUD. (Exact ratios are validated by bench/table2_micro.)
TEST(TableTwoIntegration, OverheadOrderingMatchesPaper) {
  const std::uint64_t iterations = 400;
  auto program = testutil::make_syscall_loop(kern::kSysNonexistent, iterations);

  const std::uint64_t baseline = micro_cycles(program, nullptr);

  const std::uint64_t sud_enabled = micro_cycles(
      program, [](Machine& machine, Tid tid) {
        ASSERT_TRUE(
            mechanisms::SudMechanism::install_always_allow(machine, tid).is_ok());
      });

  const std::uint64_t zpoline = micro_cycles(
      program, [&](Machine& machine, Tid tid) {
        machine.register_program(program);
        zpoline::ZpolineMechanism mechanism;
        ASSERT_TRUE(
            mechanism.install(machine, tid, std::make_shared<DummyHandler>())
                .is_ok());
      });

  auto lazy_cycles = [&](core::XstateMode mode, bool sud) {
    return micro_cycles(program, [&](Machine& machine, Tid tid) {
      machine.register_program(program);
      core::LazypolineConfig config;
      config.xstate = mode;
      config.use_sud = sud;
      auto runtime = core::Lazypoline::create(machine, config);
      ASSERT_TRUE(
          runtime->install(machine, tid, std::make_shared<DummyHandler>())
              .is_ok());
      // Steady state: pre-rewrite all sites (paper §V-B methodology).
      for (std::uint64_t site : program.true_syscall_addresses()) {
        ASSERT_TRUE(runtime->rewrite_site_manually(tid, site).is_ok());
      }
      if (!sud) {
        ASSERT_TRUE(runtime->disable_sud(tid).is_ok());
      }
    });
  };
  const std::uint64_t lazy_no_sud = lazy_cycles(core::XstateMode::kNone, false);
  const std::uint64_t lazy_no_xstate = lazy_cycles(core::XstateMode::kNone, true);
  const std::uint64_t lazy_full = lazy_cycles(core::XstateMode::kFull, true);

  const std::uint64_t sud = micro_cycles(
      program, [](Machine& machine, Tid tid) {
        mechanisms::SudMechanism mechanism;
        ASSERT_TRUE(
            mechanism.install(machine, tid, std::make_shared<DummyHandler>())
                .is_ok());
      });

  EXPECT_LT(baseline, sud_enabled);
  EXPECT_LT(sud_enabled, lazy_no_xstate);
  EXPECT_LT(zpoline, lazy_no_xstate);
  EXPECT_LT(lazy_no_xstate, lazy_full);
  EXPECT_LT(lazy_full, sud / 4) << "lazypoline must be far cheaper than SUD";

  // Figure 4: without SUD, lazypoline's fast path == zpoline (within 2%).
  const double fast_vs_zpoline = static_cast<double>(lazy_no_sud) /
                                 static_cast<double>(zpoline);
  EXPECT_NEAR(fast_vs_zpoline, 1.0, 0.02);

  // Rough Table II ratio bands.
  const auto ratio = [&](std::uint64_t cycles) {
    return static_cast<double>(cycles) / static_cast<double>(baseline);
  };
  EXPECT_NEAR(ratio(sud_enabled), 1.42, 0.15);
  EXPECT_NEAR(ratio(lazy_no_xstate), 1.66, 0.20);
  EXPECT_NEAR(ratio(lazy_full), 2.38, 0.30);
  EXPECT_NEAR(ratio(sud), 20.8, 5.0);
}

// §V-A: traces under SUD and lazypoline are identical and include the JIT
// getpid; zpoline's misses it.
TEST(ExhaustivenessIntegration, JitTraceComparison) {
  const std::string src = apps::exhaustiveness_test_source();

  auto run_traced = [&](const std::string& which) {
    Machine machine;
    machine.mmap_min_addr = 0;
    EXPECT_TRUE(machine.vfs()
                    .put_file("prog.c", std::vector<std::uint8_t>(src.begin(),
                                                                  src.end()))
                    .is_ok());
    auto runner = apps::make_jit_runner(machine, "prog.c").value();
    machine.register_program(runner.program);
    auto tid = machine.load(runner.program).value();
    auto handler = std::make_shared<TracingHandler>();
    if (which == "sud") {
      mechanisms::SudMechanism mechanism;
      EXPECT_TRUE(mechanism.install(machine, tid, handler).is_ok());
    } else if (which == "zpoline") {
      zpoline::ZpolineMechanism mechanism;
      EXPECT_TRUE(mechanism.install(machine, tid, handler).is_ok());
    } else {
      auto runtime = core::Lazypoline::create(machine, {});
      EXPECT_TRUE(runtime->install(machine, tid, handler).is_ok());
    }
    auto stats = machine.run();
    EXPECT_TRUE(stats.all_exited) << which << ": " << machine.last_fatal();
    EXPECT_EQ(machine.find_task(tid)->exit_code, 21) << which;
    return handler->traced_numbers();
  };

  const auto sud_trace = run_traced("sud");
  const auto lazy_trace = run_traced("lazypoline");
  const auto zpoline_trace = run_traced("zpoline");

  // lazypoline and SUD print the exact same syscalls in the same order.
  EXPECT_EQ(sud_trace, lazy_trace);

  const auto contains_getpid = [](const std::vector<std::uint64_t>& trace) {
    return std::find(trace.begin(), trace.end(),
                     std::uint64_t{kern::kSysGetpid}) != trace.end();
  };
  EXPECT_TRUE(contains_getpid(sud_trace));
  EXPECT_TRUE(contains_getpid(lazy_trace));
  EXPECT_FALSE(contains_getpid(zpoline_trace));
  // zpoline still saw the load-time syscalls.
  EXPECT_FALSE(zpoline_trace.empty());
}

// Figure 5 shape at one grid point: throughput ordering and dilution.
TEST(WebServerIntegration, ThroughputOrderingAndDilution) {
  const std::uint64_t requests = 150;

  auto run_server = [&](std::uint64_t file_size,
                        const std::string& mechanism) -> double {
    Machine machine;
    machine.mmap_min_addr = 0;
    (void)machine.vfs().put_file_of_size("index.html", file_size);
    const auto profile = apps::nginx_profile();
    kern::ClientWorkload workload;
    workload.total_requests = requests;
    workload.response_bytes = profile.header_bytes + file_size;
    const int listener = machine.net().create_listener(workload);
    auto program = apps::make_webserver(machine, profile, "index.html").value();
    machine.register_program(program);
    auto tid = machine.load(program).value();
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);

    auto handler = std::make_shared<DummyHandler>();
    if (mechanism == "zpoline") {
      zpoline::ZpolineMechanism zp;
      EXPECT_TRUE(zp.install(machine, tid, handler).is_ok());
    } else if (mechanism == "lazypoline") {
      auto runtime = core::Lazypoline::create(machine, {});
      EXPECT_TRUE(runtime->install(machine, tid, handler).is_ok());
    } else if (mechanism == "sud") {
      mechanisms::SudMechanism sud;
      EXPECT_TRUE(sud.install(machine, tid, handler).is_ok());
    }
    auto stats = machine.run();
    EXPECT_TRUE(stats.all_exited) << mechanism << ": " << machine.last_fatal();
    EXPECT_EQ(machine.net().completed_requests(listener), requests);
    const std::uint64_t cycles = machine.find_task(tid)->cycles;
    return static_cast<double>(requests) / static_cast<double>(cycles);
  };

  const double base_1k = run_server(1024, "native");
  const double zp_1k = run_server(1024, "zpoline");
  const double lazy_1k = run_server(1024, "lazypoline");
  const double sud_1k = run_server(1024, "sud");

  // Ordering at 1K: native >= zpoline >= lazypoline > SUD.
  EXPECT_GT(base_1k, zp_1k);
  EXPECT_GT(zp_1k, lazy_1k);
  EXPECT_GT(lazy_1k, sud_1k);
  // lazypoline keeps >90% of native; SUD loses roughly half.
  EXPECT_GT(lazy_1k / base_1k, 0.88);
  EXPECT_LT(sud_1k / base_1k, 0.65);

  // Dilution at 256K: the zpoline/lazypoline gap practically vanishes.
  const double base_256k = run_server(256 * 1024, "native");
  const double zp_256k = run_server(256 * 1024, "zpoline");
  const double lazy_256k = run_server(256 * 1024, "lazypoline");
  const double sud_256k = run_server(256 * 1024, "sud");
  // "From 64 KB on, the overhead difference between zpoline and lazypoline
  // practically vanishes" — within 2 percentage points at 256K.
  EXPECT_LT(zp_256k / base_256k - lazy_256k / base_256k, 0.02);
  EXPECT_GT(lazy_256k / base_256k, 0.97);
  EXPECT_GT(zp_256k / base_256k, 0.985);
  // SUD's slowdown is still noticeable even at 256K.
  EXPECT_LT(sud_256k / base_256k, 0.95);
}

// seccomp filters survive execve; lazypoline's interposition does too (via
// preload), so both worlds compose.
TEST(ExecveIntegration, SeccompPersistsAndLazypolineReinitializes) {
  Machine machine;
  machine.mmap_min_addr = 0;

  isa::Assembler t;
  auto t_entry = t.new_label();
  t.bind(t_entry);
  t.mov(isa::Gpr::rax, kern::kSysGetpid);
  t.syscall_();
  apps::emit_exit(t, 5);
  auto target = isa::make_program("exec-target", t, t_entry).value();
  machine.register_program(target);

  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t name = apps::embed_string(a, "exec-target");
  a.mov(isa::Gpr::rdi, name);
  apps::emit_syscall(a, kern::kSysExecve);
  apps::emit_exit(a, 1);
  auto program = isa::make_program("execer", a, entry).value();
  machine.register_program(program);

  auto tid = machine.load(program).value();
  // A monitoring seccomp filter...
  ASSERT_TRUE(mechanisms::SeccompBpfMechanism::install_monitoring_filter(
                  machine, tid)
                  .is_ok());
  // ...plus lazypoline with preload.
  auto handler = std::make_shared<TracingHandler>();
  auto runtime = core::Lazypoline::create(machine, {});
  runtime->attach_as_preload();
  ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());

  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  kern::Task* task = machine.find_task(tid);
  EXPECT_EQ(task->exit_code, 5);
  EXPECT_FALSE(task->seccomp.empty()) << "seccomp filters cannot be removed";
  EXPECT_TRUE(task->sud.enabled) << "lazypoline re-armed after execve";
}

}  // namespace
}  // namespace lzp
