// Trace execution engine (cpu/trace_cache + Machine::trace_step):
//   * formation and chaining on hot loops, with bit-identical cycle, retired,
//     and step counts against the per-instruction reference path,
//   * slice-continuation resumes: chains longer than the scheduling quantum
//     park at the slice edge and re-enter mid-trace,
//   * SMC mid-run: a privileged rewrite of a page embedded in installed
//     traces invalidates exactly those traces and the patched bytes take
//     effect (no stale-trace execution),
//   * churn demotion and resume revalidation at the TraceCache unit level,
//   * the fused lazypoline fast path: host-call dispatches executed inside a
//     trace without leaving the dispatch loop,
//   * SMP: 4-CPU run with self-modifying rewrites shooting down chained
//     traces on other CPUs mid-execution.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "cpu/block_cache.hpp"
#include "cpu/trace_cache.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "sim_test_util.hpp"

namespace lzp {
namespace {

using isa::Assembler;
using isa::Gpr;

#ifdef LZP_TRACE_EXEC_DISABLED
constexpr bool kTraceEngineBuilt = false;
#else
constexpr bool kTraceEngineBuilt = true;
#endif

struct Outcome {
  int exit_code = 0;
  std::uint64_t cycles = 0;
  std::uint64_t insns = 0;
  std::uint64_t steps = 0;
  cpu::TraceCacheStats tcache;
};

Outcome run_program(const isa::Program& program, bool trace_on) {
  kern::Machine machine;
  kern::Tid tid = 0;
  machine.trace_exec_enabled = trace_on;
  Outcome out;
  out.exit_code = testutil::load_and_run(machine, program, &tid);
  out.cycles = machine.total_cycles();
  out.insns = machine.total_insns();
  out.steps = machine.total_steps();
  out.tcache = machine.trace_cache_totals();
  return out;
}

void expect_identical(const Outcome& trace, const Outcome& ref) {
  EXPECT_EQ(trace.exit_code, ref.exit_code);
  EXPECT_EQ(trace.cycles, ref.cycles);
  EXPECT_EQ(trace.insns, ref.insns);
  EXPECT_EQ(trace.steps, ref.steps);
}

// A counted loop whose body is `body_adds` ADD instructions — enough to span
// several superblocks when large (kMaxBlockInsns = 32), so the recorded
// chain crosses block boundaries and outgrows the 64-step slice quantum.
isa::Program make_wide_loop(std::uint64_t iterations, int body_adds) {
  Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rbx, iterations);
  a.bind(loop);
  a.cmp(Gpr::rbx, 0);
  a.jz(done);
  for (int i = 0; i < body_adds; ++i) a.add(Gpr::rcx, 1);
  a.sub(Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  return isa::make_program("wide-loop", a, entry).value();
}

// --- kernel-layer formation, resume, determinism -----------------------------

TEST(TraceExecTest, HotLoopFormsAndChainsTraces) {
  const isa::Program program = make_wide_loop(2'000, 4);
  const Outcome trace = run_program(program, true);
  const Outcome ref = run_program(program, false);
  expect_identical(trace, ref);
  if (!kTraceEngineBuilt) GTEST_SKIP() << "trace engine compiled out";
  EXPECT_GE(trace.tcache.traces_built, 1u);
  EXPECT_GT(trace.tcache.hits, 0u);
  EXPECT_GT(trace.tcache.chain_follows, 0u);
  EXPECT_GT(trace.tcache.completions, 0u);
  // The reference path must never touch the trace cache.
  EXPECT_EQ(ref.tcache.hits + ref.tcache.misses, 0u);
}

TEST(TraceExecTest, ChainsLongerThanSliceQuantumResumeMidTrace) {
  // ~150 body instructions per iteration: five superblocks chained, more
  // than twice the 64-step slice, so completing an iteration inside the
  // trace requires parking at the slice edge and resuming mid-chain.
  const isa::Program program = make_wide_loop(400, 150);
  const Outcome trace = run_program(program, true);
  const Outcome ref = run_program(program, false);
  expect_identical(trace, ref);
  if (!kTraceEngineBuilt) GTEST_SKIP() << "trace engine compiled out";
  EXPECT_GE(trace.tcache.traces_built, 1u);
  EXPECT_GT(trace.tcache.resumes, 0u);
  EXPECT_GT(trace.tcache.completions, 0u);
}

// --- SMC mid-run -------------------------------------------------------------

TEST(TraceExecTest, SmcMidRunInvalidatesTracesAndNewBytesExecute) {
  // Loop body sets rdx to a marker immediate each iteration; the final exit
  // code is rdx. Mid-run, the marker is patched from 0x11 to 0x22 with a
  // privileged write (the runtime-rewrite path, bumping the page
  // generation): installed traces embedding the page must drop, and the
  // remaining iterations must run the new bytes.
  constexpr std::uint64_t kMarkerOld = 0x11;
  constexpr std::uint64_t kMarkerNew = 0x22;
  constexpr std::uint64_t kIterations = 3'000;
  Assembler a;
  const auto entry = a.new_label();
  const auto loop = a.new_label();
  const auto done = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rbx, kIterations);
  a.bind(loop);
  a.cmp(Gpr::rbx, 0);
  a.jz(done);
  a.mov(Gpr::rdx, kMarkerOld);
  for (int i = 0; i < 6; ++i) a.add(Gpr::rcx, 1);
  a.sub(Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  a.mov(Gpr::rdi, Gpr::rdx);
  apps::emit_syscall(a, kern::kSysExitGroup);
  const isa::Program program =
      isa::make_program("smc-loop", a, entry).value();

  // Locate the marker immediate's bytes in the image (unique by value).
  std::uint8_t imm[8];
  std::uint64_t value = kMarkerOld;
  std::memcpy(imm, &value, 8);
  std::size_t offset = 0;
  int found = 0;
  for (std::size_t i = 0; i + 8 <= program.image.size(); ++i) {
    if (std::memcmp(program.image.data() + i, imm, 8) == 0) {
      offset = i;
      ++found;
    }
  }
  ASSERT_EQ(found, 1);

  kern::Machine machine;
  const kern::Tid tid = machine.load(program).value();
  // Run far enough that the loop is hot and traces are installed, then stop
  // at a slice boundary mid-loop.
  (void)machine.run(10'000);
  kern::Task* task = machine.find_task(tid);
  ASSERT_NE(task, nullptr);
  ASSERT_TRUE(task->runnable());
  if (kTraceEngineBuilt) {
    ASSERT_GE(machine.trace_cache_totals().traces_built, 1u);
  }

  value = kMarkerNew;
  std::memcpy(imm, &value, 8);
  ASSERT_TRUE(task->mem->write_force(program.base + offset, imm).is_ok());

  const auto stats = machine.run();
  ASSERT_TRUE(stats.all_exited) << machine.last_fatal();
  // The patch is what the remaining iterations executed — a stale trace
  // would have exited with the old marker.
  EXPECT_EQ(task->exit_code, static_cast<int>(kMarkerNew));
  if (kTraceEngineBuilt) {
    EXPECT_GE(machine.trace_cache_totals().invalidations, 1u);
  }
}

// --- TraceCache unit level: demotion and resume revalidation -----------------

constexpr std::uint64_t kCodeBase = 0x40'0000;

// Two blocks closing a loop: A ends in a jump to B, B jumps back to A.
struct ChainFixture {
  mem::AddressSpace as;
  cpu::BlockCache blocks;
  const cpu::DecodedBlock* a = nullptr;
  const cpu::DecodedBlock* b = nullptr;

  ChainFixture() {
    Assembler assembler;
    const auto head = assembler.new_label();
    const auto tail = assembler.new_label();
    assembler.bind(head);
    assembler.add(Gpr::rax, 1);
    assembler.add(Gpr::rcx, 1);
    assembler.jmp(tail);
    assembler.bind(tail);
    assembler.add(Gpr::rdx, 1);
    assembler.jmp(head);
    auto code = assembler.finish().value();
    EXPECT_TRUE(as.map(kCodeBase, mem::page_ceil(code.size()),
                       mem::kProtRead | mem::kProtExec, true)
                    .is_ok());
    EXPECT_TRUE(as.write_force(kCodeBase, code).is_ok());
    a = blocks.lookup_or_build(as, kCodeBase);
    EXPECT_NE(a, nullptr);
    b = blocks.lookup_or_build(as, a->start + a->length);
    EXPECT_NE(b, nullptr);
  }

  // Heats A past the threshold and records the A -> B -> A loop.
  void install(cpu::TraceCache& tc) {
    // Sync the cache onto this address space: on_block_executed aborts on an
    // asid mismatch, and only lookup()/take_resume() adopt a new space.
    (void)tc.lookup(as, a->start);
    const std::uint64_t built_before = tc.stats().traces_built;
    for (std::int32_t i = 0; i < cpu::TraceCache::kHotThreshold; ++i) {
      tc.on_block_executed(as, blocks, *a, b->start);
    }
    ASSERT_TRUE(tc.recording());
    tc.on_block_executed(as, blocks, *b, a->start);  // loop closes on the head
    ASSERT_EQ(tc.stats().traces_built, built_before + 1);
  }
};

TEST(TraceCacheTest, ChurnWithoutChainingDemotesWithoutBlacklisting) {
  ChainFixture f;
  cpu::TraceCache tc;
  f.install(tc);
  cpu::Trace* trace = tc.lookup(f.as, f.a->start);
  ASSERT_NE(trace, nullptr);

  // kDemotionWindow entries that all side-exit before the first boundary:
  // chain yield stays at zero, so the side exit that crosses the window
  // demotes the trace.
  for (std::uint64_t i = 0; i < cpu::TraceCache::kDemotionWindow - 1; ++i) {
    tc.note_entered(*trace);
    tc.note_side_exit(*trace);
  }
  EXPECT_EQ(tc.stats().demotions, 0u);
  tc.note_entered(*trace);
  tc.note_side_exit(*trace);
  EXPECT_EQ(tc.stats().demotions, 1u);
  EXPECT_EQ(tc.lookup(f.as, f.a->start), nullptr);

  // No blacklist: the head may heat up and install again.
  f.install(tc);
  EXPECT_NE(tc.lookup(f.as, f.a->start), nullptr);
}

TEST(TraceCacheTest, ResumeValidatesPositionAndPageGenerations) {
  ChainFixture f;
  cpu::TraceCache tc;
  f.install(tc);

  // Park at instruction 1 of block B (the second link).
  const std::uint64_t parked_rip = f.b->start + f.b->insns[0].length;
  tc.set_resume(f.a->start, 1, 1);
  std::size_t block_idx = 0;
  std::size_t insn_idx = 0;
  cpu::Trace* trace = tc.take_resume(f.as, parked_rip, block_idx, insn_idx);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(block_idx, 1u);
  EXPECT_EQ(insn_idx, 1u);
  EXPECT_EQ(tc.stats().resumes, 1u);

  // Single-shot: the same park is gone.
  EXPECT_EQ(tc.take_resume(f.as, parked_rip, block_idx, insn_idx), nullptr);

  // A park whose rip does not sit on the recorded instruction is dropped
  // (signal-diverted control flow between slices).
  tc.set_resume(f.a->start, 1, 1);
  EXPECT_EQ(tc.take_resume(f.as, parked_rip + 1, block_idx, insn_idx), nullptr);

  // A page-generation bump between park and resume drops the continuation
  // and the trace itself.
  tc.set_resume(f.a->start, 1, 1);
  const std::uint8_t nop = isa::kByteNop;
  ASSERT_TRUE(f.as.write_force(kCodeBase, {&nop, 1}).is_ok());
  EXPECT_EQ(tc.take_resume(f.as, parked_rip, block_idx, insn_idx), nullptr);
  EXPECT_EQ(tc.stats().resumes, 1u);
}

// --- the fused lazypoline fast path ------------------------------------------

TEST(TraceExecTest, LazypolineSyscallLoopFusesHostCallsIntoTraces) {
  // The §V-B microbenchmark shape: the non-existent syscall in a tight loop,
  // sites pre-rewritten so every iteration takes the steady-state callrax ->
  // trampoline -> handler path the fused superop covers (a getpid loop would
  // detour through kernel emulation, which ends every chain at the boundary).
  const auto program =
      testutil::make_syscall_loop(kern::kSysNonexistent, 2'000);

  auto run_with = [&](bool trace_on) {
    kern::Machine machine;
    machine.trace_exec_enabled = trace_on;
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    const kern::Tid tid = machine.load(program).value();
    core::LazypolineConfig config;
    config.xstate = core::XstateMode::kFull;
    auto runtime = core::Lazypoline::create(machine, config);
    EXPECT_TRUE(runtime
                    ->install(machine, tid,
                              std::make_shared<interpose::DummyHandler>())
                    .is_ok());
    for (std::uint64_t site : program.true_syscall_addresses()) {
      EXPECT_TRUE(runtime->rewrite_site_manually(tid, site).is_ok());
    }
    const auto stats = machine.run();
    EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
    Outcome out;
    out.exit_code = machine.find_task(tid)->exit_code;
    out.cycles = machine.total_cycles();
    out.insns = machine.total_insns();
    out.steps = machine.total_steps();
    out.tcache = machine.trace_cache_totals();
    return out;
  };

  const Outcome trace = run_with(true);
  const Outcome ref = run_with(false);
  expect_identical(trace, ref);
  if (!kTraceEngineBuilt) GTEST_SKIP() << "trace engine compiled out";
  // The rewritten syscall sites dispatch their handlers inside the trace:
  // trampoline entry, handler, and return all without leaving trace_step.
  EXPECT_GT(trace.tcache.fused_fastpaths, 0u);
  EXPECT_GT(trace.tcache.chain_follows, 0u);
}

// --- SMP: shootdown during chained execution ---------------------------------

TEST(TraceExecSmpTest, FourCpuShootdownDuringChainedExecution) {
  // CLONE_VM threads spread over 4 CPUs (gang_shared=false) under
  // lazypoline: the runtime's self-modifying site rewrites on one CPU must
  // shoot down the chained traces other CPUs are executing, and the
  // workload must still serve every request.
  kern::Machine machine;
  machine.mmap_min_addr = 0;
  ASSERT_TRUE(machine.vfs().put_file_of_size("index.html", 1024).is_ok());
  kern::ClientWorkload workload;
  workload.connections = 12;
  workload.total_requests = 300;
  workload.response_bytes = apps::nginx_profile().header_bytes + 1024;
  const int listener = machine.net().create_listener(workload);

  auto program = apps::make_threaded_webserver(machine, apps::nginx_profile(),
                                               "index.html", 4)
                     .value();
  machine.register_program(program);
  const kern::Tid main_tid = machine.load(program).value();
  kern::FdEntry entry;
  entry.kind = kern::FdEntry::Kind::kListener;
  entry.net_id = listener;
  machine.find_task(main_tid)->process->install_fd_at(apps::kListenerFd, entry);
  auto runtime = core::Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime
                  ->install(machine, main_tid,
                            std::make_shared<interpose::DummyHandler>())
                  .is_ok());

  kern::SmpConfig config;
  config.cpus = 4;
  config.seed = 5;
  config.gang_shared = false;
  const kern::SmpStats stats = machine.run_smp(config);
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_EQ(machine.net().completed_requests(listener), 300u);

  std::set<unsigned> cpus_used;
  for (kern::Tid tid : machine.task_ids()) {
    cpus_used.insert(machine.find_task(tid)->cpu);
  }
  if (!kTraceEngineBuilt) GTEST_SKIP() << "trace engine compiled out";
  const cpu::TraceCacheStats totals = machine.trace_cache_totals();
  EXPECT_GE(totals.traces_built, 1u);
  EXPECT_GT(totals.chain_follows, 0u);
  if (cpus_used.size() > 1) {
    EXPECT_GT(stats.shootdowns, 0u)
        << "spread CLONE_VM siblings saw no SMC shootdown";
    // The shootdowns landed on chained traces, not just single blocks.
    EXPECT_GE(totals.invalidations + totals.flushes, 1u);
  }
}

}  // namespace
}  // namespace lzp
