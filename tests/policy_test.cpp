// Tests for the syscall-flow-integrity policy subsystem (src/policy):
// automaton format round trips (including predicate edges), extraction
// (block-local idioms, value-flow cross-block resolution, dynamic learning),
// the static ⊇ dynamic containment on the webserver, minimization (language
// preservation both ways), lowering to shared per-class seccomp-BPF filters
// (including segmented >255-member sets and argument-predicate checks), and
// enforcement semantics — deny/kill verdicts, state non-advance on denial,
// and identical violation verdicts under all four mechanisms.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/minilibc.hpp"
#include "apps/webserver.hpp"
#include "bpf/seccomp_filter.hpp"
#include "core/lazypoline.hpp"
#include "isa/assemble.hpp"
#include "kernel/machine.hpp"
#include "kernel/syscalls.hpp"
#include "mechanisms/ptrace_tool.hpp"
#include "mechanisms/sud_tool.hpp"
#include "policy/compile.hpp"
#include "policy/enforce.hpp"
#include "policy/extract.hpp"
#include "policy/from_flight_recorder.hpp"
#include "sim_test_util.hpp"
#include "zpoline/zpoline.hpp"

namespace {
using namespace lzp;
using kern::Machine;
using kern::Tid;

enum class Mech { kPtrace, kSud, kZpoline, kLazypoline };

void install_mechanism(Machine& machine, Tid tid,
                       std::shared_ptr<interpose::SyscallHandler> handler,
                       Mech mech) {
  switch (mech) {
    case Mech::kPtrace: {
      mechanisms::PtraceMechanism mechanism;
      ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
      break;
    }
    case Mech::kSud: {
      mechanisms::SudMechanism mechanism;
      ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
      break;
    }
    case Mech::kZpoline: {
      zpoline::ZpolineMechanism mechanism;
      ASSERT_TRUE(mechanism.install(machine, tid, handler).is_ok());
      break;
    }
    case Mech::kLazypoline: {
      auto runtime = core::Lazypoline::create(machine, {});
      ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());
      break;
    }
  }
}

// --- automaton format --------------------------------------------------------

policy::Automaton make_sample_automaton() {
  policy::Automaton automaton;
  automaton.name = "sample";
  automaton.source = "static";
  automaton.add_edge(policy::kEntryState, kern::kSysGetpid);
  automaton.add_edge(kern::kSysGetpid, kern::kSysGetpid);
  automaton.add_edge(kern::kSysGetpid, kern::kSysExitGroup);
  automaton.add_edge(kern::kSysWrite, policy::kAnySyscall);
  automaton.add_from_any(kern::kSysClose);
  return automaton;
}

TEST(PolicyAutomatonTest, SerializeParseRoundTrip) {
  const policy::Automaton automaton = make_sample_automaton();
  const std::string text = automaton.serialize();
  auto parsed = policy::Automaton::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), automaton);
  // And the round trip is a fixpoint.
  EXPECT_EQ(parsed.value().serialize(), text);
}

TEST(PolicyAutomatonTest, ParseRejectsMalformed) {
  EXPECT_FALSE(policy::Automaton::parse("bogus keyword").is_ok());
  // '*' cannot be a state source: the monitor is never "in" the wildcard.
  EXPECT_FALSE(policy::Automaton::parse("state * -> 1").is_ok());
  // Syscall numbers beyond the table are rejected.
  EXPECT_FALSE(policy::Automaton::parse("state 1 -> 99999").is_ok());
}

TEST(PolicyAutomatonTest, AllowsSemantics) {
  const policy::Automaton automaton = make_sample_automaton();
  // Concrete edge.
  EXPECT_TRUE(automaton.allows(kern::kSysGetpid, kern::kSysExitGroup));
  EXPECT_FALSE(automaton.allows(kern::kSysGetpid, kern::kSysOpen));
  // from_any members are allowed from every state.
  EXPECT_TRUE(automaton.allows(kern::kSysGetpid, kern::kSysClose));
  EXPECT_TRUE(automaton.allows(policy::kEntryState, kern::kSysClose));
  // Wildcard successor: anything goes from that state.
  EXPECT_TRUE(automaton.allows(kern::kSysWrite, kern::kSysOpen));
  // States the automaton never mentions are unconstrained.
  EXPECT_TRUE(automaton.allows(kern::kSysMmap, kern::kSysOpen));
}

policy::Automaton make_predicated_automaton() {
  policy::Automaton automaton;
  automaton.name = "predicated";
  automaton.source = "static";
  automaton.add_edge(policy::kEntryState, kern::kSysOpen);
  // write allowed after open when (rdi in {1,2} && rsi == 0) or (rdx == 7).
  automaton.add_edge(kern::kSysOpen, kern::kSysWrite,
                     policy::PredClause{{0, {1, 2}}, {1, {0}}});
  automaton.add_edge(kern::kSysOpen, kern::kSysWrite,
                     policy::PredClause{{2, {7}}});
  automaton.add_edge(kern::kSysWrite, kern::kSysExitGroup);
  automaton.add_from_any(kern::kSysClose);
  return automaton;
}

TEST(PolicyAutomatonTest, PredicateRoundTripAndSemantics) {
  const policy::Automaton automaton = make_predicated_automaton();
  EXPECT_EQ(automaton.predicated_edge_count(), 1u);
  const std::string text = automaton.serialize();
  auto parsed = policy::Automaton::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), automaton);
  EXPECT_EQ(parsed.value().serialize(), text);

  const std::uint64_t by_clause1[4] = {2, 0, 99, 0};
  const std::uint64_t by_clause2[4] = {9, 9, 7, 0};
  const std::uint64_t neither[4] = {9, 9, 9, 0};
  EXPECT_TRUE(automaton.allows(kern::kSysOpen, kern::kSysWrite, by_clause1));
  EXPECT_TRUE(automaton.allows(kern::kSysOpen, kern::kSysWrite, by_clause2));
  EXPECT_FALSE(automaton.allows(kern::kSysOpen, kern::kSysWrite, neither));
  // Unpredicated paths never consult args.
  EXPECT_TRUE(automaton.allows(kern::kSysOpen, kern::kSysClose, neither));
  EXPECT_TRUE(
      automaton.allows(kern::kSysWrite, kern::kSysExitGroup, neither));
  // nr-granular allows stays predicate-blind.
  EXPECT_TRUE(automaton.allows(kern::kSysOpen, kern::kSysWrite));

  // Re-adding the edge unconstrained widens away the predicate.
  policy::Automaton widened = automaton;
  widened.add_edge(kern::kSysOpen, kern::kSysWrite);
  EXPECT_EQ(widened.predicated_edge_count(), 0u);
  EXPECT_TRUE(widened.allows(kern::kSysOpen, kern::kSysWrite, neither));
}

TEST(PolicyAutomatonTest, MinimizePreservesLanguage) {
  policy::Automaton automaton = make_sample_automaton();
  // A state whose only successor is from_any-covered: prunable to an
  // explicit empty state.
  automaton.add_edge(kern::kSysRead, kern::kSysClose);
  const policy::MinimizeResult min = policy::minimize(automaton);
  EXPECT_TRUE(min.automaton.contains(automaton));
  EXPECT_TRUE(automaton.contains(min.automaton));
  EXPECT_LE(min.states_after, min.states_before);
  EXPECT_GT(min.edges_dropped, 0u);
  // The wildcard state (write -> *) behaves like an unknown state; dropping
  // it changes nothing observable.
  EXPECT_EQ(min.automaton.edges().count(kern::kSysWrite), 0u);
  EXPECT_TRUE(min.automaton.allows(kern::kSysWrite, kern::kSysOpen));
  // read's successor was subsumed by from_any; the state stays explicit so
  // it still denies everything else.
  EXPECT_TRUE(min.automaton.allows(kern::kSysRead, kern::kSysClose));
  EXPECT_FALSE(min.automaton.allows(kern::kSysRead, kern::kSysOpen));
  // The minimized form round-trips through the text format too.
  auto parsed = policy::Automaton::parse(min.automaton.serialize());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), min.automaton);
}

TEST(PolicyAutomatonTest, MinimizeDropsSubsumedPredicates) {
  // A predicated edge whose nr is also globally allowed is redundant: the
  // unconstrained from_any rule already admits every argument vector.
  policy::Automaton automaton = make_predicated_automaton();
  automaton.add_from_any(kern::kSysWrite);
  const policy::MinimizeResult min = policy::minimize(automaton);
  EXPECT_TRUE(min.automaton.contains(automaton));
  EXPECT_TRUE(automaton.contains(min.automaton));
  EXPECT_EQ(min.automaton.predicated_edge_count(), 0u);
  const std::uint64_t neither[4] = {9, 9, 9, 0};
  EXPECT_TRUE(min.automaton.allows(kern::kSysOpen, kern::kSysWrite, neither));
}

TEST(PolicyAutomatonTest, ContainmentAndMerge) {
  const policy::Automaton big = make_sample_automaton();
  policy::Automaton small;
  small.add_edge(policy::kEntryState, kern::kSysGetpid);
  small.add_edge(kern::kSysGetpid, kern::kSysExitGroup);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));

  policy::Automaton extra = small;
  extra.add_edge(kern::kSysGetpid, kern::kSysOpen);
  EXPECT_FALSE(big.contains(extra));

  policy::Automaton merged = small;
  merged.merge(extra);
  EXPECT_TRUE(merged.contains(small));
  EXPECT_TRUE(merged.contains(extra));
}

// --- extraction --------------------------------------------------------------

TEST(PolicyExtractTest, StaticGetpidLoop) {
  const isa::Program program =
      testutil::make_syscall_loop(kern::kSysGetpid, 10);
  const policy::StaticExtraction extraction = policy::extract_static(program);
  EXPECT_EQ(extraction.sites_total, 2u);
  EXPECT_EQ(extraction.sites_resolved, 2u);
  EXPECT_FALSE(extraction.used_wildcard);
  const policy::Automaton& automaton = extraction.automaton;
  EXPECT_TRUE(automaton.allows(policy::kEntryState, kern::kSysGetpid));
  EXPECT_TRUE(automaton.allows(kern::kSysGetpid, kern::kSysGetpid));
  EXPECT_TRUE(automaton.allows(kern::kSysGetpid, kern::kSysExitGroup));
  EXPECT_FALSE(automaton.allows(kern::kSysGetpid, kern::kSysOpen));
  // The zero-iteration path reaches exit_group without ever calling getpid,
  // so the sound static automaton must keep entry -> exit_group.
  EXPECT_TRUE(automaton.allows(policy::kEntryState, kern::kSysExitGroup));
  EXPECT_FALSE(automaton.allows(policy::kEntryState, kern::kSysOpen));
}

TEST(PolicyExtractTest, UnresolvableSiteNumberRoutesToFromAny) {
  // rax comes from a register copy. The block-local scan cannot resolve
  // that, so with dataflow off the site's number is unknowable: its
  // follower must be allowed from every state and the entry successor set
  // degrades to the wildcard. The value-flow analysis tracks the copy and
  // recovers full precision.
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, kern::kSysGetpid);
  a.mov(isa::Gpr::rax, isa::Gpr::rbx);
  a.syscall_();
  apps::emit_exit(a, 0);
  const isa::Program program =
      std::move(isa::make_program("reg-nr", a, entry)).value();

  policy::ExtractOptions local_only;
  local_only.dataflow = false;
  const policy::StaticExtraction extraction =
      policy::extract_static(program, local_only);
  EXPECT_EQ(extraction.sites_total, 2u);
  EXPECT_EQ(extraction.sites_resolved, 1u);  // only the exit_group
  EXPECT_TRUE(extraction.used_wildcard);
  // exit_group follows the unknown site: allowed from anywhere.
  EXPECT_TRUE(extraction.automaton.from_any().count(kern::kSysExitGroup) > 0);

  const policy::StaticExtraction dataflow = policy::extract_static(program);
  EXPECT_EQ(dataflow.sites_resolved, 2u);
  EXPECT_EQ(dataflow.sites_resolved_dataflow, 1u);
  EXPECT_FALSE(dataflow.used_wildcard);
  EXPECT_TRUE(dataflow.automaton.from_any().empty());
  EXPECT_TRUE(
      dataflow.automaton.allows(policy::kEntryState, kern::kSysGetpid));
  EXPECT_FALSE(dataflow.automaton.allows(policy::kEntryState, kern::kSysOpen));
  EXPECT_TRUE(
      dataflow.automaton.allows(kern::kSysGetpid, kern::kSysExitGroup));
}

TEST(PolicyExtractTest, BlockLocalResolvesXorAndMov32Idioms) {
  // The two compiler idioms the block-local fallback must recognize even
  // with dataflow off: xor eax,eax (read = nr 0) and the 32-bit
  // mov eax, imm32 encoding.
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.xor_(isa::Gpr::rax, isa::Gpr::rax);
  a.mov(isa::Gpr::rdi, 0);
  a.mov(isa::Gpr::rsi, 0);
  a.mov(isa::Gpr::rdx, 0);
  a.syscall_();  // read
  a.mov32(isa::Gpr::rax, static_cast<std::uint32_t>(kern::kSysGetpid));
  a.syscall_();  // getpid
  apps::emit_exit(a, 0);
  const isa::Program program =
      std::move(isa::make_program("idioms", a, entry)).value();

  policy::ExtractOptions local_only;
  local_only.dataflow = false;
  const policy::StaticExtraction extraction =
      policy::extract_static(program, local_only);
  EXPECT_EQ(extraction.sites_total, 3u);
  EXPECT_EQ(extraction.sites_resolved, 3u);
  EXPECT_EQ(extraction.sites_resolved_blocklocal, 3u);
  EXPECT_FALSE(extraction.used_wildcard);
  EXPECT_TRUE(extraction.automaton.allows(policy::kEntryState,
                                          kern::kSysRead));
  EXPECT_TRUE(extraction.automaton.allows(kern::kSysRead, kern::kSysGetpid));
  EXPECT_TRUE(
      extraction.automaton.allows(kern::kSysGetpid, kern::kSysExitGroup));
  EXPECT_FALSE(extraction.automaton.allows(kern::kSysRead, kern::kSysOpen));
}

TEST(PolicyExtractTest, DataflowResolvesCrossBlockConstant) {
  // The number is loaded in one block and the syscall sits in another: the
  // block-local scan gives up, the cross-block value flow does not.
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto invoke = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.jmp(invoke);
  a.bind(invoke);
  a.syscall_();
  apps::emit_exit(a, 0);
  const isa::Program program =
      std::move(isa::make_program("cross-block", a, entry)).value();

  policy::ExtractOptions local_only;
  local_only.dataflow = false;
  const policy::StaticExtraction local =
      policy::extract_static(program, local_only);
  EXPECT_EQ(local.sites_resolved, 1u);  // exit_group only
  EXPECT_TRUE(local.used_wildcard);

  const policy::StaticExtraction dataflow = policy::extract_static(program);
  EXPECT_EQ(dataflow.sites_resolved, 2u);
  EXPECT_EQ(dataflow.sites_resolved_blocklocal, 1u);
  EXPECT_EQ(dataflow.sites_resolved_dataflow, 1u);
  EXPECT_FALSE(dataflow.used_wildcard);
}

TEST(PolicyExtractTest, ArgumentPredicatesFromDataflow) {
  // write(1, 0, 0): the constant argument registers become constraints on
  // the edges into the write state.
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rdi, 1);
  a.mov(isa::Gpr::rsi, 0);
  a.mov(isa::Gpr::rdx, 0);
  a.mov(isa::Gpr::rax, kern::kSysWrite);
  a.syscall_();
  apps::emit_exit(a, 0);
  const isa::Program program =
      std::move(isa::make_program("write-const-args", a, entry)).value();

  const policy::StaticExtraction extraction = policy::extract_static(program);
  EXPECT_GE(extraction.predicated_sites, 1u);
  const auto* pred =
      extraction.automaton.predicate(policy::kEntryState, kern::kSysWrite);
  ASSERT_NE(pred, nullptr);
  const std::uint64_t good[4] = {1, 0, 0, 12345};
  const std::uint64_t bad[4] = {2, 0, 0, 12345};
  EXPECT_TRUE(
      extraction.automaton.allows(policy::kEntryState, kern::kSysWrite, good));
  EXPECT_FALSE(
      extraction.automaton.allows(policy::kEntryState, kern::kSysWrite, bad));
  // nr-granular reasoning (containment) stays predicate-blind.
  EXPECT_TRUE(extraction.automaton.allows(policy::kEntryState,
                                          kern::kSysWrite));

  // Predicates off: same edges, no constraints.
  policy::ExtractOptions no_preds;
  no_preds.arg_predicates = false;
  const policy::StaticExtraction plain =
      policy::extract_static(program, no_preds);
  EXPECT_EQ(plain.automaton.predicated_edge_count(), 0u);
  EXPECT_EQ(plain.predicated_sites, 0u);
  EXPECT_TRUE(
      plain.automaton.allows(policy::kEntryState, kern::kSysWrite, bad));
}

TEST(PolicyExtractTest, DynamicLearning) {
  std::vector<std::pair<Tid, std::uint64_t>> stream = {
      {1, kern::kSysGetpid}, {2, kern::kSysOpen},  {1, kern::kSysWrite},
      {2, kern::kSysClose},  {1, kern::kSysWrite},
  };
  const policy::Automaton automaton =
      policy::learn_from_sequence(stream, "two-tasks");
  // Per-tid chains: tid 1 getpid->write->write, tid 2 open->close.
  EXPECT_TRUE(automaton.allows(policy::kEntryState, kern::kSysGetpid));
  EXPECT_TRUE(automaton.allows(policy::kEntryState, kern::kSysOpen));
  EXPECT_TRUE(automaton.allows(kern::kSysGetpid, kern::kSysWrite));
  EXPECT_TRUE(automaton.allows(kern::kSysWrite, kern::kSysWrite));
  EXPECT_TRUE(automaton.allows(kern::kSysOpen, kern::kSysClose));
  // Cross-task pollution must not happen.
  EXPECT_FALSE(automaton.allows(kern::kSysGetpid, kern::kSysClose));

  // An incomplete stream (truncated ring) contributes no entry edges: the
  // entry state is left unconstrained (absent) rather than wrongly claiming
  // the truncated stream's first event as the task's first syscall.
  const policy::Automaton truncated =
      policy::learn_from_sequence(stream, "truncated", /*complete=*/false);
  EXPECT_EQ(truncated.edges().count(policy::kEntryState), 0u);
  EXPECT_TRUE(truncated.allows(kern::kSysGetpid, kern::kSysWrite));
}

TEST(PolicyExtractTest, FlightRecorderLearning) {
  trace::FlightRecorder ring(8);
  auto push_enter = [&](Tid tid, std::uint64_t nr) {
    trace::Event event;
    event.type = trace::EventType::kSyscallEnter;
    event.tid = tid;
    event.a = nr;
    ring.push(event);
  };
  push_enter(1, kern::kSysGetpid);
  push_enter(1, kern::kSysWrite);
  push_enter(1, kern::kSysExitGroup);
  const policy::Automaton automaton =
      policy::learn_from_flight_recorder(ring, "ring");
  EXPECT_TRUE(automaton.allows(policy::kEntryState, kern::kSysGetpid));
  EXPECT_TRUE(automaton.allows(kern::kSysGetpid, kern::kSysWrite));
  EXPECT_TRUE(automaton.allows(kern::kSysWrite, kern::kSysExitGroup));

  // Overflow the ring: learning must drop the (now unreliable) entry edges.
  trace::FlightRecorder tiny(2);
  auto push_tiny = [&](Tid tid, std::uint64_t nr) {
    trace::Event event;
    event.type = trace::EventType::kSyscallEnter;
    event.tid = tid;
    event.a = nr;
    tiny.push(event);
  };
  push_tiny(1, kern::kSysGetpid);
  push_tiny(1, kern::kSysWrite);
  push_tiny(1, kern::kSysExitGroup);
  ASSERT_GT(tiny.dropped(), 0u);
  const policy::Automaton truncated =
      policy::learn_from_flight_recorder(tiny, "tiny");
  EXPECT_EQ(truncated.edges().count(policy::kEntryState), 0u);
  EXPECT_TRUE(truncated.allows(kern::kSysWrite, kern::kSysExitGroup));
}

// --- webserver containment ---------------------------------------------------

struct WebSetup {
  isa::Program program;
  std::vector<Tid> tids;
};

void setup_webserver(Machine& machine, WebSetup* out) {
  machine.mmap_min_addr = 0;
  machine.reseed_rng(0x1A5F'9E37ULL);
  const apps::ServerProfile profile = apps::nginx_profile();
  constexpr std::uint64_t kFileSize = 1024;
  ASSERT_TRUE(machine.vfs().put_file_of_size("index.html", kFileSize).is_ok());
  kern::ClientWorkload client;
  client.connections = 4;
  client.total_requests = 60;
  client.response_bytes = profile.header_bytes + kFileSize;
  const int listener = machine.net().create_listener(client);
  auto program = apps::make_webserver(machine, profile, "index.html");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  out->program = std::move(program).value();
  machine.register_program(out->program);
  for (int worker = 0; worker < 2; ++worker) {
    auto tid = machine.load(out->program);
    ASSERT_TRUE(tid.is_ok());
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(tid.value())->process->install_fd_at(apps::kListenerFd,
                                                           entry);
    out->tids.push_back(tid.value());
  }
}

TEST(PolicyWebserverTest, StaticContainsDynamic) {
  Machine machine;
  WebSetup setup;
  setup_webserver(machine, &setup);
  const policy::StaticExtraction extraction =
      policy::extract_static(setup.program);
  EXPECT_FALSE(extraction.automaton.has_wildcard());
  EXPECT_EQ(extraction.sites_resolved, extraction.sites_total);

  auto tracer = std::make_shared<interpose::TracingHandler>();
  for (const Tid tid : setup.tids) {
    install_mechanism(machine, tid, tracer, Mech::kLazypoline);
  }
  ASSERT_TRUE(machine.run(400'000'000ULL).all_exited);

  std::vector<std::pair<Tid, std::uint64_t>> stream;
  for (const interpose::TraceRecord& record : tracer->trace()) {
    stream.emplace_back(record.tid, record.nr);
  }
  ASSERT_FALSE(stream.empty());
  const policy::Automaton dynamic =
      policy::learn_from_sequence(stream, "webserver");
  EXPECT_TRUE(extraction.automaton.contains(dynamic));
  // The static one must be a strict over-approximation or equal, never
  // smaller.
  EXPECT_GE(extraction.automaton.edge_count(), dynamic.edge_count());
}

// --- lowering ----------------------------------------------------------------

TEST(PolicyCompileTest, FiltersMatchAutomatonAllows) {
  const policy::Automaton automaton = make_sample_automaton();
  auto compiled = policy::compile_to_seccomp(
      automaton, bpf::SECCOMP_RET_ERRNO | std::uint32_t{1});
  ASSERT_TRUE(compiled.is_ok()) << compiled.status().to_string();

  const std::vector<std::uint64_t> probe_nrs = {
      kern::kSysRead,  kern::kSysWrite,    kern::kSysOpen,
      kern::kSysClose, kern::kSysGetpid,   kern::kSysMmap,
      kern::kSysExit,  kern::kSysExitGroup};
  for (const policy::StatePolicy& sp : compiled.value().classes) {
    for (const std::uint64_t state : sp.members) {
      for (const std::uint64_t nr : probe_nrs) {
        bpf::SeccompData data;
        data.nr = static_cast<std::int32_t>(nr);
        data.arch = bpf::kAuditArchX86_64;
        const auto bytes = data.serialize();
        const auto run = bpf::run(sp.filter, bytes);
        ASSERT_TRUE(run.is_ok());
        const bool filter_allows = run.value().value == bpf::SECCOMP_RET_ALLOW;
        EXPECT_EQ(filter_allows, automaton.allows(state, nr))
            << "state " << state << " nr " << nr;
      }
    }
  }
}

TEST(PolicyCompileTest, EquivalentStatesShareOneProgram) {
  policy::Automaton automaton;
  automaton.add_edge(policy::kEntryState, kern::kSysRead);
  automaton.add_edge(policy::kEntryState, kern::kSysWrite);
  automaton.add_edge(kern::kSysRead, kern::kSysClose);
  automaton.add_edge(kern::kSysWrite, kern::kSysClose);  // same behavior
  policy::CompileOptions baseline_opts;
  baseline_opts.share_equivalent_states = false;
  auto shared =
      policy::compile_to_seccomp(automaton, bpf::SECCOMP_RET_KILL_PROCESS);
  auto baseline = policy::compile_to_seccomp(
      automaton, bpf::SECCOMP_RET_KILL_PROCESS, baseline_opts);
  ASSERT_TRUE(shared.is_ok());
  ASSERT_TRUE(baseline.is_ok());
  EXPECT_EQ(shared.value().state_count(), baseline.value().state_count());
  EXPECT_LT(shared.value().class_count(), baseline.value().class_count());
  EXPECT_LT(shared.value().total_filter_insns(),
            baseline.value().total_filter_insns());
  // read and write resolve to the same shared program.
  EXPECT_EQ(shared.value().find(kern::kSysRead),
            shared.value().find(kern::kSysWrite));
  EXPECT_NE(baseline.value().find(kern::kSysRead),
            baseline.value().find(kern::kSysWrite));
}

TEST(PolicyCompileTest, LowersOversizedStateSetsSegmented) {
  // 300 successors is beyond a single 8-bit-offset JEQ chain; the segmented
  // lowering must still produce one valid program with exact membership.
  policy::Automaton automaton;
  for (std::uint64_t nr = 0; nr < 300; ++nr) {
    automaton.add_edge(kern::kSysGetpid, nr);
  }
  auto compiled =
      policy::compile_to_seccomp(automaton, bpf::SECCOMP_RET_KILL_PROCESS);
  ASSERT_TRUE(compiled.is_ok()) << compiled.status().to_string();
  const policy::StatePolicy* sp = compiled.value().find(kern::kSysGetpid);
  ASSERT_NE(sp, nullptr);
  EXPECT_FALSE(sp->wildcard);
  EXPECT_EQ(sp->allowed.size(), 300u);
  for (const std::uint64_t nr : {0ull, 254ull, 255ull, 299ull, 300ull, 400ull}) {
    bpf::SeccompData data;
    data.nr = static_cast<std::int32_t>(nr);
    data.arch = bpf::kAuditArchX86_64;
    const auto bytes = data.serialize();
    const auto run = bpf::run(sp->filter, bytes);
    ASSERT_TRUE(run.is_ok());
    const bool allowed = run.value().value == bpf::SECCOMP_RET_ALLOW;
    EXPECT_EQ(allowed, nr < 300) << "nr " << nr;
  }
}

TEST(PolicyCompileTest, PredicateFiltersCheckArguments) {
  policy::Automaton automaton;
  automaton.add_edge(kern::kSysGetpid, kern::kSysExitGroup);
  // write allowed when (rdi in {1,2} && rsi == 0), or rdx equals a value
  // with a non-zero high word (exercises the 64-bit two-word compare).
  automaton.add_edge(kern::kSysGetpid, kern::kSysWrite,
                     policy::PredClause{{0, {1, 2}}, {1, {0}}});
  automaton.add_edge(kern::kSysGetpid, kern::kSysWrite,
                     policy::PredClause{{2, {(1ULL << 32) | 5}}});
  auto compiled =
      policy::compile_to_seccomp(automaton, bpf::SECCOMP_RET_KILL_PROCESS);
  ASSERT_TRUE(compiled.is_ok()) << compiled.status().to_string();
  const policy::StatePolicy* sp = compiled.value().find(kern::kSysGetpid);
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->predicated.size(), 1u);

  auto probe = [&](std::uint64_t nr, std::uint64_t rdi, std::uint64_t rsi,
                   std::uint64_t rdx) {
    bpf::SeccompData data;
    data.nr = static_cast<std::int32_t>(nr);
    data.arch = bpf::kAuditArchX86_64;
    data.args[0] = rdi;
    data.args[1] = rsi;
    data.args[2] = rdx;
    const auto bytes = data.serialize();
    const auto run = bpf::run(sp->filter, bytes);
    EXPECT_TRUE(run.is_ok());
    return run.value().value == bpf::SECCOMP_RET_ALLOW;
  };
  // Unpredicated member: args never consulted.
  EXPECT_TRUE(probe(kern::kSysExitGroup, 9, 9, 9));
  // Clause 1.
  EXPECT_TRUE(probe(kern::kSysWrite, 1, 0, 0));
  EXPECT_TRUE(probe(kern::kSysWrite, 2, 0, 0));
  EXPECT_FALSE(probe(kern::kSysWrite, 3, 0, 0));
  EXPECT_FALSE(probe(kern::kSysWrite, 1, 7, 0));
  // Clause 2: the full 64-bit value must match, not just the low word.
  EXPECT_TRUE(probe(kern::kSysWrite, 9, 9, (1ULL << 32) | 5));
  EXPECT_FALSE(probe(kern::kSysWrite, 9, 9, 5));
  // Off-automaton nr.
  EXPECT_FALSE(probe(kern::kSysOpen, 1, 0, 0));
  // The seccomp artifact agrees with the automaton's own argument-aware
  // semantics on every probe.
  for (const auto& [nr, args] :
       std::vector<std::pair<std::uint64_t, std::array<std::uint64_t, 4>>>{
           {kern::kSysWrite, {1, 0, 0, 0}},
           {kern::kSysWrite, {3, 0, 0, 0}},
           {kern::kSysWrite, {9, 9, (1ULL << 32) | 5, 0}},
           {kern::kSysExitGroup, {9, 9, 9, 0}}}) {
    std::array<std::uint64_t, 4> reordered = args;
    EXPECT_EQ(probe(nr, args[0], args[1], args[2]),
              automaton.allows(kern::kSysGetpid, nr, reordered.data()))
        << "nr " << nr;
  }
}

// --- enforcement -------------------------------------------------------------

// getpid, then an off-policy write, getpid again, an off-policy nanosleep,
// getpid, exit. Under an automaton allowing only entry->getpid,
// getpid->{getpid, exit_group}, the write and the nanosleep are exactly the
// two violations, and with the deny verdict the guest still terminates.
isa::Program make_violating_guest() {
  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  apps::emit_syscall(a, kern::kSysGetpid);
  a.mov(isa::Gpr::rdi, 1);
  a.mov(isa::Gpr::rsi, 0);
  a.mov(isa::Gpr::rdx, 0);
  apps::emit_syscall(a, kern::kSysWrite);      // violation 1
  apps::emit_syscall(a, kern::kSysGetpid);
  a.mov(isa::Gpr::rdi, 0);
  apps::emit_syscall(a, kern::kSysNanosleep);  // violation 2
  apps::emit_syscall(a, kern::kSysGetpid);
  apps::emit_exit(a, 7);
  return std::move(isa::make_program("violating-guest", a, entry)).value();
}

policy::Automaton make_getpid_only_automaton() {
  policy::Automaton automaton;
  automaton.name = "getpid-only";
  automaton.add_edge(policy::kEntryState, kern::kSysGetpid);
  automaton.add_edge(kern::kSysGetpid, kern::kSysGetpid);
  automaton.add_edge(kern::kSysGetpid, kern::kSysExitGroup);
  return automaton;
}

policy::EnforcerStats run_violating_guest(Mech mech, int* exit_code) {
  Machine machine;
  machine.mmap_min_addr = 0;
  const isa::Program program = make_violating_guest();
  machine.register_program(program);
  auto tid = machine.load(program);
  EXPECT_TRUE(tid.is_ok());
  auto enforcer =
      policy::PolicyEnforcer::create(make_getpid_only_automaton(), {});
  EXPECT_TRUE(enforcer.is_ok());
  install_mechanism(machine, tid.value(), enforcer.value(), mech);
  const auto stats = machine.run(100'000'000ULL);
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  *exit_code = machine.find_task(tid.value())->exit_code;
  return enforcer.value()->stats();
}

void expect_violation_injection(Mech mech) {
  int exit_code = -1;
  const policy::EnforcerStats stats = run_violating_guest(mech, &exit_code);
  // The same verdicts under every mechanism: 6 checked transitions, exactly
  // the write and the nanosleep denied, and the guest still exits cleanly
  // because denial returns -EPERM instead of killing.
  EXPECT_EQ(stats.transitions_checked, 6u);
  EXPECT_EQ(stats.violations, 2u);
  EXPECT_EQ(stats.denied, 2u);
  EXPECT_EQ(stats.killed, 0u);
  EXPECT_EQ(stats.always_allows, 1u);  // the exit_group
  EXPECT_EQ(exit_code, 7);
  // State must NOT advance on a denial: both violations were judged from the
  // getpid state, so getpid's per-state violation counter carries both.
  const auto it = stats.state_violations.find(kern::kSysGetpid);
  ASSERT_NE(it, stats.state_violations.end());
  EXPECT_EQ(it->second, 2u);
}

TEST(PolicyEnforceTest, ViolationInjectionPtrace) {
  expect_violation_injection(Mech::kPtrace);
}
TEST(PolicyEnforceTest, ViolationInjectionSud) {
  expect_violation_injection(Mech::kSud);
}
TEST(PolicyEnforceTest, ViolationInjectionZpoline) {
  expect_violation_injection(Mech::kZpoline);
}
TEST(PolicyEnforceTest, ViolationInjectionLazypoline) {
  expect_violation_injection(Mech::kLazypoline);
}

TEST(PolicyEnforceTest, LogOnlyVerdictExecutesViolations) {
  Machine machine;
  machine.mmap_min_addr = 0;
  const isa::Program program = make_violating_guest();
  machine.register_program(program);
  auto tid = machine.load(program);
  ASSERT_TRUE(tid.is_ok());
  policy::EnforcerOptions options;
  options.verdict = policy::Verdict::kLogOnly;
  auto enforcer =
      policy::PolicyEnforcer::create(make_getpid_only_automaton(), options);
  ASSERT_TRUE(enforcer.is_ok());
  install_mechanism(machine, tid.value(), enforcer.value(),
                    Mech::kLazypoline);
  ASSERT_TRUE(machine.run(100'000'000ULL).all_exited);
  const policy::EnforcerStats stats = enforcer.value()->stats();
  EXPECT_EQ(stats.violations, 2u);
  EXPECT_EQ(stats.logged, 2u);
  EXPECT_EQ(stats.denied, 0u);
}

TEST(PolicyEnforceTest, KillVerdictTerminatesProcess) {
  Machine machine;
  machine.mmap_min_addr = 0;
  const isa::Program program = make_violating_guest();
  machine.register_program(program);
  auto tid = machine.load(program);
  ASSERT_TRUE(tid.is_ok());
  policy::EnforcerOptions options;
  options.verdict = policy::Verdict::kKill;
  auto enforcer =
      policy::PolicyEnforcer::create(make_getpid_only_automaton(), options);
  ASSERT_TRUE(enforcer.is_ok());
  install_mechanism(machine, tid.value(), enforcer.value(),
                    Mech::kLazypoline);
  ASSERT_TRUE(machine.run(100'000'000ULL).all_exited);
  const policy::EnforcerStats stats = enforcer.value()->stats();
  EXPECT_EQ(stats.killed, 1u);
  EXPECT_EQ(stats.violations, 1u);  // killed at the first one
  // SIGSYS-style death, not the guest's own exit(7).
  EXPECT_EQ(machine.find_task(tid.value())->exit_code, 128 + kern::kSigsys);
}

TEST(PolicyEnforceTest, WebserverCleanUnderOwnPolicyAllMechanisms) {
  WebSetup probe;
  {
    Machine machine;
    setup_webserver(machine, &probe);
  }
  const policy::Automaton automaton =
      policy::extract_static(probe.program).automaton;
  for (const Mech mech :
       {Mech::kPtrace, Mech::kSud, Mech::kZpoline, Mech::kLazypoline}) {
    Machine machine;
    WebSetup setup;
    setup_webserver(machine, &setup);
    auto enforcer = policy::PolicyEnforcer::create(automaton, {});
    ASSERT_TRUE(enforcer.is_ok());
    for (const Tid tid : setup.tids) {
      install_mechanism(machine, tid, enforcer.value(), mech);
    }
    ASSERT_TRUE(machine.run(400'000'000ULL).all_exited)
        << machine.last_fatal();
    const policy::EnforcerStats stats = enforcer.value()->stats();
    EXPECT_EQ(stats.violations, 0u);
    EXPECT_GT(stats.transitions_checked, 0u);
  }
}

}  // namespace
