#include <gtest/gtest.h>

#include "apps/coreutils.hpp"
#include "pintool/xstate_tracker.hpp"
#include "sim_test_util.hpp"

namespace lzp::pintool {
namespace {

using apps::LibcProfile;
using kern::Machine;

Report run_with_tracker(const isa::Program& program) {
  Machine machine;
  apps::populate_coreutil_fixtures(machine.vfs());
  XstateTracker tracker;
  tracker.attach(machine);
  auto tid = machine.load(program).value();
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_EQ(machine.find_task(tid)->exit_code, 0);
  return tracker.report();
}

TEST(XstateTrackerTest, DetectsListing1PthreadPattern) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  apps::emit_pthread_init_glibc231(a);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("listing1", a, entry).value();

  const Report report = run_with_tracker(program);
  EXPECT_TRUE(report.any_xstate_expectation());
  ASSERT_GE(report.expectations.size(), 1u);
  bool found = false;
  for (const Expectation& e : report.expectations) {
    if (e.cls == isa::RegClass::kXmm && e.reg_index == 0) {
      found = true;
      // The intervening syscall is one of the two pthread-init syscalls.
      EXPECT_TRUE(e.syscall_nr == kern::kSysSetTidAddress ||
                  e.syscall_nr == kern::kSysSetRobustList);
    }
  }
  EXPECT_TRUE(found) << "xmm0 live across set_tid_address must be flagged";
}

TEST(XstateTrackerTest, DetectsPtmallocGetrandomPattern) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  apps::emit_ptmalloc_init_glibc239(a);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("ptmalloc", a, entry).value();

  const Report report = run_with_tracker(program);
  EXPECT_TRUE(report.any_xstate_expectation());
  bool found = false;
  for (const Expectation& e : report.expectations) {
    if (e.cls == isa::RegClass::kXmm && e.reg_index == 1 &&
        e.syscall_nr == kern::kSysGetrandom) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(XstateTrackerTest, PlainStartupHasNoExpectations) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  apps::emit_plain_startup(a);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("plain", a, entry).value();
  const Report report = run_with_tracker(program);
  EXPECT_FALSE(report.any_xstate_expectation());
}

TEST(XstateTrackerTest, WriteAfterSyscallClearsLiveness) {
  // write xmm; syscall; write xmm again; read — NOT an expectation.
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::r12, 1);
  a.xmov_from_gpr(0, isa::Gpr::r12);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.xmov_from_gpr(0, isa::Gpr::r12);  // overwrite after the syscall
  a.xmov_to_gpr(isa::Gpr::rbx, 0);    // read
  apps::emit_exit(a, 0);
  auto program = isa::make_program("cleared", a, entry).value();
  const Report report = run_with_tracker(program);
  EXPECT_FALSE(report.any_xstate_expectation());
}

TEST(XstateTrackerTest, ReadWithoutInterveningSyscallNotFlagged) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::r12, 1);
  a.xmov_from_gpr(3, isa::Gpr::r12);
  a.xmov_to_gpr(isa::Gpr::rbx, 3);  // read immediately
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  apps::emit_exit(a, 0);
  auto program = isa::make_program("nosyscall", a, entry).value();
  const Report report = run_with_tracker(program);
  EXPECT_FALSE(report.any_xstate_expectation());
}

TEST(XstateTrackerTest, AbiClobberedGprsAreIgnored) {
  // rax/rcx/r11 are clobbered by the syscall ABI; reading them across a
  // syscall is not a preservation expectation.
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rcx, 1);
  a.mov(isa::Gpr::r11, 2);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.add(isa::Gpr::rcx, isa::Gpr::r11);  // reads both
  apps::emit_exit(a, 0);
  auto program = isa::make_program("abiclobber", a, entry).value();
  const Report report = run_with_tracker(program);
  for (const Expectation& e : report.expectations) {
    if (e.cls == isa::RegClass::kGpr) {
      EXPECT_NE(e.reg_index, static_cast<std::uint8_t>(isa::Gpr::rcx));
      EXPECT_NE(e.reg_index, static_cast<std::uint8_t>(isa::Gpr::r11));
      EXPECT_NE(e.reg_index, static_cast<std::uint8_t>(isa::Gpr::rax));
    }
  }
}

TEST(XstateTrackerTest, PreservedGprExpectationIsTracked) {
  // rbx live across a syscall IS an expectation — the kernel honours it, and
  // so must any interposer (the "GPR" rows the paper takes as table stakes).
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 5);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.add(isa::Gpr::rbx, 1);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("gpr-live", a, entry).value();
  const Report report = run_with_tracker(program);
  EXPECT_GE(report.count_for(isa::RegClass::kGpr), 1u);
  EXPECT_FALSE(report.any_xstate_expectation());
}

TEST(XstateTrackerTest, YmmAndX87Expectations) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::r12, 9);
  a.ymov_hi(4, isa::Gpr::r12);
  a.fld(0x3FF0000000000000ULL);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.ymov_rd_hi(isa::Gpr::rbx, 4);
  a.fstp(isa::Gpr::rcx);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("ymmx87", a, entry).value();
  const Report report = run_with_tracker(program);
  EXPECT_GE(report.count_for(isa::RegClass::kYmmHi), 1u);
  EXPECT_GE(report.count_for(isa::RegClass::kX87), 1u);
}

TEST(XstateTrackerTest, ExpectationToStringIsReadable) {
  Expectation e;
  e.cls = isa::RegClass::kXmm;
  e.reg_index = 0;
  e.syscall_nr = kern::kSysSetTidAddress;
  e.read_rip = 0x401000;
  const std::string text = e.to_string();
  EXPECT_NE(text.find("xmm0"), std::string::npos);
  EXPECT_NE(text.find("set_tid_address"), std::string::npos);
}

// --- Table III: the coreutils matrix -------------------------------------------

struct CoreutilCase {
  const char* name;
  bool affected_ubuntu;
};

class TableThreeTest : public ::testing::TestWithParam<CoreutilCase> {};

TEST_P(TableThreeTest, UbuntuMatchesPaperMatrix) {
  const CoreutilCase param = GetParam();
  auto program =
      apps::make_coreutil(param.name, LibcProfile::kUbuntu2004).value();
  const Report report = run_with_tracker(program);
  EXPECT_EQ(report.any_xstate_expectation(), param.affected_ubuntu)
      << param.name << " on Ubuntu 20.04";
}

TEST_P(TableThreeTest, ClearLinuxIsAlwaysAffected) {
  const CoreutilCase param = GetParam();
  auto program =
      apps::make_coreutil(param.name, LibcProfile::kClearLinux).value();
  const Report report = run_with_tracker(program);
  EXPECT_TRUE(report.any_xstate_expectation())
      << param.name << " on Clear Linux (ptmalloc_init affects every binary)";
}

INSTANTIATE_TEST_SUITE_P(
    Coreutils, TableThreeTest,
    ::testing::Values(CoreutilCase{"ls", true}, CoreutilCase{"pwd", false},
                      CoreutilCase{"chmod", false}, CoreutilCase{"mkdir", true},
                      CoreutilCase{"mv", true}, CoreutilCase{"cp", true},
                      CoreutilCase{"rm", false}, CoreutilCase{"touch", false},
                      CoreutilCase{"cat", false}, CoreutilCase{"clear", false}),
    [](const ::testing::TestParamInfo<CoreutilCase>& info) {
      return std::string(info.param.name);
    });

TEST(XstateTrackerTest, ResetClearsState) {
  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  apps::emit_pthread_init_glibc231(a);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("resettable", a, entry).value();

  Machine machine;
  XstateTracker tracker;
  tracker.attach(machine);
  (void)machine.load(program).value();
  machine.run();
  EXPECT_TRUE(tracker.report().any_xstate_expectation());
  tracker.reset();
  EXPECT_TRUE(tracker.report().expectations.empty());
}

}  // namespace
}  // namespace lzp::pintool
