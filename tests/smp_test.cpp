// SMP substrate tests: seeded-schedule determinism, single-CPU bit identity,
// gang placement of CLONE_VM threads, non-gang slice locking + shootdowns,
// and cross-CPU signal delivery through the mailbox.
//
// The determinism oracle is a full run fingerprint: per-tid syscall traces
// (captured by a thread-safe syscall observer), per-task cycle/instruction
// counters, the placement record, and every SmpStats counter. Same seed at
// 4 CPUs must reproduce the fingerprint exactly, run after run; a different
// seed must change placement. All comparisons are integer-exact.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "sim_test_util.hpp"

namespace lzp::kern {
namespace {

// A machine hosting `workers` independent single-task webserver processes,
// each with a private listener (SO_REUSEPORT-style), so the workload is
// parallelizable without sharing beyond the kernel tables.
struct SmpFixture {
  Machine machine;
  std::vector<int> listeners;
  std::vector<Tid> tids;

  explicit SmpFixture(unsigned workers, std::uint64_t requests_each = 30) {
    machine.mmap_min_addr = 0;
    EXPECT_TRUE(machine.vfs().put_file_of_size("index.html", 1024).is_ok());
    auto program = apps::make_webserver(machine, apps::nginx_profile(),
                                        "index.html")
                       .value();
    machine.register_program(program);
    for (unsigned w = 0; w < workers; ++w) {
      ClientWorkload workload;
      workload.connections = 4;
      workload.total_requests = requests_each;
      workload.response_bytes = apps::nginx_profile().header_bytes + 1024;
      const int listener = machine.net().create_listener(workload);
      listeners.push_back(listener);
      const Tid tid = machine.load(program).value();
      FdEntry entry;
      entry.kind = FdEntry::Kind::kListener;
      entry.net_id = listener;
      machine.find_task(tid)->process->install_fd_at(apps::kListenerFd, entry);
      tids.push_back(tid);
    }
  }

  [[nodiscard]] std::uint64_t completed() {
    std::uint64_t total = 0;
    for (int listener : listeners) {
      total += machine.net().completed_requests(listener);
    }
    return total;
  }
};

struct TaskDigest {
  std::uint64_t cycles = 0;
  std::uint64_t insns = 0;
  std::uint64_t syscalls = 0;
  int exit_code = 0;

  bool operator==(const TaskDigest&) const = default;
};

// Everything a run exposes, integer-exact.
struct Fingerprint {
  std::map<Tid, std::vector<std::uint64_t>> syscall_trace;
  std::map<Tid, TaskDigest> tasks;
  std::vector<std::pair<Tid, unsigned>> placement;
  std::uint64_t barriers = 0;
  std::uint64_t steals = 0;
  std::uint64_t shootdowns = 0;
  std::uint64_t mailbox_signals = 0;
  std::uint64_t total_insns = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t completed = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_fingerprinted(unsigned workers, unsigned cpus,
                              std::uint64_t seed) {
  SmpFixture f(workers);
  Fingerprint fp;
  // The observer fires concurrently from the pool's lanes; a task runs on
  // exactly one lane at a time, so per-tid order is that task's program
  // order — the mutex only protects the map across tids.
  std::mutex trace_mu;
  f.machine.add_syscall_observer(
      [&](const Task& task, std::uint64_t nr,
          const std::array<std::uint64_t, 6>&, Machine::SyscallOrigin) {
        std::lock_guard<std::mutex> lock(trace_mu);
        fp.syscall_trace[task.tid].push_back(nr);
      });

  SmpConfig config;
  config.cpus = cpus;
  config.seed = seed;
  const SmpStats stats = f.machine.run_smp(config);
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();

  for (Tid tid : f.machine.task_ids()) {
    const Task* task = f.machine.find_task(tid);
    fp.tasks[tid] = TaskDigest{task->cycles, task->insns_retired,
                               task->syscalls_dispatched, task->exit_code};
  }
  fp.placement = stats.placement;
  fp.barriers = stats.barriers;
  fp.steals = stats.steals;
  fp.shootdowns = stats.shootdowns;
  fp.mailbox_signals = stats.mailbox_signals;
  fp.total_insns = f.machine.total_insns();
  fp.total_cycles = f.machine.total_cycles();
  fp.completed = f.completed();
  return fp;
}

TEST(SmpDeterminismTest, SameSeedIdenticalAcrossTenRuns) {
  const Fingerprint first = run_fingerprinted(6, 4, 11);
  EXPECT_EQ(first.completed, 6u * 30u);
  EXPECT_FALSE(first.placement.empty());
  EXPECT_GT(first.barriers, 0u);
  for (int run = 1; run < 10; ++run) {
    const Fingerprint next = run_fingerprinted(6, 4, 11);
    ASSERT_EQ(first, next) << "run " << run << " diverged";
  }
}

TEST(SmpDeterminismTest, DifferentSeedsChangePlacement) {
  const Fingerprint base = run_fingerprinted(6, 4, 1);
  bool any_difference = false;
  for (std::uint64_t seed = 2; seed <= 6 && !any_difference; ++seed) {
    any_difference = run_fingerprinted(6, 4, seed).placement != base.placement;
  }
  EXPECT_TRUE(any_difference)
      << "placement identical across five different seeds";
}

TEST(SmpDeterminismTest, SingleCpuRunSmpBitIdenticalToRun) {
  SmpFixture serial(4);
  const RunStats ref = serial.machine.run();
  EXPECT_TRUE(ref.all_exited);

  SmpFixture smp(4);
  SmpConfig config;
  config.cpus = 1;
  config.seed = 99;  // must be irrelevant on one CPU
  const SmpStats stats = smp.machine.run_smp(config);
  EXPECT_TRUE(stats.all_exited);

  EXPECT_EQ(serial.machine.total_cycles(), smp.machine.total_cycles());
  EXPECT_EQ(serial.machine.total_insns(), smp.machine.total_insns());
  EXPECT_EQ(serial.machine.total_steps(), smp.machine.total_steps());
  for (Tid tid : serial.machine.task_ids()) {
    const Task* a = serial.machine.find_task(tid);
    const Task* b = smp.machine.find_task(tid);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->cycles, b->cycles) << "tid " << tid;
    EXPECT_EQ(a->insns_retired, b->insns_retired) << "tid " << tid;
  }
  EXPECT_EQ(serial.completed(), smp.completed());
}

// Independent workers do identical per-task work no matter how many CPUs
// execute them: the 4-CPU run is a pure reshuffle of the 1-CPU run.
TEST(SmpDeterminismTest, FourCpuMatchesSingleCpuPerTaskWork) {
  SmpFixture serial(6);
  EXPECT_TRUE(serial.machine.run().all_exited);

  SmpFixture smp(6);
  SmpConfig config;
  config.cpus = 4;
  config.seed = 3;
  EXPECT_TRUE(smp.machine.run_smp(config).all_exited)
      << smp.machine.last_fatal();

  EXPECT_EQ(serial.completed(), smp.completed());
  for (Tid tid : serial.machine.task_ids()) {
    const Task* a = serial.machine.find_task(tid);
    const Task* b = smp.machine.find_task(tid);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->insns_retired, b->insns_retired) << "tid " << tid;
    EXPECT_EQ(a->syscalls_dispatched, b->syscalls_dispatched) << "tid " << tid;
    EXPECT_EQ(a->exit_code, b->exit_code) << "tid " << tid;
  }
}

// CLONE_VM threads under lazypoline: the gang invariant keeps every sharer
// on one CPU, so the threaded server runs under run_smp with zero locking
// inside the slice and still serves the full workload.
TEST(SmpGangTest, ClonedVmServerStaysCoLocated) {
  Machine machine;
  machine.mmap_min_addr = 0;
  ASSERT_TRUE(machine.vfs().put_file_of_size("index.html", 2048).is_ok());
  ClientWorkload workload;
  workload.connections = 12;
  workload.total_requests = 200;
  workload.response_bytes = apps::nginx_profile().header_bytes + 2048;
  const int listener = machine.net().create_listener(workload);

  auto program = apps::make_threaded_webserver(machine, apps::nginx_profile(),
                                               "index.html", 4)
                     .value();
  machine.register_program(program);
  const Tid main_tid = machine.load(program).value();
  FdEntry entry;
  entry.kind = FdEntry::Kind::kListener;
  entry.net_id = listener;
  machine.find_task(main_tid)->process->install_fd_at(apps::kListenerFd,
                                                      entry);
  auto handler = std::make_shared<interpose::TracingHandler>();
  auto runtime = core::Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime->install(machine, main_tid, handler).is_ok());

  SmpConfig config;
  config.cpus = 4;
  config.seed = 5;
  const SmpStats stats = machine.run_smp(config);
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_EQ(machine.net().completed_requests(listener), 200u);
  EXPECT_EQ(machine.task_ids().size(), 4u);

  std::set<unsigned> cpus_used;
  for (Tid tid : machine.task_ids()) {
    cpus_used.insert(machine.find_task(tid)->cpu);
  }
  EXPECT_EQ(cpus_used.size(), 1u) << "gang group split across CPUs";
  // Co-located sharers never need a cross-CPU invalidation.
  EXPECT_EQ(stats.shootdowns, 0u);
}

// gang_shared=false: CLONE_VM threads may land on different CPUs; slices
// serialize through the per-AS lock and lazypoline's self-modifying rewrites
// reach the spread-out siblings as counted shootdowns.
TEST(SmpGangTest, NonGangSpreadServesAndShootsDown) {
  Machine machine;
  machine.mmap_min_addr = 0;
  ASSERT_TRUE(machine.vfs().put_file_of_size("index.html", 2048).is_ok());
  ClientWorkload workload;
  workload.connections = 12;
  workload.total_requests = 200;
  workload.response_bytes = apps::nginx_profile().header_bytes + 2048;
  const int listener = machine.net().create_listener(workload);

  auto program = apps::make_threaded_webserver(machine, apps::nginx_profile(),
                                               "index.html", 4)
                     .value();
  machine.register_program(program);
  const Tid main_tid = machine.load(program).value();
  FdEntry entry;
  entry.kind = FdEntry::Kind::kListener;
  entry.net_id = listener;
  machine.find_task(main_tid)->process->install_fd_at(apps::kListenerFd,
                                                      entry);
  auto handler = std::make_shared<interpose::TracingHandler>();
  auto runtime = core::Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime->install(machine, main_tid, handler).is_ok());

  SmpConfig config;
  config.cpus = 4;
  config.seed = 5;
  config.gang_shared = false;
  const SmpStats stats = machine.run_smp(config);
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_EQ(machine.net().completed_requests(listener), 200u);

  std::set<unsigned> cpus_used;
  for (Tid tid : machine.task_ids()) {
    cpus_used.insert(machine.find_task(tid)->cpu);
  }
  if (cpus_used.size() > 1) {
    EXPECT_GT(stats.shootdowns, 0u)
        << "spread CLONE_VM siblings saw no SMC shootdown";
  }
}

// A kill() aimed at a task on another CPU travels through the signal
// mailbox and lands at the next barrier.
TEST(SmpSignalTest, CrossCpuKillDeliversViaMailbox) {
  Machine machine;
  machine.mmap_min_addr = 0;
  auto looper =
      testutil::make_syscall_loop(kSysSchedYield, 10'000'000, "victim");
  machine.register_program(looper);
  const Tid victim = machine.load(looper).value();

  isa::Assembler a;
  const auto entry = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rdi,
        static_cast<std::uint64_t>(machine.find_task(victim)->process->pid));
  a.mov(isa::Gpr::rsi, kSigkill);
  apps::emit_syscall(a, kSysKill);
  apps::emit_exit(a, 0);
  auto killer_program = isa::make_program("killer", a, entry).value();
  machine.register_program(killer_program);
  const Tid killer = machine.load(killer_program).value();

  // Two single-task groups on two CPUs: the rebalancer forces one per CPU,
  // so the kill is cross-CPU for every seed.
  SmpConfig config;
  config.cpus = 2;
  config.seed = 1;
  const SmpStats stats = machine.run_smp(config);
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_NE(machine.find_task(victim)->cpu, machine.find_task(killer)->cpu);
  EXPECT_GE(stats.mailbox_signals, 1u);
  EXPECT_EQ(machine.find_task(killer)->exit_code, 0);
  EXPECT_EQ(machine.find_task(victim)->exit_code, 128 + kSigkill);
}

}  // namespace
}  // namespace lzp::kern
