// Second lazypoline suite: SYSENTER rewriting, nested signal handling,
// emulation/argument-rewriting handlers end-to-end, repeated JIT
// generations, SIGSYS forwarding, and interposer-visible site addresses.
#include <gtest/gtest.h>

#include "apps/jitcc.hpp"
#include "core/lazypoline.hpp"
#include "sim_test_util.hpp"

namespace lzp::core {
namespace {

using interpose::TracingHandler;
using kern::Machine;
using kern::Tid;

struct LazyFixture {
  Machine machine;
  Tid tid = 0;
  std::shared_ptr<TracingHandler> handler = std::make_shared<TracingHandler>();
  std::shared_ptr<Lazypoline> runtime;

  explicit LazyFixture(const isa::Program& program,
                       LazypolineConfig config = {}) {
    machine.mmap_min_addr = 0;
    machine.register_program(program);
    tid = machine.load(program).value();
    runtime = Lazypoline::create(machine, config);
    auto status = runtime->install(machine, tid, handler);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  }
  kern::Task* task() { return machine.find_task(tid); }
};

TEST(Lazypoline2Test, SysenterSitesAreDiscoveredAndRewritten) {
  // The paper's "syscall instruction" covers SYSCALL and SYSENTER — both
  // 2-byte encodings, both rewritable to CALL RAX.
  isa::Assembler a;
  auto entry = a.new_label();
  auto loop = a.new_label();
  auto done = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 10);
  a.bind(loop);
  a.cmp(isa::Gpr::rbx, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.sysenter_();  // legacy entry instruction
  a.sub(isa::Gpr::rbx, 1);
  a.jmp(loop);
  a.bind(done);
  apps::emit_exit(a, 0);
  auto program = isa::make_program("sysenter-loop", a, entry).value();

  LazyFixture f(program);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.handler->trace().size(), 11u);
  EXPECT_EQ(f.runtime->stats().slow_path_hits, 2u);  // sysenter site + exit
  // The sysenter bytes were rewritten in place.
  std::uint8_t bytes[2];
  const std::uint64_t site = program.true_syscall_addresses()[0];
  ASSERT_TRUE(f.task()->mem->read_force(site, bytes).is_ok());
  EXPECT_EQ(bytes[0], isa::kByteFF);
  EXPECT_EQ(bytes[1], isa::kByteCallRax2);
}

TEST(Lazypoline2Test, NestedApplicationSignals) {
  // A SIGUSR1 handler that is itself interrupted by SIGUSR2: the selector
  // sigreturn stack must nest and unwind in order (Figure 3, generalized).
  isa::Assembler a;
  auto entry = a.new_label();
  auto usr1_code = a.new_label();
  auto usr2_code = a.new_label();
  auto wait_loop = a.new_label();

  a.bind(entry);
  a.mov(isa::Gpr::rbx, apps::kDataBase);
  a.jmp(wait_loop);

  // SIGUSR2 handler: one syscall, mark flag2.
  a.bind(usr2_code);
  a.mov(isa::Gpr::rax, kern::kSysGettid);
  a.syscall_();
  a.mov(isa::Gpr::rcx, 1);
  a.store(isa::Gpr::rbx, 0x310, isa::Gpr::rcx);
  a.ret();

  // SIGUSR1 handler: spins until flag2 is set (SIGUSR2 arrives meanwhile),
  // then marks flag1.
  a.bind(usr1_code);
  auto inner_wait = a.new_label();
  a.bind(inner_wait);
  a.mov(isa::Gpr::rax, kern::kSysSchedYield);
  a.syscall_();
  a.load(isa::Gpr::rcx, isa::Gpr::rbx, 0x310);
  a.cmp(isa::Gpr::rcx, 1);
  a.jnz(inner_wait);
  a.mov(isa::Gpr::rcx, 1);
  a.store(isa::Gpr::rbx, 0x300, isa::Gpr::rcx);
  a.ret();

  a.bind(wait_loop);
  // Register both handlers (addresses patched in by the harness).
  for (int which = 0; which < 2; ++which) {
    const std::int32_t slot = which == 0 ? 0x200 : 0x208;
    const int sig = which == 0 ? kern::kSigusr1 : kern::kSigusr2;
    a.load(isa::Gpr::rcx, isa::Gpr::rbx, slot);
    a.store(isa::Gpr::rbx, 0, isa::Gpr::rcx);
    a.mov(isa::Gpr::rcx, 0);
    a.store(isa::Gpr::rbx, 8, isa::Gpr::rcx);
    a.store(isa::Gpr::rbx, 16, isa::Gpr::rcx);
    a.mov(isa::Gpr::rdi, static_cast<std::uint64_t>(sig));
    a.mov(isa::Gpr::rsi, apps::kDataBase);
    a.mov(isa::Gpr::rdx, 0);
    apps::emit_syscall(a, kern::kSysRtSigaction);
  }
  auto outer_wait = a.new_label();
  a.bind(outer_wait);
  a.mov(isa::Gpr::rax, kern::kSysSchedYield);
  a.syscall_();
  a.load(isa::Gpr::rcx, isa::Gpr::rbx, 0x300);
  a.cmp(isa::Gpr::rcx, 1);
  a.jnz(outer_wait);
  apps::emit_exit(a, 0);

  const std::uint64_t usr1_offset = a.label_offset(usr1_code).value();
  const std::uint64_t usr2_offset = a.label_offset(usr2_code).value();
  auto program = isa::make_program("nested-signals", a, entry).value();

  LazyFixture f(program);
  ASSERT_TRUE(f.task()
                  ->mem
                  ->write_u64(apps::kDataBase + 0x200,
                              program.base + usr1_offset)
                  .is_ok());
  ASSERT_TRUE(f.task()
                  ->mem
                  ->write_u64(apps::kDataBase + 0x208,
                              program.base + usr2_offset)
                  .is_ok());

  // Let registration complete, deliver SIGUSR1, let the handler start
  // spinning, then deliver SIGUSR2 on top of it.
  f.machine.run(6000);
  ASSERT_TRUE(f.task()->runnable()) << f.machine.last_fatal();
  kern::SigInfo usr1;
  usr1.signo = kern::kSigusr1;
  f.task()->pending_signals.push_back(usr1);
  f.machine.run(6000);
  ASSERT_TRUE(f.task()->runnable()) << f.machine.last_fatal();
  kern::SigInfo usr2;
  usr2.signo = kern::kSigusr2;
  f.task()->pending_signals.push_back(usr2);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();

  EXPECT_EQ(f.task()->exit_code, 0);
  EXPECT_GE(f.runtime->stats().signals_wrapped, 2u);
  EXPECT_GE(f.runtime->stats().sigreturns_trampolined, 2u);
  EXPECT_TRUE(f.task()->signal_frames.empty());
  // Both handlers' syscalls were interposed.
  const auto numbers = f.handler->traced_numbers();
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGettid}) != numbers.end());
}

TEST(Lazypoline2Test, PidCachingEmulationEndToEnd) {
  // Use case (iii): emulate getpid from a cache — only the first invocation
  // reaches the kernel.
  const std::uint64_t iterations = 25;
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);
  Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto handler = std::make_shared<interpose::PidCachingHandler>();
  auto runtime = Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());
  machine.run();

  EXPECT_EQ(handler->cache_hits(), iterations - 1);
  // Kernel saw 1 getpid + lazypoline's own work + exit, not 25 getpids.
  EXPECT_EQ(runtime->stats().entry_invocations, iterations + 1);
}

TEST(Lazypoline2Test, ArgumentRewritingHandler) {
  // An interposer that redirects open("prod.conf") to open("test.conf") —
  // argument rewriting with deep inspection.
  class RedirectHandler final : public interpose::SyscallHandler {
   public:
    std::uint64_t handle(interpose::InterposeContext& ctx) override {
      if (ctx.request().nr == kern::kSysOpen) {
        auto path = ctx.read_cstring(ctx.request().args[0]);
        if (path.is_ok() && path.value() == "prod.conf") {
          // Plant the replacement path in guest memory and point arg0 at it.
          static constexpr char kReplacement[] = "test.conf";
          const std::uint64_t scratch = kern::Machine::kDataRegionBase + 0x900;
          (void)ctx.write_bytes(
              scratch, {reinterpret_cast<const std::uint8_t*>(kReplacement),
                        sizeof(kReplacement)});
          ctx.mutable_request().args[0] = scratch;
        }
      }
      return ctx.pass_through();
    }
    std::string name() const override { return "redirect"; }
  };

  isa::Assembler a;
  auto entry = a.new_label();
  a.bind(entry);
  const std::uint64_t path = apps::embed_string(a, "prod.conf");
  a.mov(isa::Gpr::rdi, path);
  a.mov(isa::Gpr::rsi, 0);
  apps::emit_syscall(a, kern::kSysOpen);
  a.mov(isa::Gpr::rbx, isa::Gpr::rax);
  a.mov(isa::Gpr::rdi, isa::Gpr::rbx);
  a.mov(isa::Gpr::rsi, apps::kScratchBuf);
  a.mov(isa::Gpr::rdx, 10);
  apps::emit_syscall(a, kern::kSysRead);
  a.mov(isa::Gpr::rdi, isa::Gpr::rax);  // exit code = bytes read
  apps::emit_syscall(a, kern::kSysExitGroup);
  auto program = isa::make_program("redirected", a, entry).value();

  Machine machine;
  machine.mmap_min_addr = 0;
  (void)machine.vfs().put_file("test.conf", {'T', 'E', 'S', 'T'});
  // prod.conf deliberately absent: without redirection the open fails.
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto runtime = Lazypoline::create(machine, {});
  ASSERT_TRUE(
      runtime->install(machine, tid, std::make_shared<RedirectHandler>())
          .is_ok());
  machine.run();
  EXPECT_EQ(machine.find_task(tid)->exit_code, 4);  // read "TEST"
}

TEST(Lazypoline2Test, RepeatedJitGenerationsAllDiscovered) {
  // Two separate JIT "generations" in one process: a runner that compiles
  // and calls generated code twice would exercise re-discovery. We model it
  // with two sequential jit runners chained via execve.
  Machine machine;
  machine.mmap_min_addr = 0;
  const std::string src1 = "int main() { return syscall1(39, 0); }";
  const std::string src2 = "int main() { return syscall1(186, 0); }";
  (void)machine.vfs().put_file(
      "one.c", std::vector<std::uint8_t>(src1.begin(), src1.end()));
  (void)machine.vfs().put_file(
      "two.c", std::vector<std::uint8_t>(src2.begin(), src2.end()));
  auto runner2 = apps::make_jit_runner(machine, "two.c").value();
  runner2.program.name = "runner-two";
  machine.register_program(runner2.program);

  // Runner one, modified to exec runner-two instead of exiting... simpler:
  // run them back-to-back in two processes under one runtime.
  auto runner1 = apps::make_jit_runner(machine, "one.c").value();
  machine.register_program(runner1.program);

  auto handler = std::make_shared<TracingHandler>();
  auto runtime = Lazypoline::create(machine, {});

  auto tid1 = machine.load(runner1.program).value();
  ASSERT_TRUE(runtime->install(machine, tid1, handler).is_ok());
  machine.run();
  auto tid2 = machine.load(runner2.program).value();
  ASSERT_TRUE(runtime->install(machine, tid2, handler).is_ok());
  machine.run();

  const auto numbers = handler->traced_numbers();
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGetpid}) != numbers.end());
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGettid}) != numbers.end());
  EXPECT_EQ(machine.find_task(tid1)->exit_code, 100);  // pid
  EXPECT_EQ(machine.find_task(tid2)->exit_code,
            static_cast<int>(machine.find_task(tid2)->tid));
}

TEST(Lazypoline2Test, SiteAddressIsReportedToHandler) {
  // The handler sees the address of the invoking syscall instruction (site),
  // both via the slow path (first use) and the fast path (later uses).
  class SiteCollector final : public interpose::SyscallHandler {
   public:
    std::uint64_t handle(interpose::InterposeContext& ctx) override {
      sites.push_back(ctx.request().site);
      return ctx.pass_through();
    }
    std::string name() const override { return "sites"; }
    std::vector<std::uint64_t> sites;
  };

  const std::uint64_t iterations = 5;
  auto program = testutil::make_syscall_loop(kern::kSysGetpid, iterations);
  Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto handler = std::make_shared<SiteCollector>();
  auto runtime = Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime->install(machine, tid, handler).is_ok());
  machine.run();

  const auto truth = program.true_syscall_addresses();
  ASSERT_EQ(handler->sites.size(), iterations + 1);
  for (std::size_t i = 0; i < iterations; ++i) {
    EXPECT_EQ(handler->sites[i], truth[0]) << "iteration " << i;
  }
  EXPECT_EQ(handler->sites.back(), truth[1]);  // the exit_group site
}


TEST(Lazypoline2Test, SignalArrivingAtInterposerEntryPreservesAllowSelector) {
  // Figure-3 corner case: the slow path (or the trampoline) has set rip to
  // the interposer entry and the selector is ALLOW, but a signal lands
  // BEFORE the entry executes. The wrapper must push the *current* (ALLOW)
  // selector, run the application handler under BLOCK, and the sigreturn
  // trampoline must restore ALLOW so the pending interposition proceeds.
  isa::Assembler a;
  auto entry = a.new_label();
  auto handler_code = a.new_label();
  auto loop = a.new_label();
  auto done = a.new_label();

  a.bind(entry);
  a.mov(isa::Gpr::rbx, apps::kDataBase);
  // Register the SIGUSR1 handler (absolute address patched in by the test).
  a.load(isa::Gpr::rcx, isa::Gpr::rbx, 0x200);
  a.store(isa::Gpr::rbx, 0, isa::Gpr::rcx);
  a.mov(isa::Gpr::rcx, 0);
  a.store(isa::Gpr::rbx, 8, isa::Gpr::rcx);
  a.store(isa::Gpr::rbx, 16, isa::Gpr::rcx);
  a.mov(isa::Gpr::rdi, kern::kSigusr1);
  a.mov(isa::Gpr::rsi, apps::kDataBase);
  a.mov(isa::Gpr::rdx, 0);
  apps::emit_syscall(a, kern::kSysRtSigaction);
  // A getpid loop long enough to catch rip at the entry mid-run.
  a.mov(isa::Gpr::r12, 50);
  a.bind(loop);
  a.cmp(isa::Gpr::r12, 0);
  a.jz(done);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.sub(isa::Gpr::r12, 1);
  a.jmp(loop);
  a.bind(done);
  a.load(isa::Gpr::rdi, isa::Gpr::rbx, 0x300);  // exit code = handler flag
  apps::emit_syscall(a, kern::kSysExitGroup);

  a.bind(handler_code);
  a.mov(isa::Gpr::rax, kern::kSysGettid);  // interposed inside the handler
  a.syscall_();
  a.mov(isa::Gpr::rcx, 1);
  a.store(isa::Gpr::rbx, 0x300, isa::Gpr::rcx);
  a.ret();

  const std::uint64_t handler_offset = a.label_offset(handler_code).value();
  auto program = isa::make_program("entry-interrupt", a, entry).value();

  LazyFixture f(program);
  kern::Task* task = f.task();
  ASSERT_TRUE(task->mem
                  ->write_u64(apps::kDataBase + 0x200,
                              program.base + handler_offset)
                  .is_ok());

  // rip only parks at the entry's host address on slow-path redirects (the
  // fast path dispatches through HOSTCALL within a single step). Hit 1 is
  // the rt_sigaction registration; hit 2 is the getpid site's first use —
  // registration is complete there, so inject SIGUSR1 at that boundary.
  int entry_hits = 0;
  bool injected = false;
  for (int i = 0; i < 200000 && task->runnable(); ++i) {
    if (!injected && task->ctx.rip == f.runtime->entry_address()) {
      if (++entry_hits == 2) {
        kern::SigInfo info;
        info.signo = kern::kSigusr1;
        task->pending_signals.push_back(info);
        injected = true;
      }
    }
    f.machine.run_slice(*task, 1);
  }
  ASSERT_TRUE(injected) << "never observed rip at the interposer entry";
  EXPECT_FALSE(task->runnable());

  // The handler ran (exit code carries its flag), its gettid was interposed,
  // the interrupted getpid interposition still completed, and everything
  // unwound.
  EXPECT_EQ(task->exit_code, 1);
  const auto numbers = f.handler->traced_numbers();
  EXPECT_TRUE(std::find(numbers.begin(), numbers.end(),
                        std::uint64_t{kern::kSysGettid}) != numbers.end());
  EXPECT_EQ(std::count(numbers.begin(), numbers.end(),
                       std::uint64_t{kern::kSysGetpid}),
            50);
  EXPECT_TRUE(task->signal_frames.empty());
  EXPECT_GE(f.runtime->stats().signals_wrapped, 1u);
  EXPECT_GE(f.runtime->stats().sigreturns_trampolined, 1u);
}


TEST(Lazypoline2Test, FaultInjectionCampaignEndToEnd) {
  // Reliability testing (paper intro use case i/ii): getpid fails with
  // EINTR on every attempt; the guest retries up to 3 times and reports how
  // it gave up. Under an exhaustive interposer no attempt escapes the
  // campaign.
  isa::Assembler a;
  auto entry = a.new_label();
  auto again = a.new_label();
  auto success = a.new_label();
  auto giveup = a.new_label();
  a.bind(entry);
  a.mov(isa::Gpr::rbx, 0);  // EINTR counter
  a.bind(again);
  a.mov(isa::Gpr::rax, kern::kSysGetpid);
  a.syscall_();
  a.cmp(isa::Gpr::rax, 0);
  a.jgt(success);           // positive pid: not injected
  a.add(isa::Gpr::rbx, 1);
  a.cmp(isa::Gpr::rbx, 3);
  a.jz(giveup);
  a.jmp(again);
  a.bind(success);
  apps::emit_exit(a, 0);
  a.bind(giveup);
  apps::emit_exit(a, 77);
  auto program = isa::make_program("giveup-loop", a, entry).value();

  Machine machine;
  machine.mmap_min_addr = 0;
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto always_fail = std::make_shared<interpose::FaultInjectionHandler>(
      interpose::FaultInjectionHandler::Config{kern::kSysGetpid,
                                               /*every_nth=*/1, kern::kEINTR});
  auto runtime = Lazypoline::create(machine, {});
  ASSERT_TRUE(runtime->install(machine, tid, always_fail).is_ok());
  auto stats = machine.run();
  EXPECT_TRUE(stats.all_exited) << machine.last_fatal();
  EXPECT_EQ(machine.find_task(tid)->exit_code, 77) << "gave up after 3 EINTRs";
  EXPECT_EQ(always_fail->injected(), 3u);
  EXPECT_EQ(always_fail->observed(), 3u);

  // Sparse campaign: every 2nd getpid fails; a 6-attempt loop sees exactly
  // 3 injections and 3 real results.
  auto loop = testutil::make_syscall_loop(kern::kSysGetpid, 6);
  Machine machine2;
  machine2.mmap_min_addr = 0;
  machine2.register_program(loop);
  auto tid2 = machine2.load(loop).value();
  auto sparse = std::make_shared<interpose::FaultInjectionHandler>(
      interpose::FaultInjectionHandler::Config{kern::kSysGetpid,
                                               /*every_nth=*/2, kern::kEINTR});
  auto runtime2 = Lazypoline::create(machine2, {});
  ASSERT_TRUE(runtime2->install(machine2, tid2, sparse).is_ok());
  machine2.run();
  EXPECT_EQ(sparse->observed(), 6u);
  EXPECT_EQ(sparse->injected(), 3u);
}

TEST(Lazypoline2Test, InstallOnWrongMachineIsRejected) {
  Machine machine_a;
  Machine machine_b;
  machine_a.mmap_min_addr = 0;
  machine_b.mmap_min_addr = 0;
  auto program = testutil::make_getpid_once();
  machine_a.register_program(program);
  auto tid = machine_a.load(program).value();
  auto runtime = Lazypoline::create(machine_b, {});
  auto status = runtime->install(machine_a, tid,
                                 std::make_shared<TracingHandler>());
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(Lazypoline2Test, FastPathRequiresMmapMinAddrZero) {
  Machine machine;  // default min addr (trampoline impossible)
  auto program = testutil::make_getpid_once();
  machine.register_program(program);
  auto tid = machine.load(program).value();
  auto runtime = Lazypoline::create(machine, {});
  auto status =
      runtime->install(machine, tid, std::make_shared<TracingHandler>());
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);

  // Pure-SUD mode works without VA 0.
  LazypolineConfig config;
  config.rewrite_to_fast_path = false;
  auto handler = std::make_shared<TracingHandler>();
  auto sud_only = Lazypoline::create(machine, config);
  ASSERT_TRUE(sud_only->install(machine, tid, handler).is_ok());
  machine.run();
  EXPECT_EQ(handler->trace().size(), 2u);
}

}  // namespace
}  // namespace lzp::core
