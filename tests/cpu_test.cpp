#include <gtest/gtest.h>

#include "cpu/execute.hpp"
#include "isa/assemble.hpp"

namespace lzp::cpu {
namespace {

using isa::Assembler;
using isa::Gpr;

constexpr std::uint64_t kCodeBase = 0x40'0000;
constexpr std::uint64_t kStackBase = 0x80'0000;
constexpr std::uint64_t kDataBase = 0x60'0000;

struct Fixture {
  mem::AddressSpace as;
  CpuContext ctx;

  explicit Fixture(Assembler& assembler,
                   std::uint8_t code_prot = mem::kProtRead | mem::kProtExec) {
    auto code = assembler.finish().value();
    EXPECT_TRUE(as.map(kCodeBase, code.size(), code_prot, true).is_ok());
    EXPECT_TRUE(as.write_force(kCodeBase, code).is_ok());
    EXPECT_TRUE(
        as.map(kStackBase, 4096, mem::kProtRead | mem::kProtWrite, true).is_ok());
    EXPECT_TRUE(
        as.map(kDataBase, 4096, mem::kProtRead | mem::kProtWrite, true).is_ok());
    ctx.rip = kCodeBase;
    ctx.set_rsp(kStackBase + 4096 - 64);
  }

  // Steps until a non-continue outcome or `max` instructions.
  ExecResult run(std::size_t max = 1000) {
    ExecResult last;
    for (std::size_t i = 0; i < max; ++i) {
      last = step(ctx, as);
      if (last.kind != ExecKind::kContinue) return last;
    }
    return last;
  }
};

TEST(CpuTest, MovAndArithmetic) {
  Assembler a;
  a.mov(Gpr::rax, 10);
  a.mov(Gpr::rbx, 3);
  a.add(Gpr::rax, Gpr::rbx);   // 13
  a.sub(Gpr::rax, 1);          // 12
  a.mul(Gpr::rax, Gpr::rbx);   // 36
  a.hlt();
  Fixture f(a);
  EXPECT_EQ(f.run().kind, ExecKind::kHlt);
  EXPECT_EQ(f.ctx.reg(Gpr::rax), 36u);
}

TEST(CpuTest, PushPopCallRet) {
  Assembler a;
  auto fn = a.new_label();
  a.mov(Gpr::rcx, 5);
  a.call(fn);
  a.hlt();
  a.bind(fn);
  a.push(Gpr::rcx);
  a.mov(Gpr::rcx, 99);
  a.pop(Gpr::rcx);
  a.ret();
  Fixture f(a);
  EXPECT_EQ(f.run().kind, ExecKind::kHlt);
  EXPECT_EQ(f.ctx.reg(Gpr::rcx), 5u);
}

TEST(CpuTest, ConditionalBranches) {
  Assembler a;
  auto less = a.new_label();
  auto end = a.new_label();
  a.mov(Gpr::rax, 2);
  a.cmp(Gpr::rax, 5);
  a.jlt(less);
  a.mov(Gpr::rbx, 0);
  a.jmp(end);
  a.bind(less);
  a.mov(Gpr::rbx, 1);
  a.bind(end);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_EQ(f.ctx.reg(Gpr::rbx), 1u);
}

TEST(CpuTest, FlagsSignedComparison) {
  Assembler a;
  a.mov(Gpr::rax, static_cast<std::uint64_t>(-3));
  a.cmp(Gpr::rax, 2);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_TRUE(f.ctx.flags.lt);
  EXPECT_FALSE(f.ctx.flags.zf);
  EXPECT_FALSE(f.ctx.flags.gt);
}

TEST(CpuTest, LoadStoreMemory) {
  Assembler a;
  a.mov(Gpr::rbx, kDataBase);
  a.mov(Gpr::rcx, 0x5555);
  a.store(Gpr::rbx, 16, Gpr::rcx);
  a.load(Gpr::rdx, Gpr::rbx, 16);
  a.mov(Gpr::rcx, 0xAB);
  a.store8(Gpr::rbx, 100, Gpr::rcx);
  a.load8(Gpr::rsi, Gpr::rbx, 100);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_EQ(f.ctx.reg(Gpr::rdx), 0x5555u);
  EXPECT_EQ(f.ctx.reg(Gpr::rsi), 0xABu);
}

TEST(CpuTest, GsRelativeAccess) {
  Assembler a;
  a.mov(Gpr::rax, kDataBase);
  a.wrgs(Gpr::rax);
  a.mov(Gpr::rbx, 0x77);
  a.store_gs8(5, Gpr::rbx);
  a.load_gs8(Gpr::rcx, 5);
  a.rdgs(Gpr::rdx);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_EQ(f.ctx.reg(Gpr::rcx), 0x77u);
  EXPECT_EQ(f.ctx.reg(Gpr::rdx), kDataBase);
  EXPECT_EQ(f.as.read_u8(kDataBase + 5).value(), 0x77);
}

TEST(CpuTest, SyscallStopsWithAdvancedRip) {
  Assembler a;
  a.mov(Gpr::rax, 39);
  a.syscall_();
  a.hlt();
  Fixture f(a);
  const ExecResult result = f.run();
  EXPECT_EQ(result.kind, ExecKind::kSyscall);
  // rip points past the 2-byte SYSCALL; the site is rip - 2.
  EXPECT_EQ(f.ctx.rip, kCodeBase + 10 + 2);
  EXPECT_EQ(result.insn_addr, kCodeBase + 10);
  EXPECT_EQ(f.ctx.syscall_number(), 39u);
}

TEST(CpuTest, CallRaxPushesReturnAddressAndJumps) {
  Assembler a;
  a.mov(Gpr::rax, kCodeBase + 100);
  a.call_rax();
  Fixture f(a);
  step(f.ctx, f.as);  // mov
  const std::uint64_t rsp_before = f.ctx.rsp();
  step(f.ctx, f.as);  // call rax
  EXPECT_EQ(f.ctx.rip, kCodeBase + 100);
  EXPECT_EQ(f.ctx.rsp(), rsp_before - 8);
  EXPECT_EQ(f.as.read_u64(f.ctx.rsp()).value(), kCodeBase + 12);
}

TEST(CpuTest, XstateOperations) {
  Assembler a;
  a.mov(Gpr::r12, 0xABCD);
  a.xmov_from_gpr(0, Gpr::r12);        // both lanes = 0xABCD
  a.xmov_to_gpr(Gpr::rbx, 0);
  a.mov(Gpr::rsi, kDataBase);
  a.xstore(Gpr::rsi, 0, 0);            // 16-byte store
  a.xzero(0);
  a.xload(1, Gpr::rsi, 0);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_EQ(f.ctx.reg(Gpr::rbx), 0xABCDu);
  EXPECT_EQ(f.ctx.xstate.xmm[0][0], 0u);
  EXPECT_EQ(f.ctx.xstate.xmm[1][0], 0xABCDu);
  EXPECT_EQ(f.ctx.xstate.xmm[1][1], 0xABCDu);
  EXPECT_EQ(f.as.read_u64(kDataBase).value(), 0xABCDu);
  EXPECT_EQ(f.as.read_u64(kDataBase + 8).value(), 0xABCDu);
}

TEST(CpuTest, AvxUpperLanes) {
  Assembler a;
  a.mov(Gpr::rax, 0x42);
  a.ymov_hi(3, Gpr::rax);
  a.ymov_rd_hi(Gpr::rbx, 3);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_EQ(f.ctx.reg(Gpr::rbx), 0x42u);
  EXPECT_EQ(f.ctx.xstate.ymm_hi[3][1], 0x42u);
}

TEST(CpuTest, X87StackArithmetic) {
  Assembler a;
  // 2.0 + 0.5 = 2.5
  a.fld(0x4000000000000000ULL);  // 2.0
  a.fld(0x3FE0000000000000ULL);  // 0.5
  a.faddp();
  a.fstp(Gpr::rax);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_EQ(f.ctx.reg(Gpr::rax), 0x4004000000000000ULL);  // 2.5
  EXPECT_EQ(f.ctx.xstate.x87_depth, 0);
}

TEST(CpuTest, FetchFaultOnNonExecutable) {
  Assembler a;
  a.nop();
  Fixture f(a, mem::kProtRead);  // not executable
  const ExecResult result = f.run();
  EXPECT_EQ(result.kind, ExecKind::kMemFault);
  EXPECT_EQ(result.fault.kind, mem::AccessKind::kFetch);
}

TEST(CpuTest, MemFaultLeavesRipAtFaultingInsn) {
  Assembler a;
  a.mov(Gpr::rbx, 0xDEAD'0000);
  a.load(Gpr::rax, Gpr::rbx, 0);
  Fixture f(a);
  const ExecResult result = f.run();
  EXPECT_EQ(result.kind, ExecKind::kMemFault);
  EXPECT_TRUE(result.fault.unmapped);
  EXPECT_EQ(f.ctx.rip, kCodeBase + 10);  // the faulting load itself
}

TEST(CpuTest, InvalidOpcode) {
  Assembler a;
  a.db({0xEE, 0xEE});
  Fixture f(a);
  EXPECT_EQ(f.run().kind, ExecKind::kInvalidOpcode);
}

TEST(CpuTest, TrapInstruction) {
  Assembler a;
  a.trap();
  Fixture f(a);
  EXPECT_EQ(f.run().kind, ExecKind::kTrap);
}

TEST(CpuTest, HostCallReportsIndex) {
  Assembler a;
  a.hostcall(17);
  Fixture f(a);
  const ExecResult result = f.run();
  EXPECT_EQ(result.kind, ExecKind::kHostCall);
  ASSERT_TRUE(result.insn.has_value());
  EXPECT_EQ(result.insn->imm, 17);
  EXPECT_EQ(f.ctx.rip, kCodeBase + 5);
}

TEST(CpuTest, XstateSaveRestoreRoundTrip) {
  XState state;
  state.xmm[3] = {1, 2};
  state.ymm_hi[7] = {3, 4};
  state.x87_push(0x1111);
  state.x87_push(0x2222);
  state.mxcsr = 0xAAAA;
  state.fcw = 0x1234;

  std::vector<std::uint8_t> buffer(XState::kSaveSize);
  state.save_to(buffer);
  XState restored;
  restored.load_from(buffer);
  EXPECT_EQ(restored, state);
  EXPECT_EQ(restored.x87_pop(), 0x2222u);
  EXPECT_EQ(restored.x87_pop(), 0x1111u);
}

TEST(CpuTest, FetchDecodePeeksWithoutExecuting) {
  Assembler a;
  a.mov(Gpr::rax, 1);
  Fixture f(a);
  auto insn = fetch_decode(f.ctx, f.as);
  ASSERT_TRUE(insn.is_ok());
  EXPECT_EQ(insn.value().op, isa::Op::kMovRI);
  EXPECT_EQ(f.ctx.rip, kCodeBase);  // unchanged
  EXPECT_EQ(f.ctx.reg(Gpr::rax), 0u);
}

TEST(CpuTest, StackUnderflowOnRetFaults) {
  Assembler a;
  a.ret();
  Fixture f(a);
  f.ctx.set_rsp(0x10);  // unmapped
  EXPECT_EQ(f.run().kind, ExecKind::kMemFault);
}

}  // namespace
}  // namespace lzp::cpu
