// Second CPU suite: indirect control flow, gs-relative faulting, flag
// persistence, call_rax as a plain indirect call, and decoder/executor
// agreement at page boundaries.
#include <gtest/gtest.h>

#include "cpu/execute.hpp"
#include "isa/assemble.hpp"

namespace lzp::cpu {
namespace {

using isa::Assembler;
using isa::Gpr;

constexpr std::uint64_t kCodeBase = 0x40'0000;
constexpr std::uint64_t kStackBase = 0x80'0000;
constexpr std::uint64_t kDataBase = 0x60'0000;

struct Fixture {
  mem::AddressSpace as;
  CpuContext ctx;

  explicit Fixture(Assembler& assembler) {
    auto code = assembler.finish().value();
    EXPECT_TRUE(as.map(kCodeBase, code.size(),
                       mem::kProtRead | mem::kProtExec, true)
                    .is_ok());
    EXPECT_TRUE(as.write_force(kCodeBase, code).is_ok());
    EXPECT_TRUE(
        as.map(kStackBase, 4096, mem::kProtRead | mem::kProtWrite, true).is_ok());
    EXPECT_TRUE(
        as.map(kDataBase, 4096, mem::kProtRead | mem::kProtWrite, true).is_ok());
    ctx.rip = kCodeBase;
    ctx.set_rsp(kStackBase + 4096 - 64);
  }

  ExecResult run(std::size_t max = 1000) {
    ExecResult last;
    for (std::size_t i = 0; i < max; ++i) {
      last = step(ctx, as);
      if (last.kind != ExecKind::kContinue) return last;
    }
    return last;
  }
};

TEST(Cpu2Test, JmpRegTransfersToRegisterTarget) {
  Assembler a;
  auto target = a.new_label();
  a.mov(Gpr::r10, 0);  // patched below
  a.jmp_reg(Gpr::r10);
  a.hlt();             // skipped
  a.bind(target);
  a.mov(Gpr::rbx, 1);
  a.trap();
  const std::uint64_t target_offset = a.label_offset(target).value();
  Fixture f(a);
  // Patch the immediate of the first mov with the absolute target.
  ASSERT_TRUE(f.as.protect(kCodeBase, 4096,
                           mem::kProtRead | mem::kProtWrite | mem::kProtExec)
                  .is_ok());
  ASSERT_TRUE(f.as.write_u64(kCodeBase + 2, kCodeBase + target_offset).is_ok());
  EXPECT_EQ(f.run().kind, ExecKind::kTrap);
  EXPECT_EQ(f.ctx.reg(Gpr::rbx), 1u);
}

TEST(Cpu2Test, CallRaxWorksAsGeneralIndirectCall) {
  // call rax is not only the rewrite target: with a full address in rax it
  // is a normal indirect call (how the JIT runner invokes generated code).
  Assembler a;
  auto fn = a.new_label();
  a.mov(Gpr::rax, 0);  // patched to &fn
  a.call_rax();
  a.hlt();
  a.bind(fn);
  a.mov(Gpr::rbx, 42);
  a.ret();
  const std::uint64_t fn_offset = a.label_offset(fn).value();
  Fixture f(a);
  ASSERT_TRUE(f.as.protect(kCodeBase, 4096,
                           mem::kProtRead | mem::kProtWrite | mem::kProtExec)
                  .is_ok());
  ASSERT_TRUE(f.as.write_u64(kCodeBase + 2, kCodeBase + fn_offset).is_ok());
  EXPECT_EQ(f.run().kind, ExecKind::kHlt);
  EXPECT_EQ(f.ctx.reg(Gpr::rbx), 42u);
}

TEST(Cpu2Test, FlagsPersistAcrossNonFlagInstructions) {
  Assembler a;
  auto taken = a.new_label();
  a.mov(Gpr::rax, 5);
  a.cmp(Gpr::rax, 5);   // ZF set
  a.mov(Gpr::rbx, 7);   // must not disturb flags
  a.push(Gpr::rbx);
  a.pop(Gpr::rcx);
  a.jz(taken);
  a.hlt();
  a.bind(taken);
  a.trap();
  Fixture f(a);
  EXPECT_EQ(f.run().kind, ExecKind::kTrap);
}

TEST(Cpu2Test, GsAccessFaultsWhenBaseUnmapped) {
  Assembler a;
  a.load_gs8(Gpr::rax, 0);
  Fixture f(a);
  f.ctx.gs_base = 0xDEAD'0000;
  const ExecResult result = f.run();
  EXPECT_EQ(result.kind, ExecKind::kMemFault);
  EXPECT_TRUE(result.fault.unmapped);
}

TEST(Cpu2Test, StoreGsWritesThroughBase) {
  Assembler a;
  a.mov(Gpr::rcx, 0xAB);
  a.store_gs8(16, Gpr::rcx);
  a.mov(Gpr::rdx, 0x1122334455667788ULL);
  a.store_gs(24, Gpr::rdx);
  a.hlt();
  Fixture f(a);
  f.ctx.gs_base = kDataBase;
  f.run();
  EXPECT_EQ(f.as.read_u8(kDataBase + 16).value(), 0xAB);
  EXPECT_EQ(f.as.read_u64(kDataBase + 24).value(), 0x1122334455667788ULL);
}

TEST(Cpu2Test, NegativeDisplacementAddressing) {
  Assembler a;
  a.mov(Gpr::rbx, kDataBase + 128);
  a.mov(Gpr::rcx, 99);
  a.store(Gpr::rbx, -64, Gpr::rcx);
  a.load(Gpr::rdx, Gpr::rbx, -64);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_EQ(f.ctx.reg(Gpr::rdx), 99u);
  EXPECT_EQ(f.as.read_u64(kDataBase + 64).value(), 99u);
}

TEST(Cpu2Test, X87StackWrapsAtDepthEight) {
  XState state;
  for (std::uint64_t i = 0; i < 10; ++i) state.x87_push(i);
  EXPECT_EQ(state.x87_depth, 8);
  // Top is the last push; earlier entries wrapped away.
  EXPECT_EQ(state.x87_pop(), 9u);
  EXPECT_EQ(state.x87_pop(), 8u);
}

TEST(Cpu2Test, ExecutionStopsAtPageBoundaryIntoUnmapped) {
  // Code that runs right up to the end of its (single) executable page and
  // falls off: the fetch of the next instruction faults.
  Assembler a;
  a.nops(4094);
  a.db({0x90, 0x90});  // exactly fills the page
  Fixture f(a);
  ExecResult last;
  for (int i = 0; i < 5000; ++i) {
    last = step(f.ctx, f.as);
    if (last.kind != ExecKind::kContinue) break;
  }
  EXPECT_EQ(last.kind, ExecKind::kMemFault);
  EXPECT_EQ(last.fault.address, kCodeBase + 4096);
}

TEST(Cpu2Test, InstructionStraddlingPageBoundaryExecutes) {
  // A 10-byte MOV whose immediate crosses into a second mapped page.
  Assembler a;
  a.nops(4090);
  a.mov(Gpr::rbx, 0xFEEDFACE);  // bytes 4090..4099: straddles the boundary
  a.trap();
  Fixture f(a);
  ExecResult last;
  for (int i = 0; i < 5000; ++i) {
    last = step(f.ctx, f.as);
    if (last.kind != ExecKind::kContinue) break;
  }
  EXPECT_EQ(last.kind, ExecKind::kTrap);
  EXPECT_EQ(f.ctx.reg(Gpr::rbx), 0xFEEDFACEu);
}

TEST(Cpu2Test, MulWrapsModulo64) {
  Assembler a;
  a.mov(Gpr::rax, 0x8000'0000'0000'0000ULL);
  a.mov(Gpr::rbx, 2);
  a.mul(Gpr::rax, Gpr::rbx);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_EQ(f.ctx.reg(Gpr::rax), 0u);
}

TEST(Cpu2Test, SignedComparisonAtExtremes) {
  Assembler a;
  a.mov(Gpr::rax, 0x8000'0000'0000'0000ULL);  // INT64_MIN
  a.cmp(Gpr::rax, 0);
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_TRUE(f.ctx.flags.lt);   // INT64_MIN < 0 (signed)
  EXPECT_FALSE(f.ctx.flags.gt);
}


TEST(Cpu2Test, SignedDivisionAndModulo) {
  Assembler a;
  a.mov(Gpr::rax, static_cast<std::uint64_t>(-17));
  a.mov(Gpr::rbx, 5);
  a.mov(Gpr::rcx, Gpr::rax);
  a.div(Gpr::rax, Gpr::rbx);   // -17 / 5 = -3 (truncating)
  a.mod(Gpr::rcx, Gpr::rbx);   // -17 % 5 = -2
  a.hlt();
  Fixture f(a);
  f.run();
  EXPECT_EQ(static_cast<std::int64_t>(f.ctx.reg(Gpr::rax)), -3);
  EXPECT_EQ(static_cast<std::int64_t>(f.ctx.reg(Gpr::rcx)), -2);
}

TEST(Cpu2Test, DivideByZeroRaisesDivideError) {
  Assembler a;
  a.mov(Gpr::rax, 7);
  a.mov(Gpr::rbx, 0);
  a.div(Gpr::rax, Gpr::rbx);
  Fixture f(a);
  const ExecResult result = f.run();
  EXPECT_EQ(result.kind, ExecKind::kDivideError);
  // rip stays at the faulting instruction (trap semantics).
  EXPECT_EQ(f.ctx.rip, kCodeBase + 20);
  EXPECT_EQ(f.ctx.reg(Gpr::rax), 7u);  // unmodified
}

}  // namespace
}  // namespace lzp::cpu
