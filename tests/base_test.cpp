#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "base/log.hpp"
#include "base/rng.hpp"
#include "base/stats.hpp"
#include "base/status.hpp"
#include "base/strings.hpp"

namespace lzp {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = make_error(StatusCode::kNotFound, "missing thing");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.to_string(), "not-found: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kInternal); ++code) {
    EXPECT_NE(to_string(static_cast<StatusCode>(code)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = make_error(StatusCode::kInvalidArgument, "bad");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return make_error(StatusCode::kInternal, "boom"); };
  auto wrapper = [&]() -> Status {
    LZP_RETURN_IF_ERROR(fails());
    return Status::ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

// --- RNG ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowIsBounded) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Xoshiro256 rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.next_gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, ReseedResetsStream) {
  Xoshiro256 rng(5);
  const std::uint64_t first = rng.next();
  rng.next();
  rng.reseed(5);
  EXPECT_EQ(rng.next(), first);
}

// --- stats ---------------------------------------------------------------------

TEST(StatsTest, MeanAndStddev) {
  const double samples[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(samples), 5.0);
  EXPECT_NEAR(stddev(samples), 2.138, 0.001);
  EXPECT_NEAR(stddev_pct(samples), 42.76, 0.01);
}

TEST(StatsTest, Geomean) {
  const double samples[] = {1.0, 10.0, 100.0};
  EXPECT_NEAR(geomean(samples), 10.0, 1e-9);
  const double with_zero[] = {0.0, 5.0};
  EXPECT_EQ(geomean(with_zero), 0.0);
}

TEST(StatsTest, EmptyInputs) {
  std::span<const double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(geomean(empty), 0.0);
  EXPECT_EQ(stddev(empty), 0.0);
  EXPECT_EQ(median({}), 0.0);
}

TEST(StatsTest, StddevPctEdgeCases) {
  // Zero mean must not divide by zero.
  const double zero_mean[] = {-1.0, 1.0};
  EXPECT_EQ(stddev_pct(zero_mean), 0.0);
  std::span<const double> empty;
  EXPECT_EQ(stddev_pct(empty), 0.0);
  // Negative mean: spread relative to magnitude, never a negative percent.
  const double negative[] = {-4.0, -6.0};
  EXPECT_GT(stddev_pct(negative), 0.0);
  EXPECT_NEAR(stddev_pct(negative), 100.0 * stddev(negative) / 5.0, 1e-9);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, MinMax) {
  const double samples[] = {3.0, -1.0, 7.5};
  EXPECT_DOUBLE_EQ(min_of(samples), -1.0);
  EXPECT_DOUBLE_EQ(max_of(samples), 7.5);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  const double samples[] = {1.5, 2.5, 3.5, 10.0, -4.0};
  RunningStats running;
  for (double s : samples) running.add(s);
  EXPECT_EQ(running.count(), 5u);
  EXPECT_NEAR(running.mean(), mean(samples), 1e-12);
  EXPECT_NEAR(running.stddev(), stddev(samples), 1e-12);
}

// --- strings --------------------------------------------------------------------

TEST(StringsTest, HexFormatting) {
  EXPECT_EQ(hex_u64(0), "0x0");
  EXPECT_EQ(hex_u64(0xDEADBEEF), "0xdeadbeef");
  EXPECT_EQ(hex_byte(0x0F), "0f");
  const std::uint8_t bytes[] = {0x0F, 0x05};
  EXPECT_EQ(hex_dump(bytes), "0f 05");
}

TEST(StringsTest, HumanSize) {
  EXPECT_EQ(human_size(512), "512B");
  EXPECT_EQ(human_size(1024), "1K");
  EXPECT_EQ(human_size(64 * 1024), "64K");
  EXPECT_EQ(human_size(2 * 1024 * 1024), "2M");
  EXPECT_EQ(human_size(1536), "1536B");  // non-integral KiB stays in bytes
}

TEST(StringsTest, SplitJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "-"), "a-b--c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("/etc/passwd", "/etc"));
  EXPECT_FALSE(starts_with("/etc", "/etc/passwd"));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(2.375, 2), "2.38");
  EXPECT_EQ(format_double(20.8, 1), "20.8");
}

// --- log -------------------------------------------------------------------------

TEST(LogTest, SinkReceivesMessagesAtOrAboveLevel) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel level, std::string_view message) {
    captured.push_back(std::string(to_string(level)) + ":" + std::string(message));
  });
  set_log_level(LogLevel::kInfo);
  LZP_LOG_DEBUG << "hidden";
  LZP_LOG_INFO << "visible " << 42;
  LZP_LOG_ERROR << "bad";
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "INFO:visible 42");
  EXPECT_EQ(captured[1], "ERROR:bad");
}

}  // namespace
}  // namespace lzp
