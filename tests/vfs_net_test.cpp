#include <gtest/gtest.h>

#include "kernel/net.hpp"
#include "kernel/vfs.hpp"

namespace lzp::kern {
namespace {

// --- Vfs ----------------------------------------------------------------------

TEST(VfsTest, PutStatReadRoundTrip) {
  Vfs vfs;
  ASSERT_TRUE(vfs.put_file("a/b.txt", {1, 2, 3, 4, 5}).is_ok());
  ASSERT_TRUE(vfs.exists("a/b.txt"));
  auto meta = vfs.stat("a/b.txt");
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta.value().size, 5u);
  EXPECT_FALSE(meta.value().is_dir);

  std::vector<std::uint8_t> out;
  auto n = vfs.read("a/b.txt", 1, 3, &out);
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 3u);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{2, 3, 4}));
}

TEST(VfsTest, ReadPastEndClamps) {
  Vfs vfs;
  ASSERT_TRUE(vfs.put_file("f", {9, 9}).is_ok());
  std::vector<std::uint8_t> out;
  EXPECT_EQ(vfs.read("f", 1, 100, &out).value(), 1u);
  EXPECT_EQ(vfs.read("f", 2, 100, &out).value(), 0u);
  EXPECT_EQ(vfs.read("f", 50, 100, &out).value(), 0u);
}

TEST(VfsTest, WriteExtendsAndOverwrites) {
  Vfs vfs;
  ASSERT_TRUE(vfs.put_file("f", {1, 2, 3}).is_ok());
  ASSERT_TRUE(vfs.write("f", 2, {7, 8, 9}).is_ok());
  EXPECT_EQ(vfs.stat("f").value().size, 5u);
  std::vector<std::uint8_t> out;
  (void)vfs.read("f", 0, 5, &out);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 7, 8, 9}));
  // Writing a missing path creates it (O_CREAT model).
  ASSERT_TRUE(vfs.write("new", 0, {5}).is_ok());
  EXPECT_TRUE(vfs.exists("new"));
}

TEST(VfsTest, MkdirRenameUnlinkChmod) {
  Vfs vfs;
  ASSERT_TRUE(vfs.mkdir("dir").is_ok());
  EXPECT_FALSE(vfs.mkdir("dir").is_ok());  // EEXIST
  EXPECT_TRUE(vfs.stat("dir").value().is_dir);

  ASSERT_TRUE(vfs.put_file("dir/x", {1}).is_ok());
  ASSERT_TRUE(vfs.rename("dir/x", "dir/y").is_ok());
  EXPECT_FALSE(vfs.exists("dir/x"));
  EXPECT_TRUE(vfs.exists("dir/y"));
  EXPECT_FALSE(vfs.rename("nope", "other").is_ok());

  ASSERT_TRUE(vfs.chmod("dir/y", 0600).is_ok());
  EXPECT_EQ(vfs.stat("dir/y").value().mode, 0600u);
  EXPECT_FALSE(vfs.chmod("nope", 0600).is_ok());

  ASSERT_TRUE(vfs.unlink("dir/y").is_ok());
  EXPECT_FALSE(vfs.unlink("dir/y").is_ok());
}

TEST(VfsTest, ListIsDirectChildrenOnly) {
  Vfs vfs;
  ASSERT_TRUE(vfs.put_file("d/one", {1}).is_ok());
  ASSERT_TRUE(vfs.put_file("d/two", {2}).is_ok());
  ASSERT_TRUE(vfs.put_file("d/sub/three", {3}).is_ok());
  ASSERT_TRUE(vfs.put_file("other", {4}).is_ok());
  const auto names = vfs.list("d");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "one");
  EXPECT_EQ(names[1], "two");
}

TEST(VfsTest, FileOfSizeIsDeterministic) {
  Vfs a;
  Vfs b;
  ASSERT_TRUE(a.put_file_of_size("f", 4096).is_ok());
  ASSERT_TRUE(b.put_file_of_size("f", 4096).is_ok());
  std::vector<std::uint8_t> ca;
  std::vector<std::uint8_t> cb;
  (void)a.read("f", 0, 4096, &ca);
  (void)b.read("f", 0, 4096, &cb);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(ca.size(), 4096u);
}

// --- Net -----------------------------------------------------------------------

ClientWorkload small_workload(std::uint64_t requests, std::uint32_t conns = 2,
                              std::uint64_t response = 100) {
  ClientWorkload workload;
  workload.connections = conns;
  workload.total_requests = requests;
  workload.request_bytes = 50;
  workload.response_bytes = response;
  return workload;
}

TEST(NetTest, FullRequestLifecycle) {
  Net net;
  const int listener = net.create_listener(small_workload(3, 1));

  // New connection pending.
  auto event = net.poll(listener);
  EXPECT_EQ(event.kind, Net::EventKind::kAcceptable);
  auto conn = net.accept(listener);
  ASSERT_TRUE(conn.is_ok());

  for (int i = 0; i < 3; ++i) {
    event = net.poll(listener);
    ASSERT_EQ(event.kind, Net::EventKind::kReadable);
    auto n = net.recv(conn.value(), 4096);
    ASSERT_TRUE(n.is_ok());
    EXPECT_EQ(n.value(), 50u);
    // Partial sends accumulate until the response size is reached.
    ASSERT_TRUE(net.send(conn.value(), 60).is_ok());
    EXPECT_EQ(net.completed_requests(listener), static_cast<std::uint64_t>(i));
    ASSERT_TRUE(net.send(conn.value(), 40).is_ok());
    EXPECT_EQ(net.completed_requests(listener),
              static_cast<std::uint64_t>(i + 1));
  }

  // Budget exhausted: conn drains (readable, recv -> 0), close, finished.
  event = net.poll(listener);
  EXPECT_EQ(event.kind, Net::EventKind::kReadable);
  EXPECT_EQ(net.recv(conn.value(), 4096).value(), 0u);
  ASSERT_TRUE(net.close_conn(conn.value()).is_ok());
  EXPECT_EQ(net.poll(listener).kind, Net::EventKind::kFinished);
  EXPECT_TRUE(net.workload_done(listener));
}

TEST(NetTest, BudgetSplitsAcrossConnections) {
  Net net;
  const int listener = net.create_listener(small_workload(5, 2));
  auto c1 = net.accept(listener);
  auto c2 = net.accept(listener);
  ASSERT_TRUE(c1.is_ok());
  ASSERT_TRUE(c2.is_ok());
  EXPECT_FALSE(net.accept(listener).is_ok());  // only 2 connections

  // 5 requests over 2 conns: 3 + 2.
  std::uint64_t served = 0;
  for (int conn : {c1.value(), c2.value()}) {
    for (;;) {
      auto n = net.recv(conn, 4096);
      ASSERT_TRUE(n.is_ok());
      if (n.value() == 0) break;
      ASSERT_TRUE(net.send(conn, 100).is_ok());
      ++served;
    }
    ASSERT_TRUE(net.close_conn(conn).is_ok());
  }
  EXPECT_EQ(served, 5u);
  EXPECT_EQ(net.completed_requests(listener), 5u);
}

TEST(NetTest, RecvWithoutRequestIsEagain) {
  Net net;
  const int listener = net.create_listener(small_workload(1, 1));
  auto conn = net.accept(listener);
  ASSERT_TRUE(net.recv(conn.value(), 100).is_ok());
  // Request consumed, response not complete: a second recv is EAGAIN.
  EXPECT_FALSE(net.recv(conn.value(), 100).is_ok());
}

TEST(NetTest, RecvClampsToBuffer) {
  Net net;
  const int listener = net.create_listener(small_workload(1, 1));
  auto conn = net.accept(listener);
  EXPECT_EQ(net.recv(conn.value(), 10).value(), 10u);
}

TEST(NetTest, PollForFiltersByOwnership) {
  Net net;
  const int listener = net.create_listener(small_workload(4, 2));
  auto mine = net.accept(listener);
  auto theirs = net.accept(listener);
  ASSERT_TRUE(mine.is_ok());
  ASSERT_TRUE(theirs.is_ok());

  std::set<int> owned{mine.value()};
  auto event = net.poll_for(listener, owned);
  EXPECT_EQ(event.kind, Net::EventKind::kReadable);
  EXPECT_EQ(event.conn_id, mine.value());

  // Drain my connection fully; afterwards only the other worker's conn is
  // live: poll_for reports kNone (retry), not finished.
  for (;;) {
    auto n = net.recv(mine.value(), 100);
    ASSERT_TRUE(n.is_ok());
    if (n.value() == 0) break;
    ASSERT_TRUE(net.send(mine.value(), 100).is_ok());
  }
  ASSERT_TRUE(net.close_conn(mine.value()).is_ok());
  event = net.poll_for(listener, owned);
  EXPECT_EQ(event.kind, Net::EventKind::kNone);
  EXPECT_FALSE(net.workload_done(listener));
}

TEST(NetTest, BadIdsAreErrors) {
  Net net;
  EXPECT_FALSE(net.accept(999).is_ok());
  EXPECT_FALSE(net.recv(999, 10).is_ok());
  EXPECT_FALSE(net.send(999, 10).is_ok());
  EXPECT_FALSE(net.close_conn(999).is_ok());
  EXPECT_EQ(net.completed_requests(999), 0u);
  EXPECT_TRUE(net.workload_done(999));
  EXPECT_EQ(net.poll(999).kind, Net::EventKind::kFinished);
}

TEST(NetTest, ZeroRequestWorkloadIsImmediatelyDone) {
  Net net;
  const int listener = net.create_listener(small_workload(0, 4));
  EXPECT_EQ(net.poll(listener).kind, Net::EventKind::kFinished);
  EXPECT_TRUE(net.workload_done(listener));
}

}  // namespace
}  // namespace lzp::kern
