// The threaded web server under lazypoline: CLONE_VM workers share one
// address space (one trampoline, one set of rewritten sites, one rewrite
// lock) while every thread carries its own %gs selector — §IV-B end to end
// at workload scale.
#include <gtest/gtest.h>

#include <set>

#include "apps/webserver.hpp"
#include "core/lazypoline.hpp"
#include "sim_test_util.hpp"

namespace lzp::apps {
namespace {

struct ThreadedFixture {
  kern::Machine machine;
  int listener = 0;
  kern::Tid main_tid = 0;
  std::shared_ptr<core::Lazypoline> runtime;
  std::shared_ptr<interpose::TracingHandler> handler =
      std::make_shared<interpose::TracingHandler>();

  ThreadedFixture(int threads, std::uint64_t requests, bool interposed) {
    machine.mmap_min_addr = 0;
    (void)machine.vfs().put_file_of_size("index.html", 2048);
    kern::ClientWorkload workload;
    workload.connections = 12;
    workload.total_requests = requests;
    workload.response_bytes = nginx_profile().header_bytes + 2048;
    listener = machine.net().create_listener(workload);

    auto program =
        make_threaded_webserver(machine, nginx_profile(), "index.html", threads)
            .value();
    machine.register_program(program);
    main_tid = machine.load(program).value();
    kern::FdEntry entry;
    entry.kind = kern::FdEntry::Kind::kListener;
    entry.net_id = listener;
    machine.find_task(main_tid)->process->install_fd_at(kListenerFd, entry);

    if (interposed) {
      runtime = core::Lazypoline::create(machine, {});
      EXPECT_TRUE(runtime->install(machine, main_tid, handler).is_ok());
    }
  }
};

TEST(ThreadedServerTest, ServesAllRequestsNatively) {
  ThreadedFixture f(4, 300, /*interposed=*/false);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.machine.net().completed_requests(f.listener), 300u);
  EXPECT_EQ(f.machine.task_ids().size(), 4u);
}

TEST(ThreadedServerTest, ServesAllRequestsUnderLazypoline) {
  const std::uint64_t requests = 300;
  ThreadedFixture f(4, requests, /*interposed=*/true);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.machine.net().completed_requests(f.listener), requests);

  // Three clone children were re-armed.
  EXPECT_EQ(f.runtime->stats().children_initialized, 3u);

  // All threads share the address space; selectors are per-thread distinct.
  std::set<const mem::AddressSpace*> spaces;
  std::set<std::uint64_t> selectors;
  for (kern::Tid tid : f.machine.task_ids()) {
    const kern::Task* task = f.machine.find_task(tid);
    spaces.insert(task->mem.get());
    selectors.insert(task->sud.selector_addr);
    EXPECT_TRUE(task->sud.enabled);
    EXPECT_EQ(task->sud.allow_len, 0u);
  }
  EXPECT_EQ(spaces.size(), 1u);
  EXPECT_EQ(selectors.size(), 4u);

  // Shared text means each syscall site was rewritten exactly once, under
  // the rewrite lock, no matter which thread discovered it first.
  EXPECT_EQ(f.runtime->stats().rewrite_lock_acquisitions,
            f.runtime->stats().sites_rewritten);

  // The trace covers the whole workload: every request performs at least
  // recvfrom + openat + fstat + writev + sendfile + close.
  EXPECT_GE(f.handler->trace().size(), requests * 6);
}

TEST(ThreadedServerTest, EveryThreadDidRealWork) {
  ThreadedFixture f(4, 400, /*interposed=*/true);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  std::uint64_t total_dispatched = 0;
  for (kern::Tid tid : f.machine.task_ids()) {
    const kern::Task* task = f.machine.find_task(tid);
    EXPECT_GT(task->syscalls_dispatched, 20u) << "tid " << tid;
    total_dispatched += task->syscalls_dispatched;
  }
  EXPECT_GT(total_dispatched, 400 * 6u);
}

TEST(ThreadedServerTest, SingleThreadVariantDegeneratesToPlainServer) {
  ThreadedFixture f(1, 100, /*interposed=*/true);
  auto stats = f.machine.run();
  EXPECT_TRUE(stats.all_exited) << f.machine.last_fatal();
  EXPECT_EQ(f.machine.net().completed_requests(f.listener), 100u);
  EXPECT_EQ(f.runtime->stats().children_initialized, 0u);
}

TEST(ThreadedServerTest, RejectsUnsupportedThreadCounts) {
  kern::Machine machine;
  EXPECT_FALSE(
      make_threaded_webserver(machine, nginx_profile(), "x", 0).is_ok());
  EXPECT_FALSE(
      make_threaded_webserver(machine, nginx_profile(), "x", 9).is_ok());
}

}  // namespace
}  // namespace lzp::apps
