file(REMOVE_RECURSE
  "../bench/table2_micro"
  "../bench/table2_micro.pdb"
  "CMakeFiles/table2_micro.dir/table2_micro.cpp.o"
  "CMakeFiles/table2_micro.dir/table2_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
