# Empty compiler generated dependencies file for table2_micro.
# This may be replaced when dependencies are built.
