# Empty dependencies file for table3_coreutils_pin.
# This may be replaced when dependencies are built.
