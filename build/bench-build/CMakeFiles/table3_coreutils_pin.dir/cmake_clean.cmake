file(REMOVE_RECURSE
  "../bench/table3_coreutils_pin"
  "../bench/table3_coreutils_pin.pdb"
  "CMakeFiles/table3_coreutils_pin.dir/table3_coreutils_pin.cpp.o"
  "CMakeFiles/table3_coreutils_pin.dir/table3_coreutils_pin.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_coreutils_pin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
