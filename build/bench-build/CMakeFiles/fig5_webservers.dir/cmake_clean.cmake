file(REMOVE_RECURSE
  "../bench/fig5_webservers"
  "../bench/fig5_webservers.pdb"
  "CMakeFiles/fig5_webservers.dir/fig5_webservers.cpp.o"
  "CMakeFiles/fig5_webservers.dir/fig5_webservers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_webservers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
