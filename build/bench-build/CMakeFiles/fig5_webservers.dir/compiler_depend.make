# Empty compiler generated dependencies file for fig5_webservers.
# This may be replaced when dependencies are built.
