file(REMOVE_RECURSE
  "../bench/fig4_breakdown"
  "../bench/fig4_breakdown.pdb"
  "CMakeFiles/fig4_breakdown.dir/fig4_breakdown.cpp.o"
  "CMakeFiles/fig4_breakdown.dir/fig4_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
