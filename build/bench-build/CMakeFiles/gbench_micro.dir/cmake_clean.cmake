file(REMOVE_RECURSE
  "../bench/gbench_micro"
  "../bench/gbench_micro.pdb"
  "CMakeFiles/gbench_micro.dir/gbench_micro.cpp.o"
  "CMakeFiles/gbench_micro.dir/gbench_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
