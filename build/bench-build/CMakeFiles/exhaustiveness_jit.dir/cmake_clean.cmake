file(REMOVE_RECURSE
  "../bench/exhaustiveness_jit"
  "../bench/exhaustiveness_jit.pdb"
  "CMakeFiles/exhaustiveness_jit.dir/exhaustiveness_jit.cpp.o"
  "CMakeFiles/exhaustiveness_jit.dir/exhaustiveness_jit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustiveness_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
