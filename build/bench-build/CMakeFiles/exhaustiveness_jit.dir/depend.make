# Empty dependencies file for exhaustiveness_jit.
# This may be replaced when dependencies are built.
