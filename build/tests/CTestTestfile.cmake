# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/objfile_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test2[1]_include.cmake")
include("/root/repo/build/tests/decode_cache_test[1]_include.cmake")
include("/root/repo/build/tests/bpf_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test2[1]_include.cmake")
include("/root/repo/build/tests/vfs_net_test[1]_include.cmake")
include("/root/repo/build/tests/disasm_test[1]_include.cmake")
include("/root/repo/build/tests/interpose_test[1]_include.cmake")
include("/root/repo/build/tests/mechanisms_test[1]_include.cmake")
include("/root/repo/build/tests/zpoline_test[1]_include.cmake")
include("/root/repo/build/tests/lazypoline_test[1]_include.cmake")
include("/root/repo/build/tests/lazypoline_test2[1]_include.cmake")
include("/root/repo/build/tests/pintool_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/apps_transparency_test[1]_include.cmake")
include("/root/repo/build/tests/threaded_server_test[1]_include.cmake")
include("/root/repo/build/tests/minicc_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
