file(REMOVE_RECURSE
  "CMakeFiles/cpu_test2.dir/cpu_test2.cpp.o"
  "CMakeFiles/cpu_test2.dir/cpu_test2.cpp.o.d"
  "cpu_test2"
  "cpu_test2.pdb"
  "cpu_test2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_test2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
