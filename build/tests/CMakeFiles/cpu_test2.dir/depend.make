# Empty dependencies file for cpu_test2.
# This may be replaced when dependencies are built.
