# Empty compiler generated dependencies file for apps_transparency_test.
# This may be replaced when dependencies are built.
