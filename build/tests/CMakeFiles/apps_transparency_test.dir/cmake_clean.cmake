file(REMOVE_RECURSE
  "CMakeFiles/apps_transparency_test.dir/apps_transparency_test.cpp.o"
  "CMakeFiles/apps_transparency_test.dir/apps_transparency_test.cpp.o.d"
  "apps_transparency_test"
  "apps_transparency_test.pdb"
  "apps_transparency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_transparency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
