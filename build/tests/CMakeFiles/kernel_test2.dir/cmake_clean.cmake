file(REMOVE_RECURSE
  "CMakeFiles/kernel_test2.dir/kernel_test2.cpp.o"
  "CMakeFiles/kernel_test2.dir/kernel_test2.cpp.o.d"
  "kernel_test2"
  "kernel_test2.pdb"
  "kernel_test2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_test2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
