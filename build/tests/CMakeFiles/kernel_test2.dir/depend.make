# Empty dependencies file for kernel_test2.
# This may be replaced when dependencies are built.
