file(REMOVE_RECURSE
  "CMakeFiles/lazypoline_test2.dir/lazypoline_test2.cpp.o"
  "CMakeFiles/lazypoline_test2.dir/lazypoline_test2.cpp.o.d"
  "lazypoline_test2"
  "lazypoline_test2.pdb"
  "lazypoline_test2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazypoline_test2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
