# Empty dependencies file for lazypoline_test2.
# This may be replaced when dependencies are built.
