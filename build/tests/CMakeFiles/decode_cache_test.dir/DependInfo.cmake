
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/decode_cache_test.cpp" "tests/CMakeFiles/decode_cache_test.dir/decode_cache_test.cpp.o" "gcc" "tests/CMakeFiles/decode_cache_test.dir/decode_cache_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lzp_base.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/lzp_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/lzp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lzp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/bpf/CMakeFiles/lzp_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/lzp_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/disasm/CMakeFiles/lzp_disasm.dir/DependInfo.cmake"
  "/root/repo/build/src/interpose/CMakeFiles/lzp_interpose.dir/DependInfo.cmake"
  "/root/repo/build/src/mechanisms/CMakeFiles/lzp_mechanisms.dir/DependInfo.cmake"
  "/root/repo/build/src/zpoline/CMakeFiles/lzp_zpoline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lzp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pintool/CMakeFiles/lzp_pintool.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lzp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lzp_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
