file(REMOVE_RECURSE
  "CMakeFiles/decode_cache_test.dir/decode_cache_test.cpp.o"
  "CMakeFiles/decode_cache_test.dir/decode_cache_test.cpp.o.d"
  "decode_cache_test"
  "decode_cache_test.pdb"
  "decode_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decode_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
