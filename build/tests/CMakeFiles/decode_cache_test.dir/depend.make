# Empty dependencies file for decode_cache_test.
# This may be replaced when dependencies are built.
