file(REMOVE_RECURSE
  "CMakeFiles/vfs_net_test.dir/vfs_net_test.cpp.o"
  "CMakeFiles/vfs_net_test.dir/vfs_net_test.cpp.o.d"
  "vfs_net_test"
  "vfs_net_test.pdb"
  "vfs_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfs_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
