# Empty compiler generated dependencies file for vfs_net_test.
# This may be replaced when dependencies are built.
