# Empty compiler generated dependencies file for zpoline_test.
# This may be replaced when dependencies are built.
