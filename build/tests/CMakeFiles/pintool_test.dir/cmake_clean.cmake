file(REMOVE_RECURSE
  "CMakeFiles/pintool_test.dir/pintool_test.cpp.o"
  "CMakeFiles/pintool_test.dir/pintool_test.cpp.o.d"
  "pintool_test"
  "pintool_test.pdb"
  "pintool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pintool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
