# Empty dependencies file for pintool_test.
# This may be replaced when dependencies are built.
