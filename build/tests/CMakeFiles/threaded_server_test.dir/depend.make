# Empty dependencies file for threaded_server_test.
# This may be replaced when dependencies are built.
