file(REMOVE_RECURSE
  "CMakeFiles/threaded_server_test.dir/threaded_server_test.cpp.o"
  "CMakeFiles/threaded_server_test.dir/threaded_server_test.cpp.o.d"
  "threaded_server_test"
  "threaded_server_test.pdb"
  "threaded_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
