file(REMOVE_RECURSE
  "CMakeFiles/webserver_tour.dir/webserver_tour.cpp.o"
  "CMakeFiles/webserver_tour.dir/webserver_tour.cpp.o.d"
  "webserver_tour"
  "webserver_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
