# Empty dependencies file for webserver_tour.
# This may be replaced when dependencies are built.
