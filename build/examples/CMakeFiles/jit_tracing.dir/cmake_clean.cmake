file(REMOVE_RECURSE
  "CMakeFiles/jit_tracing.dir/jit_tracing.cpp.o"
  "CMakeFiles/jit_tracing.dir/jit_tracing.cpp.o.d"
  "jit_tracing"
  "jit_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
