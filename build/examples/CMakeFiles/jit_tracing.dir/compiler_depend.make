# Empty compiler generated dependencies file for jit_tracing.
# This may be replaced when dependencies are built.
