# Empty compiler generated dependencies file for sandbox_policy.
# This may be replaced when dependencies are built.
