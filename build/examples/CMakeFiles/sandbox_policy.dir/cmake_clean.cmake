file(REMOVE_RECURSE
  "CMakeFiles/sandbox_policy.dir/sandbox_policy.cpp.o"
  "CMakeFiles/sandbox_policy.dir/sandbox_policy.cpp.o.d"
  "sandbox_policy"
  "sandbox_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sandbox_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
