file(REMOVE_RECURSE
  "CMakeFiles/minitrace.dir/minitrace.cpp.o"
  "CMakeFiles/minitrace.dir/minitrace.cpp.o.d"
  "minitrace"
  "minitrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minitrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
