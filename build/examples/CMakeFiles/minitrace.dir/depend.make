# Empty dependencies file for minitrace.
# This may be replaced when dependencies are built.
