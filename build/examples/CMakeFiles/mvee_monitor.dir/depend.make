# Empty dependencies file for mvee_monitor.
# This may be replaced when dependencies are built.
