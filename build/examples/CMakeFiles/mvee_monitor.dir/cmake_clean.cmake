file(REMOVE_RECURSE
  "CMakeFiles/mvee_monitor.dir/mvee_monitor.cpp.o"
  "CMakeFiles/mvee_monitor.dir/mvee_monitor.cpp.o.d"
  "mvee_monitor"
  "mvee_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvee_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
