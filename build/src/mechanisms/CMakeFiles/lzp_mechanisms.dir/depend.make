# Empty dependencies file for lzp_mechanisms.
# This may be replaced when dependencies are built.
