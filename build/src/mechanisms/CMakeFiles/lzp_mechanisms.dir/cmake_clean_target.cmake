file(REMOVE_RECURSE
  "liblzp_mechanisms.a"
)
