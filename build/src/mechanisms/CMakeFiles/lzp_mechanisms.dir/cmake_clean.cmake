file(REMOVE_RECURSE
  "CMakeFiles/lzp_mechanisms.dir/ptrace_tool.cpp.o"
  "CMakeFiles/lzp_mechanisms.dir/ptrace_tool.cpp.o.d"
  "CMakeFiles/lzp_mechanisms.dir/seccomp_bpf_tool.cpp.o"
  "CMakeFiles/lzp_mechanisms.dir/seccomp_bpf_tool.cpp.o.d"
  "CMakeFiles/lzp_mechanisms.dir/seccomp_user_tool.cpp.o"
  "CMakeFiles/lzp_mechanisms.dir/seccomp_user_tool.cpp.o.d"
  "CMakeFiles/lzp_mechanisms.dir/sud_tool.cpp.o"
  "CMakeFiles/lzp_mechanisms.dir/sud_tool.cpp.o.d"
  "liblzp_mechanisms.a"
  "liblzp_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
