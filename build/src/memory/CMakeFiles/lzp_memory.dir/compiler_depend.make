# Empty compiler generated dependencies file for lzp_memory.
# This may be replaced when dependencies are built.
