file(REMOVE_RECURSE
  "liblzp_memory.a"
)
