file(REMOVE_RECURSE
  "CMakeFiles/lzp_memory.dir/address_space.cpp.o"
  "CMakeFiles/lzp_memory.dir/address_space.cpp.o.d"
  "liblzp_memory.a"
  "liblzp_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
