file(REMOVE_RECURSE
  "CMakeFiles/lzp_interpose.dir/handler.cpp.o"
  "CMakeFiles/lzp_interpose.dir/handler.cpp.o.d"
  "liblzp_interpose.a"
  "liblzp_interpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_interpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
