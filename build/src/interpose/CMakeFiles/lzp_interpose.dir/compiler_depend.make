# Empty compiler generated dependencies file for lzp_interpose.
# This may be replaced when dependencies are built.
