file(REMOVE_RECURSE
  "liblzp_interpose.a"
)
