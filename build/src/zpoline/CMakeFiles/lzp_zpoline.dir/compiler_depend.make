# Empty compiler generated dependencies file for lzp_zpoline.
# This may be replaced when dependencies are built.
