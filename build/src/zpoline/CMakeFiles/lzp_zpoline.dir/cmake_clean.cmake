file(REMOVE_RECURSE
  "CMakeFiles/lzp_zpoline.dir/zpoline.cpp.o"
  "CMakeFiles/lzp_zpoline.dir/zpoline.cpp.o.d"
  "liblzp_zpoline.a"
  "liblzp_zpoline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_zpoline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
