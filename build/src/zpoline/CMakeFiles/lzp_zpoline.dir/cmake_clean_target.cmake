file(REMOVE_RECURSE
  "liblzp_zpoline.a"
)
