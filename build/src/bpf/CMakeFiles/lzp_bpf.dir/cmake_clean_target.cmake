file(REMOVE_RECURSE
  "liblzp_bpf.a"
)
