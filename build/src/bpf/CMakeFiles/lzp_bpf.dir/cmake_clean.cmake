file(REMOVE_RECURSE
  "CMakeFiles/lzp_bpf.dir/bpf.cpp.o"
  "CMakeFiles/lzp_bpf.dir/bpf.cpp.o.d"
  "CMakeFiles/lzp_bpf.dir/seccomp_filter.cpp.o"
  "CMakeFiles/lzp_bpf.dir/seccomp_filter.cpp.o.d"
  "liblzp_bpf.a"
  "liblzp_bpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_bpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
