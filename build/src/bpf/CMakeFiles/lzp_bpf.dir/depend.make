# Empty dependencies file for lzp_bpf.
# This may be replaced when dependencies are built.
