file(REMOVE_RECURSE
  "CMakeFiles/lzp_pintool.dir/xstate_tracker.cpp.o"
  "CMakeFiles/lzp_pintool.dir/xstate_tracker.cpp.o.d"
  "liblzp_pintool.a"
  "liblzp_pintool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_pintool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
