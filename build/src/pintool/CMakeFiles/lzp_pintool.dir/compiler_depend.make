# Empty compiler generated dependencies file for lzp_pintool.
# This may be replaced when dependencies are built.
