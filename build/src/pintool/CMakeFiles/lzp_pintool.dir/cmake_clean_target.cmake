file(REMOVE_RECURSE
  "liblzp_pintool.a"
)
