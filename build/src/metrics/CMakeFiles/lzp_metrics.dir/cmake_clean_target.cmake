file(REMOVE_RECURSE
  "liblzp_metrics.a"
)
