file(REMOVE_RECURSE
  "CMakeFiles/lzp_metrics.dir/report.cpp.o"
  "CMakeFiles/lzp_metrics.dir/report.cpp.o.d"
  "liblzp_metrics.a"
  "liblzp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
