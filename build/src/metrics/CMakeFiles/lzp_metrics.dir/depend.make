# Empty dependencies file for lzp_metrics.
# This may be replaced when dependencies are built.
