# Empty compiler generated dependencies file for lzp_kernel.
# This may be replaced when dependencies are built.
