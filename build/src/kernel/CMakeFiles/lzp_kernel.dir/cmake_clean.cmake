file(REMOVE_RECURSE
  "CMakeFiles/lzp_kernel.dir/costs.cpp.o"
  "CMakeFiles/lzp_kernel.dir/costs.cpp.o.d"
  "CMakeFiles/lzp_kernel.dir/machine.cpp.o"
  "CMakeFiles/lzp_kernel.dir/machine.cpp.o.d"
  "CMakeFiles/lzp_kernel.dir/machine_signals.cpp.o"
  "CMakeFiles/lzp_kernel.dir/machine_signals.cpp.o.d"
  "CMakeFiles/lzp_kernel.dir/machine_syscalls.cpp.o"
  "CMakeFiles/lzp_kernel.dir/machine_syscalls.cpp.o.d"
  "CMakeFiles/lzp_kernel.dir/net.cpp.o"
  "CMakeFiles/lzp_kernel.dir/net.cpp.o.d"
  "CMakeFiles/lzp_kernel.dir/syscalls.cpp.o"
  "CMakeFiles/lzp_kernel.dir/syscalls.cpp.o.d"
  "CMakeFiles/lzp_kernel.dir/vfs.cpp.o"
  "CMakeFiles/lzp_kernel.dir/vfs.cpp.o.d"
  "liblzp_kernel.a"
  "liblzp_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
