file(REMOVE_RECURSE
  "liblzp_kernel.a"
)
