
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/costs.cpp" "src/kernel/CMakeFiles/lzp_kernel.dir/costs.cpp.o" "gcc" "src/kernel/CMakeFiles/lzp_kernel.dir/costs.cpp.o.d"
  "/root/repo/src/kernel/machine.cpp" "src/kernel/CMakeFiles/lzp_kernel.dir/machine.cpp.o" "gcc" "src/kernel/CMakeFiles/lzp_kernel.dir/machine.cpp.o.d"
  "/root/repo/src/kernel/machine_signals.cpp" "src/kernel/CMakeFiles/lzp_kernel.dir/machine_signals.cpp.o" "gcc" "src/kernel/CMakeFiles/lzp_kernel.dir/machine_signals.cpp.o.d"
  "/root/repo/src/kernel/machine_syscalls.cpp" "src/kernel/CMakeFiles/lzp_kernel.dir/machine_syscalls.cpp.o" "gcc" "src/kernel/CMakeFiles/lzp_kernel.dir/machine_syscalls.cpp.o.d"
  "/root/repo/src/kernel/net.cpp" "src/kernel/CMakeFiles/lzp_kernel.dir/net.cpp.o" "gcc" "src/kernel/CMakeFiles/lzp_kernel.dir/net.cpp.o.d"
  "/root/repo/src/kernel/syscalls.cpp" "src/kernel/CMakeFiles/lzp_kernel.dir/syscalls.cpp.o" "gcc" "src/kernel/CMakeFiles/lzp_kernel.dir/syscalls.cpp.o.d"
  "/root/repo/src/kernel/vfs.cpp" "src/kernel/CMakeFiles/lzp_kernel.dir/vfs.cpp.o" "gcc" "src/kernel/CMakeFiles/lzp_kernel.dir/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lzp_base.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/lzp_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/lzp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lzp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/bpf/CMakeFiles/lzp_bpf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
