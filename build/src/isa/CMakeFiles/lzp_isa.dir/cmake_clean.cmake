file(REMOVE_RECURSE
  "CMakeFiles/lzp_isa.dir/assemble.cpp.o"
  "CMakeFiles/lzp_isa.dir/assemble.cpp.o.d"
  "CMakeFiles/lzp_isa.dir/decode.cpp.o"
  "CMakeFiles/lzp_isa.dir/decode.cpp.o.d"
  "CMakeFiles/lzp_isa.dir/insn.cpp.o"
  "CMakeFiles/lzp_isa.dir/insn.cpp.o.d"
  "CMakeFiles/lzp_isa.dir/objfile.cpp.o"
  "CMakeFiles/lzp_isa.dir/objfile.cpp.o.d"
  "liblzp_isa.a"
  "liblzp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
