file(REMOVE_RECURSE
  "liblzp_isa.a"
)
