
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/assemble.cpp" "src/isa/CMakeFiles/lzp_isa.dir/assemble.cpp.o" "gcc" "src/isa/CMakeFiles/lzp_isa.dir/assemble.cpp.o.d"
  "/root/repo/src/isa/decode.cpp" "src/isa/CMakeFiles/lzp_isa.dir/decode.cpp.o" "gcc" "src/isa/CMakeFiles/lzp_isa.dir/decode.cpp.o.d"
  "/root/repo/src/isa/insn.cpp" "src/isa/CMakeFiles/lzp_isa.dir/insn.cpp.o" "gcc" "src/isa/CMakeFiles/lzp_isa.dir/insn.cpp.o.d"
  "/root/repo/src/isa/objfile.cpp" "src/isa/CMakeFiles/lzp_isa.dir/objfile.cpp.o" "gcc" "src/isa/CMakeFiles/lzp_isa.dir/objfile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lzp_base.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/lzp_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
