# Empty dependencies file for lzp_isa.
# This may be replaced when dependencies are built.
