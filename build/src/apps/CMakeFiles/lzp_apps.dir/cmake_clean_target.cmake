file(REMOVE_RECURSE
  "liblzp_apps.a"
)
