file(REMOVE_RECURSE
  "CMakeFiles/lzp_apps.dir/coreutils.cpp.o"
  "CMakeFiles/lzp_apps.dir/coreutils.cpp.o.d"
  "CMakeFiles/lzp_apps.dir/jitcc.cpp.o"
  "CMakeFiles/lzp_apps.dir/jitcc.cpp.o.d"
  "CMakeFiles/lzp_apps.dir/minicc.cpp.o"
  "CMakeFiles/lzp_apps.dir/minicc.cpp.o.d"
  "CMakeFiles/lzp_apps.dir/minilibc.cpp.o"
  "CMakeFiles/lzp_apps.dir/minilibc.cpp.o.d"
  "CMakeFiles/lzp_apps.dir/webserver.cpp.o"
  "CMakeFiles/lzp_apps.dir/webserver.cpp.o.d"
  "liblzp_apps.a"
  "liblzp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
