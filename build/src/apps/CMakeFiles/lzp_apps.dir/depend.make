# Empty dependencies file for lzp_apps.
# This may be replaced when dependencies are built.
