# Empty dependencies file for lzp_core.
# This may be replaced when dependencies are built.
