file(REMOVE_RECURSE
  "liblzp_core.a"
)
