file(REMOVE_RECURSE
  "CMakeFiles/lzp_core.dir/lazypoline.cpp.o"
  "CMakeFiles/lzp_core.dir/lazypoline.cpp.o.d"
  "liblzp_core.a"
  "liblzp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
