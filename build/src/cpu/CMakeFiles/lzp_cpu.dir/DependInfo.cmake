
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/context.cpp" "src/cpu/CMakeFiles/lzp_cpu.dir/context.cpp.o" "gcc" "src/cpu/CMakeFiles/lzp_cpu.dir/context.cpp.o.d"
  "/root/repo/src/cpu/decode_cache.cpp" "src/cpu/CMakeFiles/lzp_cpu.dir/decode_cache.cpp.o" "gcc" "src/cpu/CMakeFiles/lzp_cpu.dir/decode_cache.cpp.o.d"
  "/root/repo/src/cpu/execute.cpp" "src/cpu/CMakeFiles/lzp_cpu.dir/execute.cpp.o" "gcc" "src/cpu/CMakeFiles/lzp_cpu.dir/execute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/lzp_base.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/lzp_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/lzp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
