# Empty dependencies file for lzp_cpu.
# This may be replaced when dependencies are built.
