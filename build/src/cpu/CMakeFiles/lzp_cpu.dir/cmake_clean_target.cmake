file(REMOVE_RECURSE
  "liblzp_cpu.a"
)
