file(REMOVE_RECURSE
  "CMakeFiles/lzp_cpu.dir/context.cpp.o"
  "CMakeFiles/lzp_cpu.dir/context.cpp.o.d"
  "CMakeFiles/lzp_cpu.dir/decode_cache.cpp.o"
  "CMakeFiles/lzp_cpu.dir/decode_cache.cpp.o.d"
  "CMakeFiles/lzp_cpu.dir/execute.cpp.o"
  "CMakeFiles/lzp_cpu.dir/execute.cpp.o.d"
  "liblzp_cpu.a"
  "liblzp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
