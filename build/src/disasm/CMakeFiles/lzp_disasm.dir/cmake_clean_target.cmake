file(REMOVE_RECURSE
  "liblzp_disasm.a"
)
