file(REMOVE_RECURSE
  "CMakeFiles/lzp_disasm.dir/scanner.cpp.o"
  "CMakeFiles/lzp_disasm.dir/scanner.cpp.o.d"
  "liblzp_disasm.a"
  "liblzp_disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
