# Empty dependencies file for lzp_disasm.
# This may be replaced when dependencies are built.
