file(REMOVE_RECURSE
  "liblzp_base.a"
)
