# Empty dependencies file for lzp_base.
# This may be replaced when dependencies are built.
