file(REMOVE_RECURSE
  "CMakeFiles/lzp_base.dir/log.cpp.o"
  "CMakeFiles/lzp_base.dir/log.cpp.o.d"
  "CMakeFiles/lzp_base.dir/rng.cpp.o"
  "CMakeFiles/lzp_base.dir/rng.cpp.o.d"
  "CMakeFiles/lzp_base.dir/stats.cpp.o"
  "CMakeFiles/lzp_base.dir/stats.cpp.o.d"
  "CMakeFiles/lzp_base.dir/strings.cpp.o"
  "CMakeFiles/lzp_base.dir/strings.cpp.o.d"
  "liblzp_base.a"
  "liblzp_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzp_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
