#include "interpose/handler.hpp"

#include "base/strings.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::interpose {

Result<std::string> InterposeContext::read_cstring(std::uint64_t addr,
                                                   std::size_t max) const {
  std::string out;
  for (std::size_t i = 0; i < max; ++i) {
    std::uint8_t byte = 0;
    if (auto fault = task_.mem->read(addr + i, {&byte, 1})) {
      return make_error(StatusCode::kOutOfRange, fault->to_string());
    }
    if (byte == 0) return out;
    out.push_back(static_cast<char>(byte));
  }
  return make_error(StatusCode::kOutOfRange, "unterminated string");
}

Result<std::vector<std::uint8_t>> InterposeContext::read_bytes(
    std::uint64_t addr, std::size_t length) const {
  std::vector<std::uint8_t> out(length);
  if (auto fault = task_.mem->read(addr, out)) {
    return make_error(StatusCode::kOutOfRange, fault->to_string());
  }
  return out;
}

Status InterposeContext::write_bytes(std::uint64_t addr,
                                     std::span<const std::uint8_t> data) {
  if (auto fault = task_.mem->write(addr, data)) {
    return make_error(StatusCode::kOutOfRange, fault->to_string());
  }
  return Status::ok();
}

std::string TraceRecord::to_string() const {
  std::string out{kern::syscall_name(nr)};
  out += "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ", ";
    out += hex_u64(args[i]);
  }
  out += ") = ";
  out += hex_u64(result);
  if (!detail.empty()) {
    out += "   ";
    out += detail;
  }
  return out;
}

std::uint64_t TracingHandler::handle(InterposeContext& ctx) {
  TraceRecord record;
  record.nr = ctx.request().nr;
  record.args = ctx.request().args;
  record.tid = ctx.task().tid;

  // strace-style deep decoding of pointer arguments — possible precisely
  // because this handler is fully expressive (Table I).
  auto path_detail = [&](std::uint64_t addr) {
    auto path = ctx.read_cstring(addr);
    if (path.is_ok()) record.detail = "path=\"" + path.value() + "\"";
  };
  switch (record.nr) {
    case kern::kSysOpen:
    case kern::kSysStat:
    case kern::kSysUnlink:
    case kern::kSysChmod:
    case kern::kSysMkdir:
    case kern::kSysExecve:
      path_detail(record.args[0]);
      break;
    case kern::kSysOpenat:
      path_detail(record.args[1]);
      break;
    default:
      break;
  }

  record.result = ctx.pass_through();
  trace_.push_back(record);
  return record.result;
}

std::vector<std::uint64_t> TracingHandler::traced_numbers() const {
  std::vector<std::uint64_t> numbers;
  numbers.reserve(trace_.size());
  for (const TraceRecord& record : trace_) numbers.push_back(record.nr);
  return numbers;
}

std::uint64_t PathPolicyHandler::handle(InterposeContext& ctx) {
  const auto& req = ctx.request();
  if (req.nr == kern::kSysOpen || req.nr == kern::kSysOpenat) {
    const std::uint64_t path_ptr =
        req.nr == kern::kSysOpen ? req.args[0] : req.args[1];
    auto path = ctx.read_cstring(path_ptr);
    if (path) {
      for (const std::string& prefix : denied_prefixes_) {
        if (starts_with(path.value(), prefix)) {
          ++denials_;
          return kern::errno_result(kern::kEACCES);
        }
      }
    }
  }
  return ctx.pass_through();
}

std::uint64_t XstateClobberingHandler::handle(InterposeContext& ctx) {
  // Scribble over every extended state component, as optimized native
  // handler code may: vectorized copies use xmm/ymm, long double math x87.
  auto& xstate = ctx.task().ctx.xstate;
  for (std::size_t i = 0; i < isa::kNumXmm; ++i) {
    xstate.xmm[i] = {0xDEADBEEFDEADBEEFULL, 0xDEADBEEFDEADBEEFULL};
    xstate.ymm_hi[i] = {0xCAFEBABECAFEBABEULL, 0xCAFEBABECAFEBABEULL};
  }
  xstate.x87_push(0x4141414141414141ULL);
  return inner_->handle(ctx);
}

std::uint64_t FaultInjectionHandler::handle(InterposeContext& ctx) {
  if (ctx.request().nr == config_.target_nr) {
    ++observed_;
    const std::uint64_t period = config_.every_nth == 0 ? 1 : config_.every_nth;
    if (observed_ % period == 0) {
      ++injected_;
      return kern::errno_result(config_.error);
    }
  }
  return ctx.pass_through();
}

std::uint64_t PidCachingHandler::handle(InterposeContext& ctx) {
  if (ctx.request().nr == kern::kSysGetpid) {
    if (cached_pid_ == 0) {
      cached_pid_ = ctx.pass_through();
    } else {
      ++hits_;
    }
    return cached_pid_;
  }
  return ctx.pass_through();
}

}  // namespace lzp::interpose
