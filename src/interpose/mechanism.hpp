// Common interface over interposition mechanisms, and the Table-I
// characteristics each mechanism reports. Concrete mechanisms live in
// src/mechanisms (kernel-interface based), src/zpoline (pure rewriting), and
// src/core (lazypoline, the paper's contribution).
#pragma once

#include <memory>
#include <string>

#include "interpose/handler.hpp"
#include "kernel/machine.hpp"

namespace lzp::interpose {

enum class Level : std::uint8_t { kLow, kModerate, kHigh, kFull, kLimited };

[[nodiscard]] constexpr std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::kLow: return "Low";
    case Level::kModerate: return "Moderate";
    case Level::kHigh: return "High";
    case Level::kFull: return "Full";
    case Level::kLimited: return "Limited";
  }
  return "?";
}

// Table I row.
struct Characteristics {
  Level expressiveness = Level::kFull;
  bool exhaustive = false;
  Level efficiency = Level::kLow;
};

class Mechanism {
 public:
  virtual ~Mechanism() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  // Installs interposition on the given task: every syscall this task (and,
  // where the mechanism supports it, its future children) performs should
  // reach `handler`.
  virtual Status install(kern::Machine& machine, kern::Tid tid,
                         std::shared_ptr<SyscallHandler> handler) = 0;

  // Static self-description for the Table-I harness. The harness also
  // *verifies* these claims experimentally (bench/table1_characteristics).
  [[nodiscard]] virtual Characteristics characteristics() const = 0;
};

}  // namespace lzp::interpose
