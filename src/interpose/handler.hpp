// The public interposer API.
//
// A SyscallHandler is the user-supplied interposition function: it sees
// every intercepted syscall with full context — number, arguments, the
// invoking task's memory (for deep argument inspection: dereferencing
// pointers, reading strings) — and decides what to do: pass the syscall
// through, rewrite its arguments, emulate it, or deny it. This is the "full
// expressiveness" column of the paper's Table I; mechanisms that cannot run
// such a handler (seccomp-bpf) expose a narrower installation API instead.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "kernel/machine.hpp"

namespace lzp::interpose {

struct SyscallRequest {
  std::uint64_t nr = 0;
  std::array<std::uint64_t, 6> args{};
  // Address of the invoking syscall instruction, when the mechanism knows it
  // (rewriters and SUD do; 0 otherwise).
  std::uint64_t site = 0;
};

// Handed to the handler. Provides the "deep inspection" capabilities that
// distinguish expressive interposers, plus the pass-through primitive.
class InterposeContext {
 public:
  InterposeContext(kern::Machine& machine, kern::Task& task, SyscallRequest req,
                   std::function<std::uint64_t(std::uint64_t,
                                               const std::array<std::uint64_t, 6>&)>
                       raw_syscall)
      : machine_(machine),
        task_(task),
        req_(req),
        raw_syscall_(std::move(raw_syscall)) {}

  [[nodiscard]] const SyscallRequest& request() const noexcept { return req_; }
  [[nodiscard]] kern::Task& task() noexcept { return task_; }
  [[nodiscard]] kern::Machine& machine() noexcept { return machine_; }

  // Executes the (possibly modified) syscall for real and returns rax.
  std::uint64_t pass_through() { return raw_syscall_(req_.nr, req_.args); }
  std::uint64_t execute(std::uint64_t nr,
                        const std::array<std::uint64_t, 6>& args) {
    return raw_syscall_(nr, args);
  }

  // Deep argument inspection: dereference user pointers (what BPF cannot do).
  Result<std::string> read_cstring(std::uint64_t addr, std::size_t max = 4096) const;
  Result<std::vector<std::uint8_t>> read_bytes(std::uint64_t addr,
                                               std::size_t length) const;
  Status write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data);

  // Mutable request (argument rewriting).
  SyscallRequest& mutable_request() noexcept { return req_; }

 private:
  kern::Machine& machine_;
  kern::Task& task_;
  SyscallRequest req_;
  std::function<std::uint64_t(std::uint64_t, const std::array<std::uint64_t, 6>&)>
      raw_syscall_;
};

class SyscallHandler {
 public:
  virtual ~SyscallHandler() = default;
  // Must return the value to place in the application's rax.
  virtual std::uint64_t handle(InterposeContext& ctx) = 0;
  // Entry-stop interposition. Mechanisms that stop the tracee BEFORE kernel
  // execution (ptrace) call this first; returning true suppresses execution
  // entirely and places *result in rax (rr's orig_rax = -1 injection
  // pattern). `handle` is not called for a suppressed syscall. Handlers that
  // only observe (the default) return false and are invoked at exit stop.
  virtual bool pre_execute(InterposeContext& ctx, std::uint64_t* result) {
    (void)ctx;
    (void)result;
    return false;
  }
  [[nodiscard]] virtual std::string name() const = 0;
};

// --- standard handlers -------------------------------------------------------

// Executes the syscall unmodified ("dummy" interposition function used for
// all of the paper's overhead measurements, §V-B).
class DummyHandler final : public SyscallHandler {
 public:
  std::uint64_t handle(InterposeContext& ctx) override {
    return ctx.pass_through();
  }
  [[nodiscard]] std::string name() const override { return "dummy"; }
};

// One trace record per interposed syscall (the §V-A exhaustiveness probe:
// "print the current system call with all its arguments, then execute it").
struct TraceRecord {
  std::uint64_t nr = 0;
  std::array<std::uint64_t, 6> args{};
  std::uint64_t result = 0;
  kern::Tid tid = 0;
  // strace-style decoded detail (e.g. the dereferenced path of an open).
  std::string detail;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class TracingHandler final : public SyscallHandler {
 public:
  std::uint64_t handle(InterposeContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "tracing"; }

  [[nodiscard]] const std::vector<TraceRecord>& trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] std::vector<std::uint64_t> traced_numbers() const;
  void clear() { trace_.clear(); }

 private:
  std::vector<TraceRecord> trace_;
};

// Path-based sandbox policy: denies opens of protected path prefixes. This
// requires dereferencing the path pointer — the canonical "deep argument
// inspection" that seccomp-bpf cannot express.
class PathPolicyHandler final : public SyscallHandler {
 public:
  explicit PathPolicyHandler(std::vector<std::string> denied_prefixes)
      : denied_prefixes_(std::move(denied_prefixes)) {}

  std::uint64_t handle(InterposeContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "path-policy"; }

  [[nodiscard]] std::uint64_t denials() const noexcept { return denials_; }

 private:
  std::vector<std::string> denied_prefixes_;
  std::uint64_t denials_ = 0;
};

// Wraps another handler and deliberately clobbers extended state, modeling
// interposer code whose compiler freely uses SSE/AVX/x87 (paper §IV-B). An
// interposition mechanism that does not preserve xstate will leak this
// corruption into the application.
class XstateClobberingHandler final : public SyscallHandler {
 public:
  explicit XstateClobberingHandler(std::shared_ptr<SyscallHandler> inner)
      : inner_(std::move(inner)) {}

  std::uint64_t handle(InterposeContext& ctx) override;
  [[nodiscard]] std::string name() const override {
    return "xstate-clobbering(" + inner_->name() + ")";
  }

 private:
  std::shared_ptr<SyscallHandler> inner_;
};

// Deterministic fault injection: forces the Nth, 2Nth, ... matching syscall
// to fail with a chosen errno instead of executing — the
// reliability-testing use case of the paper's introduction (i/ii). With an
// exhaustive mechanism underneath, no syscall can dodge the campaign.
class FaultInjectionHandler final : public SyscallHandler {
 public:
  struct Config {
    std::uint64_t target_nr = 0;   // syscall to sabotage
    std::uint64_t every_nth = 2;   // fail every Nth occurrence (1 = always)
    std::int64_t error = 0;        // errno to return (positive, e.g. EINTR)
  };

  explicit FaultInjectionHandler(Config config) : config_(config) {}

  std::uint64_t handle(InterposeContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "fault-injection"; }

  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }

 private:
  Config config_;
  std::uint64_t observed_ = 0;
  std::uint64_t injected_ = 0;
};

// Emulation handler: answers getpid/gettid from a cache without entering the
// kernel (an "OS emulation" use case, Table I row (iii)); everything else
// passes through.
class PidCachingHandler final : public SyscallHandler {
 public:
  std::uint64_t handle(InterposeContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "pid-cache"; }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }

 private:
  std::uint64_t cached_pid_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace lzp::interpose
