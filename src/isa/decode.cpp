#include "isa/decode.hpp"

#include <cstring>

namespace lzp::isa {
namespace {

Status truncated() {
  return Status{StatusCode::kOutOfRange, "decode: truncated instruction"};
}

Result<Gpr> reg_operand(std::uint8_t byte) {
  if (byte >= kNumGprs) {
    return Status{StatusCode::kInvalidArgument, "decode: bad register operand"};
  }
  return static_cast<Gpr>(byte);
}

Result<std::uint8_t> xreg_operand(std::uint8_t byte) {
  if (byte >= kNumXmm) {
    return Status{StatusCode::kInvalidArgument, "decode: bad xmm operand"};
  }
  return byte;
}

std::int64_t read_imm32(const std::uint8_t* p) noexcept {
  std::int32_t value = 0;
  std::memcpy(&value, p, sizeof(value));
  return value;  // sign-extended
}

std::int64_t read_imm64(const std::uint8_t* p) noexcept {
  std::int64_t value = 0;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

}  // namespace

bool is_syscall_bytes(std::span<const std::uint8_t> bytes) noexcept {
  return bytes.size() >= 2 && bytes[0] == kByte0F &&
         (bytes[1] == kByteSyscall2 || bytes[1] == kByteSysenter2);
}

Result<Instruction> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return truncated();
  Instruction insn;
  const std::uint8_t opcode = bytes[0];

  auto need = [&](std::size_t n) { return bytes.size() >= n; };

  // 1-byte forms.
  switch (opcode) {
    case kByteNop: insn.op = Op::kNop; insn.length = 1; return insn;
    case 0xC3: insn.op = Op::kRet; insn.length = 1; return insn;
    case 0xF4: insn.op = Op::kHlt; insn.length = 1; return insn;
    case 0xCC: insn.op = Op::kTrap; insn.length = 1; return insn;
    case 0xAA: insn.op = Op::kFaddP; insn.length = 1; return insn;
    default: break;
  }

  // 2-byte fixed forms.
  if (opcode == kByte0F) {
    if (!need(2)) return truncated();
    if (bytes[1] == kByteSyscall2) { insn.op = Op::kSyscall; insn.length = 2; return insn; }
    if (bytes[1] == kByteSysenter2) { insn.op = Op::kSysenter; insn.length = 2; return insn; }
    return Status{StatusCode::kInvalidArgument, "decode: unknown 0F escape"};
  }
  if (opcode == kByteFF) {
    if (!need(2)) return truncated();
    if (bytes[1] == kByteCallRax2) { insn.op = Op::kCallRax; insn.length = 2; return insn; }
    return Status{StatusCode::kInvalidArgument, "decode: unknown FF form"};
  }

  auto reg_form = [&](Op op) -> Result<Instruction> {
    if (!need(2)) return truncated();
    auto r = reg_operand(bytes[1]);
    if (!r) return r.status();
    insn.op = op; insn.length = 2; insn.r1 = r.value();
    return insn;
  };
  auto reg_reg_form = [&](Op op) -> Result<Instruction> {
    if (!need(3)) return truncated();
    auto a = reg_operand(bytes[1]);
    if (!a) return a.status();
    auto b = reg_operand(bytes[2]);
    if (!b) return b.status();
    insn.op = op; insn.length = 3; insn.r1 = a.value(); insn.r2 = b.value();
    return insn;
  };
  auto reg_imm64_form = [&](Op op) -> Result<Instruction> {
    if (!need(10)) return truncated();
    auto r = reg_operand(bytes[1]);
    if (!r) return r.status();
    insn.op = op; insn.length = 10; insn.r1 = r.value();
    insn.imm = read_imm64(bytes.data() + 2);
    return insn;
  };
  auto reg_imm32_form = [&](Op op) -> Result<Instruction> {
    if (!need(6)) return truncated();
    auto r = reg_operand(bytes[1]);
    if (!r) return r.status();
    insn.op = op; insn.length = 6; insn.r1 = r.value();
    insn.imm = read_imm32(bytes.data() + 2);
    return insn;
  };
  auto rel32_form = [&](Op op) -> Result<Instruction> {
    if (!need(5)) return truncated();
    insn.op = op; insn.length = 5; insn.imm = read_imm32(bytes.data() + 1);
    return insn;
  };
  // dst, base, disp32 (LOAD/LOAD8: r1=dst, r2=base) or base, disp32, src
  // (STORE/STORE8: r1=src, r2=base). Encodings keep both registers adjacent.
  auto mem_form = [&](Op op, bool dst_first) -> Result<Instruction> {
    if (!need(7)) return truncated();
    auto a = reg_operand(bytes[1]);
    if (!a) return a.status();
    auto b = reg_operand(bytes[2]);
    if (!b) return b.status();
    insn.op = op; insn.length = 7;
    if (dst_first) { insn.r1 = a.value(); insn.r2 = b.value(); }
    else { insn.r2 = a.value(); insn.r1 = b.value(); }
    insn.imm = read_imm32(bytes.data() + 3);
    return insn;
  };
  auto gs_form = [&](Op op) -> Result<Instruction> {
    if (!need(6)) return truncated();
    auto r = reg_operand(bytes[1]);
    if (!r) return r.status();
    insn.op = op; insn.length = 6; insn.r1 = r.value();
    insn.imm = read_imm32(bytes.data() + 2);
    return insn;
  };
  auto xmm_imm64_form = [&](Op op) -> Result<Instruction> {
    if (!need(10)) return truncated();
    auto x = xreg_operand(bytes[1]);
    if (!x) return x.status();
    insn.op = op; insn.length = 10; insn.xr1 = x.value();
    insn.imm = read_imm64(bytes.data() + 2);
    return insn;
  };
  auto xmm_gpr_form = [&](Op op, bool xmm_first) -> Result<Instruction> {
    if (!need(3)) return truncated();
    const std::uint8_t a = bytes[1];
    const std::uint8_t b = bytes[2];
    const std::uint8_t xbyte = xmm_first ? a : b;
    const std::uint8_t gbyte = xmm_first ? b : a;
    auto x = xreg_operand(xbyte);
    if (!x) return x.status();
    auto g = reg_operand(gbyte);
    if (!g) return g.status();
    insn.op = op; insn.length = 3; insn.xr1 = x.value(); insn.r1 = g.value();
    return insn;
  };
  // XSTORE: base, disp32, xmm ; XLOAD: xmm, base, disp32.
  auto xmem_form = [&](Op op, bool xmm_first) -> Result<Instruction> {
    if (!need(7)) return truncated();
    const std::uint8_t a = bytes[1];
    const std::uint8_t b = bytes[2];
    const std::uint8_t xbyte = xmm_first ? a : b;
    const std::uint8_t gbyte = xmm_first ? b : a;
    auto x = xreg_operand(xbyte);
    if (!x) return x.status();
    auto g = reg_operand(gbyte);
    if (!g) return g.status();
    insn.op = op; insn.length = 7; insn.xr1 = x.value(); insn.r1 = g.value();
    insn.imm = read_imm32(bytes.data() + 3);
    return insn;
  };

  switch (opcode) {
    case 0xE8: return rel32_form(Op::kCallRel);
    case 0xE9: return rel32_form(Op::kJmpRel);
    case 0xFE: return reg_form(Op::kJmpReg);
    case 0xB8: return reg_imm64_form(Op::kMovRI);
    case 0x89: return reg_reg_form(Op::kMovRR);
    case 0x8B: return mem_form(Op::kLoad, /*dst_first=*/true);
    case 0x8C: return mem_form(Op::kStore, /*dst_first=*/false);
    case 0x8D: return mem_form(Op::kLoad8, /*dst_first=*/true);
    case 0x8E: return mem_form(Op::kStore8, /*dst_first=*/false);
    case 0x60: return gs_form(Op::kLoadGs);
    case 0x61: return gs_form(Op::kStoreGs);
    case 0x62: return gs_form(Op::kLoadGs8);
    case 0x63: return gs_form(Op::kStoreGs8);
    case 0x50: return reg_form(Op::kPush);
    case 0x58: return reg_form(Op::kPop);
    case 0x01: return reg_reg_form(Op::kAddRR);
    case 0x29: return reg_reg_form(Op::kSubRR);
    case 0x31: return reg_reg_form(Op::kXorRR);
    case 0x6B: return reg_reg_form(Op::kMulRR);
    case 0x6C: return reg_reg_form(Op::kDivRR);
    case 0x6D: return reg_reg_form(Op::kModRR);
    case 0x81: return reg_imm32_form(Op::kAddRI);
    case 0x2D: return reg_imm32_form(Op::kSubRI);
    case 0x3D: return reg_imm32_form(Op::kCmpRI);
    case 0x39: return reg_reg_form(Op::kCmpRR);
    case 0x74: return rel32_form(Op::kJz);
    case 0x75: return rel32_form(Op::kJnz);
    case 0x7C: return rel32_form(Op::kJlt);
    case 0x7F: return rel32_form(Op::kJgt);
    case 0xA0: return xmm_imm64_form(Op::kXmovXI);
    case 0xA1: return xmm_gpr_form(Op::kXmovXR, /*xmm_first=*/true);
    case 0xA2: return xmm_gpr_form(Op::kXmovRX, /*xmm_first=*/false);
    case 0xA3: return xmem_form(Op::kXstore, /*xmm_first=*/false);
    case 0xA4: return xmem_form(Op::kXload, /*xmm_first=*/true);
    case 0xA5: {
      if (!need(2)) return truncated();
      auto x = xreg_operand(bytes[1]);
      if (!x) return x.status();
      insn.op = Op::kXzero; insn.length = 2; insn.xr1 = x.value();
      return insn;
    }
    case 0xA6: return xmm_gpr_form(Op::kYmovHiYR, /*xmm_first=*/true);
    case 0xA7: return xmm_gpr_form(Op::kYmovRYHi, /*xmm_first=*/false);
    case 0xA8: {
      if (!need(9)) return truncated();
      insn.op = Op::kFldI; insn.length = 9;
      insn.imm = read_imm64(bytes.data() + 1);
      return insn;
    }
    case 0xC7: {
      // mov r32, imm32: zero-extends into the full register (x86-64 rule),
      // so the stored imm is the unsigned 32-bit value, not sign-extended.
      if (!need(6)) return truncated();
      auto r = reg_operand(bytes[1]);
      if (!r) return r.status();
      std::uint32_t value = 0;
      std::memcpy(&value, bytes.data() + 2, sizeof(value));
      insn.op = Op::kMovRI32; insn.length = 6; insn.r1 = r.value();
      insn.imm = static_cast<std::int64_t>(value);
      return insn;
    }
    case 0xA9: return reg_form(Op::kFstpR);
    case 0xAB: return reg_form(Op::kRdGs);
    case 0xAC: return reg_form(Op::kWrGs);
    case kByteHostCall: {
      if (!need(5)) return truncated();
      insn.op = Op::kHostCall;
      insn.length = 5;
      insn.imm = read_imm32(bytes.data() + 1);
      return insn;
    }
    default:
      return Status{StatusCode::kInvalidArgument, "decode: unknown opcode"};
  }
}

}  // namespace lzp::isa
