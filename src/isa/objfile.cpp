#include "isa/objfile.hpp"

#include <cstring>

namespace lzp::isa {
namespace {

constexpr std::uint8_t kMagic[4] = {'L', 'Z', 'P', 'F'};

template <typename T>
void put(std::vector<std::uint8_t>& out, const T& value) {
  const std::size_t old = out.size();
  out.resize(old + sizeof(T));
  std::memcpy(out.data() + old, &value, sizeof(T));
}

template <typename T>
bool get(std::span<const std::uint8_t>& in, T* value) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

}  // namespace

std::vector<std::uint8_t> serialize_program(const Program& program) {
  // Constructed from the magic rather than insert()ed into an empty vector:
  // GCC 12's -Wstringop-overflow misfires on the range-insert reallocation
  // path here under -O2.
  std::vector<std::uint8_t> out(std::begin(kMagic), std::end(kMagic));
  constexpr std::size_t kSiteRecordSize = 8 + 1 + 1 + 1 + 1;
  out.reserve(sizeof(kMagic) + sizeof(kObjFileVersion) + 5 * sizeof(std::uint64_t) +
              program.name.size() + program.image.size() +
              program.ground_truth.size() * kSiteRecordSize);
  put(out, kObjFileVersion);
  put(out, program.base);
  put(out, program.entry);
  put(out, static_cast<std::uint64_t>(program.image.size()));
  put(out, static_cast<std::uint64_t>(program.ground_truth.size()));
  put(out, program.stack_size);
  put(out, static_cast<std::uint64_t>(program.name.size()));
  out.insert(out.end(), program.name.begin(), program.name.end());
  out.insert(out.end(), program.image.begin(), program.image.end());
  for (const AssembledSite& site : program.ground_truth) {
    put(out, site.offset);
    put(out, static_cast<std::uint8_t>(site.op));
    put(out, site.length);
    put(out, static_cast<std::uint8_t>(site.is_data ? 1 : 0));
    put(out, std::uint8_t{0});  // pad
  }
  return out;
}

Result<Program> parse_program(std::span<const std::uint8_t> bytes) {
  auto bad = [](const char* what) {
    return make_error(StatusCode::kInvalidArgument,
                      std::string("objfile: ") + what);
  };
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return bad("bad magic");
  }
  bytes = bytes.subspan(4);

  std::uint32_t version = 0;
  Program program;
  std::uint64_t image_size = 0;
  std::uint64_t site_count = 0;
  std::uint64_t name_len = 0;
  if (!get(bytes, &version)) return bad("truncated header");
  if (version != kObjFileVersion) return bad("unsupported version");
  if (!get(bytes, &program.base) || !get(bytes, &program.entry) ||
      !get(bytes, &image_size) || !get(bytes, &site_count) ||
      !get(bytes, &program.stack_size) || !get(bytes, &name_len)) {
    return bad("truncated header");
  }
  if (name_len > 4096 || bytes.size() < name_len) return bad("bad name");
  program.name.assign(reinterpret_cast<const char*>(bytes.data()), name_len);
  bytes = bytes.subspan(name_len);

  if (bytes.size() < image_size) return bad("truncated image");
  program.image.assign(bytes.begin(), bytes.begin() + static_cast<long>(image_size));
  bytes = bytes.subspan(image_size);

  constexpr std::size_t kSiteRecord = 8 + 1 + 1 + 1 + 1;
  if (site_count > (1u << 24) || bytes.size() < site_count * kSiteRecord) {
    return bad("truncated site table");
  }
  program.ground_truth.reserve(site_count);
  for (std::uint64_t i = 0; i < site_count; ++i) {
    AssembledSite site;
    std::uint8_t op = 0;
    std::uint8_t is_data = 0;
    std::uint8_t pad = 0;
    if (!get(bytes, &site.offset) || !get(bytes, &op) ||
        !get(bytes, &site.length) || !get(bytes, &is_data) || !get(bytes, &pad)) {
      return bad("truncated site record");
    }
    site.op = static_cast<Op>(op);
    site.is_data = is_data != 0;
    if (site.offset > image_size) return bad("site offset out of range");
    program.ground_truth.push_back(site);
  }

  if (program.entry < program.base ||
      program.entry >= program.base + image_size) {
    return bad("entry outside image");
  }
  return program;
}

std::string program_path(const std::string& name) { return "bin/" + name; }

}  // namespace lzp::isa
