#include "isa/assemble.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

namespace lzp::isa {
namespace {

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  const auto old = out.size();
  out.resize(old + 8);
  std::memcpy(out.data() + old, &value, 8);
}

void append_i32(std::vector<std::uint8_t>& out, std::int32_t value) {
  const auto old = out.size();
  out.resize(old + 4);
  std::memcpy(out.data() + old, &value, 4);
}

std::uint8_t reg_byte(Gpr reg) noexcept { return static_cast<std::uint8_t>(reg); }

}  // namespace

Assembler::Label Assembler::new_label() {
  labels_.push_back(-1);
  return labels_.size() - 1;
}

void Assembler::bind(Label label) {
  labels_.at(label) = static_cast<std::int64_t>(code_.size());
}

void Assembler::emit_op(Op op, std::span<const std::uint8_t> bytes) {
  sites_.push_back({static_cast<std::uint64_t>(code_.size()), op,
                    static_cast<std::uint8_t>(bytes.size()), /*is_data=*/false});
  code_.insert(code_.end(), bytes.begin(), bytes.end());
}

void Assembler::emit_op(Op op, std::initializer_list<std::uint8_t> bytes) {
  emit_op(op, std::span<const std::uint8_t>(bytes.begin(), bytes.size()));
}

void Assembler::emit_rel32(Op op, std::uint8_t opcode, Label target) {
  sites_.push_back({static_cast<std::uint64_t>(code_.size()), op, 5, false});
  code_.push_back(opcode);
  fixups_.push_back({code_.size(), code_.size() + 4, target});
  append_i32(code_, 0);
}

void Assembler::nop() { emit_op(Op::kNop, {{kByteNop}}); }

void Assembler::nops(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) nop();
}

void Assembler::syscall_() { emit_op(Op::kSyscall, {{kByte0F, kByteSyscall2}}); }
void Assembler::sysenter_() { emit_op(Op::kSysenter, {{kByte0F, kByteSysenter2}}); }
void Assembler::call_rax() { emit_op(Op::kCallRax, {{kByteFF, kByteCallRax2}}); }

void Assembler::call(Label target) { emit_rel32(Op::kCallRel, 0xE8, target); }
void Assembler::jmp(Label target) { emit_rel32(Op::kJmpRel, 0xE9, target); }
void Assembler::jz(Label target) { emit_rel32(Op::kJz, 0x74, target); }
void Assembler::jnz(Label target) { emit_rel32(Op::kJnz, 0x75, target); }
void Assembler::jlt(Label target) { emit_rel32(Op::kJlt, 0x7C, target); }
void Assembler::jgt(Label target) { emit_rel32(Op::kJgt, 0x7F, target); }

void Assembler::jmp_reg(Gpr reg) { emit_op(Op::kJmpReg, {{0xFE, reg_byte(reg)}}); }
void Assembler::ret() { emit_op(Op::kRet, {{0xC3}}); }
void Assembler::hlt() { emit_op(Op::kHlt, {{0xF4}}); }
void Assembler::trap() { emit_op(Op::kTrap, {{0xCC}}); }

void Assembler::mov(Gpr dst, std::uint64_t imm) {
  std::vector<std::uint8_t> bytes{0xB8, reg_byte(dst)};
  append_u64(bytes, imm);
  emit_op(Op::kMovRI, bytes);
}

void Assembler::mov(Gpr dst, Gpr src) {
  emit_op(Op::kMovRR, {{0x89, reg_byte(dst), reg_byte(src)}});
}

void Assembler::load(Gpr dst, Gpr base, std::int32_t disp) {
  std::vector<std::uint8_t> bytes{0x8B, reg_byte(dst), reg_byte(base)};
  append_i32(bytes, disp);
  emit_op(Op::kLoad, bytes);
}

void Assembler::store(Gpr base, std::int32_t disp, Gpr src) {
  std::vector<std::uint8_t> bytes{0x8C, reg_byte(base), reg_byte(src)};
  append_i32(bytes, disp);
  emit_op(Op::kStore, bytes);
}

void Assembler::load8(Gpr dst, Gpr base, std::int32_t disp) {
  std::vector<std::uint8_t> bytes{0x8D, reg_byte(dst), reg_byte(base)};
  append_i32(bytes, disp);
  emit_op(Op::kLoad8, bytes);
}

void Assembler::store8(Gpr base, std::int32_t disp, Gpr src) {
  std::vector<std::uint8_t> bytes{0x8E, reg_byte(base), reg_byte(src)};
  append_i32(bytes, disp);
  emit_op(Op::kStore8, bytes);
}

void Assembler::load_gs(Gpr dst, std::int32_t disp) {
  std::vector<std::uint8_t> bytes{0x60, reg_byte(dst)};
  append_i32(bytes, disp);
  emit_op(Op::kLoadGs, bytes);
}

void Assembler::store_gs(std::int32_t disp, Gpr src) {
  std::vector<std::uint8_t> bytes{0x61, reg_byte(src)};
  append_i32(bytes, disp);
  emit_op(Op::kStoreGs, bytes);
}

void Assembler::load_gs8(Gpr dst, std::int32_t disp) {
  std::vector<std::uint8_t> bytes{0x62, reg_byte(dst)};
  append_i32(bytes, disp);
  emit_op(Op::kLoadGs8, bytes);
}

void Assembler::store_gs8(std::int32_t disp, Gpr src) {
  std::vector<std::uint8_t> bytes{0x63, reg_byte(src)};
  append_i32(bytes, disp);
  emit_op(Op::kStoreGs8, bytes);
}

void Assembler::push(Gpr reg) { emit_op(Op::kPush, {{0x50, reg_byte(reg)}}); }
void Assembler::pop(Gpr reg) { emit_op(Op::kPop, {{0x58, reg_byte(reg)}}); }

void Assembler::add(Gpr dst, Gpr src) {
  emit_op(Op::kAddRR, {{0x01, reg_byte(dst), reg_byte(src)}});
}
void Assembler::sub(Gpr dst, Gpr src) {
  emit_op(Op::kSubRR, {{0x29, reg_byte(dst), reg_byte(src)}});
}

void Assembler::mul(Gpr dst, Gpr src) {
  emit_op(Op::kMulRR, {{0x6B, reg_byte(dst), reg_byte(src)}});
}

void Assembler::div(Gpr dst, Gpr src) {
  emit_op(Op::kDivRR, {{0x6C, reg_byte(dst), reg_byte(src)}});
}

void Assembler::mod(Gpr dst, Gpr src) {
  emit_op(Op::kModRR, {{0x6D, reg_byte(dst), reg_byte(src)}});
}

void Assembler::add(Gpr dst, std::int32_t imm) {
  std::vector<std::uint8_t> bytes{0x81, reg_byte(dst)};
  append_i32(bytes, imm);
  emit_op(Op::kAddRI, bytes);
}

void Assembler::sub(Gpr dst, std::int32_t imm) {
  std::vector<std::uint8_t> bytes{0x2D, reg_byte(dst)};
  append_i32(bytes, imm);
  emit_op(Op::kSubRI, bytes);
}

void Assembler::cmp(Gpr reg, std::int32_t imm) {
  std::vector<std::uint8_t> bytes{0x3D, reg_byte(reg)};
  append_i32(bytes, imm);
  emit_op(Op::kCmpRI, bytes);
}

void Assembler::cmp(Gpr a, Gpr b) {
  emit_op(Op::kCmpRR, {{0x39, reg_byte(a), reg_byte(b)}});
}

void Assembler::xor_(Gpr dst, Gpr src) {
  emit_op(Op::kXorRR, {{0x31, reg_byte(dst), reg_byte(src)}});
}

void Assembler::mov32(Gpr dst, std::uint32_t imm) {
  std::vector<std::uint8_t> bytes{0xC7, reg_byte(dst)};
  append_i32(bytes, static_cast<std::int32_t>(imm));
  emit_op(Op::kMovRI32, bytes);
}

void Assembler::xmov(std::uint8_t xmm, std::uint64_t imm_both_lanes) {
  std::vector<std::uint8_t> bytes{0xA0, xmm};
  append_u64(bytes, imm_both_lanes);
  emit_op(Op::kXmovXI, bytes);
}

void Assembler::xmov_from_gpr(std::uint8_t xmm, Gpr src) {
  emit_op(Op::kXmovXR, {{0xA1, xmm, reg_byte(src)}});
}

void Assembler::xmov_to_gpr(Gpr dst, std::uint8_t xmm) {
  emit_op(Op::kXmovRX, {{0xA2, reg_byte(dst), xmm}});
}

void Assembler::xstore(Gpr base, std::int32_t disp, std::uint8_t xmm) {
  std::vector<std::uint8_t> bytes{0xA3, reg_byte(base), xmm};
  append_i32(bytes, disp);
  emit_op(Op::kXstore, bytes);
}

void Assembler::xload(std::uint8_t xmm, Gpr base, std::int32_t disp) {
  std::vector<std::uint8_t> bytes{0xA4, xmm, reg_byte(base)};
  append_i32(bytes, disp);
  emit_op(Op::kXload, bytes);
}

void Assembler::xzero(std::uint8_t xmm) { emit_op(Op::kXzero, {{0xA5, xmm}}); }

void Assembler::ymov_hi(std::uint8_t ymm, Gpr src) {
  emit_op(Op::kYmovHiYR, {{0xA6, ymm, reg_byte(src)}});
}

void Assembler::ymov_rd_hi(Gpr dst, std::uint8_t ymm) {
  emit_op(Op::kYmovRYHi, {{0xA7, reg_byte(dst), ymm}});
}

void Assembler::fld(std::uint64_t bits) {
  std::vector<std::uint8_t> bytes{0xA8};
  append_u64(bytes, bits);
  emit_op(Op::kFldI, bytes);
}

void Assembler::fstp(Gpr dst) { emit_op(Op::kFstpR, {{0xA9, reg_byte(dst)}}); }
void Assembler::faddp() { emit_op(Op::kFaddP, {{0xAA}}); }
void Assembler::rdgs(Gpr dst) { emit_op(Op::kRdGs, {{0xAB, reg_byte(dst)}}); }
void Assembler::wrgs(Gpr src) { emit_op(Op::kWrGs, {{0xAC, reg_byte(src)}}); }

void Assembler::hostcall(std::uint32_t index) {
  std::vector<std::uint8_t> bytes{kByteHostCall};
  append_i32(bytes, static_cast<std::int32_t>(index));
  emit_op(Op::kHostCall, bytes);
}

void Assembler::db(std::span<const std::uint8_t> bytes) {
  sites_.push_back({static_cast<std::uint64_t>(code_.size()), Op::kNop,
                    static_cast<std::uint8_t>(
                        std::min<std::size_t>(bytes.size(), 255)),
                    /*is_data=*/true});
  code_.insert(code_.end(), bytes.begin(), bytes.end());
}

void Assembler::db(std::initializer_list<std::uint8_t> bytes) {
  db(std::span<const std::uint8_t>(bytes.begin(), bytes.size()));
}

Result<std::vector<std::uint8_t>> Assembler::finish() {
  if (finished_) {
    return make_error(StatusCode::kFailedPrecondition, "assembler reused");
  }
  for (const Fixup& fixup : fixups_) {
    const std::int64_t target = labels_.at(fixup.label);
    if (target < 0) {
      return make_error(StatusCode::kFailedPrecondition,
                        "unbound label " + std::to_string(fixup.label));
    }
    const std::int64_t rel = target - static_cast<std::int64_t>(fixup.next_insn);
    if (rel < std::numeric_limits<std::int32_t>::min() ||
        rel > std::numeric_limits<std::int32_t>::max()) {
      return make_error(StatusCode::kOutOfRange, "rel32 overflow");
    }
    const auto rel32 = static_cast<std::int32_t>(rel);
    std::memcpy(code_.data() + fixup.patch_offset, &rel32, 4);
  }
  finished_ = true;
  return code_;
}

Result<std::uint64_t> Assembler::label_offset(Label label) const {
  const std::int64_t offset = labels_.at(label);
  if (offset < 0) {
    return make_error(StatusCode::kFailedPrecondition, "unbound label");
  }
  return static_cast<std::uint64_t>(offset);
}

std::vector<std::uint64_t> Program::true_syscall_addresses() const {
  std::vector<std::uint64_t> out;
  for (const AssembledSite& site : ground_truth) {
    if (!site.is_data && (site.op == Op::kSyscall || site.op == Op::kSysenter)) {
      out.push_back(base + site.offset);
    }
  }
  return out;
}

Result<Program> make_program(std::string name, Assembler& assembler,
                             Assembler::Label entry_label, std::uint64_t base) {
  auto entry = assembler.label_offset(entry_label);
  if (!entry) return entry.status();
  auto sites = assembler.sites();  // copy before finish() for ground truth
  auto code = assembler.finish();
  if (!code) return code.status();
  Program program;
  program.name = std::move(name);
  program.base = base;
  program.entry = base + entry.value();
  program.image = std::move(code).value();
  program.ground_truth = std::move(sites);
  return program;
}

}  // namespace lzp::isa
