// LZPF — the simulator's object-file format (a miniature ELF stand-in).
//
// Programs are stored in the VFS as flat binaries with a small header so
// that the pieces of the system that operate on *files* behave like their
// real counterparts: execve loads the image from the filesystem, and static
// rewriters (zpoline) scan the on-disk text exactly as they would scan an
// ELF's executable segments.
//
// Layout (little-endian):
//   0x00  magic      "LZPF"
//   0x04  version    u32 (currently 1)
//   0x08  base       u64   load address
//   0x10  entry      u64   absolute entry point
//   0x18  image_size u64
//   0x20  site_count u64   ground-truth records (evaluation metadata only;
//                          loaders and rewriters must not rely on them)
//   0x28  stack_size u64
//   0x30  name_len   u64, then the name bytes
//   ....  image bytes
//   ....  site records: {offset u64, op u8, length u8, is_data u8, pad u8}
#pragma once

#include <cstdint>
#include <vector>

#include "base/status.hpp"
#include "isa/assemble.hpp"

namespace lzp::isa {

inline constexpr std::uint32_t kObjFileVersion = 1;

// Serializes a Program into the LZPF byte format.
[[nodiscard]] std::vector<std::uint8_t> serialize_program(const Program& program);

// Parses an LZPF blob. Validates magic, version, and internal sizes.
Result<Program> parse_program(std::span<const std::uint8_t> bytes);

// Conventional VFS path for an installed program image.
[[nodiscard]] std::string program_path(const std::string& name);

}  // namespace lzp::isa
