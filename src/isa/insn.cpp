#include "isa/insn.hpp"

#include "base/strings.hpp"

namespace lzp::isa {

std::string_view gpr_name(Gpr reg) noexcept {
  static constexpr std::array<std::string_view, kNumGprs> kNames = {
      "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
  const auto index = static_cast<std::size_t>(reg);
  return index < kNames.size() ? kNames[index] : "r?";
}

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kSyscall: return "syscall";
    case Op::kSysenter: return "sysenter";
    case Op::kCallRax: return "call rax";
    case Op::kCallRel: return "call";
    case Op::kJmpRel: return "jmp";
    case Op::kJmpReg: return "jmp reg";
    case Op::kRet: return "ret";
    case Op::kHlt: return "hlt";
    case Op::kTrap: return "int3";
    case Op::kMovRI: return "mov ri";
    case Op::kMovRR: return "mov rr";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kLoad8: return "load8";
    case Op::kStore8: return "store8";
    case Op::kLoadGs: return "load gs";
    case Op::kStoreGs: return "store gs";
    case Op::kLoadGs8: return "load8 gs";
    case Op::kStoreGs8: return "store8 gs";
    case Op::kPush: return "push";
    case Op::kPop: return "pop";
    case Op::kAddRR: return "add rr";
    case Op::kSubRR: return "sub rr";
    case Op::kMulRR: return "mul rr";
    case Op::kDivRR: return "div rr";
    case Op::kModRR: return "mod rr";
    case Op::kAddRI: return "add ri";
    case Op::kSubRI: return "sub ri";
    case Op::kCmpRI: return "cmp ri";
    case Op::kCmpRR: return "cmp rr";
    case Op::kJz: return "jz";
    case Op::kJnz: return "jnz";
    case Op::kJlt: return "jlt";
    case Op::kJgt: return "jgt";
    case Op::kXmovXI: return "xmov xi";
    case Op::kXmovXR: return "xmov xr";
    case Op::kXmovRX: return "xmov rx";
    case Op::kXstore: return "movups st";
    case Op::kXload: return "movups ld";
    case Op::kXzero: return "xzero";
    case Op::kYmovHiYR: return "ymov hi";
    case Op::kYmovRYHi: return "ymov rd";
    case Op::kFldI: return "fld";
    case Op::kFstpR: return "fstp";
    case Op::kFaddP: return "faddp";
    case Op::kRdGs: return "rdgsbase";
    case Op::kWrGs: return "wrgsbase";
    case Op::kXorRR: return "xor rr";
    case Op::kMovRI32: return "mov ri32";
    case Op::kHostCall: return "hostcall";
  }
  return "?";
}

std::string Instruction::to_string() const {
  std::string out{op_name(op)};
  switch (op) {
    case Op::kMovRI:
    case Op::kMovRI32:
    case Op::kAddRI:
    case Op::kSubRI:
    case Op::kCmpRI:
      out += " ";
      out += gpr_name(r1);
      out += ", ";
      out += hex_u64(static_cast<std::uint64_t>(imm));
      break;
    case Op::kMovRR:
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kModRR:
    case Op::kCmpRR:
    case Op::kXorRR:
      out += " ";
      out += gpr_name(r1);
      out += ", ";
      out += gpr_name(r2);
      break;
    case Op::kPush:
    case Op::kPop:
    case Op::kJmpReg:
    case Op::kFstpR:
    case Op::kRdGs:
    case Op::kWrGs:
      out += " ";
      out += gpr_name(r1);
      break;
    case Op::kCallRel:
    case Op::kJmpRel:
    case Op::kJz:
    case Op::kJnz:
    case Op::kJlt:
    case Op::kJgt:
      out += " rel ";
      out += std::to_string(imm);
      break;
    default:
      break;
  }
  return out;
}

RegEffects reg_effects(const Instruction& insn) noexcept {
  RegEffects fx;
  const auto r1 = static_cast<std::uint8_t>(insn.r1);
  const auto r2 = static_cast<std::uint8_t>(insn.r2);
  switch (insn.op) {
    case Op::kSyscall:
    case Op::kSysenter:
      // Reads the number + up to 6 args (we record rax; arg reads are
      // reported by the kernel-side hook which knows the arity).
      fx.add_read(RegClass::kGpr, static_cast<std::uint8_t>(Gpr::rax));
      fx.add_write(RegClass::kGpr, static_cast<std::uint8_t>(Gpr::rax));
      fx.add_write(RegClass::kGpr, static_cast<std::uint8_t>(Gpr::rcx));
      fx.add_write(RegClass::kGpr, static_cast<std::uint8_t>(Gpr::r11));
      break;
    case Op::kCallRax:
      fx.add_read(RegClass::kGpr, static_cast<std::uint8_t>(Gpr::rax));
      break;
    case Op::kJmpReg:
      fx.add_read(RegClass::kGpr, r1);
      break;
    case Op::kMovRI:
    case Op::kMovRI32:
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kMovRR:
      fx.add_read(RegClass::kGpr, r2);
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kLoad:
    case Op::kLoad8:
      fx.add_read(RegClass::kGpr, r2);
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kStore:
    case Op::kStore8:
      fx.add_read(RegClass::kGpr, r1);
      fx.add_read(RegClass::kGpr, r2);
      break;
    case Op::kLoadGs:
    case Op::kLoadGs8:
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kStoreGs:
    case Op::kStoreGs8:
      fx.add_read(RegClass::kGpr, r1);
      break;
    case Op::kPush:
      fx.add_read(RegClass::kGpr, r1);
      break;
    case Op::kPop:
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kAddRR:
    case Op::kSubRR:
    case Op::kMulRR:
    case Op::kDivRR:
    case Op::kModRR:
    case Op::kXorRR:
      fx.add_read(RegClass::kGpr, r1);
      fx.add_read(RegClass::kGpr, r2);
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kAddRI:
    case Op::kSubRI:
      fx.add_read(RegClass::kGpr, r1);
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kCmpRI:
      fx.add_read(RegClass::kGpr, r1);
      break;
    case Op::kCmpRR:
      fx.add_read(RegClass::kGpr, r1);
      fx.add_read(RegClass::kGpr, r2);
      break;
    case Op::kXmovXI:
      fx.add_write(RegClass::kXmm, insn.xr1);
      break;
    case Op::kXmovXR:
      fx.add_read(RegClass::kGpr, r1);
      fx.add_write(RegClass::kXmm, insn.xr1);
      break;
    case Op::kXmovRX:
      fx.add_read(RegClass::kXmm, insn.xr1);
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kXstore:
      fx.add_read(RegClass::kXmm, insn.xr1);
      fx.add_read(RegClass::kGpr, r1);
      break;
    case Op::kXload:
      fx.add_read(RegClass::kGpr, r1);
      fx.add_write(RegClass::kXmm, insn.xr1);
      break;
    case Op::kXzero:
      fx.add_write(RegClass::kXmm, insn.xr1);
      break;
    case Op::kYmovHiYR:
      fx.add_read(RegClass::kGpr, r1);
      fx.add_write(RegClass::kYmmHi, insn.xr1);
      break;
    case Op::kYmovRYHi:
      fx.add_read(RegClass::kYmmHi, insn.xr1);
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kFldI:
      fx.add_write(RegClass::kX87, 0);
      break;
    case Op::kFstpR:
      fx.add_read(RegClass::kX87, 0);
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kFaddP:
      fx.add_read(RegClass::kX87, 0);
      fx.add_read(RegClass::kX87, 1);
      fx.add_write(RegClass::kX87, 0);
      break;
    case Op::kRdGs:
      fx.add_write(RegClass::kGpr, r1);
      break;
    case Op::kWrGs:
      fx.add_read(RegClass::kGpr, r1);
      break;
    default:
      break;
  }
  return fx;
}

}  // namespace lzp::isa
