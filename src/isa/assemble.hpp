// A small two-pass assembler for the simulated ISA, plus the Program image
// container that the kernel's execve loads.
//
// The assembler records ground-truth instruction boundaries and syscall
// sites, which the disassembler tests and the zpoline/lazypoline evaluation
// use to check exhaustiveness claims against reality.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "isa/insn.hpp"

namespace lzp::isa {

// Ground truth about one assembled instruction.
struct AssembledSite {
  std::uint64_t offset = 0;  // from start of the code blob
  Op op = Op::kNop;
  std::uint8_t length = 0;
  bool is_data = false;  // emitted via db(): not an instruction at all
};

class Assembler {
 public:
  using Label = std::size_t;

  Label new_label();
  // Binds `label` to the current offset. A label may be bound exactly once.
  void bind(Label label);
  [[nodiscard]] std::uint64_t offset() const noexcept {
    return static_cast<std::uint64_t>(code_.size());
  }

  // --- instruction emitters ------------------------------------------------
  void nop();
  void nops(std::size_t count);
  void syscall_();
  void sysenter_();
  void call_rax();
  void call(Label target);
  void jmp(Label target);
  void jmp_reg(Gpr reg);
  void jz(Label target);
  void jnz(Label target);
  void jlt(Label target);
  void jgt(Label target);
  void ret();
  void hlt();
  void trap();
  void mov(Gpr dst, std::uint64_t imm);
  void mov(Gpr dst, Gpr src);
  // mov r32, imm32 — zero-extends into the full register (x86-64 rule).
  void mov32(Gpr dst, std::uint32_t imm);
  void load(Gpr dst, Gpr base, std::int32_t disp);
  void store(Gpr base, std::int32_t disp, Gpr src);
  void load8(Gpr dst, Gpr base, std::int32_t disp);
  void store8(Gpr base, std::int32_t disp, Gpr src);
  void load_gs(Gpr dst, std::int32_t disp);
  void store_gs(std::int32_t disp, Gpr src);
  void load_gs8(Gpr dst, std::int32_t disp);
  void store_gs8(std::int32_t disp, Gpr src);
  void push(Gpr reg);
  void pop(Gpr reg);
  void add(Gpr dst, Gpr src);
  void sub(Gpr dst, Gpr src);
  void mul(Gpr dst, Gpr src);
  void div(Gpr dst, Gpr src);
  void mod(Gpr dst, Gpr src);
  void add(Gpr dst, std::int32_t imm);
  void sub(Gpr dst, std::int32_t imm);
  void cmp(Gpr reg, std::int32_t imm);
  void cmp(Gpr a, Gpr b);
  void xor_(Gpr dst, Gpr src);
  void xmov(std::uint8_t xmm, std::uint64_t imm_both_lanes);
  void xmov_from_gpr(std::uint8_t xmm, Gpr src);
  void xmov_to_gpr(Gpr dst, std::uint8_t xmm);
  void xstore(Gpr base, std::int32_t disp, std::uint8_t xmm);
  void xload(std::uint8_t xmm, Gpr base, std::int32_t disp);
  void xzero(std::uint8_t xmm);
  void ymov_hi(std::uint8_t ymm, Gpr src);
  void ymov_rd_hi(Gpr dst, std::uint8_t ymm);
  void fld(std::uint64_t bits);
  void fstp(Gpr dst);
  void faddp();
  void rdgs(Gpr dst);
  void wrgs(Gpr src);
  // Transfer to host-bound native code (index = Machine host binding index).
  void hostcall(std::uint32_t index);

  // Raw data bytes (string tables, jump pads, deliberately confusing bytes).
  void db(std::span<const std::uint8_t> bytes);
  void db(std::initializer_list<std::uint8_t> bytes);

  // Resolves all label fixups. Fails if a referenced label is unbound or a
  // relative displacement does not fit in 32 bits.
  Result<std::vector<std::uint8_t>> finish();

  [[nodiscard]] const std::vector<AssembledSite>& sites() const noexcept {
    return sites_;
  }
  Result<std::uint64_t> label_offset(Label label) const;

 private:
  void emit_op(Op op, std::span<const std::uint8_t> bytes);
  void emit_op(Op op, std::initializer_list<std::uint8_t> bytes);
  void emit_rel32(Op op, std::uint8_t opcode, Label target);

  struct Fixup {
    std::size_t patch_offset = 0;  // where the rel32 lives
    std::size_t next_insn = 0;     // offset of the instruction after
    Label label = 0;
  };

  std::vector<std::uint8_t> code_;
  std::vector<AssembledSite> sites_;
  std::vector<std::int64_t> labels_;  // -1 = unbound
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

// A loadable program image: flat code+data blob mapped at `base`, plus the
// entry point and the assembler's ground truth (used only by evaluation
// tooling, never by the interposers themselves — they must discover sites
// the honest way).
struct Program {
  std::string name;
  std::uint64_t base = 0x0000'0000'0040'0000ULL;  // like a non-PIE ELF
  std::uint64_t entry = 0;                        // absolute address
  std::vector<std::uint8_t> image;
  std::vector<AssembledSite> ground_truth;
  std::uint64_t stack_size = 64 * 1024;

  [[nodiscard]] std::vector<std::uint64_t> true_syscall_addresses() const;
};

// Convenience: build a Program from an assembler, entry at `entry_label`.
Result<Program> make_program(std::string name, Assembler& assembler,
                             Assembler::Label entry_label,
                             std::uint64_t base = 0x40'0000);

}  // namespace lzp::isa
