// The simulated instruction set.
//
// A byte-encoded, variable-length ISA that preserves the x86-64 properties
// syscall interposition research cares about:
//
//   * SYSCALL and SYSENTER are exactly 2 bytes (0F 05 / 0F 34),
//   * CALL_RAX is exactly 2 bytes (FF D0) — so a syscall instruction can be
//     rewritten in place without moving surrounding code (the zpoline trick),
//   * NOP is 1 byte (90) — so a nop sled is enterable at every offset,
//   * immediates may contain bytes that look like other instructions, so
//     naive scanning misidentifies code (the hazard static rewriters face),
//   * the syscall calling convention matches x86-64 Linux: number in RAX,
//     args in RDI RSI RDX R10 R8 R9, return in RAX, RCX/R11 clobbered,
//   * extended ("xstate") registers exist: XMM (SSE), YMM-high (AVX), and an
//     x87 stack — a syscall must preserve them, and an interposer that fails
//     to breaks applications (paper §IV-B, Listing 1).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace lzp::isa {

// General purpose registers, numbered like x86-64.
enum class Gpr : std::uint8_t {
  rax = 0, rcx, rdx, rbx, rsp, rbp, rsi, rdi,
  r8, r9, r10, r11, r12, r13, r14, r15,
};
inline constexpr std::size_t kNumGprs = 16;
inline constexpr std::size_t kNumXmm = 16;
inline constexpr std::size_t kNumX87 = 8;

[[nodiscard]] std::string_view gpr_name(Gpr reg) noexcept;

// Syscall argument registers in ABI order.
inline constexpr std::array<Gpr, 6> kSyscallArgRegs = {
    Gpr::rdi, Gpr::rsi, Gpr::rdx, Gpr::r10, Gpr::r8, Gpr::r9};

enum class Op : std::uint8_t {
  kNop,
  kSyscall,
  kSysenter,
  kCallRax,    // push next-rip; rip = rax  (the zpoline fast-path entry)
  kCallRel,    // push next-rip; rip += rel32
  kJmpRel,
  kJmpReg,
  kRet,
  kHlt,        // terminate task
  kTrap,       // breakpoint: raises SIGTRAP
  kMovRI,      // reg = imm64
  kMovRR,
  kLoad,       // dst = mem64[base + disp32]
  kStore,      // mem64[base + disp32] = src
  kLoad8,
  kStore8,
  kLoadGs,     // dst = mem64[gs + disp32]
  kStoreGs,
  kLoadGs8,
  kStoreGs8,
  kPush,
  kPop,
  kAddRR,
  kSubRR,
  kMulRR,
  kDivRR,      // signed divide; divisor 0 raises #DE (SIGFPE)
  kModRR,
  kAddRI,
  kSubRI,
  kCmpRI,
  kCmpRR,
  kJz,
  kJnz,
  kJlt,
  kJgt,
  kXmovXI,     // xmm = {imm64, imm64} (both lanes; models the Listing-1 idiom)
  kXmovXR,     // xmm = {gpr, gpr}
  kXmovRX,     // gpr = low 64 bits of xmm
  kXstore,     // mem128[base + disp32] = xmm   (movups)
  kXload,
  kXzero,
  kYmovHiYR,   // upper 128 bits of ymm = broadcast gpr (AVX state write)
  kYmovRYHi,   // gpr = low 64 of upper lane (AVX state read)
  kFldI,       // push imm64-encoded value on the x87 stack
  kFstpR,      // pop x87 top into gpr
  kFaddP,      // st1 += st0; pop
  kRdGs,       // gpr = gs base
  kWrGs,       // gs base = gpr
  kXorRR,      // r1 ^= r2 (xor reg,reg is the canonical zeroing idiom)
  kMovRI32,    // reg = zero-extended imm32 (the 32-bit `mov eax, imm32` form
               // compilers emit for syscall numbers; zero-extends like x86-64)
  kHostCall,   // transfer to host-bound native code #imm (modeling primitive:
               // stands in for a jmp into an interposer's native code page)
};

// Number of opcodes (kHostCall is last). Dispatch tables — notably the
// threaded interpreter in cpu/execute.cpp — are sized and static_asserted
// against this, so appending an Op without updating them fails to compile.
inline constexpr std::size_t kNumOps =
    static_cast<std::size_t>(Op::kHostCall) + 1;

[[nodiscard]] std::string_view op_name(Op op) noexcept;

// Raw encoding bytes that other modules must agree on.
inline constexpr std::uint8_t kByteNop = 0x90;
inline constexpr std::uint8_t kByte0F = 0x0F;
inline constexpr std::uint8_t kByteSyscall2 = 0x05;   // 0F 05
inline constexpr std::uint8_t kByteSysenter2 = 0x34;  // 0F 34
inline constexpr std::uint8_t kByteFF = 0xFF;
inline constexpr std::uint8_t kByteCallRax2 = 0xD0;   // FF D0
inline constexpr std::uint8_t kByteHostCall = 0xF1;   // F1 imm32

// A decoded instruction. `length` is the encoded size in bytes; rip-relative
// targets are resolved by the CPU using rip + length + imm.
struct Instruction {
  Op op = Op::kNop;
  std::uint8_t length = 1;
  Gpr r1 = Gpr::rax;
  Gpr r2 = Gpr::rax;
  std::uint8_t xr1 = 0;  // xmm/ymm/x87 register index where applicable
  std::int64_t imm = 0;  // imm64, disp32 (sign-extended) or rel32

  [[nodiscard]] std::string to_string() const;
};

// Register classes tracked by the Pin-style liveness tool (paper §IV-B):
// the kernel preserves GPRs (except rax/rcx/r11) across syscalls, and the
// question is which *extended* state the application expects preserved too.
enum class RegClass : std::uint8_t { kGpr, kXmm, kYmmHi, kX87 };

[[nodiscard]] constexpr std::string_view to_string(RegClass cls) noexcept {
  switch (cls) {
    case RegClass::kGpr: return "gpr";
    case RegClass::kXmm: return "xmm";
    case RegClass::kYmmHi: return "ymm-hi";
    case RegClass::kX87: return "x87";
  }
  return "?";
}

// Up to 4 register reads/writes per instruction; enough for this ISA.
struct RegRef {
  RegClass cls = RegClass::kGpr;
  std::uint8_t index = 0;
  friend bool operator==(const RegRef&, const RegRef&) = default;
};

struct RegEffects {
  std::array<RegRef, 4> reads{};
  std::array<RegRef, 4> writes{};
  std::uint8_t num_reads = 0;
  std::uint8_t num_writes = 0;

  void add_read(RegClass cls, std::uint8_t index) noexcept {
    if (num_reads < reads.size()) reads[num_reads++] = {cls, index};
  }
  void add_write(RegClass cls, std::uint8_t index) noexcept {
    if (num_writes < writes.size()) writes[num_writes++] = {cls, index};
  }
};

// Architectural register read/write sets for an instruction, used by the
// pintool instrumentation. Control-flow side effects (rip, rsp pushes) are
// intentionally excluded: the analysis is about data-register preservation.
[[nodiscard]] RegEffects reg_effects(const Instruction& insn) noexcept;

}  // namespace lzp::isa
