// Instruction decoder: bytes -> Instruction. Used by the CPU fetch path and
// by the static disassembler. Decoding is total over a span: invalid or
// truncated encodings return an error, which the CPU maps to SIGILL.
#pragma once

#include <cstdint>
#include <span>

#include "base/status.hpp"
#include "isa/insn.hpp"

namespace lzp::isa {

// Maximum encoded instruction length (MOV_RI / XMOV_XI: 1 + 1 + 8 bytes).
inline constexpr std::size_t kMaxInsnLength = 10;

[[nodiscard]] Result<Instruction> decode(std::span<const std::uint8_t> bytes);

// True if `bytes` begins with a syscall or sysenter encoding. This is the
// 2-byte pattern a raw scanner looks for — and exactly what can appear by
// accident inside immediates (paper §II-B).
[[nodiscard]] bool is_syscall_bytes(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace lzp::isa
