#include "cpu/decode_cache.hpp"

namespace lzp::cpu {

const mem::Page* DecodeCache::translate(const mem::AddressSpace& as,
                                        std::uint64_t page_base) noexcept {
  if (tlb_base_ == page_base && tlb_layout_gen_ == as.layout_gen()) {
    return tlb_page_;
  }
  const mem::Page* page = as.page_at(page_base);
  if (page != nullptr) {
    tlb_base_ = page_base;
    tlb_layout_gen_ = as.layout_gen();
    tlb_page_ = page;
  }
  return page;
}

const isa::Instruction* DecodeCache::lookup(const mem::AddressSpace& as,
                                            std::uint64_t rip) noexcept {
  if (!enabled_) return nullptr;
  if (as_id_ != as.asid()) {
    // Different address space than the entries were built against (execve
    // installed a fresh one, or the cache is stepping a new task): flush.
    if (as_id_ != 0) ++stats_.flushes;
    flush();
    as_id_ = as.asid();
    ++stats_.misses;
    return nullptr;
  }

  Entry& entry = entries_[index_of(rip)];
  if (entry.rip != rip) {
    ++stats_.misses;
    return nullptr;
  }

  const std::uint64_t page_base = mem::page_floor(rip);
  const mem::Page* page = translate(as, page_base);
  if (page == nullptr || (page->prot & mem::kProtExec) == 0) {
    // The page vanished or lost exec: drop the entry and let the slow path
    // raise the architectural fetch fault.
    entry.rip = kNoAddr;
    ++stats_.invalidations;
    ++stats_.misses;
    if (invalidation_listener_) invalidation_listener_(rip);
    return nullptr;
  }
  bool valid = page->gen == entry.gen;
  if (valid) {
    const std::uint64_t last = rip + entry.insn.length - 1;
    const std::uint64_t last_base = mem::page_floor(last);
    if (last_base != page_base) {
      // Crossing instruction: the tail page must still be executable and at
      // the generation it was decoded under. Resolved without touching the
      // TLB so the head page stays hot for the next sequential fetch.
      const mem::Page* tail = as.page_at(last_base);
      valid = tail != nullptr && (tail->prot & mem::kProtExec) != 0 &&
              tail->gen == entry.gen2;
    }
  }
  if (!valid) {
    entry.rip = kNoAddr;
    ++stats_.invalidations;
    ++stats_.misses;
    if (invalidation_listener_) invalidation_listener_(rip);
    return nullptr;
  }
  ++stats_.hits;
  return &entry.insn;
}

void DecodeCache::insert(const mem::AddressSpace& as, std::uint64_t rip,
                         const isa::Instruction& insn) noexcept {
  if (!enabled_) return;
  if (as_id_ != as.asid()) {
    flush();  // never mix entries from two address spaces
    as_id_ = as.asid();
  }
  const std::uint64_t page_base = mem::page_floor(rip);
  const mem::Page* page = translate(as, page_base);
  if (page == nullptr) return;
  Entry& entry = entries_[index_of(rip)];
  entry.rip = rip;
  entry.gen = page->gen;
  entry.gen2 = 0;
  entry.insn = insn;
  const std::uint64_t last_base = mem::page_floor(rip + insn.length - 1);
  if (last_base != page_base) {
    const mem::Page* tail = as.page_at(last_base);
    if (tail == nullptr) {  // cannot validate the tail: do not cache
      entry.rip = kNoAddr;
      return;
    }
    entry.gen2 = tail->gen;
  }
}

void DecodeCache::flush() noexcept {
  for (Entry& entry : entries_) entry.rip = kNoAddr;
  tlb_base_ = kNoAddr;
  tlb_page_ = nullptr;
  as_id_ = 0;
}

}  // namespace lzp::cpu
