#include "cpu/block_cache.hpp"

#include <algorithm>
#include <span>

#include "isa/decode.hpp"

namespace lzp::cpu {

bool ends_block(isa::Op op) noexcept {
  switch (op) {
    case isa::Op::kSyscall:
    case isa::Op::kSysenter:
    case isa::Op::kCallRax:
    case isa::Op::kCallRel:
    case isa::Op::kJmpRel:
    case isa::Op::kJmpReg:
    case isa::Op::kRet:
    case isa::Op::kHlt:
    case isa::Op::kTrap:
    case isa::Op::kJz:
    case isa::Op::kJnz:
    case isa::Op::kJlt:
    case isa::Op::kJgt:
    case isa::Op::kHostCall:
      return true;
    default:
      return false;
  }
}

const mem::Page* BlockCache::translate(const mem::AddressSpace& as,
                                       std::uint64_t page_base) noexcept {
  if (tlb_base_ == page_base && tlb_layout_gen_ == as.layout_gen()) {
    return tlb_page_;
  }
  const mem::Page* page = as.page_at(page_base);
  if (page != nullptr) {
    tlb_base_ = page_base;
    tlb_layout_gen_ = as.layout_gen();
    tlb_page_ = page;
  }
  return page;
}

bool BlockCache::build(const mem::AddressSpace& as, std::uint64_t rip,
                       const mem::Page& page, DecodedBlock* block) {
  (void)as;
  const std::uint64_t page_base = mem::page_floor(rip);
  block->start = rip;
  block->page_gen = page.gen;
  block->nops = 0;
  block->length = 0;
  block->insns.clear();

  std::uint64_t cursor = rip;
  while (block->insns.size() < kMaxBlockInsns) {
    const std::uint64_t offset = cursor - page_base;
    if (offset >= mem::kPageSize) break;
    // Decode from the page's own bytes, clamped to the page end. The decoder
    // is total over a span: an encoding that would cross into the next page
    // sees a truncated span and fails, which is exactly the "leave it for the
    // per-instruction path" stop condition.
    const std::span<const std::uint8_t> window{
        page.bytes.data() + offset,
        std::min<std::size_t>(isa::kMaxInsnLength, mem::kPageSize - offset)};
    auto decoded = isa::decode(window);
    if (!decoded.is_ok()) break;
    const isa::Instruction& insn = decoded.value();
    block->insns.push_back(insn);
    if (insn.op == isa::Op::kNop) ++block->nops;
    block->length += insn.length;
    cursor += insn.length;
    if (ends_block(insn.op)) break;
  }
  return !block->insns.empty();
}

const DecodedBlock* BlockCache::lookup_or_build(const mem::AddressSpace& as,
                                                std::uint64_t rip) {
  if (as_id_ != as.asid()) {
    if (as_id_ != 0) ++stats_.flushes;
    flush();
    as_id_ = as.asid();
  }

  DecodedBlock& entry = entries_[index_of(rip)];
  const std::uint64_t page_base = mem::page_floor(rip);
  const mem::Page* page = translate(as, page_base);

  if (entry.start == rip) {
    if (page != nullptr && (page->prot & mem::kProtExec) != 0 &&
        page->gen == entry.page_gen) {
      ++stats_.hits;
      return &entry;
    }
    // The entry matched but its page vanished, lost exec, or was rewritten
    // since decode: the SMC path.
    entry.start = kNoAddr;
    ++stats_.invalidations;
    if (invalidation_listener_) invalidation_listener_(rip);
  }

  ++stats_.misses;
  if (page == nullptr || (page->prot & mem::kProtExec) == 0) {
    // Unfetchable first byte: the per-instruction path raises the fault.
    return nullptr;
  }
  if (!build(as, rip, *page, &entry)) {
    entry.start = kNoAddr;
    return nullptr;
  }
  ++stats_.blocks_built;
  return &entry;
}

void BlockCache::flush() noexcept {
  for (DecodedBlock& entry : entries_) {
    entry.start = kNoAddr;
    entry.insns.clear();
  }
  tlb_base_ = kNoAddr;
  tlb_page_ = nullptr;
  as_id_ = 0;
}

BlockRun run_block(CpuContext& ctx, mem::AddressSpace& mem,
                   const DecodedBlock& block, std::uint64_t budget,
                   DataTlb* tlb, std::size_t first_insn) {
  BlockRun run;
  // Snapshot the address space's code generation: a store inside this block
  // can rewrite a *later* instruction of the same block (WX self-modifying
  // code), and the per-instruction reference path would refetch and see the
  // new bytes. Ending the run at the first generation bump forces a relookup,
  // which invalidates and rebuilds from the freshly written page.
  const std::uint64_t code_gen_at_entry = mem.code_gen();
  for (std::size_t idx = first_insn; idx < block.insns.size(); ++idx) {
    const isa::Instruction& insn = block.insns[idx];
    if (run.executed >= budget) break;
    const std::uint64_t insn_addr = ctx.rip;
    const ExecResult result = exec_decoded(ctx, mem, insn, tlb);
    ++run.executed;
    run.insn_addr = insn_addr;
    run.last = &insn;
    run.kind = result.kind;
    switch (result.kind) {
      case ExecKind::kContinue:
      case ExecKind::kSyscall:
        ++run.retired;
        if (insn.op == isa::Op::kNop) ++run.nops;
        break;
      case ExecKind::kMemFault:
        run.fault = result.fault;
        break;
      default:
        break;
    }
    // Everything but a mid-block kContinue ends the run: by construction
    // only the last instruction of a block can be a terminator, and any
    // fault stops execution with rip still at the faulting instruction.
    if (result.kind != ExecKind::kContinue) return run;
    if (mem.code_gen() != code_gen_at_entry) {
      run.last = nullptr;
      return run;
    }
  }
  run.kind = ExecKind::kContinue;
  run.last = nullptr;
  return run;
}

}  // namespace lzp::cpu
