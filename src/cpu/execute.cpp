#include "cpu/execute.hpp"

#include <cstring>

namespace lzp::cpu {
namespace {

using isa::Gpr;
using isa::Instruction;
using isa::Op;

// Fetches up to kMaxInsnLength executable bytes at `addr` via one (or, at a
// page boundary, two) span-based page copies. Returns the number of bytes
// fetched (0 means the first byte itself is not executable).
std::size_t fetch_window(const mem::AddressSpace& mem, std::uint64_t addr,
                         std::uint8_t* out, mem::MemFault* first_fault) {
  return mem.fetch_window(addr, {out, isa::kMaxInsnLength}, first_fault);
}

// Fetch + decode at `rip`, consulting `cache` when given. Writes the decoded
// instruction to *insn and returns true; on failure returns false with
// *fetch_faulted / *fault describing a fetch fault (else: invalid opcode).
bool fetch_decode_cached(const mem::AddressSpace& mem, DecodeCache* cache,
                         std::uint64_t rip, Instruction* insn,
                         bool* fetch_faulted, mem::MemFault* fault) {
  *fetch_faulted = false;
  if (cache != nullptr) {
    if (const Instruction* hit = cache->lookup(mem, rip)) {
      *insn = *hit;
      return true;
    }
  }
  std::uint8_t window[isa::kMaxInsnLength];
  const std::size_t got = fetch_window(mem, rip, window, fault);
  if (got == 0) {
    *fetch_faulted = true;
    return false;
  }
  auto decoded = isa::decode({window, got});
  if (!decoded) return false;
  *insn = decoded.value();
  if (cache != nullptr) cache->insert(mem, rip, *insn);
  return true;
}

double bits_to_double(std::uint64_t bits) noexcept {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::uint64_t double_to_bits(double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Data access through the D-TLB with fallback to the checked accessors.
// The TLB only ever answers accesses the slow path would have satisfied
// (single page, prot allows, non-exec for writes), so fault behavior and
// fault accounting are identical with and without it.
std::optional<mem::MemFault> data_read(mem::AddressSpace& mem, DataTlb* tlb,
                                       std::uint64_t addr,
                                       std::span<std::uint8_t> out) noexcept {
  if (tlb != nullptr && tlb->read(mem, addr, out.data(), out.size())) {
    return std::nullopt;
  }
  return mem.read(addr, out);
}

std::optional<mem::MemFault> data_write(
    mem::AddressSpace& mem, DataTlb* tlb, std::uint64_t addr,
    std::span<const std::uint8_t> data) noexcept {
  if (tlb != nullptr && tlb->write(mem, addr, data.data(), data.size())) {
    return std::nullopt;
  }
  return mem.write(addr, data);
}

// Stack helpers, hoisted out of the per-step path (they used to be lambdas
// constructed on every step()).
std::optional<mem::MemFault> push64(CpuContext& ctx, mem::AddressSpace& mem,
                                    DataTlb* tlb, std::uint64_t value) noexcept {
  const std::uint64_t rsp = ctx.rsp() - 8;
  std::uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  if (auto fault = data_write(mem, tlb, rsp, bytes)) return fault;
  ctx.set_rsp(rsp);
  return std::nullopt;
}

std::optional<mem::MemFault> pop64(CpuContext& ctx, mem::AddressSpace& mem,
                                   DataTlb* tlb, std::uint64_t& value) noexcept {
  std::uint8_t bytes[8];
  if (auto fault = data_read(mem, tlb, ctx.rsp(), bytes)) return fault;
  std::memcpy(&value, bytes, 8);
  ctx.set_rsp(ctx.rsp() + 8);
  return std::nullopt;
}

}  // namespace

Result<isa::Instruction> fetch_decode(const CpuContext& ctx,
                                      const mem::AddressSpace& mem,
                                      DecodeCache* cache) {
  Instruction insn;
  bool fetch_faulted = false;
  mem::MemFault fault;
  if (!fetch_decode_cached(mem, cache, ctx.rip, &insn, &fetch_faulted, &fault)) {
    if (fetch_faulted) {
      return make_error(StatusCode::kOutOfRange, fault.to_string());
    }
    return make_error(StatusCode::kInvalidArgument, "invalid opcode");
  }
  return insn;
}

ExecResult step(CpuContext& ctx, mem::AddressSpace& mem, DecodeCache* cache,
                DataTlb* tlb) {
  Instruction insn;
  bool fetch_faulted = false;
  mem::MemFault fetch_fault;
  if (!fetch_decode_cached(mem, cache, ctx.rip, &insn, &fetch_faulted,
                           &fetch_fault)) {
    ExecResult result;
    result.insn_addr = ctx.rip;
    if (fetch_faulted) {
      result.kind = ExecKind::kMemFault;
      result.fault = fetch_fault;
      return result;
    }
    // Either an unknown opcode or an instruction running off the end of the
    // mapped/executable region; both raise SIGILL-style outcomes (the latter
    // is a fetch fault in real hardware, but the distinction is immaterial
    // to every consumer in this project).
    result.kind = ExecKind::kInvalidOpcode;
    return result;
  }
  ExecResult result = exec_decoded(ctx, mem, insn, tlb);
  result.insn = insn;
  return result;
}

// Dispatch strategy for exec_decoded. On GNU-compatible compilers (GCC and
// Clang both build this repo) the interpreter uses computed goto: the opcode
// indexes a static table of handler-label addresses and `goto*` jumps
// straight to the handler, skipping the switch's bounds check and its
// default-path bookkeeping. LZP_OP/LZP_BREAK keep a single set of handler
// bodies serving both modes; any other compiler gets the plain switch.
#if defined(__GNUC__)
#define LZP_THREADED_DISPATCH 1
#endif

#ifdef LZP_THREADED_DISPATCH
#define LZP_OP(name) op_##name:
#else
#define LZP_OP(name) case Op::name:
#endif
// Handlers that fall through to the common rip-advance tail exit through
// this in both modes (a bare `break` has no meaning under a goto* dispatch).
#define LZP_BREAK goto dispatch_done

ExecResult exec_decoded(CpuContext& ctx, mem::AddressSpace& mem,
                        const Instruction& insn, DataTlb* tlb) {
  ExecResult result;
  result.insn_addr = ctx.rip;
  const std::uint64_t next_rip = ctx.rip + insn.length;

  auto mem_fault = [&](const mem::MemFault& fault) {
    result.kind = ExecKind::kMemFault;
    result.fault = fault;
    return result;
  };

#ifdef LZP_THREADED_DISPATCH
  // Label addresses in exact Op declaration order (isa/insn.hpp); the
  // static_assert ties the table length to the enum so a newly added Op
  // cannot be silently dispatched off the end of the table.
  static const void* const kDispatch[] = {
      &&op_kNop,      &&op_kSyscall,  &&op_kSysenter, &&op_kCallRax,
      &&op_kCallRel,  &&op_kJmpRel,   &&op_kJmpReg,   &&op_kRet,
      &&op_kHlt,      &&op_kTrap,     &&op_kMovRI,    &&op_kMovRR,
      &&op_kLoad,     &&op_kStore,    &&op_kLoad8,    &&op_kStore8,
      &&op_kLoadGs,   &&op_kStoreGs,  &&op_kLoadGs8,  &&op_kStoreGs8,
      &&op_kPush,     &&op_kPop,      &&op_kAddRR,    &&op_kSubRR,
      &&op_kMulRR,    &&op_kDivRR,    &&op_kModRR,    &&op_kAddRI,
      &&op_kSubRI,    &&op_kCmpRI,    &&op_kCmpRR,    &&op_kJz,
      &&op_kJnz,      &&op_kJlt,      &&op_kJgt,      &&op_kXmovXI,
      &&op_kXmovXR,   &&op_kXmovRX,   &&op_kXstore,   &&op_kXload,
      &&op_kXzero,    &&op_kYmovHiYR, &&op_kYmovRYHi, &&op_kFldI,
      &&op_kFstpR,    &&op_kFaddP,    &&op_kRdGs,     &&op_kWrGs,
      &&op_kXorRR,    &&op_kMovRI32,  &&op_kHostCall,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) == isa::kNumOps);
  goto* kDispatch[static_cast<std::size_t>(insn.op)];
#else
  switch (insn.op) {
#endif
    LZP_OP(kNop)
      LZP_BREAK;
    LZP_OP(kSyscall)
    LZP_OP(kSysenter)
      ctx.rip = next_rip;  // kernel sees the advanced rip, like x86
      result.kind = ExecKind::kSyscall;
      return result;
    LZP_OP(kCallRax) {
      if (auto fault = push64(ctx, mem, tlb, next_rip)) return mem_fault(*fault);
      ctx.rip = ctx.reg(Gpr::rax);
      return result;
    }
    LZP_OP(kCallRel) {
      if (auto fault = push64(ctx, mem, tlb, next_rip)) return mem_fault(*fault);
      ctx.rip = next_rip + static_cast<std::uint64_t>(insn.imm);
      return result;
    }
    LZP_OP(kJmpRel)
      ctx.rip = next_rip + static_cast<std::uint64_t>(insn.imm);
      return result;
    LZP_OP(kJmpReg)
      ctx.rip = ctx.reg(insn.r1);
      return result;
    LZP_OP(kRet) {
      std::uint64_t target = 0;
      if (auto fault = pop64(ctx, mem, tlb, target)) return mem_fault(*fault);
      ctx.rip = target;
      return result;
    }
    LZP_OP(kHlt)
      ctx.rip = next_rip;
      result.kind = ExecKind::kHlt;
      return result;
    LZP_OP(kTrap)
      ctx.rip = next_rip;
      result.kind = ExecKind::kTrap;
      return result;
    LZP_OP(kMovRI)
      ctx.set_reg(insn.r1, static_cast<std::uint64_t>(insn.imm));
      LZP_BREAK;
    LZP_OP(kMovRR)
      ctx.set_reg(insn.r1, ctx.reg(insn.r2));
      LZP_BREAK;
    LZP_OP(kLoad) {
      const std::uint64_t addr = ctx.reg(insn.r2) + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t bytes[8];
      if (auto fault = data_read(mem, tlb, addr, bytes)) return mem_fault(*fault);
      std::uint64_t value = 0;
      std::memcpy(&value, bytes, 8);
      ctx.set_reg(insn.r1, value);
      LZP_BREAK;
    }
    LZP_OP(kStore) {
      const std::uint64_t addr = ctx.reg(insn.r2) + static_cast<std::uint64_t>(insn.imm);
      const std::uint64_t value = ctx.reg(insn.r1);
      std::uint8_t bytes[8];
      std::memcpy(bytes, &value, 8);
      if (auto fault = data_write(mem, tlb, addr, bytes)) return mem_fault(*fault);
      LZP_BREAK;
    }
    LZP_OP(kLoad8) {
      const std::uint64_t addr = ctx.reg(insn.r2) + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t byte = 0;
      if (auto fault = data_read(mem, tlb, addr, {&byte, 1})) return mem_fault(*fault);
      ctx.set_reg(insn.r1, byte);
      LZP_BREAK;
    }
    LZP_OP(kStore8) {
      const std::uint64_t addr = ctx.reg(insn.r2) + static_cast<std::uint64_t>(insn.imm);
      const std::uint8_t byte = static_cast<std::uint8_t>(ctx.reg(insn.r1));
      if (auto fault = data_write(mem, tlb, addr, {&byte, 1})) return mem_fault(*fault);
      LZP_BREAK;
    }
    LZP_OP(kLoadGs) {
      const std::uint64_t addr = ctx.gs_base + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t bytes[8];
      if (auto fault = data_read(mem, tlb, addr, bytes)) return mem_fault(*fault);
      std::uint64_t value = 0;
      std::memcpy(&value, bytes, 8);
      ctx.set_reg(insn.r1, value);
      LZP_BREAK;
    }
    LZP_OP(kStoreGs) {
      const std::uint64_t addr = ctx.gs_base + static_cast<std::uint64_t>(insn.imm);
      const std::uint64_t value = ctx.reg(insn.r1);
      std::uint8_t bytes[8];
      std::memcpy(bytes, &value, 8);
      if (auto fault = data_write(mem, tlb, addr, bytes)) return mem_fault(*fault);
      LZP_BREAK;
    }
    LZP_OP(kLoadGs8) {
      const std::uint64_t addr = ctx.gs_base + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t byte = 0;
      if (auto fault = data_read(mem, tlb, addr, {&byte, 1})) return mem_fault(*fault);
      ctx.set_reg(insn.r1, byte);
      LZP_BREAK;
    }
    LZP_OP(kStoreGs8) {
      const std::uint64_t addr = ctx.gs_base + static_cast<std::uint64_t>(insn.imm);
      const std::uint8_t byte = static_cast<std::uint8_t>(ctx.reg(insn.r1));
      if (auto fault = data_write(mem, tlb, addr, {&byte, 1})) return mem_fault(*fault);
      LZP_BREAK;
    }
    LZP_OP(kPush)
      if (auto fault = push64(ctx, mem, tlb, ctx.reg(insn.r1))) return mem_fault(*fault);
      LZP_BREAK;
    LZP_OP(kPop) {
      std::uint64_t value = 0;
      if (auto fault = pop64(ctx, mem, tlb, value)) return mem_fault(*fault);
      ctx.set_reg(insn.r1, value);
      LZP_BREAK;
    }
    LZP_OP(kAddRR)
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) + ctx.reg(insn.r2));
      LZP_BREAK;
    LZP_OP(kSubRR)
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) - ctx.reg(insn.r2));
      LZP_BREAK;
    LZP_OP(kMulRR)
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) * ctx.reg(insn.r2));
      LZP_BREAK;
    LZP_OP(kDivRR)
    LZP_OP(kModRR) {
      const auto lhs = static_cast<std::int64_t>(ctx.reg(insn.r1));
      const auto rhs = static_cast<std::int64_t>(ctx.reg(insn.r2));
      if (rhs == 0) {
        // #DE: rip stays at the faulting instruction, like a real divide
        // error trap.
        result.kind = ExecKind::kDivideError;
        return result;
      }
      const std::int64_t value = insn.op == Op::kDivRR ? lhs / rhs : lhs % rhs;
      ctx.set_reg(insn.r1, static_cast<std::uint64_t>(value));
      LZP_BREAK;
    }
    LZP_OP(kAddRI)
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) + static_cast<std::uint64_t>(insn.imm));
      LZP_BREAK;
    LZP_OP(kSubRI)
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) - static_cast<std::uint64_t>(insn.imm));
      LZP_BREAK;
    LZP_OP(kCmpRI) {
      const auto lhs = static_cast<std::int64_t>(ctx.reg(insn.r1));
      const auto rhs = static_cast<std::int64_t>(insn.imm);
      ctx.flags = {lhs == rhs, lhs < rhs, lhs > rhs};
      LZP_BREAK;
    }
    LZP_OP(kCmpRR) {
      const auto lhs = static_cast<std::int64_t>(ctx.reg(insn.r1));
      const auto rhs = static_cast<std::int64_t>(ctx.reg(insn.r2));
      ctx.flags = {lhs == rhs, lhs < rhs, lhs > rhs};
      LZP_BREAK;
    }
    LZP_OP(kJz)
      ctx.rip = ctx.flags.zf ? next_rip + static_cast<std::uint64_t>(insn.imm)
                             : next_rip;
      return result;
    LZP_OP(kJnz)
      ctx.rip = !ctx.flags.zf ? next_rip + static_cast<std::uint64_t>(insn.imm)
                              : next_rip;
      return result;
    LZP_OP(kJlt)
      ctx.rip = ctx.flags.lt ? next_rip + static_cast<std::uint64_t>(insn.imm)
                             : next_rip;
      return result;
    LZP_OP(kJgt)
      ctx.rip = ctx.flags.gt ? next_rip + static_cast<std::uint64_t>(insn.imm)
                             : next_rip;
      return result;
    LZP_OP(kXmovXI)
      ctx.xstate.xmm[insn.xr1] = {static_cast<std::uint64_t>(insn.imm),
                                  static_cast<std::uint64_t>(insn.imm)};
      LZP_BREAK;
    LZP_OP(kXmovXR) {
      const std::uint64_t value = ctx.reg(insn.r1);
      ctx.xstate.xmm[insn.xr1] = {value, value};
      LZP_BREAK;
    }
    LZP_OP(kXmovRX)
      ctx.set_reg(insn.r1, ctx.xstate.xmm[insn.xr1][0]);
      LZP_BREAK;
    LZP_OP(kXstore) {
      const std::uint64_t addr = ctx.reg(insn.r1) + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t bytes[16];
      std::memcpy(bytes, ctx.xstate.xmm[insn.xr1].data(), 16);
      if (auto fault = data_write(mem, tlb, addr, bytes)) return mem_fault(*fault);
      LZP_BREAK;
    }
    LZP_OP(kXload) {
      const std::uint64_t addr = ctx.reg(insn.r1) + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t bytes[16];
      if (auto fault = data_read(mem, tlb, addr, bytes)) return mem_fault(*fault);
      std::memcpy(ctx.xstate.xmm[insn.xr1].data(), bytes, 16);
      LZP_BREAK;
    }
    LZP_OP(kXzero)
      ctx.xstate.xmm[insn.xr1] = {0, 0};
      LZP_BREAK;
    LZP_OP(kYmovHiYR) {
      const std::uint64_t value = ctx.reg(insn.r1);
      ctx.xstate.ymm_hi[insn.xr1] = {value, value};
      LZP_BREAK;
    }
    LZP_OP(kYmovRYHi)
      ctx.set_reg(insn.r1, ctx.xstate.ymm_hi[insn.xr1][0]);
      LZP_BREAK;
    LZP_OP(kFldI)
      ctx.xstate.x87_push(static_cast<std::uint64_t>(insn.imm));
      LZP_BREAK;
    LZP_OP(kFstpR)
      ctx.set_reg(insn.r1, ctx.xstate.x87_pop());
      LZP_BREAK;
    LZP_OP(kFaddP) {
      const double st0 = bits_to_double(ctx.xstate.x87_pop());
      const double st1 = bits_to_double(ctx.xstate.x87_pop());
      ctx.xstate.x87_push(double_to_bits(st0 + st1));
      LZP_BREAK;
    }
    LZP_OP(kHostCall)
      ctx.rip = next_rip;
      result.kind = ExecKind::kHostCall;
      return result;
    LZP_OP(kRdGs)
      ctx.set_reg(insn.r1, ctx.gs_base);
      LZP_BREAK;
    LZP_OP(kWrGs)
      ctx.gs_base = ctx.reg(insn.r1);
      LZP_BREAK;
    LZP_OP(kXorRR)
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) ^ ctx.reg(insn.r2));
      LZP_BREAK;
    LZP_OP(kMovRI32)
      // Zero-extend: decode already stores the unsigned 32-bit value.
      ctx.set_reg(insn.r1, static_cast<std::uint64_t>(insn.imm));
      LZP_BREAK;
#ifndef LZP_THREADED_DISPATCH
  }
#endif

dispatch_done:
  ctx.rip = next_rip;
  return result;
}

#undef LZP_BREAK
#undef LZP_OP
#ifdef LZP_THREADED_DISPATCH
#undef LZP_THREADED_DISPATCH
#endif

}  // namespace lzp::cpu
