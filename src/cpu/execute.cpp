#include "cpu/execute.hpp"

#include <cstring>

namespace lzp::cpu {
namespace {

using isa::Gpr;
using isa::Instruction;
using isa::Op;

// Fetches up to kMaxInsnLength executable bytes at `addr` via one (or, at a
// page boundary, two) span-based page copies. Returns the number of bytes
// fetched (0 means the first byte itself is not executable).
std::size_t fetch_window(const mem::AddressSpace& mem, std::uint64_t addr,
                         std::uint8_t* out, mem::MemFault* first_fault) {
  return mem.fetch_window(addr, {out, isa::kMaxInsnLength}, first_fault);
}

// Fetch + decode at `rip`, consulting `cache` when given. Writes the decoded
// instruction to *insn and returns true; on failure returns false with
// *fetch_faulted / *fault describing a fetch fault (else: invalid opcode).
bool fetch_decode_cached(const mem::AddressSpace& mem, DecodeCache* cache,
                         std::uint64_t rip, Instruction* insn,
                         bool* fetch_faulted, mem::MemFault* fault) {
  *fetch_faulted = false;
  if (cache != nullptr) {
    if (const Instruction* hit = cache->lookup(mem, rip)) {
      *insn = *hit;
      return true;
    }
  }
  std::uint8_t window[isa::kMaxInsnLength];
  const std::size_t got = fetch_window(mem, rip, window, fault);
  if (got == 0) {
    *fetch_faulted = true;
    return false;
  }
  auto decoded = isa::decode({window, got});
  if (!decoded) return false;
  *insn = decoded.value();
  if (cache != nullptr) cache->insert(mem, rip, *insn);
  return true;
}

double bits_to_double(std::uint64_t bits) noexcept {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::uint64_t double_to_bits(double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Data access through the D-TLB with fallback to the checked accessors.
// The TLB only ever answers accesses the slow path would have satisfied
// (single page, prot allows, non-exec for writes), so fault behavior and
// fault accounting are identical with and without it.
std::optional<mem::MemFault> data_read(mem::AddressSpace& mem, DataTlb* tlb,
                                       std::uint64_t addr,
                                       std::span<std::uint8_t> out) noexcept {
  if (tlb != nullptr && tlb->read(mem, addr, out.data(), out.size())) {
    return std::nullopt;
  }
  return mem.read(addr, out);
}

std::optional<mem::MemFault> data_write(
    mem::AddressSpace& mem, DataTlb* tlb, std::uint64_t addr,
    std::span<const std::uint8_t> data) noexcept {
  if (tlb != nullptr && tlb->write(mem, addr, data.data(), data.size())) {
    return std::nullopt;
  }
  return mem.write(addr, data);
}

// Stack helpers, hoisted out of the per-step path (they used to be lambdas
// constructed on every step()).
std::optional<mem::MemFault> push64(CpuContext& ctx, mem::AddressSpace& mem,
                                    DataTlb* tlb, std::uint64_t value) noexcept {
  const std::uint64_t rsp = ctx.rsp() - 8;
  std::uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  if (auto fault = data_write(mem, tlb, rsp, bytes)) return fault;
  ctx.set_rsp(rsp);
  return std::nullopt;
}

std::optional<mem::MemFault> pop64(CpuContext& ctx, mem::AddressSpace& mem,
                                   DataTlb* tlb, std::uint64_t& value) noexcept {
  std::uint8_t bytes[8];
  if (auto fault = data_read(mem, tlb, ctx.rsp(), bytes)) return fault;
  std::memcpy(&value, bytes, 8);
  ctx.set_rsp(ctx.rsp() + 8);
  return std::nullopt;
}

}  // namespace

Result<isa::Instruction> fetch_decode(const CpuContext& ctx,
                                      const mem::AddressSpace& mem,
                                      DecodeCache* cache) {
  Instruction insn;
  bool fetch_faulted = false;
  mem::MemFault fault;
  if (!fetch_decode_cached(mem, cache, ctx.rip, &insn, &fetch_faulted, &fault)) {
    if (fetch_faulted) {
      return make_error(StatusCode::kOutOfRange, fault.to_string());
    }
    return make_error(StatusCode::kInvalidArgument, "invalid opcode");
  }
  return insn;
}

ExecResult step(CpuContext& ctx, mem::AddressSpace& mem, DecodeCache* cache,
                DataTlb* tlb) {
  Instruction insn;
  bool fetch_faulted = false;
  mem::MemFault fetch_fault;
  if (!fetch_decode_cached(mem, cache, ctx.rip, &insn, &fetch_faulted,
                           &fetch_fault)) {
    ExecResult result;
    result.insn_addr = ctx.rip;
    if (fetch_faulted) {
      result.kind = ExecKind::kMemFault;
      result.fault = fetch_fault;
      return result;
    }
    // Either an unknown opcode or an instruction running off the end of the
    // mapped/executable region; both raise SIGILL-style outcomes (the latter
    // is a fetch fault in real hardware, but the distinction is immaterial
    // to every consumer in this project).
    result.kind = ExecKind::kInvalidOpcode;
    return result;
  }
  ExecResult result = exec_decoded(ctx, mem, insn, tlb);
  result.insn = insn;
  return result;
}

ExecResult exec_decoded(CpuContext& ctx, mem::AddressSpace& mem,
                        const Instruction& insn, DataTlb* tlb) {
  ExecResult result;
  result.insn_addr = ctx.rip;
  const std::uint64_t next_rip = ctx.rip + insn.length;

  auto mem_fault = [&](const mem::MemFault& fault) {
    result.kind = ExecKind::kMemFault;
    result.fault = fault;
    return result;
  };

  switch (insn.op) {
    case Op::kNop:
      break;
    case Op::kSyscall:
    case Op::kSysenter:
      ctx.rip = next_rip;  // kernel sees the advanced rip, like x86
      result.kind = ExecKind::kSyscall;
      return result;
    case Op::kCallRax: {
      if (auto fault = push64(ctx, mem, tlb, next_rip)) return mem_fault(*fault);
      ctx.rip = ctx.reg(Gpr::rax);
      return result;
    }
    case Op::kCallRel: {
      if (auto fault = push64(ctx, mem, tlb, next_rip)) return mem_fault(*fault);
      ctx.rip = next_rip + static_cast<std::uint64_t>(insn.imm);
      return result;
    }
    case Op::kJmpRel:
      ctx.rip = next_rip + static_cast<std::uint64_t>(insn.imm);
      return result;
    case Op::kJmpReg:
      ctx.rip = ctx.reg(insn.r1);
      return result;
    case Op::kRet: {
      std::uint64_t target = 0;
      if (auto fault = pop64(ctx, mem, tlb, target)) return mem_fault(*fault);
      ctx.rip = target;
      return result;
    }
    case Op::kHlt:
      ctx.rip = next_rip;
      result.kind = ExecKind::kHlt;
      return result;
    case Op::kTrap:
      ctx.rip = next_rip;
      result.kind = ExecKind::kTrap;
      return result;
    case Op::kMovRI:
      ctx.set_reg(insn.r1, static_cast<std::uint64_t>(insn.imm));
      break;
    case Op::kMovRR:
      ctx.set_reg(insn.r1, ctx.reg(insn.r2));
      break;
    case Op::kLoad: {
      const std::uint64_t addr = ctx.reg(insn.r2) + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t bytes[8];
      if (auto fault = data_read(mem, tlb, addr, bytes)) return mem_fault(*fault);
      std::uint64_t value = 0;
      std::memcpy(&value, bytes, 8);
      ctx.set_reg(insn.r1, value);
      break;
    }
    case Op::kStore: {
      const std::uint64_t addr = ctx.reg(insn.r2) + static_cast<std::uint64_t>(insn.imm);
      const std::uint64_t value = ctx.reg(insn.r1);
      std::uint8_t bytes[8];
      std::memcpy(bytes, &value, 8);
      if (auto fault = data_write(mem, tlb, addr, bytes)) return mem_fault(*fault);
      break;
    }
    case Op::kLoad8: {
      const std::uint64_t addr = ctx.reg(insn.r2) + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t byte = 0;
      if (auto fault = data_read(mem, tlb, addr, {&byte, 1})) return mem_fault(*fault);
      ctx.set_reg(insn.r1, byte);
      break;
    }
    case Op::kStore8: {
      const std::uint64_t addr = ctx.reg(insn.r2) + static_cast<std::uint64_t>(insn.imm);
      const std::uint8_t byte = static_cast<std::uint8_t>(ctx.reg(insn.r1));
      if (auto fault = data_write(mem, tlb, addr, {&byte, 1})) return mem_fault(*fault);
      break;
    }
    case Op::kLoadGs: {
      const std::uint64_t addr = ctx.gs_base + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t bytes[8];
      if (auto fault = data_read(mem, tlb, addr, bytes)) return mem_fault(*fault);
      std::uint64_t value = 0;
      std::memcpy(&value, bytes, 8);
      ctx.set_reg(insn.r1, value);
      break;
    }
    case Op::kStoreGs: {
      const std::uint64_t addr = ctx.gs_base + static_cast<std::uint64_t>(insn.imm);
      const std::uint64_t value = ctx.reg(insn.r1);
      std::uint8_t bytes[8];
      std::memcpy(bytes, &value, 8);
      if (auto fault = data_write(mem, tlb, addr, bytes)) return mem_fault(*fault);
      break;
    }
    case Op::kLoadGs8: {
      const std::uint64_t addr = ctx.gs_base + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t byte = 0;
      if (auto fault = data_read(mem, tlb, addr, {&byte, 1})) return mem_fault(*fault);
      ctx.set_reg(insn.r1, byte);
      break;
    }
    case Op::kStoreGs8: {
      const std::uint64_t addr = ctx.gs_base + static_cast<std::uint64_t>(insn.imm);
      const std::uint8_t byte = static_cast<std::uint8_t>(ctx.reg(insn.r1));
      if (auto fault = data_write(mem, tlb, addr, {&byte, 1})) return mem_fault(*fault);
      break;
    }
    case Op::kPush:
      if (auto fault = push64(ctx, mem, tlb, ctx.reg(insn.r1))) return mem_fault(*fault);
      break;
    case Op::kPop: {
      std::uint64_t value = 0;
      if (auto fault = pop64(ctx, mem, tlb, value)) return mem_fault(*fault);
      ctx.set_reg(insn.r1, value);
      break;
    }
    case Op::kAddRR:
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) + ctx.reg(insn.r2));
      break;
    case Op::kSubRR:
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) - ctx.reg(insn.r2));
      break;
    case Op::kMulRR:
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) * ctx.reg(insn.r2));
      break;
    case Op::kDivRR:
    case Op::kModRR: {
      const auto lhs = static_cast<std::int64_t>(ctx.reg(insn.r1));
      const auto rhs = static_cast<std::int64_t>(ctx.reg(insn.r2));
      if (rhs == 0) {
        // #DE: rip stays at the faulting instruction, like a real divide
        // error trap.
        result.kind = ExecKind::kDivideError;
        return result;
      }
      const std::int64_t value = insn.op == Op::kDivRR ? lhs / rhs : lhs % rhs;
      ctx.set_reg(insn.r1, static_cast<std::uint64_t>(value));
      break;
    }
    case Op::kAddRI:
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) + static_cast<std::uint64_t>(insn.imm));
      break;
    case Op::kSubRI:
      ctx.set_reg(insn.r1, ctx.reg(insn.r1) - static_cast<std::uint64_t>(insn.imm));
      break;
    case Op::kCmpRI: {
      const auto lhs = static_cast<std::int64_t>(ctx.reg(insn.r1));
      const auto rhs = static_cast<std::int64_t>(insn.imm);
      ctx.flags = {lhs == rhs, lhs < rhs, lhs > rhs};
      break;
    }
    case Op::kCmpRR: {
      const auto lhs = static_cast<std::int64_t>(ctx.reg(insn.r1));
      const auto rhs = static_cast<std::int64_t>(ctx.reg(insn.r2));
      ctx.flags = {lhs == rhs, lhs < rhs, lhs > rhs};
      break;
    }
    case Op::kJz:
      ctx.rip = ctx.flags.zf ? next_rip + static_cast<std::uint64_t>(insn.imm)
                             : next_rip;
      return result;
    case Op::kJnz:
      ctx.rip = !ctx.flags.zf ? next_rip + static_cast<std::uint64_t>(insn.imm)
                              : next_rip;
      return result;
    case Op::kJlt:
      ctx.rip = ctx.flags.lt ? next_rip + static_cast<std::uint64_t>(insn.imm)
                             : next_rip;
      return result;
    case Op::kJgt:
      ctx.rip = ctx.flags.gt ? next_rip + static_cast<std::uint64_t>(insn.imm)
                             : next_rip;
      return result;
    case Op::kXmovXI:
      ctx.xstate.xmm[insn.xr1] = {static_cast<std::uint64_t>(insn.imm),
                                  static_cast<std::uint64_t>(insn.imm)};
      break;
    case Op::kXmovXR: {
      const std::uint64_t value = ctx.reg(insn.r1);
      ctx.xstate.xmm[insn.xr1] = {value, value};
      break;
    }
    case Op::kXmovRX:
      ctx.set_reg(insn.r1, ctx.xstate.xmm[insn.xr1][0]);
      break;
    case Op::kXstore: {
      const std::uint64_t addr = ctx.reg(insn.r1) + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t bytes[16];
      std::memcpy(bytes, ctx.xstate.xmm[insn.xr1].data(), 16);
      if (auto fault = data_write(mem, tlb, addr, bytes)) return mem_fault(*fault);
      break;
    }
    case Op::kXload: {
      const std::uint64_t addr = ctx.reg(insn.r1) + static_cast<std::uint64_t>(insn.imm);
      std::uint8_t bytes[16];
      if (auto fault = data_read(mem, tlb, addr, bytes)) return mem_fault(*fault);
      std::memcpy(ctx.xstate.xmm[insn.xr1].data(), bytes, 16);
      break;
    }
    case Op::kXzero:
      ctx.xstate.xmm[insn.xr1] = {0, 0};
      break;
    case Op::kYmovHiYR: {
      const std::uint64_t value = ctx.reg(insn.r1);
      ctx.xstate.ymm_hi[insn.xr1] = {value, value};
      break;
    }
    case Op::kYmovRYHi:
      ctx.set_reg(insn.r1, ctx.xstate.ymm_hi[insn.xr1][0]);
      break;
    case Op::kFldI:
      ctx.xstate.x87_push(static_cast<std::uint64_t>(insn.imm));
      break;
    case Op::kFstpR:
      ctx.set_reg(insn.r1, ctx.xstate.x87_pop());
      break;
    case Op::kFaddP: {
      const double st0 = bits_to_double(ctx.xstate.x87_pop());
      const double st1 = bits_to_double(ctx.xstate.x87_pop());
      ctx.xstate.x87_push(double_to_bits(st0 + st1));
      break;
    }
    case Op::kHostCall:
      ctx.rip = next_rip;
      result.kind = ExecKind::kHostCall;
      return result;
    case Op::kRdGs:
      ctx.set_reg(insn.r1, ctx.gs_base);
      break;
    case Op::kWrGs:
      ctx.gs_base = ctx.reg(insn.r1);
      break;
  }

  ctx.rip = next_rip;
  return result;
}

}  // namespace lzp::cpu
