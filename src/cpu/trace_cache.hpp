// Trace cache: chained superblocks for the hot-path execution engine.
//
// The superblock engine (cpu/block_cache.hpp) removed per-instruction
// dispatch within a straight-line run, but still pays a full dispatcher
// round trip — batchability check, cache lookup, exit handling — at every
// control transfer. A Trace is the classic DBT answer: a recorded chain of
// DecodedBlocks glued across direct jumps, calls, returns, and even syscall
// and host-call exits, executed back to back by Machine::trace_step so the
// dispatcher is consulted once per chain instead of once per block.
//
// Formation is recording-based. Every completed block execution bumps a
// hotness counter for the block's start address; at kHotThreshold the cache
// starts recording: each subsequent block that begins exactly where the
// previous one ended is appended (with the page generation it was decoded
// under), until the chain closes on its own head, reaches kMaxTraceBlocks,
// or the kernel reports that batched execution must stop. Chains of at
// least two blocks are installed; shorter recordings blacklist their head
// (a single-block self-loop gains nothing from tracing).
//
// Recording is phase-robust. The scheduler's slice quantum routinely cuts
// the expected canonical block mid-run, after which the continuation
// executes as differently-aligned fragments; for loop bodies longer than
// the quantum the canonical boundary may *never* come back as a single
// full-clean execution (with an even iteration length the cut offset's
// parity is invariant, so half the alignments are unreachable). When the
// kernel reports a budget cut at the expected boundary (record_cut), the
// recorder instead walks a linear cursor through the pending canonical
// block: fragment executions advance the cursor, and each canonical
// boundary the fragments cover appends that canonical block to the chain —
// a control transfer always coincides with a canonical block end (both
// decodes stop at the first transfer in the same bytes), so linear coverage
// of the pending block is proof it executed.
//
// Validation is per embedded page: a trace may span many pages (the zpoline
// trampoline chains the application's text page into the VA-0 sled page),
// and lookup() revalidates every PageRef — present, executable, generation
// unchanged — so a self-modifying write or an SMP shootdown invalidates
// exactly the traces that embed the touched page and no others.
// invalidate_stale() applies the same per-page test eagerly; the SMP
// barrier's shootdown pass uses it instead of a wholesale flush.
//
// Demotion: Machine::trace_step reports chain follows, side exits, and
// completions back here, per trace. A trace that keeps side-exiting without
// chaining — fewer than two followed boundaries per entry on average over
// kDemotionWindow runs — is removed: its entry overhead (per-page
// revalidation) buys nothing, so churn (e.g. a branch whose direction keeps
// flipping right after the head) falls back to single-block execution. The
// head is not blacklisted; if it heats up again and the recorded path has
// stabilized, the replacement trace earns its keep or demotes again.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "cpu/block_cache.hpp"
#include "memory/address_space.hpp"

namespace lzp::cpu {

struct TraceCacheStats {
  std::uint64_t hits = 0;            // lookup found a fully valid trace
  std::uint64_t misses = 0;          // no trace at rip (or invalidated now)
  std::uint64_t invalidations = 0;   // entry matched rip but a page went stale
  std::uint64_t flushes = 0;         // whole-cache flushes (execve / AS swap)
  std::uint64_t traces_built = 0;    // recordings that installed a trace
  std::uint64_t recordings_aborted = 0;
  std::uint64_t chain_follows = 0;   // block boundaries crossed inside traces
  std::uint64_t side_exits = 0;      // traces left before their recorded end
  std::uint64_t completions = 0;     // traces run through their last block
  std::uint64_t resumes = 0;         // mid-trace re-entries across slice ends
  std::uint64_t demotions = 0;       // churny traces demoted to single blocks
  std::uint64_t fused_fastpaths = 0; // host-call handler dispatches fused
                                     // into a trace (the lazypoline superop)
};

// One link of a trace: an owned copy of the decoded block (stable across
// BlockCache evictions and rebuilds) plus the rip that followed it when the
// trace was recorded. `next` of the last block is the trace's exit target
// (== the head for a closed loop).
struct TraceBlock {
  DecodedBlock block;
  std::uint64_t next = 0;
};

struct Trace {
  // == blocks.front().block.start when occupied; ~0 marks an empty slot
  // (0 is a real code address: the zpoline trampoline lives at VA 0).
  std::uint64_t start = ~0ULL;
  std::vector<TraceBlock> blocks;
  // Every page the embedded blocks decode from, at the generation they were
  // recorded under. Deduplicated; validation cost is O(pages), not O(blocks).
  struct PageRef {
    std::uint64_t base = 0;
    std::uint64_t gen = 0;
  };
  std::vector<PageRef> pages;
  // Churn accounting for demotion (see note_side_exit).
  std::uint64_t executions = 0;
  std::uint64_t side_exits = 0;
  std::uint64_t chains = 0;  // boundaries followed across all executions
};

class TraceCache {
 public:
  // Sized to the BlockCache: a busy loop (webserver request handling plus
  // the interposer sleds) keeps several hundred blocks hot, and a smaller
  // direct-mapped hot table thrashes before any head reaches the threshold.
  static constexpr std::size_t kNumEntries = 1024;  // power of two
  static constexpr std::size_t kMaxTraceBlocks = 64;
  // Completed executions of a block before recording starts at it.
  static constexpr std::int32_t kHotThreshold = 16;
  // Executions a trace must accumulate before churn can demote it, and the
  // churn test itself: fewer than two followed boundaries per entry on
  // average (the trace side-exits before paying for its own entry).
  static constexpr std::uint64_t kDemotionWindow = 32;
  // Block completions a suspended recording tolerates while waiting for its
  // expected successor to be revisited (the slice quantum routinely cuts a
  // block mid-run, desynchronizing block starts until the next loop
  // iteration) before concluding the path diverged and aborting.
  static constexpr std::uint64_t kRecordPatience = 4096;

  TraceCache() : entries_(kNumEntries), hot_(kNumEntries) {}

  // Returns the trace starting at `rip` if every embedded page is still
  // present, executable, and at its recorded generation; nullptr otherwise
  // (a stale entry is dropped — the SMC invalidation path). The pointer is
  // valid until the next lookup()/on_block_executed()/flush().
  [[nodiscard]] Trace* lookup(const mem::AddressSpace& as, std::uint64_t rip);

  // Called by the kernel after a block ran to completion with a chainable
  // exit and the next step is batchable. `next_rip` is the architectural rip
  // after the block's exit was fully handled (past any syscall or host-call
  // side effects). Drives hotness counting and trace recording. `bcache` is
  // the task's block cache, consulted for canonical decodes when fragment
  // coverage crosses a canonical boundary (see record_cut).
  void on_block_executed(const mem::AddressSpace& as, BlockCache& bcache,
                         const DecodedBlock& block, std::uint64_t next_rip);

  // Recording-only variant of on_block_executed (no hotness counting):
  // trace_step feeds fully-executed chained blocks through here so an
  // in-progress recording keeps extending even when its expected successor
  // now executes inside an installed trace — otherwise steady-state tiling
  // would starve every new recording whose path crosses an existing one.
  // A no-op unless a recording is active.
  void record_observe(const mem::AddressSpace& as, BlockCache& bcache,
                      const DecodedBlock& block, std::uint64_t next_rip);

  // Called by the kernel when the slice budget cut `block` mid-run (no
  // control transfer executed; `cut_rip` is the architectural rip of the
  // first unexecuted instruction). A cut at the recording's expected
  // boundary arms the linear cursor over that canonical block; a cut at the
  // cursor advances it. A no-op unless a recording is active.
  void record_cut(const mem::AddressSpace& as, BlockCache& bcache,
                  const DecodedBlock& block, std::uint64_t cut_rip);

  // Finalizes an in-progress recording: installs the chain if it has at
  // least two blocks, otherwise blacklists the head. The kernel calls this
  // when the chain ends for control-flow reasons (the next step cannot be
  // batched); a no-op when nothing is being recorded.
  void end_recording();
  // Discards an in-progress recording (incomplete block run, mid-recording
  // SMC, address-space swap). A no-op when nothing is being recorded.
  void abort_recording() noexcept;
  [[nodiscard]] bool recording() const noexcept { return recording_; }

  // Execution feedback from Machine::trace_step.
  void note_entered(Trace& trace) noexcept { ++trace.executions; }
  void note_chain_follow(Trace& trace) noexcept {
    ++stats_.chain_follows;
    ++trace.chains;
  }
  void note_fused_fastpath() noexcept { ++stats_.fused_fastpaths; }
  void note_completion() noexcept { ++stats_.completions; }
  // Records a side exit and demotes the trace when churn dominates; the
  // caller must not touch `trace` afterwards.
  void note_side_exit(Trace& trace);

  // Slice continuation. The scheduler's step quantum (64) is far shorter
  // than a sled-heavy trace (up to kMaxTraceBlocks full blocks), so when the
  // budget expires — at a block boundary (insn_idx 0) or mid-block —
  // trace_step parks its position here and the next slice re-enters
  // mid-trace. take_resume() is single-shot and re-runs the full validity
  // check (address space, per-page generations, and that `rip` sits exactly
  // on instruction `insn_idx` of block `block_idx`), so a demotion,
  // shootdown, or signal-diverted rip between slices simply drops the
  // continuation.
  void set_resume(std::uint64_t head, std::size_t block_idx,
                  std::size_t insn_idx) noexcept {
    resume_.head = head;
    resume_.block_idx = block_idx;
    resume_.insn_idx = insn_idx;
  }
  [[nodiscard]] Trace* take_resume(const mem::AddressSpace& as,
                                   std::uint64_t rip, std::size_t& block_idx,
                                   std::size_t& insn_idx);

  // Drops exactly the traces embedding a page that is gone, non-executable,
  // or past its recorded generation — the per-page SMP shootdown. Counts
  // each drop as an invalidation.
  void invalidate_stale(const mem::AddressSpace& as);

  void flush() noexcept;

  // RAII pin held by Machine::trace_step around a trace execution:
  // record_observe() can finalize a recording mid-run, and end_recording()
  // must not install into (and thereby mutate) the slot of the trace
  // currently being executed. A recording whose head hashes to the pinned
  // slot is discarded instead — a rare collision, and the head just reheats.
  class ScopedPin {
   public:
    ScopedPin(TraceCache& cache, Trace* trace) noexcept : cache_(cache) {
      cache_.pinned_ = trace;
    }
    ~ScopedPin() { cache_.pinned_ = nullptr; }
    ScopedPin(const ScopedPin&) = delete;
    ScopedPin& operator=(const ScopedPin&) = delete;

   private:
    TraceCache& cache_;
  };

  [[nodiscard]] const TraceCacheStats& stats() const noexcept { return stats_; }

  // Fires when a trace is dropped because an embedded page went stale (both
  // the lazy lookup path and invalidate_stale), with the trace's head rip —
  // the same contract as BlockCache::set_invalidation_listener.
  void set_invalidation_listener(std::function<void(std::uint64_t rip)> fn) {
    invalidation_listener_ = std::move(fn);
  }

 private:
  static constexpr std::uint64_t kNoAddr = ~0ULL;
  // A demoted head sits far below zero so kHotThreshold is unreachable for
  // any realistic run length; conflict eviction can still recycle the slot.
  static constexpr std::int32_t kBlacklisted =
      std::numeric_limits<std::int32_t>::min() / 2;

  struct HotCounter {
    std::uint64_t addr = kNoAddr;
    std::int32_t count = 0;
  };

  [[nodiscard]] static std::size_t index_of(std::uint64_t rip) noexcept {
    return static_cast<std::size_t>((rip ^ (rip >> 12)) & (kNumEntries - 1));
  }

  // True when the page backing `block` still matches the generation the
  // block was decoded under (recording must never capture stale bytes).
  [[nodiscard]] static bool block_page_fresh(const mem::AddressSpace& as,
                                             const DecodedBlock& block) noexcept;

  // rip one past the block's last instruction byte — the fallthrough
  // successor of a cap-ended block.
  [[nodiscard]] static std::uint64_t linear_end(const DecodedBlock& block) noexcept;

  // Appends the pending canonical block to the chain with `successor` as its
  // recorded exit; may finalize the recording (closure on the head, length
  // cap).
  void append_pending(std::uint64_t successor);
  // Fragment coverage reached `covered_to`; `exit_rip` is the architectural
  // rip after the covering run (== covered_to for fallthroughs and cuts, the
  // target when the run ended on the pending block's final transfer). Walks
  // the cursor, appending every canonical block the coverage completed.
  void advance_pending(const mem::AddressSpace& as, BlockCache& bcache,
                       std::uint64_t covered_to, std::uint64_t exit_rip);

  void drop_entry(Trace& entry, std::uint64_t rip, bool count_invalidation);
  void blacklist(std::uint64_t rip) noexcept;
  void add_page_ref(std::uint64_t base, std::uint64_t gen);
  // Shared validity walk behind lookup()/take_resume(): handles the
  // address-space flush, the entry match, and per-page revalidation (dropping
  // a stale entry), without touching the hit/miss counters.
  [[nodiscard]] Trace* find_valid(const mem::AddressSpace& as,
                                  std::uint64_t rip);

  struct ResumePoint {
    std::uint64_t head = kNoAddr;
    std::size_t block_idx = 0;
    std::size_t insn_idx = 0;
  };

  std::vector<Trace> entries_;  // start == kNoAddr marks empty
  std::vector<HotCounter> hot_;
  std::uint64_t as_id_ = 0;
  ResumePoint resume_;
  Trace* pinned_ = nullptr;  // see ScopedPin

  bool recording_ = false;
  Trace rec_;
  std::uint64_t rec_expected_next_ = 0;
  std::uint64_t rec_mismatches_ = 0;
  // Linear-cursor state for recording across slice cuts: the canonical block
  // being completed piecewise and the next uncovered rip inside it.
  bool rec_pending_active_ = false;
  DecodedBlock rec_pending_;
  std::uint64_t rec_cursor_ = 0;

  TraceCacheStats stats_;
  std::function<void(std::uint64_t rip)> invalidation_listener_;
};

}  // namespace lzp::cpu
