#include "cpu/trace_cache.hpp"

#include <algorithm>

namespace lzp::cpu {

bool TraceCache::block_page_fresh(const mem::AddressSpace& as,
                                  const DecodedBlock& block) noexcept {
  const mem::Page* page = as.page_at(mem::page_floor(block.start));
  return page != nullptr && (page->prot & mem::kProtExec) != 0 &&
         page->gen == block.page_gen;
}

void TraceCache::drop_entry(Trace& entry, std::uint64_t rip,
                            bool count_invalidation) {
  entry.start = kNoAddr;
  entry.blocks.clear();
  entry.pages.clear();
  if (count_invalidation) {
    ++stats_.invalidations;
    if (invalidation_listener_) invalidation_listener_(rip);
  }
}

void TraceCache::blacklist(std::uint64_t rip) noexcept {
  HotCounter& hot = hot_[index_of(rip)];
  hot.addr = rip;
  hot.count = kBlacklisted;
}

void TraceCache::add_page_ref(std::uint64_t base, std::uint64_t gen) {
  for (const Trace::PageRef& ref : rec_.pages) {
    if (ref.base == base) return;  // first recording of a page wins; a gen
                                   // change mid-recording aborts before here
  }
  rec_.pages.push_back({base, gen});
}

Trace* TraceCache::find_valid(const mem::AddressSpace& as, std::uint64_t rip) {
  if (as_id_ != as.asid()) {
    if (as_id_ != 0) ++stats_.flushes;
    flush();
    as_id_ = as.asid();
  }

  Trace& entry = entries_[index_of(rip)];
  if (entry.start != rip) return nullptr;
  for (const Trace::PageRef& ref : entry.pages) {
    const mem::Page* page = as.page_at(ref.base);
    if (page == nullptr || (page->prot & mem::kProtExec) == 0 ||
        page->gen != ref.gen) {
      drop_entry(entry, rip, /*count_invalidation=*/true);
      return nullptr;
    }
  }
  return &entry;
}

Trace* TraceCache::lookup(const mem::AddressSpace& as, std::uint64_t rip) {
  Trace* trace = find_valid(as, rip);
  if (trace == nullptr) {
    ++stats_.misses;
  } else {
    ++stats_.hits;
  }
  return trace;
}

Trace* TraceCache::take_resume(const mem::AddressSpace& as, std::uint64_t rip,
                               std::size_t& block_idx, std::size_t& insn_idx) {
  if (resume_.head == kNoAddr) return nullptr;
  const std::uint64_t head = resume_.head;
  const std::size_t bidx = resume_.block_idx;
  const std::size_t iidx = resume_.insn_idx;
  resume_ = ResumePoint{};  // single-shot, whether or not it validates

  Trace* trace = find_valid(as, head);
  if (trace == nullptr) return nullptr;
  if (bidx >= trace->blocks.size()) return nullptr;
  const DecodedBlock& block = trace->blocks[bidx].block;
  if (iidx >= block.insns.size()) return nullptr;
  // rip must sit exactly on the parked instruction — computed from the
  // block's own encodings, so even a trace installed over the slot since the
  // park (same head, different chain) only resumes where it is bit-valid.
  std::uint64_t expected = block.start;
  for (std::size_t k = 0; k < iidx; ++k) expected += block.insns[k].length;
  if (expected != rip) return nullptr;
  ++stats_.resumes;
  block_idx = bidx;
  insn_idx = iidx;
  return trace;
}

std::uint64_t TraceCache::linear_end(const DecodedBlock& block) noexcept {
  return block.start + block.length;
}

void TraceCache::on_block_executed(const mem::AddressSpace& as,
                                   BlockCache& bcache,
                                   const DecodedBlock& block,
                                   std::uint64_t next_rip) {
  // An address-space swap mid-chain (execve inside a recorded syscall exit)
  // invalidates everything the recording assumed; lookup() flushes the
  // entries on its next call, the recording dies here.
  if (as.asid() != as_id_) {
    abort_recording();
    return;
  }

  if (recording_) {
    record_observe(as, bcache, block, next_rip);
    return;
  }

  HotCounter& hot = hot_[index_of(block.start)];
  if (hot.addr != block.start) {
    hot.addr = block.start;
    hot.count = 0;
  }
  if (++hot.count < kHotThreshold) return;
  hot.count = 0;
  if (!block_page_fresh(as, block)) return;

  // Start recording with this execution's block as the head.
  recording_ = true;
  rec_mismatches_ = 0;
  rec_.start = block.start;
  rec_.blocks.clear();
  rec_.pages.clear();
  rec_.blocks.push_back({block, next_rip});
  add_page_ref(mem::page_floor(block.start), block.page_gen);
  rec_expected_next_ = next_rip;
  if (next_rip == rec_.start) end_recording();  // single-block self-loop
}

void TraceCache::record_observe(const mem::AddressSpace& as, BlockCache& bcache,
                                const DecodedBlock& block,
                                std::uint64_t next_rip) {
  if (!recording_) return;
  if (rec_pending_active_) {
    if (block.start != rec_cursor_) {
      if (++rec_mismatches_ > kRecordPatience) abort_recording();
      return;
    }
    if (!block_page_fresh(as, block)) {
      abort_recording();
      return;
    }
    rec_mismatches_ = 0;
    advance_pending(as, bcache, linear_end(block), next_rip);
    return;
  }
  if (block.start != rec_expected_next_) {
    // Not the successor the chain is waiting for. This is routine, not an
    // error: the slice quantum regularly cuts a block mid-run, and the
    // continuation then executes as differently-aligned blocks until a
    // control transfer re-syncs — often not until the loop's next iteration
    // revisits the expected boundary. Wait it out, bounded by kRecordPatience
    // so a chain whose boundary never comes back (the path truly diverged)
    // does not pin the recorder forever.
    if (++rec_mismatches_ > kRecordPatience) abort_recording();
    return;
  }
  if (!block_page_fresh(as, block)) {
    abort_recording();  // the block's page moved under the recording (SMC)
    return;
  }
  rec_mismatches_ = 0;
  rec_.blocks.push_back({block, next_rip});
  add_page_ref(mem::page_floor(block.start), block.page_gen);
  rec_expected_next_ = next_rip;
  if (next_rip == rec_.start || rec_.blocks.size() >= kMaxTraceBlocks) {
    end_recording();  // loop closed on the head, or chain long enough
  }
}

void TraceCache::record_cut(const mem::AddressSpace& as, BlockCache& bcache,
                            const DecodedBlock& block, std::uint64_t cut_rip) {
  if (!recording_) return;
  if (rec_pending_active_) {
    if (block.start != rec_cursor_) {
      if (++rec_mismatches_ > kRecordPatience) abort_recording();
      return;
    }
    rec_mismatches_ = 0;
    // No control transfer executed (the run was cut as kContinue), so the
    // covered bytes fell through linearly and cut_rip is both the coverage
    // limit and the architectural rip.
    advance_pending(as, bcache, cut_rip, cut_rip);
    return;
  }
  if (block.start != rec_expected_next_) return;  // unrelated fragment
  if (!block_page_fresh(as, block)) {
    abort_recording();
    return;
  }
  rec_mismatches_ = 0;
  rec_pending_ = block;
  rec_pending_active_ = true;
  rec_cursor_ = cut_rip;
}

void TraceCache::append_pending(std::uint64_t successor) {
  rec_.blocks.push_back({rec_pending_, successor});
  add_page_ref(mem::page_floor(rec_pending_.start), rec_pending_.page_gen);
  rec_expected_next_ = successor;
  if (successor == rec_.start || rec_.blocks.size() >= kMaxTraceBlocks) {
    end_recording();
  }
}

void TraceCache::advance_pending(const mem::AddressSpace& as,
                                 BlockCache& bcache, std::uint64_t covered_to,
                                 std::uint64_t exit_rip) {
  while (recording_) {
    const std::uint64_t pending_end = linear_end(rec_pending_);
    if (covered_to < pending_end) {
      rec_cursor_ = covered_to;  // still inside; wait for the next fragment
      return;
    }
    if (covered_to == pending_end) {
      // The fragment's last instruction is the pending block's last
      // instruction, so exit_rip is a valid observation of its exit (the
      // branch target, or the fallthrough for a cap-ended block or a cut).
      rec_pending_active_ = false;
      append_pending(exit_rip);
      return;
    }
    // Coverage ran past the pending block's cap without a control transfer:
    // it fell through into the next canonical block. Append it and walk on.
    append_pending(pending_end);
    if (!recording_) return;
    const DecodedBlock* next = bcache.lookup_or_build(as, pending_end);
    if (next == nullptr || !block_page_fresh(as, *next)) {
      abort_recording();
      return;
    }
    rec_pending_ = *next;
  }
}

void TraceCache::end_recording() {
  if (!recording_) return;
  recording_ = false;
  rec_pending_active_ = false;
  if (rec_.blocks.size() < 2) {
    // A chain this short gains nothing over single-block execution; keep the
    // head from re-heating and re-recording forever.
    blacklist(rec_.start);
    ++stats_.recordings_aborted;
    return;
  }
  Trace& slot = entries_[index_of(rec_.start)];
  if (&slot == pinned_) {
    // Installing would mutate the trace currently executing (ScopedPin).
    rec_.blocks.clear();
    rec_.pages.clear();
    ++stats_.recordings_aborted;
    return;
  }
  slot.start = rec_.start;
  slot.blocks = std::move(rec_.blocks);
  slot.pages = std::move(rec_.pages);
  slot.executions = 0;
  slot.side_exits = 0;
  slot.chains = 0;
  rec_.blocks.clear();
  rec_.pages.clear();
  ++stats_.traces_built;
}

void TraceCache::abort_recording() noexcept {
  if (!recording_) return;
  recording_ = false;
  rec_pending_active_ = false;
  rec_.blocks.clear();
  rec_.pages.clear();
  ++stats_.recordings_aborted;
}

void TraceCache::note_side_exit(Trace& trace) {
  ++stats_.side_exits;
  ++trace.side_exits;
  // Low chain yield: the trace usually dies before its second boundary, so
  // entry overhead outweighs the chaining it delivers. Drop it without
  // blacklisting — the head may heat up again once the path stabilizes, and
  // the replacement recording gets judged on the same terms.
  if (trace.executions >= kDemotionWindow &&
      trace.chains < trace.executions * 2) {
    drop_entry(trace, trace.start, /*count_invalidation=*/false);
    ++stats_.demotions;
  }
}

void TraceCache::invalidate_stale(const mem::AddressSpace& as) {
  if (as_id_ != as.asid()) return;  // lookup() will flush wholesale anyway
  for (Trace& entry : entries_) {
    if (entry.start == kNoAddr || entry.blocks.empty()) continue;
    for (const Trace::PageRef& ref : entry.pages) {
      const mem::Page* page = as.page_at(ref.base);
      if (page == nullptr || (page->prot & mem::kProtExec) == 0 ||
          page->gen != ref.gen) {
        drop_entry(entry, entry.start, /*count_invalidation=*/true);
        break;
      }
    }
  }
}

void TraceCache::flush() noexcept {
  for (Trace& entry : entries_) {
    entry.start = kNoAddr;
    entry.blocks.clear();
    entry.pages.clear();
    entry.executions = 0;
    entry.side_exits = 0;
    entry.chains = 0;
  }
  for (HotCounter& hot : hot_) {
    hot.addr = kNoAddr;
    hot.count = 0;
  }
  if (recording_) {
    recording_ = false;
    rec_.blocks.clear();
    rec_.pages.clear();
  }
  rec_pending_active_ = false;
  resume_ = ResumePoint{};
  as_id_ = 0;
}

}  // namespace lzp::cpu
