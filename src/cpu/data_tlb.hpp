// Data-side TLB: direct-mapped page-translation arrays for loads and stores.
//
// PR 1 gave the *fetch* side a TLB (decode_cache.hpp); every kLoad/kStore/
// kPush/kPop still walked the std::map page table. This TLB caches
// page-base -> mem::Page* translations separately for reads and writes, so
// the data hot path is one index + three compares + a memcpy.
//
// Validity is entirely generation-based, reusing the existing machinery:
//   * an entry is usable only while layout_gen() is unchanged (map/unmap
//     bumps it, and raw Page pointers are only stable under a fixed layout),
//   * the whole TLB belongs to one asid; a different address space (execve,
//     fork's deep copy) flushes it wholesale,
//   * protection is deliberately NOT cached: it is re-read through the live
//     Page on every access, because mprotect does not bump layout_gen (the
//     page object is stable; only its prot byte changes).
//
// Exactness rules (anything outside them falls back to AddressSpace::read/
// write, which owns fault construction and fault counting):
//   * only single-page accesses take the fast path — crossing accesses have
//     partial-write semantics the slow path implements,
//   * writes require kProtWrite and *no* kProtExec: a write to an executable
//     page must go through AddressSpace::write so touch_exec_range bumps the
//     page's code generation and cached decodes/blocks invalidate (the SMC
//     contract the whole decode-cache scheme rests on).
#pragma once

#include <cstdint>
#include <cstring>

#include "memory/address_space.hpp"

namespace lzp::cpu {

struct DataTlbStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_fallbacks = 0;  // miss/refill, crossing, prot, fault
  std::uint64_t write_hits = 0;
  std::uint64_t write_fallbacks = 0;
};

class DataTlb {
 public:
  static constexpr std::size_t kNumEntries = 64;  // power of two, per side

  // Fast-path read of `n` bytes at `addr`. Returns true when the bytes were
  // copied; false means "use AddressSpace::read" (which may still succeed —
  // false only promises nothing was copied and no state was clobbered).
  bool read(const mem::AddressSpace& as, std::uint64_t addr, std::uint8_t* out,
            std::size_t n) noexcept {
    const std::uint64_t base = mem::page_floor(addr);
    const std::uint64_t off = addr - base;
    if (off + n > mem::kPageSize) {
      ++stats_.read_fallbacks;
      return false;
    }
    const mem::Page* page = translate_read(as, base);
    if (page == nullptr || (page->prot & mem::kProtRead) == 0) {
      ++stats_.read_fallbacks;
      return false;
    }
    std::memcpy(out, page->bytes.data() + off, n);
    ++stats_.read_hits;
    return true;
  }

  // Fast-path write; same contract as read(). Never touches pages with the
  // exec bit set (see header comment).
  bool write(mem::AddressSpace& as, std::uint64_t addr, const std::uint8_t* in,
             std::size_t n) noexcept {
    const std::uint64_t base = mem::page_floor(addr);
    const std::uint64_t off = addr - base;
    if (off + n > mem::kPageSize) {
      ++stats_.write_fallbacks;
      return false;
    }
    mem::Page* page = translate_write(as, base);
    if (page == nullptr || (page->prot & mem::kProtWrite) == 0 ||
        (page->prot & mem::kProtExec) != 0) {
      ++stats_.write_fallbacks;
      return false;
    }
    std::memcpy(page->bytes.data() + off, in, n);
    ++stats_.write_hits;
    return true;
  }

  void flush() noexcept {
    for (auto& e : read_) e.base = kNoAddr;
    for (auto& e : write_) e.base = kNoAddr;
  }

  [[nodiscard]] const DataTlbStats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::uint64_t kNoAddr = ~0ULL;

  template <typename PagePtr>
  struct Entry {
    std::uint64_t base = kNoAddr;
    std::uint64_t layout_gen = 0;
    PagePtr page = nullptr;
  };

  [[nodiscard]] static std::size_t index_of(std::uint64_t base) noexcept {
    return static_cast<std::size_t>((base >> 12) & (kNumEntries - 1));
  }

  // Syncs the TLB to `as` (flushing on an asid change) and returns true if
  // the TLB may serve entries for it.
  bool sync_asid(const mem::AddressSpace& as) noexcept {
    if (asid_ != as.asid()) {
      flush();
      asid_ = as.asid();
    }
    return true;
  }

  const mem::Page* translate_read(const mem::AddressSpace& as,
                                  std::uint64_t base) noexcept {
    sync_asid(as);
    Entry<const mem::Page*>& e = read_[index_of(base)];
    if (e.base == base && e.layout_gen == as.layout_gen()) return e.page;
    const mem::Page* page = as.page_at(base);
    if (page == nullptr) return nullptr;
    e.base = base;
    e.layout_gen = as.layout_gen();
    e.page = page;
    return page;
  }

  mem::Page* translate_write(mem::AddressSpace& as, std::uint64_t base) noexcept {
    sync_asid(as);
    Entry<mem::Page*>& e = write_[index_of(base)];
    if (e.base == base && e.layout_gen == as.layout_gen()) return e.page;
    mem::Page* page = as.page_at_mut(base);
    if (page == nullptr) return nullptr;
    e.base = base;
    e.layout_gen = as.layout_gen();
    e.page = page;
    return page;
  }

  Entry<const mem::Page*> read_[kNumEntries];
  Entry<mem::Page*> write_[kNumEntries];
  std::uint64_t asid_ = 0;
  DataTlbStats stats_;
};

}  // namespace lzp::cpu
