// Superblock cache + block executor for the simulator hot loop.
//
// The decode cache (PR 1) removed per-instruction fetch/decode cost; the
// kernel's step loop still pays per-instruction dispatch, accounting, and
// policy checks. A DecodedBlock is a straight-line run of pre-decoded
// instructions that run_block() executes back to back, so Machine::run_slice
// can hoist all of that to block boundaries (see machine.cpp).
//
// Block construction stops at (the terminator is INCLUDED in the block):
//   * any control transfer (call/jmp/ret/conditional branches),
//   * SYSCALL / SYSENTER, HOSTCALL, HLT, TRAP — anything the kernel layer
//     must see,
//   * the page boundary (an instruction whose encoding would cross into the
//     next page is left for the per-instruction path, so every block's bytes
//     live on exactly ONE page),
//   * kMaxBlockInsns.
//
// Keeping a block within one page makes validation a single generation
// compare: a block is valid iff the asid matches, the start rip matches, and
// the backing page is still executable at the generation the block was
// decoded under — precisely the DecodeCache invalidation contract from PR 1,
// so zpoline's self-modifying rewrite idiom invalidates blocks exactly as it
// invalidates single decodes (writes to exec pages, exec-bit mprotect flips,
// unmap, fork/execve asid changes all bump the relevant generation).
//
// run_block() executes through cpu::exec_decoded one instruction at a time,
// maintaining ctx.rip as it goes: a mid-block fault therefore leaves the
// context exactly as the per-instruction path would — rip at the faulting
// instruction, no partial writes, earlier instructions fully retired — and
// the returned retire/nop counts cover only what actually completed, so the
// kernel's batched accounting is bit-exact against per-step accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/context.hpp"
#include "cpu/data_tlb.hpp"
#include "cpu/execute.hpp"
#include "isa/insn.hpp"
#include "memory/address_space.hpp"

namespace lzp::cpu {

struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;         // includes invalidations and failed builds
  std::uint64_t invalidations = 0;  // entry matched rip but its gen was stale
  std::uint64_t flushes = 0;        // whole-cache flushes (execve / AS swap)
  std::uint64_t blocks_built = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// A decoded straight-line run. All encodings live on the page of `start`.
struct DecodedBlock {
  std::uint64_t start = 0;
  std::uint64_t page_gen = 0;  // generation the block was decoded under
  std::uint32_t nops = 0;      // how many of insns are kNop (cost precompute)
  std::uint32_t length = 0;    // total encoded bytes (trace engine nop superop)
  std::vector<isa::Instruction> insns;
};

// True for every opcode that must end a block (control transfers plus the
// kernel-visible instructions).
[[nodiscard]] bool ends_block(isa::Op op) noexcept;

class BlockCache {
 public:
  static constexpr std::size_t kNumEntries = 1024;  // power of two
  static constexpr std::size_t kMaxBlockInsns = 32;

  BlockCache() : entries_(kNumEntries) {}

  // Returns a valid block starting at `rip`, building (and caching) one if
  // needed. nullptr when no block can be built: the first instruction
  // crosses a page boundary, fails to decode, or the page is not executable
  // — the caller falls back to the per-instruction path, which owns raising
  // the architectural fault. The pointer is valid until the next
  // lookup_or_build()/flush().
  [[nodiscard]] const DecodedBlock* lookup_or_build(const mem::AddressSpace& as,
                                                    std::uint64_t rip);

  void flush() noexcept;

  [[nodiscard]] const BlockCacheStats& stats() const noexcept { return stats_; }

  // Fires when an entry matched rip but went stale (page vanished, lost
  // exec, or its generation moved) — the SMC signature, same contract as
  // DecodeCache::set_invalidation_listener.
  void set_invalidation_listener(std::function<void(std::uint64_t rip)> fn) {
    invalidation_listener_ = std::move(fn);
  }

 private:
  static constexpr std::uint64_t kNoAddr = ~0ULL;

  [[nodiscard]] static std::size_t index_of(std::uint64_t rip) noexcept {
    return static_cast<std::size_t>((rip ^ (rip >> 12)) & (kNumEntries - 1));
  }

  // One-entry page-translation TLB (same pattern as DecodeCache).
  [[nodiscard]] const mem::Page* translate(const mem::AddressSpace& as,
                                           std::uint64_t page_base) noexcept;

  // Decodes a fresh block at `rip` into `block`. Returns false when not even
  // one instruction fits (see lookup_or_build).
  bool build(const mem::AddressSpace& as, std::uint64_t rip,
             const mem::Page& page, DecodedBlock* block);

  std::vector<DecodedBlock> entries_;  // start == kNoAddr marks empty
  std::uint64_t as_id_ = 0;

  std::uint64_t tlb_base_ = kNoAddr;
  std::uint64_t tlb_layout_gen_ = 0;
  const mem::Page* tlb_page_ = nullptr;

  BlockCacheStats stats_;
  std::function<void(std::uint64_t rip)> invalidation_listener_;
};

// Outcome of one run_block() call.
struct BlockRun {
  // kContinue: ran to the end of the block (or out of budget) with every
  // executed instruction retired; ctx.rip points at the next instruction.
  // Any other kind reproduces exactly what step() would have returned for
  // the instruction at `insn_addr`.
  ExecKind kind = ExecKind::kContinue;
  std::uint32_t executed = 0;  // instructions attempted — machine steps used
  std::uint32_t retired = 0;   // instructions retired (kContinue/kSyscall)
  std::uint32_t nops = 0;      // of `retired`, how many were kNop
  mem::MemFault fault{};       // valid when kind == kMemFault
  std::uint64_t insn_addr = 0;             // address of the ending instruction
  const isa::Instruction* last = nullptr;  // the ending instruction itself
};

// Executes up to `budget` instructions of `block`, starting at instruction
// index `first_insn` (ctx.rip must sit exactly on that instruction; the
// trace engine uses a nonzero index to resume a block the slice quantum cut
// mid-run). The budget is in *executed* instructions — exactly the machine
// steps a per-instruction run would use, so slice boundaries land on
// identical points with the engine on or off. Stops early at the first
// non-kContinue outcome; the kSyscall terminator counts as retired (matching
// step_once's accounting), while kHostCall/kHlt/kTrap and faults execute
// without retiring.
BlockRun run_block(CpuContext& ctx, mem::AddressSpace& mem,
                   const DecodedBlock& block, std::uint64_t budget,
                   DataTlb* tlb = nullptr, std::size_t first_insn = 0);

}  // namespace lzp::cpu
