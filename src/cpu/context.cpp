#include "cpu/context.hpp"

#include <cassert>
#include <cstring>

namespace lzp::cpu {
namespace {

template <typename T>
void put(std::span<std::uint8_t>& out, const T& value) noexcept {
  std::memcpy(out.data(), &value, sizeof(T));
  out = out.subspan(sizeof(T));
}

template <typename T>
void get(std::span<const std::uint8_t>& in, T& value) noexcept {
  std::memcpy(&value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
}

}  // namespace

void XState::save_to(std::span<std::uint8_t> out) const noexcept {
  assert(out.size() >= kSaveSize);
  for (const auto& lanes : xmm) { put(out, lanes[0]); put(out, lanes[1]); }
  for (const auto& lanes : ymm_hi) { put(out, lanes[0]); put(out, lanes[1]); }
  for (std::uint64_t v : x87) put(out, v);
  put(out, x87_top);
  put(out, x87_depth);
  put(out, fcw);
  put(out, mxcsr);
}

void XState::load_from(std::span<const std::uint8_t> in) noexcept {
  assert(in.size() >= kSaveSize);
  for (auto& lanes : xmm) { get(in, lanes[0]); get(in, lanes[1]); }
  for (auto& lanes : ymm_hi) { get(in, lanes[0]); get(in, lanes[1]); }
  for (std::uint64_t& v : x87) get(in, v);
  get(in, x87_top);
  get(in, x87_depth);
  get(in, fcw);
  get(in, mxcsr);
}

void XState::x87_push(std::uint64_t bits) noexcept {
  x87_top = static_cast<std::uint8_t>((x87_top + isa::kNumX87 - 1) % isa::kNumX87);
  x87[x87_top] = bits;
  if (x87_depth < isa::kNumX87) ++x87_depth;
}

std::uint64_t XState::x87_pop() noexcept {
  const std::uint64_t bits = x87[x87_top];
  x87_top = static_cast<std::uint8_t>((x87_top + 1) % isa::kNumX87);
  if (x87_depth > 0) --x87_depth;
  return bits;
}

std::uint64_t XState::x87_peek(std::uint8_t depth) const noexcept {
  return x87[(x87_top + depth) % isa::kNumX87];
}

}  // namespace lzp::cpu
