// CPU register context: general-purpose registers, flags, %gs base, and the
// extended state ("xstate": SSE XMM, AVX upper lanes, legacy x87 stack) whose
// preservation across syscalls is a central compatibility concern of the
// paper (§IV-B, Listing 1, Table III).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "isa/insn.hpp"

namespace lzp::cpu {

// Extended processor state. Sized and serialized as one block, like the
// hardware XSAVE area lazypoline saves to its per-task %gs-relative region.
struct XState {
  // XMM registers: two 64-bit lanes each.
  std::array<std::array<std::uint64_t, 2>, isa::kNumXmm> xmm{};
  // Upper 128 bits of the YMM registers (AVX state component).
  std::array<std::array<std::uint64_t, 2>, isa::kNumXmm> ymm_hi{};
  // Legacy x87 FPU: 8-deep register stack (values held as raw 64-bit
  // patterns; arithmetic interprets them as doubles), top-of-stack index,
  // and a fill counter.
  std::array<std::uint64_t, isa::kNumX87> x87{};
  std::uint8_t x87_top = 0;
  std::uint8_t x87_depth = 0;
  std::uint16_t fcw = 0x037F;   // x87 control word reset value
  std::uint32_t mxcsr = 0x1F80; // SSE control/status reset value

  friend bool operator==(const XState&, const XState&) = default;

  // Size of the serialized form (the simulated XSAVE area).
  static constexpr std::size_t kSaveSize =
      16 * isa::kNumXmm + 16 * isa::kNumXmm + 8 * isa::kNumX87 + 2 + 2 + 4;

  void save_to(std::span<std::uint8_t> out) const noexcept;   // xsave
  void load_from(std::span<const std::uint8_t> in) noexcept;  // xrstor

  // x87 stack helpers (push/pop wrap like the real register stack).
  void x87_push(std::uint64_t bits) noexcept;
  std::uint64_t x87_pop() noexcept;
  [[nodiscard]] std::uint64_t x87_peek(std::uint8_t depth) const noexcept;
};

// Comparison flags produced by CMP; consumed by conditional jumps.
struct Flags {
  bool zf = false;
  bool lt = false;  // signed less-than
  bool gt = false;  // signed greater-than
  friend bool operator==(const Flags&, const Flags&) = default;
};

struct CpuContext {
  std::array<std::uint64_t, isa::kNumGprs> gpr{};
  std::uint64_t rip = 0;
  std::uint64_t gs_base = 0;
  Flags flags{};
  XState xstate{};

  [[nodiscard]] std::uint64_t reg(isa::Gpr r) const noexcept {
    return gpr[static_cast<std::size_t>(r)];
  }
  void set_reg(isa::Gpr r, std::uint64_t value) noexcept {
    gpr[static_cast<std::size_t>(r)] = value;
  }

  [[nodiscard]] std::uint64_t rsp() const noexcept { return reg(isa::Gpr::rsp); }
  void set_rsp(std::uint64_t value) noexcept { set_reg(isa::Gpr::rsp, value); }

  // Syscall ABI accessors.
  [[nodiscard]] std::uint64_t syscall_number() const noexcept {
    return reg(isa::Gpr::rax);
  }
  [[nodiscard]] std::uint64_t syscall_arg(std::size_t index) const noexcept {
    return reg(isa::kSyscallArgRegs[index]);
  }
  void set_syscall_result(std::uint64_t value) noexcept {
    set_reg(isa::Gpr::rax, value);
  }

  friend bool operator==(const CpuContext&, const CpuContext&) = default;
};

}  // namespace lzp::cpu
