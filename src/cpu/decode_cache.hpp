// Decoded-instruction cache for the simulator hot loop.
//
// step() retires the same instructions millions of times; without a cache
// every retirement re-walks the page map and re-decodes from raw bytes. The
// cache is direct-mapped, keyed by rip, and stores the decoded instruction
// together with the code generation(s) of the page(s) the encoding lives on
// (see Page::gen in memory/address_space.hpp). A one-entry page-translation
// TLB skips the std::map walk on sequential fetches within a page.
//
// Correctness is the interesting part: the interposers this project
// reproduces rewrite *executing* code at runtime (syscall -> call rax), so a
// stale decode would silently break the paper's central mechanism. The
// invalidation scheme is entirely generation-based:
//
//   * writes to an executable page bump that page's generation,
//   * mprotect that touches the exec bit (either direction) bumps it too —
//     covering the flip-RW / patch / flip-back rewrite idiom, where the
//     patching write itself lands on a momentarily non-executable page,
//   * unmapping an exec page retires its generation globally, so a later
//     mapping at the same address can never satisfy an old entry,
//   * each AddressSpace instance has a unique asid; fork's deep copy and
//     execve's fresh address space both change it, flushing implicitly.
//
// CLONE_VM needs no extra work: sibling tasks share the AddressSpace, so a
// sibling's rewrite bumps the same page generation every cache validates
// against. Fork needs none either: the child task gets a fresh cache, and
// the parent's entries stay valid against its unchanged address space.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "isa/insn.hpp"
#include "memory/address_space.hpp"

namespace lzp::cpu {

struct DecodeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;         // includes invalidations
  std::uint64_t invalidations = 0;  // entry matched rip but its gen was stale
  std::uint64_t flushes = 0;        // whole-cache flushes (execve / AS swap)

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class DecodeCache {
 public:
  static constexpr std::size_t kNumEntries = 4096;  // power of two

  DecodeCache() : entries_(kNumEntries) {}

  // Returns the cached decode for `rip` if it is still valid against `as`,
  // else nullptr. The pointer is valid until the next insert()/flush().
  [[nodiscard]] const isa::Instruction* lookup(const mem::AddressSpace& as,
                                              std::uint64_t rip) noexcept;

  // Records a successful decode at `rip`. No-op if the backing page cannot
  // be resolved (never the case right after a successful fetch).
  void insert(const mem::AddressSpace& as, std::uint64_t rip,
              const isa::Instruction& insn) noexcept;

  // Drops every entry and the TLB. Bound to execve and address-space swaps.
  void flush() noexcept;

  // Force-disable (bench ablation): lookup always misses, insert is a no-op,
  // and no statistics are recorded.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  [[nodiscard]] const DecodeCacheStats& stats() const noexcept { return stats_; }

  // Observability probe: fires on the cold invalidation paths only (entry
  // matched rip but the backing page vanished, lost exec, or its generation
  // moved — the SMC signature of a runtime rewrite landing on cached code).
  // Never fires on plain misses or flushes, so the hot loop stays branch-free
  // apart from one predictable null check on an already-cold path.
  void set_invalidation_listener(std::function<void(std::uint64_t rip)> fn) {
    invalidation_listener_ = std::move(fn);
  }

 private:
  static constexpr std::uint64_t kNoAddr = ~0ULL;

  struct Entry {
    std::uint64_t rip = kNoAddr;
    std::uint64_t gen = 0;   // generation of the page holding the first byte
    std::uint64_t gen2 = 0;  // generation of the second page when crossing
    isa::Instruction insn;
  };

  [[nodiscard]] static std::size_t index_of(std::uint64_t rip) noexcept {
    // Mix the page number in so straight-line code in different pages does
    // not collide on low bits alone.
    return static_cast<std::size_t>((rip ^ (rip >> 12)) & (kNumEntries - 1));
  }

  // Page translation through the one-entry TLB; re-walks the page map when
  // the layout generation moved (map/unmap invalidates raw page pointers).
  [[nodiscard]] const mem::Page* translate(const mem::AddressSpace& as,
                                           std::uint64_t page_base) noexcept;

  std::vector<Entry> entries_;
  std::uint64_t as_id_ = 0;  // asid the entries were built against

  std::uint64_t tlb_base_ = kNoAddr;
  std::uint64_t tlb_layout_gen_ = 0;
  const mem::Page* tlb_page_ = nullptr;

  bool enabled_ = true;
  DecodeCacheStats stats_;
  std::function<void(std::uint64_t rip)> invalidation_listener_;
};

}  // namespace lzp::cpu
