// The instruction executor: fetches, decodes, and retires one instruction
// against a CpuContext and AddressSpace. Pure user-mode semantics only —
// SYSCALL/SYSENTER, HLT, TRAP, and faults are reported as outcomes for the
// kernel layer to handle (it owns signal delivery and syscall dispatch).
#pragma once

#include <cstdint>
#include <optional>

#include "base/status.hpp"
#include "cpu/context.hpp"
#include "cpu/data_tlb.hpp"
#include "cpu/decode_cache.hpp"
#include "isa/decode.hpp"
#include "memory/address_space.hpp"

namespace lzp::cpu {

enum class ExecKind : std::uint8_t {
  kContinue,       // instruction retired, rip advanced
  kSyscall,        // SYSCALL/SYSENTER hit; rip already advanced past it
  kHlt,            // task asked to stop
  kTrap,           // INT3
  kMemFault,       // -> SIGSEGV
  kInvalidOpcode,  // -> SIGILL
  kHostCall,       // HOSTCALL hit; rip already advanced; index in insn->imm
  kDivideError,    // #DE: division by zero -> SIGFPE
};

struct ExecResult {
  ExecKind kind = ExecKind::kContinue;
  // Valid when kind == kMemFault.
  mem::MemFault fault{};
  // Address of the instruction that produced this result (pre-advance rip).
  std::uint64_t insn_addr = 0;
  // The decoded instruction, when decoding succeeded.
  std::optional<isa::Instruction> insn;
};

// Fetch + decode at ctx.rip without executing (used by tracers/pintool).
// With a cache the decode is served from / recorded into it.
[[nodiscard]] Result<isa::Instruction> fetch_decode(const CpuContext& ctx,
                                                    const mem::AddressSpace& mem,
                                                    DecodeCache* cache = nullptr);

// Executes exactly one instruction. On kContinue the context is fully
// updated; on kSyscall the context holds the post-syscall-instruction rip
// (matching x86, where the kernel sees the advanced rip and SUD's rewriter
// subtracts the 2-byte encoding to find the site); on faults the context is
// unchanged except that no partial memory writes occur.
//
// `cache` (optional) is the task's decoded-instruction cache; hits skip the
// fetch window and re-decode entirely. Invalidation against self-modifying
// code is generation-based — see decode_cache.hpp. `tlb` (optional) is the
// task's data-side TLB; loads/stores/push/pop that it cannot serve fall back
// to the checked AddressSpace accessors, so faults are identical with and
// without it.
ExecResult step(CpuContext& ctx, mem::AddressSpace& mem,
                DecodeCache* cache = nullptr, DataTlb* tlb = nullptr);

// Executes one *already decoded* instruction whose first byte sits at
// ctx.rip. This is step() minus fetch/decode: the superblock engine
// (block_cache.hpp) runs a cached straight-line decode through it one
// instruction at a time, so mid-block faults land at the architecturally
// correct rip with the context exactly as a per-instruction run would leave
// it. The returned result has insn_addr filled in but NOT `insn` (the caller
// already holds the decoded instruction).
ExecResult exec_decoded(CpuContext& ctx, mem::AddressSpace& mem,
                        const isa::Instruction& insn, DataTlb* tlb = nullptr);

}  // namespace lzp::cpu
