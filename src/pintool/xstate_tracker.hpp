// Dynamic binary instrumentation analogue of the paper's Intel Pin tool
// (§IV-B): "tracks at run time whether a syscall is executed between a
// consecutive write to and read from the same register. This indicates that
// the application expected the register contents to remain preserved across
// the syscall."
//
// Attached to a Machine, it observes every retired instruction's
// architectural register reads/writes plus every syscall dispatch, and
// reports, per register class, the sites where the application relies on
// cross-syscall preservation. Like Pin, this is a dynamic analysis: it can
// only underestimate (unexecuted paths are invisible).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "isa/insn.hpp"
#include "kernel/machine.hpp"

namespace lzp::pintool {

struct Expectation {
  isa::RegClass cls = isa::RegClass::kGpr;
  std::uint8_t reg_index = 0;
  std::uint64_t syscall_nr = 0;   // the intervening syscall
  std::uint64_t read_rip = 0;     // the instruction that performed the read
  kern::Tid tid = 0;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const Expectation&, const Expectation&) = default;
};

struct Report {
  std::vector<Expectation> expectations;

  // The Table-III question: does the program expect any *extended* state
  // component (xmm/ymm/x87) to be preserved across at least one syscall?
  [[nodiscard]] bool any_xstate_expectation() const noexcept;
  [[nodiscard]] std::size_t count_for(isa::RegClass cls) const noexcept;
};

class XstateTracker {
 public:
  // Registers instruction & syscall observers on the machine's multicast
  // lists; composes with other observers (replay, tracing).
  void attach(kern::Machine& machine);
  void detach(kern::Machine& machine);

  [[nodiscard]] const Report& report() const noexcept { return report_; }
  void reset();

 private:
  struct RegState {
    bool written = false;          // a write happened...
    bool syscall_intervened = false;  // ...and a syscall followed it
    std::uint64_t syscall_nr = 0;
    bool reported = false;         // dedupe: first read only
  };
  struct TaskState {
    // [class][index]
    RegState regs[4][16];
  };

  void on_insn(const kern::Task& task, const isa::Instruction& insn);
  void on_syscall(const kern::Task& task, std::uint64_t nr);

  static bool tracked(isa::RegClass cls, std::uint8_t index) noexcept;

  std::map<kern::Tid, TaskState> tasks_;
  std::map<kern::Tid, std::uint64_t> last_rip_;
  Report report_;
  kern::Machine::ObserverId insn_obs_id_ = 0;
  kern::Machine::ObserverId syscall_obs_id_ = 0;
};

}  // namespace lzp::pintool
