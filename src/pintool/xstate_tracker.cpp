#include "pintool/xstate_tracker.hpp"

#include "base/strings.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::pintool {

std::string Expectation::to_string() const {
  std::string out{lzp::isa::to_string(cls)};
  out += std::to_string(reg_index);
  out += " live across ";
  out += kern::syscall_name(syscall_nr);
  out += ", read at ";
  out += hex_u64(read_rip);
  return out;
}

bool Report::any_xstate_expectation() const noexcept {
  for (const Expectation& e : expectations) {
    if (e.cls != isa::RegClass::kGpr) return true;
  }
  return false;
}

std::size_t Report::count_for(isa::RegClass cls) const noexcept {
  std::size_t count = 0;
  for (const Expectation& e : expectations) {
    if (e.cls == cls) ++count;
  }
  return count;
}

bool XstateTracker::tracked(isa::RegClass cls, std::uint8_t index) noexcept {
  if (cls != isa::RegClass::kGpr) return true;
  // GPRs the syscall ABI explicitly clobbers are not preservation
  // expectations: rax (result), rcx, r11 (SYSCALL microcode).
  switch (static_cast<isa::Gpr>(index)) {
    case isa::Gpr::rax:
    case isa::Gpr::rcx:
    case isa::Gpr::r11:
      return false;
    default:
      return true;
  }
}

void XstateTracker::attach(kern::Machine& machine) {
  insn_obs_id_ = machine.add_insn_observer(
      [this](const kern::Task& task, const isa::Instruction& insn) {
        on_insn(task, insn);
      });
  syscall_obs_id_ = machine.add_syscall_observer(
      [this](const kern::Task& task, std::uint64_t nr,
             const std::array<std::uint64_t, 6>&,
             kern::Machine::SyscallOrigin origin) {
        // Only application-issued syscalls count; interposer-originated
        // ones do not exist in the native runs this tool instruments.
        if (origin == kern::Machine::SyscallOrigin::kSimCode) {
          on_syscall(task, nr);
        }
      });
}

void XstateTracker::detach(kern::Machine& machine) {
  machine.remove_insn_observer(insn_obs_id_);
  machine.remove_syscall_observer(syscall_obs_id_);
  insn_obs_id_ = syscall_obs_id_ = 0;
}

void XstateTracker::reset() {
  tasks_.clear();
  last_rip_.clear();
  report_.expectations.clear();
}

void XstateTracker::on_insn(const kern::Task& task, const isa::Instruction& insn) {
  TaskState& state = tasks_[task.tid];
  last_rip_[task.tid] = task.ctx.rip;
  const isa::RegEffects fx = isa::reg_effects(insn);

  // Reads first: an instruction that reads and writes the same register
  // (add r, imm) observes the pre-write value.
  for (std::uint8_t i = 0; i < fx.num_reads; ++i) {
    const isa::RegRef ref = fx.reads[i];
    if (!tracked(ref.cls, ref.index)) continue;
    RegState& reg = state.regs[static_cast<int>(ref.cls)][ref.index];
    if (reg.written && reg.syscall_intervened && !reg.reported) {
      reg.reported = true;
      report_.expectations.push_back(Expectation{
          ref.cls, ref.index, reg.syscall_nr, task.ctx.rip, task.tid});
    }
  }
  for (std::uint8_t i = 0; i < fx.num_writes; ++i) {
    const isa::RegRef ref = fx.writes[i];
    if (!tracked(ref.cls, ref.index)) continue;
    RegState& reg = state.regs[static_cast<int>(ref.cls)][ref.index];
    reg.written = true;
    reg.syscall_intervened = false;
    reg.reported = false;
  }
}

void XstateTracker::on_syscall(const kern::Task& task, std::uint64_t nr) {
  TaskState& state = tasks_[task.tid];
  for (auto& cls : state.regs) {
    for (RegState& reg : cls) {
      if (reg.written && !reg.syscall_intervened) {
        reg.syscall_intervened = true;
        reg.syscall_nr = nr;
      }
    }
  }
}

}  // namespace lzp::pintool
