#include "memory/address_space.hpp"

#include <algorithm>
#include <cstring>

#include "base/strings.hpp"

namespace lzp::mem {

std::string prot_to_string(std::uint8_t prot) {
  std::string out = "---";
  if (prot & kProtRead) out[0] = 'r';
  if (prot & kProtWrite) out[1] = 'w';
  if (prot & kProtExec) out[2] = 'x';
  return out;
}

std::string MemFault::to_string() const {
  std::string out{lzp::mem::to_string(kind)};
  out += " fault at ";
  out += hex_u64(address);
  out += unmapped ? " (unmapped)" : " (permission)";
  return out;
}

std::uint64_t AddressSpace::next_asid() noexcept {
  // Atomic: address spaces are constructed from concurrent clone() handlers
  // when CLONE_VM siblings run on different simulated CPUs.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::shared_ptr<AddressSpace> AddressSpace::clone() const {
  auto copy = std::make_shared<AddressSpace>();
  copy->pages_ = pages_;  // deep copy: Page holds its bytes by value
  // The copy keeps the generation counters (so per-page gens stay monotone
  // within the lineage) but gets its own asid from the default constructor:
  // decode caches keyed by asid treat the child as a brand-new code space.
  copy->code_gen_.store(code_gen(), std::memory_order_relaxed);
  copy->layout_gen_.store(layout_gen(), std::memory_order_relaxed);
  return copy;
}

const Page* AddressSpace::page_at(std::uint64_t page_base) const noexcept {
  auto it = pages_.find(page_base);
  return it == pages_.end() ? nullptr : &it->second;
}

Page* AddressSpace::page_at_mut(std::uint64_t page_base) noexcept {
  auto it = pages_.find(page_base);
  return it == pages_.end() ? nullptr : &it->second;
}

void AddressSpace::touch_page_gen(Page& page) noexcept {
  page.gen = bump_code_gen();
  ++stats_.exec_invalidations;
}

void AddressSpace::touch_exec_range(std::uint64_t addr, std::size_t size) noexcept {
  if (size == 0) return;
  const std::uint64_t last = page_floor(addr + size - 1);
  for (std::uint64_t base = page_floor(addr);; base += kPageSize) {
    auto it = pages_.find(base);
    if (it != pages_.end() && (it->second.prot & kProtExec) != 0) {
      touch_page_gen(it->second);
    }
    if (base == last) break;
  }
}

Result<std::uint64_t> AddressSpace::map(std::uint64_t addr, std::uint64_t length,
                                        std::uint8_t prot, bool fixed) {
  ++stats_.mmap_calls;
  if (length == 0) {
    return make_error(StatusCode::kInvalidArgument, "mmap: zero length");
  }
  std::uint64_t base = page_floor(addr);
  const std::uint64_t num_pages = page_ceil(length) / kPageSize;

  auto range_free = [&](std::uint64_t candidate) {
    for (std::uint64_t i = 0; i < num_pages; ++i) {
      if (pages_.count(candidate + i * kPageSize) != 0) return false;
    }
    return true;
  };

  if (fixed) {
    if (!range_free(base)) {
      return make_error(StatusCode::kAlreadyExists,
                        "mmap fixed: range overlaps existing mapping at " +
                            hex_u64(base));
    }
  } else {
    if (base == 0) base = kDefaultMapBase;
    // First-fit scan from the hint upward. The page map is sparse, so skip
    // over occupied runs instead of probing page by page.
    while (!range_free(base)) {
      auto it = pages_.lower_bound(base);
      base = it->first + kPageSize;
    }
  }

  bump_layout_gen();
  for (std::uint64_t i = 0; i < num_pages; ++i) {
    Page page;
    page.prot = prot;
    // Fresh pages start at the current global code generation: any cached
    // decode of a previously unmapped-then-remapped page at this address
    // recorded a strictly older generation (unmap bumps the counter).
    page.gen = code_gen();
    page.bytes.assign(kPageSize, 0);
    pages_.emplace(base + i * kPageSize, std::move(page));
  }
  return base;
}

Status AddressSpace::unmap(std::uint64_t addr, std::uint64_t length) {
  ++stats_.munmap_calls;
  if ((addr & kPageMask) != 0) {
    return make_error(StatusCode::kInvalidArgument, "munmap: unaligned address");
  }
  const std::uint64_t end = page_ceil(addr + length);
  bump_layout_gen();
  for (std::uint64_t page = addr; page < end; page += kPageSize) {
    auto it = pages_.find(page);
    if (it == pages_.end()) continue;  // munmap on unmapped succeeds, like Linux
    if ((it->second.prot & kProtExec) != 0) {
      // Retire the exec page's generation so a later mapping at the same
      // address can never satisfy a stale cached decode.
      (void)bump_code_gen();
      ++stats_.exec_invalidations;
    }
    pages_.erase(it);
  }
  return Status::ok();
}

Status AddressSpace::protect(std::uint64_t addr, std::uint64_t length,
                             std::uint8_t prot) {
  ++stats_.mprotect_calls;
  if ((addr & kPageMask) != 0) {
    return make_error(StatusCode::kInvalidArgument, "mprotect: unaligned address");
  }
  const std::uint64_t end = page_ceil(addr + length);
  // Linux fails mprotect if any page in the range is unmapped; check first.
  for (std::uint64_t page = addr; page < end; page += kPageSize) {
    if (pages_.count(page) == 0) {
      return make_error(StatusCode::kNotFound,
                        "mprotect: unmapped page " + hex_u64(page));
    }
  }
  for (std::uint64_t page = addr; page < end; page += kPageSize) {
    Page& entry = pages_[page];
    // Any protection change that involves executability — in either
    // direction — retires the page's code generation. This is what makes
    // the rewrite idiom safe for decode caches: flip RX->RW (bump), patch
    // the bytes while the page is not executable, flip RW->RX (bump again).
    if (((entry.prot | prot) & kProtExec) != 0 && entry.prot != prot) {
      touch_page_gen(entry);
    }
    entry.prot = prot;
  }
  return Status::ok();
}

bool AddressSpace::is_mapped(std::uint64_t addr) const noexcept {
  return pages_.count(page_floor(addr)) != 0;
}

std::optional<std::uint8_t> AddressSpace::prot_at(std::uint64_t addr) const noexcept {
  auto it = pages_.find(page_floor(addr));
  if (it == pages_.end()) return std::nullopt;
  return it->second.prot;
}

namespace {

// Copies `size` bytes starting at `addr`, page by page, requiring `need` in
// each page's protection. Exactly one of `out` / `in` is non-null.
template <typename PageMap>
std::optional<MemFault> copy_checked(PageMap& pages, std::uint64_t addr,
                                     std::uint8_t* out, const std::uint8_t* in,
                                     std::size_t size, std::uint8_t need,
                                     AccessKind kind,
                                     bool enforce_prot) noexcept {
  std::size_t done = 0;
  while (done < size) {
    const std::uint64_t current = addr + done;
    const std::uint64_t page_base = page_floor(current);
    auto it = pages.find(page_base);
    if (it == pages.end()) {
      return MemFault{current, kind, /*unmapped=*/true};
    }
    if (enforce_prot && (it->second.prot & need) != need) {
      return MemFault{current, kind, /*unmapped=*/false};
    }
    const std::size_t offset = current - page_base;
    const std::size_t chunk = std::min<std::size_t>(size - done, kPageSize - offset);
    if (out != nullptr) {
      std::memcpy(out + done, it->second.bytes.data() + offset, chunk);
    } else {
      std::memcpy(const_cast<std::uint8_t*>(it->second.bytes.data()) + offset,
                  in + done, chunk);
    }
    done += chunk;
  }
  return std::nullopt;
}

}  // namespace

std::optional<MemFault> AddressSpace::read(std::uint64_t addr,
                                           std::span<std::uint8_t> out) const noexcept {
  auto fault = copy_checked(pages_, addr, out.data(), nullptr, out.size(),
                            kProtRead, AccessKind::kRead, /*enforce_prot=*/true);
  if (fault) ++stats_.faults;
  return fault;
}

std::optional<MemFault> AddressSpace::write(std::uint64_t addr,
                                            std::span<const std::uint8_t> data) noexcept {
  touch_exec_range(addr, data.size());
  auto fault = copy_checked(pages_, addr, nullptr, data.data(), data.size(),
                            kProtWrite, AccessKind::kWrite, /*enforce_prot=*/true);
  if (fault) ++stats_.faults;
  return fault;
}

std::optional<MemFault> AddressSpace::fetch(std::uint64_t addr,
                                            std::span<std::uint8_t> out) const noexcept {
  ++stats_.fetches;
  auto fault = copy_checked(pages_, addr, out.data(), nullptr, out.size(),
                            kProtExec, AccessKind::kFetch, /*enforce_prot=*/true);
  if (fault) ++stats_.faults;
  return fault;
}

std::size_t AddressSpace::fetch_window(std::uint64_t addr,
                                       std::span<std::uint8_t> out,
                                       MemFault* fault) const noexcept {
  ++stats_.fetches;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t current = addr + done;
    const std::uint64_t page_base = page_floor(current);
    const Page* page = page_at(page_base);
    if (page == nullptr || (page->prot & kProtExec) == 0) {
      if (done == 0) {
        // The first byte itself is unfetchable: an architectural fault.
        ++stats_.faults;
        if (fault != nullptr) {
          *fault = MemFault{current, AccessKind::kFetch,
                            /*unmapped=*/page == nullptr};
        }
      }
      // A short window at an executability boundary is benign: the decoder
      // sees exactly the bytes that exist, and raises SIGILL itself if an
      // instruction is truncated by the boundary.
      return done;
    }
    const std::size_t offset = current - page_base;
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, kPageSize - offset);
    std::memcpy(out.data() + done, page->bytes.data() + offset, chunk);
    done += chunk;
  }
  return done;
}

Result<std::uint64_t> AddressSpace::read_u64(std::uint64_t addr) const {
  std::uint8_t buffer[8];
  if (auto fault = read(addr, buffer)) {
    return make_error(StatusCode::kOutOfRange, fault->to_string());
  }
  std::uint64_t value = 0;
  std::memcpy(&value, buffer, sizeof(value));
  return value;
}

Result<std::uint8_t> AddressSpace::read_u8(std::uint64_t addr) const {
  std::uint8_t value = 0;
  if (auto fault = read(addr, {&value, 1})) {
    return make_error(StatusCode::kOutOfRange, fault->to_string());
  }
  return value;
}

Status AddressSpace::write_u64(std::uint64_t addr, std::uint64_t value) {
  std::uint8_t buffer[8];
  std::memcpy(buffer, &value, sizeof(value));
  if (auto fault = write(addr, buffer)) {
    return make_error(StatusCode::kOutOfRange, fault->to_string());
  }
  return Status::ok();
}

Status AddressSpace::write_u8(std::uint64_t addr, std::uint8_t value) {
  if (auto fault = write(addr, {&value, 1})) {
    return make_error(StatusCode::kOutOfRange, fault->to_string());
  }
  return Status::ok();
}

Status AddressSpace::read_force(std::uint64_t addr,
                                std::span<std::uint8_t> out) const {
  auto fault = copy_checked(pages_, addr, out.data(), nullptr, out.size(),
                            kProtNone, AccessKind::kRead, /*enforce_prot=*/false);
  if (fault) {
    return make_error(StatusCode::kOutOfRange, fault->to_string());
  }
  return Status::ok();
}

Status AddressSpace::write_force(std::uint64_t addr,
                                 std::span<const std::uint8_t> data) {
  touch_exec_range(addr, data.size());
  auto fault = copy_checked(pages_, addr, nullptr, data.data(), data.size(),
                            kProtNone, AccessKind::kWrite, /*enforce_prot=*/false);
  if (fault) {
    return make_error(StatusCode::kOutOfRange, fault->to_string());
  }
  return Status::ok();
}

}  // namespace lzp::mem
