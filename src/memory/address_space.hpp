// Simulated virtual address space.
//
// Models the pieces of Linux virtual memory that syscall interposition by
// binary rewriting depends on:
//   * page-granular mappings with R/W/X permissions (lazypoline flips a code
//     page to RW to rewrite a syscall instruction, then restores X),
//   * mapping *at virtual address 0* (the zpoline trampoline), gated by an
//     mmap_min_addr policy just like the real kernel,
//   * fork-style deep copies and CLONE_VM-style sharing.
//
// All accesses are bounds- and permission-checked; a failed check returns a
// MemFault that the kernel turns into the appropriate signal (SIGSEGV).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/status.hpp"

namespace lzp::mem {

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

[[nodiscard]] constexpr std::uint64_t page_floor(std::uint64_t addr) noexcept {
  return addr & ~kPageMask;
}
[[nodiscard]] constexpr std::uint64_t page_ceil(std::uint64_t addr) noexcept {
  return (addr + kPageMask) & ~kPageMask;
}

// Page protection bits, mirroring PROT_READ/WRITE/EXEC.
enum Prot : std::uint8_t {
  kProtNone = 0,
  kProtRead = 1 << 0,
  kProtWrite = 1 << 1,
  kProtExec = 1 << 2,
};

[[nodiscard]] std::string prot_to_string(std::uint8_t prot);

// The kind of access being attempted, for fault reporting.
enum class AccessKind : std::uint8_t { kRead, kWrite, kFetch };

[[nodiscard]] constexpr std::string_view to_string(AccessKind kind) noexcept {
  switch (kind) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kFetch: return "fetch";
  }
  return "?";
}

struct MemFault {
  std::uint64_t address = 0;
  AccessKind kind = AccessKind::kRead;
  bool unmapped = false;  // true: no mapping at all; false: permission denied
  [[nodiscard]] std::string to_string() const;
};

// A single mapped page: 4 KiB of backing bytes plus its protection.
//
// `gen` is the page's code generation: it changes whenever the page's
// contents or executability may have changed in a way that invalidates a
// cached decode of its bytes (writes while executable, and any mprotect
// touching the exec bit in either direction — the latter covers the
// rewrite idiom of flipping a page RW, patching it, and flipping it back).
// Generations are allocated from the address space's global code-generation
// counter, so they are monotone across unmap/remap of the same address and
// an old cached generation can never collide with a fresh page.
struct Page {
  std::uint8_t prot = kProtNone;
  std::uint64_t gen = 0;
  std::vector<std::uint8_t> bytes;  // always kPageSize once allocated
};

// Statistics the tests and benches can assert on (e.g. lazypoline's rewrite
// path must flip a page to RW exactly once per discovered syscall site).
// `faults` counts *architectural* faults only — accesses that returned a
// MemFault to the caller. Speculative shortfall while completing a fetch
// window across a page boundary is not a fault and is not counted.
struct AddressSpaceStats {
  std::uint64_t mmap_calls = 0;
  std::uint64_t munmap_calls = 0;
  std::uint64_t mprotect_calls = 0;
  std::uint64_t faults = 0;
  std::uint64_t fetches = 0;            // fetch() + fetch_window() calls
  std::uint64_t exec_invalidations = 0; // per-page code-generation bumps
};

class AddressSpace {
 public:
  AddressSpace() = default;

  // Deep copy (fork). Sharing (CLONE_VM) is expressed by sharing the
  // std::shared_ptr<AddressSpace> itself at the task layer.
  [[nodiscard]] std::shared_ptr<AddressSpace> clone() const;

  // --- mapping management -------------------------------------------------
  //
  // map(): reserve [addr, addr+length) (page-rounded). If `fixed` is false
  // and the range is occupied, a free range at or above `addr` is chosen.
  // Returns the chosen base address. Fails for fixed mappings that overlap
  // existing ones (the simulator is stricter than MAP_FIXED to catch bugs).
  Result<std::uint64_t> map(std::uint64_t addr, std::uint64_t length,
                            std::uint8_t prot, bool fixed);
  Status unmap(std::uint64_t addr, std::uint64_t length);
  Status protect(std::uint64_t addr, std::uint64_t length, std::uint8_t prot);

  [[nodiscard]] bool is_mapped(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::optional<std::uint8_t> prot_at(std::uint64_t addr) const noexcept;

  // --- checked access -----------------------------------------------------
  std::optional<MemFault> read(std::uint64_t addr,
                               std::span<std::uint8_t> out) const noexcept;
  std::optional<MemFault> write(std::uint64_t addr,
                                std::span<const std::uint8_t> data) noexcept;
  // Instruction fetch: requires kProtExec.
  std::optional<MemFault> fetch(std::uint64_t addr,
                                std::span<std::uint8_t> out) const noexcept;

  // Fetches up to out.size() executable bytes at `addr` with one page-span
  // copy per page touched (at most two for an instruction window), stopping
  // early at the first unmapped or non-executable byte. Returns the number
  // of bytes fetched. A zero return is an architectural fetch fault
  // (recorded in stats().faults, reported via *fault when non-null); a
  // short-but-nonzero return is the normal shape of a window ending at an
  // executability boundary and does NOT count as a fault.
  std::size_t fetch_window(std::uint64_t addr, std::span<std::uint8_t> out,
                           MemFault* fault = nullptr) const noexcept;

  // Convenience typed accessors (little-endian, like x86-64).
  Result<std::uint64_t> read_u64(std::uint64_t addr) const;
  Result<std::uint8_t> read_u8(std::uint64_t addr) const;
  Status write_u64(std::uint64_t addr, std::uint64_t value);
  Status write_u8(std::uint64_t addr, std::uint8_t value);

  // --- privileged access (kernel / host runtime) --------------------------
  // The kernel and host-side interposer runtime bypass protections, exactly
  // like kernel copy_to_user after access_ok, or a debugger via ptrace.
  Status read_force(std::uint64_t addr, std::span<std::uint8_t> out) const;
  Status write_force(std::uint64_t addr, std::span<const std::uint8_t> data);

  [[nodiscard]] const AddressSpaceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t mapped_page_count() const noexcept { return pages_.size(); }

  // --- decode-cache / D-TLB support ----------------------------------------
  //
  // Raw page view for the CPU's decode cache, fetch TLB, and data TLB: the
  // page at `page_base` (which must be page-aligned), or nullptr if unmapped.
  // The returned pointer stays valid until layout_gen() changes; callers must
  // re-check prot and gen through it on every use.
  [[nodiscard]] const Page* page_at(std::uint64_t page_base) const noexcept;
  // Mutable variant for the data-side TLB's write path. The same validity
  // rules apply; writers that can touch executable bytes must NOT use this
  // (they would bypass the code-generation bump) — the D-TLB refuses to
  // fast-path writes to pages with the exec bit set for exactly that reason.
  [[nodiscard]] Page* page_at_mut(std::uint64_t page_base) noexcept;

  // Monotone counter bumped whenever any mutation may invalidate a cached
  // decode of executable bytes anywhere in this address space. Per-page
  // `Page::gen` values are allocated from it. Atomic so a CLONE_VM sibling
  // on another simulated CPU observes the bump and can shoot down its own
  // decode/block/data-TLB state; relaxed ordering suffices because readers
  // re-validate through the live Page before trusting any cached bytes.
  [[nodiscard]] std::uint64_t code_gen() const noexcept {
    return code_gen_.load(std::memory_order_relaxed);
  }
  // Monotone counter bumped by map()/unmap(): raw Page pointers obtained
  // while it was stable remain valid while it stays unchanged.
  [[nodiscard]] std::uint64_t layout_gen() const noexcept {
    return layout_gen_.load(std::memory_order_relaxed);
  }
  // Process-global unique id of this address space instance. clone() and a
  // fresh construction both produce a new id, so a decode cache keyed by it
  // can never leak entries across fork or execve.
  [[nodiscard]] std::uint64_t asid() const noexcept { return asid_; }

  // Lowest address considered for non-fixed placement.
  static constexpr std::uint64_t kDefaultMapBase = 0x0000'7000'0000'0000ULL;

 private:
  // Bumps the code generation of every mapped executable page intersecting
  // [addr, addr+size) — called before contents change under that range.
  void touch_exec_range(std::uint64_t addr, std::size_t size) noexcept;
  void touch_page_gen(Page& page) noexcept;

  static std::uint64_t next_asid() noexcept;

  [[nodiscard]] std::uint64_t bump_code_gen() noexcept {
    return code_gen_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void bump_layout_gen() noexcept {
    layout_gen_.fetch_add(1, std::memory_order_relaxed);
  }

  // Keyed by page base address.
  std::map<std::uint64_t, Page> pages_;
  std::atomic<std::uint64_t> code_gen_{0};
  std::atomic<std::uint64_t> layout_gen_{0};
  std::uint64_t asid_ = next_asid();
  mutable AddressSpaceStats stats_;
};

}  // namespace lzp::mem
