// Simulated virtual address space.
//
// Models the pieces of Linux virtual memory that syscall interposition by
// binary rewriting depends on:
//   * page-granular mappings with R/W/X permissions (lazypoline flips a code
//     page to RW to rewrite a syscall instruction, then restores X),
//   * mapping *at virtual address 0* (the zpoline trampoline), gated by an
//     mmap_min_addr policy just like the real kernel,
//   * fork-style deep copies and CLONE_VM-style sharing.
//
// All accesses are bounds- and permission-checked; a failed check returns a
// MemFault that the kernel turns into the appropriate signal (SIGSEGV).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/status.hpp"

namespace lzp::mem {

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr std::uint64_t kPageMask = kPageSize - 1;

[[nodiscard]] constexpr std::uint64_t page_floor(std::uint64_t addr) noexcept {
  return addr & ~kPageMask;
}
[[nodiscard]] constexpr std::uint64_t page_ceil(std::uint64_t addr) noexcept {
  return (addr + kPageMask) & ~kPageMask;
}

// Page protection bits, mirroring PROT_READ/WRITE/EXEC.
enum Prot : std::uint8_t {
  kProtNone = 0,
  kProtRead = 1 << 0,
  kProtWrite = 1 << 1,
  kProtExec = 1 << 2,
};

[[nodiscard]] std::string prot_to_string(std::uint8_t prot);

// The kind of access being attempted, for fault reporting.
enum class AccessKind : std::uint8_t { kRead, kWrite, kFetch };

[[nodiscard]] constexpr std::string_view to_string(AccessKind kind) noexcept {
  switch (kind) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kFetch: return "fetch";
  }
  return "?";
}

struct MemFault {
  std::uint64_t address = 0;
  AccessKind kind = AccessKind::kRead;
  bool unmapped = false;  // true: no mapping at all; false: permission denied
  [[nodiscard]] std::string to_string() const;
};

// A single mapped page: 4 KiB of backing bytes plus its protection.
struct Page {
  std::uint8_t prot = kProtNone;
  std::vector<std::uint8_t> bytes;  // always kPageSize once allocated
};

// Statistics the tests and benches can assert on (e.g. lazypoline's rewrite
// path must flip a page to RW exactly once per discovered syscall site).
struct AddressSpaceStats {
  std::uint64_t mmap_calls = 0;
  std::uint64_t munmap_calls = 0;
  std::uint64_t mprotect_calls = 0;
  std::uint64_t faults = 0;
};

class AddressSpace {
 public:
  AddressSpace() = default;

  // Deep copy (fork). Sharing (CLONE_VM) is expressed by sharing the
  // std::shared_ptr<AddressSpace> itself at the task layer.
  [[nodiscard]] std::shared_ptr<AddressSpace> clone() const;

  // --- mapping management -------------------------------------------------
  //
  // map(): reserve [addr, addr+length) (page-rounded). If `fixed` is false
  // and the range is occupied, a free range at or above `addr` is chosen.
  // Returns the chosen base address. Fails for fixed mappings that overlap
  // existing ones (the simulator is stricter than MAP_FIXED to catch bugs).
  Result<std::uint64_t> map(std::uint64_t addr, std::uint64_t length,
                            std::uint8_t prot, bool fixed);
  Status unmap(std::uint64_t addr, std::uint64_t length);
  Status protect(std::uint64_t addr, std::uint64_t length, std::uint8_t prot);

  [[nodiscard]] bool is_mapped(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::optional<std::uint8_t> prot_at(std::uint64_t addr) const noexcept;

  // --- checked access -----------------------------------------------------
  std::optional<MemFault> read(std::uint64_t addr,
                               std::span<std::uint8_t> out) const noexcept;
  std::optional<MemFault> write(std::uint64_t addr,
                                std::span<const std::uint8_t> data) noexcept;
  // Instruction fetch: requires kProtExec.
  std::optional<MemFault> fetch(std::uint64_t addr,
                                std::span<std::uint8_t> out) const noexcept;

  // Convenience typed accessors (little-endian, like x86-64).
  Result<std::uint64_t> read_u64(std::uint64_t addr) const;
  Result<std::uint8_t> read_u8(std::uint64_t addr) const;
  Status write_u64(std::uint64_t addr, std::uint64_t value);
  Status write_u8(std::uint64_t addr, std::uint8_t value);

  // --- privileged access (kernel / host runtime) --------------------------
  // The kernel and host-side interposer runtime bypass protections, exactly
  // like kernel copy_to_user after access_ok, or a debugger via ptrace.
  Status read_force(std::uint64_t addr, std::span<std::uint8_t> out) const;
  Status write_force(std::uint64_t addr, std::span<const std::uint8_t> data);

  [[nodiscard]] const AddressSpaceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t mapped_page_count() const noexcept { return pages_.size(); }

  // Lowest address considered for non-fixed placement.
  static constexpr std::uint64_t kDefaultMapBase = 0x0000'7000'0000'0000ULL;

 private:
  // Keyed by page base address.
  std::map<std::uint64_t, Page> pages_;
  mutable AddressSpaceStats stats_;
};

}  // namespace lzp::mem
