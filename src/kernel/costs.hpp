// The calibrated cycle-cost model.
//
// Every kernel-side operation charges a deterministic number of "cycles" to
// the task that caused it. The constants are calibrated so the relative
// overheads of the interposition mechanisms land where the paper's Table II
// measured them on real hardware (see DESIGN.md §4):
//
//   raw syscall round trip (non-existent nr)   600 cycles  (1.00x)
//   + SUD enabled, selector=ALLOW              852         (1.42x)
//   SUD interception (SIGSYS + handler + sigreturn)        (~20.8x)
//   signal delivery / sigreturn are the dominant terms.
//
// Absolute values are not claims about any CPU; only the ratios matter.
#pragma once

#include <cstdint>

namespace lzp::kern {

struct CostModel {
  // --- plain instruction execution ---------------------------------------
  std::uint64_t insn = 1;               // every retired user instruction
  // Single-byte NOPs retire several-per-cycle on superscalar cores and are
  // eliminated at rename; the zpoline sled walk is nearly free in practice,
  // so NOPs charge nothing (the trampoline_glue term covers the real cost).
  std::uint64_t insn_nop = 0;
  std::uint64_t host_glue = 6;          // invoking a host-bound function

  // --- syscall path (Figure 1) --------------------------------------------
  std::uint64_t kernel_entry = 200;     // SYSCALL microcode + entry asm
  std::uint64_t kernel_exit = 200;      // sysret path
  std::uint64_t dispatch_nosys = 200;   // table lookup, -ENOSYS return
  std::uint64_t dispatch_base = 260;    // table lookup + minimal handler

  // Extra work when *any* interception interface is armed: the entry path
  // must check for ptrace/seccomp/SUD even for non-intercepted syscalls.
  std::uint64_t intercept_check = 60;
  // SUD: read the user-space selector byte (uaccess + fault setup).
  std::uint64_t sud_selector_read = 192;
  // SUD: allowlisted-range comparison only.
  std::uint64_t sud_range_check = 24;

  // --- seccomp -------------------------------------------------------------
  std::uint64_t seccomp_insn = 12;      // per executed cBPF instruction
  std::uint64_t seccomp_setup = 40;     // seccomp_data marshalling

  // --- signals -------------------------------------------------------------
  std::uint64_t signal_deliver = 6200;  // frame setup incl. xstate save
  std::uint64_t sigreturn = 4600;       // frame restore incl. xstate
  std::uint64_t sigaction = 180;        // handler (un)registration

  // --- ptrace --------------------------------------------------------------
  std::uint64_t context_switch = 5200;  // tracee->tracer or back
  std::uint64_t ptrace_request = 480;   // one PTRACE_* request by the tracer
  std::uint64_t ptrace_requests_per_stop = 3;

  // --- user-visible "hardware" costs charged via host runtime --------------
  std::uint64_t xsave = 216;            // save extended state to memory
  std::uint64_t xrstor = 216;           // restore extended state
  std::uint64_t trampoline_glue = 80;   // zpoline GPR spill/fill + indirection
  std::uint64_t gs_selector_flip = 2;   // one %gs-relative selector byte store

  // --- record mode (src/replay Recorder) -----------------------------------
  // Framing + appending one event to the in-memory trace log.
  std::uint64_t record_event = 90;
  // Copying a captured out-buffer into the trace, per 8 bytes.
  std::uint64_t record_capture_qword = 1;

  // --- memory & IO work ----------------------------------------------------
  std::uint64_t mmap_page = 120;        // per page mapped/unmapped/protected
  std::uint64_t copy_per_byte_num = 5;  // kernel copy + TCP checksum/segmenting:
  std::uint64_t copy_per_byte_den = 4;  //   num/den cycles per byte
  std::uint64_t net_per_request = 1200; // TCP/IP + loopback per request
  std::uint64_t fork_base = 9000;
  std::uint64_t execve_base = 24000;

  [[nodiscard]] std::uint64_t copy_cost(std::uint64_t bytes) const noexcept {
    return bytes * copy_per_byte_num / copy_per_byte_den;
  }

  // Round-trip cost of a syscall that reaches the dispatcher and finds no
  // handler (the microbenchmark's non-existent syscall 500).
  [[nodiscard]] std::uint64_t raw_nosys_roundtrip() const noexcept {
    return kernel_entry + dispatch_nosys + kernel_exit;
  }
};

}  // namespace lzp::kern
