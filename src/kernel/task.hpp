// Tasks (threads) and processes (thread groups), mirroring the Linux split
// that matters to SUD: SUD state is *per task*, and is reset on clone, fork,
// and execve — which is why lazypoline must re-arm it in every new task
// (paper §IV-B "Multiprocessing and Multithreading").
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "bpf/bpf.hpp"
#include "cpu/block_cache.hpp"
#include "cpu/context.hpp"
#include "cpu/data_tlb.hpp"
#include "cpu/decode_cache.hpp"
#include "cpu/trace_cache.hpp"
#include "kernel/profile_sink.hpp"
#include "kernel/signals.hpp"
#include "memory/address_space.hpp"

namespace lzp::kern {

using Tid = std::uint32_t;
using Pid = std::uint32_t;

enum class TaskState : std::uint8_t { kRunnable, kExited };

// Per-task Syscall User Dispatch configuration (prctl
// PR_SET_SYSCALL_USER_DISPATCH).
struct SudState {
  bool enabled = false;
  std::uint64_t selector_addr = 0;  // user byte: kSudAllow / kSudBlock
  std::uint64_t allow_start = 0;    // syscalls from this range never dispatch
  std::uint64_t allow_len = 0;

  [[nodiscard]] bool in_allowed_range(std::uint64_t addr) const noexcept {
    return addr >= allow_start && addr - allow_start < allow_len;
  }
};

// Open file description table entry.
struct FdEntry {
  enum class Kind : std::uint8_t { kFile, kListener, kConn, kEpoll, kSpecial };
  Kind kind = Kind::kFile;
  std::string path;          // kFile
  std::uint64_t offset = 0;  // kFile read/seek position
  int net_id = -1;           // kListener / kConn
  int epoll_watch = -1;      // kEpoll: listener net id being watched
};

// Shared state of a thread group. Threads share this; fork deep-copies it.
struct Process {
  Pid pid = 0;
  std::array<SigAction, kNumSignals> sigactions{};
  std::map<int, FdEntry> fds;
  std::map<int, int> net_to_fd;  // reverse map for epoll event -> fd
  int next_fd = 3;
  bool exited = false;
  int exit_code = 0;
  std::string program_name;
  std::string console;  // bytes written to fd 1/2

  [[nodiscard]] std::shared_ptr<Process> fork_copy(Pid new_pid) const {
    auto copy = std::make_shared<Process>(*this);
    copy->pid = new_pid;
    return copy;
  }

  int install_fd(FdEntry entry) {
    const int fd = next_fd++;
    fds[fd] = std::move(entry);
    return fd;
  }

  // Installs at a specific fd (harness convention, e.g. the listening
  // socket at fd 3) without letting later install_fd() calls collide.
  void install_fd_at(int fd, FdEntry entry) {
    fds[fd] = std::move(entry);
    if (fd >= next_fd) next_fd = fd + 1;
  }
};

struct Task {
  Tid tid = 0;
  // Atomic because SMP-mode kernel paths on one simulated CPU read another
  // CPU's task state (thread-group exit scans, liveness checks). Writes stay
  // CPU-local under gang placement; the atomic makes the cross-CPU reads
  // well-defined. std::atomic's implicit conversions keep call sites plain.
  std::atomic<TaskState> state{TaskState::kRunnable};
  std::shared_ptr<Process> process;
  std::shared_ptr<mem::AddressSpace> mem;
  cpu::CpuContext ctx;

  // Per-task decoded-instruction cache for the step() hot loop. Per-task —
  // not per-address-space — so CLONE_VM siblings each keep their own cache
  // over the shared space (invalidated through the shared page generations
  // when a sibling rewrites code), fork children start cold against their
  // deep-copied space, and execve's fresh space flushes via its new asid.
  cpu::DecodeCache dcache;

  // Superblock cache for the batched execution fast path, and the data-side
  // TLB for its loads/stores. Per-task for the same reasons as dcache: the
  // block cache invalidates through shared page generations, and the D-TLB
  // through layout generations + asid (see cpu/block_cache.hpp,
  // cpu/data_tlb.hpp).
  cpu::BlockCache bcache;
  cpu::DataTlb dtlb;

  // Trace cache for the chained-superblock engine (cpu/trace_cache.hpp).
  // Per-task like bcache; invalidates per embedded page through the shared
  // page generations, flushes via asid on execve/fork.
  cpu::TraceCache tcache;

  SudState sud;
  // seccomp filters attached to this task (newest last, all run, most
  // restrictive action wins — matching the kernel). Programs are shared
  // copy-on-attach across clone/fork.
  std::vector<std::shared_ptr<const std::vector<bpf::Insn>>> seccomp;

  // Signal machinery.
  std::uint64_t sigmask = 0;
  AltStack altstack;
  std::vector<SignalFrame> signal_frames;  // innermost last
  std::vector<SigInfo> pending_signals;

  // ptrace: host-side tracer attached (see Machine::attach_tracer).
  bool ptraced = false;

  // set_tid_address bookkeeping (glibc pthread init uses it).
  std::uint64_t clear_child_tid = 0;
  std::uint64_t robust_list_head = 0;

  // --- SMP substrate (kernel/smp.hpp) ---------------------------------------
  // Simulated CPU this task is placed on; 0 outside run_smp.
  unsigned cpu = 0;
  // Per-task entropy stream used for sys_getrandom while run_smp is active,
  // so concurrent draws never contend on (or nondeterministically interleave
  // through) the machine-global stream. Seeded from the SMP seed and the tid.
  Xoshiro256 smp_rng{0};
  // Per-sender sequence number for cross-CPU signal sends, giving the
  // barrier's mailbox drain a deterministic total order.
  std::uint64_t smp_sig_seq = 0;
  // Generation epochs this CPU has observed for the task's address space;
  // the barrier's shootdown pass compares them against the live counters and
  // flushes the task's TLBs when a remote CPU moved them (IPI model).
  std::uint64_t smp_seen_code_gen = 0;
  std::uint64_t smp_seen_layout_gen = 0;

  // --- cycle attribution (kernel/profile_sink.hpp) --------------------------
  // Class every Machine::charge() against this task is attributed to, plus a
  // qualifier (syscall nr / host address / sentinel — see kDetail*). Scoped
  // via ScopedCycleClass; per task so SMP lanes never share attribution
  // state. Pure observability: no kernel path reads these.
  CycleClass cycle_class = CycleClass::kGuest;
  std::uint64_t cycle_detail = kDetailNone;
  // Bumped by every attribution change (ScopedCycleClass enter/exit), so
  // charge() can detect "same attribution as the previous charge" with one
  // integer compare instead of comparing class and detail.
  std::uint64_t attr_epoch = 0;
  // Profile-mirror coalescing (Machine::charge): cycles charged under one
  // (class, detail) attribution accumulate here and reach the sink as a
  // single on_cycles call when the attribution changes or the run loop
  // exits. Per task, so SMP lanes — which only ever charge their own tasks —
  // never share mirror state.
  CycleClass pending_cls = CycleClass::kGuest;
  std::uint64_t pending_detail = kDetailNone;
  std::uint64_t pending_epoch = ~0ULL;  // attr_epoch the pending run was under
  std::uint64_t pending_cycles = 0;
  // Guest %rbp at the run's first charge: the frame-walk context the cycles
  // were charged under. A non-guest run's coalesced on_cycles call fires at
  // the first charge of the *next* attribution — possibly a guest
  // instruction later, by which time the frame chain may already be torn
  // down — so sinks fold non-guest runs under this snapshot. (Plain-guest
  // runs flush before any register moves; their live ctx is the context.)
  std::uint64_t pending_rbp = 0;
  // Step-engine site-probe batching (see step_once): cycles accumulate here
  // and every Nth retired instruction carries the batch to on_guest_insn,
  // N = the sink's step_sample_period().
  std::uint64_t insn_probe_cycles = 0;
  std::uint64_t insn_probe_count = 0;

  // Accounting.
  std::uint64_t cycles = 0;
  std::uint64_t insns_retired = 0;
  std::uint64_t syscalls_entered = 0;   // entries into the kernel syscall path
  std::uint64_t syscalls_dispatched = 0;
  std::uint64_t sud_sigsys_count = 0;   // SUD interceptions delivered
  int exit_code = 0;

  [[nodiscard]] bool runnable() const noexcept {
    return state == TaskState::kRunnable;
  }
};

// RAII attribution scope: charges against `task` between construction and
// destruction are attributed to `cls` (qualified by `detail`). Scopes nest —
// e.g. a host interposer handler (kInterposer) performing a syscall enters a
// kKernel scope, and charges inside it correctly belong to the kernel.
class ScopedCycleClass {
 public:
  ScopedCycleClass(Task& task, CycleClass cls,
                   std::uint64_t detail = kDetailNone) noexcept
      : task_(task),
        prev_class_(task.cycle_class),
        prev_detail_(task.cycle_detail) {
    task.cycle_class = cls;
    task.cycle_detail = detail;
    ++task.attr_epoch;
  }
  ~ScopedCycleClass() {
    task_.cycle_class = prev_class_;
    task_.cycle_detail = prev_detail_;
    ++task_.attr_epoch;
  }
  ScopedCycleClass(const ScopedCycleClass&) = delete;
  ScopedCycleClass& operator=(const ScopedCycleClass&) = delete;

 private:
  Task& task_;
  CycleClass prev_class_;
  std::uint64_t prev_detail_;
};

}  // namespace lzp::kern
