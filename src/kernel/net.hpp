// Virtual loopback networking with a built-in closed-loop load generator.
//
// Models the Figure-5 measurement setup: a wrk-style client with N
// keepalive connections continuously requesting the same static resource,
// and one or more server workers accepting/serving those connections over
// "localhost" (so the workload is maximally syscall-intensive and never
// throttled by link bandwidth). The client has zero think time: whenever a
// response completes, the next request on that connection is immediately
// pending, until the per-run request budget is exhausted.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "base/status.hpp"

namespace lzp::kern {

struct ClientWorkload {
  std::uint32_t connections = 36;     // wrk -t36 over keepalive conns
  std::uint64_t total_requests = 0;   // run ends when all are served
  std::uint64_t request_bytes = 120;  // HTTP GET + headers
  std::uint64_t response_bytes = 0;   // headers + body the server will send
};

class Net {
 public:
  enum class EventKind : std::uint8_t {
    kNone,        // nothing ready right now (never happens with zero think time)
    kAcceptable,  // a new connection is waiting on the listener
    kReadable,    // a connection has a request pending
    kFinished,    // the workload is complete and all connections are closed
  };
  struct Event {
    EventKind kind = EventKind::kNone;
    int conn_id = -1;
  };

  // Creates a listening socket with an attached client workload.
  int create_listener(ClientWorkload workload);

  Event poll(int listener_id);
  // Multi-worker poll: report readable only for connections in `owned`
  // (the calling process's accepted connections); returns kNone when other
  // workers' connections are still live but nothing is actionable here.
  Event poll_for(int listener_id, const std::set<int>& owned);
  // Accepts one pending connection; kEAGAIN-style error when none pending.
  Result<int> accept(int listener_id);
  // Returns request bytes available (0 = orderly close: budget exhausted).
  Result<std::uint64_t> recv(int conn_id, std::uint64_t buffer_size);
  // Sends response bytes; the client acknowledges a completed request once
  // the cumulative bytes reach the workload's response size.
  Result<std::uint64_t> send(int conn_id, std::uint64_t bytes);
  Status close_conn(int conn_id);

  [[nodiscard]] std::uint64_t completed_requests(int listener_id) const;
  [[nodiscard]] bool workload_done(int listener_id) const;

 private:
  enum class ConnState : std::uint8_t {
    kRequestReady,  // client sent a request the server has not recv'd yet
    kResponding,    // server recv'd; response partially sent
    kDrained,       // request budget exhausted; next recv returns 0
  };
  struct Conn {
    int listener = -1;
    ConnState state = ConnState::kRequestReady;
    std::uint64_t requests_left = 0;
    std::uint64_t response_remaining = 0;
    bool closed = false;
  };
  struct Listener {
    ClientWorkload workload;
    std::deque<std::uint64_t> pending_conn_budgets;  // conns not yet accepted
    std::vector<int> conns;
    std::uint64_t completed = 0;
  };

  // One lock over both tables (SMP): each public method is a single critical
  // section and no method calls another, so the coarse lock cannot deadlock.
  // Leaf lock in the kernel order (DESIGN.md §10). Operations on *disjoint*
  // listeners are order-independent, which is what makes per-worker-listener
  // SMP benchmarks deterministic; sharing one listener across CPUs is safe
  // but its accept/recv interleaving follows host timing.
  mutable std::mutex mu_;
  std::map<int, Listener> listeners_;
  std::map<int, Conn> conns_;
  int next_id_ = 1;
};

}  // namespace lzp::kern
