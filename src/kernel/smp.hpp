// SMP substrate: multi-CPU execution of the simulated machine.
//
// Machine::run_smp() places tasks onto N simulated CPUs (seeded, reproducible
// placement) and executes each CPU's run queue on a host thread pool between
// deterministic barriers:
//
//   serial:   merge clone children, place them (gang groups stay together),
//             rebalance queues (deterministic work stealing), drain the
//             cross-CPU signal mailbox in sorted order, run the SMC/TLB
//             shootdown pass (generation epochs).
//   parallel: every CPU runs `rounds_per_barrier` round-robin passes over its
//             own queue, one `slice_insns` slice per runnable task per pass,
//             counting steps into a private lane.
//
// Determinism: with gang placement (default), tasks sharing an address space
// or a process land on the same CPU, so all sharing-dependent execution is
// sequential within one lane and the whole run is a pure function of
// (programs, seed, cpus). Cross-CPU interactions go through deterministic
// channels: the signal mailbox is drained in (target, sender, seq) order at
// barriers, tids/pids come from per-CPU ranges, and sys_getrandom draws from
// per-task streams. Kernel tables shared across CPUs (VFS, net) are
// internally locked; their results are order-independent for disjoint
// resources (per-worker listeners), which is what the fig5 SMP benchmark
// uses. Sharing one listener across CPUs stays memory-safe but its accept
// interleaving is host-timing dependent — see DESIGN.md §10.
//
// `gang_shared = false` lifts gang placement: CLONE_VM siblings may run
// truly concurrently on different CPUs. Soundness then comes from per-slice
// locking: a CPU holds the task's address-space lock, then its process lock
// (fixed order) for the whole slice — the "per-mm big lock" model. Execution
// remains memory-safe and TSan-clean, but the sibling interleaving is a real
// schedule race, so bit-determinism is only guaranteed per seed in gang mode.
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/task.hpp"

namespace lzp::kern {

struct SmpConfig {
  unsigned cpus = 1;
  std::uint64_t seed = 0;
  // Place tasks sharing an address space or a process on one CPU (see
  // header comment). Default on: deterministic and contention-free.
  bool gang_shared = true;
  // Steps per scheduling slice (the single-CPU scheduler's kSliceInsns).
  std::uint64_t slice_insns = 64;
  // Round-robin passes each CPU makes over its queue between barriers.
  // Higher amortizes barrier cost; lower tightens cross-CPU signal latency.
  unsigned rounds_per_barrier = 4;
};

struct CpuStats {
  std::uint64_t steps = 0;   // machine steps this CPU's lane executed
  std::uint64_t slices = 0;  // scheduling slices granted
  std::uint64_t tasks = 0;   // tasks resident at the final barrier
};

// One barrier round's scheduler snapshot, taken in the serial phase (so it
// is deterministic under gang placement). Per-CPU values are deltas for the
// parallel phase that just finished; queue depths are post-rebalance, i.e.
// what the *next* parallel phase starts with. The exporter turns these into
// Perfetto counter tracks and a per-round span timeline.
struct SmpBarrierSample {
  std::uint64_t round = 0;            // barrier index, 0-based
  std::uint64_t total_insns = 0;      // machine-wide insns at the barrier
  std::uint64_t total_cycles = 0;     // machine-wide cycles at the barrier
  std::uint64_t steals = 0;           // cumulative
  std::uint64_t shootdowns = 0;       // cumulative
  std::uint64_t mailbox_signals = 0;  // cumulative
  std::vector<std::uint64_t> cpu_steps;   // this round's steps per CPU
  std::vector<std::uint64_t> cpu_slices;  // this round's slices per CPU
  std::vector<std::uint64_t> run_queue;   // post-rebalance depth per CPU
};

struct SmpStats {
  std::uint64_t insns = 0;  // total_insns() at the end of the run
  bool all_exited = false;
  std::vector<CpuStats> cpus;
  std::uint64_t barriers = 0;
  std::uint64_t steals = 0;      // rebalance moves of a task (or gang group)
  std::uint64_t shootdowns = 0;  // cross-CPU generation-epoch TLB flushes
  std::uint64_t mailbox_signals = 0;  // cross-CPU signals drained at barriers
  // Every placement decision made during the run: (tid, cpu), in decision
  // order. The determinism suite compares this across runs.
  std::vector<std::pair<Tid, unsigned>> placement;
  // Per-barrier-round telemetry (capped at kMaxTimelineSamples rounds so a
  // long run cannot grow it unboundedly; the cap drops the tail, and
  // timeline_truncated records that it happened).
  static constexpr std::size_t kMaxTimelineSamples = 65536;
  std::vector<SmpBarrierSample> timeline;
  bool timeline_truncated = false;
};

}  // namespace lzp::kern
