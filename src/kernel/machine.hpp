// The Machine: simulated CPU execution + Linux-like kernel.
//
// Owns tasks, the VFS, the virtual network, host-function bindings (native
// C++ code reachable from simulated code — how interposer runtimes are
// modeled, mirroring real interposers whose handlers are native code inside
// the process), the syscall entry path of Figure 1 (ptrace -> seccomp ->
// SUD -> dispatch), signal delivery, and cycle accounting.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "base/status.hpp"
#include "isa/assemble.hpp"
#include "kernel/costs.hpp"
#include "kernel/net.hpp"
#include "kernel/profile_sink.hpp"
#include "kernel/smp.hpp"
#include "kernel/syscalls.hpp"
#include "kernel/task.hpp"
#include "kernel/trace_sink.hpp"
#include "kernel/vfs.hpp"

namespace lzp::kern {

class Machine;

// Execution context handed to host-bound functions. A host function is the
// simulation's stand-in for native runtime code (interposer entry points,
// signal handler wrappers): it runs with full access to the task but charges
// costs explicitly, because its work would be real instructions in reality.
struct HostFrame {
  Machine& machine;
  Task& task;
  cpu::CpuContext& ctx;

  // Performs a syscall exactly as if the host code executed a SYSCALL
  // instruction: the full kernel entry path runs, including ptrace, seccomp,
  // and SUD checks against `task` (the instruction pointer reported to
  // filters is the host binding's address). Returns the rax result. If SUD
  // intercepts it (selector == BLOCK), the process is killed with a
  // diagnostic: in reality this is unbounded SIGSYS recursion, and making it
  // fatal keeps interposer bugs loud (see MachineTest.RecursiveSudIsFatal).
  std::uint64_t syscall(std::uint64_t nr, std::array<std::uint64_t, 6> args = {});

  // Pop the 8-byte return address off the stack into rip (native RET).
  void ret();

  void charge(std::uint64_t cycles);
};

using HostFn = std::function<void(HostFrame&)>;

// Host-side ptrace tracer. The tracer itself is native code (like a real
// tracer process); the model charges the context switches and per-stop
// ptrace requests that dominate ptrace's cost (paper §II-A).
struct TracerHooks {
  std::function<void(Task&, cpu::CpuContext&)> on_syscall_entry;
  // Entry-stop suppression: returning true skips kernel-side execution and
  // forces *result into the tracee's rax — the tracer rewrote orig_rax to -1
  // and will materialize the result itself (rr's injection pattern). The
  // exit-stop hook does not run for a suppressed syscall.
  std::function<bool(Task&, cpu::CpuContext&, std::uint64_t nr,
                     const std::array<std::uint64_t, 6>& args,
                     std::uint64_t* result)>
      on_syscall_suppress;
  // `nr`/`args` are the dispatched syscall (real ptrace exposes them as
  // orig_rax + entry registers — the post-execution context is NOT a valid
  // source: rt_sigreturn and execve replace it wholesale). `result` is the
  // value about to be written back to the tracee's rax; the tracer may
  // rewrite it (PTRACE_SETREGS before resuming).
  std::function<void(Task&, cpu::CpuContext&, std::uint64_t nr,
                     const std::array<std::uint64_t, 6>& args,
                     std::uint64_t& result)>
      on_syscall_exit;
};

// Outcome classification for a finished run.
struct RunStats {
  std::uint64_t insns = 0;
  bool all_exited = false;
};

class Machine {
 public:
  explicit Machine(CostModel costs = {});

  CostModel& costs() noexcept { return costs_; }
  const CostModel& costs() const noexcept { return costs_; }
  Vfs& vfs() noexcept { return vfs_; }
  Net& net() noexcept { return net_; }

  // Linux vm.mmap_min_addr. zpoline requires this to be 0 so the trampoline
  // can occupy virtual address 0 (the paper's deployments set it via sysctl).
  std::uint64_t mmap_min_addr = 0x10000;

  // Decoded-instruction cache for the step() hot loop (see
  // cpu/decode_cache.hpp). On by default; benches flip it off to measure
  // the uncached fetch/decode path.
  bool decode_cache_enabled = true;
  // Decode-cache counters summed over every task (including exited ones).
  [[nodiscard]] cpu::DecodeCacheStats decode_cache_totals() const;

  // Superblock execution engine (cpu/block_cache.hpp): run_slice executes
  // cached straight-line decodes as batches — accounting hoisted to block
  // boundaries — whenever exactness permits, and falls back to step_once
  // when it does not: per-instruction observers, record/replay hooks,
  // ptrace, host code at rip, or a deliverable pending signal. On by
  // default; compiled out wholesale with -DLZP_BLOCK_EXEC=OFF (the flag
  // remains so toggling code builds either way).
  bool block_exec_enabled = true;
  // Block-cache / data-TLB counters summed over every task.
  [[nodiscard]] cpu::BlockCacheStats block_cache_totals() const;
  [[nodiscard]] cpu::DataTlbStats data_tlb_totals() const;

  // Trace execution engine (cpu/trace_cache.hpp): hot superblocks chain into
  // recorded traces that run_slice executes back to back — across direct
  // jumps, calls, returns, syscalls, and host calls — consulting the
  // dispatcher once per chain instead of once per block. A trace reaching a
  // rewritten syscall site runs trampoline entry, handler dispatch, and
  // return without leaving trace_step (the fused lazypoline fast path); any
  // slow-path condition side-exits back to the reference semantics. Layered
  // on the block engine: requires block_exec_enabled, and inherits every
  // can_batch_execute exactness gate. Compiled out wholesale with
  // -DLZP_TRACE_EXEC=OFF.
  bool trace_exec_enabled = true;
  // Trace-cache counters summed over every task.
  [[nodiscard]] cpu::TraceCacheStats trace_cache_totals() const;

  // --- host function registry ---------------------------------------------
  // `cls` is the cycle-attribution class charges take while the bound
  // function runs (kernel/profile_sink.hpp). Interposer runtimes use the
  // default; app harnesses modeling *application* compute as host code
  // (webserver work loop, jitcc compile) bind with CycleClass::kGuest.
  std::uint64_t bind_host(std::string name, HostFn fn,
                          CycleClass cls = CycleClass::kInterposer);
  [[nodiscard]] bool is_host_addr(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::string host_name(std::uint64_t addr) const;
  static constexpr std::uint64_t kHostRegionBase = 0xFFFF'8000'0000'0000ULL;
  // Index usable in a HOSTCALL instruction for a bound host address.
  [[nodiscard]] static constexpr std::uint32_t host_index(std::uint64_t addr) noexcept {
    return static_cast<std::uint32_t>((addr - kHostRegionBase) / 16);
  }

  // Fixed layout constants for loaded programs.
  static constexpr std::uint64_t kDataRegionBase = 0x0000'0000'0060'0000ULL;
  static constexpr std::uint64_t kDataRegionSize = 256 * 1024;
  static constexpr std::uint64_t kStackTop = 0x0000'7FFF'FFFF'F000ULL;
  static constexpr std::uint64_t kSliceInsns = 64;

  // --- process management ---------------------------------------------------
  // Creates a new process + main task running `program`. Applies the preload
  // hook (LD_PRELOAD model) before the first instruction.
  Result<Tid> load(const isa::Program& program);
  // LD_PRELOAD model: invoked for every load()/execve() image so an
  // interposer runtime can initialize inside the fresh process.
  using PreloadHook = std::function<void(Machine&, Task&, const isa::Program&)>;
  void set_preload(PreloadHook hook) { preload_ = std::move(hook); }

  Task* find_task(Tid tid);
  // Also searches tasks created by clone/fork that have not been scheduled
  // yet (interposer runtimes patch up children right after clone returns).
  Task* find_task_any(Tid tid);
  [[nodiscard]] std::vector<Tid> task_ids() const;
  [[nodiscard]] std::size_t live_task_count() const;

  // --- execution -------------------------------------------------------------
  // Round-robin over runnable tasks until all exit or the instruction budget
  // is exhausted.
  RunStats run(std::uint64_t max_total_insns = kDefaultInsnBudget);
  // Multi-CPU execution (kernel/smp.hpp, implemented in smp.cpp): places
  // tasks onto config.cpus simulated CPUs and runs their queues on a host
  // thread pool between deterministic barriers. config.cpus <= 1 delegates
  // to run() — bit-identical to the single-threaded engine by construction.
  // Replay (schedule hook / slice observers) and insn observers are
  // incompatible with batching across CPUs and must not be armed.
  SmpStats run_smp(const SmpConfig& config,
                   std::uint64_t max_total_steps = kDefaultInsnBudget);
  // True while run_smp's parallel phases may be executing: kernel paths use
  // it to route cross-CPU effects through deterministic channels (signal
  // mailbox, per-CPU tid ranges, per-task entropy).
  [[nodiscard]] bool smp_active() const noexcept { return smp_active_; }
  // Executes at most `max_insns` machine steps (see total_steps()) on one
  // task.
  void run_slice(Task& task, std::uint64_t max_insns);
  static constexpr std::uint64_t kDefaultInsnBudget = 500'000'000ULL;
  // Machine-global count of *retired* simulated instructions — always equal
  // to the sum of every task's insns_retired. Host-fn steps, faulting
  // execution attempts, and signal-kill steps do not advance it (they retire
  // nothing).
  [[nodiscard]] std::uint64_t total_insns() const noexcept { return total_insns_; }
  // Machine-global count of scheduling *steps*: every step_once iteration —
  // retired instruction, host-fn dispatch, fault attempt, or signal-kill —
  // advances it by one (the superblock path advances it by the number of
  // instructions a per-step run would have used, so the counter is identical
  // with the engine on or off). This is the time base scheduling slices and
  // signal-delivery points are recorded against: unlike total_insns() it
  // never stalls, so "step N" names a unique point even across work that
  // retires nothing.
  [[nodiscard]] std::uint64_t total_steps() const noexcept { return total_steps_; }

  // --- observers --------------------------------------------------------------
  // Every observer kind is a multicast list: add_* registers a callback and
  // returns a token; remove_* unregisters it. Multiple clients (replay's
  // Recorder, the trace subsystem, pintool, user code) compose freely —
  // callbacks fire in registration order.
  using ObserverId = std::uint64_t;  // 0 is never a valid id

  // Called for every retired *simulated* instruction (pintool attaches here).
  using InsnObserver =
      std::function<void(const Task&, const isa::Instruction&)>;
  ObserverId add_insn_observer(InsnObserver observer) {
    return insn_observers_.add(std::move(observer), &next_observer_id_);
  }
  void remove_insn_observer(ObserverId id) { insn_observers_.remove(id); }
  // Called for every syscall that reaches the dispatcher, with its origin.
  enum class SyscallOrigin : std::uint8_t { kSimCode, kHostCode };
  using SyscallObserver = std::function<void(const Task&, std::uint64_t nr,
                                             const std::array<std::uint64_t, 6>&,
                                             SyscallOrigin)>;
  ObserverId add_syscall_observer(SyscallObserver observer) {
    return syscall_observers_.add(std::move(observer), &next_observer_id_);
  }
  void remove_syscall_observer(ObserverId id) { syscall_observers_.remove(id); }

  // --- record/replay hooks (src/replay) ---------------------------------------
  // Called after every scheduling slice run() executes, with the number of
  // machine steps (total_steps_ delta) the slice consumed — the recorder's
  // view of the scheduler's decisions.
  using SliceObserver = std::function<void(const Task&, std::uint64_t steps)>;
  ObserverId add_slice_observer(SliceObserver observer) {
    return slice_observers_.add(std::move(observer), &next_observer_id_);
  }
  void remove_slice_observer(ObserverId id) { slice_observers_.remove(id); }
  // Replaces run()'s round-robin scheduler: run() repeatedly asks the hook
  // which task to run next and for how many steps, until it returns nullopt
  // (or the instruction budget is exhausted). Newly cloned tasks are merged
  // before every decision so the hook can schedule them immediately.
  // Deliberately single-slot: two schedulers cannot both be in charge.
  struct SchedSlice {
    Tid tid = 0;
    std::uint64_t max_steps = kSliceInsns;
  };
  using ScheduleHook = std::function<std::optional<SchedSlice>(Machine&)>;
  void set_schedule_hook(ScheduleHook hook) { schedule_hook_ = std::move(hook); }
  // Called at every signal delivery attempt against a runnable task, before
  // disposition is applied. `info.external` distinguishes signals queued via
  // post_signal() from ones the simulation generated itself.
  using SignalObserver = std::function<void(const Task&, const SigInfo&)>;
  ObserverId add_signal_observer(SignalObserver observer) {
    return signal_observers_.add(std::move(observer), &next_observer_id_);
  }
  void remove_signal_observer(ObserverId id) { signal_observers_.remove(id); }
  // Queues an asynchronous signal from outside the simulation (a timer, an
  // operator, an unmodeled process). Marked external so a recorder knows the
  // delivery point must be re-forced on replay rather than re-derived.
  Status post_signal(Tid tid, SigInfo info);

  // Sources of nondeterministic input a syscall can consume. Everything else
  // the kernel does is a pure function of task + machine state.
  enum class NondetSource : std::uint8_t { kRng, kTime, kNet };
  // Audit hook: called whenever a dispatched syscall consumes one of the
  // sources above. A recorder installs this to flag nondeterministic input
  // flowing into the simulation outside its capture window (satellite:
  // "flags uncaptured nondeterminism in record mode").
  using NondetObserver =
      std::function<void(const Task&, std::uint64_t nr, NondetSource)>;
  ObserverId add_nondet_observer(NondetObserver observer) {
    return nondet_observers_.add(std::move(observer), &next_observer_id_);
  }
  void remove_nondet_observer(ObserverId id) { nondet_observers_.remove(id); }

  // --- trace probe (kernel/trace_sink.hpp) -------------------------------------
  // The low-level observability sink the Machine and the interposer runtimes
  // report into. One sink at a time (the sink itself may fan out); not owned.
  // With LZP_TRACE_DISABLED the accessor is a constant nullptr and every
  // probe call site compiles away.
#ifdef LZP_TRACE_DISABLED
  static constexpr TraceSink* trace_sink() noexcept { return nullptr; }
  void set_trace_sink(TraceSink* /*sink*/) noexcept {}
#else
  // Filters out a disabled sink here, so call sites pay one load + branch
  // instead of a virtual probe call that immediately returns.
  [[nodiscard]] TraceSink* trace_sink() const noexcept {
    return (trace_sink_ != nullptr && trace_sink_->enabled()) ? trace_sink_
                                                              : nullptr;
  }
  void set_trace_sink(TraceSink* sink) noexcept { trace_sink_ = sink; }
#endif

  // --- profiling probe (kernel/profile_sink.hpp) -------------------------------
  // The cycle-attribution sink: every charge() is mirrored to it with the
  // task's current CycleClass, and the execution engines report guest
  // retirement sites (per block / per instruction). One sink at a time, not
  // owned; a disabled sink is filtered here exactly like the trace sink.
  // Probes never charge cycles — attaching one leaves every counter
  // bit-identical.
  [[nodiscard]] ProfileSink* profile_sink() const noexcept {
    return (profile_sink_ != nullptr && profile_sink_->enabled())
               ? profile_sink_
               : nullptr;
  }
  void set_profile_sink(ProfileSink* sink) noexcept {
    flush_profile_mirror();  // pending cycles belong to the outgoing sink
    profile_sink_ = sink;
    profile_step_period_ =
        sink != nullptr ? std::max<std::uint64_t>(1, sink->step_sample_period())
                        : 1;
  }
  // Delivers every task's coalesced pending charges to the sink (see
  // charge()). Called at run-loop exit; a sink's result accessors call it
  // too, so per-class sums match total_cycles() however the machine was
  // driven.
  void flush_profile_mirror() noexcept;

  // The machine-owned deterministic entropy stream: every kernel-side random
  // draw (sys_getrandom) comes from here, so "nondeterminism" is a seeded,
  // recordable input rather than ambient host state.
  Xoshiro256& rng() noexcept { return rng_; }
  void reseed_rng(std::uint64_t seed) noexcept { rng_.reseed(seed); }

  // --- ptrace (host tracer) ----------------------------------------------------
  void attach_tracer(Tid tid, TracerHooks hooks);
  void detach_tracer(Tid tid);

  // --- seccomp user-notification supervisor (host side) -------------------------
  using UserNotifHandler = std::function<std::uint64_t(
      Task&, std::uint64_t nr, const std::array<std::uint64_t, 6>&)>;
  void set_user_notif_handler(UserNotifHandler handler) {
    user_notif_ = std::move(handler);
  }

  // --- program registry (execve targets) ----------------------------------------
  void register_program(const isa::Program& program);
  [[nodiscard]] const isa::Program* find_program(const std::string& name) const;

  // Internal services used by the clone/fork implementation. In SMP mode
  // tids/pids come from disjoint per-CPU ranges so concurrent clones are
  // deterministic; `cpu` is ignored otherwise.
  void adopt_task(std::unique_ptr<Task> task);
  Tid allocate_tid(unsigned cpu = 0);
  Pid allocate_pid(unsigned cpu = 0);

  // --- services used by HostFrame and the interposer runtimes -------------------
  std::uint64_t syscall_from_host(Task& task, std::uint64_t nr,
                                  const std::array<std::uint64_t, 6>& args,
                                  std::uint64_t host_ip);
  // Executes a syscall on behalf of `task` from a supervisor context (the
  // seccomp USER_NOTIF pattern): no interception pipeline runs, because the
  // supervisor's own syscalls are not subject to the target's filters.
  std::uint64_t supervised_dispatch(Task& task, std::uint64_t nr,
                                    const std::array<std::uint64_t, 6>& args);
  void charge(Task& task, std::uint64_t cycles) noexcept;
  [[nodiscard]] std::uint64_t total_cycles() const noexcept { return total_cycles_; }

  // Kill a whole process (uncatchable), e.g. on interposer recursion.
  void kill_process(Process& process, int exit_code, const std::string& reason);

  // Signal delivery (used internally and by tgkill/tests).
  void deliver_signal(Task& task, const SigInfo& info);

  // The last fatal diagnostic (empty if none) — surfaced to tests.
  [[nodiscard]] const std::string& last_fatal() const noexcept { return last_fatal_; }

 private:
  friend struct HostFrame;

  // Flushes one task's coalesced profile-mirror charges (charge()).
  void flush_profile(Task& task) noexcept;

  // One scheduling step: host call or one instruction. Returns false when
  // the task can no longer run. `steps` is the step counter this execution
  // lane advances: total_steps_ on the single-threaded path, a per-CPU lane
  // counter under run_smp (merged into total_steps_ at barriers).
  bool step_once(Task& task, std::uint64_t& steps);
  // run_slice against an explicit lane counter (the SMP per-CPU path).
  void run_slice_counted(Task& task, std::uint64_t max_insns,
                         std::uint64_t& steps);

  // True when a pending signal exists that the task's sigmask does not
  // block — the only case where the delivery scan in step_once can do
  // anything. A single OR-reduction over the pending list, so a task whose
  // mask blocks everything pays no per-signal branch in the hot loop.
  [[nodiscard]] static bool deliverable_signal_pending(const Task& task) noexcept;

#ifndef LZP_BLOCK_EXEC_DISABLED
  // True when run_slice may execute `task` through the superblock engine
  // without observable divergence from per-instruction stepping.
  [[nodiscard]] bool can_batch_execute(const Task& task) const noexcept;
  // Executes one block (bounded by `budget` steps), batch-charges
  // cost/counters and the lane's step counter, and handles the block's exit
  // exactly as step_once would. Returns false when the task can no longer
  // run.
  bool block_step(Task& task, const cpu::DecodedBlock& block,
                  std::uint64_t budget, std::uint64_t& steps);
  // Batched accounting for one block run: lane steps, retirement counters,
  // the per-block profile probe, and the cycle charge — identical totals to
  // per-instruction stepping (shared by block_step and trace_step).
  void account_block_run(Task& task, const cpu::DecodedBlock& block,
                         const cpu::BlockRun& run, std::uint64_t& steps);
  // Handles a finished block run's exit exactly as step_once would have for
  // the instruction at run.insn_addr. Returns false when the task can no
  // longer run.
  bool dispatch_block_exit(Task& task, const cpu::BlockRun& run);
#ifndef LZP_TRACE_EXEC_DISABLED
  // Executes a recorded trace (bounded by `budget` steps): embedded blocks
  // run back to back, with the trace-boundary safety check (address space,
  // code/layout generations, batchability, recorded successor) between
  // links; any mismatch side-exits with state exactly as the block engine
  // would have left it. Returns false when the task can no longer run.
  // A nonzero (start_block, start_insn) resumes a chain parked at the
  // previous slice's end — possibly mid-block (TraceCache::take_resume
  // already revalidated the position).
  bool trace_step(Task& task, cpu::Trace& trace, std::uint64_t budget,
                  std::uint64_t& steps, std::size_t start_block,
                  std::size_t start_insn);
#endif
#endif

  // Figure 1: the syscall kernel entry path for a SYSCALL instruction
  // executed by simulated code.
  void syscall_entry_from_sim(Task& task);

  // Common path once interception says "dispatch": runs the handler.
  std::uint64_t dispatch(Task& task, std::uint64_t nr,
                         const std::array<std::uint64_t, 6>& args,
                         SyscallOrigin origin);

  // Interception pipeline shared by sim- and host-originated syscalls.
  // Returns true if the syscall should proceed to dispatch; false if it was
  // intercepted (SIGSYS delivered / errno forced / task killed). When
  // intercepted with a forced result, *forced_rax is set.
  bool intercept(Task& task, std::uint64_t nr,
                 const std::array<std::uint64_t, 6>& args, std::uint64_t ip,
                 bool from_host, std::uint64_t* forced_rax);

  // Individual syscall implementations (machine_syscalls.cpp).
  std::uint64_t sys_dispatch_table(Task& task, std::uint64_t nr,
                                   const std::array<std::uint64_t, 6>& args);
  std::uint64_t do_clone(Task& parent, std::uint64_t flags, std::uint64_t stack);
  std::uint64_t do_execve(Task& task, std::uint64_t path_ptr);

  // Signal helpers (machine_signals.cpp).
  void handle_fault_signal(Task& task, int sig, const SigInfo& info);
  std::uint64_t do_rt_sigreturn(Task& task);
  void exit_task(Task& task, int code);
  void exit_process(Task& task, int code);

  CostModel costs_;
  Vfs vfs_;
  Net net_;

  std::map<Tid, std::unique_ptr<Task>> tasks_;
  Tid next_tid_ = 100;
  Pid next_pid_ = 100;

  struct HostBinding {
    std::string name;
    HostFn fn;
    CycleClass cls = CycleClass::kInterposer;
  };
  std::map<std::uint64_t, HostBinding> host_fns_;
  std::uint64_t next_host_addr_ = kHostRegionBase;

  // Last-hit host-binding cache: interposer-heavy workloads dispatch the
  // same entry point back to back, so one compare replaces a map lookup on
  // nearly every host step. Safe to cache raw pointers: host_fns_ is
  // insert-only and std::map nodes never move.
  [[nodiscard]] HostBinding* find_host_binding(std::uint64_t addr) noexcept;
  std::uint64_t host_cache_addr_ = ~0ULL;
  HostBinding* host_cache_ = nullptr;

  std::map<Tid, TracerHooks> tracers_;

  // Multicast observer list: ordered (registration order), id-addressed.
  template <typename Fn>
  struct ObserverList {
    struct Slot {
      ObserverId id;
      Fn fn;
    };
    std::vector<Slot> slots;

    ObserverId add(Fn fn, ObserverId* next_id) {
      const ObserverId id = (*next_id)++;
      slots.push_back(Slot{id, std::move(fn)});
      return id;
    }
    void remove(ObserverId id) {
      std::erase_if(slots, [id](const Slot& slot) { return slot.id == id; });
    }
    [[nodiscard]] bool empty() const noexcept { return slots.empty(); }
    template <typename... Args>
    void notify(Args&&... args) const {
      for (const auto& slot : slots) slot.fn(args...);
    }
  };

  PreloadHook preload_;
  ObserverId next_observer_id_ = 1;
  ObserverList<InsnObserver> insn_observers_;
  ObserverList<SyscallObserver> syscall_observers_;
  ObserverList<SliceObserver> slice_observers_;
  ScheduleHook schedule_hook_;
  ObserverList<SignalObserver> signal_observers_;
  ObserverList<NondetObserver> nondet_observers_;
  UserNotifHandler user_notif_;
#ifndef LZP_TRACE_DISABLED
  TraceSink* trace_sink_ = nullptr;
  // Last tid handed a slice by run(), for task-switch trace events.
  Tid last_sliced_tid_ = 0;
#endif
  // Cycle-attribution sink (see profile_sink() above). Written only while no
  // run is active; SMP lanes read the invariant pointer lock-free.
  ProfileSink* profile_sink_ = nullptr;
  // Cached sink->step_sample_period() (>= 1), read per retired instruction
  // under the step engine.
  std::uint64_t profile_step_period_ = 1;
  // Installs the decode- and block-cache invalidation probes on a freshly
  // created task.
  void attach_dcache_probe(Task& task);
  // Emits a kSwitch trace event when the scheduler picks a different task.
  void note_task_switch(const Task& task);
  Xoshiro256 rng_{0x1A5F'9E37ULL};
  // Program registry; mutable so the find path can cache images parsed from
  // their on-disk (VFS) LZPF form.
  mutable std::map<std::string, isa::Program> programs_;

  std::uint64_t total_cycles_ = 0;
  std::uint64_t total_insns_ = 0;
  std::uint64_t total_steps_ = 0;
  std::string last_fatal_;

  // Tasks created during the current scheduling pass (clone/fork) — merged
  // into tasks_ between slices to keep iteration stable.
  std::vector<std::unique_ptr<Task>> nursery_;
  void merge_nursery();
  void notify_nondet(const Task& task, std::uint64_t nr, NondetSource source) {
    nondet_observers_.notify(task, nr, source);
  }

  // --- SMP substrate (smp.cpp) ------------------------------------------------
  // True only while run_smp's parallel phases may be running. Guards the
  // machine-global counters (stale between barriers, recomputed from task
  // sums at each one), routes cross-CPU signals through the mailbox, switches
  // tid/pid allocation to per-CPU ranges, and disables the single-entry
  // host-binding cache (shared mutable state).
  bool smp_active_ = false;
  std::uint64_t smp_seed_ = 0;
  // Per-CPU tid/pid allocators: CPU c hands out 1'000'000 * (c + 1) + n,
  // disjoint from the single-threaded 100+ range and from every other CPU.
  std::vector<Tid> smp_next_tid_;
  std::vector<Pid> smp_next_pid_;
  // Cross-CPU signal send (kill/tgkill targeting a task on another simulated
  // CPU): queued here and applied at the next barrier in (target, sender,
  // seq) order — the deterministic IPI model.
  struct RemoteSignal {
    Tid target = 0;
    Tid sender = 0;
    std::uint64_t seq = 0;
    SigInfo info;
  };
  std::vector<RemoteSignal> signal_mailbox_;
  std::mutex mailbox_mu_;
  void smp_post_remote_signal(Task& sender, Tid target, const SigInfo& info);
  // Locks for machine tables a parallel phase can touch from several lanes.
  // Lock order (see DESIGN.md §10): none of these nest within each other.
  std::mutex nursery_mu_;           // nursery_ (clone/fork vs. liveness scans)
  std::mutex fatal_mu_;             // last_fatal_
  mutable std::mutex programs_mu_;  // programs_ (execve image cache)
};

}  // namespace lzp::kern
