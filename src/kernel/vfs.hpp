// A small in-memory filesystem: enough for the workloads the evaluation
// needs (web servers serving static files of configurable sizes, coreutils
// reading/writing paths, getdents-style listing).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.hpp"

namespace lzp::kern {

struct FileStat {
  std::uint64_t size = 0;
  std::uint32_t mode = 0644;
  bool is_dir = false;
};

class Vfs {
 public:
  Status put_file(const std::string& path, std::vector<std::uint8_t> contents);
  // Convenience: a file of `size` deterministic bytes (web content).
  Status put_file_of_size(const std::string& path, std::uint64_t size);
  Status mkdir(const std::string& path);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Status chmod(const std::string& path, std::uint32_t mode);

  [[nodiscard]] bool exists(const std::string& path) const;
  Result<FileStat> stat(const std::string& path) const;
  // Reads [offset, offset+length) clamped to file size; returns bytes read.
  Result<std::uint64_t> read(const std::string& path, std::uint64_t offset,
                             std::uint64_t length,
                             std::vector<std::uint8_t>* out) const;
  Result<std::uint64_t> write(const std::string& path, std::uint64_t offset,
                              const std::vector<std::uint8_t>& data);
  // Entries directly under `dir_path` (flat namespace; '/'-separated).
  [[nodiscard]] std::vector<std::string> list(const std::string& dir_path) const;

 private:
  struct Node {
    FileStat meta;
    std::vector<std::uint8_t> contents;
  };
  // One lock over the whole table (SMP: every public method is a critical
  // section, coarse enough to be obviously deadlock-free — no method calls
  // another under the lock). Leaf lock in the kernel order (DESIGN.md §10).
  mutable std::mutex mu_;
  std::map<std::string, Node> nodes_;
};

}  // namespace lzp::kern
