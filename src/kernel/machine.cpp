#include "kernel/machine.hpp"

#include <algorithm>

#include "base/log.hpp"
#include "bpf/seccomp_filter.hpp"
#include "cpu/execute.hpp"
#include "isa/objfile.hpp"

namespace lzp::kern {

Machine::Machine(CostModel costs) : costs_(costs) {}

// ---------------------------------------------------------------------------
// Host function registry
// ---------------------------------------------------------------------------

std::uint64_t Machine::bind_host(std::string name, HostFn fn, CycleClass cls) {
  const std::uint64_t addr = next_host_addr_;
  next_host_addr_ += 16;  // host entry points are 16 bytes apart
  host_fns_.emplace(addr, HostBinding{std::move(name), std::move(fn), cls});
  return addr;
}

bool Machine::is_host_addr(std::uint64_t addr) const noexcept {
  return addr >= kHostRegionBase;
}

std::string Machine::host_name(std::uint64_t addr) const {
  auto it = host_fns_.find(addr);
  return it == host_fns_.end() ? "<unbound>" : it->second.name;
}

Machine::HostBinding* Machine::find_host_binding(std::uint64_t addr) noexcept {
  // The last-hit cache is one shared slot, so SMP lanes bypass it and pay the
  // map lookup: host_fns_ is insert-only and never mutated during run_smp
  // (bind_host during a run is unsupported), so lock-free lookups are safe.
  if (smp_active_) {
    auto it = host_fns_.find(addr);
    return it == host_fns_.end() ? nullptr : &it->second;
  }
  if (addr == host_cache_addr_) return host_cache_;
  auto it = host_fns_.find(addr);
  if (it == host_fns_.end()) return nullptr;  // misses are not cached
  host_cache_addr_ = addr;
  host_cache_ = &it->second;
  return host_cache_;
}

// ---------------------------------------------------------------------------
// HostFrame services
// ---------------------------------------------------------------------------

std::uint64_t HostFrame::syscall(std::uint64_t nr,
                                 std::array<std::uint64_t, 6> args) {
  return machine.syscall_from_host(task, nr, args, ctx.rip);
}

void HostFrame::ret() {
  auto target = task.mem->read_u64(ctx.rsp());
  if (!target) {
    machine.kill_process(*task.process, 139,
                         "host ret: stack read failed: " + target.status().to_string());
    return;
  }
  ctx.set_rsp(ctx.rsp() + 8);
  ctx.rip = target.value();
}

void HostFrame::charge(std::uint64_t cycles) { machine.charge(task, cycles); }

// ---------------------------------------------------------------------------
// Process management
// ---------------------------------------------------------------------------

Result<Tid> Machine::load(const isa::Program& program) {
  auto process = std::make_shared<Process>();
  process->pid = next_pid_++;
  process->program_name = program.name;

  auto task = std::make_unique<Task>();
  task->tid = next_tid_++;
  task->process = process;
  task->mem = std::make_shared<mem::AddressSpace>();

  // Text+rodata image, executable (and readable, like a normal ELF segment).
  auto text = task->mem->map(program.base, program.image.size(),
                             mem::kProtRead | mem::kProtExec, /*fixed=*/true);
  if (!text) return text.status();
  if (Status write = task->mem->write_force(program.base, program.image);
      !write.is_ok()) {
    return write;
  }

  // A fixed scratch data region (programs use it for globals/buffers).
  auto data = task->mem->map(kDataRegionBase, kDataRegionSize,
                             mem::kProtRead | mem::kProtWrite, /*fixed=*/true);
  if (!data) return data.status();

  // Stack.
  const std::uint64_t stack_size = std::max<std::uint64_t>(program.stack_size, 4096);
  auto stack = task->mem->map(kStackTop - stack_size, stack_size,
                              mem::kProtRead | mem::kProtWrite, /*fixed=*/true);
  if (!stack) return stack.status();

  task->ctx.rip = program.entry;
  task->ctx.set_rsp(kStackTop - 64);

  Task& ref = *task;
  tasks_.emplace(ref.tid, std::move(task));
  attach_dcache_probe(ref);
  if (auto* sink = trace_sink()) {
    sink->on_task_event(ref, TraceSink::TaskEvent::kStart, program.entry);
  }
  if (preload_) preload_(*this, ref, program);
  return ref.tid;
}

Task* Machine::find_task(Tid tid) {
  auto it = tasks_.find(tid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

Task* Machine::find_task_any(Tid tid) {
  if (Task* task = find_task(tid)) return task;
  std::lock_guard<std::mutex> lock(nursery_mu_);
  for (auto& task : nursery_) {
    if (task->tid == tid) return task.get();
  }
  return nullptr;
}

std::vector<Tid> Machine::task_ids() const {
  std::vector<Tid> ids;
  ids.reserve(tasks_.size());
  for (const auto& [tid, task] : tasks_) ids.push_back(tid);
  return ids;
}

std::size_t Machine::live_task_count() const {
  std::size_t count = 0;
  for (const auto& [tid, task] : tasks_) {
    if (task->runnable()) ++count;
  }
  return count;
}

Status Machine::post_signal(Tid tid, SigInfo info) {
  Task* task = find_task_any(tid);
  if (task == nullptr) {
    return Status{StatusCode::kNotFound,
                  "post_signal: no task " + std::to_string(tid)};
  }
  if (!task->runnable()) {
    return Status{StatusCode::kFailedPrecondition,
                  "post_signal: task " + std::to_string(tid) + " not runnable"};
  }
  info.external = true;
  task->pending_signals.push_back(info);
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void Machine::merge_nursery() {
  std::lock_guard<std::mutex> lock(nursery_mu_);
  for (auto& task : nursery_) {
    Tid tid = task->tid;
    tasks_.emplace(tid, std::move(task));
  }
  nursery_.clear();
}

RunStats Machine::run(std::uint64_t max_total_insns) {
  RunStats stats;
  // The budget and the per-slice bookkeeping are in *steps* (total_steps_),
  // not retirements: a step always advances it, so host-fn loops and fault
  // storms hit the deadline instead of spinning forever, and every slice —
  // even one that only runs host code or delivers a killing signal — is
  // visible to slice observers with a non-zero width.
  const std::uint64_t deadline = total_steps_ + max_total_insns;

  if (schedule_hook_) {
    // Externally driven scheduling (trace replay): the hook dictates which
    // task runs next and for how many steps; clone children are merged
    // before every decision so the hook can schedule them immediately.
    while (total_steps_ < deadline) {
      merge_nursery();
      const auto slice = schedule_hook_(*this);
      if (!slice) break;
      Task* task = find_task(slice->tid);
      if (task == nullptr || !task->runnable()) continue;
      note_task_switch(*task);
      run_slice(*task, slice->max_steps);
    }
    merge_nursery();
    flush_profile_mirror();
    stats.insns = total_insns_;
    stats.all_exited = live_task_count() == 0;
    return stats;
  }

  bool any_runnable = true;
  while (any_runnable && total_steps_ < deadline) {
    any_runnable = false;
    for (auto& [tid, task] : tasks_) {
      if (!task->runnable()) continue;
      any_runnable = true;
      const std::uint64_t steps_before = total_steps_;
      note_task_switch(*task);
      run_slice(*task, kSliceInsns);
      if (total_steps_ > steps_before) {
        slice_observers_.notify(*task, total_steps_ - steps_before);
      }
      if (total_steps_ >= deadline) break;
    }
    if (!nursery_.empty()) {
      merge_nursery();
      any_runnable = true;
    }
  }
  flush_profile_mirror();
  stats.insns = total_insns_;
  stats.all_exited = live_task_count() == 0 && nursery_.empty();
  return stats;
}

void Machine::run_slice(Task& task, std::uint64_t max_insns) {
  // The single-threaded entry point counts against the machine-global step
  // counter; SMP lanes call run_slice_counted with a per-CPU counter instead,
  // which is what keeps this path bit-identical to the seed engine (replay
  // reads total_steps_ mid-slice through observer callbacks).
  run_slice_counted(task, max_insns, total_steps_);
}

void Machine::run_slice_counted(Task& task, std::uint64_t max_insns,
                                std::uint64_t& steps) {
  // The budget is in steps: the slice ends after max_insns step-counter
  // advances (or when the task stops running). The block path consumes
  // exactly as many steps as a per-instruction run of the same instructions
  // would, so slice boundaries are identical with the engine on or off.
  const std::uint64_t start = steps;
  while (steps - start < max_insns) {
#ifndef LZP_BLOCK_EXEC_DISABLED
    if (can_batch_execute(task)) {
#ifndef LZP_TRACE_EXEC_DISABLED
      if (trace_exec_enabled) {
        // A trace parked at the previous slice's end resumes mid-chain (even
        // mid-block); otherwise enter at a recorded head. take_resume
        // revalidates as thoroughly as lookup, so both paths run only
        // proven-fresh blocks.
        std::size_t resume_block = 0;
        std::size_t resume_insn = 0;
        cpu::Trace* trace = task.tcache.take_resume(*task.mem, task.ctx.rip,
                                                    resume_block, resume_insn);
        if (trace == nullptr) {
          trace = task.tcache.lookup(*task.mem, task.ctx.rip);
        }
        if (trace != nullptr) {
          if (!trace_step(task, *trace, max_insns - (steps - start), steps,
                          resume_block, resume_insn)) {
            return;
          }
          continue;
        }
      }
#endif
      if (const cpu::DecodedBlock* block =
              task.bcache.lookup_or_build(*task.mem, task.ctx.rip)) {
        if (!block_step(task, *block, max_insns - (steps - start), steps)) {
          return;
        }
        continue;
      }
    }
#ifndef LZP_TRACE_EXEC_DISABLED
    // Falling to the per-instruction path ends any in-progress chain: the
    // recording is finalized here (installed if long enough) rather than
    // silently extended across unbatchable work.
    if (trace_exec_enabled) task.tcache.end_recording();
#endif
#endif
    if (!step_once(task, steps)) return;
  }
}

bool Machine::deliverable_signal_pending(const Task& task) noexcept {
  if (task.pending_signals.empty()) return false;
  std::uint64_t bits = 0;
  for (const SigInfo& info : task.pending_signals) {
    bits |= 1ULL << (info.signo & 63);
  }
  return (bits & ~task.sigmask) != 0;
}

#ifndef LZP_BLOCK_EXEC_DISABLED
bool Machine::can_batch_execute(const Task& task) const noexcept {
  // Every condition here names a client that needs per-instruction
  // precision; the per-step path is the reference semantics and anything
  // that observes or perturbs individual steps gets it.
  return block_exec_enabled && insn_observers_.empty() &&
         slice_observers_.empty() && !schedule_hook_ && !task.ptraced &&
         !is_host_addr(task.ctx.rip) && !deliverable_signal_pending(task);
}

void Machine::account_block_run(Task& task, const cpu::DecodedBlock& block,
                                const cpu::BlockRun& run,
                                std::uint64_t& steps) {
  // Batched accounting. Identical totals to per-instruction stepping: cost
  // is linear in (retired, nops), the counters are plain sums, and every
  // executed instruction is one machine step whether it retired or not.
  steps += run.executed;
  if (run.retired > 0) {
    if (!smp_active_) total_insns_ += run.retired;
    task.insns_retired += run.retired;
    const std::uint64_t batch_cycles = (run.retired - run.nops) * costs_.insn +
                                       run.nops * costs_.insn_nop;
    // Site probe first, then the charge: the sink uses the probe to establish
    // the site/stack context the charge's on_cycles mirror is folded under.
    if (auto* sink = profile_sink()) {
      sink->on_guest_block(task, block.start, run.retired, batch_cycles);
    }
    charge(task, batch_cycles);
  }
}

bool Machine::dispatch_block_exit(Task& task, const cpu::BlockRun& run) {
  // The block's exit reproduces exactly what step_once would have done for
  // the instruction at run.insn_addr.
  switch (run.kind) {
    case cpu::ExecKind::kContinue:
      return task.runnable();
    case cpu::ExecKind::kSyscall:
      syscall_entry_from_sim(task);
      return task.runnable();
    case cpu::ExecKind::kHostCall: {
      const std::uint64_t addr =
          kHostRegionBase + 16 * static_cast<std::uint64_t>(run.last->imm);
      HostBinding* binding = find_host_binding(addr);
      if (binding == nullptr) {
        kill_process(*task.process, 139, "HOSTCALL to unbound index");
        return false;
      }
      // The dispatch and the native function charge under the binding's
      // class: interposer trampolines by default, guest for app harnesses
      // that model application compute as host code.
      ScopedCycleClass scope(task, binding->cls, addr);
      charge(task, costs_.insn + costs_.host_glue);
      HostFrame frame{*this, task, task.ctx};
      binding->fn(frame);
      return task.runnable();
    }
    case cpu::ExecKind::kHlt:
      exit_process(task, 0);
      return false;
    case cpu::ExecKind::kTrap: {
      SigInfo info;
      info.signo = kSigtrap;
      handle_fault_signal(task, kSigtrap, info);
      return task.runnable();
    }
    case cpu::ExecKind::kMemFault: {
      SigInfo info;
      info.signo = kSigsegv;
      info.fault_addr = run.fault.address;
      handle_fault_signal(task, kSigsegv, info);
      return task.runnable();
    }
    case cpu::ExecKind::kDivideError: {
      SigInfo info;
      info.signo = kSigfpe;
      info.fault_addr = run.insn_addr;
      handle_fault_signal(task, kSigfpe, info);
      return task.runnable();
    }
    case cpu::ExecKind::kInvalidOpcode:
      // Unreachable: blocks only hold successfully decoded instructions.
      kill_process(*task.process, 139, "invalid opcode inside decoded block");
      return false;
  }
  return false;
}

#ifndef LZP_TRACE_EXEC_DISABLED
// True for exit kinds the trace engine may chain across: the block ran to
// its end and control transferred somewhere batched execution can resume.
// Faults and traps re-enter signal machinery and never chain.
[[nodiscard]] static bool chainable_exit(cpu::ExecKind kind) noexcept {
  return kind == cpu::ExecKind::kContinue || kind == cpu::ExecKind::kSyscall ||
         kind == cpu::ExecKind::kHostCall;
}
#endif  // LZP_TRACE_EXEC_DISABLED

bool Machine::block_step(Task& task, const cpu::DecodedBlock& block,
                         std::uint64_t budget, std::uint64_t& steps) {
  const cpu::BlockRun run =
      cpu::run_block(task.ctx, *task.mem, block, budget, &task.dtlb);
  account_block_run(task, block, run, steps);
  const bool alive = dispatch_block_exit(task, run);

#ifndef LZP_TRACE_EXEC_DISABLED
  // Trace formation feedback. A full, chainable block execution whose next
  // step is still batchable heats (or extends a recording of) the chain;
  // anything else — partial run, fault exit, task death, a slow-path
  // condition at the boundary — ends it. task.ctx.rip here is the
  // architectural successor with the exit fully handled (past syscall and
  // host-call side effects), which is exactly what trace_step must land on
  // when it replays the chain.
  if (trace_exec_enabled) {
    const bool full_clean = alive && run.executed == block.insns.size() &&
                            chainable_exit(run.kind);
    if (full_clean && can_batch_execute(task)) {
      task.tcache.on_block_executed(*task.mem, task.bcache, block,
                                    task.ctx.rip);
    } else if (full_clean) {
      task.tcache.end_recording();
    } else if (alive && run.kind == cpu::ExecKind::kContinue &&
               run.executed == budget) {
      // The slice quantum cut the block mid-run — nothing about the chain
      // broke, the block just did not finish this slice. Report the cut: a
      // cut at the recording's expected boundary arms the linear cursor, so
      // the chain keeps extending through the differently-aligned fragments
      // the continuation executes as (for loop bodies longer than the
      // quantum, the boundary may never recur as one full-clean run).
      task.tcache.record_cut(*task.mem, task.bcache, block, task.ctx.rip);
    } else {
      task.tcache.abort_recording();
    }
  }
#endif
  return alive;
}

#ifndef LZP_TRACE_EXEC_DISABLED
bool Machine::trace_step(Task& task, cpu::Trace& trace, std::uint64_t budget,
                         std::uint64_t& steps, std::size_t start_block,
                         std::size_t start_insn) {
  // A resumed run continues the execution counted when the trace was first
  // entered; only fresh entries feed the demotion ratio.
  if (start_block == 0 && start_insn == 0) task.tcache.note_entered(trace);
  // record_observe below may finalize a recording; keep it from installing
  // over this trace's slot while we hold references into it.
  const cpu::TraceCache::ScopedPin pin(task.tcache, &trace);

  // Trace-boundary safety snapshot. lookup() already proved every embedded
  // page present, executable, and at its recorded generation; as long as the
  // address space identity and its code/layout generations do not move, that
  // proof stays valid for the whole chain. Any movement — a store into code,
  // an mprotect/munmap from a syscall, an execve swapping the space — forces
  // a side exit at the next block boundary, exactly where the block engine
  // would have revalidated. task.mem is re-read at every boundary: execve
  // replaces the AddressSpace object itself.
  const std::uint64_t entry_asid = task.mem->asid();
  const std::uint64_t entry_code_gen = task.mem->code_gen();
  const std::uint64_t entry_layout_gen = task.mem->layout_gen();

  std::uint64_t used = 0;
  for (std::size_t i = start_block; i < trace.blocks.size(); ++i) {
    const cpu::TraceBlock& tb = trace.blocks[i];
    const std::uint64_t remaining = budget - used;
    const std::size_t skip = i == start_block ? start_insn : 0;
    const std::size_t n = tb.block.insns.size();
    const std::size_t want = n - skip;  // instructions left in this block

    cpu::BlockRun run;
    if (tb.block.nops == n && remaining >= want) {
      // All-nop superop: the zpoline sled (and any other nop ramp) retires
      // its remaining nops with no register, memory, or fault effects — O(1)
      // instead of one dispatch each. Legal only here: trace entry validated
      // the page bytes via recorded generations, so the cached decode is
      // current.
      run.kind = cpu::ExecKind::kContinue;
      run.executed = static_cast<std::uint32_t>(want);
      run.retired = run.executed;
      run.nops = run.executed;
      run.last = nullptr;
      task.ctx.rip = tb.block.start + tb.block.length;
    } else {
      run = cpu::run_block(task.ctx, *task.mem, tb.block, remaining,
                           &task.dtlb, skip);
    }
    used += run.executed;
    account_block_run(task, tb.block, run, steps);

    const bool fused_candidate = run.kind == cpu::ExecKind::kHostCall;
    if (!dispatch_block_exit(task, run)) return false;

    // Keep any in-progress recording fed: blocks that execute inside a trace
    // never reach block_step, and without this a new recording whose path
    // crosses an installed trace would wait for a successor that never
    // arrives. Only full from-the-top runs qualify (a resumed tail does not
    // prove control flowed through the whole block).
    if (skip == 0 && run.executed == n && chainable_exit(run.kind) &&
        task.tcache.recording() && can_batch_execute(task)) {
      task.tcache.record_observe(*task.mem, task.bcache, tb.block,
                                 task.ctx.rip);
    }

    if (run.executed < want) {
      if (used >= budget && run.kind == cpu::ExecKind::kContinue) {
        // The slice budget cut the block mid-run — the block engine would
        // stop at the same step. Park the exact instruction so the next
        // slice re-enters the chain here instead of demoting to blocks.
        task.tcache.set_resume(trace.start, i, skip + run.executed);
      } else if (used < budget) {
        // A mid-block code write (or fault) ended it early: genuine side
        // exit.
        task.tcache.note_side_exit(trace);
      }
      return true;
    }
    if (i + 1 == trace.blocks.size()) {
      // A clean exit off the recorded end is a completion; a fault or trap
      // on the last block counts against the trace like any other side exit.
      if (chainable_exit(run.kind)) {
        task.tcache.note_completion();
      } else {
        task.tcache.note_side_exit(trace);
      }
      return true;
    }
    if (!chainable_exit(run.kind) || task.mem->asid() != entry_asid ||
        task.mem->code_gen() != entry_code_gen ||
        task.mem->layout_gen() != entry_layout_gen ||
        task.ctx.rip != trace.blocks[i + 1].block.start ||
        !can_batch_execute(task)) {
      // note_side_exit may demote (and thereby destroy) the trace; nothing
      // touches it after this point.
      task.tcache.note_side_exit(trace);
      return true;
    }
    task.tcache.note_chain_follow(trace);
    // A host-call exit chained straight through: the interposer handler ran
    // and returned control to the recorded successor without leaving the
    // trace — the fused lazypoline fast path.
    if (fused_candidate) task.tcache.note_fused_fastpath();
    if (used >= budget) {
      // Slice exhausted exactly at a boundary: park the position so the next
      // slice re-enters here instead of falling back to single blocks for
      // the rest of the chain.
      task.tcache.set_resume(trace.start, i + 1, 0);
      return true;
    }
  }
  return task.runnable();
}
#endif  // LZP_TRACE_EXEC_DISABLED
#endif  // LZP_BLOCK_EXEC_DISABLED

bool Machine::step_once(Task& task, std::uint64_t& steps) {
  if (!task.runnable()) return false;
  ++steps;

  // Deliver one pending, unblocked signal before resuming user code. The
  // deliverable_signal_pending pre-check makes this skip-free for a task
  // whose sigmask blocks everything currently queued.
  if (deliverable_signal_pending(task)) {
    for (std::size_t i = 0; i < task.pending_signals.size(); ++i) {
      const SigInfo info = task.pending_signals[i];
      if ((task.sigmask >> info.signo) & 1) continue;
      task.pending_signals.erase(task.pending_signals.begin() +
                                 static_cast<std::ptrdiff_t>(i));
      deliver_signal(task, info);
      if (!task.runnable()) return false;
      break;
    }
  }

  // Host-bound code: native runtime (interposer entry points, wrappers).
  // Host steps retire no simulated instruction and do not advance
  // total_insns_.
  if (is_host_addr(task.ctx.rip)) {
    HostBinding* binding = find_host_binding(task.ctx.rip);
    if (binding == nullptr) {
      kill_process(*task.process, 139,
                   "jump to unbound host address " + std::to_string(task.ctx.rip));
      return false;
    }
    const std::uint64_t entry_rip = task.ctx.rip;
    ScopedCycleClass scope(task, binding->cls, entry_rip);
    charge(task, costs_.host_glue);
    HostFrame frame{*this, task, task.ctx};
    binding->fn(frame);
    if (!task.runnable()) return false;
    if (task.ctx.rip == entry_rip) {
      // Host function did not redirect control: behave like RET.
      frame.ret();
    }
    return task.runnable();
  }

  const cpu::ExecResult result =
      cpu::step(task.ctx, *task.mem,
                decode_cache_enabled ? &task.dcache : nullptr, &task.dtlb);
  switch (result.kind) {
    case cpu::ExecKind::kContinue:
    case cpu::ExecKind::kSyscall: {
      const std::uint64_t insn_cycles =
          result.insn && result.insn->op == isa::Op::kNop ? costs_.insn_nop
                                                          : costs_.insn;
      // Site probe before the charge (see block_step). Sampled at the
      // sink's period: cycles accumulate per task and the every-Nth probe
      // carries the whole batch, so site-map sums stay exact while the
      // virtual call amortizes (the sink's step-engine overhead knob).
      if (auto* sink = profile_sink()) {
        task.insn_probe_cycles += insn_cycles;
        if (++task.insn_probe_count >= profile_step_period_) {
          sink->on_guest_insn(task, result.insn_addr, task.insn_probe_cycles);
          task.insn_probe_cycles = 0;
          task.insn_probe_count = 0;
        }
      }
      charge(task, insn_cycles);
      if (!smp_active_) ++total_insns_;
      ++task.insns_retired;
      if (!insn_observers_.empty() && result.insn) {
        insn_observers_.notify(task, *result.insn);
      }
      if (result.kind == cpu::ExecKind::kSyscall) syscall_entry_from_sim(task);
      return task.runnable();
    }
    case cpu::ExecKind::kHostCall: {
      // A HOSTCALL instruction in simulated code: dispatch to the bound
      // native function (rip is already past the instruction; the function
      // may redirect it, e.g. the trampoline's entry performing RET).
      const std::uint64_t addr =
          kHostRegionBase + 16 * static_cast<std::uint64_t>(result.insn->imm);
      HostBinding* binding = find_host_binding(addr);
      if (binding == nullptr) {
        kill_process(*task.process, 139, "HOSTCALL to unbound index");
        return false;
      }
      ScopedCycleClass scope(task, binding->cls, addr);
      charge(task, costs_.insn + costs_.host_glue);
      HostFrame frame{*this, task, task.ctx};
      binding->fn(frame);
      return task.runnable();
    }
    case cpu::ExecKind::kHlt:
      exit_process(task, 0);
      return false;
    case cpu::ExecKind::kTrap: {
      SigInfo info;
      info.signo = kSigtrap;
      handle_fault_signal(task, kSigtrap, info);
      return task.runnable();
    }
    case cpu::ExecKind::kMemFault: {
      SigInfo info;
      info.signo = kSigsegv;
      info.fault_addr = result.fault.address;
      handle_fault_signal(task, kSigsegv, info);
      return task.runnable();
    }
    case cpu::ExecKind::kInvalidOpcode: {
      SigInfo info;
      info.signo = kSigill;
      info.fault_addr = result.insn_addr;
      handle_fault_signal(task, kSigill, info);
      return task.runnable();
    }
    case cpu::ExecKind::kDivideError: {
      SigInfo info;
      info.signo = kSigfpe;
      info.fault_addr = result.insn_addr;
      handle_fault_signal(task, kSigfpe, info);
      return task.runnable();
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Syscall entry (Figure 1)
// ---------------------------------------------------------------------------

void Machine::syscall_entry_from_sim(Task& task) {
  ++task.syscalls_entered;
  const std::uint64_t entry_nr = task.ctx.syscall_number();
  // Kernel-class scope for the whole entry path; SIGSYS-style interception
  // re-enters interposer scopes from inside it (nesting restores correctly).
  ScopedCycleClass scope(task, CycleClass::kKernel, entry_nr);
  charge(task, costs_.kernel_entry);

  const std::uint64_t nr = task.ctx.syscall_number();
  std::array<std::uint64_t, 6> args;
  for (std::size_t i = 0; i < 6; ++i) args[i] = task.ctx.syscall_arg(i);
  const std::uint64_t ip = task.ctx.rip;  // already advanced past the insn

  std::uint64_t forced_rax = 0;
  if (!intercept(task, nr, args, ip, /*from_host=*/false, &forced_rax)) {
    if (task.runnable() && task.ctx.rip == ip) {
      // Intercepted with a forced result (seccomp ERRNO / tracer-suppressed);
      // SIGSYS delivery instead redirects rip, and then rax must stay
      // untouched. The SYSCALL instruction itself already executed, so the
      // rcx/r11 clobber happens exactly as on the dispatch path.
      task.ctx.set_syscall_result(forced_rax);
      task.ctx.set_reg(isa::Gpr::rcx, ip);
      task.ctx.set_reg(isa::Gpr::r11, 0x246);
    }
    charge(task, costs_.kernel_exit);
    return;
  }

  const std::uint64_t result = dispatch(task, nr, args, SyscallOrigin::kSimCode);
  if (!task.runnable()) return;
  // sigreturn replaces the whole context, and so does a *successful* execve;
  // everything else (including a failed execve) returns a value in rax and
  // clobbers rcx/r11 like the real SYSCALL ABI.
  const bool context_replaced =
      nr == kSysRtSigreturn || (nr == kSysExecve && !is_error_result(result));
  if (!context_replaced) {
    task.ctx.set_syscall_result(result);
    task.ctx.set_reg(isa::Gpr::rcx, ip);
    task.ctx.set_reg(isa::Gpr::r11, 0x246);
  }
  charge(task, costs_.kernel_exit);
}

std::uint64_t Machine::syscall_from_host(Task& task, std::uint64_t nr,
                                         const std::array<std::uint64_t, 6>& args,
                                         std::uint64_t host_ip) {
  ++task.syscalls_entered;
  // A host interposer performing a syscall: kernel-class work nested inside
  // the caller's interposer scope.
  ScopedCycleClass scope(task, CycleClass::kKernel, nr);
  charge(task, costs_.kernel_entry);

  std::uint64_t forced_rax = errno_result(kENOSYS);
  if (!intercept(task, nr, args, host_ip, /*from_host=*/true, &forced_rax)) {
    charge(task, costs_.kernel_exit);
    return forced_rax;
  }
  const std::uint64_t result = dispatch(task, nr, args, SyscallOrigin::kHostCode);
  charge(task, costs_.kernel_exit);
  return result;
}

std::uint64_t Machine::supervised_dispatch(Task& task, std::uint64_t nr,
                                           const std::array<std::uint64_t, 6>& args) {
  ScopedCycleClass scope(task, CycleClass::kKernel, nr);
  charge(task, costs_.kernel_entry);
  const std::uint64_t result = dispatch(task, nr, args, SyscallOrigin::kHostCode);
  charge(task, costs_.kernel_exit);
  return result;
}

bool Machine::intercept(Task& task, std::uint64_t nr,
                        const std::array<std::uint64_t, 6>& args,
                        std::uint64_t ip, bool from_host,
                        std::uint64_t* forced_rax) {
  const bool any_interception =
      task.ptraced || !task.seccomp.empty() || task.sud.enabled;
  if (!any_interception) return true;
  // The entry path slows down as soon as any interception work is armed,
  // even for syscalls that end up exempt (paper Table II, "baseline with
  // SUD enabled").
  charge(task, costs_.intercept_check);

  // 1. ptrace syscall-entry stop.
  if (task.ptraced) {
    auto it = tracers_.find(task.tid);
    if (it != tracers_.end() && it->second.on_syscall_entry) {
      // The tracer round trip is interposer work: context switches into the
      // host tracer, per-stop ptrace requests, and the tracer's own code.
      ScopedCycleClass scope(task, CycleClass::kInterposer, kDetailPtraceStop);
      charge(task, 2 * costs_.context_switch +
                       costs_.ptrace_requests_per_stop * costs_.ptrace_request);
      it->second.on_syscall_entry(task, task.ctx);
    }
    if (it != tracers_.end() && it->second.on_syscall_suppress) {
      ScopedCycleClass scope(task, CycleClass::kInterposer, kDetailPtraceStop);
      std::uint64_t forced = errno_result(kENOSYS);
      if (it->second.on_syscall_suppress(task, task.ctx, nr, args, &forced)) {
        // The tracer rewrote orig_rax to -1: the kernel skips execution and
        // the tracer's chosen rax is materialized. No exit stop runs.
        *forced_rax = forced;
        return false;
      }
    }
  }

  // 2. seccomp filters (newest first; most restrictive action wins).
  if (!task.seccomp.empty()) {
    std::uint32_t decisive = bpf::SECCOMP_RET_ALLOW;
    auto rank = [](std::uint32_t action) {
      const std::uint32_t base = action & bpf::SECCOMP_RET_ACTION_FULL;
      switch (base) {
        case bpf::SECCOMP_RET_KILL_PROCESS: return 0;
        case bpf::SECCOMP_RET_KILL_THREAD: return 1;
        case bpf::SECCOMP_RET_TRAP: return 2;
        case bpf::SECCOMP_RET_ERRNO: return 3;
        case bpf::SECCOMP_RET_USER_NOTIF: return 4;
        case bpf::SECCOMP_RET_TRACE: return 5;
        case bpf::SECCOMP_RET_LOG: return 6;
        default: return 7;  // ALLOW
      }
    };
    bpf::SeccompData data;
    data.nr = static_cast<std::int32_t>(nr);
    data.arch = bpf::kAuditArchX86_64;
    data.instruction_pointer = ip;
    for (std::size_t i = 0; i < 6; ++i) data.args[i] = args[i];
    const auto bytes = data.serialize();
    for (const auto& filter : task.seccomp) {
      charge(task, costs_.seccomp_setup);
      auto run = bpf::run(*filter, bytes);
      std::uint32_t action = bpf::SECCOMP_RET_KILL_PROCESS;
      if (run) {
        charge(task, run.value().insns_executed * costs_.seccomp_insn);
        action = run.value().value;
      }
      if (rank(action) < rank(decisive)) decisive = action;
    }
    if (auto* sink = trace_sink()) {
      sink->on_seccomp_decision(task, nr, decisive);
    }
    const std::uint32_t base = decisive & bpf::SECCOMP_RET_ACTION_FULL;
    if (base == bpf::SECCOMP_RET_KILL_PROCESS) {
      kill_process(*task.process, 128 + kSigsys, "seccomp: kill process");
      return false;
    }
    if (base == bpf::SECCOMP_RET_KILL_THREAD) {
      exit_task(task, 128 + kSigsys);
      return false;
    }
    if (base == bpf::SECCOMP_RET_ERRNO) {
      *forced_rax = errno_result(
          static_cast<std::int64_t>(decisive & bpf::SECCOMP_RET_DATA));
      return false;
    }
    if (base == bpf::SECCOMP_RET_TRAP) {
      if (from_host) {
        kill_process(*task.process, 128 + kSigsys,
                     "seccomp TRAP on host interposer syscall (recursion)");
        return false;
      }
      SigInfo info;
      info.signo = kSigsys;
      info.code = kSigsysSeccomp;
      info.syscall_nr = nr;
      for (std::size_t i = 0; i < 6; ++i) info.syscall_args[i] = args[i];
      info.ip_after_syscall = ip;
      deliver_signal(task, info);
      return false;
    }
    if (base == bpf::SECCOMP_RET_USER_NOTIF) {
      if (user_notif_) {
        // Supervisor round trip: two context switches plus handling. The
        // supervisor is interposer-runtime work, not kernel dispatch.
        ScopedCycleClass scope(task, CycleClass::kInterposer, kDetailUserNotif);
        charge(task, 2 * costs_.context_switch);
        *forced_rax = user_notif_(task, nr, args);
        return false;
      }
      *forced_rax = errno_result(kENOSYS);
      return false;
    }
    // TRACE/LOG/ALLOW fall through to SUD.
  }

  // 3. Syscall User Dispatch.
  if (task.sud.enabled) {
    charge(task, costs_.sud_range_check);
    // Linux checks the *instruction pointer at syscall entry* against the
    // allowlisted range (syscall_user_dispatch.c).
    if (!task.sud.in_allowed_range(ip)) {
      charge(task, costs_.sud_selector_read);
      std::uint8_t selector = kSudAllow;
      if (auto read = task.mem->read_force(task.sud.selector_addr, {&selector, 1});
          !read.is_ok()) {
        kill_process(*task.process, 139, "SUD: selector byte unreadable");
        return false;
      }
      if (selector == kSudBlock) {
        if (from_host) {
          kill_process(*task.process, 128 + kSigsys,
                       "recursive SUD interception of host interposer syscall "
                       "(selector left as BLOCK)");
          return false;
        }
        ++task.sud_sigsys_count;
        SigInfo info;
        info.signo = kSigsys;
        info.code = kSigsysUserDispatch;
        info.syscall_nr = nr;
        for (std::size_t i = 0; i < 6; ++i) info.syscall_args[i] = args[i];
        info.ip_after_syscall = ip;
        deliver_signal(task, info);
        return false;
      }
      if (selector != kSudAllow) {
        // Linux kills the task on an invalid selector value (SIGSYS).
        kill_process(*task.process, 128 + kSigsys, "SUD: invalid selector value");
        return false;
      }
    }
  }
  return true;
}

std::uint64_t Machine::dispatch(Task& task, std::uint64_t nr,
                                const std::array<std::uint64_t, 6>& args,
                                SyscallOrigin origin) {
  ++task.syscalls_dispatched;
  syscall_observers_.notify(task, nr, args, origin);
  std::uint64_t result = sys_dispatch_table(task, nr, args);

  // ptrace syscall-exit stop.
  if (task.runnable() && task.ptraced) {
    auto it = tracers_.find(task.tid);
    if (it != tracers_.end() && it->second.on_syscall_exit) {
      ScopedCycleClass scope(task, CycleClass::kInterposer, kDetailPtraceStop);
      charge(task, 2 * costs_.context_switch +
                       costs_.ptrace_requests_per_stop * costs_.ptrace_request);
      it->second.on_syscall_exit(task, task.ctx, nr, args, result);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Misc services
// ---------------------------------------------------------------------------

void Machine::charge(Task& task, std::uint64_t cycles) noexcept {
  task.cycles += cycles;
  // The machine-global counter is SMP-stale between barriers: lanes charge
  // only their own tasks, and run_smp recomputes the total from task sums at
  // every barrier. Writes from multiple lanes would race; per-task sums are
  // the ground truth either way.
  if (!smp_active_) total_cycles_ += cycles;
  // Every charged cycle is mirrored to the profiling sink — this is what
  // makes a profiler's per-class sums equal total_cycles() exactly. Runs of
  // charges sharing one (class, detail) attribution are coalesced into one
  // on_cycles call (a modeled syscall is many small charges under the same
  // attribution), so the per-charge mirror cost is two compares and an add.
  // Flushed on attribution change here and at every run-loop exit.
  auto* sink = profile_sink();
  if (sink == nullptr) return;
  // Same attribution epoch as the pending run: one compare, one add. (The
  // epoch bumps on every ScopedCycleClass boundary, so equal epochs imply
  // equal class and detail — all attribution writes go through that scope.)
  if (task.pending_epoch == task.attr_epoch && task.pending_cycles != 0) {
    task.pending_cycles += cycles;
    return;
  }
  if (task.pending_cycles != 0 && (task.pending_cls != task.cycle_class ||
                                   task.pending_detail != task.cycle_detail)) {
    sink->on_cycles(task, task.pending_cls, task.pending_detail,
                    task.pending_cycles);
    task.pending_cycles = 0;
  }
  task.pending_cls = task.cycle_class;
  task.pending_detail = task.cycle_detail;
  task.pending_epoch = task.attr_epoch;
  task.pending_cycles += cycles;
  task.pending_rbp = task.ctx.reg(isa::Gpr::rbp);
}

void Machine::flush_profile(Task& task) noexcept {
  if (task.pending_cycles == 0) return;
  if (auto* sink = profile_sink()) {
    sink->on_cycles(task, task.pending_cls, task.pending_detail,
                    task.pending_cycles);
  }
  task.pending_cycles = 0;
}

void Machine::flush_profile_mirror() noexcept {
  if (profile_sink_ == nullptr) return;
  for (auto& [tid, task] : tasks_) flush_profile(*task);
  for (auto& task : nursery_) flush_profile(*task);
}

cpu::DecodeCacheStats Machine::decode_cache_totals() const {
  cpu::DecodeCacheStats totals;
  auto add = [&totals](const Task& task) {
    const cpu::DecodeCacheStats& stats = task.dcache.stats();
    totals.hits += stats.hits;
    totals.misses += stats.misses;
    totals.invalidations += stats.invalidations;
    totals.flushes += stats.flushes;
  };
  for (const auto& [tid, task] : tasks_) add(*task);
  for (const auto& task : nursery_) add(*task);
  return totals;
}

cpu::BlockCacheStats Machine::block_cache_totals() const {
  cpu::BlockCacheStats totals;
  auto add = [&totals](const Task& task) {
    const cpu::BlockCacheStats& stats = task.bcache.stats();
    totals.hits += stats.hits;
    totals.misses += stats.misses;
    totals.invalidations += stats.invalidations;
    totals.flushes += stats.flushes;
    totals.blocks_built += stats.blocks_built;
  };
  for (const auto& [tid, task] : tasks_) add(*task);
  for (const auto& task : nursery_) add(*task);
  return totals;
}

cpu::TraceCacheStats Machine::trace_cache_totals() const {
  cpu::TraceCacheStats totals;
  auto add = [&totals](const Task& task) {
    const cpu::TraceCacheStats& stats = task.tcache.stats();
    totals.hits += stats.hits;
    totals.misses += stats.misses;
    totals.invalidations += stats.invalidations;
    totals.flushes += stats.flushes;
    totals.traces_built += stats.traces_built;
    totals.recordings_aborted += stats.recordings_aborted;
    totals.chain_follows += stats.chain_follows;
    totals.side_exits += stats.side_exits;
    totals.completions += stats.completions;
    totals.resumes += stats.resumes;
    totals.demotions += stats.demotions;
    totals.fused_fastpaths += stats.fused_fastpaths;
  };
  for (const auto& [tid, task] : tasks_) add(*task);
  for (const auto& task : nursery_) add(*task);
  return totals;
}

cpu::DataTlbStats Machine::data_tlb_totals() const {
  cpu::DataTlbStats totals;
  auto add = [&totals](const Task& task) {
    const cpu::DataTlbStats& stats = task.dtlb.stats();
    totals.read_hits += stats.read_hits;
    totals.read_fallbacks += stats.read_fallbacks;
    totals.write_hits += stats.write_hits;
    totals.write_fallbacks += stats.write_fallbacks;
  };
  for (const auto& [tid, task] : tasks_) add(*task);
  for (const auto& task : nursery_) add(*task);
  return totals;
}

void Machine::attach_tracer(Tid tid, TracerHooks hooks) {
  if (Task* task = find_task(tid)) {
    task->ptraced = true;
    tracers_[tid] = std::move(hooks);
  }
}

void Machine::detach_tracer(Tid tid) {
  if (Task* task = find_task(tid)) task->ptraced = false;
  tracers_.erase(tid);
}

void Machine::kill_process(Process& process, int exit_code,
                           const std::string& reason) {
  LZP_LOG_DEBUG << "kill_process pid=" << process.pid << ": " << reason;
  {
    // Two SMP lanes can each kill their own process concurrently; the shared
    // diagnostic slot needs the lock (last writer wins, as in a real kernel
    // log). Everything else here touches only this process's tasks, which
    // gang placement keeps on the calling CPU.
    std::lock_guard<std::mutex> lock(fatal_mu_);
    last_fatal_ = reason;
  }
  process.exited = true;
  process.exit_code = exit_code;
  for (auto& [tid, task] : tasks_) {
    if (task->process.get() == &process) {
      task->state = TaskState::kExited;
      task->exit_code = exit_code;
    }
  }
  std::lock_guard<std::mutex> lock(nursery_mu_);
  for (auto& task : nursery_) {
    if (task->process.get() == &process) {
      task->state = TaskState::kExited;
      task->exit_code = exit_code;
    }
  }
}

void Machine::register_program(const isa::Program& program) {
  {
    std::lock_guard<std::mutex> lock(programs_mu_);
    programs_[program.name] = program;
  }
  // Install the on-disk image too (LZPF): execve can load it from the VFS
  // and file-oriented tools (static rewriters) can scan it like a binary.
  (void)vfs_.put_file(isa::program_path(program.name),
                      isa::serialize_program(program));
}

const isa::Program* Machine::find_program(const std::string& name) const {
  // The map is insert-only and std::map nodes are address-stable, so the
  // returned pointer outlives the lock; the lock serializes concurrent
  // execve image-cache fills from different SMP lanes.
  {
    std::lock_guard<std::mutex> lock(programs_mu_);
    auto it = programs_.find(name);
    if (it != programs_.end()) return &it->second;
  }
  // Fall back to an LZPF image in the VFS (installed without registration).
  const std::string path = isa::program_path(name);
  if (!vfs_.exists(path)) return nullptr;
  std::vector<std::uint8_t> bytes;
  auto meta = vfs_.stat(path);
  if (!meta.is_ok()) return nullptr;
  if (!vfs_.read(path, 0, meta.value().size, &bytes).is_ok()) return nullptr;
  auto parsed = isa::parse_program(bytes);
  if (!parsed.is_ok()) return nullptr;
  std::lock_guard<std::mutex> lock(programs_mu_);
  auto [inserted, ok] = programs_.emplace(name, std::move(parsed).value());
  return &inserted->second;
}

void Machine::adopt_task(std::unique_ptr<Task> task) {
  attach_dcache_probe(*task);
  std::lock_guard<std::mutex> lock(nursery_mu_);
  nursery_.push_back(std::move(task));
}

void Machine::attach_dcache_probe(Task& task) {
#ifndef LZP_TRACE_DISABLED
  // The Task is owned by a unique_ptr in tasks_/nursery_, so its address is
  // stable for the listener's whole lifetime.
  Task* t = &task;
  task.dcache.set_invalidation_listener([this, t](std::uint64_t rip) {
    if (auto* sink = trace_sink()) sink->on_decode_invalidation(*t, rip);
  });
  task.bcache.set_invalidation_listener([this, t](std::uint64_t rip) {
    if (auto* sink = trace_sink()) sink->on_block_invalidation(*t, rip);
  });
  task.tcache.set_invalidation_listener([this, t](std::uint64_t rip) {
    if (auto* sink = trace_sink()) sink->on_trace_invalidation(*t, rip);
  });
#else
  (void)task;
#endif
}

void Machine::note_task_switch(const Task& task) {
#ifndef LZP_TRACE_DISABLED
  if (task.tid != last_sliced_tid_) {
    if (auto* sink = trace_sink()) {
      sink->on_task_event(task, TraceSink::TaskEvent::kSwitch, 0);
    }
  }
  last_sliced_tid_ = task.tid;
#else
  (void)task;
#endif
}

// In SMP mode each simulated CPU allocates from its own disjoint range
// (1'000'000 * (cpu + 1) + n), so concurrent clones on different CPUs get
// reproducible ids without synchronization. The single-threaded 100+ range
// stays untouched, keeping legacy runs bit-identical.
Tid Machine::allocate_tid(unsigned cpu) {
  if (smp_active_) return smp_next_tid_[cpu]++;
  return next_tid_++;
}
Pid Machine::allocate_pid(unsigned cpu) {
  if (smp_active_) return smp_next_pid_[cpu]++;
  return next_pid_++;
}

}  // namespace lzp::kern
