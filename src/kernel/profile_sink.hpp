// The kernel-side profiling probe interface.
//
// A ProfileSink is the cycle-attribution hook the Machine reports into: every
// call to Machine::charge() is mirrored to on_cycles() tagged with the task's
// current attribution class, and the execution engines report guest
// instruction retirement sites (exactly per block when the superblock engine
// runs, per instruction under step_once). The mirror is coalesced: runs of
// consecutive charges sharing one (class, detail) attribution arrive as a
// single on_cycles call (flushed on every attribution change and at run-loop
// exit), so the per-charge cost is two compares and an add, not a virtual
// call. Because every charged cycle still passes through on_cycles, the
// per-class totals a sink accumulates sum to Machine::total_cycles() exactly
// whenever the machine is idle — the invariant examples/profile and
// bench/profile_overhead gate on.
//
// Probes never charge simulated cycles and never mutate machine state:
// attaching a sink must leave cycle/instruction counters bit-identical
// (tests/profile_test.cpp asserts this across all four mechanisms and under
// run_smp). The full-fat implementation is profile::Profiler (src/profile).
#pragma once

#include <cstdint>
#include <string_view>

namespace lzp::kern {

struct Task;

// Who a charged cycle belongs to. The split mirrors the paper's cost
// accounting: application work, interposer-runtime work (trampolines, SIGSYS
// handlers, host tracer stops, supervisors), kernel syscall-path work
// (entry/exit, dispatch, filters), and decorator work layered on the handler
// chain (the record/replay and policy subsystems).
enum class CycleClass : std::uint8_t {
  kGuest = 0,    // simulated application instructions + faults/signals
  kInterposer,   // host-bound runtime code: trampolines, handlers, tracers
  kKernel,       // syscall entry path: intercept checks, dispatch, filters
  kDecorator,    // handler decorators: record capture, policy enforcement
};
inline constexpr std::size_t kNumCycleClasses = 4;

[[nodiscard]] constexpr std::string_view to_string(CycleClass cls) noexcept {
  switch (cls) {
    case CycleClass::kGuest: return "guest";
    case CycleClass::kInterposer: return "interposer";
    case CycleClass::kKernel: return "kernel";
    case CycleClass::kDecorator: return "decorator";
  }
  return "?";
}

// Task::cycle_detail values that are not addresses/syscall numbers. The
// detail qualifies the class: for kKernel it is the syscall number being
// dispatched; for kInterposer it is the host binding address (>=
// Machine::kHostRegionBase) or one of the sentinels below; for kDecorator a
// decorator id (kDetailRecorder).
inline constexpr std::uint64_t kDetailNone = 0;
inline constexpr std::uint64_t kDetailPtraceStop = 1;
inline constexpr std::uint64_t kDetailUserNotif = 2;
inline constexpr std::uint64_t kDetailRecorder = 3;

class ProfileSink {
 public:
  virtual ~ProfileSink() = default;

  // Runtime gate, non-virtual so Machine::profile_sink() can filter a
  // disabled sink with a plain load (same pattern as TraceSink::enabled()).
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // Mirror of a run of Machine::charge(task, ...) calls that shared one
  // attribution: `cls`/`detail` are the class and qualifier the cycles were
  // charged under (passed explicitly — the task may have moved on by flush
  // time). Every charged cycle reaches exactly one on_cycles call, so
  // per-class sums are exact by construction.
  virtual void on_cycles(const Task&, CycleClass, std::uint64_t /*detail*/,
                         std::uint64_t /*cycles*/) {}

  // The superblock engine retired `retired` instructions of the block
  // starting at `block_start`, about to charge `cycles` for them — exact
  // per-block site attribution. Fired immediately *before* the matching
  // charge, so a sink can establish site/stack context that the charge's
  // on_cycles mirror is then folded under.
  virtual void on_guest_block(const Task&, std::uint64_t /*block_start*/,
                              std::uint32_t /*retired*/,
                              std::uint64_t /*cycles*/) {}

  // The step-engine site probe: step_once retired an instruction at `rip`,
  // and `cycles` is everything charged for guest instructions since the
  // previous probe. Fired on every step_sample_period()-th retirement
  // (period 1 — the default — makes it exactly per instruction, cycles the
  // single instruction's cost), immediately before the matching charge.
  virtual void on_guest_insn(const Task&, std::uint64_t /*rip*/,
                             std::uint64_t /*cycles*/) {}

  // How often the machine fires on_guest_insn under the step engine: every
  // Nth retired instruction per task, with the skipped instructions' cycles
  // batched onto the next probe (site-map sums stay exact; sites coarsen).
  // Read once at set_profile_sink time. The block engine ignores this — its
  // probe already amortizes to one call per superblock.
  [[nodiscard]] virtual std::uint64_t step_sample_period() const noexcept {
    return 1;
  }

 private:
  bool enabled_ = true;
};

}  // namespace lzp::kern
