#include "kernel/vfs.hpp"

#include <algorithm>

namespace lzp::kern {

Status Vfs::put_file(const std::string& path, std::vector<std::uint8_t> contents) {
  std::lock_guard<std::mutex> lock(mu_);
  Node node;
  node.meta.size = contents.size();
  node.meta.is_dir = false;
  node.contents = std::move(contents);
  nodes_[path] = std::move(node);
  return Status::ok();
}

Status Vfs::put_file_of_size(const std::string& path, std::uint64_t size) {
  std::vector<std::uint8_t> contents(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    contents[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 8));
  }
  return put_file(path, std::move(contents));
}

Status Vfs::mkdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.count(path) != 0) {
    return make_error(StatusCode::kAlreadyExists, "mkdir: " + path);
  }
  Node node;
  node.meta.is_dir = true;
  node.meta.mode = 0755;
  nodes_[path] = std::move(node);
  return Status::ok();
}

Status Vfs::unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.erase(path) == 0) {
    return make_error(StatusCode::kNotFound, "unlink: " + path);
  }
  return Status::ok();
}

Status Vfs::rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(from);
  if (it == nodes_.end()) {
    return make_error(StatusCode::kNotFound, "rename: " + from);
  }
  nodes_[to] = std::move(it->second);
  nodes_.erase(from);
  return Status::ok();
}

Status Vfs::chmod(const std::string& path, std::uint32_t mode) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return make_error(StatusCode::kNotFound, "chmod: " + path);
  }
  it->second.meta.mode = mode;
  return Status::ok();
}

bool Vfs::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.count(path) != 0;
}

Result<FileStat> Vfs::stat(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return make_error(StatusCode::kNotFound, "stat: " + path);
  }
  return it->second.meta;
}

Result<std::uint64_t> Vfs::read(const std::string& path, std::uint64_t offset,
                                std::uint64_t length,
                                std::vector<std::uint8_t>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return make_error(StatusCode::kNotFound, "read: " + path);
  }
  const auto& contents = it->second.contents;
  if (offset >= contents.size()) return std::uint64_t{0};
  const std::uint64_t n = std::min<std::uint64_t>(length, contents.size() - offset);
  if (out != nullptr) {
    out->assign(contents.begin() + static_cast<std::ptrdiff_t>(offset),
                contents.begin() + static_cast<std::ptrdiff_t>(offset + n));
  }
  return n;
}

Result<std::uint64_t> Vfs::write(const std::string& path, std::uint64_t offset,
                                 const std::vector<std::uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& node = nodes_[path];  // creates on first write, like O_CREAT
  node.meta.is_dir = false;
  if (node.contents.size() < offset + data.size()) {
    node.contents.resize(offset + data.size());
  }
  std::copy(data.begin(), data.end(),
            node.contents.begin() + static_cast<std::ptrdiff_t>(offset));
  node.meta.size = node.contents.size();
  return static_cast<std::uint64_t>(data.size());
}

std::vector<std::string> Vfs::list(const std::string& dir_path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  const std::string prefix = dir_path.empty() || dir_path.back() == '/'
                                 ? dir_path
                                 : dir_path + '/';
  for (const auto& [path, node] : nodes_) {
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        path.find('/', prefix.size()) == std::string::npos) {
      out.push_back(path.substr(prefix.size()));
    }
  }
  return out;
}

}  // namespace lzp::kern
