// Syscall handler implementations (the dispatch table).
#include <algorithm>
#include <set>
#include <cstring>

#include "bpf/seccomp_filter.hpp"
#include "kernel/machine.hpp"

namespace lzp::kern {
namespace {

constexpr std::uint64_t kMapFixed = 0x10;
constexpr std::uint64_t kOCreat = 0x40;

// Bounded user-memory C-string read (kernel strncpy_from_user).
Result<std::string> read_cstring(Task& task, std::uint64_t addr) {
  std::string out;
  for (std::size_t i = 0; i < 4096; ++i) {
    std::uint8_t byte = 0;
    if (auto fault = task.mem->read(addr + i, {&byte, 1})) {
      return make_error(StatusCode::kOutOfRange, fault->to_string());
    }
    if (byte == 0) return out;
    out.push_back(static_cast<char>(byte));
  }
  return make_error(StatusCode::kOutOfRange, "cstring too long");
}

bool write_user_u64(Task& task, std::uint64_t addr, std::uint64_t value) {
  std::uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  return !task.mem->write(addr, bytes).has_value();
}

bool read_user_u64(Task& task, std::uint64_t addr, std::uint64_t* value) {
  std::uint8_t bytes[8];
  if (task.mem->read(addr, bytes).has_value()) return false;
  std::memcpy(value, bytes, 8);
  return true;
}

// Resolves a path argument against the VFS (flat namespace; dirfd ignored).
Result<std::string> path_arg(Task& task, std::uint64_t addr) {
  return read_cstring(task, addr);
}

}  // namespace

std::uint64_t Machine::sys_dispatch_table(Task& task, std::uint64_t nr,
                                          const std::array<std::uint64_t, 6>& args) {
  Process& process = *task.process;
  auto fd_entry = [&](int fd) -> FdEntry* {
    auto it = process.fds.find(fd);
    return it == process.fds.end() ? nullptr : &it->second;
  };

  switch (nr) {
    // --- identity ------------------------------------------------------------
    case kSysGetpid:
      charge(task, costs_.dispatch_base);
      return process.pid;
    case kSysGettid:
      charge(task, costs_.dispatch_base);
      return task.tid;

    // --- exit ----------------------------------------------------------------
    case kSysExit:
      charge(task, costs_.dispatch_base);
      exit_task(task, static_cast<int>(args[0]));
      return 0;
    case kSysExitGroup:
      charge(task, costs_.dispatch_base);
      exit_process(task, static_cast<int>(args[0]));
      return 0;

    // --- memory ----------------------------------------------------------------
    case kSysMmap: {
      const std::uint64_t addr = args[0];
      const std::uint64_t length = args[1];
      const auto prot = static_cast<std::uint8_t>(args[2] & 0x7);
      const std::uint64_t flags = args[3];
      const bool fixed = (flags & kMapFixed) != 0;
      if (length == 0) return errno_result(kEINVAL);
      if (addr < mmap_min_addr) {
        // vm.mmap_min_addr: low mappings need privilege. Fixed low requests
        // fail (this is what breaks zpoline on default-configured systems);
        // hints are silently raised.
        if (fixed) return errno_result(kEPERM);
      }
      const std::uint64_t hint = fixed ? addr : std::max(addr, mmap_min_addr);
      auto mapped = task.mem->map(hint, length, prot, fixed);
      if (!mapped) return errno_result(fixed ? kEEXIST : kENOMEM);
      const std::uint64_t pages = mem::page_ceil(length) / mem::kPageSize;
      charge(task, costs_.dispatch_base + pages * costs_.mmap_page);
      return mapped.value();
    }
    case kSysMprotect: {
      const std::uint64_t pages = mem::page_ceil(args[1]) / mem::kPageSize;
      charge(task, costs_.dispatch_base + pages * costs_.mmap_page);
      auto status = task.mem->protect(args[0], args[1],
                                      static_cast<std::uint8_t>(args[2] & 0x7));
      return status.is_ok() ? 0 : errno_result(kENOMEM);
    }
    case kSysMunmap: {
      const std::uint64_t pages = mem::page_ceil(args[1]) / mem::kPageSize;
      charge(task, costs_.dispatch_base + pages * costs_.mmap_page);
      auto status = task.mem->unmap(args[0], args[1]);
      return status.is_ok() ? 0 : errno_result(kEINVAL);
    }
    case kSysBrk:
      charge(task, costs_.dispatch_base);
      return 0;  // modeled as a no-op; programs use mmap

    // --- files -----------------------------------------------------------------
    case kSysOpen:
    case kSysOpenat: {
      charge(task, costs_.dispatch_base);
      const std::uint64_t path_ptr = nr == kSysOpen ? args[0] : args[1];
      const std::uint64_t flags = nr == kSysOpen ? args[1] : args[2];
      auto path = path_arg(task, path_ptr);
      if (!path) return errno_result(kEFAULT);
      if (!vfs_.exists(path.value())) {
        if ((flags & kOCreat) == 0) return errno_result(kENOENT);
        (void)vfs_.put_file(path.value(), {});
      }
      FdEntry entry;
      entry.kind = FdEntry::Kind::kFile;
      entry.path = path.value();
      return static_cast<std::uint64_t>(process.install_fd(std::move(entry)));
    }
    case kSysClose: {
      charge(task, costs_.dispatch_base);
      FdEntry* entry = fd_entry(static_cast<int>(args[0]));
      if (entry == nullptr) return errno_result(kEBADF);
      if (entry->kind == FdEntry::Kind::kConn) {
        (void)net_.close_conn(entry->net_id);
        process.net_to_fd.erase(entry->net_id);
      }
      process.fds.erase(static_cast<int>(args[0]));
      return 0;
    }
    case kSysRead: {
      FdEntry* entry = fd_entry(static_cast<int>(args[0]));
      if (entry == nullptr) return errno_result(kEBADF);
      if (entry->kind == FdEntry::Kind::kConn) {
        return sys_dispatch_table(task, kSysRecvfrom, args);
      }
      if (entry->kind != FdEntry::Kind::kFile) return errno_result(kEINVAL);
      std::vector<std::uint8_t> data;
      auto n = vfs_.read(entry->path, entry->offset, args[2], &data);
      if (!n) return errno_result(kENOENT);
      charge(task, costs_.dispatch_base + costs_.copy_cost(n.value()));
      if (n.value() > 0 && task.mem->write(args[1], data).has_value()) {
        return errno_result(kEFAULT);
      }
      entry->offset += n.value();
      return n.value();
    }
    case kSysWrite: {
      const int fd = static_cast<int>(args[0]);
      const std::uint64_t len = args[2];
      if (fd == 1 || fd == 2) {
        std::vector<std::uint8_t> data(len);
        if (len > 0 && task.mem->read(args[1], data).has_value()) {
          return errno_result(kEFAULT);
        }
        charge(task, costs_.dispatch_base + costs_.copy_cost(len));
        process.console.append(data.begin(), data.end());
        return len;
      }
      FdEntry* entry = fd_entry(fd);
      if (entry == nullptr) return errno_result(kEBADF);
      if (entry->kind == FdEntry::Kind::kConn) {
        charge(task, costs_.dispatch_base + costs_.copy_cost(len) +
                         costs_.net_per_request / 4);
        auto sent = net_.send(entry->net_id, len);
        return sent ? sent.value() : errno_result(kEINVAL);
      }
      if (entry->kind != FdEntry::Kind::kFile) return errno_result(kEINVAL);
      std::vector<std::uint8_t> data(len);
      if (len > 0 && task.mem->read(args[1], data).has_value()) {
        return errno_result(kEFAULT);
      }
      charge(task, costs_.dispatch_base + costs_.copy_cost(len));
      auto n = vfs_.write(entry->path, entry->offset, data);
      if (!n) return errno_result(kEACCES);
      entry->offset += n.value();
      return n.value();
    }
    case kSysLseek: {
      charge(task, costs_.dispatch_base);
      FdEntry* entry = fd_entry(static_cast<int>(args[0]));
      if (entry == nullptr || entry->kind != FdEntry::Kind::kFile) {
        return errno_result(kEBADF);
      }
      auto meta = vfs_.stat(entry->path);
      if (!meta) return errno_result(kENOENT);
      const auto offset = static_cast<std::int64_t>(args[1]);
      switch (args[2]) {
        case 0: entry->offset = args[1]; break;                      // SEEK_SET
        case 1: entry->offset += static_cast<std::uint64_t>(offset); break;
        case 2: entry->offset = meta.value().size + static_cast<std::uint64_t>(offset); break;
        default: return errno_result(kEINVAL);
      }
      return entry->offset;
    }
    case kSysStat:
    case kSysFstat: {
      charge(task, costs_.dispatch_base);
      FileStat meta;
      if (nr == kSysStat) {
        auto path = path_arg(task, args[0]);
        if (!path) return errno_result(kEFAULT);
        auto st = vfs_.stat(path.value());
        if (!st) return errno_result(kENOENT);
        meta = st.value();
      } else {
        FdEntry* entry = fd_entry(static_cast<int>(args[0]));
        if (entry == nullptr) return errno_result(kEBADF);
        if (entry->kind == FdEntry::Kind::kFile) {
          auto st = vfs_.stat(entry->path);
          if (!st) return errno_result(kENOENT);
          meta = st.value();
        }
      }
      // Layout: size u64, mode u32, is_dir u32.
      if (!write_user_u64(task, args[1], meta.size)) return errno_result(kEFAULT);
      const std::uint64_t word =
          meta.mode | (static_cast<std::uint64_t>(meta.is_dir) << 32);
      if (!write_user_u64(task, args[1] + 8, word)) return errno_result(kEFAULT);
      return 0;
    }
    case kSysGetdents64: {
      FdEntry* entry = fd_entry(static_cast<int>(args[0]));
      if (entry == nullptr) return errno_result(kEBADF);
      const auto names = vfs_.list(entry->path);
      std::vector<std::uint8_t> blob;
      for (const auto& name : names) {
        blob.insert(blob.end(), name.begin(), name.end());
        blob.push_back(0);
      }
      if (blob.size() > args[2]) blob.resize(args[2]);
      charge(task, costs_.dispatch_base + costs_.copy_cost(blob.size()));
      if (!blob.empty() && task.mem->write(args[1], blob).has_value()) {
        return errno_result(kEFAULT);
      }
      return blob.size();
    }
    case kSysMkdir: {
      charge(task, costs_.dispatch_base);
      auto path = path_arg(task, args[0]);
      if (!path) return errno_result(kEFAULT);
      return vfs_.mkdir(path.value()).is_ok() ? 0 : errno_result(kEEXIST);
    }
    case kSysUnlink: {
      charge(task, costs_.dispatch_base);
      auto path = path_arg(task, args[0]);
      if (!path) return errno_result(kEFAULT);
      return vfs_.unlink(path.value()).is_ok() ? 0 : errno_result(kENOENT);
    }
    case kSysRename: {
      charge(task, costs_.dispatch_base);
      auto from = path_arg(task, args[0]);
      auto to = path_arg(task, args[1]);
      if (!from || !to) return errno_result(kEFAULT);
      return vfs_.rename(from.value(), to.value()).is_ok() ? 0
                                                            : errno_result(kENOENT);
    }
    case kSysChmod: {
      charge(task, costs_.dispatch_base);
      auto path = path_arg(task, args[0]);
      if (!path) return errno_result(kEFAULT);
      return vfs_.chmod(path.value(), static_cast<std::uint32_t>(args[1])).is_ok()
                 ? 0
                 : errno_result(kENOENT);
    }
    case kSysUtimensat:
      charge(task, costs_.dispatch_base);
      return 0;
    case kSysGetcwd: {
      charge(task, costs_.dispatch_base);
      static constexpr char kCwd[] = "/";
      if (args[1] < sizeof(kCwd)) return errno_result(kEINVAL);
      std::uint8_t bytes[sizeof(kCwd)];
      std::memcpy(bytes, kCwd, sizeof(kCwd));
      if (task.mem->write(args[0], bytes).has_value()) return errno_result(kEFAULT);
      return sizeof(kCwd);
    }
    case kSysDup: {
      charge(task, costs_.dispatch_base);
      FdEntry* entry = fd_entry(static_cast<int>(args[0]));
      if (entry == nullptr) return errno_result(kEBADF);
      return static_cast<std::uint64_t>(process.install_fd(*entry));
    }
    case kSysFcntl:
    case kSysIoctl:
      charge(task, costs_.dispatch_base);
      return 0;

    // --- networking ---------------------------------------------------------
    case kSysSocket: {
      charge(task, costs_.dispatch_base);
      FdEntry entry;
      entry.kind = FdEntry::Kind::kSpecial;
      return static_cast<std::uint64_t>(process.install_fd(std::move(entry)));
    }
    case kSysBind:
    case kSysListen:
    case kSysSetsockopt:
    case kSysShutdown:
      charge(task, costs_.dispatch_base);
      return 0;
    case kSysEpollCreate:
    case kSysEpollCreate1: {
      charge(task, costs_.dispatch_base);
      FdEntry entry;
      entry.kind = FdEntry::Kind::kEpoll;
      return static_cast<std::uint64_t>(process.install_fd(std::move(entry)));
    }
    case kSysEpollCtl: {
      charge(task, costs_.dispatch_base);
      FdEntry* epoll = fd_entry(static_cast<int>(args[0]));
      FdEntry* watched = fd_entry(static_cast<int>(args[2]));
      if (epoll == nullptr || epoll->kind != FdEntry::Kind::kEpoll ||
          watched == nullptr) {
        return errno_result(kEBADF);
      }
      if (watched->kind == FdEntry::Kind::kListener) {
        epoll->epoll_watch = watched->net_id;
      }
      return 0;
    }
    case kSysEpollWait: {
      charge(task, costs_.dispatch_base);
      notify_nondet(task, kSysEpollWait, NondetSource::kNet);
      FdEntry* epoll = fd_entry(static_cast<int>(args[0]));
      if (epoll == nullptr || epoll->kind != FdEntry::Kind::kEpoll) {
        return errno_result(kEBADF);
      }
      // Simplified contract (documented in DESIGN.md): returns ready fd + 1,
      // 1 when nothing is actionable for THIS process right now (other
      // workers own the live connections — retry), or 0 once the attached
      // client workload has fully completed.
      std::set<int> owned;
      for (const auto& [net_id, fd] : process.net_to_fd) owned.insert(net_id);
      const Net::Event event = net_.poll_for(epoll->epoll_watch, owned);
      switch (event.kind) {
        case Net::EventKind::kReadable: {
          auto it = process.net_to_fd.find(event.conn_id);
          if (it == process.net_to_fd.end()) return 1;
          return static_cast<std::uint64_t>(it->second) + 1;
        }
        case Net::EventKind::kAcceptable: {
          // Report the listener fd.
          for (const auto& [fd, entry] : process.fds) {
            if (entry.kind == FdEntry::Kind::kListener &&
                entry.net_id == epoll->epoll_watch) {
              return static_cast<std::uint64_t>(fd) + 1;
            }
          }
          return 1;
        }
        case Net::EventKind::kNone:
          return 1;  // live connections elsewhere: poll again
        case Net::EventKind::kFinished:
          return 0;
      }
      return 0;
    }
    case kSysAccept:
    case kSysAccept4: {
      charge(task, costs_.dispatch_base);
      notify_nondet(task, nr, NondetSource::kNet);
      FdEntry* listener = fd_entry(static_cast<int>(args[0]));
      if (listener == nullptr || listener->kind != FdEntry::Kind::kListener) {
        return errno_result(kEBADF);
      }
      auto conn = net_.accept(listener->net_id);
      if (!conn) return errno_result(kEAGAIN);
      FdEntry entry;
      entry.kind = FdEntry::Kind::kConn;
      entry.net_id = conn.value();
      const int fd = process.install_fd(std::move(entry));
      process.net_to_fd[conn.value()] = fd;
      return static_cast<std::uint64_t>(fd);
    }
    case kSysRecvfrom: {
      notify_nondet(task, kSysRecvfrom, NondetSource::kNet);
      FdEntry* entry = fd_entry(static_cast<int>(args[0]));
      if (entry == nullptr || entry->kind != FdEntry::Kind::kConn) {
        return errno_result(kEBADF);
      }
      auto n = net_.recv(entry->net_id, args[2]);
      if (!n) return errno_result(kEAGAIN);
      charge(task, costs_.dispatch_base + costs_.copy_cost(n.value()) +
                       (n.value() > 0 ? costs_.net_per_request : 0));
      if (n.value() > 0) {
        std::vector<std::uint8_t> data(n.value(), 'G');
        if (task.mem->write(args[1], data).has_value()) {
          return errno_result(kEFAULT);
        }
      }
      return n.value();
    }
    case kSysSendfile: {
      FdEntry* out = fd_entry(static_cast<int>(args[0]));
      FdEntry* in = fd_entry(static_cast<int>(args[1]));
      if (out == nullptr || in == nullptr ||
          out->kind != FdEntry::Kind::kConn ||
          in->kind != FdEntry::Kind::kFile) {
        return errno_result(kEBADF);
      }
      auto meta = vfs_.stat(in->path);
      if (!meta) return errno_result(kENOENT);
      const std::uint64_t remaining =
          in->offset >= meta.value().size ? 0 : meta.value().size - in->offset;
      const std::uint64_t n = std::min(args[3], remaining);
      charge(task, costs_.dispatch_base + costs_.copy_cost(n));
      (void)net_.send(out->net_id, n);
      in->offset += n;
      return n;
    }
    case kSysWritev: {
      FdEntry* entry = fd_entry(static_cast<int>(args[0]));
      const std::uint64_t iov_ptr = args[1];
      const std::uint64_t iovcnt = args[2];
      std::uint64_t total = 0;
      std::string gathered;
      for (std::uint64_t i = 0; i < iovcnt && i < 64; ++i) {
        std::uint64_t base = 0;
        std::uint64_t len = 0;
        if (!read_user_u64(task, iov_ptr + i * 16, &base) ||
            !read_user_u64(task, iov_ptr + i * 16 + 8, &len)) {
          return errno_result(kEFAULT);
        }
        total += len;
        if (entry == nullptr && len > 0 && len <= 4096) {
          std::vector<std::uint8_t> data(len);
          if (!task.mem->read(base, data).has_value()) {
            gathered.append(data.begin(), data.end());
          }
        }
      }
      charge(task, costs_.dispatch_base + costs_.copy_cost(total));
      const int fd = static_cast<int>(args[0]);
      if (fd == 1 || fd == 2) {
        process.console += gathered;
        return total;
      }
      if (entry != nullptr && entry->kind == FdEntry::Kind::kConn) {
        auto sent = net_.send(entry->net_id, total);
        return sent ? sent.value() : errno_result(kEINVAL);
      }
      return total;
    }
    case kSysPipe2: {
      charge(task, costs_.dispatch_base);
      FdEntry reader;
      reader.kind = FdEntry::Kind::kSpecial;
      FdEntry writer;
      writer.kind = FdEntry::Kind::kSpecial;
      const int rfd = process.install_fd(std::move(reader));
      const int wfd = process.install_fd(std::move(writer));
      if (!write_user_u64(task, args[0],
                          static_cast<std::uint64_t>(rfd) |
                              (static_cast<std::uint64_t>(wfd) << 32))) {
        return errno_result(kEFAULT);
      }
      return 0;
    }

    // --- signals -----------------------------------------------------------
    case kSysRtSigaction: {
      charge(task, costs_.sigaction);
      const int sig = static_cast<int>(args[0]);
      if (sig <= 0 || sig >= kNumSignals || sig == kSigkill) {
        return errno_result(kEINVAL);
      }
      // struct: handler u64, flags u64, mask u64.
      if (args[2] != 0) {  // oldact
        const SigAction& old = process.sigactions[sig];
        if (!write_user_u64(task, args[2], old.handler) ||
            !write_user_u64(task, args[2] + 8, old.flags) ||
            !write_user_u64(task, args[2] + 16, old.mask)) {
          return errno_result(kEFAULT);
        }
      }
      if (args[1] != 0) {  // act
        SigAction action;
        if (!read_user_u64(task, args[1], &action.handler) ||
            !read_user_u64(task, args[1] + 8, &action.flags) ||
            !read_user_u64(task, args[1] + 16, &action.mask)) {
          return errno_result(kEFAULT);
        }
        process.sigactions[sig] = action;
      }
      return 0;
    }
    case kSysRtSigprocmask: {
      charge(task, costs_.dispatch_base);
      if (args[2] != 0 && !write_user_u64(task, args[2], task.sigmask)) {
        return errno_result(kEFAULT);
      }
      if (args[1] != 0) {
        std::uint64_t set = 0;
        if (!read_user_u64(task, args[1], &set)) return errno_result(kEFAULT);
        switch (args[0]) {
          case 0: task.sigmask |= set; break;   // SIG_BLOCK
          case 1: task.sigmask &= ~set; break;  // SIG_UNBLOCK
          case 2: task.sigmask = set; break;    // SIG_SETMASK
          default: return errno_result(kEINVAL);
        }
      }
      return 0;
    }
    case kSysSigaltstack: {
      charge(task, costs_.dispatch_base);
      if (args[1] != 0) {
        if (!write_user_u64(task, args[1], task.altstack.base) ||
            !write_user_u64(task, args[1] + 8, task.altstack.size)) {
          return errno_result(kEFAULT);
        }
      }
      if (args[0] != 0) {
        AltStack stack;
        if (!read_user_u64(task, args[0], &stack.base) ||
            !read_user_u64(task, args[0] + 8, &stack.size)) {
          return errno_result(kEFAULT);
        }
        task.altstack = stack;
      }
      return 0;
    }
    case kSysRtSigreturn:
      return do_rt_sigreturn(task);
    case kSysKill:
    case kSysTgkill: {
      charge(task, costs_.dispatch_base);
      const std::uint64_t target_id = nr == kSysKill ? args[0] : args[1];
      const int sig = static_cast<int>(nr == kSysKill ? args[1] : args[2]);
      for (auto& [tid, other] : tasks_) {
        const bool match = nr == kSysKill ? other->process->pid == target_id
                                          : other->tid == target_id;
        if (match && other->runnable()) {
          SigInfo info;
          info.signo = sig;
          if (smp_active_ && other->cpu != task.cpu) {
            // Cross-CPU send: a deterministic IPI through the barrier mailbox
            // rather than a racy push into a task another lane is executing.
            smp_post_remote_signal(task, other->tid, info);
          } else {
            other->pending_signals.push_back(info);
          }
          return 0;
        }
      }
      return errno_result(kENOENT);
    }

    // --- process creation -----------------------------------------------------
    case kSysFork:
    case kSysVfork:
      return do_clone(task, 0, 0);
    case kSysClone:
      return do_clone(task, args[0], args[1]);
    case kSysExecve:
      return do_execve(task, args[0]);

    // --- interception control ---------------------------------------------------
    case kSysPrctl: {
      charge(task, costs_.dispatch_base);
      if (args[0] == kPrSetSyscallUserDispatch) {
        if (args[1] == kPrSysDispatchOff) {
          task.sud = SudState{};
          return 0;
        }
        if (args[1] == kPrSysDispatchOn) {
          std::uint8_t probe = 0;
          if (!task.mem->read_force(args[4], {&probe, 1}).is_ok()) {
            return errno_result(kEFAULT);
          }
          task.sud.enabled = true;
          task.sud.allow_start = args[2];
          task.sud.allow_len = args[3];
          task.sud.selector_addr = args[4];
          return 0;
        }
        return errno_result(kEINVAL);
      }
      return errno_result(kEINVAL);
    }
    case kSysArchPrctl: {
      charge(task, costs_.dispatch_base);
      if (args[0] == kArchSetGs) {
        task.ctx.gs_base = args[1];
        return 0;
      }
      if (args[0] == kArchGetGs) {
        return write_user_u64(task, args[1], task.ctx.gs_base)
                   ? 0
                   : errno_result(kEFAULT);
      }
      return errno_result(kEINVAL);
    }
    case kSysSeccomp: {
      charge(task, costs_.dispatch_base);
      if (args[0] != kSeccompSetModeFilter) return errno_result(kEINVAL);
      // struct sock_fprog (sim layout): len u64, insn pointer u64.
      std::uint64_t len = 0;
      std::uint64_t insns_ptr = 0;
      if (!read_user_u64(task, args[2], &len) ||
          !read_user_u64(task, args[2] + 8, &insns_ptr)) {
        return errno_result(kEFAULT);
      }
      if (len == 0 || len > bpf::kMaxProgramLength) return errno_result(kEINVAL);
      std::vector<bpf::Insn> program(len);
      for (std::uint64_t i = 0; i < len; ++i) {
        std::uint64_t word = 0;
        if (!read_user_u64(task, insns_ptr + i * 8, &word)) {
          return errno_result(kEFAULT);
        }
        program[i].code = static_cast<std::uint16_t>(word & 0xFFFF);
        program[i].jt = static_cast<std::uint8_t>((word >> 16) & 0xFF);
        program[i].jf = static_cast<std::uint8_t>((word >> 24) & 0xFF);
        program[i].k = static_cast<std::uint32_t>(word >> 32);
      }
      if (!bpf::validate(program, bpf::SeccompData::kSize).is_ok()) {
        return errno_result(kEINVAL);
      }
      task.seccomp.push_back(
          std::make_shared<const std::vector<bpf::Insn>>(std::move(program)));
      return 0;
    }
    case kSysPtrace:
      charge(task, costs_.dispatch_base);
      return errno_result(kENOSYS);  // tracers are modeled host-side

    // --- misc ---------------------------------------------------------------
    case kSysGetrandom: {
      const std::uint64_t len = std::min<std::uint64_t>(args[1], 4096);
      charge(task, costs_.dispatch_base + costs_.copy_cost(len));
      notify_nondet(task, kSysGetrandom, NondetSource::kRng);
      std::vector<std::uint8_t> data(len);
      for (std::size_t i = 0; i < data.size(); i += 8) {
        // SMP lanes draw from per-task streams: the machine-global stream
        // would both race and make results depend on cross-CPU interleaving.
        const std::uint64_t word =
            smp_active_ ? task.smp_rng.next() : rng_.next();
        for (std::size_t j = 0; j < 8 && i + j < data.size(); ++j) {
          data[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
        }
      }
      if (len > 0 && task.mem->write(args[0], data).has_value()) {
        return errno_result(kEFAULT);
      }
      return len;
    }
    case kSysSetTidAddress:
      charge(task, costs_.dispatch_base);
      task.clear_child_tid = args[0];
      return task.tid;
    case kSysSetRobustList:
      charge(task, costs_.dispatch_base);
      task.robust_list_head = args[0];
      return 0;
    case kSysClockGettime: {
      charge(task, costs_.dispatch_base);
      notify_nondet(task, kSysClockGettime, NondetSource::kTime);
      const std::uint64_t ns = task.cycles;  // 1 cycle == 1 ns at "1 GHz"
      if (!write_user_u64(task, args[1], ns / 1'000'000'000ULL) ||
          !write_user_u64(task, args[1] + 8, ns % 1'000'000'000ULL)) {
        return errno_result(kEFAULT);
      }
      return 0;
    }
    case kSysNanosleep:
      charge(task, costs_.dispatch_base + 1000);
      return 0;
    case kSysSchedYield:
    case kSysFutex:
      charge(task, costs_.dispatch_base);
      return 0;

    default:
      charge(task, costs_.dispatch_nosys);
      return errno_result(kENOSYS);
  }
}

std::uint64_t Machine::do_clone(Task& parent, std::uint64_t flags,
                                std::uint64_t stack) {
  charge(parent, costs_.fork_base);

  auto child = std::make_unique<Task>();
  child->tid = allocate_tid(parent.cpu);
  child->ctx = parent.ctx;  // rip already past the syscall instruction
  child->ctx.set_syscall_result(0);
  // SMP: children are born on the parent's CPU (the barrier may rebalance
  // them later) with their own tid-derived entropy stream.
  child->cpu = parent.cpu;
  child->smp_rng = Xoshiro256{smp_seed_ ^ (0x9E3779B97F4A7C15ULL *
                                           static_cast<std::uint64_t>(child->tid))};

  if ((flags & kCloneVm) != 0) {
    child->mem = parent.mem;
  } else {
    child->mem = parent.mem->clone();
    charge(parent, parent.mem->mapped_page_count() * costs_.mmap_page / 4);
  }
  if ((flags & kCloneThread) != 0) {
    child->process = parent.process;
  } else {
    child->process = parent.process->fork_copy(allocate_pid(parent.cpu));
  }
  if (stack != 0) child->ctx.set_rsp(stack);

  // SUD is per-task and NOT inherited (paper §IV-B): the child starts with
  // dispatch off, and an exhaustive interposer must re-enable it.
  child->sud = SudState{};
  // seccomp filters are inherited (and can never be removed).
  child->seccomp = parent.seccomp;
  // Signal mask is inherited; pending signals and frames are not.
  child->sigmask = parent.sigmask;
  child->altstack = parent.altstack;

  const Tid child_tid = child->tid;
  adopt_task(std::move(child));
  if (auto* sink = trace_sink()) {
    sink->on_task_event(parent, TraceSink::TaskEvent::kClone, child_tid);
  }
  return child_tid;
}

std::uint64_t Machine::do_execve(Task& task, std::uint64_t path_ptr) {
  auto name = read_cstring(task, path_ptr);
  if (!name) return errno_result(kEFAULT);
  const isa::Program* program = find_program(name.value());
  if (program == nullptr) return errno_result(kENOENT);
  charge(task, costs_.execve_base);

  // Fresh image: new address space, reset registers and xstate. The decode
  // cache is flushed explicitly; its asid check would catch the swap anyway,
  // but an eager flush keeps no stale entries alive across the exec.
  task.dcache.flush();
  task.mem = std::make_shared<mem::AddressSpace>();
  (void)task.mem->map(program->base, program->image.size(),
                      mem::kProtRead | mem::kProtExec, /*fixed=*/true);
  (void)task.mem->write_force(program->base, program->image);
  (void)task.mem->map(kDataRegionBase, kDataRegionSize,
                      mem::kProtRead | mem::kProtWrite, /*fixed=*/true);
  const std::uint64_t stack_size = std::max<std::uint64_t>(program->stack_size, 4096);
  (void)task.mem->map(kStackTop - stack_size, stack_size,
                      mem::kProtRead | mem::kProtWrite, /*fixed=*/true);

  task.ctx = cpu::CpuContext{};
  task.ctx.rip = program->entry;
  task.ctx.set_rsp(kStackTop - 64);

  // Handlers revert to default; SUD is cleared (paper §IV-B); seccomp
  // filters deliberately survive (paper §IV-A on seccomp's inflexibility).
  task.process->sigactions.fill(SigAction{});
  task.process->program_name = program->name;
  task.signal_frames.clear();
  task.pending_signals.clear();
  task.sigmask = 0;
  task.altstack = AltStack{};
  task.sud = SudState{};

  if (auto* sink = trace_sink()) {
    sink->on_task_event(task, TraceSink::TaskEvent::kExecve, 0);
  }
  if (preload_) preload_(*this, task, *program);
  return 0;
}

}  // namespace lzp::kern
