// Signal numbers, dispositions, signal frames. Models the slice of Linux
// signal semantics that SUD-based interposition depends on: SIGSYS delivery
// with syscall info, handler invocation on the (alt)stack, the saved user
// context (including extended state, which the kernel preserves on the
// frame), and rt_sigreturn restoring it — possibly to a *modified* context,
// which is how lazypoline redirects execution out of its SIGSYS handler
// (paper §IV-A "selector-only SUD").
#pragma once

#include <cstdint>
#include <string_view>

#include "cpu/context.hpp"

namespace lzp::kern {

enum Signal : int {
  kSigill = 4,
  kSigfpe = 8,
  kSigtrap = 5,
  kSigbus = 7,
  kSigkill = 9,
  kSigusr1 = 10,
  kSigsegv = 11,
  kSigusr2 = 12,
  kSigpipe = 13,
  kSigalrm = 14,
  kSigterm = 15,
  kSigchld = 17,
  kSigsys = 31,
  kNumSignals = 65,
};

[[nodiscard]] constexpr std::string_view signal_name(int sig) noexcept {
  switch (sig) {
    case kSigill: return "SIGILL";
    case kSigfpe: return "SIGFPE";
    case kSigtrap: return "SIGTRAP";
    case kSigbus: return "SIGBUS";
    case kSigkill: return "SIGKILL";
    case kSigusr1: return "SIGUSR1";
    case kSigsegv: return "SIGSEGV";
    case kSigusr2: return "SIGUSR2";
    case kSigpipe: return "SIGPIPE";
    case kSigalrm: return "SIGALRM";
    case kSigterm: return "SIGTERM";
    case kSigchld: return "SIGCHLD";
    case kSigsys: return "SIGSYS";
    default: return "SIG?";
  }
}

// si_code values we model.
inline constexpr int kSigsysUserDispatch = 2;  // SYS_USER_DISPATCH
inline constexpr int kSigsysSeccomp = 1;       // SYS_SECCOMP

struct SigInfo {
  int signo = 0;
  int code = 0;
  // For SIGSYS: the attempted syscall number and argument snapshot.
  std::uint64_t syscall_nr = 0;
  std::uint64_t syscall_args[6] = {};
  // Address *after* the syscall instruction (the saved rip; SUD rewriters
  // subtract the 2-byte encoding to locate the site).
  std::uint64_t ip_after_syscall = 0;
  // For SIGSEGV/SIGBUS: faulting address.
  std::uint64_t fault_addr = 0;
  // True for signals injected from outside the simulation (Machine::post_signal).
  // Internal signals (SIGSYS, faults, kill) recur naturally during replay;
  // external ones must be re-posted by the replayer at the recorded point.
  bool external = false;
};

inline constexpr std::uint64_t kSaSiginfo = 0x4;
inline constexpr std::uint64_t kSaOnstack = 0x08000000;
inline constexpr std::uint64_t kSigDfl = 0;
inline constexpr std::uint64_t kSigIgn = 1;

struct SigAction {
  std::uint64_t handler = kSigDfl;  // code address (sim or host-bound)
  std::uint64_t flags = 0;
  std::uint64_t mask = 0;  // signals blocked while the handler runs
};

struct AltStack {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  [[nodiscard]] bool valid() const noexcept { return base != 0 && size != 0; }
};

// A signal frame. The real kernel materializes this on the user stack; we
// keep it kernel-side per task (a stack of frames for nested signals) and
// hand the *handler* a mutable reference — equivalent to the handler
// dereferencing its ucontext_t argument, which is how lazypoline rewrites
// REG_RIP before sigreturn.
struct SignalFrame {
  cpu::CpuContext saved_context;  // full context incl. xstate, like the FPU
                                  // area of a real rt_sigframe
  std::uint64_t saved_sigmask = 0;
  SigInfo info{};
};

}  // namespace lzp::kern
