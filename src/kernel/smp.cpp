// Machine::run_smp — the SMP scheduler (see kernel/smp.hpp for the model).
//
// Structure: a barrier-round loop. Each iteration runs one *parallel phase*
// (every simulated CPU executes rounds_per_barrier round-robin passes over
// its own run queue on the host thread pool) followed by one *serial phase*
// (counter reconciliation, cross-CPU signal drain, clone-child placement,
// SMC/TLB shootdowns, queue pruning). All cross-CPU decisions happen in the
// serial phase in sorted order, which is what makes a gang-placed run a pure
// function of (programs, seed, cpus).
#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "base/thread_pool.hpp"
#include "kernel/machine.hpp"

namespace lzp::kern {

namespace {

// Gang grouping: a union-find over tasks where sharing an address space
// (CLONE_VM) or a process (CLONE_THREAD) joins two tasks. Groups are the
// placement unit — they move between CPUs whole, so sharing-dependent
// execution stays sequential within one lane.
class GangGroups {
 public:
  explicit GangGroups(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void join(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Per-CPU execution lane counters, padded so two host threads never share a
// cache line while counting.
struct alignas(64) Lane {
  std::uint64_t steps = 0;
  std::uint64_t slices = 0;
};

constexpr std::uint64_t kSmpIdBase = 1'000'000;
constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

}  // namespace

void Machine::smp_post_remote_signal(Task& sender, Tid target,
                                     const SigInfo& info) {
  std::lock_guard<std::mutex> lock(mailbox_mu_);
  signal_mailbox_.push_back(
      RemoteSignal{target, sender.tid, sender.smp_sig_seq++, info});
}

SmpStats Machine::run_smp(const SmpConfig& config,
                          std::uint64_t max_total_steps) {
  const unsigned cpus = config.cpus == 0 ? 1 : config.cpus;
  if (cpus == 1) {
    // One CPU is, by definition, the single-threaded machine.
    const RunStats stats = run(max_total_steps);
    SmpStats out;
    out.insns = stats.insns;
    out.all_exited = stats.all_exited;
    out.cpus.resize(1);
    out.cpus[0].tasks = live_task_count();
    for (const Tid tid : task_ids()) out.placement.emplace_back(tid, 0);
    return out;
  }

  SmpStats out;
  out.cpus.resize(cpus);
  smp_seed_ = config.seed;
  // Per-CPU id ranges persist across runs on one machine, so a second
  // run_smp never reissues a tid that is still resident in tasks_.
  while (smp_next_tid_.size() < cpus) {
    const auto cpu = static_cast<std::uint64_t>(smp_next_tid_.size());
    smp_next_tid_.push_back(static_cast<Tid>(kSmpIdBase * (cpu + 1)));
    smp_next_pid_.push_back(static_cast<Pid>(kSmpIdBase * (cpu + 1)));
  }

  Xoshiro256 place_rng(config.seed);
  std::vector<std::vector<Task*>> queues(cpus);

  // Places a batch of tasks: gang mode keeps sharers together (preferring a
  // CPU a sharer already lives on), everything else draws a seeded CPU.
  // Batches are processed in tid order so placement is reproducible.
  auto place_batch = [&](std::vector<Task*> batch) {
    std::sort(batch.begin(), batch.end(),
              [](const Task* a, const Task* b) { return a->tid < b->tid; });
    // Union-find over the batch plus pins to already-placed sharers.
    GangGroups groups(batch.size());
    std::map<const void*, std::size_t> owner;  // AS / Process -> batch index
    std::vector<int> pinned(batch.size(), -1);
    if (config.gang_shared) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        for (const void* key : {static_cast<const void*>(batch[i]->mem.get()),
                                static_cast<const void*>(batch[i]->process.get())}) {
          auto [it, inserted] = owner.emplace(key, i);
          if (!inserted) groups.join(i, it->second);
        }
      }
      // A batch task sharing with an already-resident task is pinned to that
      // task's CPU (children normally arrive pre-pinned via parent.cpu; this
      // also covers tasks load()ed between runs).
      for (unsigned c = 0; c < cpus; ++c) {
        for (const Task* resident : queues[c]) {
          for (std::size_t i = 0; i < batch.size(); ++i) {
            if (batch[i]->mem == resident->mem ||
                batch[i]->process == resident->process) {
              pinned[i] = static_cast<int>(c);
            }
          }
        }
      }
    }
    // One seeded draw per group root, in batch order; pins win over draws.
    std::map<std::size_t, unsigned> root_cpu;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::size_t root = config.gang_shared ? groups.find(i) : i;
      auto it = root_cpu.find(root);
      if (it == root_cpu.end()) {
        it = root_cpu
                 .emplace(root, static_cast<unsigned>(place_rng.next_below(cpus)))
                 .first;
      }
      if (pinned[i] >= 0) it->second = static_cast<unsigned>(pinned[i]);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Task* task = batch[i];
      const std::size_t root = config.gang_shared ? groups.find(i) : i;
      const unsigned cpu = root_cpu.at(root);
      task->cpu = cpu;
      task->smp_rng =
          Xoshiro256{config.seed ^ (kGolden * static_cast<std::uint64_t>(task->tid))};
      task->smp_seen_code_gen = task->mem->code_gen();
      task->smp_seen_layout_gen = task->mem->layout_gen();
      queues[cpu].push_back(task);
      out.placement.emplace_back(task->tid, cpu);
    }
  };

  // Deterministic work stealing: move whole gang groups from the fullest
  // queue to the emptiest until the task-count spread is <= 1. Runs in the
  // serial phase only, so "stealing" is a rebalance decision, not a race.
  auto rebalance = [&] {
    for (std::size_t guard = 0; guard < out.placement.size() + cpus; ++guard) {
      unsigned max_cpu = 0;
      unsigned min_cpu = 0;
      for (unsigned c = 1; c < cpus; ++c) {
        if (queues[c].size() > queues[max_cpu].size()) max_cpu = c;
        if (queues[c].size() < queues[min_cpu].size()) min_cpu = c;
      }
      if (queues[max_cpu].size() - queues[min_cpu].size() <= 1) return;
      // The movable unit is a whole gang group (all sharers are co-resident
      // on the donor by the gang invariant, so grouping within the donor's
      // queue is exact): find the donor's smallest group (ties: lowest
      // leader tid) that still helps when moved.
      std::vector<Task*>& donor = queues[max_cpu];
      GangGroups donor_groups(donor.size());
      if (config.gang_shared) {
        std::map<const void*, std::size_t> donor_owner;
        for (std::size_t i = 0; i < donor.size(); ++i) {
          for (const void* key :
               {static_cast<const void*>(donor[i]->mem.get()),
                static_cast<const void*>(donor[i]->process.get())}) {
            auto [it, inserted] = donor_owner.emplace(key, i);
            if (!inserted) donor_groups.join(i, it->second);
          }
        }
      }
      std::map<std::size_t, std::vector<Task*>> by_group;
      for (std::size_t i = 0; i < donor.size(); ++i) {
        by_group[config.gang_shared ? donor_groups.find(i) : i].push_back(
            donor[i]);
      }
      std::vector<Task*>* best = nullptr;
      Tid best_tid = 0;
      for (auto& [key, members] : by_group) {
        const Tid leader = members.front()->tid;
        if (best == nullptr || members.size() < best->size() ||
            (members.size() == best->size() && leader < best_tid)) {
          best = &members;
          best_tid = leader;
        }
      }
      const std::size_t moved = best->size();
      if (queues[max_cpu].size() - moved < queues[min_cpu].size() + moved &&
          moved > 1) {
        return;  // moving the group would just flip the imbalance
      }
      for (Task* task : *best) {
        task->cpu = min_cpu;
        queues[min_cpu].push_back(task);
        out.placement.emplace_back(task->tid, min_cpu);
      }
      std::erase_if(queues[max_cpu], [&](Task* task) {
        return std::find(best->begin(), best->end(), task) != best->end();
      });
      ++out.steals;
    }
  };

  auto reconcile_counters = [&] {
    std::uint64_t insns = 0;
    std::uint64_t cycles = 0;
    for (const auto& [tid, task] : tasks_) {
      insns += task->insns_retired;
      cycles += task->cycles;
    }
    for (const auto& task : nursery_) {
      insns += task->insns_retired;
      cycles += task->cycles;
    }
    total_insns_ = insns;
    total_cycles_ = cycles;
  };

  // Non-gang soundness: CLONE_VM siblings on different CPUs serialize at
  // slice granularity through a per-address-space lock, then a per-process
  // lock — the fixed AS -> Process order (each slice holds exactly one of
  // each, and process locks are only ever taken under an AS lock, so the
  // hierarchy cannot cycle). The registries are built in serial phases;
  // a mid-slice execve swaps in a brand-new (necessarily private) space,
  // which safely runs unlocked until the next barrier registers it.
  std::map<const void*, std::unique_ptr<std::mutex>> as_locks;
  std::map<const void*, std::unique_ptr<std::mutex>> proc_locks;
  auto register_slice_locks = [&] {
    if (config.gang_shared) return;
    for (auto& [tid, task] : tasks_) {
      if (as_locks.find(task->mem.get()) == as_locks.end()) {
        as_locks.emplace(task->mem.get(), std::make_unique<std::mutex>());
      }
      if (proc_locks.find(task->process.get()) == proc_locks.end()) {
        proc_locks.emplace(task->process.get(), std::make_unique<std::mutex>());
      }
    }
  };

  // Initial placement: every resident task, in tid order.
  merge_nursery();
  {
    std::vector<Task*> batch;
    for (auto& [tid, task] : tasks_) {
      if (task->runnable()) batch.push_back(task.get());
    }
    place_batch(std::move(batch));
    rebalance();
    register_slice_locks();
  }

  // Lane count: enough host threads to use the machine's cores (and to give
  // TSan real concurrency on small hosts), without one thread per simulated
  // CPU when sweeping datacenter-scale configs.
  ThreadPool pool(std::min(cpus, std::max(ThreadPool::host_cores(), 8U)));
  std::vector<Lane> lanes(cpus);

  const std::uint64_t deadline = total_steps_ + max_total_steps;
  // Previous-barrier lane counters, so each timeline sample carries this
  // round's per-CPU deltas rather than running totals.
  std::vector<std::uint64_t> prev_steps(cpus, 0);
  std::vector<std::uint64_t> prev_slices(cpus, 0);
  smp_active_ = true;
  while (total_steps_ < deadline) {
    bool any_runnable = false;
    for (unsigned c = 0; c < cpus && !any_runnable; ++c) {
      for (Task* task : queues[c]) {
        if (task->runnable()) {
          any_runnable = true;
          break;
        }
      }
    }
    if (!any_runnable) break;

    // --- parallel phase ---------------------------------------------------
    // Each index is one simulated CPU draining its own queue. The budget
    // check happens only at barriers, so a round can overshoot the deadline
    // by at most cpus * rounds_per_barrier * slice_insns steps.
    pool.run_indexed(cpus, [&](unsigned c) {
      Lane& lane = lanes[c];
      for (unsigned round = 0; round < config.rounds_per_barrier; ++round) {
        for (Task* task : queues[c]) {
          if (!task->runnable()) continue;
          ++lane.slices;
          if (config.gang_shared) {
            run_slice_counted(*task, config.slice_insns, lane.steps);
            continue;
          }
          // AS -> Process slice-lock order (see register_slice_locks).
          auto as_it = as_locks.find(task->mem.get());
          std::unique_lock<std::mutex> as_lock;
          if (as_it != as_locks.end()) {
            as_lock = std::unique_lock<std::mutex>(*as_it->second);
          }
          auto proc_it = proc_locks.find(task->process.get());
          std::unique_lock<std::mutex> proc_lock;
          if (proc_it != proc_locks.end()) {
            proc_lock = std::unique_lock<std::mutex>(*proc_it->second);
          }
          run_slice_counted(*task, config.slice_insns, lane.steps);
        }
      }
    });
    ++out.barriers;

    // --- serial phase -----------------------------------------------------
    std::uint64_t lane_steps = 0;
    for (const Lane& lane : lanes) lane_steps += lane.steps;
    total_steps_ = deadline - max_total_steps + lane_steps;
    reconcile_counters();

    // Cross-CPU signals: drained in (target, sender, seq) order — the
    // deterministic stand-in for IPI arrival order.
    {
      std::lock_guard<std::mutex> lock(mailbox_mu_);
      std::sort(signal_mailbox_.begin(), signal_mailbox_.end(),
                [](const RemoteSignal& a, const RemoteSignal& b) {
                  return std::tie(a.target, a.sender, a.seq) <
                         std::tie(b.target, b.sender, b.seq);
                });
      for (const RemoteSignal& posted : signal_mailbox_) {
        if (Task* task = find_task(posted.target);
            task != nullptr && task->runnable()) {
          task->pending_signals.push_back(posted.info);
          ++out.mailbox_signals;
        }
      }
      signal_mailbox_.clear();
    }

    // Clone children born this round: placed now (they pre-ran nothing — a
    // child never executes before its first barrier, matching a real kernel
    // waking a new thread on another CPU).
    if (!nursery_.empty()) {
      std::vector<Task*> batch;
      {
        std::lock_guard<std::mutex> lock(nursery_mu_);
        for (const auto& task : nursery_) batch.push_back(task.get());
      }
      merge_nursery();
      place_batch(std::move(batch));
      rebalance();
    }
    register_slice_locks();

    // Shootdown pass: a task whose address space moved past the generation
    // epochs its CPU last observed gets its caches flushed — the moment the
    // "IPI" lands. Counted only when the space is genuinely cross-CPU
    // shared; a single-CPU gang invalidates through the generation checks
    // exactly like the single-threaded machine and needs no IPI.
    for (auto& [tid, task] : tasks_) {
      if (!task->runnable()) continue;
      const std::uint64_t code_gen = task->mem->code_gen();
      const std::uint64_t layout_gen = task->mem->layout_gen();
      if (code_gen == task->smp_seen_code_gen &&
          layout_gen == task->smp_seen_layout_gen) {
        continue;
      }
      bool shared_cross_cpu = false;
      for (const auto& [other_tid, other] : tasks_) {
        if (other->mem == task->mem && other->cpu != task->cpu &&
            other->runnable()) {
          shared_cross_cpu = true;
          break;
        }
      }
      if (shared_cross_cpu) {
        task->dcache.flush();
        task->bcache.flush();
        task->dtlb.flush();
        // The trace cache invalidates per embedded page instead of flushing
        // wholesale: a remote CPU's code write drops exactly the traces that
        // embed the touched page, and chains over untouched pages survive
        // the shootdown.
        task->tcache.invalidate_stale(*task->mem);
        ++out.shootdowns;
      }
      task->smp_seen_code_gen = code_gen;
      task->smp_seen_layout_gen = layout_gen;
    }

    // Prune exited tasks from the queues (their Task objects stay in tasks_,
    // like zombies awaiting a wait() that this kernel models implicitly).
    for (auto& queue : queues) {
      std::erase_if(queue, [](const Task* task) { return !task->runnable(); });
    }

    // Telemetry sample for this barrier round — serial phase, so it is a
    // deterministic function of the schedule. Queue depths are taken after
    // placement/rebalance/prune: what the next parallel phase starts with.
    if (out.timeline.size() < SmpStats::kMaxTimelineSamples) {
      SmpBarrierSample sample;
      sample.round = out.barriers - 1;
      sample.total_insns = total_insns_;
      sample.total_cycles = total_cycles_;
      sample.steals = out.steals;
      sample.shootdowns = out.shootdowns;
      sample.mailbox_signals = out.mailbox_signals;
      sample.cpu_steps.resize(cpus);
      sample.cpu_slices.resize(cpus);
      sample.run_queue.resize(cpus);
      for (unsigned c = 0; c < cpus; ++c) {
        sample.cpu_steps[c] = lanes[c].steps - prev_steps[c];
        sample.cpu_slices[c] = lanes[c].slices - prev_slices[c];
        sample.run_queue[c] = queues[c].size();
        prev_steps[c] = lanes[c].steps;
        prev_slices[c] = lanes[c].slices;
      }
      out.timeline.push_back(std::move(sample));
    } else {
      out.timeline_truncated = true;
    }
  }
  smp_active_ = false;

  // Final reconciliation covers the last partial round.
  merge_nursery();
  reconcile_counters();
  flush_profile_mirror();
  {
    std::uint64_t lane_steps = 0;
    for (const Lane& lane : lanes) lane_steps += lane.steps;
    total_steps_ = deadline - max_total_steps + lane_steps;
  }

  out.insns = total_insns_;
  out.all_exited = live_task_count() == 0;
  for (unsigned c = 0; c < cpus; ++c) {
    out.cpus[c].steps = lanes[c].steps;
    out.cpus[c].slices = lanes[c].slices;
  }
  // Final residency per CPU (a task's last placement entry wins; exited
  // tasks count where they ran — the queues themselves are already pruned).
  std::map<Tid, unsigned> final_cpu;
  for (const auto& [tid, cpu] : out.placement) final_cpu[tid] = cpu;
  for (const auto& [tid, cpu] : final_cpu) ++out.cpus[cpu].tasks;
  return out;
}

}  // namespace lzp::kern
