// The kernel-side trace probe interface.
//
// A TraceSink is the single low-level observability hook the Machine and the
// interposer runtimes report into: syscall interpositions tagged with the
// mechanism that handled them, SUD selector flips, signal deliveries, zpoline
// site rewrites, seccomp filter decisions, decode-cache invalidations, and
// task lifecycle events. The default implementation of every probe is a
// no-op, so sinks override only what they consume; src/trace's Tracer is the
// full-fat implementation (flight recorder + metrics registry).
//
// Probes never charge simulated cycles: attaching a sink must not perturb
// the cycle counts the benches measure (bench/trace_overhead.cpp asserts
// this). Compiling with LZP_TRACE_DISABLED turns Machine::trace_sink() into
// a constant nullptr, so every `if (auto* sink = machine.trace_sink())` call
// site folds away entirely.
#pragma once

#include <cstdint>
#include <string_view>

namespace lzp::kern {

struct Task;
struct SigInfo;

// Which interposition path handled (or decided about) a syscall. The split
// of lazypoline into fast/slow mirrors the paper's Fig. 4 cost accounting:
// the SIGSYS-mediated discovery path and the rewritten CALL-RAX path have
// very different cycle profiles even though they share the generic entry.
enum class InterposeMechanism : std::uint8_t {
  kNone = 0,        // no interposer involved (native dispatch)
  kPtrace,
  kSeccompBpf,      // kernel-side filter decision; no user handler runs
  kSeccompUser,     // SECCOMP_RET_USER_NOTIF supervisor
  kSud,             // plain SUD tool (SIGSYS every time)
  kZpoline,         // static-rewrite trampoline
  kLazypolineFast,  // rewritten site -> generic entry
  kLazypolineSlow,  // SUD SIGSYS discovery -> generic entry
};
inline constexpr std::size_t kNumMechanisms = 8;

[[nodiscard]] constexpr std::string_view to_string(InterposeMechanism mech) noexcept {
  switch (mech) {
    case InterposeMechanism::kNone: return "native";
    case InterposeMechanism::kPtrace: return "ptrace";
    case InterposeMechanism::kSeccompBpf: return "seccomp-bpf";
    case InterposeMechanism::kSeccompUser: return "seccomp-user";
    case InterposeMechanism::kSud: return "sud";
    case InterposeMechanism::kZpoline: return "zpoline";
    case InterposeMechanism::kLazypolineFast: return "lazypoline-fast";
    case InterposeMechanism::kLazypolineSlow: return "lazypoline-slow";
  }
  return "?";
}

// Sentinel automaton states for the on_policy_decision probe. Mirrored by
// src/policy (which links the kernel anyway); defined here so the probe's
// contract — "state ~0 means the pre-first-syscall entry state" — lives with
// the probe and sinks like src/trace's Tracer can render it without
// depending on the policy library.
inline constexpr std::uint64_t kPolicyEntryState = ~0ULL;
inline constexpr std::uint64_t kPolicyAnySyscall = ~0ULL - 1;

// Outcome of one syscall-flow-integrity check (policy/enforce.hpp), passed
// to on_policy_decision as a raw byte so the probe layer stays independent
// of the policy library.
enum class PolicyDecision : std::uint8_t {
  kAllow = 0,         // transition permitted by the automaton
  kAlwaysAllow,       // on the enforcer's unconditional allowlist (exit etc.)
  kWildcardAllow,     // state compiled to a wildcard filter (unknowable set)
  kViolationLogged,   // off-automaton, log-only verdict: executed anyway
  kViolationDenied,   // off-automaton, denied with an errno, not executed
  kViolationKilled,   // off-automaton, process killed
};

[[nodiscard]] constexpr std::string_view to_string(PolicyDecision d) noexcept {
  switch (d) {
    case PolicyDecision::kAllow: return "allow";
    case PolicyDecision::kAlwaysAllow: return "always-allow";
    case PolicyDecision::kWildcardAllow: return "wildcard-allow";
    case PolicyDecision::kViolationLogged: return "violation-logged";
    case PolicyDecision::kViolationDenied: return "violation-denied";
    case PolicyDecision::kViolationKilled: return "violation-killed";
  }
  return "?";
}

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Runtime gate, non-virtual so Machine::trace_sink() can filter a disabled
  // sink with a plain load instead of dispatching probes that would return
  // immediately. A disabled sink stays attached but receives no probes.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  enum class TaskEvent : std::uint8_t {
    kStart,   // detail: entry rip
    kSwitch,  // scheduler picked this task after running another
    kClone,   // detail: child tid
    kExecve,  // detail: 0
    kExit,    // detail: exit code
  };

  // An interposer is about to run / has run its handler for a syscall.
  // Mechanism tools bracket their handler invocation with this pair; the
  // exit carries the result placed in the application's rax.
  virtual void on_interpose_enter(const Task&, std::uint64_t /*nr*/,
                                  InterposeMechanism) {}
  virtual void on_interpose_exit(const Task&, std::uint64_t /*nr*/,
                                 InterposeMechanism, std::uint64_t /*result*/) {}

  // A runtime stored a new value into a task's SUD selector byte.
  virtual void on_selector_flip(const Task&, std::uint8_t /*value*/) {}
  // A syscall instruction was rewritten to CALL RAX (zpoline/lazypoline).
  virtual void on_site_rewrite(const Task&, std::uint64_t /*site_addr*/) {}
  // A signal is being delivered (before disposition is applied).
  virtual void on_signal_delivery(const Task&, const SigInfo&) {}
  // The seccomp filter chain produced its decisive action for a syscall.
  virtual void on_seccomp_decision(const Task&, std::uint64_t /*nr*/,
                                   std::uint32_t /*action*/) {}
  // The decode cache dropped an entry whose page generation went stale (the
  // SMC signature of a runtime rewrite landing on cached code).
  virtual void on_decode_invalidation(const Task&, std::uint64_t /*rip*/) {}
  // Same event for the superblock cache (cpu/block_cache.hpp): a cached
  // straight-line decode was dropped because its page generation went stale.
  virtual void on_block_invalidation(const Task&, std::uint64_t /*rip*/) {}
  // Same event for the trace cache (cpu/trace_cache.hpp): a chained trace
  // was dropped because one of its embedded pages went stale; `rip` is the
  // trace's head.
  virtual void on_trace_invalidation(const Task&, std::uint64_t /*rip*/) {}
  // An interposition mechanism finished arming itself on a task.
  virtual void on_mechanism_install(const Task&, InterposeMechanism) {}
  // The static/dynamic cross-checker (analysis/crosscheck.hpp) matched a
  // runtime observation at `site` against the static rewrite-safety verdict.
  // `verdict` is an analysis::Verdict and `outcome` an
  // analysis::CrosscheckOutcome, passed as raw bytes so the kernel probe
  // layer stays independent of the analysis library.
  virtual void on_crosscheck(const Task&, std::uint64_t /*site*/,
                             std::uint8_t /*verdict*/,
                             std::uint8_t /*outcome*/) {}
  // A syscall-flow-integrity enforcer (policy/enforce.hpp) checked syscall
  // `nr` against the per-task automaton state `from_state` (a syscall
  // number, or kPolicyEntryState before the first syscall) and reached
  // `decision` (a PolicyDecision).
  virtual void on_policy_decision(const Task&, std::uint64_t /*nr*/,
                                  std::uint64_t /*from_state*/,
                                  PolicyDecision /*decision*/) {}
  // Task lifecycle: start/switch/clone/execve/exit.
  virtual void on_task_event(const Task&, TaskEvent, std::uint64_t /*detail*/) {}

 private:
  bool enabled_ = true;
};

}  // namespace lzp::kern
