#include "kernel/net.hpp"

namespace lzp::kern {

int Net::create_listener(ClientWorkload workload) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_id_++;
  Listener listener;
  listener.workload = workload;
  // Distribute the request budget over the client's keepalive connections;
  // earlier connections absorb the remainder.
  const std::uint64_t conns = workload.connections == 0 ? 1 : workload.connections;
  const std::uint64_t base = workload.total_requests / conns;
  std::uint64_t remainder = workload.total_requests % conns;
  for (std::uint64_t i = 0; i < conns; ++i) {
    std::uint64_t budget = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    if (budget > 0) listener.pending_conn_budgets.push_back(budget);
  }
  listeners_[id] = std::move(listener);
  return id;
}

Net::Event Net::poll_for(int listener_id, const std::set<int>& owned) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(listener_id);
  if (it == listeners_.end()) return {EventKind::kFinished, -1};
  Listener& listener = it->second;
  for (int conn_id : listener.conns) {
    if (owned.count(conn_id) == 0) continue;
    const Conn& conn = conns_.at(conn_id);
    if (conn.closed) continue;
    if (conn.state == ConnState::kRequestReady ||
        conn.state == ConnState::kDrained) {
      return {EventKind::kReadable, conn_id};
    }
  }
  if (!listener.pending_conn_budgets.empty()) {
    return {EventKind::kAcceptable, -1};
  }
  for (int conn_id : listener.conns) {
    if (!conns_.at(conn_id).closed) return {EventKind::kNone, conn_id};
  }
  return {EventKind::kFinished, -1};
}

Net::Event Net::poll(int listener_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(listener_id);
  if (it == listeners_.end()) return {EventKind::kFinished, -1};
  Listener& listener = it->second;
  // Prefer serving existing connections over accepting new ones, like an
  // event loop draining ready events before the listener.
  for (int conn_id : listener.conns) {
    const Conn& conn = conns_.at(conn_id);
    if (conn.closed) continue;
    if (conn.state == ConnState::kRequestReady ||
        conn.state == ConnState::kDrained) {
      return {EventKind::kReadable, conn_id};
    }
  }
  if (!listener.pending_conn_budgets.empty()) {
    return {EventKind::kAcceptable, -1};
  }
  // No pending requests and no pending connections: if every connection is
  // closed, the run is over. (kResponding cannot linger: servers send whole
  // responses before polling again.)
  for (int conn_id : listener.conns) {
    if (!conns_.at(conn_id).closed) return {EventKind::kNone, conn_id};
  }
  return {EventKind::kFinished, -1};
}

Result<int> Net::accept(int listener_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(listener_id);
  if (it == listeners_.end()) {
    return make_error(StatusCode::kNotFound, "accept: bad listener");
  }
  Listener& listener = it->second;
  if (listener.pending_conn_budgets.empty()) {
    return make_error(StatusCode::kFailedPrecondition, "accept: EAGAIN");
  }
  const int conn_id = next_id_++;
  Conn conn;
  conn.listener = listener_id;
  conn.requests_left = listener.pending_conn_budgets.front();
  listener.pending_conn_budgets.pop_front();
  conn.state = ConnState::kRequestReady;
  conns_[conn_id] = conn;
  listener.conns.push_back(conn_id);
  return conn_id;
}

Result<std::uint64_t> Net::recv(int conn_id, std::uint64_t buffer_size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.closed) {
    return make_error(StatusCode::kNotFound, "recv: bad conn");
  }
  Conn& conn = it->second;
  if (conn.state == ConnState::kDrained) {
    return std::uint64_t{0};  // orderly shutdown from the client
  }
  if (conn.state != ConnState::kRequestReady) {
    return make_error(StatusCode::kFailedPrecondition, "recv: EAGAIN");
  }
  const Listener& listener = listeners_.at(conn.listener);
  conn.state = ConnState::kResponding;
  conn.response_remaining = listener.workload.response_bytes;
  const std::uint64_t n = listener.workload.request_bytes;
  return n < buffer_size ? n : buffer_size;
}

Result<std::uint64_t> Net::send(int conn_id, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.closed) {
    return make_error(StatusCode::kNotFound, "send: bad conn");
  }
  Conn& conn = it->second;
  if (conn.state != ConnState::kResponding) {
    // Sending outside a request/response cycle: accept the bytes silently
    // (the client ignores them); keeps buggy servers from wedging the run.
    return bytes;
  }
  Listener& listener = listeners_.at(conn.listener);
  if (bytes >= conn.response_remaining) {
    conn.response_remaining = 0;
    ++listener.completed;
    if (conn.requests_left > 0) --conn.requests_left;
    conn.state = conn.requests_left > 0 ? ConnState::kRequestReady
                                        : ConnState::kDrained;
  } else {
    conn.response_remaining -= bytes;
  }
  return bytes;
}

Status Net::close_conn(int conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return make_error(StatusCode::kNotFound, "close: bad conn");
  }
  it->second.closed = true;
  return Status::ok();
}

std::uint64_t Net::completed_requests(int listener_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(listener_id);
  return it == listeners_.end() ? 0 : it->second.completed;
}

bool Net::workload_done(int listener_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(listener_id);
  if (it == listeners_.end()) return true;
  const Listener& listener = it->second;
  if (!listener.pending_conn_budgets.empty()) return false;
  for (int conn_id : listener.conns) {
    if (!conns_.at(conn_id).closed) return false;
  }
  return true;
}

}  // namespace lzp::kern
