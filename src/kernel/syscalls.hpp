// Syscall numbers (x86-64 Linux values, for fidelity) and errno codes.
#pragma once

#include <cstdint>
#include <string_view>

namespace lzp::kern {

enum Sys : std::uint64_t {
  kSysRead = 0,
  kSysWrite = 1,
  kSysOpen = 2,
  kSysClose = 3,
  kSysStat = 4,
  kSysFstat = 5,
  kSysLseek = 8,
  kSysMmap = 9,
  kSysMprotect = 10,
  kSysMunmap = 11,
  kSysBrk = 12,
  kSysRtSigaction = 13,
  kSysRtSigprocmask = 14,
  kSysRtSigreturn = 15,
  kSysIoctl = 16,
  kSysWritev = 20,
  kSysSchedYield = 24,
  kSysDup = 32,
  kSysNanosleep = 35,
  kSysGetpid = 39,
  kSysSendfile = 40,
  kSysSocket = 41,
  kSysAccept = 43,
  kSysRecvfrom = 45,
  kSysShutdown = 48,
  kSysBind = 49,
  kSysListen = 50,
  kSysSetsockopt = 54,
  kSysClone = 56,
  kSysFork = 57,
  kSysVfork = 58,
  kSysExecve = 59,
  kSysExit = 60,
  kSysKill = 62,
  kSysFcntl = 72,
  kSysGetcwd = 79,
  kSysRename = 82,
  kSysMkdir = 83,
  kSysUnlink = 87,
  kSysChmod = 90,
  kSysPtrace = 101,
  kSysSigaltstack = 131,
  kSysPrctl = 157,
  kSysArchPrctl = 158,
  kSysGettid = 186,
  kSysFutex = 202,
  kSysEpollCreate = 213,
  kSysGetdents64 = 217,
  kSysSetTidAddress = 218,
  kSysClockGettime = 228,
  kSysExitGroup = 231,
  kSysEpollWait = 232,
  kSysEpollCtl = 233,
  kSysTgkill = 234,
  kSysOpenat = 257,
  kSysSetRobustList = 273,
  kSysUtimensat = 280,
  kSysAccept4 = 288,
  kSysEpollCreate1 = 291,
  kSysPipe2 = 293,
  kSysSeccomp = 317,
  kSysGetrandom = 318,

  // The microbenchmark's non-existent syscall (paper §V-B: "a non-existent
  // syscall (number 500)").
  kSysNonexistent = 500,
};

// Highest syscall number the zpoline nop sled must cover ("typically under
// 500" in the paper; the sled spans [0, kMaxSyscallNumber]).
inline constexpr std::uint64_t kMaxSyscallNumber = 511;

[[nodiscard]] std::string_view syscall_name(std::uint64_t nr) noexcept;

// Errno values, negated into rax on failure like the real ABI.
inline constexpr std::int64_t kEPERM = 1;
inline constexpr std::int64_t kENOENT = 2;
inline constexpr std::int64_t kEINTR = 4;
inline constexpr std::int64_t kEBADF = 9;
inline constexpr std::int64_t kEAGAIN = 11;
inline constexpr std::int64_t kENOMEM = 12;
inline constexpr std::int64_t kEACCES = 13;
inline constexpr std::int64_t kEFAULT = 14;
inline constexpr std::int64_t kEEXIST = 17;
inline constexpr std::int64_t kEINVAL = 22;
inline constexpr std::int64_t kENOSYS = 38;

[[nodiscard]] constexpr std::uint64_t errno_result(std::int64_t err) noexcept {
  return static_cast<std::uint64_t>(-err);
}
[[nodiscard]] constexpr bool is_error_result(std::uint64_t rax) noexcept {
  return rax > static_cast<std::uint64_t>(-4096L);
}

// prctl / arch_prctl operation codes used by the interposers.
inline constexpr std::uint64_t kPrSetSyscallUserDispatch = 59;  // PR_SET_SYSCALL_USER_DISPATCH
inline constexpr std::uint64_t kPrSysDispatchOff = 0;
inline constexpr std::uint64_t kPrSysDispatchOn = 1;
inline constexpr std::uint64_t kArchSetGs = 0x1001;  // ARCH_SET_GS
inline constexpr std::uint64_t kArchGetGs = 0x1004;  // ARCH_GET_GS

// SUD selector byte values (include/uapi/linux/prctl.h).
inline constexpr std::uint8_t kSudAllow = 0;  // SYSCALL_DISPATCH_FILTER_ALLOW
inline constexpr std::uint8_t kSudBlock = 1;  // SYSCALL_DISPATCH_FILTER_BLOCK

// seccomp(2) operation codes.
inline constexpr std::uint64_t kSeccompSetModeFilter = 1;

// clone flags (subset).
inline constexpr std::uint64_t kCloneVm = 0x00000100;
inline constexpr std::uint64_t kCloneThread = 0x00010000;
inline constexpr std::uint64_t kCloneVfork = 0x00004000;

}  // namespace lzp::kern
