// Signal delivery, rt_sigreturn, and task/process exit.
//
// Delivery mirrors the Linux rt_sigframe flow: the kernel saves the full
// user context (including extended state), masks the handler's sa_mask,
// switches to the alternate stack when requested, and materializes handler
// arguments. Handlers access and *mutate* the saved context exactly the way
// real handlers mutate their ucontext_t — the mechanism lazypoline uses to
// resume execution at its interposer entry point instead of the original
// interruption point (paper §IV-A).
#include "base/log.hpp"
#include "kernel/machine.hpp"

namespace lzp::kern {
namespace {

// Signals whose default disposition terminates the process.
bool default_fatal(int sig) noexcept {
  switch (sig) {
    case kSigchld:
      return false;
    default:
      return true;
  }
}

}  // namespace

void Machine::deliver_signal(Task& task, const SigInfo& info) {
  if (!task.runnable()) return;
  signal_observers_.notify(task, info);
  if (auto* sink = trace_sink()) sink->on_signal_delivery(task, info);
  const SigAction action = task.process->sigactions[info.signo];

  if (action.handler == kSigIgn) {
    // Kernel-forced signals (faults, SUD/seccomp SIGSYS) cannot be ignored:
    // the kernel reinstates the default disposition and kills.
    const bool forced = info.signo == kSigsys || info.signo == kSigsegv ||
                        info.signo == kSigill || info.signo == kSigbus ||
                        info.signo == kSigfpe;
    if (forced) {
      kill_process(*task.process, 128 + info.signo,
                   std::string("forced signal ignored: ") +
                       std::string(signal_name(info.signo)));
    }
    return;
  }
  if (action.handler == kSigDfl) {
    if (default_fatal(info.signo)) {
      kill_process(*task.process, 128 + info.signo,
                   std::string("unhandled ") + std::string(signal_name(info.signo)));
    }
    return;
  }

  charge(task, costs_.signal_deliver);

  SignalFrame frame;
  frame.saved_context = task.ctx;  // includes xstate, like the FPU frame
  frame.saved_sigmask = task.sigmask;
  frame.info = info;
  task.signal_frames.push_back(frame);

  // Block the signal itself plus sa_mask for the handler's duration.
  task.sigmask |= action.mask | (1ULL << info.signo);

  // Handler arguments per SA_SIGINFO convention (adapted to the sim ABI):
  // rdi = signo, rsi = syscall nr or fault address, rdx = frame depth
  // (the "ucontext" handle — host handlers use it to find their frame).
  task.ctx.set_reg(isa::Gpr::rdi, static_cast<std::uint64_t>(info.signo));
  task.ctx.set_reg(isa::Gpr::rsi,
                   info.signo == kSigsys ? info.syscall_nr : info.fault_addr);
  task.ctx.set_reg(isa::Gpr::rdx, task.signal_frames.size() - 1);

  // Stack switch: alternate stack if requested, else the interrupted stack
  // below a 128-byte red zone plus space for the (real-world) frame.
  if ((action.flags & kSaOnstack) != 0 && task.altstack.valid()) {
    task.ctx.set_rsp((task.altstack.base + task.altstack.size) & ~0xFULL);
  } else {
    task.ctx.set_rsp((task.ctx.rsp() - 128 - 512) & ~0xFULL);
  }
  task.ctx.rip = action.handler;
}

void Machine::handle_fault_signal(Task& task, int sig, const SigInfo& info_in) {
  SigInfo info = info_in;
  info.signo = sig;
  deliver_signal(task, info);
}

std::uint64_t Machine::do_rt_sigreturn(Task& task) {
  if (task.signal_frames.empty()) {
    kill_process(*task.process, 139, "rt_sigreturn without a signal frame");
    return errno_result(kEFAULT);
  }
  charge(task, costs_.sigreturn);
  const SignalFrame frame = task.signal_frames.back();
  task.signal_frames.pop_back();
  task.ctx = frame.saved_context;
  task.sigmask = frame.saved_sigmask;
  return task.ctx.reg(isa::Gpr::rax);  // rax comes from the restored context
}

void Machine::exit_task(Task& task, int code) {
  if (auto* sink = trace_sink()) {
    sink->on_task_event(task, TraceSink::TaskEvent::kExit,
                        static_cast<std::uint64_t>(code));
  }
  task.state = TaskState::kExited;
  task.exit_code = code;
  // Threads: if this was the last task of the process, the process exits.
  bool any_left = false;
  for (auto& [tid, other] : tasks_) {
    if (other->process == task.process && other->runnable()) any_left = true;
  }
  {
    std::lock_guard<std::mutex> lock(nursery_mu_);
    for (auto& other : nursery_) {
      if (other->process == task.process && other->runnable()) any_left = true;
    }
  }
  if (!any_left) {
    task.process->exited = true;
    task.process->exit_code = code;
  }
}

void Machine::exit_process(Task& task, int code) {
  if (auto* sink = trace_sink()) {
    sink->on_task_event(task, TraceSink::TaskEvent::kExit,
                        static_cast<std::uint64_t>(code));
  }
  task.process->exited = true;
  task.process->exit_code = code;
  for (auto& [tid, other] : tasks_) {
    if (other->process == task.process) {
      other->state = TaskState::kExited;
      other->exit_code = code;
    }
  }
  std::lock_guard<std::mutex> lock(nursery_mu_);
  for (auto& other : nursery_) {
    if (other->process == task.process) {
      other->state = TaskState::kExited;
      other->exit_code = code;
    }
  }
}

}  // namespace lzp::kern
