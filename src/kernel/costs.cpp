#include "kernel/costs.hpp"

// CostModel is a plain aggregate; this translation unit exists so the target
// always has at least one object file and to pin the header's ODR home.
namespace lzp::kern {
static_assert(sizeof(CostModel) > 0);
}  // namespace lzp::kern
