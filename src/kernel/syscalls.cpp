#include "kernel/syscalls.hpp"

namespace lzp::kern {

std::string_view syscall_name(std::uint64_t nr) noexcept {
  switch (nr) {
    case kSysRead: return "read";
    case kSysWrite: return "write";
    case kSysOpen: return "open";
    case kSysClose: return "close";
    case kSysStat: return "stat";
    case kSysFstat: return "fstat";
    case kSysLseek: return "lseek";
    case kSysMmap: return "mmap";
    case kSysMprotect: return "mprotect";
    case kSysMunmap: return "munmap";
    case kSysBrk: return "brk";
    case kSysRtSigaction: return "rt_sigaction";
    case kSysRtSigprocmask: return "rt_sigprocmask";
    case kSysRtSigreturn: return "rt_sigreturn";
    case kSysIoctl: return "ioctl";
    case kSysWritev: return "writev";
    case kSysSchedYield: return "sched_yield";
    case kSysDup: return "dup";
    case kSysNanosleep: return "nanosleep";
    case kSysGetpid: return "getpid";
    case kSysSendfile: return "sendfile";
    case kSysSocket: return "socket";
    case kSysAccept: return "accept";
    case kSysRecvfrom: return "recvfrom";
    case kSysShutdown: return "shutdown";
    case kSysBind: return "bind";
    case kSysListen: return "listen";
    case kSysSetsockopt: return "setsockopt";
    case kSysClone: return "clone";
    case kSysFork: return "fork";
    case kSysVfork: return "vfork";
    case kSysExecve: return "execve";
    case kSysExit: return "exit";
    case kSysKill: return "kill";
    case kSysFcntl: return "fcntl";
    case kSysGetcwd: return "getcwd";
    case kSysRename: return "rename";
    case kSysMkdir: return "mkdir";
    case kSysUnlink: return "unlink";
    case kSysChmod: return "chmod";
    case kSysPtrace: return "ptrace";
    case kSysSigaltstack: return "sigaltstack";
    case kSysPrctl: return "prctl";
    case kSysArchPrctl: return "arch_prctl";
    case kSysGettid: return "gettid";
    case kSysFutex: return "futex";
    case kSysEpollCreate: return "epoll_create";
    case kSysGetdents64: return "getdents64";
    case kSysSetTidAddress: return "set_tid_address";
    case kSysClockGettime: return "clock_gettime";
    case kSysExitGroup: return "exit_group";
    case kSysEpollWait: return "epoll_wait";
    case kSysEpollCtl: return "epoll_ctl";
    case kSysTgkill: return "tgkill";
    case kSysOpenat: return "openat";
    case kSysSetRobustList: return "set_robust_list";
    case kSysUtimensat: return "utimensat";
    case kSysAccept4: return "accept4";
    case kSysEpollCreate1: return "epoll_create1";
    case kSysPipe2: return "pipe2";
    case kSysSeccomp: return "seccomp";
    case kSysGetrandom: return "getrandom";
    case kSysNonexistent: return "nonexistent(500)";
    default: return "unknown";
  }
}

}  // namespace lzp::kern
