#include "mechanisms/seccomp_user_tool.hpp"

#include "bpf/seccomp_filter.hpp"

namespace lzp::mechanisms {

Status SeccompUserMechanism::install(
    kern::Machine& machine, kern::Tid tid,
    std::shared_ptr<interpose::SyscallHandler> handler) {
  kern::Task* task = machine.find_task(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "seccomp-user: no such task");
  }

  // Supervisor side: receives each notification, runs the handler, executes
  // the syscall in its own (unfiltered) context, and replies with the result.
  machine.set_user_notif_handler(
      [&machine, handler](kern::Task& target, std::uint64_t nr,
                          const std::array<std::uint64_t, 6>& args) {
        interpose::SyscallRequest req;
        req.nr = nr;
        req.args = args;
        interpose::InterposeContext ictx(
            machine, target, req,
            [&machine, &target](std::uint64_t n,
                                const std::array<std::uint64_t, 6>& a) {
              return machine.supervised_dispatch(target, n, a);
            });
        if (auto* sink = machine.trace_sink()) {
          sink->on_interpose_enter(target, nr,
                                   kern::InterposeMechanism::kSeccompUser);
        }
        const std::uint64_t result = handler->handle(ictx);
        if (auto* sink = machine.trace_sink()) {
          sink->on_interpose_exit(target, nr,
                                  kern::InterposeMechanism::kSeccompUser,
                                  result);
        }
        return result;
      });

  // Target side: defer every syscall.
  auto program = bpf::SeccompFilterBuilder::return_constant(
      bpf::SECCOMP_RET_USER_NOTIF);
  task->seccomp.push_back(
      std::make_shared<const std::vector<bpf::Insn>>(std::move(program)));
  if (auto* sink = machine.trace_sink()) {
    sink->on_mechanism_install(*task, kern::InterposeMechanism::kSeccompUser);
  }
  return Status::ok();
}

}  // namespace lzp::mechanisms
