// seccomp-bpf interposition: kernel-space BPF filters (paper §II-A).
//
// Highly efficient (no extra mode switches) but of *limited* expressiveness:
// the installation API accepts filter RULES over the superficial syscall
// information BPF can see — number, instruction pointer, raw argument
// values. It cannot accept a SyscallHandler, because BPF cannot dereference
// pointers, call back into user code, or mutate anything; install() with a
// handler therefore fails by design, documenting the Table-I limitation in
// the type system rather than hiding it.
#pragma once

#include <vector>

#include "bpf/seccomp_filter.hpp"
#include "interpose/mechanism.hpp"

namespace lzp::mechanisms {

struct SeccompRule {
  std::uint32_t nr = 0;
  std::uint32_t action = bpf::SECCOMP_RET_ALLOW;  // or ERRNO|code, KILL, ...
};

class SeccompBpfMechanism final : public interpose::Mechanism {
 public:
  [[nodiscard]] std::string name() const override { return "seccomp-bpf"; }

  // Arbitrary handlers are not expressible in kernel BPF.
  Status install(kern::Machine& machine, kern::Tid tid,
                 std::shared_ptr<interpose::SyscallHandler> handler) override;

  // The API seccomp-bpf actually offers: attach a rule-based filter.
  // Matching rules apply their action; everything else gets default_action.
  static Status install_filter(kern::Machine& machine, kern::Tid tid,
                               std::span<const SeccompRule> rules,
                               std::uint32_t default_action);

  // The filter used by the efficiency benchmarks: inspects the syscall
  // number (the typical monitoring filter shape) and allows everything.
  static Status install_monitoring_filter(kern::Machine& machine, kern::Tid tid);

  [[nodiscard]] interpose::Characteristics characteristics() const override {
    return {interpose::Level::kLimited, /*exhaustive=*/true,
            interpose::Level::kHigh};
  }
};

}  // namespace lzp::mechanisms
