// seccomp-user interposition: a filter defers every syscall to a user-space
// supervisor (SECCOMP_RET_USER_NOTIF), which runs the fully expressive
// handler and executes the syscall on the target's behalf. Exhaustive and
// expressive, but each interposed syscall pays a supervisor round trip —
// "Moderate" efficiency in Table I.
#pragma once

#include "interpose/mechanism.hpp"

namespace lzp::mechanisms {

class SeccompUserMechanism final : public interpose::Mechanism {
 public:
  [[nodiscard]] std::string name() const override { return "seccomp-user"; }

  Status install(kern::Machine& machine, kern::Tid tid,
                 std::shared_ptr<interpose::SyscallHandler> handler) override;

  [[nodiscard]] interpose::Characteristics characteristics() const override {
    return {interpose::Level::kFull, /*exhaustive=*/true,
            interpose::Level::kModerate};
  }
};

}  // namespace lzp::mechanisms
