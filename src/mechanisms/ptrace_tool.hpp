// ptrace-based interposition (the strace/gdb model, paper §II-A).
//
// A host-side tracer attaches to the task and is notified synchronously at
// every syscall entry and exit. Each stop costs two context switches (tracee
// -> tracer -> tracee) plus several PTRACE_* requests to read registers and
// memory — the cost structure that makes ptrace "Low" efficiency in Table I
// despite being fully expressive and exhaustive.
#pragma once

#include "interpose/mechanism.hpp"

namespace lzp::mechanisms {

class PtraceMechanism final : public interpose::Mechanism {
 public:
  [[nodiscard]] std::string name() const override { return "ptrace"; }

  Status install(kern::Machine& machine, kern::Tid tid,
                 std::shared_ptr<interpose::SyscallHandler> handler) override;

  [[nodiscard]] interpose::Characteristics characteristics() const override {
    return {interpose::Level::kFull, /*exhaustive=*/true,
            interpose::Level::kLow};
  }
};

}  // namespace lzp::mechanisms
