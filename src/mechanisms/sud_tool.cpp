#include "mechanisms/sud_tool.hpp"

#include "isa/assemble.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::mechanisms {
namespace {

// Layout of the runtime page this mechanism maps into the target:
//   +0   selector byte
//   +16  sigreturn stub: mov rax, NR_rt_sigreturn ; syscall
constexpr std::uint64_t kSelectorOffset = 0;
constexpr std::uint64_t kStubOffset = 16;

struct Runtime {
  std::uint64_t page = 0;
  [[nodiscard]] std::uint64_t selector_addr() const { return page + kSelectorOffset; }
  [[nodiscard]] std::uint64_t stub_addr() const { return page + kStubOffset; }
};

void set_selector(kern::Machine& machine, kern::Task& task,
                  std::uint64_t selector_addr, std::uint8_t value) {
  machine.charge(task, machine.costs().gs_selector_flip);
  (void)task.mem->write_force(selector_addr, {&value, 1});
  if (auto* sink = machine.trace_sink()) sink->on_selector_flip(task, value);
}

}  // namespace

Status SudMechanism::install(kern::Machine& machine, kern::Tid tid,
                             std::shared_ptr<interpose::SyscallHandler> handler) {
  kern::Task* task = machine.find_task(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "sud: no such task");
  }

  // Map the runtime page (selector + allowlisted sigreturn stub). A real
  // deployment maps this from its preloaded library; RWX because it holds
  // both the mutable selector and the executable stub.
  auto page = task->mem->map(0, mem::kPageSize,
                             mem::kProtRead | mem::kProtWrite | mem::kProtExec,
                             /*fixed=*/false);
  if (!page) return page.status();
  Runtime runtime{page.value()};

  {
    isa::Assembler assembler;
    assembler.mov(isa::Gpr::rax, kern::kSysRtSigreturn);
    assembler.syscall_();
    auto stub = assembler.finish();
    if (!stub) return stub.status();
    LZP_RETURN_IF_ERROR(
        task->mem->write_force(runtime.stub_addr(), stub.value()));
  }

  // The SIGSYS handler, running as native code in the target.
  const std::uint64_t handler_addr = machine.bind_host(
      "sud.sigsys", [handler, runtime](kern::HostFrame& frame) {
        kern::Task& task = frame.task;
        if (task.signal_frames.empty()) {
          frame.machine.kill_process(*task.process, 139,
                                     "sud: SIGSYS with no frame");
          return;
        }
        kern::SignalFrame& sigframe = task.signal_frames.back();
        const kern::SigInfo info = sigframe.info;

        // 1. Selector -> ALLOW so the interposer's own syscalls (and the
        //    handler's pass-through) are not re-intercepted.
        set_selector(frame.machine, task, task.sud.selector_addr,
                     kern::kSudAllow);

        // 2. Run the fully expressive interposer.
        interpose::SyscallRequest req;
        req.nr = info.syscall_nr;
        for (std::size_t i = 0; i < 6; ++i) req.args[i] = info.syscall_args[i];
        req.site = info.ip_after_syscall - 2;
        interpose::InterposeContext ictx(
            frame.machine, task, req,
            [&frame](std::uint64_t nr, const std::array<std::uint64_t, 6>& args) {
              return frame.syscall(nr, args);
            });
        if (auto* sink = frame.machine.trace_sink()) {
          sink->on_interpose_enter(task, req.nr,
                                   kern::InterposeMechanism::kSud);
        }
        const std::uint64_t result = handler->handle(ictx);
        if (auto* sink = frame.machine.trace_sink()) {
          sink->on_interpose_exit(task, req.nr,
                                  kern::InterposeMechanism::kSud, result);
        }

        // 3. Write the result into the interrupted context (the application
        //    resumes right after its syscall instruction with rax set).
        sigframe.saved_context.set_reg(isa::Gpr::rax, result);

        // 4. Selector -> BLOCK again, then sigreturn via the allowlisted
        //    stub so the sigreturn syscall itself is exempt.
        set_selector(frame.machine, task, task.sud.selector_addr,
                     kern::kSudBlock);
        frame.ctx.rip = runtime.stub_addr();
      });

  task->process->sigactions[kern::kSigsys] =
      kern::SigAction{handler_addr, kern::kSaSiginfo, 0};

  // Arm SUD: selector initially BLOCK; only the stub range is allowlisted.
  std::uint8_t block = kern::kSudBlock;
  LZP_RETURN_IF_ERROR(
      task->mem->write_force(runtime.selector_addr(), {&block, 1}));
  task->sud.enabled = true;
  task->sud.selector_addr = runtime.selector_addr();
  task->sud.allow_start = runtime.stub_addr();
  task->sud.allow_len = 16;
  if (auto* sink = machine.trace_sink()) {
    sink->on_mechanism_install(*task, kern::InterposeMechanism::kSud);
  }
  return Status::ok();
}

Status SudMechanism::install_always_allow(kern::Machine& machine, kern::Tid tid) {
  kern::Task* task = machine.find_task(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "sud: no such task");
  }
  auto page = task->mem->map(0, mem::kPageSize,
                             mem::kProtRead | mem::kProtWrite, /*fixed=*/false);
  if (!page) return page.status();
  std::uint8_t allow = kern::kSudAllow;
  LZP_RETURN_IF_ERROR(task->mem->write_force(page.value(), {&allow, 1}));
  task->sud.enabled = true;
  task->sud.selector_addr = page.value();
  task->sud.allow_start = 0;
  task->sud.allow_len = 0;
  return Status::ok();
}

}  // namespace lzp::mechanisms
