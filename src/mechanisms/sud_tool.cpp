#include "mechanisms/sud_tool.hpp"

#include "isa/assemble.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::mechanisms {
namespace {

// Runtime layout: the mutable selector byte and the executable sigreturn
// stub live on *separate* pages. Co-locating them on one RWX page — the
// original layout — made every selector flip a write into an executable
// page, bumping its generation and invalidating every cached decode, block,
// and trace built from the stub: thousands of spurious invalidations per
// run, a churn zpoline never pays. With the split, selector writes touch a
// data-only page and the stub page stays at generation 0 forever.
struct Runtime {
  std::uint64_t selector_page = 0;  // RW: selector byte at +0
  std::uint64_t stub_page = 0;      // R+X after setup: sigreturn stub at +0
  [[nodiscard]] std::uint64_t selector_addr() const { return selector_page; }
  [[nodiscard]] std::uint64_t stub_addr() const { return stub_page; }
};

void set_selector(kern::Machine& machine, kern::Task& task,
                  std::uint64_t selector_addr, std::uint8_t value) {
  machine.charge(task, machine.costs().gs_selector_flip);
  (void)task.mem->write_force(selector_addr, {&value, 1});
  if (auto* sink = machine.trace_sink()) sink->on_selector_flip(task, value);
}

}  // namespace

Status SudMechanism::install(kern::Machine& machine, kern::Tid tid,
                             std::shared_ptr<interpose::SyscallHandler> handler) {
  kern::Task* task = machine.find_task(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "sud: no such task");
  }

  // Map the runtime pages (selector, then the allowlisted sigreturn stub).
  // A real deployment maps these from its preloaded library; see the Runtime
  // comment for why the mutable selector must not share the stub's
  // executable page.
  auto selector_page = task->mem->map(0, mem::kPageSize,
                                      mem::kProtRead | mem::kProtWrite,
                                      /*fixed=*/false);
  if (!selector_page) return selector_page.status();
  auto stub_page = task->mem->map(0, mem::kPageSize,
                                  mem::kProtRead | mem::kProtWrite,
                                  /*fixed=*/false);
  if (!stub_page) return stub_page.status();
  Runtime runtime{selector_page.value(), stub_page.value()};

  {
    isa::Assembler assembler;
    assembler.mov(isa::Gpr::rax, kern::kSysRtSigreturn);
    assembler.syscall_();
    auto stub = assembler.finish();
    if (!stub) return stub.status();
    LZP_RETURN_IF_ERROR(
        task->mem->write_force(runtime.stub_addr(), stub.value()));
    // W^X: the stub page is never written again once armed.
    LZP_RETURN_IF_ERROR(task->mem->protect(runtime.stub_page, mem::kPageSize,
                                           mem::kProtRead | mem::kProtExec));
  }

  // The SIGSYS handler, running as native code in the target.
  const std::uint64_t handler_addr = machine.bind_host(
      "sud.sigsys", [handler, runtime](kern::HostFrame& frame) {
        kern::Task& task = frame.task;
        if (task.signal_frames.empty()) {
          frame.machine.kill_process(*task.process, 139,
                                     "sud: SIGSYS with no frame");
          return;
        }
        kern::SignalFrame& sigframe = task.signal_frames.back();
        const kern::SigInfo info = sigframe.info;

        // 1. Selector -> ALLOW so the interposer's own syscalls (and the
        //    handler's pass-through) are not re-intercepted.
        set_selector(frame.machine, task, task.sud.selector_addr,
                     kern::kSudAllow);

        // 2. Run the fully expressive interposer.
        interpose::SyscallRequest req;
        req.nr = info.syscall_nr;
        for (std::size_t i = 0; i < 6; ++i) req.args[i] = info.syscall_args[i];
        req.site = info.ip_after_syscall - 2;
        interpose::InterposeContext ictx(
            frame.machine, task, req,
            [&frame](std::uint64_t nr, const std::array<std::uint64_t, 6>& args) {
              return frame.syscall(nr, args);
            });
        if (auto* sink = frame.machine.trace_sink()) {
          sink->on_interpose_enter(task, req.nr,
                                   kern::InterposeMechanism::kSud);
        }
        const std::uint64_t result = handler->handle(ictx);
        if (auto* sink = frame.machine.trace_sink()) {
          sink->on_interpose_exit(task, req.nr,
                                  kern::InterposeMechanism::kSud, result);
        }

        // 3. Write the result into the interrupted context (the application
        //    resumes right after its syscall instruction with rax set).
        sigframe.saved_context.set_reg(isa::Gpr::rax, result);

        // 4. Selector -> BLOCK again, then sigreturn via the allowlisted
        //    stub so the sigreturn syscall itself is exempt.
        set_selector(frame.machine, task, task.sud.selector_addr,
                     kern::kSudBlock);
        frame.ctx.rip = runtime.stub_addr();
      });

  task->process->sigactions[kern::kSigsys] =
      kern::SigAction{handler_addr, kern::kSaSiginfo, 0};

  // Arm SUD: selector initially BLOCK; only the stub range is allowlisted.
  std::uint8_t block = kern::kSudBlock;
  LZP_RETURN_IF_ERROR(
      task->mem->write_force(runtime.selector_addr(), {&block, 1}));
  task->sud.enabled = true;
  task->sud.selector_addr = runtime.selector_addr();
  task->sud.allow_start = runtime.stub_addr();
  task->sud.allow_len = 16;
  if (auto* sink = machine.trace_sink()) {
    sink->on_mechanism_install(*task, kern::InterposeMechanism::kSud);
  }
  return Status::ok();
}

Status SudMechanism::install_always_allow(kern::Machine& machine, kern::Tid tid) {
  kern::Task* task = machine.find_task(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "sud: no such task");
  }
  auto page = task->mem->map(0, mem::kPageSize,
                             mem::kProtRead | mem::kProtWrite, /*fixed=*/false);
  if (!page) return page.status();
  std::uint8_t allow = kern::kSudAllow;
  LZP_RETURN_IF_ERROR(task->mem->write_force(page.value(), {&allow, 1}));
  task->sud.enabled = true;
  task->sud.selector_addr = page.value();
  task->sud.allow_start = 0;
  task->sud.allow_len = 0;
  return Status::ok();
}

}  // namespace lzp::mechanisms
