#include "mechanisms/seccomp_bpf_tool.hpp"

namespace lzp::mechanisms {
namespace {

Status attach(kern::Machine& machine, kern::Tid tid,
              std::vector<bpf::Insn> program) {
  kern::Task* task = machine.find_task(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "seccomp: no such task");
  }
  LZP_RETURN_IF_ERROR(bpf::validate(program, bpf::SeccompData::kSize));
  task->seccomp.push_back(
      std::make_shared<const std::vector<bpf::Insn>>(std::move(program)));
  // Per-syscall decisions are traced kernel-side (Machine::intercept emits
  // on_seccomp_decision); only the arming is reported from here.
  if (auto* sink = machine.trace_sink()) {
    sink->on_mechanism_install(*task, kern::InterposeMechanism::kSeccompBpf);
  }
  return Status::ok();
}

}  // namespace

Status SeccompBpfMechanism::install(kern::Machine&, kern::Tid,
                                    std::shared_ptr<interpose::SyscallHandler>) {
  return make_error(
      StatusCode::kUnimplemented,
      "seccomp-bpf cannot run arbitrary interposer code: BPF filters cannot "
      "dereference pointers or call user functions (limited expressiveness)");
}

Status SeccompBpfMechanism::install_filter(kern::Machine& machine, kern::Tid tid,
                                           std::span<const SeccompRule> rules,
                                           std::uint32_t default_action) {
  std::vector<bpf::Insn> program;
  program.push_back(bpf::stmt(bpf::BPF_LD | bpf::BPF_W | bpf::BPF_ABS,
                              bpf::SeccompData::kOffNr));
  // if nr == rule.nr -> ret action. Each rule is a compare + return pair.
  for (const SeccompRule& rule : rules) {
    program.push_back(bpf::jump(bpf::BPF_JMP | bpf::BPF_JEQ | bpf::BPF_K,
                                rule.nr, 0, 1));
    program.push_back(bpf::stmt(bpf::BPF_RET | bpf::BPF_K, rule.action));
  }
  program.push_back(bpf::stmt(bpf::BPF_RET | bpf::BPF_K, default_action));
  return attach(machine, tid, std::move(program));
}

Status SeccompBpfMechanism::install_monitoring_filter(kern::Machine& machine,
                                                      kern::Tid tid) {
  // Shape of a realistic monitoring/sandbox filter: validate the arch, load
  // the number, compare it against a short deny list, allow the rest.
  std::vector<bpf::Insn> program;
  program.push_back(bpf::stmt(bpf::BPF_LD | bpf::BPF_W | bpf::BPF_ABS,
                              bpf::SeccompData::kOffArch));
  program.push_back(bpf::jump(bpf::BPF_JMP | bpf::BPF_JEQ | bpf::BPF_K,
                              bpf::kAuditArchX86_64, 1, 0));
  program.push_back(
      bpf::stmt(bpf::BPF_RET | bpf::BPF_K, bpf::SECCOMP_RET_KILL_PROCESS));
  program.push_back(bpf::stmt(bpf::BPF_LD | bpf::BPF_W | bpf::BPF_ABS,
                              bpf::SeccompData::kOffNr));
  const std::uint32_t denied[] = {kern::kSysPtrace};
  for (std::uint32_t nr : denied) {
    program.push_back(bpf::jump(bpf::BPF_JMP | bpf::BPF_JEQ | bpf::BPF_K, nr, 0, 1));
    program.push_back(bpf::stmt(bpf::BPF_RET | bpf::BPF_K,
                                bpf::SECCOMP_RET_ERRNO |
                                    static_cast<std::uint32_t>(kern::kEPERM)));
  }
  program.push_back(bpf::stmt(bpf::BPF_RET | bpf::BPF_K, bpf::SECCOMP_RET_ALLOW));
  return attach(machine, tid, std::move(program));
}

}  // namespace lzp::mechanisms
