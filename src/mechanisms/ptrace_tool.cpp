#include "mechanisms/ptrace_tool.hpp"

namespace lzp::mechanisms {

Status PtraceMechanism::install(kern::Machine& machine, kern::Tid tid,
                                std::shared_ptr<interpose::SyscallHandler> handler) {
  kern::Task* task = machine.find_task(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "ptrace: no such task");
  }
  kern::TracerHooks hooks;
  // Entry stop: the tracer wakes, inspects registers, and resumes the
  // tracee. The interposition decision normally happens at the exit stop,
  // where the result is known (PTRACE_SYSCALL convention) — except for
  // syscalls that never return (exit/exit_group), which a tracer like
  // strace reports at entry.
  hooks.on_syscall_entry = [&machine, handler](kern::Task& tracee,
                                               cpu::CpuContext& ctx) {
    const std::uint64_t nr = ctx.syscall_number();
    if (nr != kern::kSysExit && nr != kern::kSysExitGroup) return;
    interpose::SyscallRequest req;
    req.nr = nr;
    for (std::size_t i = 0; i < 6; ++i) req.args[i] = ctx.syscall_arg(i);
    interpose::InterposeContext ictx(
        machine, tracee, req,
        [](std::uint64_t, const std::array<std::uint64_t, 6>&) {
          return std::uint64_t{0};  // does not return; nothing to observe
        });
    // exit/exit_group never reach the exit stop, so the trace span closes
    // here (zero result by convention).
    if (auto* sink = machine.trace_sink()) {
      sink->on_interpose_enter(tracee, nr, kern::InterposeMechanism::kPtrace);
    }
    (void)handler->handle(ictx);
    if (auto* sink = machine.trace_sink()) {
      sink->on_interpose_exit(tracee, nr, kern::InterposeMechanism::kPtrace, 0);
    }
  };
  // Still at the entry stop: an injecting handler (replay) may rewrite
  // orig_rax to -1 so the kernel skips execution, then materialize the
  // recorded result via PTRACE_SETREGS. Observers return false here and the
  // exit stop runs as usual.
  hooks.on_syscall_suppress =
      [&machine, handler](kern::Task& tracee, cpu::CpuContext& /*ctx*/,
                          std::uint64_t nr,
                          const std::array<std::uint64_t, 6>& args,
                          std::uint64_t* result) {
        interpose::SyscallRequest req;
        req.nr = nr;
        req.args = args;
        interpose::InterposeContext ictx(
            machine, tracee, req,
            [](std::uint64_t, const std::array<std::uint64_t, 6>&) {
              // Suppression decision precedes execution: nothing to run.
              return std::uint64_t{0};
            });
        return handler->pre_execute(ictx, result);
      };
  hooks.on_syscall_exit = [&machine, handler](kern::Task& tracee,
                                              cpu::CpuContext& /*ctx*/,
                                              std::uint64_t nr,
                                              const std::array<std::uint64_t, 6>& args,
                                              std::uint64_t& result) {
    interpose::SyscallRequest req;
    req.nr = nr;  // orig_rax: survives context-replacing syscalls (sigreturn)
    req.args = args;
    // The kernel already executed the syscall; pass-through observes the
    // result (PTRACE_GETREGS) instead of re-executing.
    const std::uint64_t observed = result;
    interpose::InterposeContext ictx(
        machine, tracee, req,
        [observed](std::uint64_t, const std::array<std::uint64_t, 6>&) {
          return observed;
        });
    // The tracer may overwrite the result (PTRACE_SETREGS).
    if (auto* sink = machine.trace_sink()) {
      sink->on_interpose_enter(tracee, nr, kern::InterposeMechanism::kPtrace);
    }
    result = handler->handle(ictx);
    if (auto* sink = machine.trace_sink()) {
      sink->on_interpose_exit(tracee, nr, kern::InterposeMechanism::kPtrace,
                              result);
    }
  };
  machine.attach_tracer(tid, std::move(hooks));
  if (auto* sink = machine.trace_sink()) {
    sink->on_mechanism_install(*task, kern::InterposeMechanism::kPtrace);
  }
  return Status::ok();
}

}  // namespace lzp::mechanisms
