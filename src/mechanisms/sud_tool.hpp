// Typical Syscall User Dispatch deployment (paper §II-A):
//
//   * SUD armed with a user-space selector byte, initially BLOCK,
//   * every blocked syscall raises SIGSYS; the handler sets the selector to
//     ALLOW, runs the interposer, writes the result into the saved context,
//     resets the selector to BLOCK,
//   * and sigreturns through a syscall instruction inside the allowlisted
//     code range, so the sigreturn itself is never intercepted.
//
// Fully expressive and exhaustive, but every intercepted syscall pays signal
// delivery + sigreturn: "Moderate" efficiency, ~20x on the microbenchmark.
#pragma once

#include "interpose/mechanism.hpp"

namespace lzp::mechanisms {

class SudMechanism final : public interpose::Mechanism {
 public:
  [[nodiscard]] std::string name() const override { return "sud"; }

  Status install(kern::Machine& machine, kern::Tid tid,
                 std::shared_ptr<interpose::SyscallHandler> handler) override;

  [[nodiscard]] interpose::Characteristics characteristics() const override {
    return {interpose::Level::kFull, /*exhaustive=*/true,
            interpose::Level::kModerate};
  }

  // Arms SUD with the selector permanently at ALLOW: nothing is intercepted,
  // but the kernel still checks on every syscall. This is the Table-II
  // "baseline with SUD enabled" configuration.
  static Status install_always_allow(kern::Machine& machine, kern::Tid tid);
};

}  // namespace lzp::mechanisms
