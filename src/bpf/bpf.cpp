#include "bpf/bpf.hpp"

#include <array>
#include <cstring>

#include "base/strings.hpp"

namespace lzp::bpf {
namespace {

constexpr std::uint16_t insn_class(std::uint16_t code) noexcept { return code & 0x07; }
constexpr std::uint16_t insn_op(std::uint16_t code) noexcept { return code & 0xF0; }
// ALU/JMP operand source: the BPF_SRC field is the 0x08 bit only (0x10 is
// part of the opcode space, e.g. BPF_DIV = 0x30).
constexpr bool src_is_x(std::uint16_t code) noexcept { return (code & 0x08) != 0; }
// RET value source: the BPF_RVAL field is 0x18 (BPF_A = 0x10).
constexpr std::uint16_t insn_rval(std::uint16_t code) noexcept { return code & 0x18; }
constexpr std::uint16_t insn_mode(std::uint16_t code) noexcept { return code & 0xE0; }

}  // namespace

Status validate(std::span<const Insn> program, std::size_t data_len) {
  if (program.empty()) {
    return make_error(StatusCode::kInvalidArgument, "bpf: empty program");
  }
  if (program.size() > kMaxProgramLength) {
    return make_error(StatusCode::kInvalidArgument, "bpf: program too long");
  }
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    const Insn& insn = program[pc];
    switch (insn_class(insn.code)) {
      case BPF_LD:
      case BPF_LDX: {
        const std::uint16_t mode = insn_mode(insn.code);
        if (mode == BPF_ABS) {
          // Word loads must fit the data area. seccomp enforces 4-byte
          // alignment too.
          if (insn.k % 4 != 0 || insn.k + 4 > data_len) {
            return make_error(StatusCode::kOutOfRange,
                              "bpf: LD_ABS outside data at pc " + std::to_string(pc));
          }
        } else if (mode == BPF_MEM) {
          if (insn.k >= kScratchSlots) {
            return make_error(StatusCode::kOutOfRange, "bpf: bad scratch slot");
          }
        } else if (mode != BPF_IMM && mode != BPF_LEN) {
          return make_error(StatusCode::kInvalidArgument,
                            "bpf: unsupported load mode (seccomp subset)");
        }
        break;
      }
      case BPF_ST:
      case BPF_STX:
        if (insn.k >= kScratchSlots) {
          return make_error(StatusCode::kOutOfRange, "bpf: bad scratch slot");
        }
        break;
      case BPF_ALU: {
        const std::uint16_t op = insn_op(insn.code);
        if (op != BPF_ADD && op != BPF_SUB && op != BPF_MUL && op != BPF_DIV &&
            op != BPF_OR && op != BPF_AND && op != BPF_LSH && op != BPF_RSH &&
            op != BPF_NEG && op != BPF_XOR) {
          return make_error(StatusCode::kInvalidArgument, "bpf: bad alu op");
        }
        if (op == BPF_DIV && !src_is_x(insn.code) && insn.k == 0) {
          return make_error(StatusCode::kInvalidArgument, "bpf: div by zero");
        }
        break;
      }
      case BPF_JMP: {
        const std::uint16_t op = insn_op(insn.code);
        if (op != BPF_JA && op != BPF_JEQ && op != BPF_JGT && op != BPF_JGE &&
            op != BPF_JSET) {
          return make_error(StatusCode::kInvalidArgument, "bpf: bad jmp op");
        }
        if (op == BPF_JA) {
          if (pc + 1 + static_cast<std::size_t>(insn.k) > program.size() - 1) {
            return make_error(StatusCode::kOutOfRange, "bpf: JA out of range");
          }
        } else {
          if (pc + 1 + insn.jt > program.size() - 1 ||
              pc + 1 + insn.jf > program.size() - 1) {
            return make_error(StatusCode::kOutOfRange, "bpf: jump out of range");
          }
        }
        break;
      }
      case BPF_RET:
        break;
      case BPF_MISC:
        if (insn_op(insn.code) != BPF_TAX && insn_op(insn.code) != BPF_TXA) {
          return make_error(StatusCode::kInvalidArgument, "bpf: bad misc op");
        }
        break;
      default:
        return make_error(StatusCode::kInvalidArgument, "bpf: bad class");
    }
  }
  // The final instruction must be an unconditional return (kernel rule), so
  // no path can fall off the end.
  const Insn& last = program.back();
  if (insn_class(last.code) != BPF_RET) {
    return make_error(StatusCode::kInvalidArgument,
                      "bpf: program does not end in RET");
  }
  return Status::ok();
}

Result<RunResult> run(std::span<const Insn> program,
                      std::span<const std::uint8_t> data) {
  std::uint32_t a = 0;
  std::uint32_t x = 0;
  std::array<std::uint32_t, kScratchSlots> scratch{};
  RunResult result;

  auto load_word = [&](std::uint32_t offset, std::uint32_t& out) -> bool {
    if (offset + 4 > data.size()) return false;
    std::memcpy(&out, data.data() + offset, 4);
    return true;
  };

  std::size_t pc = 0;
  while (pc < program.size()) {
    const Insn& insn = program[pc];
    ++result.insns_executed;
    // A bounded interpreter: cBPF has forward-only jumps, but guard anyway.
    if (result.insns_executed > kMaxProgramLength * 2) {
      return make_error(StatusCode::kInternal, "bpf: runaway program");
    }
    const std::uint16_t cls = insn_class(insn.code);
    switch (cls) {
      case BPF_LD: {
        const std::uint16_t mode = insn_mode(insn.code);
        if (mode == BPF_ABS) {
          if (!load_word(insn.k, a)) {
            return make_error(StatusCode::kOutOfRange, "bpf: load out of data");
          }
        } else if (mode == BPF_IND) {
          if (!load_word(x + insn.k, a)) {
            return make_error(StatusCode::kOutOfRange, "bpf: load out of data");
          }
        } else if (mode == BPF_MEM) {
          a = scratch[insn.k];
        } else if (mode == BPF_IMM) {
          a = insn.k;
        } else if (mode == BPF_LEN) {
          a = static_cast<std::uint32_t>(data.size());
        }
        break;
      }
      case BPF_LDX: {
        const std::uint16_t mode = insn_mode(insn.code);
        if (mode == BPF_MEM) {
          x = scratch[insn.k];
        } else if (mode == BPF_IMM) {
          x = insn.k;
        } else if (mode == BPF_LEN) {
          x = static_cast<std::uint32_t>(data.size());
        } else if (mode == BPF_ABS) {
          if (!load_word(insn.k, x)) {
            return make_error(StatusCode::kOutOfRange, "bpf: load out of data");
          }
        }
        break;
      }
      case BPF_ST:
        scratch[insn.k] = a;
        break;
      case BPF_STX:
        scratch[insn.k] = x;
        break;
      case BPF_ALU: {
        const std::uint32_t operand = src_is_x(insn.code) ? x : insn.k;
        switch (insn_op(insn.code)) {
          case BPF_ADD: a += operand; break;
          case BPF_SUB: a -= operand; break;
          case BPF_MUL: a *= operand; break;
          case BPF_DIV:
            if (operand == 0) {
              return make_error(StatusCode::kInvalidArgument, "bpf: div by 0");
            }
            a /= operand;
            break;
          case BPF_OR: a |= operand; break;
          case BPF_AND: a &= operand; break;
          case BPF_LSH: a <<= (operand & 31); break;
          case BPF_RSH: a >>= (operand & 31); break;
          case BPF_XOR: a ^= operand; break;
          case BPF_NEG: a = static_cast<std::uint32_t>(-static_cast<std::int32_t>(a)); break;
          default: break;
        }
        break;
      }
      case BPF_JMP: {
        const std::uint32_t operand = src_is_x(insn.code) ? x : insn.k;
        bool taken = false;
        switch (insn_op(insn.code)) {
          case BPF_JA: pc += insn.k + 1; continue;
          case BPF_JEQ: taken = (a == operand); break;
          case BPF_JGT: taken = (a > operand); break;
          case BPF_JGE: taken = (a >= operand); break;
          case BPF_JSET: taken = (a & operand) != 0; break;
          default: break;
        }
        pc += 1 + (taken ? insn.jt : insn.jf);
        continue;
      }
      case BPF_RET:
        result.value = insn_rval(insn.code) == BPF_A ? a : insn.k;
        return result;
      case BPF_MISC:
        if (insn_op(insn.code) == BPF_TAX) x = a;
        else a = x;
        break;
      default:
        return make_error(StatusCode::kInvalidArgument, "bpf: bad class");
    }
    ++pc;
  }
  return make_error(StatusCode::kInternal, "bpf: fell off program end");
}

std::string disassemble(std::span<const Insn> program) {
  std::string out;
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    const Insn& insn = program[pc];
    out += std::to_string(pc);
    out += ": ";
    switch (insn_class(insn.code)) {
      case BPF_LD:
        if (insn_mode(insn.code) == BPF_ABS) out += "ld [" + std::to_string(insn.k) + "]";
        else if (insn_mode(insn.code) == BPF_IMM) out += "ld #" + std::to_string(insn.k);
        else if (insn_mode(insn.code) == BPF_MEM) out += "ld M[" + std::to_string(insn.k) + "]";
        else out += "ld ?";
        break;
      case BPF_LDX: out += "ldx #" + std::to_string(insn.k); break;
      case BPF_ST: out += "st M[" + std::to_string(insn.k) + "]"; break;
      case BPF_STX: out += "stx M[" + std::to_string(insn.k) + "]"; break;
      case BPF_ALU: out += "alu"; break;
      case BPF_JMP: {
        const char* name = "j?";
        switch (insn_op(insn.code)) {
          case BPF_JA: name = "ja"; break;
          case BPF_JEQ: name = "jeq"; break;
          case BPF_JGT: name = "jgt"; break;
          case BPF_JGE: name = "jge"; break;
          case BPF_JSET: name = "jset"; break;
        }
        out += name;
        out += " #" + std::to_string(insn.k) + " jt=" + std::to_string(insn.jt) +
               " jf=" + std::to_string(insn.jf);
        break;
      }
      case BPF_RET:
        out += "ret ";
        out += insn_rval(insn.code) == BPF_A ? "A" : hex_u64(insn.k);
        break;
      case BPF_MISC: out += insn_op(insn.code) == BPF_TAX ? "tax" : "txa"; break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace lzp::bpf
