// Classic BPF (cBPF), as consumed by seccomp(2).
//
// This is a from-scratch implementation of the classic BPF virtual machine:
// the instruction format, a validator equivalent in spirit to the kernel's
// bpf_check_classic() (bounded programs, forward-only jumps, must end in a
// return), and an interpreter. seccomp filters are cBPF programs whose input
// is `struct seccomp_data` and whose return value selects a kernel action.
//
// The paper's point about seccomp-bpf (§II-A) is reproduced faithfully by
// construction: the VM has no stores to task memory and no way to
// dereference user pointers — filters can only inspect the syscall number,
// architecture, instruction pointer, and raw argument *values*. That is the
// expressiveness limitation that rules seccomp-bpf out for deep interposition.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/status.hpp"

namespace lzp::bpf {

// --- instruction encoding (matches <linux/filter.h>) ------------------------

// Instruction classes.
inline constexpr std::uint16_t BPF_LD = 0x00;
inline constexpr std::uint16_t BPF_LDX = 0x01;
inline constexpr std::uint16_t BPF_ST = 0x02;
inline constexpr std::uint16_t BPF_STX = 0x03;
inline constexpr std::uint16_t BPF_ALU = 0x04;
inline constexpr std::uint16_t BPF_JMP = 0x05;
inline constexpr std::uint16_t BPF_RET = 0x06;
inline constexpr std::uint16_t BPF_MISC = 0x07;

// Size / mode for loads.
inline constexpr std::uint16_t BPF_W = 0x00;
inline constexpr std::uint16_t BPF_ABS = 0x20;
inline constexpr std::uint16_t BPF_IND = 0x40;
inline constexpr std::uint16_t BPF_MEM = 0x60;
inline constexpr std::uint16_t BPF_IMM = 0x00;
inline constexpr std::uint16_t BPF_LEN = 0x80;

// ALU / JMP subops.
inline constexpr std::uint16_t BPF_ADD = 0x00;
inline constexpr std::uint16_t BPF_SUB = 0x10;
inline constexpr std::uint16_t BPF_MUL = 0x20;
inline constexpr std::uint16_t BPF_DIV = 0x30;
inline constexpr std::uint16_t BPF_OR = 0x40;
inline constexpr std::uint16_t BPF_AND = 0x50;
inline constexpr std::uint16_t BPF_LSH = 0x60;
inline constexpr std::uint16_t BPF_RSH = 0x70;
inline constexpr std::uint16_t BPF_NEG = 0x80;
inline constexpr std::uint16_t BPF_XOR = 0xA0;
inline constexpr std::uint16_t BPF_JA = 0x00;
inline constexpr std::uint16_t BPF_JEQ = 0x10;
inline constexpr std::uint16_t BPF_JGT = 0x20;
inline constexpr std::uint16_t BPF_JGE = 0x30;
inline constexpr std::uint16_t BPF_JSET = 0x40;

// Operand source.
inline constexpr std::uint16_t BPF_K = 0x00;
inline constexpr std::uint16_t BPF_X = 0x08;
inline constexpr std::uint16_t BPF_A = 0x10;  // for BPF_RET

// Misc.
inline constexpr std::uint16_t BPF_TAX = 0x00;
inline constexpr std::uint16_t BPF_TXA = 0x80;

// One cBPF instruction (struct sock_filter).
struct Insn {
  std::uint16_t code = 0;
  std::uint8_t jt = 0;
  std::uint8_t jf = 0;
  std::uint32_t k = 0;
};

[[nodiscard]] constexpr Insn stmt(std::uint16_t code, std::uint32_t k) noexcept {
  return Insn{code, 0, 0, k};
}
[[nodiscard]] constexpr Insn jump(std::uint16_t code, std::uint32_t k,
                                  std::uint8_t jt, std::uint8_t jf) noexcept {
  return Insn{code, jt, jf, k};
}

inline constexpr std::size_t kMaxProgramLength = 4096;  // BPF_MAXINSNS
inline constexpr std::size_t kScratchSlots = 16;        // BPF_MEMWORDS

// Validates a program the way the kernel does before attaching it: nonempty,
// bounded length, known opcodes, in-bounds jumps (cBPF jumps are forward-only
// by encoding), in-bounds scratch slots, division by constant zero rejected,
// and every path ends in BPF_RET.
Status validate(std::span<const Insn> program, std::size_t data_len);

struct RunResult {
  std::uint32_t value = 0;        // A register at BPF_RET, or RET's constant
  std::uint32_t insns_executed = 0;
};

// Interprets `program` over `data` (byte-addressed, little-endian 32-bit
// loads, like seccomp). The program must have been validated.
Result<RunResult> run(std::span<const Insn> program,
                      std::span<const std::uint8_t> data);

[[nodiscard]] std::string disassemble(std::span<const Insn> program);

}  // namespace lzp::bpf
