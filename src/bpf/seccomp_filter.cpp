#include "bpf/seccomp_filter.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace lzp::bpf {

std::vector<std::uint8_t> SeccompData::serialize() const {
  std::vector<std::uint8_t> out(kSize);
  serialize_into(std::span<std::uint8_t, kSize>(out.data(), kSize));
  return out;
}

void SeccompData::serialize_into(std::span<std::uint8_t, kSize> out) const {
  std::memcpy(out.data() + kOffNr, &nr, 4);
  std::memcpy(out.data() + kOffArch, &arch, 4);
  std::memcpy(out.data() + kOffIpLow, &instruction_pointer, 8);
  for (std::size_t i = 0; i < 6; ++i) {
    std::memcpy(out.data() + off_arg_low(i), &args[i], 8);
  }
}

namespace {

// A linear JEQ chain over `n` members needs a first-compare jump offset of
// exactly `n` (skip the n-1 remaining compares plus the fall-through
// return). Offsets are uint8_t, so n > 255 is unencodable.
Status check_set_size(std::size_t n, const char* builder) {
  if (n <= SeccompFilterBuilder::kMaxSetMembers) return Status::ok();
  return make_error(
      StatusCode::kOutOfRange,
      std::string(builder) + ": " + std::to_string(n) +
          " syscalls need a jump offset of " + std::to_string(n) +
          ", but cBPF jump offsets are 8-bit (max 255); split the set or use "
          "a jump tree");
}

}  // namespace

std::vector<Insn> SeccompFilterBuilder::return_constant(std::uint32_t action) {
  return {stmt(BPF_RET | BPF_K, action)};
}

Result<std::vector<Insn>> SeccompFilterBuilder::trap_syscalls(
    std::span<const std::uint32_t> trapped, std::uint32_t trap_action) {
  LZP_RETURN_IF_ERROR(check_set_size(trapped.size(), "trap_syscalls"));
  std::vector<Insn> program;
  program.push_back(stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffNr));
  // One JEQ per trapped number; fall through to ALLOW. On match, jump over
  // the remaining compares and the ALLOW to the TRAP.
  for (std::size_t i = 0; i < trapped.size(); ++i) {
    const auto remaining = static_cast<std::uint8_t>(trapped.size() - 1 - i + 1);
    program.push_back(jump(BPF_JMP | BPF_JEQ | BPF_K, trapped[i], remaining, 0));
  }
  program.push_back(stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW));
  program.push_back(stmt(BPF_RET | BPF_K, trap_action));
  return program;
}

std::vector<Insn> SeccompFilterBuilder::trap_unless_ip_in_range(
    std::uint64_t allow_start, std::uint64_t allow_len,
    std::uint32_t trap_action) {
  const std::uint64_t allow_end = allow_start + allow_len;
  const auto start_low = static_cast<std::uint32_t>(allow_start);
  const auto start_high = static_cast<std::uint32_t>(allow_start >> 32);
  const auto end_low = static_cast<std::uint32_t>(allow_end);
  const auto end_high = static_cast<std::uint32_t>(allow_end >> 32);

  // Layout (indices):
  //  0: ld ip_high
  //  1: jeq start_high ? ->2 : ->TRAP       (assumes range within one 4GiB
  //  2: jeq end_high ? ->3 : ->TRAP          high-word; true for our stubs)
  //  3: ld ip_low
  //  4: jge start_low ? ->5 : ->TRAP
  //  5: jgt end_low-1 ? ->TRAP : ->ALLOW
  //  6: ret ALLOW
  //  7: ret TRAP
  std::vector<Insn> program;
  program.push_back(stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffIpHigh));
  program.push_back(jump(BPF_JMP | BPF_JEQ | BPF_K, start_high, 0, 5));
  program.push_back(jump(BPF_JMP | BPF_JEQ | BPF_K, end_high, 0, 4));
  program.push_back(stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffIpLow));
  program.push_back(jump(BPF_JMP | BPF_JGE | BPF_K, start_low, 0, 2));
  program.push_back(jump(BPF_JMP | BPF_JGE | BPF_K, end_low, 1, 0));
  program.push_back(stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW));
  program.push_back(stmt(BPF_RET | BPF_K, trap_action));
  return program;
}

Result<std::vector<Insn>> SeccompFilterBuilder::allowlist(
    std::span<const std::uint32_t> allowed, std::uint32_t default_action) {
  // Sets beyond the 8-bit-offset reach are emitted as a sequence of
  // segments: each segment's JEQs jump (short, <= kAllowlistChunk) to the
  // segment-local `ret ALLOW`, and non-matches hop over it with an
  // unconditional BPF_JA (32-bit offset). One program, any set size the
  // kernel's 4096-instruction cap admits.
  const std::size_t chunks =
      allowed.empty() ? 0 : (allowed.size() + kAllowlistChunk - 1) / kAllowlistChunk;
  const std::size_t total = 1 + allowed.size() + 2 * chunks + 1;
  if (total > kMaxProgramLength) {
    return make_error(StatusCode::kOutOfRange,
                      "allowlist: " + std::to_string(allowed.size()) +
                          " syscalls need " + std::to_string(total) +
                          " instructions, over the BPF_MAXINSNS cap of " +
                          std::to_string(kMaxProgramLength));
  }
  std::vector<Insn> program;
  program.push_back(stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffNr));
  for (std::size_t base = 0; base < allowed.size(); base += kAllowlistChunk) {
    const std::size_t k = std::min(kAllowlistChunk, allowed.size() - base);
    // i-th compare sits k-i instructions before the segment's ALLOW.
    for (std::size_t i = 0; i < k; ++i) {
      const auto to_allow = static_cast<std::uint8_t>(k - i);
      program.push_back(
          jump(BPF_JMP | BPF_JEQ | BPF_K, allowed[base + i], to_allow, 0));
    }
    program.push_back(jump(BPF_JMP | BPF_JA, 1, 0, 0));  // skip the ALLOW
    program.push_back(stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW));
  }
  program.push_back(stmt(BPF_RET | BPF_K, default_action));
  return program;
}

}  // namespace lzp::bpf
