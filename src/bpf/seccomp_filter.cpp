#include "bpf/seccomp_filter.hpp"

#include <cstring>

namespace lzp::bpf {

std::vector<std::uint8_t> SeccompData::serialize() const {
  std::vector<std::uint8_t> out(kSize);
  std::memcpy(out.data() + kOffNr, &nr, 4);
  std::memcpy(out.data() + kOffArch, &arch, 4);
  std::memcpy(out.data() + kOffIpLow, &instruction_pointer, 8);
  for (std::size_t i = 0; i < 6; ++i) {
    std::memcpy(out.data() + off_arg_low(i), &args[i], 8);
  }
  return out;
}

std::vector<Insn> SeccompFilterBuilder::return_constant(std::uint32_t action) {
  return {stmt(BPF_RET | BPF_K, action)};
}

std::vector<Insn> SeccompFilterBuilder::trap_syscalls(
    std::span<const std::uint32_t> trapped, std::uint32_t trap_action) {
  std::vector<Insn> program;
  program.push_back(stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffNr));
  // One JEQ per trapped number; fall through to ALLOW. With >255 entries a
  // real filter would use a jump tree, but interposition filters are short.
  for (std::size_t i = 0; i < trapped.size(); ++i) {
    // On match, jump over the remaining compares and the ALLOW to the TRAP.
    const auto remaining = static_cast<std::uint8_t>(trapped.size() - 1 - i + 1);
    program.push_back(jump(BPF_JMP | BPF_JEQ | BPF_K, trapped[i], remaining, 0));
  }
  program.push_back(stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW));
  program.push_back(stmt(BPF_RET | BPF_K, trap_action));
  return program;
}

std::vector<Insn> SeccompFilterBuilder::trap_unless_ip_in_range(
    std::uint64_t allow_start, std::uint64_t allow_len,
    std::uint32_t trap_action) {
  const std::uint64_t allow_end = allow_start + allow_len;
  const auto start_low = static_cast<std::uint32_t>(allow_start);
  const auto start_high = static_cast<std::uint32_t>(allow_start >> 32);
  const auto end_low = static_cast<std::uint32_t>(allow_end);
  const auto end_high = static_cast<std::uint32_t>(allow_end >> 32);

  // Layout (indices):
  //  0: ld ip_high
  //  1: jeq start_high ? ->2 : ->TRAP       (assumes range within one 4GiB
  //  2: jeq end_high ? ->3 : ->TRAP          high-word; true for our stubs)
  //  3: ld ip_low
  //  4: jge start_low ? ->5 : ->TRAP
  //  5: jgt end_low-1 ? ->TRAP : ->ALLOW
  //  6: ret ALLOW
  //  7: ret TRAP
  std::vector<Insn> program;
  program.push_back(stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffIpHigh));
  program.push_back(jump(BPF_JMP | BPF_JEQ | BPF_K, start_high, 0, 5));
  program.push_back(jump(BPF_JMP | BPF_JEQ | BPF_K, end_high, 0, 4));
  program.push_back(stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffIpLow));
  program.push_back(jump(BPF_JMP | BPF_JGE | BPF_K, start_low, 0, 2));
  program.push_back(jump(BPF_JMP | BPF_JGE | BPF_K, end_low, 1, 0));
  program.push_back(stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW));
  program.push_back(stmt(BPF_RET | BPF_K, trap_action));
  return program;
}

std::vector<Insn> SeccompFilterBuilder::allowlist(
    std::span<const std::uint32_t> allowed, std::uint32_t default_action) {
  std::vector<Insn> program;
  program.push_back(stmt(BPF_LD | BPF_W | BPF_ABS, SeccompData::kOffNr));
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    const auto remaining = static_cast<std::uint8_t>(allowed.size() - 1 - i + 1);
    program.push_back(jump(BPF_JMP | BPF_JEQ | BPF_K, allowed[i], remaining, 0));
  }
  program.push_back(stmt(BPF_RET | BPF_K, default_action));
  program.push_back(stmt(BPF_RET | BPF_K, SECCOMP_RET_ALLOW));
  return program;
}

}  // namespace lzp::bpf
