// seccomp-specific layer on top of the cBPF VM: the seccomp_data input
// layout, the kernel action codes, and a small filter builder producing the
// filter shapes used in practice (allowlists, per-syscall traps, and the
// instruction-pointer range filters the paper mentions as seccomp's
// equivalent of SUD's allowlisted region, §IV-A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/status.hpp"
#include "bpf/bpf.hpp"

namespace lzp::bpf {

// Matches struct seccomp_data: nr, arch, instruction_pointer, args[6].
struct SeccompData {
  std::int32_t nr = 0;
  std::uint32_t arch = 0;
  std::uint64_t instruction_pointer = 0;
  std::uint64_t args[6] = {};

  static constexpr std::size_t kSize = 4 + 4 + 8 + 6 * 8;
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  // Allocation-free variant for per-syscall hot paths (policy enforcement
  // runs one filter per interposed syscall).
  void serialize_into(std::span<std::uint8_t, kSize> out) const;

  // Byte offsets for BPF_ABS loads.
  static constexpr std::uint32_t kOffNr = 0;
  static constexpr std::uint32_t kOffArch = 4;
  static constexpr std::uint32_t kOffIpLow = 8;
  static constexpr std::uint32_t kOffIpHigh = 12;
  static constexpr std::uint32_t off_arg_low(std::size_t i) {
    return 16 + static_cast<std::uint32_t>(i) * 8;
  }
  static constexpr std::uint32_t off_arg_high(std::size_t i) {
    return 20 + static_cast<std::uint32_t>(i) * 8;
  }
};

// Kernel action codes (high 16 bits; low 16 bits carry data, e.g. errno).
inline constexpr std::uint32_t SECCOMP_RET_KILL_PROCESS = 0x80000000;
inline constexpr std::uint32_t SECCOMP_RET_KILL_THREAD = 0x00000000;
inline constexpr std::uint32_t SECCOMP_RET_TRAP = 0x00030000;
inline constexpr std::uint32_t SECCOMP_RET_ERRNO = 0x00050000;
inline constexpr std::uint32_t SECCOMP_RET_USER_NOTIF = 0x7fc00000;
inline constexpr std::uint32_t SECCOMP_RET_TRACE = 0x7ff00000;
inline constexpr std::uint32_t SECCOMP_RET_LOG = 0x7ffc0000;
inline constexpr std::uint32_t SECCOMP_RET_ALLOW = 0x7fff0000;
inline constexpr std::uint32_t SECCOMP_RET_ACTION_FULL = 0xffff0000;
inline constexpr std::uint32_t SECCOMP_RET_DATA = 0x0000ffff;

inline constexpr std::uint32_t kAuditArchX86_64 = 0xC000003E;

// Builds common seccomp filter programs.
//
// The set-membership builders emit one JEQ per listed syscall. cBPF
// conditional jump offsets are 8-bit, so a single linear chain is limited
// to kMaxSetMembers; `allowlist` sidesteps the limit by segmenting the
// chain (each segment owns a local `ret ALLOW` reached by short jumps,
// with 32-bit BPF_JA hops between segments), so it accepts any set the
// kernel's 4096-instruction program cap admits. `trap_syscalls` keeps the
// single-chain shape and returns a clear Status beyond kMaxSetMembers
// instead of silently truncating the offset (which would produce a filter
// that *validates* but matches the wrong instruction).
class SeccompFilterBuilder {
 public:
  // Largest syscall list a single linear JEQ chain can encode: the first
  // compare's on-match jump must skip the remaining (n - 1) compares plus
  // the fall-through return, i.e. jt = n <= 255.
  static constexpr std::size_t kMaxSetMembers = 255;
  // Segment size for the chained allowlist form (the longest short jump a
  // segment needs is `chunk`, which must stay <= 255).
  static constexpr std::size_t kAllowlistChunk = 254;

  // Every syscall -> `action`.
  static std::vector<Insn> return_constant(std::uint32_t action);

  // `trapped` syscalls -> `trap_action`; everything else -> ALLOW.
  // This is the classic interposition filter (seccomp-user in Table I).
  static Result<std::vector<Insn>> trap_syscalls(
      std::span<const std::uint32_t> trapped, std::uint32_t trap_action);

  // Trap *all* syscalls except those whose instruction pointer lies in
  // [allow_start, allow_start + allow_len): the "filter on the code address
  // of the syscall invocation" pattern (paper §IV-A). Executes a 64-bit
  // range compare in cBPF's 32-bit machine.
  static std::vector<Insn> trap_unless_ip_in_range(std::uint64_t allow_start,
                                                   std::uint64_t allow_len,
                                                   std::uint32_t trap_action);

  // Allowlist: listed syscalls ALLOW, everything else -> `default_action`.
  // Emits the segmented/chained form, so the set may exceed kMaxSetMembers;
  // fails only past the kernel's 4096-instruction cap.
  static Result<std::vector<Insn>> allowlist(
      std::span<const std::uint32_t> allowed, std::uint32_t default_action);
};

}  // namespace lzp::bpf
