#include "core/lazypoline.hpp"

#include <cassert>
#include <cstring>

#include "base/log.hpp"
#include "isa/assemble.hpp"
#include "isa/decode.hpp"
#include "kernel/syscalls.hpp"
#include "zpoline/zpoline.hpp"

namespace lzp::core {

using kern::HostFrame;
using kern::Task;

std::shared_ptr<Lazypoline> Lazypoline::create(kern::Machine& machine,
                                               LazypolineConfig config) {
  auto self = std::shared_ptr<Lazypoline>(new Lazypoline(machine, config));
  self->bind_entry_points();
  return self;
}

Lazypoline::Lazypoline(kern::Machine& machine, LazypolineConfig config)
    : machine_(machine), config_(config) {}

void Lazypoline::bind_entry_points() {
  auto self = shared_from_this();
  sigsys_addr_ = machine_.bind_host(
      "lazypoline.sigsys", [self](HostFrame& frame) { self->on_sigsys(frame); });
  entry_addr_ = machine_.bind_host(
      "lazypoline.entry", [self](HostFrame& frame) { self->on_entry(frame); });
  sigret_tramp_addr_ =
      machine_.bind_host("lazypoline.sigret_trampoline", [self](HostFrame& frame) {
        self->on_sigret_trampoline(frame);
      });
  sig_wrapper_addr_ = machine_.bind_host(
      "lazypoline.signal_wrapper",
      [self](HostFrame& frame) { self->on_signal_wrapper(frame); });
}

// ---------------------------------------------------------------------------
// Installation / per-task initialization
// ---------------------------------------------------------------------------

Status Lazypoline::install(kern::Machine& machine, kern::Tid tid,
                           std::shared_ptr<interpose::SyscallHandler> handler) {
  if (&machine != &machine_) {
    return make_error(StatusCode::kInvalidArgument,
                      "lazypoline runtime is bound to a different machine");
  }
  Task* task = machine_.find_task_any(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "lazypoline: no such task");
  }
  handler_ = std::move(handler);
  return init_task(*task, /*install_trampoline=*/true);
}

void Lazypoline::attach_as_preload() {
  auto self = shared_from_this();
  machine_.set_preload([self](kern::Machine&, Task& task, const isa::Program&) {
    if (!self->handler_) return;  // runtime not activated yet
    const bool reinit = self->locals_.count(task.tid) != 0;
    if (Status status = self->init_task(task, /*install_trampoline=*/true);
        !status.is_ok()) {
      LZP_LOG_WARN << "lazypoline preload init failed: " << status.to_string();
      return;
    }
    if (reinit) ++self->stats_.execves_reinitialized;
  });
}

Status Lazypoline::init_task(Task& task, bool install_trampoline) {
  TaskLocal local;

  // Per-task %gs-relative region: selector byte, sigreturn selector stack,
  // scratch sigaction, nested xsave areas (§IV-B). With the §VI security
  // extension the region is read-only to guest code; the runtime writes it
  // through its privileged (MPK-modeled) path.
  const std::uint8_t gs_prot = config_.protect_selector
                                   ? mem::kProtRead
                                   : (mem::kProtRead | mem::kProtWrite);
  auto region = task.mem->map(0, kGsRegionSize, gs_prot, /*fixed=*/false);
  if (!region) return region.status();
  local.gs_region = region.value();
  task.ctx.gs_base = local.gs_region;

  // Signal restorer stub (the libc __restore_rt equivalent): plain sim code
  // whose syscall instruction is itself discovered and rewritten lazily.
  {
    isa::Assembler assembler;
    assembler.mov(isa::Gpr::rax, kern::kSysRtSigreturn);
    assembler.syscall_();
    auto stub = assembler.finish();
    if (!stub) return stub.status();
    auto stub_page = task.mem->map(0, mem::kPageSize,
                                   mem::kProtRead | mem::kProtWrite,
                                   /*fixed=*/false);
    if (!stub_page) return stub_page.status();
    local.restorer_stub = stub_page.value();
    LZP_RETURN_IF_ERROR(task.mem->write_force(local.restorer_stub, stub.value()));
    LZP_RETURN_IF_ERROR(task.mem->protect(local.restorer_stub, mem::kPageSize,
                                          mem::kProtRead | mem::kProtExec));
  }

  // Own SIGSYS (the application's view of SIGSYS is virtualized).
  task.process->sigactions[kern::kSigsys] =
      kern::SigAction{sigsys_addr_, kern::kSaSiginfo, 0};

  // Fast path: the zpoline trampoline at VA 0. A shared or forked address
  // space may already contain it.
  if (config_.rewrite_to_fast_path && install_trampoline &&
      !task.mem->is_mapped(0)) {
    LZP_RETURN_IF_ERROR(
        zpoline::ZpolineMechanism::install_trampoline(machine_, task, entry_addr_));
  }

  // Selector starts BLOCKed: the very first application syscall takes the
  // slow path. Then arm selector-only SUD (no allowlisted range at all).
  std::uint8_t block = kern::kSudBlock;
  LZP_RETURN_IF_ERROR(
      task.mem->write_force(local.gs_region + kGsSelector, {&block, 1}));
  if (config_.use_sud) {
    task.sud.enabled = true;
    task.sud.selector_addr = local.gs_region + kGsSelector;
    task.sud.allow_start = 0;
    task.sud.allow_len = 0;
  }

  // Init-time work (mmap/mprotect/prctl/sigaction calls of a real library).
  // init_task also runs outside host-frame scopes (install, preload, child
  // init), so pin the interposer attribution class explicitly.
  {
    kern::ScopedCycleClass scope(task, kern::CycleClass::kInterposer);
    machine_.charge(task, 5 * machine_.costs().raw_nosys_roundtrip());
  }

  // Verified-eager hybrid: patch statically proven-SAFE sites up front so
  // they never take the one-shot SIGSYS path. Runs after the trampoline is
  // in place (the patched CALL RAX must have somewhere to land) and again on
  // every execve re-init, against the freshly loaded image.
  if (config_.eager_verified_rewrite && config_.rewrite_to_fast_path &&
      install_trampoline) {
    eager_rewrite_safe_sites(task);
  }

  locals_[task.tid] = std::move(local);
  app_signals_.emplace(task.process->pid, AppSigTable{});
  if (auto* sink = machine_.trace_sink()) {
    // Arming is reported under the fast-path label; the first syscall's
    // SIGSYS discovery shows up as kLazypolineSlow spans on its own.
    sink->on_mechanism_install(task, kern::InterposeMechanism::kLazypolineFast);
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Selector & xstate plumbing
// ---------------------------------------------------------------------------

void Lazypoline::set_selector(Task& task, std::uint8_t value) {
  machine_.charge(task, machine_.costs().gs_selector_flip);
  const std::uint64_t addr = locals_[task.tid].gs_region + kGsSelector;
  (void)task.mem->write_force(addr, {&value, 1});
  if (auto* sink = machine_.trace_sink()) sink->on_selector_flip(task, value);
}

// Privileged write into the %gs region (bypasses guest protections, like
// a pkey-gated store from the runtime's trusted domain).
namespace {
void gs_write_u64(Task& task, std::uint64_t addr, std::uint64_t value) {
  std::uint8_t bytes[8];
  std::memcpy(bytes, &value, 8);
  (void)task.mem->write_force(addr, bytes);
}
}  // namespace

std::uint8_t Lazypoline::read_selector(Task& task) const {
  auto it = locals_.find(task.tid);
  if (it == locals_.end()) return kern::kSudAllow;
  std::uint8_t value = kern::kSudAllow;
  (void)task.mem->read_force(it->second.gs_region + kGsSelector, {&value, 1});
  return value;
}

std::uint64_t Lazypoline::xstate_cost() const noexcept {
  const std::uint64_t full = machine_.costs().xsave;
  switch (config_.xstate) {
    case XstateMode::kNone: return 0;
    case XstateMode::kSse: return full * 45 / 100;
    case XstateMode::kSseAvx: return full * 75 / 100;
    case XstateMode::kFull: return full;
  }
  return full;
}

void Lazypoline::xstate_push(Task& task, TaskLocal& local) {
  if (config_.xstate == XstateMode::kNone) return;
  machine_.charge(task, xstate_cost());
  local.xstate_stack.push_back(task.ctx.xstate);
  // Mirror into the %gs-relative xsave area (what the real xsave writes);
  // nested interposer invocations stack their areas (§IV-B).
  const std::size_t depth = local.xstate_stack.size() - 1;
  if (depth < kMaxNesting) {
    std::vector<std::uint8_t> buffer(cpu::XState::kSaveSize);
    task.ctx.xstate.save_to(buffer);
    (void)task.mem->write_force(local.gs_region + kGsXsaveStack +
                                    depth * cpu::XState::kSaveSize,
                                buffer);
    gs_write_u64(task, local.gs_region + kGsXsaveDepth, depth + 1);
  }
}

void Lazypoline::xstate_pop(Task& task, TaskLocal& local, bool discard) {
  if (config_.xstate == XstateMode::kNone) return;
  if (local.xstate_stack.empty()) return;
  const cpu::XState saved = local.xstate_stack.back();
  local.xstate_stack.pop_back();
  if (discard) return;  // context replaced: its own xstate is authoritative
  machine_.charge(task, machine_.costs().xrstor * xstate_cost() /
                            std::max<std::uint64_t>(machine_.costs().xsave, 1));
  cpu::XState& live = task.ctx.xstate;
  switch (config_.xstate) {
    case XstateMode::kFull:
      live = saved;
      break;
    case XstateMode::kSseAvx:
      live.xmm = saved.xmm;
      live.ymm_hi = saved.ymm_hi;
      live.mxcsr = saved.mxcsr;
      break;
    case XstateMode::kSse:
      live.xmm = saved.xmm;
      live.mxcsr = saved.mxcsr;
      break;
    case XstateMode::kNone:
      break;
  }
}

void Lazypoline::eager_rewrite_safe_sites(Task& task) {
  const isa::Program* program =
      machine_.find_program(task.process->program_name);
  if (program == nullptr) return;  // unregistered image: lazy covers it all

  const analysis::Analysis result =
      analysis::analyze(program->image, program->base, program->entry);
  if (cross_checker_) cross_checker_->add_region(result);
  for (const analysis::SiteVerdict& site : result.sites) {
    if (site.verdict != analysis::Verdict::kSafe) {
      ++stats_.eager_sites_deferred;
      continue;
    }
    // A thread or forked child sharing already-patched text: rewrite_locked
    // finds CALL RAX instead of SYSCALL and returns without touching it.
    std::uint8_t bytes[2] = {};
    const bool already =
        task.mem->read_force(site.addr, bytes).is_ok() &&
        !isa::is_syscall_bytes(bytes);
    if (Status status = rewrite_locked(task, site.addr); !status.is_ok()) {
      LZP_LOG_WARN << "lazypoline: eager rewrite failed: " << status.to_string();
    } else if (!already) {
      ++stats_.eager_sites_rewritten;
    }
  }
}

// ---------------------------------------------------------------------------
// Slow path: SUD SIGSYS -> verify site, rewrite, redirect to the entry
// ---------------------------------------------------------------------------

Status Lazypoline::rewrite_locked(Task& task, std::uint64_t site_addr) {
  // The spinlock serializes page-permission flipping across threads that
  // share this address space (§IV-A). The simulator schedules one task at a
  // time, so the lock can never be observed held; we model its cost and
  // count acquisitions for the ablation benches.
  bool& locked = rewrite_locks_[task.mem.get()];
  assert(!locked);
  locked = true;
  ++stats_.rewrite_lock_acquisitions;
  // Covers eager/manual rewrites that arrive outside a host-frame scope.
  kern::ScopedCycleClass scope(task, kern::CycleClass::kInterposer);
  machine_.charge(task, 30);

  Status status = Status::ok();
  std::uint8_t bytes[2] = {};
  if (task.mem->read_force(site_addr, bytes).is_ok() &&
      isa::is_syscall_bytes(bytes)) {
    status = zpoline::ZpolineMechanism::rewrite_site(machine_, task, site_addr);
    if (status.is_ok()) ++stats_.sites_rewritten;
  }
  // If the bytes are no longer a syscall, another thread already rewrote
  // this site between our SIGSYS and taking the lock; nothing to do.
  locked = false;
  return status;
}

void Lazypoline::on_sigsys(HostFrame& frame) {
  Task& task = frame.task;
  if (task.signal_frames.empty()) {
    machine_.kill_process(*task.process, 139, "lazypoline: SIGSYS without frame");
    return;
  }
  kern::SignalFrame& sigframe = task.signal_frames.back();
  const kern::SigInfo info = sigframe.info;

  if (info.code != kern::kSigsysUserDispatch) {
    // A SIGSYS not raised by SUD (e.g. kill()): forward to the application's
    // virtualized handler like any other signal.
    on_signal_wrapper(frame);
    return;
  }

  ++stats_.slow_path_hits;
  locals_[task.tid].pending_slow = true;

  // Our own syscalls (mprotect for the rewrite, the final sigreturn) must
  // bypass interception: selector -> ALLOW.
  set_selector(task, kern::kSudAllow);

  // The kernel just told us the exact, *verified* address of a real syscall
  // instruction: ip_after points right past its 2-byte encoding. Rewrite it
  // so every later execution takes the fast path.
  const std::uint64_t site = info.ip_after_syscall - 2;
  if (cross_checker_) {
    cross_checker_->observe_kernel_verified(machine_, task, site);
  }
  if (config_.rewrite_to_fast_path) {
    if (Status status = rewrite_locked(task, site); !status.is_ok()) {
      LZP_LOG_WARN << "lazypoline: rewrite failed at site: " << status.to_string();
    }
  }

  // Redirect the interrupted context to the generic interposer entry,
  // emulating the CALL the rewritten site will perform from now on: push
  // the resume address, point REG_RIP at the entry (§IV-A "selector-only").
  cpu::CpuContext& saved = sigframe.saved_context;
  const std::uint64_t new_rsp = saved.rsp() - 8;
  std::uint8_t addr_bytes[8];
  std::memcpy(addr_bytes, &info.ip_after_syscall, 8);
  if (auto fault = task.mem->write(new_rsp, addr_bytes)) {
    machine_.kill_process(*task.process, 139,
                          "lazypoline: cannot spill return address: " +
                              fault->to_string());
    return;
  }
  saved.set_rsp(new_rsp);
  saved.rip = entry_addr_;

  // sigreturn with the selector still ALLOW; the entry flips it back to
  // BLOCK when handing control to the application.
  (void)frame.syscall(kern::kSysRtSigreturn);
}

// ---------------------------------------------------------------------------
// Generic interposer entry (shared by fast and slow path)
// ---------------------------------------------------------------------------

void Lazypoline::on_entry(HostFrame& frame) {
  Task& task = frame.task;
  ++stats_.entry_invocations;
  frame.charge(machine_.costs().trampoline_glue);

  auto local_it = locals_.find(task.tid);
  if (local_it == locals_.end()) {
    machine_.kill_process(*task.process, 139,
                          "lazypoline: entry on uninitialized task");
    return;
  }
  TaskLocal& local = local_it->second;
  // Whether this entry was reached through SIGSYS discovery (on_sigsys set
  // the flag just before redirecting here) or a rewritten CALL-RAX site.
  const bool slow = local.pending_slow;
  local.pending_slow = false;
  const kern::InterposeMechanism mech =
      slow ? kern::InterposeMechanism::kLazypolineSlow
           : kern::InterposeMechanism::kLazypolineFast;

  set_selector(task, kern::kSudAllow);
  xstate_push(task, local);

  interpose::SyscallRequest req;
  req.nr = frame.ctx.syscall_number();
  for (std::size_t i = 0; i < 6; ++i) req.args[i] = frame.ctx.syscall_arg(i);
  if (auto ret_addr = task.mem->read_u64(frame.ctx.rsp())) {
    req.site = ret_addr.value() - 2;
    if (!slow && cross_checker_) {
      cross_checker_->observe_fast_entry(machine_, task, req.site);
    }
  }

  bool context_replaced = false;
  interpose::InterposeContext ictx(
      machine_, task, req,
      [this, &frame, &context_replaced](std::uint64_t nr,
                                        const std::array<std::uint64_t, 6>& args) {
        return route_syscall(frame, nr, args, &context_replaced);
      });
  if (auto* sink = machine_.trace_sink()) {
    sink->on_interpose_enter(task, req.nr, mech);
  }
  const std::uint64_t result = handler_->handle(ictx);
  if (auto* sink = machine_.trace_sink()) {
    sink->on_interpose_exit(task, req.nr, mech, result);
  }

  if (!task.runnable()) return;
  if (context_replaced) {
    // rt_sigreturn or execve installed a whole new context; its xstate is
    // authoritative, and the selector has been arranged by that path.
    xstate_pop(task, local, /*discard=*/true);
    return;
  }

  xstate_pop(task, local, /*discard=*/false);
  frame.ctx.set_syscall_result(result);
  set_selector(task, kern::kSudBlock);
  frame.ret();  // back to the instruction after the (rewritten) site
}

std::uint64_t Lazypoline::route_syscall(HostFrame& frame, std::uint64_t nr,
                                        const std::array<std::uint64_t, 6>& args,
                                        bool* context_replaced) {
  switch (nr) {
    case kern::kSysRtSigaction:
      return virtualized_sigaction(frame, args);
    case kern::kSysRtSigreturn: {
      const std::uint64_t result = app_sigreturn(frame);
      *context_replaced = true;
      return result;
    }
    case kern::kSysClone:
    case kern::kSysFork:
    case kern::kSysVfork:
      return clone_with_child_init(frame, nr, args);
    case kern::kSysExecve: {
      const std::uint64_t result = frame.syscall(nr, args);
      if (!kern::is_error_result(result)) *context_replaced = true;
      return result;
    }
    case kern::kSysExit:
    case kern::kSysExitGroup: {
      const std::uint64_t result = frame.syscall(nr, args);
      *context_replaced = true;
      return result;
    }
    default:
      return frame.syscall(nr, args);
  }
}

// ---------------------------------------------------------------------------
// Signal virtualization (Figure 3)
// ---------------------------------------------------------------------------

std::uint64_t Lazypoline::virtualized_sigaction(
    HostFrame& frame, const std::array<std::uint64_t, 6>& args) {
  Task& task = frame.task;
  const int sig = static_cast<int>(args[0]);
  if (sig <= 0 || sig >= kern::kNumSignals) {
    return kern::errno_result(kern::kEINVAL);
  }
  AppSigTable& table = app_signals_[task.process->pid];

  if (args[2] != 0) {  // report the *application's* previous action
    const kern::SigAction& old = table.actions[sig];
    if (!task.mem->write_u64(args[2], old.handler).is_ok() ||
        !task.mem->write_u64(args[2] + 8, old.flags).is_ok() ||
        !task.mem->write_u64(args[2] + 16, old.mask).is_ok()) {
      return kern::errno_result(kern::kEFAULT);
    }
  }
  if (args[1] == 0) return 0;

  kern::SigAction requested;
  auto handler_v = task.mem->read_u64(args[1]);
  auto flags_v = task.mem->read_u64(args[1] + 8);
  auto mask_v = task.mem->read_u64(args[1] + 16);
  if (!handler_v || !flags_v || !mask_v) return kern::errno_result(kern::kEFAULT);
  requested.handler = handler_v.value();
  requested.flags = flags_v.value();
  requested.mask = mask_v.value();
  table.actions[sig] = requested;

  if (sig == kern::kSigsys) {
    // lazypoline owns the kernel-side SIGSYS registration; the app handler
    // only lives in the table (forwarded for non-SUD SIGSYS).
    return 0;
  }

  // Register our wrapper (or pass DFL/IGN through unchanged) using the
  // %gs-relative scratch sigaction, via a real rt_sigaction syscall.
  const std::uint64_t scratch =
      locals_[task.tid].gs_region + kGsScratchSigaction;
  kern::SigAction installed = requested;
  if (requested.handler != kern::kSigDfl && requested.handler != kern::kSigIgn) {
    installed.handler = sig_wrapper_addr_;
    installed.flags |= kern::kSaSiginfo;
  }
  gs_write_u64(task, scratch, installed.handler);
  gs_write_u64(task, scratch + 8, installed.flags);
  gs_write_u64(task, scratch + 16, installed.mask);
  return frame.syscall(kern::kSysRtSigaction,
                       {args[0], scratch, 0, args[3], args[4], args[5]});
}

void Lazypoline::on_signal_wrapper(HostFrame& frame) {
  Task& task = frame.task;
  if (task.signal_frames.empty()) {
    machine_.kill_process(*task.process, 139, "lazypoline: wrapper without frame");
    return;
  }
  ++stats_.signals_wrapped;
  TaskLocal& local = locals_[task.tid];
  const kern::SigInfo info = task.signal_frames.back().info;

  // (1) Push the current selector to the %gs-relative sigreturn stack and
  // block dispatch while the application handler runs (Figure 3, step 1).
  const std::uint8_t selector = read_selector(task);
  local.sigreturn_selector_stack.push_back(selector);
  if (local.sigreturn_selector_stack.size() <= 64) {
    (void)task.mem->write_force(
        local.gs_region + kGsSigretStack +
            (local.sigreturn_selector_stack.size() - 1),
        {&selector, 1});
    gs_write_u64(task, local.gs_region + kGsSigretDepth,
                 local.sigreturn_selector_stack.size());
  }
  set_selector(task, kern::kSudBlock);

  const kern::SigAction app = app_signals_[task.process->pid].actions[info.signo];
  if (app.handler == kern::kSigDfl || app.handler == kern::kSigIgn) {
    // No live application handler (e.g. it was reset between delivery and
    // now): unwind immediately through our own sigreturn path.
    local.sigreturn_selector_stack.pop_back();
    set_selector(task, kern::kSudAllow);
    kern::SignalFrame& sigframe = task.signal_frames.back();
    local.trampoline_stack.emplace_back(selector, sigframe.saved_context.rip);
    sigframe.saved_context.rip = sigret_tramp_addr_;
    (void)frame.syscall(kern::kSysRtSigreturn);
    return;
  }

  // (2) Invoke the application handler; its return lands in the restorer
  // stub, whose rt_sigreturn is interposed like any other syscall.
  const std::uint64_t new_rsp = frame.ctx.rsp() - 8;
  std::uint8_t addr_bytes[8];
  std::memcpy(addr_bytes, &local.restorer_stub, 8);
  if (auto fault = task.mem->write(new_rsp, addr_bytes)) {
    machine_.kill_process(*task.process, 139,
                          "lazypoline: cannot push restorer: " + fault->to_string());
    return;
  }
  frame.ctx.set_rsp(new_rsp);
  frame.ctx.rip = app.handler;
}

std::uint64_t Lazypoline::app_sigreturn(HostFrame& frame) {
  Task& task = frame.task;
  TaskLocal& local = locals_[task.tid];
  if (task.signal_frames.empty()) {
    machine_.kill_process(*task.process, 139,
                          "lazypoline: rt_sigreturn without signal frame");
    return 0;
  }
  ++stats_.sigreturns_trampolined;

  std::uint8_t restore_selector = kern::kSudBlock;
  if (!local.sigreturn_selector_stack.empty()) {
    restore_selector = local.sigreturn_selector_stack.back();
    local.sigreturn_selector_stack.pop_back();
    gs_write_u64(task, local.gs_region + kGsSigretDepth,
                 local.sigreturn_selector_stack.size());
  }

  // (3)+(4): we cannot set the selector to its saved value *before* the
  // sigreturn (a BLOCK value would re-intercept the sigreturn itself), so
  // sigreturn with ALLOW and restore through the sigreturn trampoline.
  kern::SignalFrame& sigframe = task.signal_frames.back();
  local.trampoline_stack.emplace_back(restore_selector,
                                      sigframe.saved_context.rip);
  sigframe.saved_context.rip = sigret_tramp_addr_;
  set_selector(task, kern::kSudAllow);
  return frame.syscall(kern::kSysRtSigreturn);
}

void Lazypoline::on_sigret_trampoline(HostFrame& frame) {
  Task& task = frame.task;
  TaskLocal& local = locals_[task.tid];
  if (local.trampoline_stack.empty()) {
    machine_.kill_process(*task.process, 139,
                          "lazypoline: trampoline without pending sigreturn");
    return;
  }
  const auto [selector, resume_rip] = local.trampoline_stack.back();
  local.trampoline_stack.pop_back();
  set_selector(task, selector);
  frame.ctx.rip = resume_rip;
}

// ---------------------------------------------------------------------------
// Multiprocessing / multithreading (§IV-B): re-arm SUD in every child
// ---------------------------------------------------------------------------

std::uint64_t Lazypoline::clone_with_child_init(
    HostFrame& frame, std::uint64_t nr,
    const std::array<std::uint64_t, 6>& args) {
  Task& parent = frame.task;
  const std::uint64_t parent_rsp = frame.ctx.rsp();
  const std::uint64_t result = frame.syscall(nr, args);
  if (kern::is_error_result(result)) return result;

  Task* child = machine_.find_task_any(static_cast<kern::Tid>(result));
  if (child == nullptr) return result;

  // The child must resume in application code right after the interposed
  // call site, not inside our native entry.
  auto ret_addr = parent.mem->read_u64(parent_rsp);
  if (ret_addr) {
    child->ctx.rip = ret_addr.value();
    const std::uint64_t clone_stack = nr == kern::kSysClone ? args[1] : 0;
    child->ctx.set_rsp(clone_stack != 0 ? clone_stack : parent_rsp + 8);
    child->ctx.set_reg(isa::Gpr::rax, 0);
  }

  // SUD was deactivated by the kernel on clone/fork; re-enable it with a
  // fresh per-task selector so the child's syscalls stay interposed.
  if (Status status = init_task(*child, /*install_trampoline=*/false);
      !status.is_ok()) {
    LZP_LOG_WARN << "lazypoline: child init failed: " << status.to_string();
    return result;
  }
  ++stats_.children_initialized;
  return result;
}

// ---------------------------------------------------------------------------
// Benchmark support
// ---------------------------------------------------------------------------

Status Lazypoline::rewrite_site_manually(kern::Tid tid, std::uint64_t site_addr) {
  Task* task = machine_.find_task_any(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "no such task");
  }
  return rewrite_locked(*task, site_addr);
}

Status Lazypoline::disable_sud(kern::Tid tid) {
  Task* task = machine_.find_task_any(tid);
  if (task == nullptr) {
    return make_error(StatusCode::kNotFound, "no such task");
  }
  task->sud = kern::SudState{};
  return Status::ok();
}

}  // namespace lzp::core
