// lazypoline — the paper's contribution (§III, §IV): hybrid exhaustive +
// efficient + expressive syscall interposition.
//
//   SLOW PATH (exhaustive): Syscall User Dispatch, used "selector-only" —
//   no allowlisted code range at all. Every not-yet-rewritten syscall
//   triggers SIGSYS; the handler rewrites the (kernel-verified!) syscall
//   instruction to CALL RAX, then redirects the interrupted context to the
//   generic interposer entry by rewriting the saved REG_RIP and sigreturning
//   with the selector still ALLOW (§IV-A).
//
//   FAST PATH (efficient): the zpoline trampoline at VA 0. Rewritten sites
//   reach the same generic entry directly, with no kernel involvement beyond
//   the (armed-SUD) entry cost of the real syscall the interposer performs.
//
//   The generic entry is shared by both paths, preserves the full syscall
//   ABI including extended state (configurable, §IV-B), flips the per-task
//   %gs-relative selector around the interposer, virtualizes application
//   signal handling (§IV-B, Figure 3), and re-arms SUD in every child task
//   created by fork/clone and every post-execve image.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "analysis/crosscheck.hpp"
#include "cpu/context.hpp"
#include "interpose/mechanism.hpp"

namespace lzp::core {

// Which extended state components the interposer entry preserves (§IV-B:
// "a configurable option that controls which extended state components are
// preserved, if any").
enum class XstateMode : std::uint8_t {
  kNone,    // GPRs only — fastest, breaks Listing-1-style code
  kSse,     // XMM registers
  kSseAvx,  // XMM + YMM upper lanes
  kFull,    // XMM + YMM + legacy x87 (default; fully ABI-compliant)
};

[[nodiscard]] constexpr std::string_view to_string(XstateMode mode) noexcept {
  switch (mode) {
    case XstateMode::kNone: return "none";
    case XstateMode::kSse: return "sse";
    case XstateMode::kSseAvx: return "sse+avx";
    case XstateMode::kFull: return "full";
  }
  return "?";
}

struct LazypolineConfig {
  XstateMode xstate = XstateMode::kFull;
  // Rewrite discovered sites to CALL RAX (fast path). Off = pure-SUD mode
  // (every syscall takes the slow path; ablation only).
  bool rewrite_to_fast_path = true;
  // Arm SUD. Off = fast-path-only: no discovery of new sites; used together
  // with rewrite_all_known_sites()/rewrite_site_manually() to measure the
  // fast path without the SUD-armed kernel entry cost (Figure 4's
  // "lazypoline without SUD" == zpoline configuration).
  bool use_sud = true;
  // Verified-eager hybrid: at init (and after every execve re-init), run the
  // static rewrite-safety analyzer (src/analysis) over the task's program
  // image and patch the sites it proves SAFE ahead of time, so they never
  // pay the one-shot SIGSYS discovery. Everything the analyzer cannot prove
  // (UNSAFE_*, UNKNOWN, JIT-generated code, runtime stubs) still reaches the
  // lazy/SUD slow path — exhaustiveness is unchanged.
  bool eager_verified_rewrite = false;
  // §VI security extension: isolate the interposer's sensitive state (the
  // SUD selector byte, the sigreturn stack, the xsave areas) from the
  // application. The %gs region is mapped read-only for guest code; only the
  // runtime's privileged path writes it — modeling MPK-style intra-process
  // isolation. A guest store to the selector kills the process instead of
  // silently disarming interposition.
  bool protect_selector = false;
};

struct LazypolineStats {
  std::uint64_t entry_invocations = 0;   // fast+slow, total interpositions
  std::uint64_t slow_path_hits = 0;      // SIGSYS-mediated (first use of a site)
  std::uint64_t sites_rewritten = 0;
  std::uint64_t eager_sites_rewritten = 0;  // subset patched ahead of time
  std::uint64_t eager_sites_deferred = 0;   // non-SAFE candidates left lazy
  std::uint64_t rewrite_lock_acquisitions = 0;
  std::uint64_t signals_wrapped = 0;     // app signal deliveries virtualized
  std::uint64_t sigreturns_trampolined = 0;
  std::uint64_t children_initialized = 0;
  std::uint64_t execves_reinitialized = 0;

  [[nodiscard]] std::uint64_t fast_path_hits() const noexcept {
    return entry_invocations - slow_path_hits;
  }
};

class Lazypoline final : public interpose::Mechanism,
                         public std::enable_shared_from_this<Lazypoline> {
 public:
  // The runtime binds its native entry points into `machine` once.
  static std::shared_ptr<Lazypoline> create(kern::Machine& machine,
                                            LazypolineConfig config = {});

  [[nodiscard]] std::string name() const override { return "lazypoline"; }

  // Initializes the runtime inside the given task (maps the per-task
  // %gs-region, installs the SIGSYS handler + VA-0 trampoline, arms SUD) and
  // directs every intercepted syscall to `handler`.
  Status install(kern::Machine& machine, kern::Tid tid,
                 std::shared_ptr<interpose::SyscallHandler> handler) override;

  // Registers this runtime as the machine's preload hook so images loaded
  // by execve are re-initialized automatically (the LD_PRELOAD model).
  void attach_as_preload();

  [[nodiscard]] interpose::Characteristics characteristics() const override {
    return {interpose::Level::kFull, /*exhaustive=*/config_.use_sud,
            interpose::Level::kHigh};
  }

  [[nodiscard]] const LazypolineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LazypolineConfig& config() const noexcept { return config_; }
  // The generic interposer entry point's (host) address — exposed for tests
  // and diagnostics that need to observe execution at the fast/slow joint.
  [[nodiscard]] std::uint64_t entry_address() const noexcept { return entry_addr_; }

  // Attaches the static/dynamic cross-checker: SIGSYS discoveries (kernel
  // ground truth) and fast-path entries are reported against the static
  // verdicts it holds. With eager_verified_rewrite the runtime registers its
  // own analysis of each program image; callers may add further regions.
  void set_cross_checker(std::shared_ptr<analysis::CrossChecker> checker) {
    cross_checker_ = std::move(checker);
  }
  [[nodiscard]] const std::shared_ptr<analysis::CrossChecker>& cross_checker()
      const noexcept {
    return cross_checker_;
  }

  // Benchmark support (§V-B: "we manually rewrote the syscall instruction up
  // front, so there is no initial execution of the slow path").
  Status rewrite_site_manually(kern::Tid tid, std::uint64_t site_addr);
  // Disarms SUD on a task without tearing down the fast path (Figure 4's
  // SUD-off configuration).
  Status disable_sud(kern::Tid tid);

  // Per-task %gs region layout (a 2-page RW mapping).
  static constexpr std::int32_t kGsSelector = 0;        // the SUD selector byte
  static constexpr std::int32_t kGsSigretDepth = 8;     // sigreturn-stack depth
  static constexpr std::int32_t kGsSigretStack = 16;    // 64 selector slots
  static constexpr std::int32_t kGsScratchSigaction = 96;   // 24-byte scratch
  static constexpr std::int32_t kGsXsaveDepth = 128;
  static constexpr std::int32_t kGsXsaveStack = 136;    // nested xsave areas
  static constexpr std::size_t kGsRegionSize = 2 * 4096;
  static constexpr std::size_t kMaxNesting = 8;

 private:
  Lazypoline(kern::Machine& machine, LazypolineConfig config);
  void bind_entry_points();

  struct TaskLocal {
    std::uint64_t gs_region = 0;
    std::uint64_t restorer_stub = 0;  // per-address-space signal restorer
    std::vector<cpu::XState> xstate_stack;
    std::vector<std::uint8_t> sigreturn_selector_stack;
    // (selector to restore, rip to resume at) for the sigreturn trampoline.
    std::vector<std::pair<std::uint8_t, std::uint64_t>> trampoline_stack;
    // Set by on_sigsys, consumed by on_entry: distinguishes the SIGSYS
    // discovery path from the rewritten-site fast path in the trace.
    bool pending_slow = false;
  };
  // Virtualized application signal handlers, per process.
  struct AppSigTable {
    std::array<kern::SigAction, kern::kNumSignals> actions{};
  };

  // --- runtime pieces (host functions) -----------------------------------
  void on_sigsys(kern::HostFrame& frame);
  void on_entry(kern::HostFrame& frame);
  void on_sigret_trampoline(kern::HostFrame& frame);
  void on_signal_wrapper(kern::HostFrame& frame);

  // The raw-syscall router handed to the user handler: executes most
  // syscalls directly, applies lazypoline's special handling to
  // rt_sigaction / rt_sigreturn / clone / fork / vfork / execve.
  std::uint64_t route_syscall(kern::HostFrame& frame, std::uint64_t nr,
                              const std::array<std::uint64_t, 6>& args,
                              bool* context_replaced);

  std::uint64_t virtualized_sigaction(kern::HostFrame& frame,
                                      const std::array<std::uint64_t, 6>& args);
  std::uint64_t app_sigreturn(kern::HostFrame& frame);
  std::uint64_t clone_with_child_init(kern::HostFrame& frame, std::uint64_t nr,
                                      const std::array<std::uint64_t, 6>& args);

  Status init_task(kern::Task& task, bool install_trampoline);
  void set_selector(kern::Task& task, std::uint8_t value);
  [[nodiscard]] std::uint8_t read_selector(kern::Task& task) const;

  void xstate_push(kern::Task& task, TaskLocal& local);
  // `discard`: pop bookkeeping without writing registers (context replaced).
  void xstate_pop(kern::Task& task, TaskLocal& local, bool discard);
  [[nodiscard]] std::uint64_t xstate_cost() const noexcept;

  Status rewrite_locked(kern::Task& task, std::uint64_t site_addr);
  void eager_rewrite_safe_sites(kern::Task& task);

  kern::Machine& machine_;
  LazypolineConfig config_;
  LazypolineStats stats_;
  std::shared_ptr<interpose::SyscallHandler> handler_;
  std::shared_ptr<analysis::CrossChecker> cross_checker_;

  std::uint64_t sigsys_addr_ = 0;
  std::uint64_t entry_addr_ = 0;
  std::uint64_t sigret_tramp_addr_ = 0;
  std::uint64_t sig_wrapper_addr_ = 0;

  std::map<kern::Tid, TaskLocal> locals_;
  std::map<kern::Pid, AppSigTable> app_signals_;
  // One rewrite lock per address space (threads share text pages).
  std::map<const mem::AddressSpace*, bool> rewrite_locks_;
};

}  // namespace lzp::core
