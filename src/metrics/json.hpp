// Minimal JSON emission shared by the bench binaries and the trace exporter.
//
// Every BENCH_*.json artifact and the Chrome trace-event export used to be
// hand-rolled snprintf strings scattered across bench/; JsonObject centralizes
// escaping and comma placement so a malformed key can't silently corrupt an
// artifact the CI gate parses. Emission only — parsing (tests only) lives in
// the tests that need it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lzp::metrics {

// Escapes `text` for inclusion inside a JSON string literal (quotes not
// included): backslash, quote, and control characters.
[[nodiscard]] std::string json_escape(std::string_view text);

// Order-preserving JSON object builder. Values added via add() are escaped /
// formatted; add_raw() splices pre-rendered JSON (a nested object or array).
class JsonObject {
 public:
  JsonObject& add(std::string_view key, std::string_view value);
  JsonObject& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  JsonObject& add(std::string_view key, std::uint64_t value);
  JsonObject& add(std::string_view key, std::int64_t value);
  JsonObject& add(std::string_view key, int value) {
    return add(key, static_cast<std::int64_t>(value));
  }
  JsonObject& add(std::string_view key, unsigned value) {
    return add(key, static_cast<std::uint64_t>(value));
  }
  JsonObject& add(std::string_view key, double value);
  JsonObject& add(std::string_view key, bool value);
  // Splices `json` verbatim as the value (caller guarantees validity).
  JsonObject& add_raw(std::string_view key, std::string_view json);

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

// Renders a JSON array from pre-rendered element strings.
[[nodiscard]] std::string json_array(const std::vector<std::string>& elements);

}  // namespace lzp::metrics
