#include "metrics/json.hpp"

#include <cmath>
#include <cstdio>

namespace lzp::metrics {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObject& JsonObject::add(std::string_view key, std::string_view value) {
  fields_.emplace_back(std::string(key), "\"" + json_escape(value) + "\"");
  return *this;
}

JsonObject& JsonObject::add(std::string_view key, std::uint64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

JsonObject& JsonObject::add(std::string_view key, std::int64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

JsonObject& JsonObject::add(std::string_view key, double value) {
  // JSON has no inf/NaN literals; null is the conventional stand-in.
  if (!std::isfinite(value)) {
    fields_.emplace_back(std::string(key), "null");
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  fields_.emplace_back(std::string(key), buf);
  return *this;
}

JsonObject& JsonObject::add(std::string_view key, bool value) {
  fields_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::add_raw(std::string_view key, std::string_view json) {
  fields_.emplace_back(std::string(key), std::string(json));
  return *this;
}

std::string JsonObject::render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
  }
  return out + "}";
}

std::string json_array(const std::vector<std::string>& elements) {
  std::string out = "[";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i != 0) out += ", ";
    out += elements[i];
  }
  return out + "]";
}

}  // namespace lzp::metrics
