// ASCII table / series rendering for the benchmark harnesses, so each bench
// binary prints rows directly comparable to the paper's tables and figures.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lzp::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// A figure series: x label -> one value per series name. Rendered as an
// aligned table with the x column first (the shape of Fig. 4/5 data).
class Series {
 public:
  Series(std::string x_label, std::vector<std::string> series_names);

  void add_point(std::string x, std::vector<double> values, int decimals = 1);
  [[nodiscard]] std::string render() const;

 private:
  Table table_;
};

// "2.38x" style ratio formatting.
[[nodiscard]] std::string ratio(double value, int decimals = 2);
// "94.72%" style.
[[nodiscard]] std::string percent(double value, int decimals = 2);

// A two-column counter table ("counter | value") for cache/stat reports —
// the shape the benches use for decode-cache hit/miss/invalidation counts.
[[nodiscard]] std::string counters_table(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters);

}  // namespace lzp::metrics
