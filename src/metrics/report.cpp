#include "metrics/report.hpp"

#include <algorithm>
#include <cmath>

#include "base/strings.hpp"

namespace lzp::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      line += " " + pad_right(cells[i], widths[i]) + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (std::size_t width : widths) {
    rule += std::string(width + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

Series::Series(std::string x_label, std::vector<std::string> series_names)
    : table_([&] {
        std::vector<std::string> headers{std::move(x_label)};
        for (auto& name : series_names) headers.push_back(std::move(name));
        return headers;
      }()) {}

void Series::add_point(std::string x, std::vector<double> values, int decimals) {
  std::vector<std::string> cells{std::move(x)};
  for (double value : values) cells.push_back(format_double(value, decimals));
  table_.add_row(std::move(cells));
}

std::string Series::render() const { return table_.render(); }

std::string ratio(double value, int decimals) {
  // A ratio of a cycle/time measurement is only meaningful when positive and
  // finite; a zero or failed baseline otherwise renders as "inf x" / "-0.5x"
  // in tables the benches publish.
  if (!std::isfinite(value) || value <= 0.0) return "n/a";
  return format_double(value, decimals) + "x";
}

std::string percent(double value, int decimals) {
  return format_double(value, decimals) + "%";
}

std::string counters_table(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  Table table({"counter", "value"});
  for (const auto& [name, value] : counters) {
    table.add_row({name, std::to_string(value)});
  }
  return table.render();
}

}  // namespace lzp::metrics
