#include "profile/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "kernel/syscalls.hpp"
#include "metrics/report.hpp"

namespace lzp::profile {

namespace {

std::string hex_addr(std::uint64_t addr) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%llx",
                static_cast<unsigned long long>(addr));
  return buffer;
}

}  // namespace

// ---------------------------------------------------------------------------
// Attach / configure
// ---------------------------------------------------------------------------

void Profiler::attach(kern::Machine& machine) {
  machine_ = &machine;
  machine.set_profile_sink(this);
}

void Profiler::detach() {
  if (machine_ != nullptr) machine_->set_profile_sink(nullptr);
  machine_ = nullptr;
}

void Profiler::register_symbol(std::uint64_t start, std::uint64_t size,
                               std::string name) {
  symbols_[start] = {size, std::move(name)};
}

void Profiler::clear() {
  sync();  // drain machine-side pending so it can't resurface post-clear
  auto lock = maybe_lock();
  class_cycles_ = {};
  guest_sites_.clear();
  detail_sites_.clear();
  folded_.clear();
  task_state_.clear();
  cached_state_ = nullptr;
}

// ---------------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------------

Profiler::SiteStats* Profiler::guest_site(TaskState& state,
                                          std::uint64_t addr) {
  auto& bucket =
      state.site_hash[(addr * 0x9E3779B97F4A7C15ULL) >>
                      (64 - 6)];  // 6 bits -> kSlotHashSize buckets
  if (bucket.site != nullptr && bucket.addr == addr) return bucket.site;
  SiteStats* site = &guest_sites_[addr];
  bucket = {addr, site};
  return site;
}

void Profiler::on_guest_block(const kern::Task& task, std::uint64_t block_start,
                              std::uint32_t retired, std::uint64_t cycles) {
  auto lock = maybe_lock();
  TaskState& state = state_for(task.tid);
  state.leaf = block_start;
  state.leaf_valid = true;
  // The block engine's probe is already per-superblock, so always count.
  SiteStats* site = guest_site(state, block_start);
  site->cycles += cycles;
  site->events += retired;
}

void Profiler::on_guest_insn(const kern::Task& task, std::uint64_t rip,
                             std::uint64_t cycles) {
  auto lock = maybe_lock();
  TaskState& state = state_for(task.tid);
  state.leaf = rip;
  state.leaf_valid = true;
  // The machine already samples and batches (step_sample_period): `cycles`
  // covers everything charged for guest instructions since the last probe,
  // attributed to the sampled rip. Period 1 makes this exactly per
  // instruction; larger periods coarsen only the site map — class totals
  // always flow through on_cycles.
  SiteStats* site = guest_site(state, rip);
  site->cycles += cycles;
  site->events += config_.step_sample_period;
}

void Profiler::on_cycles(const kern::Task& task, kern::CycleClass cls,
                         std::uint64_t detail, std::uint64_t cycles) {
  // Zero-cost charges (e.g. the zpoline nop sled, whose traversal is charged
  // as one lump at the trampoline entry) would only litter the maps with
  // zero-cycle rows; class totals are unchanged by skipping them.
  if (cycles == 0) return;
  auto lock = maybe_lock();
  class_cycles_[static_cast<std::size_t>(cls)] += cycles;

  // Guest-class host calls (app harnesses bound with CycleClass::kGuest —
  // modeled application compute) carry the binding address as their detail;
  // attribute them as named guest sites, not under the retire-probe leaf.
  const bool guest_hostcall =
      cls == kern::CycleClass::kGuest &&
      detail >= kern::Machine::kHostRegionBase;
  const bool plain_guest = cls == kern::CycleClass::kGuest && !guest_hostcall;
  if (plain_guest) detail = 0;

  // Resolve the charge's accumulation targets through the per-task slot memo.
  // Guest charges fold at symbol-range granularity, so the hot path —
  // consecutive charges whose leaf stays inside one function, same frame,
  // same class — is a range check plus pointer bumps; class transitions
  // (guest -> kernel -> interposer around every syscall) hit the memo's
  // direct-mapped hash instead of rebuilding the fold key string.
  TaskState& state = state_for(task.tid);
  // Frame-walk context: a plain-guest run flushes at the next attribution
  // scope's first charge, before anything has moved the registers, so live
  // ctx is the charge-time context. A non-guest run flushes at the first
  // *guest* charge after its scope — possibly an instruction that already
  // tore the frame down — so it folds under the run-start snapshot
  // (Task::pending_rbp) instead.
  const std::uint64_t rbp =
      plain_guest ? task.ctx.reg(isa::Gpr::rbp) : task.pending_rbp;
  std::uint64_t site = 0;
  if (plain_guest) {
    if (!state.leaf_valid) {
      site = ~0ULL;  // pre-first-probe charges: "guest:other"
    } else {
      if (state.leaf < state.range_lo || state.leaf >= state.range_hi) {
        refresh_range(state, state.leaf);
      }
      site = state.range_lo;
    }
  }
  const SlotKey key{cls, detail, site, rbp};
  TaskState::Slot slot{};
  if (state.last_slot.fold != nullptr && state.last_key == key) {
    slot = state.last_slot;
  } else {
    auto& bucket = state.slot_hash[slot_hash_index(key)];
    if (bucket.slot.fold != nullptr && bucket.key == key) {
      slot = bucket.slot;
    } else if (auto it = state.slots.find(key); it != state.slots.end()) {
      slot = it->second;
      bucket = {key, slot};
    } else {
      std::string leaf_label;
      if (plain_guest) {
        leaf_label = state.leaf_valid ? state.range_label : "guest:other";
      } else {
        leaf_label = detail_label(DetailKey{cls, detail});
      }
      slot.fold = &folded_[fold_key(task, rbp, leaf_label)];
      if (!plain_guest) slot.site = &detail_sites_[DetailKey{cls, detail}];
      // Backstop for pathological frame churn; the memo is only a cache (the
      // hash entries stay valid — they point into node-stable maps).
      if (state.slots.size() >= 4096) state.slots.clear();
      state.slots.emplace(key, slot);
      bucket = {key, slot};
    }
    state.last_key = key;
    state.last_slot = slot;
  }
  *slot.fold += cycles;
  if (slot.site != nullptr) {
    slot.site->cycles += cycles;
    ++slot.site->events;
  }
}

std::size_t Profiler::slot_hash_index(const SlotKey& key) noexcept {
  std::uint64_t h = static_cast<std::uint64_t>(key.cls) * 0x9E3779B97F4A7C15ULL;
  h ^= key.detail * 0xBF58476D1CE4E5B9ULL;
  h ^= key.site * 0x94D049BB133111EBULL;
  h ^= key.rbp * 0x2545F4914F6CDD1DULL;
  h ^= h >> 29;
  return h & (TaskState::kSlotHashSize - 1);
}

// ---------------------------------------------------------------------------
// Stack walking & symbolization
// ---------------------------------------------------------------------------

const std::vector<std::uint64_t>& Profiler::walk_stack(const kern::Task& task,
                                                       std::uint64_t rbp) {
  TaskState& state = state_for(task.tid);
  if (state.cached_rbp == rbp) return state.cached_frames;

  state.cached_frames.clear();
  std::uint64_t frame = rbp;
  for (std::size_t depth = 0;
       depth < config_.max_stack_depth && frame != 0 &&
       frame < kern::Machine::kHostRegionBase;
       ++depth) {
    // Frame-pointer ABI: [rbp+8] = return address, [rbp] = caller's rbp.
    auto ret = task.mem->read_u64(frame + 8);
    auto next = task.mem->read_u64(frame);
    if (!ret || !next) break;
    const std::uint64_t ret_addr = ret.value();
    // A return address must land in guest code; anything else means rbp is
    // being used as a general-purpose register and the chain is garbage.
    if (ret_addr == 0 || ret_addr >= kern::Machine::kHostRegionBase) break;
    state.cached_frames.push_back(ret_addr);
    // The caller's frame lives at a strictly higher address (stack grows
    // down); anything else would loop.
    if (next.value() <= frame) break;
    frame = next.value();
  }
  state.cached_rbp = rbp;
  return state.cached_frames;
}

void Profiler::refresh_range(TaskState& state, std::uint64_t leaf) const {
  auto it = symbols_.upper_bound(leaf);
  // Clip to the next symbol's start so a later-starting nested range can
  // never be masked by a cached enclosing one.
  std::uint64_t hi =
      it == symbols_.end() ? kern::Machine::kHostRegionBase : it->first;
  std::uint64_t lo = 0;
  bool found = false;
  while (it != symbols_.begin()) {
    --it;
    const auto& [size, name] = it->second;
    if (leaf - it->first < size) {
      // Tightest containing range (latest start wins, as in symbolize()).
      lo = std::max(lo, it->first);
      hi = std::min(hi, it->first + size);
      state.range_label = name;
      found = true;
      break;
    }
    // A range starting at or below the leaf that does not contain it ends at
    // or below it: it bounds the unsymbolized gap from below.
    lo = std::max(lo, it->first + size);
  }
  if (!found) state.range_label = "guest:code";
  state.range_lo = lo;
  state.range_hi = hi;
}

std::string Profiler::symbolize(std::uint64_t addr) const {
  // Tightest registered range containing addr wins.
  auto it = symbols_.upper_bound(addr);
  while (it != symbols_.begin()) {
    --it;
    const auto& [size, name] = it->second;
    if (addr - it->first < size) return name;
    // Earlier ranges start even lower; only nested (enclosing) ranges can
    // still match, so keep scanning backwards.
  }
  return hex_addr(addr);
}

std::string Profiler::detail_label(const DetailKey& key) const {
  switch (key.cls) {
    case kern::CycleClass::kKernel:
      return "kernel:" + std::string(kern::syscall_name(key.detail));
    case kern::CycleClass::kInterposer:
      if (key.detail >= kern::Machine::kHostRegionBase) {
        return "interposer:" + (machine_ != nullptr
                                    ? machine_->host_name(key.detail)
                                    : hex_addr(key.detail));
      }
      if (key.detail == kern::kDetailPtraceStop) {
        return "interposer:ptrace-tracer";
      }
      if (key.detail == kern::kDetailUserNotif) {
        return "interposer:seccomp-supervisor";
      }
      return "interposer:runtime";
    case kern::CycleClass::kDecorator:
      return key.detail == kern::kDetailRecorder ? "decorator:record"
                                                 : "decorator:other";
    case kern::CycleClass::kGuest:
      // Only reached for guest-class host calls (modeled app compute).
      if (key.detail >= kern::Machine::kHostRegionBase) {
        return "guest:" + (machine_ != nullptr ? machine_->host_name(key.detail)
                                               : hex_addr(key.detail));
      }
      break;
  }
  return "guest";
}

std::string Profiler::fold_key(const kern::Task& task, std::uint64_t rbp,
                               const std::string& leaf) {
  const std::vector<std::uint64_t>& frames = walk_stack(task, rbp);
  std::string key = task.process != nullptr ? task.process->program_name
                                            : "<no-process>";
  // frames is leaf-first; flamegraph format wants root-first.
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    key += ';';
    key += symbolize(*it);
  }
  key += ';';
  key += leaf;
  return key;
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

std::array<std::uint64_t, kern::kNumCycleClasses> Profiler::class_cycles()
    const {
  sync();
  return class_cycles_;
}

std::uint64_t Profiler::total_cycles() const {
  sync();
  std::uint64_t sum = 0;
  for (std::uint64_t c : class_cycles_) sum += c;
  return sum;
}

std::string Profiler::folded_stacks() const {
  sync();
  std::string out;
  for (const auto& [key, cycles] : folded_) {
    out += key;
    out += ' ';
    out += std::to_string(cycles);
    out += '\n';
  }
  return out;
}

std::vector<HotSite> Profiler::hot_sites(std::size_t top_n) const {
  sync();
  // Merge by (class, label): distinct addresses sharing a registered symbol
  // (or distinct host bindings sharing a name — one runtime per task) are one
  // site to the reader.
  std::map<std::pair<kern::CycleClass, std::string>, SiteStats> merged;
  for (const auto& [addr, stats] : guest_sites_) {
    if (stats.cycles == 0) continue;  // e.g. the free-to-step zpoline nop sled
    SiteStats& slot = merged[{kern::CycleClass::kGuest, symbolize(addr)}];
    slot.cycles += stats.cycles;
    slot.events += stats.events;
  }
  for (const auto& [key, stats] : detail_sites_) {
    SiteStats& slot = merged[{key.cls, detail_label(key)}];
    slot.cycles += stats.cycles;
    slot.events += stats.events;
  }
  std::vector<HotSite> sites;
  sites.reserve(merged.size());
  for (const auto& [key, stats] : merged) {
    sites.push_back(HotSite{key.first, key.second, stats.cycles, stats.events});
  }
  std::sort(sites.begin(), sites.end(), [](const HotSite& a, const HotSite& b) {
    if (a.cycles != b.cycles) return a.cycles > b.cycles;
    return a.label < b.label;
  });
  if (sites.size() > top_n) sites.resize(top_n);
  return sites;
}

std::string Profiler::render_hot_sites(std::size_t top_n) const {
  const std::uint64_t total = std::max<std::uint64_t>(total_cycles(), 1);
  metrics::Table table({"class", "site", "cycles", "share", "events"});
  for (const HotSite& site : hot_sites(top_n)) {
    table.add_row({std::string(kern::to_string(site.cls)), site.label,
                   std::to_string(site.cycles),
                   metrics::percent(100.0 * static_cast<double>(site.cycles) /
                                    static_cast<double>(total)),
                   std::to_string(site.events)});
  }
  std::ostringstream out;
  out << table.render() << '\n';
  metrics::Table classes({"class", "cycles", "share"});
  for (std::size_t i = 0; i < kern::kNumCycleClasses; ++i) {
    classes.add_row(
        {std::string(kern::to_string(static_cast<kern::CycleClass>(i))),
         std::to_string(class_cycles_[i]),
         metrics::percent(100.0 * static_cast<double>(class_cycles_[i]) /
                          static_cast<double>(total))});
  }
  out << classes.render();
  return out.str();
}

}  // namespace lzp::profile
