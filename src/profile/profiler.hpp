// The full-fat ProfileSink: cycle-exact guest profiler with call-stack
// folding and per-class attribution.
//
// A Profiler attaches to a Machine as its profile sink and accumulates, per
// attribution class (kernel/profile_sink.hpp), every simulated cycle the
// machine charges. Class totals come from the on_cycles mirror of
// Machine::charge(), so they sum to Machine::total_cycles() *exactly* — with
// the superblock engine on or off — which is the invariant examples/profile
// and bench/profile_overhead gate on.
//
// Site attribution rides on the engine probes: on_guest_block gives exact
// per-block sites (the batched engine's native granularity), on_guest_insn is
// the step_once fallback, optionally sampled (every Nth retirement event per
// task, deterministic) when full counting is too hot. Sampling only coarsens
// the *site* map; class totals stay exact either way.
//
// Call stacks are recovered by walking the guest's %rbp frame chain
// ([rbp+8] = return address, [rbp] = caller's rbp — the frame-pointer ABI the
// assembler's push rbp / mov rbp,rsp prologue produces). Reads go through
// AddressSpace::read_u64 (fault-returning, never perturbing), the walk is
// bounded, and results are cached per task keyed on the live rbp value.
// Non-guest cycles fold under the task's current guest stack with a synthetic
// leaf frame ("kernel:write", "interposer:lazypoline.entry", ...), so a
// flamegraph shows interposition cost hanging off the call site that paid it.
//
// Determinism: all containers are ordered maps and output is emitted in key
// order, so same-seed runs produce byte-identical folded stacks and tables
// (tests/profile_test.cpp asserts this). Under run_smp, flip
// set_concurrent(true) — probes then serialize through a mutex, same pattern
// as trace::Tracer.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kernel/machine.hpp"
#include "kernel/profile_sink.hpp"

namespace lzp::profile {

struct ProfilerConfig {
  // Attribute sites on every Nth guest retirement event per task under the
  // step engine (1 = count everything, exactly per instruction). Exported to
  // the machine via ProfileSink::step_sample_period(): the machine batches
  // the skipped instructions' cycles onto the next probe, so site sums stay
  // exact while the per-instruction probe cost amortizes by N. The block
  // engine always counts every block — its probe already amortizes to one
  // call per superblock. Set BEFORE attach(); the machine reads it once.
  std::uint64_t step_sample_period = 1;
  // Frame-pointer walk depth bound (leaf excluded).
  std::size_t max_stack_depth = 16;
};

// One row of the hot-site table.
struct HotSite {
  kern::CycleClass cls = kern::CycleClass::kGuest;
  std::string label;          // symbolized site / synthetic frame name
  std::uint64_t cycles = 0;
  std::uint64_t events = 0;   // blocks/insns (guest) or charges (other)
};

class Profiler final : public kern::ProfileSink {
 public:
  explicit Profiler(ProfilerConfig config = {}) : config_(config) {}

  // Installs this profiler as the machine's profile sink. Attach before
  // creating tasks / installing mechanisms to capture install-time charges;
  // class sums then match total_cycles() from a fresh machine exactly.
  void attach(kern::Machine& machine);
  void detach();

  // SMP mode: probes fire from several host threads at once; serialize them.
  // Flip only while no run is in progress.
  void set_concurrent(bool on) noexcept { concurrent_ = on; }

  // Names a guest code range for symbolization; unnamed addresses render as
  // hex. Ranges may nest — the tightest (latest-starting) match wins.
  void register_symbol(std::uint64_t start, std::uint64_t size,
                       std::string name);

  void clear();

  // --- results --------------------------------------------------------------
  // Cycles per attribution class (index by static_cast<size_t>(CycleClass)).
  [[nodiscard]] std::array<std::uint64_t, kern::kNumCycleClasses>
  class_cycles() const;
  // Sum over class_cycles() — equals Machine::total_cycles() when attached
  // for the machine's whole life.
  [[nodiscard]] std::uint64_t total_cycles() const;

  // Folded call stacks, flamegraph.pl input format: one
  // "frame;frame;leaf <cycles>" line per unique stack, sorted by stack key.
  [[nodiscard]] std::string folded_stacks() const;

  // Top-N sites by cycles (ties broken by label), across all classes.
  [[nodiscard]] std::vector<HotSite> hot_sites(std::size_t top_n) const;
  // The same as an aligned ASCII table (class | site | cycles | share | events),
  // followed by the per-class totals and their exact-sum check line.
  [[nodiscard]] std::string render_hot_sites(std::size_t top_n) const;

  // --- ProfileSink probes ---------------------------------------------------
  void on_cycles(const kern::Task& task, kern::CycleClass cls,
                 std::uint64_t detail, std::uint64_t cycles) override;
  void on_guest_block(const kern::Task& task, std::uint64_t block_start,
                      std::uint32_t retired, std::uint64_t cycles) override;
  void on_guest_insn(const kern::Task& task, std::uint64_t rip,
                     std::uint64_t cycles) override;
  [[nodiscard]] std::uint64_t step_sample_period() const noexcept override {
    return config_.step_sample_period;
  }

 private:
  struct SiteStats {
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
  };
  // Non-guest sites are keyed by (class, detail): detail is the syscall nr
  // (kKernel), host binding address or kDetail* sentinel (kInterposer), or
  // decorator id (kDecorator).
  struct DetailKey {
    kern::CycleClass cls;
    std::uint64_t detail;
    auto operator<=>(const DetailKey&) const = default;
  };
  // Fold-slot identity: guest charges fold at symbol-range granularity (the
  // `site` field is the range's start), non-guest charges at their detail.
  struct SlotKey {
    kern::CycleClass cls;
    std::uint64_t detail;
    std::uint64_t site;
    std::uint64_t rbp;
    auto operator<=>(const SlotKey&) const = default;
  };
  struct TaskState {
    // Cached frame-pointer walk: valid while the task's rbp is unchanged.
    std::uint64_t cached_rbp = ~0ULL;
    std::vector<std::uint64_t> cached_frames;  // return addrs, leaf-first
    std::uint64_t leaf = 0;        // current guest site (block start / rip)
    bool leaf_valid = false;
    // Symbol range containing `leaf` (empty range = not yet resolved): while
    // the leaf stays inside it the fold label cannot change, so per-insn leaf
    // movement within one function never leaves the fast path.
    std::uint64_t range_lo = 1;
    std::uint64_t range_hi = 0;
    std::string range_label;
    // Fold-slot memo: SlotKey -> the charge's two accumulation targets (the
    // folded_ entry, plus the detail_sites_ entry for non-guest charges —
    // both maps are node-stable, so the pointers survive later insertions).
    // A one-entry front cache catches runs of identical charges; a
    // direct-mapped hash catches the short repeating key cycle a syscall's
    // class transitions produce (guest -> kernel -> interposer -> guest)
    // without a tree walk. The fast path is then pure pointer bumps: no map
    // lookup, no string building.
    struct Slot {
      std::uint64_t* fold = nullptr;
      SiteStats* site = nullptr;  // null for plain guest charges
    };
    struct HashBucket {
      SlotKey key{kern::CycleClass::kGuest, 0, 0, 0};
      Slot slot{};
    };
    std::map<SlotKey, Slot> slots;
    SlotKey last_key{kern::CycleClass::kGuest, 0, 0, ~0ULL};
    Slot last_slot{};
    static constexpr std::size_t kSlotHashSize = 64;
    std::array<HashBucket, kSlotHashSize> slot_hash{};
    // Same trick for the per-probe guest site map: a direct-mapped hash over
    // guest_sites_ entries (node-stable), so the step engine's per-insn site
    // bump is a multiply and a compare, not a tree walk.
    struct SiteBucket {
      std::uint64_t addr = ~0ULL;
      SiteStats* site = nullptr;
    };
    std::array<SiteBucket, kSlotHashSize> site_hash{};
  };

  // Conditional lock guard: a plain branch when single-threaded (the hot
  // probes run once per block/instruction — a std::unique_lock's bookkeeping
  // is measurable there), a real mutex hold under run_smp.
  class [[nodiscard]] MaybeLock {
   public:
    explicit MaybeLock(Profiler& p) noexcept
        : mu_(p.concurrent_ ? &p.mu_ : nullptr) {
      if (mu_ != nullptr) mu_->lock();
    }
    ~MaybeLock() {
      if (mu_ != nullptr) mu_->unlock();
    }
    MaybeLock(const MaybeLock&) = delete;
    MaybeLock& operator=(const MaybeLock&) = delete;

   private:
    std::mutex* mu_;
  };
  [[nodiscard]] MaybeLock maybe_lock() { return MaybeLock(*this); }
  // Per-task state with a one-entry cache (std::map nodes are stable, so the
  // cached pointer survives insertions; probes hit the same task in runs).
  [[nodiscard]] TaskState& state_for(kern::Tid tid) {
    if (cached_state_ != nullptr && cached_tid_ == tid) return *cached_state_;
    cached_state_ = &task_state_[tid];
    cached_tid_ = tid;
    return *cached_state_;
  }
  [[nodiscard]] static std::size_t slot_hash_index(const SlotKey& key) noexcept;
  // The machine coalesces mirror calls (Machine::charge); pull any pending
  // charges over before reading results so totals are exact at any point.
  void sync() const {
    if (machine_ != nullptr) machine_->flush_profile_mirror();
  }
  [[nodiscard]] SiteStats* guest_site(TaskState& state, std::uint64_t addr);
  // Walks the frame chain from `rbp` (the charge-time context — see
  // on_cycles) and returns the return addresses leaf-first, refreshing the
  // per-task cache.
  [[nodiscard]] const std::vector<std::uint64_t>& walk_stack(
      const kern::Task& task, std::uint64_t rbp);
  [[nodiscard]] std::string symbolize(std::uint64_t addr) const;
  // Refreshes state.range_{lo,hi,label} to the widest interval around `leaf`
  // on which the fold label is constant (the tightest containing symbol,
  // clipped by neighbors; "guest:code" for unsymbolized gaps).
  void refresh_range(TaskState& state, std::uint64_t leaf) const;
  [[nodiscard]] std::string detail_label(const DetailKey& key) const;
  [[nodiscard]] std::string fold_key(const kern::Task& task, std::uint64_t rbp,
                                     const std::string& leaf);

  ProfilerConfig config_;
  kern::Machine* machine_ = nullptr;
  bool concurrent_ = false;
  std::mutex mu_;

  std::array<std::uint64_t, kern::kNumCycleClasses> class_cycles_{};
  std::map<std::uint64_t, SiteStats> guest_sites_;   // site addr -> stats
  std::map<DetailKey, SiteStats> detail_sites_;      // non-guest "sites"
  std::map<std::string, std::uint64_t> folded_;      // stack key -> cycles
  std::map<kern::Tid, TaskState> task_state_;
  kern::Tid cached_tid_ = 0;
  TaskState* cached_state_ = nullptr;
  std::map<std::uint64_t, std::pair<std::uint64_t, std::string>> symbols_;
};

}  // namespace lzp::profile
