#include "base/rng.hpp"

#include <cmath>

namespace lzp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64 seeds the xoshiro state from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void Xoshiro256::reseed(std::uint64_t seed) noexcept {
  for (auto& word : state_) word = splitmix64(seed);
  has_spare_gaussian_ = false;
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::next_gaussian() noexcept {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u = 0;
  double v = 0;
  double s = 0;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

}  // namespace lzp
