// Minimal leveled logger. The simulator is a library, so logging is opt-in
// and goes through a single process-wide sink configurable by tests/benches.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace lzp {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError };

[[nodiscard]] constexpr std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

using LogSink = std::function<void(LogLevel, std::string_view)>;

// Global minimum level; messages below it are compiled out of the hot path
// by an early branch.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

// Replace the sink (default writes to stderr). Passing nullptr restores it.
void set_log_sink(LogSink sink);

void log_message(LogLevel level, std::string_view message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace lzp

#define LZP_LOG(level)                          \
  if (::lzp::log_level() > (level)) {           \
  } else                                        \
    ::lzp::detail::LogLine { (level) }

#define LZP_LOG_TRACE LZP_LOG(::lzp::LogLevel::kTrace)
#define LZP_LOG_DEBUG LZP_LOG(::lzp::LogLevel::kDebug)
#define LZP_LOG_INFO LZP_LOG(::lzp::LogLevel::kInfo)
#define LZP_LOG_WARN LZP_LOG(::lzp::LogLevel::kWarn)
#define LZP_LOG_ERROR LZP_LOG(::lzp::LogLevel::kError)
