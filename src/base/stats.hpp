// Statistics helpers used by the benchmark harnesses: the paper reports
// geometric means over 10 repeats and maximal standard deviations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lzp {

[[nodiscard]] double mean(std::span<const double> samples) noexcept;
[[nodiscard]] double geomean(std::span<const double> samples) noexcept;
// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
[[nodiscard]] double stddev(std::span<const double> samples) noexcept;
// Standard deviation as a percentage of the mean (the paper's "below X%").
[[nodiscard]] double stddev_pct(std::span<const double> samples) noexcept;
[[nodiscard]] double min_of(std::span<const double> samples) noexcept;
[[nodiscard]] double max_of(std::span<const double> samples) noexcept;
[[nodiscard]] double median(std::vector<double> samples) noexcept;

// Streaming accumulator for single-pass mean/variance (Welford).
class RunningStats {
 public:
  void add(double sample) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace lzp
