#include "base/stats.hpp"

#include <algorithm>
#include <cmath>

namespace lzp {

double mean(std::span<const double> samples) noexcept {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

double geomean(std::span<const double> samples) noexcept {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double s : samples) {
    if (s <= 0.0) return 0.0;  // geomean undefined; report 0 rather than NaN
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

double stddev(std::span<const double> samples) noexcept {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double acc = 0.0;
  for (double s : samples) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

double stddev_pct(std::span<const double> samples) noexcept {
  const double m = mean(samples);
  // Guard both the zero mean (division by zero -> inf/NaN) and a negative
  // mean (which would report a negative "percentage"): the spread relative
  // to the magnitude is what callers tabulate.
  if (m == 0.0 || !std::isfinite(m)) return 0.0;
  return 100.0 * stddev(samples) / std::abs(m);
}

double min_of(std::span<const double> samples) noexcept {
  if (samples.empty()) return 0.0;
  return *std::min_element(samples.begin(), samples.end());
}

double max_of(std::span<const double> samples) noexcept {
  if (samples.empty()) return 0.0;
  return *std::max_element(samples.begin(), samples.end());
}

double median(std::vector<double> samples) noexcept {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid),
                   samples.end());
  if (samples.size() % 2 == 1) return samples[mid];
  const double hi = samples[mid];
  const double lo = *std::max_element(samples.begin(),
                                      samples.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

void RunningStats::add(double sample) noexcept {
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace lzp
