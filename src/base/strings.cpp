#include "base/strings.hpp"

#include <cstdio>

namespace lzp {

std::string hex_u64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string hex_byte(std::uint8_t value) {
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "%02x", value);
  return buffer;
}

std::string hex_dump(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 3);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i != 0) out += ' ';
    out += hex_byte(bytes[i]);
  }
  return out;
}

std::string human_size(std::uint64_t bytes) {
  char buffer[32];
  if (bytes >= (1ULL << 20) && bytes % (1ULL << 20) == 0) {
    std::snprintf(buffer, sizeof(buffer), "%lluM",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= (1ULL << 10) && bytes % (1ULL << 10) == 0) {
    std::snprintf(buffer, sizeof(buffer), "%lluK",
                  static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buffer;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string join(std::span<const std::string> parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out;
  if (text.size() < width) out.assign(width - text.size(), ' ');
  out += text;
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out{text};
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace lzp
