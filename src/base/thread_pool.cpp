#include "base/thread_pool.hpp"

namespace lzp {

ThreadPool::ThreadPool(unsigned lanes) : lanes_(lanes == 0 ? 1 : lanes) {
  workers_.reserve(lanes_ - 1);
  for (unsigned i = 0; i + 1 < lanes_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned ThreadPool::host_cores() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::run_indexed(unsigned n, const std::function<void(unsigned)>& fn) {
  if (n == 0) return;
  if (lanes_ == 1 || n == 1) {
    for (unsigned i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_size_ = n;
    next_index_ = 0;
    pending_ = 0;
    ++job_seq_;
  }
  work_ready_.notify_all();
  // The caller is a lane too: drain indices alongside the workers, then wait
  // for the stragglers.
  drain_current_job();
  std::unique_lock<std::mutex> lock(mu_);
  job_done_.wait(lock, [this] { return job_ == nullptr && pending_ == 0; });
}

bool ThreadPool::drain_current_job() {
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    unsigned index = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_ == nullptr || next_index_ >= job_size_) return false;
      job = job_;
      index = next_index_++;
      ++pending_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (next_index_ >= job_size_ && pending_ == 0) {
        job_ = nullptr;
        job_done_.notify_all();
        return true;
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_seq = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this, seen_seq] {
        return shutdown_ || (job_ != nullptr && job_seq_ != seen_seq);
      });
      if (shutdown_) return;
      seen_seq = job_seq_;
    }
    drain_current_job();
  }
}

}  // namespace lzp
