// Lightweight status / result types used across the simulator and the
// interposition libraries. We avoid exceptions on hot paths (the CPU
// interpreter and kernel entry are exercised millions of times per benchmark)
// and instead propagate a small error code plus message.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace lzp {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,   // e.g. writing a read-only page
  kOutOfRange,         // address outside any mapping
  kFailedPrecondition, // API misuse (e.g. running an exited task)
  kUnimplemented,
  kInternal,
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kPermissionDenied: return "permission-denied";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

// A Status is an error code plus an optional human-readable message.
// The common success value carries no allocation.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    std::string out{lzp::to_string(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status make_error(StatusCode code, std::string message) {
  return Status{code, std::move(message)};
}

// Result<T>: either a value or a Status error. Minimal expected<>-style type;
// value access on error aborts (programming error), so callers must check.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const T& value() const& { return std::get<T>(storage_); }
  [[nodiscard]] T& value() & { return std::get<T>(storage_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(storage_)); }

  [[nodiscard]] const Status& status() const& { return std::get<Status>(storage_); }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> storage_;
};

}  // namespace lzp

// Propagate errors without exceptions. Usable in functions returning Status.
#define LZP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::lzp::Status lzp_status_ = (expr);            \
    if (!lzp_status_.is_ok()) return lzp_status_;  \
  } while (false)
