// Small string/byte formatting helpers shared by the disassembler, tracing
// interposers, and table renderers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lzp {

[[nodiscard]] std::string hex_u64(std::uint64_t value);
[[nodiscard]] std::string hex_byte(std::uint8_t value);
[[nodiscard]] std::string hex_dump(std::span<const std::uint8_t> bytes);

// "1.0K", "64K", "256K", "2M" style size labels used in Figure 5 axes.
[[nodiscard]] std::string human_size(std::uint64_t bytes);

[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);
[[nodiscard]] std::string join(std::span<const std::string> parts,
                               std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

// Fixed-width left/right padding for ASCII table rendering.
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

// printf-style double formatting with a fixed number of decimals.
[[nodiscard]] std::string format_double(double value, int decimals);

}  // namespace lzp
