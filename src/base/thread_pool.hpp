// A small persistent host-thread pool for the SMP substrate.
//
// The simulated machine's parallelism need is narrow: run N independent
// per-CPU execution lanes between deterministic barriers, many times per
// run. A pool of persistent workers amortizes thread creation across the
// thousands of barrier rounds a run performs; the caller participates as
// one of the lanes so a pool of size N uses N-1 spawned threads and an
// N-CPU machine on an N-core host leaves no core idle.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lzp {

class ThreadPool {
 public:
  // `lanes` is the parallelism run_indexed provides (>= 1). The pool spawns
  // lanes-1 workers; a pool of one lane spawns nothing and run_indexed
  // degenerates to a plain loop on the caller's thread.
  explicit ThreadPool(unsigned lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned lanes() const noexcept { return lanes_; }

  // Invokes fn(0), fn(1), ..., fn(n-1), distributing the indices over the
  // workers plus the calling thread, and returns once every call finished.
  // Successive run_indexed calls are sequentially consistent with each
  // other: everything a lane wrote is visible to the caller at return and
  // to every lane of the next run (the barrier the SMP scheduler needs).
  // Not reentrant: one run_indexed at a time.
  void run_indexed(unsigned n, const std::function<void(unsigned)>& fn);

  // Number of host hardware threads (>= 1), for benchmark reporting.
  [[nodiscard]] static unsigned host_cores() noexcept;

 private:
  void worker_loop();
  // Pulls indices from the current job until none remain. Returns true if
  // this call completed the job's last index.
  bool drain_current_job();

  const unsigned lanes_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  const std::function<void(unsigned)>* job_ = nullptr;  // null: no job posted
  unsigned job_size_ = 0;
  unsigned next_index_ = 0;
  unsigned pending_ = 0;       // indices handed out but not yet finished
  std::uint64_t job_seq_ = 0;  // bumped per job so workers never re-run one
  bool shutdown_ = false;
};

}  // namespace lzp
