#include "base/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace lzp {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex; empty means "stderr"

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s\n",
               static_cast<int>(to_string(level).size()), to_string(level).data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace lzp
