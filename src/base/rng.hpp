// Deterministic pseudo-random number generation for reproducible experiments.
// All simulated noise (benchmark repeat jitter, workload think time) derives
// from a seeded xoshiro256** stream so that every bench run is bit-identical.
#pragma once

#include <cstdint>

namespace lzp {

// xoshiro256** by Blackman & Vigna (public domain reference implementation
// re-expressed). Excellent statistical quality, tiny state, fully portable.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  std::uint64_t next() noexcept;

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

  // Gaussian(0, 1) via Marsaglia polar method (deterministic given the stream).
  double next_gaussian() noexcept;

 private:
  std::uint64_t state_[4] = {};
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace lzp
