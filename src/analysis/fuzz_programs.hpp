// Randomized adversarial program generator for the analyzer's soundness
// evaluation (bench/analysis_accuracy, tests/analysis_test). Header-only
// evaluation tooling — consumers link lzp_apps for the minilibc emitters;
// the analysis library itself does not depend on it.
//
// Each generated program is runnable (the straight-line shape of the
// block_exec fuzz programs) and seeded with every classic disassembly trap:
//
//   * genuine syscalls sprinkled through reachable code (must end up SAFE);
//   * 0F 05 pairs inside mov immediates (raw-scan false positives that the
//     CFG must classify UNSAFE_OVERLAP);
//   * data islands behind jmp carrying syscall-looking pairs and desync
//     headers hiding genuine-but-unreachable syscall code (UNKNOWN);
//   * a never-executed, descent-reachable jump-into-window gadget.
//
// Determinism: everything derives from the seed, so a failing seed printed
// by a gate reproduces the exact program.
#pragma once

#include <cstdint>

#include "apps/minilibc.hpp"
#include "base/rng.hpp"
#include "isa/assemble.hpp"
#include "kernel/syscalls.hpp"

namespace lzp::analysis {

inline isa::Program make_adversarial_program(std::uint64_t seed) {
  using isa::Gpr;
  Xoshiro256 rng(seed);
  const Gpr pool[] = {Gpr::rax, Gpr::rbx, Gpr::rdx, Gpr::rbp, Gpr::rsi,
                      Gpr::rdi, Gpr::r8,  Gpr::r10, Gpr::r12, Gpr::r13,
                      Gpr::r14, Gpr::r15};
  auto reg = [&] { return pool[rng.next_below(std::size(pool))]; };
  auto disp = [&] { return static_cast<std::int32_t>(rng.next_below(64) * 8); };

  isa::Assembler a;
  const auto entry = a.new_label();
  const auto gadget = a.new_label();
  const bool with_gadget = rng.next_below(2) == 0;
  a.bind(entry);
  a.mov(Gpr::r9, apps::kDataBase);
  // r11 is the always-zero guard steering descent into never-executed arms;
  // it is deliberately outside the random register pool.
  a.mov(Gpr::r11, 0);
  for (Gpr r : pool) a.mov(r, rng.next_below(0xFFFF));
  if (with_gadget) {
    a.cmp(Gpr::r11, 1);
    a.jz(gadget);
  }
  const std::uint64_t length = 30 + rng.next_below(50);
  for (std::uint64_t i = 0; i < length; ++i) {
    switch (rng.next_below(10)) {
      case 0: a.mov(reg(), rng.next_below(1 << 20)); break;
      case 1: a.add(reg(), reg()); break;
      case 2: a.sub(reg(), reg()); break;
      case 3: a.store(Gpr::r9, disp(), reg()); break;
      case 4: a.load(reg(), Gpr::r9, disp()); break;
      case 5: {
        const Gpr r1 = reg();
        const Gpr r2 = reg();
        a.push(r1);
        a.pop(r2);
        break;
      }
      case 6:  // genuine syscall — the analyzer must prove these SAFE
        a.mov(Gpr::rax, std::uint64_t{kern::kSysGetpid});
        a.syscall_();
        break;
      case 7:  // overlap bait: immediate whose low bytes read 0F 05
        a.mov(reg(), 0x050FULL | (rng.next_below(0xFFFF) << 16));
        break;
      case 8: {  // data island behind a jmp: syscall-looking pairs in data
        const auto over = a.new_label();
        a.jmp(over);
        a.db({static_cast<std::uint8_t>(rng.next_below(256)), 0x0F,
              rng.next_below(2) == 0 ? std::uint8_t{0x05} : std::uint8_t{0x34},
              static_cast<std::uint8_t>(rng.next_below(256))});
        a.bind(over);
        break;
      }
      case 9: {  // desync header hiding a genuine-but-unreachable syscall
        const auto over = a.new_label();
        a.jmp(over);
        a.db({0xB8});
        a.mov(Gpr::rax, std::uint64_t{kern::kSysGetpid});
        a.syscall_();
        a.bind(over);
        break;
      }
    }
  }
  a.mov(Gpr::rdi, Gpr::rbx);
  apps::emit_syscall(a, kern::kSysExitGroup);
  if (with_gadget) {
    // Reachable by descent (via the never-true jz above), never executed:
    // the 0F 05 window is both a fallthrough instruction and a direct branch
    // target at its second byte -> UNSAFE_JUMP_INTO_WINDOW.
    const auto mid = a.new_label();
    a.bind(gadget);
    a.jz(mid);
    a.db({0x0F});
    a.bind(mid);
    a.db({0x05});
    a.ret();
  }
  return isa::make_program("advfuzz-" + std::to_string(seed), a, entry).value();
}

// --- extraction-precision corpus ---------------------------------------------
//
// Three families of runnable programs where the syscall number (or its
// arguments) are only resolvable ACROSS basic blocks — the block-local idiom
// scan must fail and the interprocedural value-flow analysis must succeed.
// Every syscall invoked is side-effect-free (getpid / sched_yield), so the
// dynamically observed (site, nr, args) tuples falsify — or confirm — the
// static resolutions.

namespace detail {

// Seed-dependent benign syscall number.
inline std::uint64_t benign_nr(Xoshiro256& rng) {
  return rng.next_below(2) == 0 ? std::uint64_t{kern::kSysGetpid}
                                : std::uint64_t{kern::kSysSchedYield};
}

// Register-only filler that never touches rax or the argument registers the
// dataflow reports (rdi/rsi/rdx/r10), so planted constants survive it.
inline void neutral_filler(isa::Assembler& a, Xoshiro256& rng,
                           std::uint64_t count) {
  using isa::Gpr;
  const Gpr pool[] = {Gpr::rbx, Gpr::rbp, Gpr::r8, Gpr::r12, Gpr::r13,
                      Gpr::r14, Gpr::r15};
  auto reg = [&] { return pool[rng.next_below(std::size(pool))]; };
  for (std::uint64_t i = 0; i < count; ++i) {
    switch (rng.next_below(4)) {
      case 0: a.mov(reg(), rng.next_below(1 << 16)); break;
      case 1: a.add(reg(), reg()); break;
      case 2: a.sub(reg(), reg()); break;
      case 3: {
        const Gpr r = reg();
        a.push(r);
        a.pop(r);
        break;
      }
    }
  }
}

}  // namespace detail

// The number is materialized in one block (through a copy, so even a
// cross-block idiom scan would not see it) and the SYSCALL sits in another,
// reached by an unconditional jump. Block-local resolution fails; the
// value-flow analysis proves rax = {nr}.
inline isa::Program make_cross_block_constant_program(std::uint64_t seed) {
  using isa::Gpr;
  Xoshiro256 rng(seed);
  const std::uint64_t nr = detail::benign_nr(rng);
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto invoke = a.new_label();
  a.bind(entry);
  detail::neutral_filler(a, rng, 4 + rng.next_below(8));
  a.mov(Gpr::rbx, nr);
  a.mov(Gpr::rax, Gpr::rbx);  // copy defeats the idiom scan
  a.jmp(invoke);
  a.bind(invoke);
  a.syscall_();
  apps::emit_exit(a, 0);
  return isa::make_program("xblock-" + std::to_string(seed), a, entry).value();
}

// Two arms assign DIFFERENT numbers and merge on one shared SYSCALL: the
// value-flow join yields the two-member set {nr1, nr2}, one edge per member.
// Which arm executes depends on the seed; either way the observed number is
// a member of the static set.
inline isa::Program make_join_point_conflict_program(std::uint64_t seed) {
  using isa::Gpr;
  Xoshiro256 rng(seed);
  const std::uint64_t take_second = rng.next_below(2);
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto arm2 = a.new_label();
  const auto invoke = a.new_label();
  a.bind(entry);
  detail::neutral_filler(a, rng, 2 + rng.next_below(6));
  a.mov(Gpr::rbx, take_second);
  a.cmp(Gpr::rbx, 1);
  a.jz(arm2);
  a.mov(Gpr::rax, std::uint64_t{kern::kSysGetpid});
  a.jmp(invoke);
  a.bind(arm2);
  a.mov(Gpr::rax, std::uint64_t{kern::kSysSchedYield});
  a.bind(invoke);
  a.syscall_();
  apps::emit_exit(a, 0);
  return isa::make_program("joinpt-" + std::to_string(seed), a, entry).value();
}

// Number AND argument registers are pinned to constants in the entry block;
// the SYSCALL lives across a jump. The analysis must both resolve the number
// and attach an argument-constraint clause (getpid ignores its registers, so
// the planted values are observable but harmless).
inline isa::Program make_arg_constant_program(std::uint64_t seed) {
  using isa::Gpr;
  Xoshiro256 rng(seed);
  const std::uint64_t rdi = rng.next_below(1 << 12);
  const std::uint64_t rsi = rng.next_below(1 << 12);
  const std::uint64_t rdx = rng.next_below(1 << 12);
  isa::Assembler a;
  const auto entry = a.new_label();
  const auto invoke = a.new_label();
  a.bind(entry);
  a.mov(Gpr::rax, std::uint64_t{kern::kSysGetpid});
  a.mov(Gpr::rdi, rdi);
  a.mov(Gpr::rsi, rsi);
  a.mov(Gpr::rdx, rdx);
  detail::neutral_filler(a, rng, 2 + rng.next_below(6));
  a.jmp(invoke);
  a.bind(invoke);
  a.syscall_();
  apps::emit_exit(a, 0);
  return isa::make_program("argconst-" + std::to_string(seed), a, entry)
      .value();
}

}  // namespace lzp::analysis
