// Control-flow-graph construction over a guest text region, the substrate of
// the rewrite-safety analyzer (analysis/analyzer.hpp).
//
// Two complementary decodings of the same bytes:
//
//   * RECURSIVE DESCENT from the entry point follows direct control flow
//     only (fallthrough, rel32 branches and calls, call-return discipline).
//     Every instruction it reaches is *proven reachable* under two stated
//     assumptions: (1) computed transfers (JMP_REG / CALL_RAX) target
//     instruction boundaries, and (2) returns follow call discipline. What
//     it cannot reach is not "data" — it is merely unproven, which is
//     exactly the gap the paper's §II-B argues dooms eager rewriting.
//
//   * SUPERSET DISASSEMBLY decodes at *every* byte offset, recording which
//     decodings exist at all. The analyzer uses it to enumerate candidate
//     syscall windows and to report how a candidate's bytes could be read
//     by a desynchronized instruction stream.
//
// The CFG proper (basic blocks, direct-jump-target set, computed-transfer
// marks, reachable-byte coverage) is derived from the descent pass.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "isa/decode.hpp"
#include "isa/insn.hpp"

namespace lzp::analysis {

// One instruction proven reachable by recursive descent.
struct ReachableInsn {
  std::uint64_t addr = 0;
  isa::Instruction insn;
};

struct BasicBlock {
  std::uint64_t start = 0;             // address of the leader instruction
  std::uint64_t end = 0;               // one past the last instruction's bytes
  std::vector<std::uint64_t> insns;    // instruction start addresses, in order
  std::vector<std::uint64_t> succs;    // successor block leaders (direct flow)
  // The block ends in JMP_REG or CALL_RAX: its real successor set is
  // unknowable statically.
  bool computed_successor = false;
  // Descent stopped here because the bytes do not decode; at run time this
  // path would fault (SIGILL), so nothing past the failure is proven.
  bool ends_in_decode_error = false;
};

struct Cfg {
  std::uint64_t base = 0;
  std::uint64_t size = 0;

  // Descent results, keyed by absolute address.
  std::map<std::uint64_t, ReachableInsn> reachable;
  std::vector<BasicBlock> blocks;

  // Absolute targets of direct branches/calls from reachable instructions.
  std::set<std::uint64_t> jump_targets;
  // Addresses of reachable JMP_REG / CALL_RAX instructions. Non-empty means
  // unproven regions may still execute (they stay UNKNOWN, never data).
  std::vector<std::uint64_t> computed_transfers;
  // Descent decode failures (address where decoding stopped a path).
  std::vector<std::uint64_t> decode_error_addrs;

  // Per-byte mark: covered by at least one reachable instruction.
  std::vector<bool> byte_reachable;

  [[nodiscard]] bool is_reachable_insn(std::uint64_t addr) const {
    return reachable.count(addr) != 0;
  }
  // Reachable instructions whose byte span intersects the window
  // [addr, addr + window) without starting exactly at `addr` — the overlap
  // test for a candidate rewrite window.
  [[nodiscard]] std::vector<std::uint64_t> insns_overlapping_window(
      std::uint64_t addr, std::uint64_t window) const;
  [[nodiscard]] const BasicBlock* block_containing(std::uint64_t addr) const;
  [[nodiscard]] std::size_t reachable_bytes() const;
};

// Builds the CFG by recursive descent from `entry` (an absolute address
// inside [base, base + bytes.size())). Extra roots (e.g. exported symbols)
// may be supplied; out-of-range roots are ignored.
[[nodiscard]] Cfg build_cfg(std::span<const std::uint8_t> bytes,
                            std::uint64_t base, std::uint64_t entry,
                            std::span<const std::uint64_t> extra_roots = {});

// Superset disassembly: the decoding attempt at every offset.
struct SupersetInsn {
  bool valid = false;
  std::uint8_t length = 0;
  isa::Op op = isa::Op::kNop;
};

struct Superset {
  std::uint64_t base = 0;
  std::vector<SupersetInsn> at;  // index = offset into the region

  // Offsets (absolute addresses) whose superset decoding *contains* `addr`
  // strictly inside its byte span (start < addr < start + length). These are
  // the desynchronized readings that would mis-tokenize the candidate.
  [[nodiscard]] std::vector<std::uint64_t> overlapping_starts(
      std::uint64_t addr, std::size_t window = 1) const;
  [[nodiscard]] std::size_t valid_decodings() const;
};

[[nodiscard]] Superset build_superset(std::span<const std::uint8_t> bytes,
                                      std::uint64_t base);

}  // namespace lzp::analysis
